//===- tests/coordination_test.cpp - Multi-worker coordination -*- C++ -*-===//
//
// Tests of the coordination layer: the lease-file protocol of
// support/Lease (claim / renew / staleness / reclaim races), the
// verify::Worker driver (sharded runs converge bit-identically to a
// serial scheduler, crashed workers' leases are reclaimed and their
// shards finished by survivors), per-record CRC detection in the JSONL
// store, shard merging, and the scheduler's retry-with-backoff policy
// for transient failures (deterministic fault-injection drills).
//
//===----------------------------------------------------------------------===//

#include "data/SyntheticCorpus.h"
#include "nn/Transformer.h"
#include "support/Error.h"
#include "support/Fault.h"
#include "support/Io.h"
#include "support/Json.h"
#include "support/Lease.h"
#include "support/Metrics.h"
#include "support/Parallel.h"
#include "support/Rng.h"
#include "verify/Coordination.h"
#include "verify/Scheduler.h"
#include "zono/Zonotope.h"

#include <gtest/gtest.h>

#include <dirent.h>
#include <sys/stat.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <map>
#include <string>
#include <thread>
#include <vector>

using namespace deept;
using support::Error;
using support::ErrorCode;
using support::Lease;
using tensor::Matrix;
using verify::CoordinationOptions;
using verify::JobMethod;
using verify::JobQueue;
using verify::JobResult;
using verify::JobSpec;
using verify::JobStatus;
using verify::MergeReport;
using verify::Scheduler;
using verify::SchedulerOptions;
using verify::Worker;
using verify::WorkerReport;
namespace fault = deept::support::fault;

namespace {

/// Creates a test directory and removes it (with its flat contents) on
/// scope exit. The lease layout is flat, so one readdir pass suffices.
class TempDir {
public:
  explicit TempDir(std::string Path) : Path(std::move(Path)) {
    wipe();
    ::mkdir(this->Path.c_str(), 0755);
  }
  ~TempDir() {
    wipe();
    ::rmdir(Path.c_str());
  }
  const std::string &path() const { return Path; }

private:
  void wipe() {
    if (DIR *D = ::opendir(Path.c_str())) {
      while (struct dirent *E = ::readdir(D)) {
        std::string Name = E->d_name;
        if (Name != "." && Name != "..")
          std::remove((Path + "/" + Name).c_str());
      }
      ::closedir(D);
    }
  }
  std::string Path;
};

/// Deletes a temp file on scope exit.
class TempFile {
public:
  explicit TempFile(std::string Path) : Path(std::move(Path)) {
    std::remove(this->Path.c_str());
  }
  ~TempFile() { std::remove(Path.c_str()); }
  const std::string &path() const { return Path; }

private:
  std::string Path;
};

/// Restores the pool's thread count on scope exit (parallel_test.cpp
/// idiom).
class ScopedThreads {
public:
  explicit ScopedThreads(size_t N)
      : Prev(support::ThreadPool::global().threadCount()) {
    support::ThreadPool::global().setThreadCount(N);
  }
  ~ScopedThreads() { support::ThreadPool::global().setThreadCount(Prev); }

private:
  size_t Prev;
};

/// Arms a spec for the scope and disarms on exit (fault_test.cpp idiom).
class ScopedFaults {
public:
  explicit ScopedFaults(const std::string &Spec) {
    std::string Err;
    EXPECT_TRUE(fault::arm(Spec, &Err)) << Err;
  }
  ~ScopedFaults() { fault::disarm(); }
};

/// Same tiny corpus + untrained model setup as scheduler_test.cpp.
struct TinySetup {
  data::SyntheticCorpus Corpus;
  nn::TransformerModel Model;
  data::Sentence Sent;

  TinySetup() : Corpus(data::CorpusConfig::sstLike(16)) {
    nn::TransformerConfig Cfg;
    Cfg.MaxLen = 16;
    Cfg.EmbedDim = 16;
    Cfg.NumHeads = 2;
    Cfg.HiddenDim = 16;
    Cfg.NumLayers = 2;
    support::Rng Rng(0x5eed);
    Model = nn::TransformerModel::init(Cfg, Corpus.embeddings(), Rng);
    support::Rng SentRng(7);
    Sent = Corpus.sampleSentence(SentRng);
    Sent.Label = Model.classify(Sent.Tokens);
  }

  JobSpec job(JobMethod M, double Eps = 0.05) const {
    JobSpec J;
    J.Tokens = Sent.Tokens;
    J.TrueClass = Sent.Label;
    J.Word = 0;
    J.P = 2.0;
    J.Epsilon = Eps;
    J.Method = M;
    J.NoiseReductionBudget = 128;
    return J;
  }
};

std::string readFileBytes(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(In)),
                     std::istreambuf_iterator<char>());
}

void writeFileBytes(const std::string &Path, const std::string &Bytes) {
  std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
  Out.write(Bytes.data(), static_cast<std::streamsize>(Bytes.size()));
}

/// key -> margin over a JSONL results file (store or merged output).
std::map<std::string, double> marginsOf(const std::string &Path) {
  std::map<std::string, double> Out;
  std::ifstream In(Path);
  std::string Line;
  while (std::getline(In, Line)) {
    if (Line.empty())
      continue;
    support::JsonValue Doc;
    EXPECT_TRUE(support::parseJson(Line, Doc)) << Line;
    const support::JsonValue *Key = Doc.find("key");
    const support::JsonValue *Margin = Doc.find("margin");
    EXPECT_NE(Key, nullptr) << Line;
    EXPECT_NE(Margin, nullptr) << Line;
    if (Key && Margin)
      Out[Key->StringVal] = Margin->NumberVal;
  }
  return Out;
}

bool sitesCompiledIn() {
#ifdef DEEPT_FAULT_INJECT
  return true;
#else
  return false;
#endif
}

} // namespace

//===----------------------------------------------------------------------===//
// Lease protocol primitives
//===----------------------------------------------------------------------===//

TEST(Lease, JsonRoundTrip) {
  Lease L;
  L.Range = 3;
  L.Ranges = 8;
  L.Owner = "worker \"zero\"";
  L.Pid = 4242;
  L.CreatedMs = 1700000000123;
  L.HeartbeatMs = 1700000000456;
  Lease Back;
  std::string Err;
  ASSERT_TRUE(Lease::fromJson(L.toJson(), Back, &Err)) << Err;
  EXPECT_EQ(Back.Range, L.Range);
  EXPECT_EQ(Back.Ranges, L.Ranges);
  EXPECT_EQ(Back.Owner, L.Owner);
  EXPECT_EQ(Back.Pid, L.Pid);
  EXPECT_EQ(Back.CreatedMs, L.CreatedMs);
  EXPECT_EQ(Back.HeartbeatMs, L.HeartbeatMs);

  Lease Dead;
  EXPECT_FALSE(Lease::fromJson("not json", Dead, &Err));
  EXPECT_FALSE(Err.empty());
  EXPECT_FALSE(Lease::fromJson("{\"deept_lease\":1}", Dead, &Err));
}

TEST(Lease, ClaimIsExclusiveUntilReleased) {
  TempDir Dir("coordination_test_claim");

  Lease A;
  A.Range = 0;
  A.Ranges = 2;
  A.Owner = "alpha";
  Error E;
  ASSERT_EQ(support::claimLease(Dir.path(), A, &E),
            support::ClaimOutcome::Claimed)
      << E.what();
  EXPECT_GT(A.CreatedMs, 0);
  EXPECT_EQ(A.HeartbeatMs, A.CreatedMs);

  // A second claimant loses without an error.
  Lease B = A;
  B.Owner = "beta";
  EXPECT_EQ(support::claimLease(Dir.path(), B, &E),
            support::ClaimOutcome::Held);

  // The on-disk document is alpha's, and it validates as lease JSON.
  Lease Cur;
  ASSERT_TRUE(
      support::readLeaseFile(support::leasePath(Dir.path(), 0), Cur, &E))
      << E.what();
  EXPECT_EQ(Cur.Owner, "alpha");
  EXPECT_EQ(Cur.CreatedMs, A.CreatedMs);

  // Release frees the range for the next claimant.
  EXPECT_TRUE(support::releaseLease(Dir.path(), A, &E)) << E.what();
  EXPECT_EQ(support::claimLease(Dir.path(), B, &E),
            support::ClaimOutcome::Claimed)
      << E.what();
}

TEST(Lease, RenewAdvancesHeartbeatAndDetectsLoss) {
  TempDir Dir("coordination_test_renew");

  Lease A;
  A.Range = 1;
  A.Ranges = 4;
  A.Owner = "alpha";
  Error E;
  ASSERT_EQ(support::claimLease(Dir.path(), A, &E),
            support::ClaimOutcome::Claimed);

  int64_t Before = A.HeartbeatMs;
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  ASSERT_TRUE(support::renewLease(Dir.path(), A, &E)) << E.what();
  EXPECT_GT(A.HeartbeatMs, Before);

  // After a reclaim, the holder's next renewal reports LeaseLost -- the
  // signal that it must stop writing its shard.
  Lease Cur;
  ASSERT_TRUE(
      support::readLeaseFile(support::leasePath(Dir.path(), 1), Cur));
  ASSERT_TRUE(support::reclaimLease(Dir.path(), Cur, "beta", &E))
      << E.what();
  EXPECT_FALSE(support::renewLease(Dir.path(), A, &E));
  EXPECT_EQ(E.code(), ErrorCode::LeaseLost);
}

TEST(Lease, StalenessIsAPureFunctionOfHeartbeatAge) {
  Lease L;
  L.HeartbeatMs = 1000;
  EXPECT_FALSE(support::leaseIsStale(L, 1400, 500));
  EXPECT_FALSE(support::leaseIsStale(L, 1500, 500)); // exactly at the bound
  EXPECT_TRUE(support::leaseIsStale(L, 1501, 500));
}

TEST(Lease, ReclaimRequiresMatchingOwnership) {
  TempDir Dir("coordination_test_reclaim");

  Lease A;
  A.Range = 0;
  A.Ranges = 1;
  A.Owner = "alpha";
  Error E;
  ASSERT_EQ(support::claimLease(Dir.path(), A, &E),
            support::ClaimOutcome::Claimed);

  // A reclaimer acting on a stale snapshot (the lease was meanwhile
  // released and re-claimed, so CreatedMs moved) must not steal the new
  // holder's lease: the ABA check puts the file back.
  Lease Snapshot = A;
  Snapshot.CreatedMs -= 10; // pretend we read an older incarnation
  EXPECT_FALSE(support::reclaimLease(Dir.path(), Snapshot, "beta", &E));
  Lease Cur;
  ASSERT_TRUE(
      support::readLeaseFile(support::leasePath(Dir.path(), 0), Cur, &E))
      << E.what();
  EXPECT_EQ(Cur.Owner, "alpha");
  EXPECT_EQ(Cur.CreatedMs, A.CreatedMs);

  // A matching snapshot wins, and the second reclaimer of the same
  // snapshot loses (the file is already gone).
  EXPECT_TRUE(support::reclaimLease(Dir.path(), Cur, "beta", &E))
      << E.what();
  EXPECT_FALSE(
      support::fileExists(support::leasePath(Dir.path(), 0)));
  EXPECT_FALSE(support::reclaimLease(Dir.path(), Cur, "gamma", &E));
}

//===----------------------------------------------------------------------===//
// Worker end-to-end
//===----------------------------------------------------------------------===//

namespace {

/// The serial reference: the same queue through one plain Scheduler (the
/// configuration a single-worker `batch` run uses).
std::map<std::string, double> serialMargins(const TinySetup &S,
                                            const JobQueue &Q) {
  Scheduler Sched(S.Model);
  std::map<std::string, double> Out;
  for (const JobResult &R : Sched.run(Q)) {
    EXPECT_NE(R.Status, JobStatus::Error) << R.Error;
    Out[R.Key] = R.Margin;
  }
  return Out;
}

JobQueue mixedQueue(const TinySetup &S) {
  JobQueue Q;
  Q.push(S.job(JobMethod::Fast, 0.02));
  Q.push(S.job(JobMethod::Fast, 0.05));
  Q.push(S.job(JobMethod::Precise, 0.05));
  Q.push(S.job(JobMethod::Combined, 0.05));
  Q.push(S.job(JobMethod::Fast, 0.08));
  return Q;
}

} // namespace

TEST(Coordination, RangeOfPartitionsKeysStably) {
  TinySetup S;
  JobQueue Q = mixedQueue(S);
  for (const JobSpec &Spec : Q.specs()) {
    std::string Key = Scheduler::jobKey(Spec);
    size_t R = Worker::rangeOf(Key, 4);
    EXPECT_LT(R, 4u);
    EXPECT_EQ(R, Worker::rangeOf(Key, 4)); // stable
  }
  // The digest pins the job set: reordering or dropping a job changes it.
  std::string Full = Worker::queueDigest(Q);
  JobQueue Partial;
  Partial.push(Q.spec(0));
  EXPECT_NE(Full, Worker::queueDigest(Partial));
  EXPECT_EQ(Full, Worker::queueDigest(Q));
}

TEST(Coordination, SingleWorkerConvergesBitIdenticalToSerial) {
  TinySetup S;
  TempDir Dir("coordination_test_single");
  TempFile Out("coordination_test_single_merged.jsonl");
  JobQueue Q = mixedQueue(S);
  std::map<std::string, double> Serial = serialMargins(S, Q);

  CoordinationOptions CO;
  CO.LeaseDir = Dir.path();
  CO.Ranges = 3;
  CO.WorkerId = "solo";
  Worker W(S.Model, Q, CO);
  WorkerReport Rep = W.run();
  EXPECT_EQ(Rep.RangesCompleted, 3u);
  EXPECT_EQ(Rep.Jobs, Q.size());
  EXPECT_EQ(Rep.JobsOk, Q.size());
  EXPECT_EQ(Rep.LeasesReclaimed, 0u);

  // Every range published its done marker and released its lease.
  for (size_t R = 0; R < 3; ++R) {
    EXPECT_TRUE(support::fileExists(support::donePath(Dir.path(), R)));
    EXPECT_FALSE(support::fileExists(support::leasePath(Dir.path(), R)));
  }

  // The merged store matches the serial run bit-for-bit on margins.
  MergeReport MR;
  Error E;
  ASSERT_TRUE(verify::mergeShards(Dir.path(), 0, Out.path(), MR, &E))
      << E.what();
  EXPECT_EQ(MR.Records, Q.size());
  EXPECT_EQ(MR.DuplicatesCollapsed, 0u);
  EXPECT_EQ(MR.DroppedCrc, 0u);
  EXPECT_EQ(MR.DroppedMalformed, 0u);
  EXPECT_EQ(marginsOf(Out.path()), Serial);
}

TEST(Coordination, LateWorkerFindsBatchAlreadyDrained) {
  TinySetup S;
  TempDir Dir("coordination_test_two");
  TempFile Out("coordination_test_two_merged.jsonl");
  JobQueue Q = mixedQueue(S);
  std::map<std::string, double> Serial = serialMargins(S, Q);

  // Worker one drains everything; worker two arrives late, finds every
  // range done, and exits without work. (Concurrent workers are drilled
  // process-per-worker in the smoke test and the CI chaos stage; here
  // the sequential schedule keeps the unit test deterministic.)
  CoordinationOptions CO;
  CO.LeaseDir = Dir.path();
  CO.Ranges = 2;
  CO.WorkerId = "first";
  WorkerReport R1 = Worker(S.Model, Q, CO).run();
  EXPECT_EQ(R1.RangesCompleted, 2u);

  CO.WorkerId = "second";
  WorkerReport R2 = Worker(S.Model, Q, CO).run();
  EXPECT_EQ(R2.RangesCompleted, 0u);
  EXPECT_EQ(R2.Jobs, 0u);

  MergeReport MR;
  Error E;
  ASSERT_TRUE(verify::mergeShards(Dir.path(), 0, Out.path(), MR, &E))
      << E.what();
  EXPECT_EQ(MR.Records, Q.size());
  EXPECT_EQ(marginsOf(Out.path()), Serial);
}

TEST(Coordination, ManifestPinsShardGeometry) {
  TinySetup S;
  TempDir Dir("coordination_test_manifest");
  JobQueue Q = mixedQueue(S);

  CoordinationOptions CO;
  CO.LeaseDir = Dir.path();
  CO.Ranges = 2;
  CO.WorkerId = "first";
  Worker(S.Model, Q, CO).run();

  // A worker wanting a different range count must be rejected: it would
  // route keys to different shards than the batch was started with.
  CO.Ranges = 3;
  CO.WorkerId = "rogue";
  try {
    Worker(S.Model, Q, CO).run();
    FAIL() << "range-count mismatch not detected";
  } catch (const Error &E) {
    EXPECT_EQ(E.code(), ErrorCode::BadArgument);
  }

  // So must a worker with a different job set (same range count).
  CO.Ranges = 2;
  JobQueue Other;
  Other.push(S.job(JobMethod::Fast, 0.03));
  try {
    Worker(S.Model, Other, CO).run();
    FAIL() << "queue-digest mismatch not detected";
  } catch (const Error &E) {
    EXPECT_EQ(E.code(), ErrorCode::BadArgument);
  }
}

TEST(Coordination, CrashedWorkersLeaseIsReclaimedAndBatchConverges) {
  if (!sitesCompiledIn())
    GTEST_SKIP() << "fault sites compiled out";
  TinySetup S;
  TempDir Dir("coordination_test_crash");
  TempFile Out("coordination_test_crash_merged.jsonl");
  JobQueue Q = mixedQueue(S);
  std::map<std::string, double> Serial = serialMargins(S, Q);

  double ReclaimsBefore =
      support::Metrics::global().counterValue("coord.leases_reclaimed");

  // Worker one dies at the drill point: its first range's shard is fully
  // written, but the done marker was never published and the lease file
  // is still on disk with nobody renewing it.
  CoordinationOptions CO;
  CO.LeaseDir = Dir.path();
  CO.Ranges = 3;
  CO.WorkerId = "doomed";
  CO.HeartbeatMs = 50;
  {
    ScopedFaults F("worker.crash:1:fail");
    try {
      Worker(S.Model, Q, CO).run();
      FAIL() << "injected crash did not fire";
    } catch (const Error &E) {
      EXPECT_EQ(E.code(), ErrorCode::FaultInjected);
    }
  }
  size_t Leases = 0, Markers = 0;
  for (size_t R = 0; R < 3; ++R) {
    Leases += support::fileExists(support::leasePath(Dir.path(), R));
    Markers += support::fileExists(support::donePath(Dir.path(), R));
  }
  EXPECT_EQ(Leases, 1u);
  EXPECT_EQ(Markers, 0u);

  // A survivor observes the stale heartbeat, reclaims the dead worker's
  // lease, resumes its shard (all jobs skip -- the shard was complete)
  // and finishes the remaining ranges.
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  CO.WorkerId = "survivor";
  CO.HeartbeatMs = 5;
  CO.StaleAfterMs = 1;
  WorkerReport Rep = Worker(S.Model, Q, CO).run();
  EXPECT_EQ(Rep.LeasesReclaimed, 1u);
  EXPECT_EQ(Rep.RangesCompleted, 3u);
  // The crashed worker ran range 0 (first in its scan order) to
  // completion, so exactly that sub-queue's jobs skip on resume.
  size_t Range0Jobs = 0;
  for (const JobSpec &Spec : Q.specs())
    Range0Jobs += Worker::rangeOf(Scheduler::jobKey(Spec), 3) == 0;
  EXPECT_EQ(Rep.Jobs, Q.size());
  EXPECT_EQ(Rep.JobsSkipped, Range0Jobs);
  EXPECT_EQ(
      support::Metrics::global().counterValue("coord.leases_reclaimed"),
      ReclaimsBefore + 1);

  // No lost records, no duplicates, margins bit-identical to serial.
  MergeReport MR;
  Error E;
  ASSERT_TRUE(verify::mergeShards(Dir.path(), 0, Out.path(), MR, &E))
      << E.what();
  EXPECT_EQ(MR.Records, Q.size());
  EXPECT_EQ(MR.DuplicatesCollapsed, 0u);
  EXPECT_EQ(marginsOf(Out.path()), Serial);
}

//===----------------------------------------------------------------------===//
// Per-record CRCs in the JSONL store
//===----------------------------------------------------------------------===//

TEST(Scheduler, RecordCrcRoundTrip) {
  std::string Line = Scheduler::withRecordCrc("{\"key\":\"a\",\"x\":1}");
  EXPECT_NE(Line.find(",\"crc32\":"), std::string::npos);
  EXPECT_EQ(Line.back(), '}');
  EXPECT_EQ(Scheduler::checkRecordCrc(Line), Scheduler::RecordCrc::Ok);

  // Any payload flip breaks the check; a record without the field (a
  // store written before CRCs existed) is Missing, which resume
  // tolerates.
  std::string Flipped = Line;
  Flipped[2] = 'K';
  EXPECT_EQ(Scheduler::checkRecordCrc(Flipped),
            Scheduler::RecordCrc::Mismatch);
  EXPECT_EQ(Scheduler::checkRecordCrc("{\"key\":\"a\",\"x\":1}"),
            Scheduler::RecordCrc::Missing);
}

TEST(Scheduler, ResumeReRunsOnlyCrcCorruptedRecord) {
  TinySetup S;
  TempFile Store("coordination_test_crcstore.jsonl");
  // One thread keeps store order equal to queue order, so line 1 is
  // deterministically job "b".
  ScopedThreads T(1);

  JobQueue Q;
  JobSpec A = S.job(JobMethod::Fast, 0.02);
  A.Id = "a";
  JobSpec B = S.job(JobMethod::Fast, 0.05);
  B.Id = "b";
  JobSpec C = S.job(JobMethod::Precise, 0.05);
  C.Id = "c";
  Q.push(A);
  Q.push(B);
  Q.push(C);

  SchedulerOptions Opts;
  Opts.JsonlPath = Store.path();
  Opts.Resume = true;
  Scheduler Sched(S.Model, Opts);
  std::vector<JobResult> First = Sched.run(Q);
  for (const JobResult &R : First)
    EXPECT_EQ(R.Status, JobStatus::Ok);

  // Flip one interior byte of record "b" (an undetectable-by-framing
  // corruption: the line still parses as JSON). The CRC catches it.
  std::string Bytes = readFileBytes(Store.path());
  size_t Pos = Bytes.find("\"key\":\"b\"");
  ASSERT_NE(Pos, std::string::npos);
  Pos = Bytes.find("\"status\":\"ok\"", Pos);
  ASSERT_NE(Pos, std::string::npos);
  Bytes[Pos + 10] = 'O';
  writeFileBytes(Store.path(), Bytes);

  double DroppedBefore =
      support::Metrics::global().counterValue("store.crc_dropped");
  std::vector<JobResult> Second = Sched.run(Q);
  ASSERT_EQ(Second.size(), 3u);
  EXPECT_EQ(Second[0].Status, JobStatus::Skipped);
  EXPECT_EQ(Second[1].Status, JobStatus::Ok); // re-ran, not trusted
  EXPECT_EQ(Second[2].Status, JobStatus::Skipped);
  EXPECT_EQ(Second[1].Margin, First[1].Margin);
  EXPECT_GT(support::Metrics::global().counterValue("store.crc_dropped"),
            DroppedBefore);

  // The store ends with a fresh, CRC-valid record for "b".
  auto Keys = Scheduler::completedKeys(Store.path());
  EXPECT_EQ(Keys.size(), 3u);
  EXPECT_EQ(Keys.count("b"), 1u);
}

//===----------------------------------------------------------------------===//
// Shard merge
//===----------------------------------------------------------------------===//

namespace {

/// A store-shaped record with the given key and margin, CRC'd exactly as
/// the scheduler writes it.
std::string record(const std::string &Key, double Margin) {
  char Buf[256];
  std::snprintf(Buf, sizeof(Buf),
                "{\"key\":\"%s\",\"status\":\"ok\",\"method\":\"fast\","
                "\"certified\":true,\"margin\":%.17g,\"radius\":0,"
                "\"seconds\":0.5}",
                Key.c_str(), Margin);
  return Scheduler::withRecordCrc(Buf);
}

} // namespace

TEST(Coordination, MergeCollapsesDuplicatesAndDropsCorruptRecords) {
  TempDir Dir("coordination_test_merge");
  TempFile Out("coordination_test_merge_out.jsonl");

  // Shard 0: a, b. Shard 1: a zombie duplicate of `a` differing only in
  // the timing field (what a reclaimed worker's extra append looks
  // like), a CRC-flipped record, an unparseable line, and c.
  std::string DupA = record("a", 1.5);
  size_t Pos = DupA.find("\"seconds\":0.5");
  ASSERT_NE(Pos, std::string::npos);
  DupA.replace(Pos, 13, "\"seconds\":9.9");
  DupA = Scheduler::withRecordCrc(
      DupA.substr(0, DupA.rfind(",\"crc32\":")) + "}");
  std::string BadCrc = record("x", 3.0);
  size_t StatusPos = BadCrc.find("\"ok\"");
  ASSERT_NE(StatusPos, std::string::npos);
  BadCrc[StatusPos + 1] = 'O';
  writeFileBytes(support::shardPath(Dir.path(), 0),
                 record("a", 1.5) + "\n" + record("b", 2.0) + "\n");
  writeFileBytes(support::shardPath(Dir.path(), 1),
                 DupA + "\n" + BadCrc + "\nnot json\n" +
                     record("c", 2.5) + "\n");

  MergeReport MR;
  Error E;
  ASSERT_TRUE(verify::mergeShards(Dir.path(), 2, Out.path(), MR, &E))
      << E.what();
  EXPECT_EQ(MR.Shards, 2u);
  EXPECT_EQ(MR.Records, 3u);
  EXPECT_EQ(MR.DuplicatesCollapsed, 1u);
  EXPECT_EQ(MR.DroppedCrc, 1u);
  EXPECT_EQ(MR.DroppedMalformed, 1u);
  std::map<std::string, double> Want{{"a", 1.5}, {"b", 2.0}, {"c", 2.5}};
  EXPECT_EQ(marginsOf(Out.path()), Want);

  // Every merged line carries a valid CRC (merge preserves records).
  std::ifstream In(Out.path());
  std::string Line;
  while (std::getline(In, Line))
    EXPECT_EQ(Scheduler::checkRecordCrc(Line), Scheduler::RecordCrc::Ok)
        << Line;
}

TEST(Coordination, MergeRefusesSemanticConflicts) {
  TempDir Dir("coordination_test_conflict");
  TempFile Out("coordination_test_conflict_out.jsonl");
  // Two shards claim different margins for the same key: determinism
  // says that is impossible, so the store is corrupt and the merge must
  // fail loudly rather than silently pick one.
  writeFileBytes(support::shardPath(Dir.path(), 0), record("a", 1.5) + "\n");
  writeFileBytes(support::shardPath(Dir.path(), 1), record("a", 1.6) + "\n");
  MergeReport MR;
  Error E;
  EXPECT_FALSE(verify::mergeShards(Dir.path(), 2, Out.path(), MR, &E));
  EXPECT_EQ(E.code(), ErrorCode::StoreCorrupt);
}

//===----------------------------------------------------------------------===//
// Retry with deterministic backoff
//===----------------------------------------------------------------------===//

TEST(Scheduler, TransientFaultIsRetriedAndSucceeds) {
  if (!sitesCompiledIn())
    GTEST_SKIP() << "fault sites compiled out";
  TinySetup S;
  ScopedFaults F("sched.execute:1:fail");

  SchedulerOptions Opts;
  Opts.MaxRetries = 2;
  Opts.RetryBackoffMs = 1;
  double RetriesBefore =
      support::Metrics::global().counterValue("sched.retries");
  double BackoffBefore =
      support::Metrics::global().histogramStats("sched.retry_backoff_ms").Sum;

  JobQueue Q;
  Q.push(S.job(JobMethod::Fast));
  std::vector<JobResult> R = Scheduler(S.Model, Opts).run(Q);
  ASSERT_EQ(R.size(), 1u);
  EXPECT_EQ(R[0].Status, JobStatus::Ok);
  EXPECT_EQ(R[0].Retries, 1);
  EXPECT_EQ(support::Metrics::global().counterValue("sched.retries"),
            RetriesBefore + 1);
  // First retry waits exactly RetryBackoffMs (jitter-free schedule).
  EXPECT_EQ(
      support::Metrics::global().histogramStats("sched.retry_backoff_ms").Sum,
      BackoffBefore + 1);
  // The store line records the retry count for post-mortems.
  EXPECT_NE(Scheduler::resultJsonLine(R[0]).find("\"retries\":1"),
            std::string::npos);
}

TEST(Scheduler, RetryExhaustionIsATypedErrorThatNeverBlocksTheBatch) {
  if (!sitesCompiledIn())
    GTEST_SKIP() << "fault sites compiled out";
  TinySetup S;
  TempFile Store("coordination_test_exhaust.jsonl");
  ScopedFaults F("sched.execute:0:fail"); // every attempt fails

  SchedulerOptions Opts;
  Opts.JsonlPath = Store.path();
  Opts.MaxRetries = 3;
  Opts.RetryBackoffMs = 1;
  Opts.RetryBackoffMaxMs = 2;
  double BackoffBefore =
      support::Metrics::global().histogramStats("sched.retry_backoff_ms").Sum;

  JobQueue Q;
  Q.push(S.job(JobMethod::Fast, 0.02));
  Q.push(S.job(JobMethod::Fast, 0.05));
  std::vector<JobResult> R = Scheduler(S.Model, Opts).run(Q);
  ASSERT_EQ(R.size(), 2u);
  for (const JobResult &J : R) {
    EXPECT_EQ(J.Status, JobStatus::Error);
    EXPECT_EQ(J.Code, ErrorCode::FaultInjected);
    EXPECT_EQ(J.Retries, 3);
    EXPECT_FALSE(J.Certified);
  }
  // The deterministic schedule (base 1ms, cap 2ms) waits 1+2+2 per job.
  EXPECT_EQ(
      support::Metrics::global().histogramStats("sched.retry_backoff_ms").Sum,
      BackoffBefore + 2 * (1 + 2 + 2));
  // Both failures landed in the store as typed records.
  EXPECT_EQ(Scheduler::completedKeys(Store.path()).size(), 2u);
}

TEST(Scheduler, PermanentErrorsAreNeverRetried) {
  TinySetup S;
  SchedulerOptions Opts;
  Opts.MaxRetries = 5;
  Opts.RetryBackoffMs = 1;
  double RetriesBefore =
      support::Metrics::global().counterValue("sched.retries");

  JobQueue Q;
  JobSpec Bad = S.job(JobMethod::Fast);
  Bad.Word = 99; // permanent: job_invalid, retrying cannot help
  Q.push(Bad);
  std::vector<JobResult> R = Scheduler(S.Model, Opts).run(Q);
  ASSERT_EQ(R.size(), 1u);
  EXPECT_EQ(R[0].Status, JobStatus::Error);
  EXPECT_EQ(R[0].Code, ErrorCode::JobInvalid);
  EXPECT_EQ(R[0].Retries, 0);
  EXPECT_EQ(support::Metrics::global().counterValue("sched.retries"),
            RetriesBefore);
}

TEST(Scheduler, OutOfMemoryDegradesBeforeRetrying) {
  if (!sitesCompiledIn())
    GTEST_SKIP() << "fault sites compiled out";
  TinySetup S;
  SchedulerOptions Opts;
  Opts.MaxRetries = 1;
  Opts.RetryBackoffMs = 1;

  // A Precise job hit by an allocation fault degrades to Fast (cheaper
  // sound answer now) without spending a retry...
  {
    ScopedFaults F("sched.execute:1:alloc");
    JobQueue Q;
    Q.push(S.job(JobMethod::Precise));
    std::vector<JobResult> R = Scheduler(S.Model, Opts).run(Q);
    ASSERT_EQ(R.size(), 1u);
    EXPECT_EQ(R[0].Status, JobStatus::Degraded);
    EXPECT_EQ(R[0].MethodUsed, JobMethod::Fast);
    EXPECT_EQ(R[0].Retries, 0);
  }
  // ...while a Fast job has nothing below it, so the same fault takes
  // the transient-retry path instead.
  {
    ScopedFaults F("sched.execute:1:alloc");
    JobQueue Q;
    Q.push(S.job(JobMethod::Fast));
    std::vector<JobResult> R = Scheduler(S.Model, Opts).run(Q);
    ASSERT_EQ(R.size(), 1u);
    EXPECT_EQ(R[0].Status, JobStatus::Ok);
    EXPECT_EQ(R[0].Retries, 1);
  }
}

TEST(Scheduler, AbortCheckStopsJobsBeforeTheyStart) {
  TinySetup S;
  TempFile Store("coordination_test_abort.jsonl");
  SchedulerOptions Opts;
  Opts.JsonlPath = Store.path();
  Opts.AbortCheck = [] { return true; }; // lease lost before anything ran

  JobQueue Q;
  Q.push(S.job(JobMethod::Fast));
  Q.push(S.job(JobMethod::Precise));
  std::vector<JobResult> R = Scheduler(S.Model, Opts).run(Q);
  ASSERT_EQ(R.size(), 2u);
  for (const JobResult &J : R) {
    EXPECT_EQ(J.Status, JobStatus::Error);
    EXPECT_EQ(J.Code, ErrorCode::LeaseLost);
  }
  // Aborted jobs must not poison the store: another worker owns the
  // range now and will produce the real records.
  EXPECT_TRUE(Scheduler::completedKeys(Store.path()).empty());
}
