//===- tests/TestHelpers.h - Shared test utilities -------------*- C++ -*-===//
//
// Part of deept-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Utilities shared by the test suite: random Multi-norm Zonotopes and the
/// central soundness check "a concrete execution tracked through an
/// abstract transformer stays inside the output zonotope".
///
//===----------------------------------------------------------------------===//

#ifndef DEEPT_TESTS_TESTHELPERS_H
#define DEEPT_TESTS_TESTHELPERS_H

#include "support/Rng.h"
#include "zono/Zonotope.h"

#include <gtest/gtest.h>

#include <cmath>

namespace deept {
namespace testhelp {

using tensor::Matrix;
using zono::Zonotope;

/// A random Multi-norm Zonotope with dense coefficients (tests only).
inline Zonotope randomZonotope(size_t Rows, size_t Cols, double P,
                               size_t NumPhi, size_t NumEps,
                               support::Rng &Rng, double CoefScale = 0.3) {
  Matrix Center = Matrix::randn(Rows, Cols, Rng, 1.0);
  Zonotope Z = Zonotope::constant(Center, P);
  Matrix Phi = Matrix::randn(NumPhi, Rows * Cols, Rng, CoefScale);
  Matrix Eps = Matrix::randn(NumEps, Rows * Cols, Rng, CoefScale);
  Z.installCoeffs(std::move(Phi), std::move(Eps));
  return Z;
}

/// Checks that \p Concrete lies inside \p Out when the shared noise
/// symbols take the given values and the fresh symbols introduced by the
/// transformer (phi/eps beyond the shared prefix) range freely. For every
/// variable v:
///   |Concrete_v - affine(Out_v at shared noise)| <= fresh radius of v.
inline ::testing::AssertionResult
coveredAt(const Zonotope &Out, const std::vector<double> &SharedPhi,
          const std::vector<double> &SharedEps, const Matrix &Concrete,
          double Tol = 1e-7) {
  if (Concrete.rows() != Out.rows() || Concrete.cols() != Out.cols())
    return ::testing::AssertionFailure() << "shape mismatch";
  if (SharedPhi.size() > Out.numPhi() || SharedEps.size() > Out.numEps())
    return ::testing::AssertionFailure()
           << "shared noise prefix longer than the output's symbol space";
  for (size_t V = 0; V < Out.numVars(); ++V) {
    double Affine = Out.center().flat(V);
    for (size_t S = 0; S < SharedPhi.size(); ++S)
      Affine += SharedPhi[S] * Out.phiCoeffs().at(S, V);
    for (size_t S = 0; S < SharedEps.size(); ++S)
      Affine += SharedEps[S] * Out.epsCoeffs().at(S, V);
    double FreshRadius = 0.0;
    // Fresh phi symbols never appear (transformers only add eps symbols),
    // but be conservative and account for them.
    for (size_t S = SharedPhi.size(); S < Out.numPhi(); ++S)
      FreshRadius += std::fabs(Out.phiCoeffs().at(S, V));
    for (size_t S = SharedEps.size(); S < Out.numEps(); ++S)
      FreshRadius += std::fabs(Out.epsCoeffs().at(S, V));
    double Err = std::fabs(Concrete.flat(V) - Affine);
    if (Err > FreshRadius + Tol)
      return ::testing::AssertionFailure()
             << "variable " << V << ": concrete " << Concrete.flat(V)
             << " deviates " << Err << " from the affine part, fresh radius "
             << FreshRadius;
  }
  return ::testing::AssertionSuccess();
}

/// Checks Lo <= Concrete <= Hi elementwise with slack \p Tol.
inline ::testing::AssertionResult withinBounds(const Matrix &Concrete,
                                               const Matrix &Lo,
                                               const Matrix &Hi,
                                               double Tol = 1e-7) {
  for (size_t V = 0; V < Concrete.size(); ++V)
    if (Concrete.flat(V) < Lo.flat(V) - Tol ||
        Concrete.flat(V) > Hi.flat(V) + Tol)
      return ::testing::AssertionFailure()
             << "variable " << V << ": " << Concrete.flat(V)
             << " outside [" << Lo.flat(V) << ", " << Hi.flat(V) << "]";
  return ::testing::AssertionSuccess();
}

} // namespace testhelp
} // namespace deept

#endif // DEEPT_TESTS_TESTHELPERS_H
