//===- tests/forward_test.cpp ----------------------------------*- C++ -*-===//
//
// Tests for the forward linear-bound propagation (crown/Forward): exact
// on affine graphs, sound through nonlinearities and products, memory
// accounting, and agreement with backward bounds on degenerate inputs.
//
//===----------------------------------------------------------------------===//

#include "crown/Backward.h"
#include "crown/Forward.h"
#include "crown/TransformerGraph.h"

#include "nn/Train.h"
#include "support/Rng.h"
#include "zono/Zonotope.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace deept;
using namespace deept::crown;
using tensor::Matrix;

namespace {

InputSpec boxInput(Matrix Center, double Radius) {
  InputSpec Spec;
  Spec.Radius = Matrix(1, Center.cols(), Radius);
  Spec.Center = std::move(Center);
  Spec.P = Matrix::InfNorm;
  return Spec;
}

} // namespace

TEST(CrownForward, ExactOnAffineChain) {
  support::Rng Rng(1);
  Graph G;
  int X = G.addInput(boxInput(Matrix::randn(1, 4, Rng), 0.1), 0);
  Matrix W1 = Matrix::randn(4, 3, Rng), B1 = Matrix::randn(1, 3, Rng);
  Matrix W2 = Matrix::randn(3, 2, Rng), B2 = Matrix::randn(1, 2, Rng);
  int H = G.addAffine(X, W1, B1, 1);
  int Y = G.addAffine(H, W2, B2, 2);
  ASSERT_TRUE(computeForwardBounds(G, ForwardOptions()));
  // Compare against the (exact for affine) backward bounds.
  Graph G2;
  int X2 = G2.addInput(G.inputSpec(), 0);
  int H2 = G2.addAffine(X2, W1, B1, 1);
  int Y2 = G2.addAffine(H2, W2, B2, 2);
  (void)H2;
  BackwardResult R = computeBounds(G2, Y2, BackwardOptions());
  EXPECT_TRUE(tensor::allClose(G.node(Y).Lo, R.Lo, 1e-9));
  EXPECT_TRUE(tensor::allClose(G.node(Y).Hi, R.Hi, 1e-9));
}

TEST(CrownForward, SoundThroughNonlinearChain) {
  support::Rng Rng(2);
  Graph G;
  Matrix Center = Matrix::randn(1, 3, Rng);
  int X = G.addInput(boxInput(Center, 0.25), 0);
  Matrix W = Matrix::randn(3, 3, Rng);
  int H = G.addAffine(X, W, Matrix::randn(1, 3, Rng), 1);
  int R1 = G.addUnary(H, UnaryFn::Relu, 1);
  int M = G.addMul(R1, H, 1);
  int T = G.addUnary(M, UnaryFn::Tanh, 2);
  ASSERT_TRUE(computeForwardBounds(G, ForwardOptions()));
  const Node &Out = G.node(T);
  for (int I = 0; I < 300; ++I) {
    Matrix XV = Center;
    for (size_t C = 0; C < 3; ++C)
      XV.flat(C) += Rng.uniform(-0.25, 0.25);
    Matrix Val = G.evaluate(XV).back();
    for (size_t C = 0; C < 3; ++C) {
      EXPECT_GE(Val.flat(C), Out.Lo.flat(C) - 1e-9);
      EXPECT_LE(Val.flat(C), Out.Hi.flat(C) + 1e-9);
    }
  }
}

TEST(CrownForward, MemoryBudgetAborts) {
  support::Rng Rng(3);
  Graph G;
  int X = G.addInput(boxInput(Matrix::randn(1, 16, Rng), 0.1), 0);
  int H = X;
  for (int L = 0; L < 3; ++L)
    H = G.addUnary(G.addAffine(H, Matrix::randn(16, 16, Rng),
                               Matrix(1, 16), L + 1),
                   UnaryFn::Relu, L + 1);
  ForwardOptions Opts;
  Opts.MemoryBudgetBytes = 256;
  size_t Peak = 0, Total = 0;
  EXPECT_FALSE(computeForwardBounds(G, Opts, &Peak, &Total));
  EXPECT_GT(Total, 256u);
}

TEST(CrownForward, DegenerateRadiusIsExactOnTransformer) {
  support::Rng Rng(4);
  data::SyntheticCorpus Corpus(data::CorpusConfig::sstLike(16));
  nn::TransformerConfig C;
  C.MaxLen = 12;
  C.EmbedDim = 16;
  C.NumHeads = 2;
  C.HiddenDim = 16;
  C.NumLayers = 2;
  nn::TransformerModel M =
      nn::TransformerModel::init(C, Corpus.embeddings(), Rng);
  support::Rng DataRng(5);
  data::Sentence S = Corpus.sampleSentence(DataRng);
  InputSpec Spec = lpBallSpec(M, S.Tokens, 0, 2.0, 0.0);
  BuiltGraph Built =
      buildTransformerGraph(M, S.Tokens.size(), Spec, S.Label);
  ASSERT_TRUE(computeForwardBounds(Built.G, ForwardOptions()));
  Matrix Logits = M.forwardEmbeddings(M.embed(S.Tokens));
  const Node &Out = Built.G.node(Built.Logits);
  for (size_t J = 0; J < 2; ++J) {
    EXPECT_NEAR(Out.Lo.flat(J), Logits.flat(J), 1e-6);
    EXPECT_NEAR(Out.Hi.flat(J), Logits.flat(J), 1e-6);
  }
}

TEST(CrownForward, SoundOnPerturbedTransformer) {
  support::Rng Rng(6);
  data::SyntheticCorpus Corpus(data::CorpusConfig::sstLike(16));
  nn::TransformerConfig C;
  C.MaxLen = 12;
  C.EmbedDim = 16;
  C.NumHeads = 2;
  C.HiddenDim = 16;
  C.NumLayers = 1;
  nn::TransformerModel M =
      nn::TransformerModel::init(C, Corpus.embeddings(), Rng);
  support::Rng DataRng(7);
  data::Sentence S = Corpus.sampleSentence(DataRng);
  Matrix X = M.embed(S.Tokens);
  for (double P : {1.0, 2.0, Matrix::InfNorm}) {
    InputSpec Spec = lpBallSpec(M, S.Tokens, 0, P, 0.02);
    BuiltGraph Built =
        buildTransformerGraph(M, S.Tokens.size(), Spec, S.Label);
    ASSERT_TRUE(computeForwardBounds(Built.G, ForwardOptions()));
    const Node &Out = Built.G.node(Built.Logits);
    zono::Zonotope Ball = zono::Zonotope::lpBallOnRow(X, 0, P, 0.02);
    for (int I = 0; I < 25; ++I) {
      Matrix L = M.forwardEmbeddings(Ball.sample(Rng, I % 2 == 0));
      for (size_t J = 0; J < 2; ++J) {
        EXPECT_GE(L.flat(J), Out.Lo.flat(J) - 1e-7);
        EXPECT_LE(L.flat(J), Out.Hi.flat(J) + 1e-7);
      }
    }
  }
}

TEST(CrownForward, SharedOperandMulIsHandled) {
  // Mul(x, x) (the variance computation of standard layer norm) must not
  // double-free or misbound.
  support::Rng Rng(8);
  Graph G;
  Matrix Center = Matrix::randn(1, 3, Rng);
  int X = G.addInput(boxInput(Center, 0.2), 0);
  int Sq = G.addMul(X, X, 1);
  ASSERT_TRUE(computeForwardBounds(G, ForwardOptions()));
  const Node &Out = G.node(Sq);
  for (int I = 0; I < 100; ++I) {
    Matrix XV = Center;
    for (size_t C2 = 0; C2 < 3; ++C2)
      XV.flat(C2) += Rng.uniform(-0.2, 0.2);
    for (size_t C2 = 0; C2 < 3; ++C2) {
      double V = XV.flat(C2) * XV.flat(C2);
      EXPECT_GE(V, Out.Lo.flat(C2) - 1e-9);
      EXPECT_LE(V, Out.Hi.flat(C2) + 1e-9);
    }
  }
}
