//===- tests/autograd_test.cpp --------------------------------*- C++ -*-===//
//
// Gradient checks for the autograd tape: every op's analytic gradient is
// verified against central finite differences.
//
//===----------------------------------------------------------------------===//

#include "autograd/Adam.h"
#include "autograd/Tape.h"

#include "support/Rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <functional>

using namespace deept;
using namespace deept::autograd;
using tensor::Matrix;

namespace {

/// Checks d(scalar Build(X)) / dX against central differences.
void checkGradient(Matrix X0,
                   const std::function<ValueId(Tape &, ValueId)> &Build,
                   double Tol = 1e-5) {
  Tape T;
  ValueId X = T.input(X0);
  ValueId Loss = Build(T, X);
  ASSERT_EQ(T.value(Loss).size(), 1u) << "builder must produce a scalar";
  T.backward(Loss);
  Matrix Analytic = T.grad(X);

  const double H = 1e-5;
  for (size_t I = 0; I < X0.size(); ++I) {
    Matrix XP = X0, XM = X0;
    XP.flat(I) += H;
    XM.flat(I) -= H;
    Tape TP, TM;
    double FP = TP.value(Build(TP, TP.input(XP))).flat(0);
    double FM = TM.value(Build(TM, TM.input(XM))).flat(0);
    double Numeric = (FP - FM) / (2 * H);
    EXPECT_NEAR(Analytic.flat(I), Numeric, Tol)
        << "gradient mismatch at element " << I;
  }
}

/// Sums all elements to make a scalar from any node.
ValueId sumAll(Tape &T, ValueId A) {
  const Matrix &V = T.value(A);
  Matrix Ones(V.cols(), 1, 1.0);
  ValueId OnesId = T.input(Ones);
  ValueId RowSums = T.matmul(A, OnesId); // R x 1
  Matrix OnesR(1, V.rows(), 1.0);
  return T.matmul(T.input(OnesR), RowSums); // 1 x 1
}

/// A weighted sum making the scalar sensitive to each element differently.
ValueId weightedSum(Tape &T, ValueId A, support::Rng &Rng) {
  const Matrix &V = T.value(A);
  ValueId W = T.input(Matrix::randn(V.rows(), V.cols(), Rng));
  return sumAll(T, T.hadamard(A, W));
}

} // namespace

TEST(Autograd, MatmulGradient) {
  support::Rng Rng(1);
  Matrix X = Matrix::randn(3, 4, Rng);
  Matrix W = Matrix::randn(4, 2, Rng);
  checkGradient(X, [&](Tape &T, ValueId XId) {
    return sumAll(T, T.matmul(XId, T.input(W)));
  });
  // Gradient with respect to the second operand.
  checkGradient(W, [&](Tape &T, ValueId WId) {
    return sumAll(T, T.matmul(T.input(X), WId));
  });
}

TEST(Autograd, MatmulTBGradient) {
  support::Rng Rng(2);
  Matrix X = Matrix::randn(3, 4, Rng);
  Matrix W = Matrix::randn(5, 4, Rng);
  checkGradient(X, [&](Tape &T, ValueId XId) {
    return sumAll(T, T.matmulTB(XId, T.input(W)));
  });
  checkGradient(W, [&](Tape &T, ValueId WId) {
    return sumAll(T, T.matmulTB(T.input(X), WId));
  });
}

TEST(Autograd, ElementwiseGradients) {
  support::Rng Rng(3);
  Matrix X = Matrix::randn(2, 3, Rng);
  support::Rng WR(30);
  checkGradient(X, [&](Tape &T, ValueId XId) {
    support::Rng R = WR;
    return weightedSum(T, T.tanhOp(XId), R);
  });
  // ReLU needs inputs away from the kink.
  Matrix XR = X.map([](double V) { return V + (V >= 0 ? 0.5 : -0.5); });
  checkGradient(XR, [&](Tape &T, ValueId XId) {
    support::Rng R = WR;
    return weightedSum(T, T.relu(XId), R);
  });
  Matrix XP = X.map([](double V) { return std::fabs(V) + 1.0; });
  checkGradient(XP, [&](Tape &T, ValueId XId) {
    support::Rng R = WR;
    return weightedSum(T, T.recip(XId), R);
  });
  checkGradient(XP, [&](Tape &T, ValueId XId) {
    support::Rng R = WR;
    return weightedSum(T, T.sqrtOp(XId), R);
  });
}

TEST(Autograd, SoftmaxGradient) {
  support::Rng Rng(4);
  Matrix X = Matrix::randn(2, 4, Rng);
  support::Rng WR(40);
  checkGradient(X, [&](Tape &T, ValueId XId) {
    support::Rng R = WR;
    return weightedSum(T, T.rowSoftmax(XId), R);
  });
}

TEST(Autograd, BroadcastGradients) {
  support::Rng Rng(5);
  Matrix X = Matrix::randn(3, 4, Rng);
  Matrix Gamma = Matrix::randn(1, 4, Rng);
  Matrix Scale = Matrix::randn(3, 1, Rng);
  support::Rng WR(50);
  checkGradient(X, [&](Tape &T, ValueId XId) {
    support::Rng R = WR;
    return weightedSum(T, T.mulRowBroadcast(XId, T.input(Gamma)), R);
  });
  checkGradient(Gamma, [&](Tape &T, ValueId GId) {
    support::Rng R = WR;
    return weightedSum(T, T.mulRowBroadcast(T.input(X), GId), R);
  });
  checkGradient(Scale, [&](Tape &T, ValueId SId) {
    support::Rng R = WR;
    return weightedSum(T, T.mulColBroadcast(T.input(X), SId), R);
  });
  checkGradient(X, [&](Tape &T, ValueId XId) {
    support::Rng R = WR;
    return weightedSum(T, T.addRowBroadcast(XId, T.input(Gamma)), R);
  });
}

TEST(Autograd, StructureGradients) {
  support::Rng Rng(6);
  Matrix X = Matrix::randn(3, 6, Rng);
  support::Rng WR(60);
  checkGradient(X, [&](Tape &T, ValueId XId) {
    support::Rng R = WR;
    return weightedSum(T, T.subRowMean(XId), R);
  });
  checkGradient(X, [&](Tape &T, ValueId XId) {
    support::Rng R = WR;
    return weightedSum(T, T.rowMeans(XId), R);
  });
  checkGradient(X, [&](Tape &T, ValueId XId) {
    support::Rng R = WR;
    return weightedSum(T, T.colSlice(XId, 1, 4), R);
  });
  checkGradient(X, [&](Tape &T, ValueId XId) {
    support::Rng R = WR;
    return weightedSum(T, T.transpose(XId), R);
  });
  checkGradient(X, [&](Tape &T, ValueId XId) {
    support::Rng R = WR;
    ValueId A = T.colSlice(XId, 0, 2);
    ValueId B = T.colSlice(XId, 2, 6);
    return weightedSum(T, T.concatCols({A, B}), R);
  });
  checkGradient(X, [&](Tape &T, ValueId XId) {
    support::Rng R = WR;
    return weightedSum(T, T.gatherRows(XId, {2, 0, 2}), R);
  });
}

TEST(Autograd, CrossEntropyGradient) {
  support::Rng Rng(7);
  Matrix Logits = Matrix::randn(1, 2, Rng);
  checkGradient(Logits, [&](Tape &T, ValueId L) {
    return T.crossEntropyLogits(L, 1);
  });
}

TEST(Autograd, SharedSubexpressionAccumulates) {
  // y = x * x summed: gradient 2x, exercised through two uses of x.
  Matrix X = Matrix::fromRows({{2.0, -3.0}});
  Tape T;
  ValueId XId = T.input(X);
  ValueId Y = sumAll(T, T.hadamard(XId, XId));
  T.backward(Y);
  EXPECT_NEAR(T.grad(XId).at(0, 0), 4.0, 1e-12);
  EXPECT_NEAR(T.grad(XId).at(0, 1), -6.0, 1e-12);
}

TEST(Adam, MinimisesQuadratic) {
  // Minimise ||W - Target||^2 with Adam; must converge close to Target.
  support::Rng Rng(8);
  Matrix W = Matrix::randn(2, 2, Rng);
  Matrix Target = Matrix::fromRows({{1, -2}, {3, 0.5}});
  AdamOptions Opts;
  Opts.LearningRate = 0.05;
  Adam Opt(Opts);
  Opt.registerParam(&W);
  for (int Step = 0; Step < 500; ++Step) {
    Matrix G = (W - Target) * 2.0;
    Opt.step({G});
  }
  EXPECT_TRUE(tensor::allClose(W, Target, 1e-2));
}

TEST(Adam, GradientClippingBoundsUpdates) {
  Matrix W(1, 1, 0.0);
  AdamOptions Opts;
  Opts.LearningRate = 0.1;
  Opts.GradClipNorm = 1.0;
  Adam Opt(Opts);
  Opt.registerParam(&W);
  Matrix Huge(1, 1, 1e9);
  Opt.step({Huge});
  // A clipped first Adam step moves by about the learning rate.
  EXPECT_LE(std::fabs(W.at(0, 0)), 0.2);
}
