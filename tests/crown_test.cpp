//===- tests/crown_test.cpp -----------------------------------*- C++ -*-===//
//
// Tests for the CROWN baseline: relaxation envelopes, graph lowering
// fidelity, backsubstitution soundness and the Backward/BaF precision
// ordering.
//
//===----------------------------------------------------------------------===//

#include "crown/Backward.h"
#include "crown/CrownVerifier.h"
#include "crown/Relaxations.h"
#include "crown/TransformerGraph.h"

#include "nn/Train.h"
#include "zono/Zonotope.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace deept;
using namespace deept::crown;
using tensor::Matrix;

namespace {

struct Fixture {
  data::SyntheticCorpus Corpus;
  nn::TransformerModel Model;
  std::vector<data::Sentence> Test;

  Fixture() : Corpus(data::CorpusConfig::sstLike(16)) {
    support::Rng Rng(900);
    nn::TransformerConfig C;
    C.MaxLen = 12;
    C.EmbedDim = 16;
    C.NumHeads = 2;
    C.HiddenDim = 16;
    C.NumLayers = 2;
    Model = nn::TransformerModel::init(C, Corpus.embeddings(), Rng);
    support::Rng DataRng(901);
    auto Train = Corpus.sampleDataset(192, DataRng);
    Test = Corpus.sampleDataset(12, DataRng);
    nn::TrainOptions Opts;
    Opts.Steps = 100;
    Opts.BatchSize = 8;
    nn::trainTransformer(Model, Corpus, Train, Opts);
  }
};

const Fixture &fixture() {
  static Fixture F;
  return F;
}

} // namespace

//===----------------------------------------------------------------------===//
// Relaxations
//===----------------------------------------------------------------------===//

TEST(CrownRelaxations, UnaryEnvelopesHoldOnGrid) {
  struct Case {
    UnaryFn Fn;
    double (*F)(double);
    double L, U;
  };
  Case Cases[] = {
      {UnaryFn::Relu, [](double X) { return X > 0 ? X : 0.0; }, -2.0, 3.0},
      {UnaryFn::Relu, [](double X) { return X > 0 ? X : 0.0; }, -3.0, 1.0},
      {UnaryFn::Tanh, [](double X) { return std::tanh(X); }, -2.0, 1.5},
      {UnaryFn::Tanh, [](double X) { return std::tanh(X); }, 0.2, 2.0},
      {UnaryFn::Tanh, [](double X) { return std::tanh(X); }, -2.0, -0.1},
      {UnaryFn::Exp, [](double X) { return std::exp(X); }, -1.5, 2.0},
      {UnaryFn::Recip, [](double X) { return 1.0 / X; }, 0.4, 7.0},
      {UnaryFn::Sqrt, [](double X) { return std::sqrt(X); }, 0.2, 9.0},
  };
  for (const Case &C : Cases) {
    TwoLines T = unaryLines(C.Fn, C.L, C.U);
    for (int I = 0; I <= 300; ++I) {
      double X = C.L + (C.U - C.L) * I / 300.0;
      double Y = C.F(X);
      EXPECT_LE(T.LowerSlope * X + T.LowerOffset, Y + 1e-9);
      EXPECT_GE(T.UpperSlope * X + T.UpperOffset, Y - 1e-9);
    }
  }
}

TEST(CrownRelaxations, McCormickEnvelopesHoldOnGrid) {
  struct Box {
    double LX, UX, LY, UY;
  };
  Box Boxes[] = {
      {-1, 2, -3, 1}, {0.5, 2, 1, 4}, {-2, -0.5, -1, 3}, {-1, 1, -1, 1}};
  for (const Box &B : Boxes) {
    MulLines M = mulLines(B.LX, B.UX, B.LY, B.UY);
    for (int I = 0; I <= 20; ++I) {
      for (int J = 0; J <= 20; ++J) {
        double X = B.LX + (B.UX - B.LX) * I / 20.0;
        double Y = B.LY + (B.UY - B.LY) * J / 20.0;
        double Z = X * Y;
        EXPECT_LE(M.ALo * X + M.BLo * Y + M.CLo, Z + 1e-9);
        EXPECT_GE(M.AUp * X + M.BUp * Y + M.CUp, Z - 1e-9);
      }
    }
  }
}

//===----------------------------------------------------------------------===//
// Backsubstitution basics
//===----------------------------------------------------------------------===//

TEST(CrownBackward, ExactOnAffineChain) {
  // y = (x W1 + b1) W2 + b2 over an linf box: CROWN is exact for affine
  // graphs (matches direct interval computation of the composed map).
  support::Rng Rng(1);
  InputSpec Spec;
  Spec.Center = Matrix::randn(1, 4, Rng);
  Spec.P = Matrix::InfNorm;
  Spec.Radius = Matrix(1, 4, 0.1);
  Graph G;
  int X = G.addInput(Spec, 0);
  Matrix W1 = Matrix::randn(4, 3, Rng), B1 = Matrix::randn(1, 3, Rng);
  Matrix W2 = Matrix::randn(3, 2, Rng), B2 = Matrix::randn(1, 2, Rng);
  int H = G.addAffine(X, W1, B1, 1);
  int Y = G.addAffine(H, W2, B2, 2);
  BackwardOptions Opts;
  BackwardResult R = computeBounds(G, Y, Opts);
  Matrix W = tensor::matmul(W1, W2);
  Matrix Center =
      tensor::addRowBroadcast(tensor::matmul(Spec.Center, W),
                              tensor::matmul(B1, W2) + B2);
  for (size_t C = 0; C < 2; ++C) {
    double Rad = 0.0;
    for (size_t I = 0; I < 4; ++I)
      Rad += std::fabs(W.at(I, C)) * 0.1;
    EXPECT_NEAR(R.Lo.at(0, C), Center.at(0, C) - Rad, 1e-9);
    EXPECT_NEAR(R.Hi.at(0, C), Center.at(0, C) + Rad, 1e-9);
  }
}

TEST(CrownBackward, LpBallConcretizationUsesDualNorm) {
  // One affine layer over an l2 ball: bounds are center +- eps ||w||_2.
  support::Rng Rng(2);
  InputSpec Spec;
  Spec.Center = Matrix::randn(1, 5, Rng);
  Spec.P = 2.0;
  Spec.Radius = Matrix(1, 5, 0.3);
  Graph G;
  int X = G.addInput(Spec, 0);
  Matrix W = Matrix::randn(5, 1, Rng);
  int Y = G.addAffine(X, W, Matrix(1, 1), 1);
  BackwardResult R = computeBounds(G, Y, BackwardOptions());
  double Center = 0.0, NormSq = 0.0;
  for (size_t I = 0; I < 5; ++I) {
    Center += Spec.Center.flat(I) * W.at(I, 0);
    NormSq += W.at(I, 0) * W.at(I, 0);
  }
  EXPECT_NEAR(R.Lo.at(0, 0), Center - 0.3 * std::sqrt(NormSq), 1e-9);
  EXPECT_NEAR(R.Hi.at(0, 0), Center + 0.3 * std::sqrt(NormSq), 1e-9);
}

TEST(CrownBackward, SoundThroughNonlinearChain) {
  support::Rng Rng(3);
  InputSpec Spec;
  Spec.Center = Matrix::randn(1, 3, Rng);
  Spec.P = Matrix::InfNorm;
  Spec.Radius = Matrix(1, 3, 0.2);
  Graph G;
  int X = G.addInput(Spec, 0);
  Matrix W = Matrix::randn(3, 3, Rng);
  int H = G.addAffine(X, W, Matrix::randn(1, 3, Rng), 1);
  int R1 = G.addUnary(H, UnaryFn::Relu, 1);
  int M = G.addMul(R1, H, 1);
  int T = G.addUnary(M, UnaryFn::Tanh, 2);
  BackwardOptions Opts;
  ASSERT_TRUE(computeAllBounds(G, Opts));
  BackwardResult R = computeBounds(G, T, Opts);
  for (int I = 0; I < 200; ++I) {
    Matrix XV = Spec.Center;
    for (size_t C = 0; C < 3; ++C)
      XV.flat(C) += Rng.uniform(-0.2, 0.2);
    Matrix Out = G.evaluate(XV).back();
    for (size_t C = 0; C < 3; ++C) {
      EXPECT_GE(Out.flat(C), R.Lo.flat(C) - 1e-9);
      EXPECT_LE(Out.flat(C), R.Hi.flat(C) + 1e-9);
    }
  }
}

TEST(CrownBackward, MemoryBudgetAborts) {
  support::Rng Rng(4);
  InputSpec Spec;
  Spec.Center = Matrix::randn(1, 32, Rng);
  Spec.P = Matrix::InfNorm;
  Spec.Radius = Matrix(1, 32, 0.1);
  Graph G;
  int X = G.addInput(Spec, 0);
  int H = X;
  for (int L = 0; L < 4; ++L)
    H = G.addUnary(G.addAffine(H, Matrix::randn(32, 32, Rng),
                               Matrix(1, 32), L + 1),
                   UnaryFn::Relu, L + 1);
  BackwardOptions Opts;
  Opts.MemoryBudgetBytes = 1024; // absurdly small
  size_t Peak = 0;
  EXPECT_FALSE(computeAllBounds(G, Opts, &Peak));
  EXPECT_GT(Peak, 1024u);
}

//===----------------------------------------------------------------------===//
// Transformer graph lowering
//===----------------------------------------------------------------------===//

TEST(CrownTransformer, GraphEvaluatesToModelLogits) {
  const Fixture &F = fixture();
  for (bool StdDiv : {false}) {
    (void)StdDiv;
    const data::Sentence &S = F.Test[0];
    Matrix X = F.Model.embed(S.Tokens);
    InputSpec Spec = lpBallSpec(F.Model, S.Tokens, 0, 2.0, 0.0);
    BuiltGraph Built =
        buildTransformerGraph(F.Model, S.Tokens.size(), Spec, S.Label);
    auto Vals = Built.G.evaluate(X.reshaped(1, X.size()));
    Matrix Logits = F.Model.forwardEmbeddings(X);
    EXPECT_TRUE(tensor::allClose(Vals[Built.Logits], Logits, 1e-9));
    double Margin =
        Logits.at(0, S.Label) - Logits.at(0, 1 - S.Label);
    EXPECT_NEAR(Vals[Built.Margin].at(0, 0), Margin, 1e-9);
  }
}

TEST(CrownTransformer, StdLayerNormGraphEvaluates) {
  support::Rng Rng(902);
  const Fixture &F = fixture();
  nn::TransformerConfig C = F.Model.Config;
  C.LayerNormStdDiv = true;
  nn::TransformerModel M =
      nn::TransformerModel::init(C, F.Corpus.embeddings(), Rng);
  const data::Sentence &S = F.Test[1];
  Matrix X = M.embed(S.Tokens);
  InputSpec Spec = lpBallSpec(M, S.Tokens, 0, 2.0, 0.0);
  BuiltGraph Built =
      buildTransformerGraph(M, S.Tokens.size(), Spec, S.Label);
  auto Vals = Built.G.evaluate(X.reshaped(1, X.size()));
  EXPECT_TRUE(
      tensor::allClose(Vals[Built.Logits], M.forwardEmbeddings(X), 1e-9));
}

namespace {

void checkCrownSoundness(CrownMode Mode, uint64_t Seed) {
  const Fixture &F = fixture();
  CrownConfig Cfg;
  Cfg.Mode = Mode;
  const data::Sentence &S = F.Test[2];
  Matrix X = F.Model.embed(S.Tokens);
  size_t Pred = F.Model.forwardEmbeddings(X).argmax();
  double Radius = 0.02;
  for (double P : {1.0, 2.0, Matrix::InfNorm}) {
    InputSpec Spec = lpBallSpec(F.Model, S.Tokens, 1, P, Radius);
    BuiltGraph Built =
        buildTransformerGraph(F.Model, S.Tokens.size(), Spec, Pred);
    BackwardOptions Opts;
    Opts.MaxLevelsBack = Mode == CrownMode::Backward ? -1 : 1;
    ASSERT_TRUE(computeAllBounds(Built.G, Opts));
    BackwardResult R = computeBounds(Built.G, Built.Margin, Opts);
    // Sample embeddings in the ball and compare concrete margins.
    support::Rng Rng(Seed);
    zono::Zonotope Ball = zono::Zonotope::lpBallOnRow(X, 1, P, Radius);
    for (int I = 0; I < 15; ++I) {
      Matrix XP = Ball.sample(Rng, I % 2 == 0);
      Matrix L = F.Model.forwardEmbeddings(XP);
      double Margin = L.at(0, Pred) - L.at(0, 1 - Pred);
      EXPECT_GE(Margin, R.Lo.at(0, 0) - 1e-7);
      EXPECT_LE(Margin, R.Hi.at(0, 0) + 1e-7);
    }
  }
}

} // namespace

TEST(CrownTransformer, BackwardSoundOnSamples) {
  checkCrownSoundness(CrownMode::Backward, 903);
}

TEST(CrownTransformer, BaFSoundOnSamples) {
  checkCrownSoundness(CrownMode::BaF, 904);
}

TEST(CrownTransformer, BackwardAtLeastAsPreciseAsBaF) {
  const Fixture &F = fixture();
  const data::Sentence &S = F.Test[3];
  size_t Pred = F.Model.classify(S.Tokens);
  CrownConfig Back;
  Back.Mode = CrownMode::Backward;
  CrownConfig BaF;
  BaF.Mode = CrownMode::BaF;
  double MB = CrownVerifier(F.Model, Back)
                  .certifyMarginLpBall(S.Tokens, 0, 2.0, 0.02, Pred)
                  .MarginLowerBound;
  double MF = CrownVerifier(F.Model, BaF)
                  .certifyMarginLpBall(S.Tokens, 0, 2.0, 0.02, Pred)
                  .MarginLowerBound;
  EXPECT_GE(MB, MF - 1e-9);
}

TEST(CrownTransformer, VerifierMemoryBudgetReportsOOM) {
  const Fixture &F = fixture();
  const data::Sentence &S = F.Test[4];
  size_t Pred = F.Model.classify(S.Tokens);
  CrownConfig Cfg;
  Cfg.Mode = CrownMode::Backward;
  Cfg.MemoryBudgetBytes = 10 * 1024;
  CrownOutcome O = CrownVerifier(F.Model, Cfg)
                       .certifyMarginLpBall(S.Tokens, 0, 2.0, 0.01, Pred);
  EXPECT_TRUE(O.OutOfMemory);
}

TEST(CrownTransformer, SynonymBoxCertificationRuns) {
  const Fixture &F = fixture();
  CrownVerifier V(F.Model);
  int Agree = 0, Total = 0;
  for (int Case = 0; Case < 4; ++Case) {
    const data::Sentence &S = F.Test[Case];
    if (F.Model.classify(S.Tokens) != S.Label)
      continue;
    ++Total;
    CrownOutcome O = V.certifyMarginSynonymBox(F.Corpus, S, S.Label);
    EXPECT_FALSE(O.OutOfMemory);
    Agree += O.MarginLowerBound > 0;
  }
  EXPECT_GT(Total, 0);
  (void)Agree; // certification success depends on training; soundness is
               // covered by the sampling tests above
}
