//===- tests/argparse_test.cpp ---------------------------------*- C++ -*-===//

#include "support/ArgParse.h"
#include "support/Parallel.h"

#include <gtest/gtest.h>

using namespace deept::support;

namespace {

ArgParse parse(std::initializer_list<const char *> Argv,
               const std::vector<std::string> &Switches = {}) {
  std::vector<const char *> V = Argv;
  return ArgParse(static_cast<int>(V.size()), V.data(), Switches);
}

} // namespace

TEST(ArgParse, PositionalAndFlags) {
  ArgParse A = parse({"prog", "train", "--out", "m.dptm", "--layers", "3"});
  ASSERT_EQ(A.positional().size(), 1u);
  EXPECT_EQ(A.positional()[0], "train");
  EXPECT_EQ(A.get("out"), "m.dptm");
  EXPECT_EQ(A.getInt("layers", 0), 3);
  EXPECT_FALSE(A.has("missing"));
  EXPECT_EQ(A.get("missing", "fallback"), "fallback");
}

TEST(ArgParse, SwitchesConsumeNoValue) {
  ArgParse A = parse({"prog", "train", "--robust", "positional2"},
                     {"robust"});
  EXPECT_TRUE(A.has("robust"));
  ASSERT_EQ(A.positional().size(), 2u);
  EXPECT_EQ(A.positional()[1], "positional2");
}

TEST(ArgParse, EqualsForm) {
  ArgParse A = parse({"prog", "--norm=linf", "--eps=0.25"});
  EXPECT_EQ(A.get("norm"), "linf");
  EXPECT_DOUBLE_EQ(A.getDouble("eps", 0.0), 0.25);
}

TEST(ArgParse, FlagBeforeAnotherFlagActsAsSwitch) {
  ArgParse A = parse({"prog", "--verbose", "--out", "x"});
  EXPECT_TRUE(A.has("verbose"));
  EXPECT_EQ(A.get("verbose"), "");
  EXPECT_EQ(A.get("out"), "x");
}

TEST(ArgParse, TrailingFlagWithoutValue) {
  ArgParse A = parse({"prog", "--flag"});
  EXPECT_TRUE(A.has("flag"));
  EXPECT_EQ(A.get("flag", "d"), "");
}

TEST(ArgParse, IntAndDoubleDefaults) {
  ArgParse A = parse({"prog", "--n", "42", "--x", "2.5"});
  EXPECT_EQ(A.getInt("n", 0), 42);
  EXPECT_DOUBLE_EQ(A.getDouble("x", 0.0), 2.5);
  EXPECT_EQ(A.getInt("absent", 7), 7);
  EXPECT_DOUBLE_EQ(A.getDouble("absent", 1.5), 1.5);
}

TEST(ArgParse, UnknownFlagDetection) {
  ArgParse A = parse({"prog", "--out", "x", "--typo", "y"});
  auto Unknown = A.unknownFlags({"out"});
  ASSERT_EQ(Unknown.size(), 1u);
  EXPECT_EQ(Unknown[0], "typo");
}

TEST(ArgParse, GetIntStrictAcceptsWellFormedIntegers) {
  ArgParse A = parse({"prog", "--deadline-ms", "250", "--neg", "-3"});
  long Out = 7;
  std::string Err;
  EXPECT_TRUE(A.getIntStrict("deadline-ms", Out, &Err));
  EXPECT_EQ(Out, 250);
  EXPECT_TRUE(A.getIntStrict("neg", Out, &Err));
  EXPECT_EQ(Out, -3);
  // Absent flags succeed without touching the output.
  Out = 42;
  EXPECT_TRUE(A.getIntStrict("absent", Out, &Err));
  EXPECT_EQ(Out, 42);
}

TEST(ArgParse, GetIntStrictRejectsMalformedValues) {
  ArgParse A = parse({"prog", "--a", "12x", "--b", "abc", "--c", "1.5",
                      "--d", ""});
  long Out = 0;
  for (const char *Name : {"a", "b", "c", "d"}) {
    std::string Err;
    EXPECT_FALSE(A.getIntStrict(Name, Out, &Err)) << Name;
    EXPECT_NE(Err.find("expects an integer"), std::string::npos) << Err;
  }
}

TEST(ThreadCount, ParseAcceptsPositiveIntegers) {
  size_t Out = 0;
  EXPECT_TRUE(deept::support::parseThreadCount("1", Out));
  EXPECT_EQ(Out, 1u);
  EXPECT_TRUE(deept::support::parseThreadCount("16", Out));
  EXPECT_EQ(Out, 16u);
}

TEST(ThreadCount, ParseRejectsZeroNegativeAndGarbage) {
  for (const char *Bad : {"0", "-1", "-8", "two", "4x", "1.5", "", " 4"}) {
    size_t Out = 99;
    std::string Err;
    EXPECT_FALSE(deept::support::parseThreadCount(Bad, Out, &Err)) << Bad;
    EXPECT_NE(Err.find("positive integer"), std::string::npos) << Err;
  }
}
