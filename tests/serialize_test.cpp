//===- tests/serialize_test.cpp - Hardened serialization tests -*- C++ -*-===//
//
// The corrupted-model corpus: every mangled .dptm variant must fail with
// a typed support::Error -- never crash, never silently succeed. Also
// covers the legacy v1 format, the config validator, the crash-safe IO
// helpers and the corrupt-cache retraining fallback.
//
//===----------------------------------------------------------------------===//

#include "data/SyntheticCorpus.h"
#include "nn/Serialize.h"
#include "nn/Transformer.h"
#include "support/Error.h"
#include "support/Io.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

using namespace deept;
using namespace deept::nn;
using support::Error;
using support::ErrorCode;

namespace {

TransformerConfig tinyConfig() {
  TransformerConfig C;
  C.MaxLen = 8;
  C.EmbedDim = 16;
  C.NumHeads = 2;
  C.HiddenDim = 16;
  C.NumLayers = 1;
  return C;
}

TransformerModel tinyModel() {
  support::Rng Rng(0xc0de);
  data::SyntheticCorpus Corpus(data::CorpusConfig::sstLike(16));
  return TransformerModel::init(tinyConfig(), Corpus.embeddings(), Rng);
}

std::string readFileBytes(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(In)),
                     std::istreambuf_iterator<char>());
}

void writeFileBytes(const std::string &Path, const std::string &Bytes) {
  std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
  Out.write(Bytes.data(), static_cast<std::streamsize>(Bytes.size()));
}

/// Bytes of a freshly saved tiny model -- the base every corpus variant
/// mangles. v2 layout: 8B magic, 7 x 8B config fields, 8B lnEps (header
/// ends at 72), then per-matrix 16B shape header + payload, then the 8B
/// CRC trailer.
const std::string &validBytes() {
  static const std::string Bytes = [] {
    std::string Path = ::testing::TempDir() + "/serialize_base.dptm";
    TransformerModel M = tinyModel();
    EXPECT_TRUE(saveModel(Path, M));
    std::string B = readFileBytes(Path);
    std::remove(Path.c_str());
    return B;
  }();
  return Bytes;
}

struct Variant {
  const char *Name;
  std::string Bytes;
};

/// The corrupted-model corpus: truncations at every structural boundary,
/// bit flips in the header / payload / trailer, magic and version
/// mangles, implausible dimensions and trailing garbage.
std::vector<Variant> corruptedCorpus() {
  const std::string &V = validBytes();
  auto Mut = [&](size_t Off, uint64_t Val) {
    std::string B = V;
    std::memcpy(&B[Off], &Val, 8);
    return B;
  };
  auto Flip = [&](size_t Off, unsigned char Mask) {
    std::string B = V;
    B[Off] = static_cast<char>(static_cast<unsigned char>(B[Off]) ^ Mask);
    return B;
  };
  std::string NotAModel = V;
  std::memcpy(&NotAModel[0], "GARBAGE!", 8);
  std::string FutureVersion = V;
  FutureVersion[0] = '3'; // DPTM0002 -> DPTM0003 (little-endian byte 0)

  return {
      {"empty", ""},
      {"half-magic", V.substr(0, 4)},
      {"magic-only", V.substr(0, 8)},
      {"mid-header", V.substr(0, 40)},
      {"mid-lneps", V.substr(0, 68)},
      {"mid-matrix-header", V.substr(0, 76)},
      {"mid-payload", V.substr(0, V.size() / 2)},
      {"missing-trailer", V.substr(0, V.size() - 8)},
      {"last-byte-gone", V.substr(0, V.size() - 1)},
      {"magic-bit-flip", Flip(5, 0x01)},
      {"future-version", FutureVersion},
      {"not-a-model", NotAModel},
      {"zero-vocab", Mut(8, 0)},
      {"huge-vocab", Mut(8, uint64_t(1) << 40)},
      {"zero-embed-dim", Mut(24, 0)},
      {"heads-dont-divide", Mut(32, 5)},
      {"huge-layer-count", Mut(48, uint64_t(1) << 32)},
      {"bad-layernorm-flag", Mut(56, 7)},
      {"matrix-shape-mangled", Mut(72, 12345)},
      {"payload-bit-flip", Flip(200, 0x01)},
      {"trailer-bit-flip", Flip(V.size() - 8, 0x01)},
      {"trailing-garbage", V + "junk after the trailer"},
      {"all-garbage", std::string(256, 'x')},
  };
}

/// Rewrites the v2 bytes as a legacy v1 file: v1 has no CRC trailer and
/// the version byte '1'.
std::string asLegacyV1(std::string Bytes) {
  Bytes.resize(Bytes.size() - 8);
  Bytes[0] = '1';
  return Bytes;
}

} // namespace

//===----------------------------------------------------------------------===//
// Corrupted-model corpus
//===----------------------------------------------------------------------===//

TEST(Serialize, CorruptedModelCorpusFailsTyped) {
  std::string Path = ::testing::TempDir() + "/serialize_corpus.dptm";
  for (const Variant &Var : corruptedCorpus()) {
    writeFileBytes(Path, Var.Bytes);
    TransformerModel M;
    Error Err;
    EXPECT_FALSE(loadModel(Path, M, &Err)) << Var.Name;
    bool Typed = Err.code() == ErrorCode::ModelCorrupt ||
                 Err.code() == ErrorCode::ModelNotFound ||
                 Err.code() == ErrorCode::IoError;
    EXPECT_TRUE(Typed) << Var.Name << " gave code "
                       << support::errorCodeName(Err.code()) << ": "
                       << Err.what();
    // A rejected file must leave the destination model untouched.
    EXPECT_TRUE(M.Layers.empty()) << Var.Name;
  }
  std::remove(Path.c_str());
}

TEST(Serialize, CrcCatchesPayloadBitFlip) {
  std::string Path = ::testing::TempDir() + "/serialize_crc.dptm";
  std::string B = validBytes();
  B[B.size() / 2] = static_cast<char>(B[B.size() / 2] ^ 0x02);
  writeFileBytes(Path, B);
  TransformerModel M;
  Error Err;
  EXPECT_FALSE(loadModel(Path, M, &Err));
  EXPECT_EQ(Err.code(), ErrorCode::ModelCorrupt);
  std::remove(Path.c_str());
}

TEST(Serialize, MissingFileIsModelNotFound) {
  TransformerModel M;
  Error Err;
  EXPECT_FALSE(
      loadModel(::testing::TempDir() + "/no_such_model.dptm", M, &Err));
  EXPECT_EQ(Err.code(), ErrorCode::ModelNotFound);
}

TEST(Serialize, FailedLoadLeavesDestinationUntouched) {
  std::string Good = ::testing::TempDir() + "/serialize_good.dptm";
  std::string Bad = ::testing::TempDir() + "/serialize_bad.dptm";
  writeFileBytes(Good, validBytes());
  writeFileBytes(Bad, validBytes().substr(0, validBytes().size() / 2));
  TransformerModel M;
  ASSERT_TRUE(loadModel(Good, M));
  Matrix Before = M.ClsW;
  Error Err;
  EXPECT_FALSE(loadModel(Bad, M, &Err));
  EXPECT_EQ(Err.code(), ErrorCode::ModelCorrupt);
  EXPECT_TRUE(tensor::allClose(M.ClsW, Before, 0.0));
  std::remove(Good.c_str());
  std::remove(Bad.c_str());
}

//===----------------------------------------------------------------------===//
// Legacy v1 format
//===----------------------------------------------------------------------===//

TEST(Serialize, LegacyV1StillLoads) {
  std::string Path = ::testing::TempDir() + "/serialize_v1.dptm";
  writeFileBytes(Path, asLegacyV1(validBytes()));
  TransformerModel Ref = tinyModel();
  TransformerModel M;
  Error Err;
  ASSERT_TRUE(loadModel(Path, M, &Err)) << Err.what();
  EXPECT_EQ(M.Config.EmbedDim, 16u);
  EXPECT_EQ(M.Layers.size(), 1u);
  EXPECT_TRUE(tensor::allClose(M.ClsW, Ref.ClsW, 0.0));
  std::remove(Path.c_str());
}

TEST(Serialize, NonFiniteWeightRejected) {
  // v1 has no CRC, so a NaN planted in the payload exercises the
  // dedicated non-finite check rather than the checksum. The first
  // payload double sits at offset 88 (72B header + 16B matrix shape).
  std::string B = asLegacyV1(validBytes());
  double NaN = std::numeric_limits<double>::quiet_NaN();
  std::memcpy(&B[88], &NaN, 8);
  std::string Path = ::testing::TempDir() + "/serialize_nan.dptm";
  writeFileBytes(Path, B);
  TransformerModel M;
  Error Err;
  EXPECT_FALSE(loadModel(Path, M, &Err));
  EXPECT_EQ(Err.code(), ErrorCode::ModelCorrupt);
  EXPECT_NE(std::string(Err.what()).find("non-finite"), std::string::npos);
  std::remove(Path.c_str());
}

TEST(Serialize, LegacyV1TruncationDetected) {
  std::string B = asLegacyV1(validBytes());
  std::string Path = ::testing::TempDir() + "/serialize_v1_trunc.dptm";
  writeFileBytes(Path, B.substr(0, B.size() - 16));
  TransformerModel M;
  Error Err;
  EXPECT_FALSE(loadModel(Path, M, &Err));
  EXPECT_EQ(Err.code(), ErrorCode::ModelCorrupt);
  std::remove(Path.c_str());
}

//===----------------------------------------------------------------------===//
// Config validation
//===----------------------------------------------------------------------===//

TEST(Serialize, ValidateConfigBounds) {
  // tinyConfig leaves VocabSize to TransformerModel::init; the validator
  // needs the fully populated form.
  TransformerConfig Valid = tinyConfig();
  Valid.VocabSize = 100;
  std::string Why;
  EXPECT_TRUE(validateConfig(Valid, &Why)) << Why;

  auto Expect = [&](void (*Mangle)(TransformerConfig &),
                    const char *Needle) {
    TransformerConfig C = tinyConfig();
    C.VocabSize = 100;
    Mangle(C);
    std::string W;
    EXPECT_FALSE(validateConfig(C, &W));
    EXPECT_NE(W.find(Needle), std::string::npos) << W;
  };
  Expect([](TransformerConfig &C) { C.VocabSize = 0; }, "vocab");
  Expect([](TransformerConfig &C) { C.VocabSize = 1u << 30; }, "vocab");
  Expect([](TransformerConfig &C) { C.MaxLen = 0; }, "max length");
  Expect([](TransformerConfig &C) { C.EmbedDim = 1u << 20; }, "embedding");
  Expect([](TransformerConfig &C) { C.HiddenDim = 0; }, "hidden");
  Expect([](TransformerConfig &C) { C.NumLayers = 1u << 16; }, "layer");
  Expect([](TransformerConfig &C) { C.NumHeads = 3; }, "head");
  Expect([](TransformerConfig &C) { C.NumHeads = 0; }, "head");
  Expect(
      [](TransformerConfig &C) {
        C.LnEps = std::numeric_limits<double>::quiet_NaN();
      },
      "epsilon");
}

//===----------------------------------------------------------------------===//
// Corrupt-cache fallback
//===----------------------------------------------------------------------===//

TEST(Serialize, CorruptCacheRetrainsAndRefreshes) {
  std::string Dir = ::testing::TempDir() + "/serialize_cache_test";
  std::string Path = Dir + "/m.dptm";
  std::remove(Path.c_str());
  int Calls = 0;
  auto TrainFn = [&] {
    ++Calls;
    return tinyModel();
  };
  TransformerModel A = getOrTrainCached(Dir, "m", TrainFn);
  EXPECT_EQ(Calls, 1);
  // Corrupt the cache: the loader must reject it, warn, and fall back to
  // retraining instead of crashing or loading garbage.
  writeFileBytes(Path, "definitely not a model");
  TransformerModel B = getOrTrainCached(Dir, "m", TrainFn);
  EXPECT_EQ(Calls, 2);
  // The fallback refreshed the cache, so the next call loads from disk.
  TransformerModel C = getOrTrainCached(Dir, "m", TrainFn);
  EXPECT_EQ(Calls, 2);
  EXPECT_TRUE(tensor::allClose(B.ClsW, C.ClsW, 0.0));
  EXPECT_TRUE(tensor::allClose(A.ClsW, B.ClsW, 0.0));
  std::remove(Path.c_str());
}

//===----------------------------------------------------------------------===//
// Crash-safe IO helpers
//===----------------------------------------------------------------------===//

TEST(Io, AtomicWriteCreatesAndReplaces) {
  std::string Path = ::testing::TempDir() + "/io_atomic.txt";
  ASSERT_TRUE(support::atomicWriteFile(Path, "first"));
  EXPECT_EQ(readFileBytes(Path), "first");
  ASSERT_TRUE(support::atomicWriteFile(Path, "second, longer"));
  EXPECT_EQ(readFileBytes(Path), "second, longer");
  uint64_t Size = 0;
  ASSERT_TRUE(support::fileSize(Path, Size));
  EXPECT_EQ(Size, 14u);
  std::remove(Path.c_str());
}

TEST(Io, AtomicWriteFailureLeavesTargetAlone) {
  Error Err;
  EXPECT_FALSE(support::atomicWriteFile(
      "/deept_no_such_dir_xyz/file.txt", "x", &Err));
  EXPECT_EQ(Err.code(), ErrorCode::IoError);
}

TEST(Io, AppendFileFramesRecordsAndReopens) {
  std::string Path = ::testing::TempDir() + "/io_append.jsonl";
  std::remove(Path.c_str());
  support::AppendFile F;
  ASSERT_TRUE(F.open(Path));
  EXPECT_TRUE(F.isOpen());
  ASSERT_TRUE(F.append("a\n", /*Fsync=*/false));
  ASSERT_TRUE(F.append("bb\n", /*Fsync=*/true));
  F.close();
  EXPECT_FALSE(F.isOpen());
  EXPECT_EQ(readFileBytes(Path), "a\nbb\n");
  // Reopening appends after the existing content.
  ASSERT_TRUE(F.open(Path));
  ASSERT_TRUE(F.append("c\n", false));
  F.close();
  EXPECT_EQ(readFileBytes(Path), "a\nbb\nc\n");
  ASSERT_TRUE(support::truncateFile(Path, 2));
  EXPECT_EQ(readFileBytes(Path), "a\n");
  std::remove(Path.c_str());
}

TEST(Io, FileSizeFailsOnMissingFile) {
  uint64_t Size = 99;
  EXPECT_FALSE(
      support::fileSize(::testing::TempDir() + "/io_no_file", Size));
}
