//===- tests/fault_test.cpp - Fault-injection framework tests --*- C++ -*-===//
//
// Unit tests of the support/Fault spec language and site hooks, plus
// end-to-end drills: injected IO faults must surface as typed errors from
// the model loader, and injected non-finite values in a propagation must
// surface as unsound_abstraction job errors -- never as `certified`.
//
//===----------------------------------------------------------------------===//

#include "data/SyntheticCorpus.h"
#include "nn/Serialize.h"
#include "nn/Transformer.h"
#include "support/Error.h"
#include "support/Fault.h"
#include "support/Io.h"
#include "support/Rng.h"
#include "verify/Scheduler.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <new>
#include <string>
#include <vector>

using namespace deept;
using support::Error;
using support::ErrorCode;
using verify::JobMethod;
using verify::JobQueue;
using verify::JobResult;
using verify::JobSpec;
using verify::JobStatus;
using verify::Scheduler;
using verify::SchedulerOptions;
namespace fault = deept::support::fault;

namespace {

/// Arms a spec for the scope and disarms on exit, so a failing assertion
/// cannot leak an armed fault into later tests.
class ScopedFaults {
public:
  explicit ScopedFaults(const std::string &Spec) {
    std::string Err;
    EXPECT_TRUE(fault::arm(Spec, &Err)) << Err;
  }
  ~ScopedFaults() { fault::disarm(); }
};

/// Deletes a temp file on scope exit.
class TempFile {
public:
  explicit TempFile(std::string Path) : Path(std::move(Path)) {
    std::remove(this->Path.c_str());
  }
  ~TempFile() { std::remove(Path.c_str()); }
  const std::string &path() const { return Path; }

private:
  std::string Path;
};

/// Same tiny corpus + untrained model setup as scheduler_test.cpp.
struct TinySetup {
  data::SyntheticCorpus Corpus;
  nn::TransformerModel Model;
  data::Sentence Sent;

  TinySetup() : Corpus(data::CorpusConfig::sstLike(16)) {
    nn::TransformerConfig Cfg;
    Cfg.MaxLen = 16;
    Cfg.EmbedDim = 16;
    Cfg.NumHeads = 2;
    Cfg.HiddenDim = 16;
    Cfg.NumLayers = 2;
    support::Rng Rng(0x5eed);
    Model = nn::TransformerModel::init(Cfg, Corpus.embeddings(), Rng);
    support::Rng SentRng(7);
    Sent = Corpus.sampleSentence(SentRng);
    Sent.Label = Model.classify(Sent.Tokens);
  }

  JobSpec job(JobMethod M) const {
    JobSpec J;
    J.Tokens = Sent.Tokens;
    J.TrueClass = Sent.Label;
    J.Word = 0;
    J.P = 2.0;
    J.Epsilon = 0.05;
    J.Method = M;
    J.NoiseReductionBudget = 128;
    return J;
  }
};

std::string readFileBytes(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(In)),
                     std::istreambuf_iterator<char>());
}

/// The macro-compiled sites are only present with DEEPT_FAULT_INJECT;
/// drills through them skip on a bare build.
bool sitesCompiledIn() {
#ifdef DEEPT_FAULT_INJECT
  return true;
#else
  return false;
#endif
}

} // namespace

//===----------------------------------------------------------------------===//
// Spec language
//===----------------------------------------------------------------------===//

TEST(Fault, ArmAndDisarm) {
  EXPECT_FALSE(fault::armed());
  ASSERT_TRUE(fault::arm("a.b:1:fail"));
  EXPECT_TRUE(fault::armed());
  fault::disarm();
  EXPECT_FALSE(fault::armed());
  EXPECT_EQ(fault::injectedCount(), 0u);
  // An empty spec disarms too.
  ASSERT_TRUE(fault::arm("x.y:0:nan"));
  ASSERT_TRUE(fault::arm(""));
  EXPECT_FALSE(fault::armed());
}

TEST(Fault, RejectsMalformedSpecs) {
  std::string Err;
  EXPECT_FALSE(fault::arm("nocolons", &Err));
  EXPECT_NE(Err.find("site:count:kind"), std::string::npos);
  EXPECT_FALSE(fault::arm(":1:fail", &Err));
  EXPECT_NE(Err.find("empty site"), std::string::npos);
  EXPECT_FALSE(fault::arm("a.b:x:fail", &Err));
  EXPECT_NE(Err.find("count"), std::string::npos);
  EXPECT_FALSE(fault::arm("a.b:1:bogus", &Err));
  EXPECT_NE(Err.find("unknown kind"), std::string::npos);
  EXPECT_FALSE(fault::arm("a.b:1:delay:-5", &Err));
  EXPECT_NE(Err.find("param"), std::string::npos);
  // One bad spec in a list rejects the whole list and arms nothing.
  EXPECT_FALSE(fault::arm("a.b:1:fail,c.d:1:bogus", &Err));
  EXPECT_FALSE(fault::armed());
  // A well-formed multi-spec arms.
  EXPECT_TRUE(fault::arm("a.b:1:fail,c.d:0:nan,e.f:2:delay:5", &Err)) << Err;
  EXPECT_TRUE(fault::armed());
  fault::disarm();
}

//===----------------------------------------------------------------------===//
// Site hook semantics (direct calls, independent of the macro gate)
//===----------------------------------------------------------------------===//

TEST(Fault, PointFiresAtNthHitOnly) {
  ScopedFaults F("t.point:2:fail");
  EXPECT_NO_THROW(fault::point("t.point")); // hit 1
  try {
    fault::point("t.point"); // hit 2: fires
    FAIL() << "expected an injected fault";
  } catch (const Error &E) {
    EXPECT_EQ(E.code(), ErrorCode::FaultInjected);
    EXPECT_EQ(E.site(), "t.point");
  }
  EXPECT_NO_THROW(fault::point("t.point")); // hit 3: already fired
  EXPECT_NO_THROW(fault::point("t.other")); // different site never fires
  EXPECT_EQ(fault::injectedCount(), 1u);
}

TEST(Fault, CountZeroFiresEveryHit) {
  ScopedFaults F("t.every:0:fail");
  for (int I = 0; I < 3; ++I)
    EXPECT_THROW(fault::point("t.every"), Error);
  EXPECT_EQ(fault::injectedCount(), 3u);
}

TEST(Fault, AllocKindThrowsBadAlloc) {
  ScopedFaults F("t.alloc:1:alloc");
  EXPECT_THROW(fault::point("t.alloc"), std::bad_alloc);
}

TEST(Fault, DelayKindSleeps) {
  ScopedFaults F("t.delay:1:delay:40");
  auto Start = std::chrono::steady_clock::now();
  fault::point("t.delay");
  auto Ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                std::chrono::steady_clock::now() - Start)
                .count();
  EXPECT_GE(Ms, 30);
}

TEST(Fault, KindsFilterByHookType) {
  // A `short` spec only answers the IO hook; a `fail` spec only the
  // point hook. Neither cross-fires.
  ScopedFaults F("t.io:1:short,t.io:1:fail");
  EXPECT_THROW(fault::point("t.io"), Error);
  EXPECT_TRUE(fault::ioFail("t.io"));
  EXPECT_FALSE(fault::ioFail("t.io")); // its single shot is spent
}

TEST(Fault, CorruptPoisonsMiddleElement) {
  {
    ScopedFaults F("t.corrupt:1:nan");
    std::vector<double> Data(5, 1.0);
    fault::corrupt("t.corrupt", Data.data(), Data.size());
    EXPECT_TRUE(std::isnan(Data[2]));
    EXPECT_EQ(Data[0], 1.0);
    EXPECT_EQ(Data[4], 1.0);
  }
  {
    ScopedFaults F("t.corrupt:1:inf");
    std::vector<double> Data(5, 1.0);
    fault::corrupt("t.corrupt", Data.data(), Data.size());
    EXPECT_TRUE(std::isinf(Data[2]));
  }
}

//===----------------------------------------------------------------------===//
// End-to-end drills through the compiled-in sites
//===----------------------------------------------------------------------===//

TEST(Fault, ShortReadFailsModelLoadTyped) {
  if (!sitesCompiledIn())
    GTEST_SKIP() << "built with DEEPT_FAULT_INJECT=OFF";
  TinySetup S;
  TempFile File(::testing::TempDir() + "/fault_load.dptm");
  ASSERT_TRUE(nn::saveModel(File.path(), S.Model));
  {
    ScopedFaults F("serialize.read:1:short");
    nn::TransformerModel M;
    Error Err;
    EXPECT_FALSE(nn::loadModel(File.path(), M, &Err));
    EXPECT_EQ(Err.code(), ErrorCode::ModelCorrupt);
  }
  // Disarmed, the same file loads fine.
  nn::TransformerModel M;
  Error Err;
  EXPECT_TRUE(nn::loadModel(File.path(), M, &Err)) << Err.what();
}

TEST(Fault, PayloadCorruptionCaughtByFinitenessCheck) {
  if (!sitesCompiledIn())
    GTEST_SKIP() << "built with DEEPT_FAULT_INJECT=OFF";
  TinySetup S;
  TempFile File(::testing::TempDir() + "/fault_payload.dptm");
  ASSERT_TRUE(nn::saveModel(File.path(), S.Model));
  ScopedFaults F("serialize.payload:1:nan");
  nn::TransformerModel M;
  Error Err;
  EXPECT_FALSE(nn::loadModel(File.path(), M, &Err));
  EXPECT_EQ(Err.code(), ErrorCode::ModelCorrupt);
  EXPECT_NE(std::string(Err.what()).find("non-finite"), std::string::npos);
}

TEST(Fault, WriteFaultLeavesExistingFileIntact) {
  if (!sitesCompiledIn())
    GTEST_SKIP() << "built with DEEPT_FAULT_INJECT=OFF";
  TinySetup S;
  TempFile File(::testing::TempDir() + "/fault_save.dptm");
  ASSERT_TRUE(nn::saveModel(File.path(), S.Model));
  std::string Before = readFileBytes(File.path());
  ScopedFaults F("serialize.write:1:short");
  Error Err;
  EXPECT_FALSE(nn::saveModel(File.path(), S.Model, &Err));
  EXPECT_EQ(Err.code(), ErrorCode::IoError);
  EXPECT_EQ(readFileBytes(File.path()), Before);
}

TEST(Fault, UnsoundPropagationIsNeverCertified) {
  if (!sitesCompiledIn())
    GTEST_SKIP() << "built with DEEPT_FAULT_INJECT=OFF";
  TinySetup S;
  // Poison every propagation: the soundness validator must turn each one
  // into a structured unsound_abstraction error, never a certified
  // verdict built on NaN arithmetic.
  ScopedFaults F("verify.propagate:0:nan");
  JobQueue Q;
  Q.push(S.job(JobMethod::Fast));
  std::vector<JobResult> R = Scheduler(S.Model).run(Q);
  ASSERT_EQ(R.size(), 1u);
  EXPECT_EQ(R[0].Status, JobStatus::Error);
  EXPECT_EQ(R[0].Code, ErrorCode::UnsoundAbstraction);
  EXPECT_FALSE(R[0].Certified);
  std::string Line = Scheduler::resultJsonLine(R[0]);
  EXPECT_NE(Line.find("\"error_code\":\"unsound_abstraction\""),
            std::string::npos);
  EXPECT_NE(Line.find("\"certified\":false"), std::string::npos);
}

TEST(Fault, AllocFaultDegradesPreciseToFast) {
  if (!sitesCompiledIn())
    GTEST_SKIP() << "built with DEEPT_FAULT_INJECT=OFF";
  TinySetup S;
  ScopedFaults F("sched.execute:1:alloc");
  JobQueue Q;
  Q.push(S.job(JobMethod::Precise));
  std::vector<JobResult> R = Scheduler(S.Model).run(Q);
  ASSERT_EQ(R.size(), 1u);
  // The first attempt OOMs; the degradation ladder retries as Fast.
  EXPECT_EQ(R[0].Status, JobStatus::Degraded);
  EXPECT_EQ(R[0].MethodUsed, JobMethod::Fast);
  EXPECT_EQ(R[0].Code, ErrorCode::Ok);
  EXPECT_TRUE(R[0].Error.empty());
}

TEST(Fault, AllocFaultOnFastIsOutOfMemoryError) {
  if (!sitesCompiledIn())
    GTEST_SKIP() << "built with DEEPT_FAULT_INJECT=OFF";
  TinySetup S;
  ScopedFaults F("sched.execute:1:alloc");
  JobQueue Q;
  Q.push(S.job(JobMethod::Fast));
  std::vector<JobResult> R = Scheduler(S.Model).run(Q);
  ASSERT_EQ(R.size(), 1u);
  EXPECT_EQ(R[0].Status, JobStatus::Error);
  EXPECT_EQ(R[0].Code, ErrorCode::OutOfMemory);
}

TEST(Fault, InjectedFailureIsTypedInStore) {
  if (!sitesCompiledIn())
    GTEST_SKIP() << "built with DEEPT_FAULT_INJECT=OFF";
  TinySetup S;
  TempFile Store("fault_test_store.jsonl");
  ScopedFaults F("sched.execute:1:fail");
  SchedulerOptions O;
  O.JsonlPath = Store.path();
  JobQueue Q;
  Q.push(S.job(JobMethod::Fast));
  std::vector<JobResult> R = Scheduler(S.Model, O).run(Q);
  ASSERT_EQ(R.size(), 1u);
  EXPECT_EQ(R[0].Status, JobStatus::Error);
  EXPECT_EQ(R[0].Code, ErrorCode::FaultInjected);
  std::string Stored = readFileBytes(Store.path());
  EXPECT_NE(Stored.find("\"error_code\":\"fault_injected\""),
            std::string::npos);
}

TEST(Fault, StoreWriteFailureKeepsBatchRunning) {
  if (!sitesCompiledIn())
    GTEST_SKIP() << "built with DEEPT_FAULT_INJECT=OFF";
  TinySetup S;
  TempFile Store("fault_test_broken_store.jsonl");
  // Every append fails short: the batch must warn, keep computing, and
  // return results in memory instead of aborting.
  ScopedFaults F("store.write:0:short");
  SchedulerOptions O;
  O.JsonlPath = Store.path();
  JobQueue Q;
  Q.push(S.job(JobMethod::Fast));
  Q.push(S.job(JobMethod::Precise));
  std::vector<JobResult> R;
  EXPECT_NO_THROW(R = Scheduler(S.Model, O).run(Q));
  ASSERT_EQ(R.size(), 2u);
  EXPECT_EQ(R[0].Status, JobStatus::Ok);
  EXPECT_EQ(R[1].Status, JobStatus::Ok);
  // Nothing durable landed in the broken store.
  EXPECT_TRUE(Scheduler::completedKeys(Store.path()).empty());
}
