//===- tests/trace_test.cpp -----------------------------------*- C++ -*-===//
//
// Tests of the observability layer: trace spans (nesting, Chrome JSON
// export, zero recording when disabled), the metrics registry
// (counter/gauge/histogram semantics, JSON export) and the JSON toolkit
// they are built on.
//
//===----------------------------------------------------------------------===//

#include "support/Json.h"
#include "support/Metrics.h"
#include "support/Trace.h"

#include <gtest/gtest.h>

#include <cmath>
#include <thread>
#include <vector>

using namespace deept::support;

namespace {

/// Finds the first trace event with the given name in a parsed Chrome
/// trace document; nullptr when absent.
const JsonValue *findEvent(const JsonValue &Doc, const std::string &Name) {
  const JsonValue *Events = Doc.find("traceEvents");
  if (!Events || !Events->isArray())
    return nullptr;
  for (const JsonValue &E : Events->Items) {
    const JsonValue *N = E.find("name");
    if (N && N->StringVal == Name)
      return &E;
  }
  return nullptr;
}

class TraceTest : public ::testing::Test {
protected:
  void SetUp() override {
    Trace::setEnabled(false);
    Trace::clear();
  }
  void TearDown() override {
    Trace::setEnabled(false);
    Trace::clear();
  }
};

TEST_F(TraceTest, DisabledSpansRecordNothing) {
  ASSERT_FALSE(Trace::enabled());
  for (int I = 0; I < 100; ++I) {
    DEEPT_TRACE_SPAN("should.not.appear");
  }
  EXPECT_EQ(Trace::eventCount(), 0u);
}

TEST_F(TraceTest, SpansNestAndRecord) {
  Trace::setEnabled(true);
  {
    DEEPT_TRACE_SPAN("outer");
    {
      DEEPT_TRACE_SPAN("inner");
    }
    {
      DEEPT_TRACE_SPAN("inner");
    }
  }
  // Children complete (and record) before the parent.
  EXPECT_EQ(Trace::eventCount(), 3u);
}

TEST_F(TraceTest, EnableMidwayOnlyRecordsLaterSpans) {
  {
    DEEPT_TRACE_SPAN("before");
  }
  Trace::setEnabled(true);
  {
    DEEPT_TRACE_SPAN("after");
  }
  EXPECT_EQ(Trace::eventCount(), 1u);
}

TEST_F(TraceTest, ChromeJsonParsesAndContainsSpans) {
  Trace::setEnabled(true);
  {
    DEEPT_TRACE_SPAN("deept.layer", 2);
    DEEPT_TRACE_SPAN("leaf");
  }
  JsonValue Doc;
  std::string Err;
  ASSERT_TRUE(parseJson(Trace::toChromeJson(), Doc, &Err)) << Err;
  ASSERT_TRUE(Doc.isObject());
  const JsonValue *Events = Doc.find("traceEvents");
  ASSERT_NE(Events, nullptr);
  ASSERT_TRUE(Events->isArray());
  EXPECT_EQ(Events->Items.size(), 2u);
  // Indexed span names format as name[index].
  EXPECT_NE(findEvent(Doc, "deept.layer[2]"), nullptr);
  const JsonValue *Leaf = findEvent(Doc, "leaf");
  ASSERT_NE(Leaf, nullptr);
  // Chrome trace_event required fields on complete events.
  const JsonValue *Ph = Leaf->find("ph");
  ASSERT_NE(Ph, nullptr);
  EXPECT_EQ(Ph->StringVal, "X");
  for (const char *Field : {"ts", "dur", "pid", "tid"}) {
    const JsonValue *V = Leaf->find(Field);
    ASSERT_NE(V, nullptr) << Field;
    EXPECT_EQ(V->K, JsonValue::Kind::Number) << Field;
  }
}

TEST_F(TraceTest, StringTaggedSpansFormatAsNameTag) {
  Trace::setEnabled(true);
  {
    // The scheduler tags job spans with the result-store key.
    TraceSpan Span("sched.job", std::string("expire-precise"));
  }
  JsonValue Doc;
  ASSERT_TRUE(parseJson(Trace::toChromeJson(), Doc));
  EXPECT_NE(findEvent(Doc, "sched.job[expire-precise]"), nullptr);
}

TEST_F(TraceTest, StringTaggedSpansRecordNothingWhenDisabled) {
  ASSERT_FALSE(Trace::enabled());
  {
    TraceSpan Span("sched.job", std::string("k"));
  }
  EXPECT_EQ(Trace::eventCount(), 0u);
}

TEST_F(TraceTest, SelfTimeExcludesChildTime) {
  Trace::setEnabled(true);
  {
    DEEPT_TRACE_SPAN("parent");
    {
      DEEPT_TRACE_SPAN("child");
      volatile double X = 0;
      for (int I = 0; I < 200000; ++I)
        X = X + std::sqrt(static_cast<double>(I));
    }
  }
  JsonValue Doc;
  ASSERT_TRUE(parseJson(Trace::toChromeJson(), Doc));
  const JsonValue *Parent = findEvent(Doc, "parent");
  const JsonValue *Child = findEvent(Doc, "child");
  ASSERT_NE(Parent, nullptr);
  ASSERT_NE(Child, nullptr);
  double ParentDur = Parent->find("dur")->NumberVal;
  double ParentSelf = Parent->find("args")->find("self_us")->NumberVal;
  double ChildDur = Child->find("dur")->NumberVal;
  EXPECT_GE(ParentDur, ChildDur);
  // Self time is duration minus child time (within export rounding).
  EXPECT_NEAR(ParentSelf, ParentDur - ChildDur, 0.5);
}

TEST_F(TraceTest, ThreadedSpansAllRecorded) {
  Trace::setEnabled(true);
  std::vector<std::thread> Threads;
  for (int T = 0; T < 4; ++T)
    Threads.emplace_back([] {
      for (int I = 0; I < 25; ++I) {
        DEEPT_TRACE_SPAN("worker");
      }
    });
  for (std::thread &T : Threads)
    T.join();
  EXPECT_EQ(Trace::eventCount(), 100u);
  JsonValue Doc;
  ASSERT_TRUE(parseJson(Trace::toChromeJson(), Doc));
}

TEST_F(TraceTest, SummaryAggregatesByName) {
  Trace::setEnabled(true);
  for (int I = 0; I < 3; ++I) {
    DEEPT_TRACE_SPAN("repeated");
  }
  std::string Summary = Trace::selfTimeSummary();
  EXPECT_NE(Summary.find("repeated"), std::string::npos);
  EXPECT_NE(Summary.find("3"), std::string::npos);
}

TEST(MetricsTest, CounterAccumulatesAndResets) {
  Metrics M;
  Counter &C = M.counter("test.counter");
  C.add();
  C.add(2.5);
  EXPECT_DOUBLE_EQ(C.value(), 3.5);
  EXPECT_DOUBLE_EQ(M.counterValue("test.counter"), 3.5);
  // Same name returns the same instrument.
  EXPECT_EQ(&M.counter("test.counter"), &C);
  M.reset();
  EXPECT_DOUBLE_EQ(C.value(), 0.0);
  // The registration (and thus the cached reference) survives reset.
  EXPECT_EQ(&M.counter("test.counter"), &C);
}

TEST(MetricsTest, GaugeSetAndRecordMax) {
  Metrics M;
  Gauge &G = M.gauge("test.gauge");
  G.set(5.0);
  G.recordMax(3.0);
  EXPECT_DOUBLE_EQ(G.value(), 5.0); // max keeps the larger value
  G.recordMax(9.0);
  EXPECT_DOUBLE_EQ(G.value(), 9.0);
}

TEST(MetricsTest, HistogramStats) {
  Metrics M;
  Histogram &H = M.histogram("test.hist");
  H.observe(1.0);
  H.observe(3.0);
  H.observe(2.0);
  Histogram::Stats S = H.stats();
  EXPECT_EQ(S.Count, 3u);
  EXPECT_DOUBLE_EQ(S.Sum, 6.0);
  EXPECT_DOUBLE_EQ(S.Min, 1.0);
  EXPECT_DOUBLE_EQ(S.Max, 3.0);
  EXPECT_DOUBLE_EQ(S.mean(), 2.0);
  M.reset();
  EXPECT_EQ(H.stats().Count, 0u);
}

TEST(MetricsTest, ReadOnlyLookupsNeverCreate) {
  Metrics M;
  EXPECT_DOUBLE_EQ(M.counterValue("absent"), 0.0);
  EXPECT_DOUBLE_EQ(M.gaugeValue("absent"), 0.0);
  EXPECT_EQ(M.histogramStats("absent").Count, 0u);
  // toJson of an empty registry is still a valid (empty) object set.
  JsonValue Doc;
  ASSERT_TRUE(parseJson(M.toJson(), Doc));
}

TEST(MetricsTest, ConcurrentCounterAddsAreLossless) {
  Metrics M;
  Counter &C = M.counter("test.concurrent");
  std::vector<std::thread> Threads;
  for (int T = 0; T < 4; ++T)
    Threads.emplace_back([&C] {
      for (int I = 0; I < 10000; ++I)
        C.add(1.0);
    });
  for (std::thread &T : Threads)
    T.join();
  EXPECT_DOUBLE_EQ(C.value(), 40000.0);
}

TEST(MetricsTest, ToJsonParsesAndRoundTripsValues) {
  Metrics M;
  M.counter("a.calls").add(7);
  M.gauge("b.peak").recordMax(123.5);
  M.histogram("c.sizes").observe(4.0);
  JsonValue Doc;
  std::string Err;
  ASSERT_TRUE(parseJson(M.toJson(), Doc, &Err)) << Err;
  const JsonValue *Counters = Doc.find("counters");
  ASSERT_NE(Counters, nullptr);
  const JsonValue *A = Counters->find("a.calls");
  ASSERT_NE(A, nullptr);
  EXPECT_DOUBLE_EQ(A->NumberVal, 7.0);
  const JsonValue *Gauges = Doc.find("gauges");
  ASSERT_NE(Gauges, nullptr);
  EXPECT_DOUBLE_EQ(Gauges->find("b.peak")->NumberVal, 123.5);
  const JsonValue *Hists = Doc.find("histograms");
  ASSERT_NE(Hists, nullptr);
  const JsonValue *CStats = Hists->find("c.sizes");
  ASSERT_NE(CStats, nullptr);
  EXPECT_DOUBLE_EQ(CStats->find("count")->NumberVal, 1.0);
  EXPECT_DOUBLE_EQ(CStats->find("mean")->NumberVal, 4.0);
}

TEST(MetricsTest, SummaryTableListsInstruments) {
  Metrics M;
  M.counter("x.calls").add(2);
  std::string S = M.summaryTable();
  EXPECT_NE(S.find("x.calls"), std::string::npos);
}

TEST(JsonTest, ParsesScalarsArraysObjects) {
  JsonValue V;
  ASSERT_TRUE(parseJson("null", V));
  EXPECT_TRUE(V.isNull());
  ASSERT_TRUE(parseJson("true", V));
  EXPECT_TRUE(V.BoolVal);
  ASSERT_TRUE(parseJson("-12.5e2", V));
  EXPECT_DOUBLE_EQ(V.NumberVal, -1250.0);
  ASSERT_TRUE(parseJson(R"("a\"b\nA")", V));
  EXPECT_EQ(V.StringVal, "a\"b\nA");
  ASSERT_TRUE(parseJson("[1, [2, 3], {}]", V));
  ASSERT_TRUE(V.isArray());
  EXPECT_EQ(V.Items.size(), 3u);
  EXPECT_EQ(V.Items[1].Items.size(), 2u);
  ASSERT_TRUE(parseJson(R"({"k": {"n": 1}, "l": []})", V));
  ASSERT_TRUE(V.isObject());
  ASSERT_NE(V.find("k"), nullptr);
  EXPECT_DOUBLE_EQ(V.find("k")->find("n")->NumberVal, 1.0);
  EXPECT_EQ(V.find("missing"), nullptr);
}

TEST(JsonTest, RejectsMalformedInput) {
  JsonValue V;
  std::string Err;
  for (const char *Bad :
       {"", "{", "[1,]", "{\"a\":}", "tru", "1 2", "\"unterminated",
        "{\"a\" 1}", "[1 2]", "01", "+1", "nan"}) {
    EXPECT_FALSE(parseJson(Bad, V, &Err)) << Bad;
    EXPECT_FALSE(Err.empty()) << Bad;
  }
}

TEST(JsonTest, RejectsOverlyDeepNesting) {
  std::string Deep(200, '[');
  Deep += std::string(200, ']');
  JsonValue V;
  EXPECT_FALSE(parseJson(Deep, V));
}

TEST(JsonTest, EscapeAndNumberEmission) {
  EXPECT_EQ(jsonEscape("a\"b\\c\n"), "a\\\"b\\\\c\\n");
  JsonValue V;
  // Emitted numbers parse back exactly.
  ASSERT_TRUE(parseJson(jsonNumber(0.1), V));
  EXPECT_DOUBLE_EQ(V.NumberVal, 0.1);
  EXPECT_EQ(jsonNumber(std::nan("")), "null");
  EXPECT_EQ(jsonNumber(HUGE_VAL), "null");
}

} // namespace
