//===- tests/support_test.cpp ---------------------------------*- C++ -*-===//

#include "support/Error.h"
#include "support/Json.h"
#include "support/Rng.h"
#include "support/Table.h"
#include "support/Timer.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <new>
#include <stdexcept>

using namespace deept::support;

TEST(Rng, Deterministic) {
  Rng A(42), B(42);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng A(1), B(2);
  bool AnyDiff = false;
  for (int I = 0; I < 16; ++I)
    AnyDiff |= A.next() != B.next();
  EXPECT_TRUE(AnyDiff);
}

TEST(Rng, UniformInUnitInterval) {
  Rng R(7);
  for (int I = 0; I < 1000; ++I) {
    double V = R.uniform();
    EXPECT_GE(V, 0.0);
    EXPECT_LT(V, 1.0);
  }
}

TEST(Rng, UniformRangeRespected) {
  Rng R(7);
  for (int I = 0; I < 1000; ++I) {
    double V = R.uniform(-3.0, 5.0);
    EXPECT_GE(V, -3.0);
    EXPECT_LT(V, 5.0);
  }
}

TEST(Rng, UniformIntUnbiasedSupport) {
  Rng R(13);
  std::vector<int> Counts(10, 0);
  for (int I = 0; I < 10000; ++I)
    Counts[R.uniformInt(10)]++;
  for (int C : Counts)
    EXPECT_GT(C, 700); // each bucket near 1000
}

TEST(Rng, GaussianMoments) {
  Rng R(99);
  double Sum = 0.0, SumSq = 0.0;
  const int N = 20000;
  for (int I = 0; I < N; ++I) {
    double V = R.gaussian();
    Sum += V;
    SumSq += V * V;
  }
  EXPECT_NEAR(Sum / N, 0.0, 0.05);
  EXPECT_NEAR(SumSq / N, 1.0, 0.05);
}

TEST(Rng, ForkDecorrelates) {
  Rng A(5);
  Rng B = A.fork();
  EXPECT_NE(A.next(), B.next());
}

TEST(Rng, ShufflePreservesElements) {
  Rng R(3);
  std::vector<int> V = {1, 2, 3, 4, 5, 6};
  auto Sorted = V;
  R.shuffle(V);
  std::sort(V.begin(), V.end());
  EXPECT_EQ(V, Sorted);
}

TEST(Table, FormatRadiusStyles) {
  EXPECT_EQ(formatRadius(0.0), "0.000");
  EXPECT_EQ(formatRadius(1.808), "1.808");
  EXPECT_EQ(formatRadius(0.0064), "6.4e-03");
  EXPECT_EQ(formatFixed(28.83, 1), "28.8");
}

TEST(Table, RendersAlignedRows) {
  Table T({"M", "lp", "Avg"});
  T.addRow({"3", "l1", "1.808"});
  T.addRow({"12", "linf", "0.011"});
  std::string S = T.render();
  EXPECT_NE(S.find("M"), std::string::npos);
  EXPECT_NE(S.find("1.808"), std::string::npos);
  EXPECT_NE(S.find("linf"), std::string::npos);
  // Header separator present.
  EXPECT_NE(S.find("---"), std::string::npos);
}

TEST(Timer, MeasuresNonNegativeTime) {
  Timer T;
  volatile double X = 0;
  for (int I = 0; I < 1000; ++I)
    X = X + std::sqrt(static_cast<double>(I));
  EXPECT_GE(T.seconds(), 0.0);
}

TEST(Timer, ScopedAccumAddsElapsedTime) {
  double Acc = 0.0;
  {
    ScopedAccum A(Acc);
    volatile double X = 0;
    for (int I = 0; I < 1000; ++I)
      X = X + std::sqrt(static_cast<double>(I));
    EXPECT_DOUBLE_EQ(Acc, 0.0); // only added at scope exit
  }
  EXPECT_GT(Acc, 0.0);
  double First = Acc;
  {
    ScopedAccum A(Acc);
  }
  EXPECT_GE(Acc, First); // accumulates across scopes
}

//===----------------------------------------------------------------------===//
// JSON non-finite handling
//===----------------------------------------------------------------------===//

TEST(Json, NumberEmitsNullForNonFinite) {
  const double NaN = std::numeric_limits<double>::quiet_NaN();
  const double Inf = std::numeric_limits<double>::infinity();
  EXPECT_EQ(jsonNumber(NaN), "null");
  EXPECT_EQ(jsonNumber(Inf), "null");
  EXPECT_EQ(jsonNumber(-Inf), "null");
  EXPECT_EQ(jsonNumber(1.5), "1.5");
  // The emitted token always embeds into a parseable document -- the
  // invariant every store writer relies on.
  JsonValue Doc;
  EXPECT_TRUE(parseJson("{\"margin\":" + jsonNumber(NaN) + "}", Doc));
  EXPECT_TRUE(parseJson("{\"margin\":" + jsonNumber(-Inf) + "}", Doc));
}

TEST(Json, ParserRejectsBareNonFiniteTokens) {
  // JSON has no non-finite literals; a writer that leaked one must be
  // caught by every reader, not silently mis-parsed.
  JsonValue Doc;
  std::string Err;
  EXPECT_FALSE(parseJson("{\"x\":nan}", Doc, &Err));
  EXPECT_FALSE(parseJson("{\"x\":inf}", Doc));
  EXPECT_FALSE(parseJson("{\"x\":-inf}", Doc));
  EXPECT_FALSE(parseJson("[Infinity]", Doc));
  EXPECT_FALSE(parseJson("[NaN]", Doc));
}

//===----------------------------------------------------------------------===//
// Error taxonomy
//===----------------------------------------------------------------------===//

TEST(Error, NamesAreStableSnakeCase) {
  EXPECT_STREQ(errorCodeName(ErrorCode::Ok), "ok");
  EXPECT_STREQ(errorCodeName(ErrorCode::ModelCorrupt), "model_corrupt");
  EXPECT_STREQ(errorCodeName(ErrorCode::StoreCorrupt), "store_corrupt");
  EXPECT_STREQ(errorCodeName(ErrorCode::UnsoundAbstraction),
               "unsound_abstraction");
  EXPECT_STREQ(errorCodeName(ErrorCode::FaultInjected), "fault_injected");
  EXPECT_STREQ(errorCodeName(ErrorCode::DeadlineExceeded),
               "deadline_exceeded");
}

TEST(Error, ExitCodeClasses) {
  EXPECT_EQ(exitCodeFor(ErrorCode::Ok), 0);
  EXPECT_EQ(exitCodeFor(ErrorCode::BadArgument), 2);
  EXPECT_EQ(exitCodeFor(ErrorCode::JobInvalid), 2);
  EXPECT_EQ(exitCodeFor(ErrorCode::IoError), 3);
  EXPECT_EQ(exitCodeFor(ErrorCode::ModelNotFound), 3);
  EXPECT_EQ(exitCodeFor(ErrorCode::ModelCorrupt), 3);
  EXPECT_EQ(exitCodeFor(ErrorCode::StoreCorrupt), 3);
  EXPECT_EQ(exitCodeFor(ErrorCode::DeadlineExceeded), 4);
  EXPECT_EQ(exitCodeFor(ErrorCode::OutOfMemory), 5);
  EXPECT_EQ(exitCodeFor(ErrorCode::UnsoundAbstraction), 5);
  EXPECT_EQ(exitCodeFor(ErrorCode::Internal), 5);
}

TEST(Error, WhatEmbedsCodeSiteAndMessage) {
  Error E(ErrorCode::StoreCorrupt, "store.open", "boom happened");
  std::string W = E.what();
  EXPECT_NE(W.find("store_corrupt"), std::string::npos) << W;
  EXPECT_NE(W.find("store.open"), std::string::npos) << W;
  EXPECT_NE(W.find("boom happened"), std::string::npos) << W;
  EXPECT_EQ(E.code(), ErrorCode::StoreCorrupt);
  EXPECT_EQ(E.site(), "store.open");
  // The default-constructed out-param form means "no error yet".
  Error None;
  EXPECT_EQ(None.code(), ErrorCode::Ok);
}

TEST(Error, CodeOfMapsExceptions) {
  EXPECT_EQ(codeOf(Error(ErrorCode::JobInvalid, "sched.job", "x")),
            ErrorCode::JobInvalid);
  EXPECT_EQ(codeOf(std::bad_alloc()), ErrorCode::OutOfMemory);
  EXPECT_EQ(codeOf(std::runtime_error("anything")), ErrorCode::Internal);
}
