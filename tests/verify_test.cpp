//===- tests/verify_test.cpp ----------------------------------*- C++ -*-===//
//
// End-to-end tests of the DeepT verifier: soundness against concrete
// executions, the precision ordering of the verifier family, and the
// certified-radius machinery.
//
//===----------------------------------------------------------------------===//

#include "verify/DeepT.h"
#include "verify/FeedForwardVerifier.h"
#include "verify/RadiusSearch.h"

#include "attack/Enumeration.h"
#include "nn/Train.h"
#include "support/Metrics.h"

#include "TestHelpers.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace deept;
using namespace deept::verify;
using namespace deept::testhelp;
using tensor::Matrix;
using zono::Zonotope;

namespace {

struct Fixture {
  data::SyntheticCorpus Corpus;
  nn::TransformerModel Model;       // paper-default layer norm
  nn::TransformerModel ModelStdLn;  // standard layer norm variant
  std::vector<data::Sentence> Test;

  Fixture() : Corpus(data::CorpusConfig::sstLike(16)) {
    support::Rng Rng(77);
    nn::TransformerConfig C;
    C.MaxLen = 12;
    C.EmbedDim = 16;
    C.NumHeads = 2;
    C.HiddenDim = 16;
    C.NumLayers = 2;
    Model = nn::TransformerModel::init(C, Corpus.embeddings(), Rng);
    C.LayerNormStdDiv = true;
    ModelStdLn = nn::TransformerModel::init(C, Corpus.embeddings(), Rng);

    support::Rng DataRng(78);
    auto Train = Corpus.sampleDataset(256, DataRng);
    Test = Corpus.sampleDataset(24, DataRng);
    nn::TrainOptions Opts;
    Opts.Steps = 120;
    Opts.BatchSize = 8;
    nn::trainTransformer(Model, Corpus, Train, Opts);
    nn::trainTransformer(ModelStdLn, Corpus, Train, Opts);
  }
};

const Fixture &fixture() {
  static Fixture F;
  return F;
}

VerifierConfig fastConfig() {
  VerifierConfig C;
  C.NoiseReductionBudget = 400;
  return C;
}

const double Norms[] = {1.0, 2.0, Matrix::InfNorm};

class VerifyNormTest : public ::testing::TestWithParam<double> {};

} // namespace

TEST_P(VerifyNormTest, PropagationSoundOnSamples) {
  double P = GetParam();
  const Fixture &F = fixture();
  DeepTVerifier V(F.Model, fastConfig());
  support::Rng Rng(500);
  for (int Case = 0; Case < 3; ++Case) {
    const data::Sentence &S = F.Test[Case];
    Matrix X = F.Model.embed(S.Tokens);
    Zonotope In = Zonotope::lpBallOnRow(X, Case % S.Tokens.size(), P, 0.05);
    Zonotope Logits = V.propagate(In);
    Matrix Lo, Hi;
    Logits.bounds(Lo, Hi);
    for (int I = 0; I < 25; ++I) {
      Matrix XP = In.sample(Rng, I % 2 == 0);
      Matrix Concrete = F.Model.forwardEmbeddings(XP);
      EXPECT_TRUE(withinBounds(Concrete, Lo, Hi, 1e-6));
    }
  }
}

TEST_P(VerifyNormTest, MarginLowerBoundsConcreteMargins) {
  double P = GetParam();
  const Fixture &F = fixture();
  DeepTVerifier V(F.Model, fastConfig());
  support::Rng Rng(501);
  const data::Sentence &S = F.Test[0];
  Matrix X = F.Model.embed(S.Tokens);
  size_t Pred = F.Model.forwardEmbeddings(X).argmax();
  Zonotope In = Zonotope::lpBallOnRow(X, 1, P, 0.03);
  double Bound = V.certifyMargin(In, Pred);
  for (int I = 0; I < 30; ++I) {
    Matrix XP = In.sample(Rng, I % 2 == 0);
    Matrix L = F.Model.forwardEmbeddings(XP);
    double Concrete = L.at(0, Pred) - L.at(0, 1 - Pred);
    EXPECT_GE(Concrete, Bound - 1e-6);
  }
}

TEST(Verify, TinyRadiusGivesTightLogits) {
  const Fixture &F = fixture();
  DeepTVerifier V(F.Model, fastConfig());
  const data::Sentence &S = F.Test[1];
  Matrix X = F.Model.embed(S.Tokens);
  Zonotope In = Zonotope::lpBallOnRow(X, 0, 2.0, 1e-9);
  Zonotope Logits = V.propagate(In);
  Matrix Lo, Hi;
  Logits.bounds(Lo, Hi);
  Matrix Concrete = F.Model.forwardEmbeddings(X);
  EXPECT_TRUE(withinBounds(Concrete, Lo, Hi, 1e-9));
  for (size_t I = 0; I < 2; ++I)
    EXPECT_LT(Hi.flat(I) - Lo.flat(I), 1e-4)
        << "abstraction should be near-exact at a near-point input";
}

TEST(Verify, StdLayerNormPathSound) {
  const Fixture &F = fixture();
  DeepTVerifier V(F.ModelStdLn, fastConfig());
  support::Rng Rng(502);
  const data::Sentence &S = F.Test[2];
  Matrix X = F.ModelStdLn.embed(S.Tokens);
  Zonotope In = Zonotope::lpBallOnRow(X, 0, 2.0, 0.02);
  Zonotope Logits = V.propagate(In);
  Matrix Lo, Hi;
  Logits.bounds(Lo, Hi);
  for (int I = 0; I < 25; ++I) {
    Matrix XP = In.sample(Rng, I % 2 == 0);
    Matrix Concrete = F.ModelStdLn.forwardEmbeddings(XP);
    EXPECT_TRUE(withinBounds(Concrete, Lo, Hi, 1e-6));
  }
}

TEST(Verify, PreciseAtLeastAsTightAsFastForLinf) {
  const Fixture &F = fixture();
  VerifierConfig Fast = fastConfig();
  VerifierConfig Precise = fastConfig();
  Precise.Method = zono::DotMethod::Precise;
  const data::Sentence &S = F.Test[3];
  Matrix X = F.Model.embed(S.Tokens);
  size_t Pred = F.Model.forwardEmbeddings(X).argmax();
  Zonotope In = Zonotope::lpBallOnRow(X, 1, Matrix::InfNorm, 0.01);
  double MF = DeepTVerifier(F.Model, Fast).certifyMargin(In, Pred);
  double MP = DeepTVerifier(F.Model, Precise).certifyMargin(In, Pred);
  // The Eq. 6 eps-eps bound dominates Eq. 5, but noise reduction after the
  // first layer can reorder things slightly; allow a small slack.
  EXPECT_GE(MP, MF - 1e-6);
}

TEST(Verify, RefinementImprovesAverageMargin) {
  const Fixture &F = fixture();
  VerifierConfig On = fastConfig();
  VerifierConfig Off = fastConfig();
  Off.SoftmaxSumRefinement = false;
  double SumOn = 0, SumOff = 0;
  for (int Case = 0; Case < 3; ++Case) {
    const data::Sentence &S = F.Test[Case];
    Matrix X = F.Model.embed(S.Tokens);
    size_t Pred = F.Model.forwardEmbeddings(X).argmax();
    Zonotope In = Zonotope::lpBallOnRow(X, 0, 2.0, 0.02);
    SumOn += DeepTVerifier(F.Model, On).certifyMargin(In, Pred);
    SumOff += DeepTVerifier(F.Model, Off).certifyMargin(In, Pred);
  }
  EXPECT_GE(SumOn, SumOff - 1e-9);
}

TEST(Verify, LargerReductionBudgetIsMorePreciseOnAverage) {
  const Fixture &F = fixture();
  VerifierConfig Big = fastConfig();
  Big.NoiseReductionBudget = 2000;
  VerifierConfig Small = fastConfig();
  Small.NoiseReductionBudget = 40;
  double SumBig = 0, SumSmall = 0;
  for (int Case = 0; Case < 3; ++Case) {
    const data::Sentence &S = F.Test[Case];
    Matrix X = F.Model.embed(S.Tokens);
    size_t Pred = F.Model.forwardEmbeddings(X).argmax();
    Zonotope In = Zonotope::lpBallOnRow(X, 0, 2.0, 0.02);
    SumBig += DeepTVerifier(F.Model, Big).certifyMargin(In, Pred);
    SumSmall += DeepTVerifier(F.Model, Small).certifyMargin(In, Pred);
  }
  EXPECT_GE(SumBig, SumSmall - 1e-9);
}

TEST(Verify, CombinedVerifierSoundAndBetween) {
  const Fixture &F = fixture();
  VerifierConfig Combined = fastConfig();
  Combined.PreciseLastLayerOnly = true;
  DeepTVerifier V(F.Model, Combined);
  support::Rng Rng(503);
  const data::Sentence &S = F.Test[4];
  Matrix X = F.Model.embed(S.Tokens);
  Zonotope In = Zonotope::lpBallOnRow(X, 0, Matrix::InfNorm, 0.02);
  Zonotope Logits = V.propagate(In);
  Matrix Lo, Hi;
  Logits.bounds(Lo, Hi);
  for (int I = 0; I < 20; ++I)
    EXPECT_TRUE(withinBounds(F.Model.forwardEmbeddings(In.sample(Rng)), Lo,
                             Hi, 1e-6));
}

TEST(Verify, PropagationStatsPopulated) {
  const Fixture &F = fixture();
  DeepTVerifier V(F.Model, fastConfig());
  const data::Sentence &S = F.Test[0];
  Zonotope In =
      Zonotope::lpBallOnRow(F.Model.embed(S.Tokens), 0, 2.0, 0.01);
  PropagationStats Stats;
  V.propagate(In, &Stats);
  EXPECT_GT(Stats.PeakEpsSymbols, 0u);
  EXPECT_GT(Stats.PeakCoeffBytes, 0u);
}

TEST(Verify, PropagationStatsMirroredInRegistry) {
  const Fixture &F = fixture();
  DeepTVerifier V(F.Model, fastConfig());
  const data::Sentence &S = F.Test[0];
  Zonotope In =
      Zonotope::lpBallOnRow(F.Model.embed(S.Tokens), 0, 2.0, 0.01);
  support::Metrics &M = support::Metrics::global();
  M.reset();
  PropagationStats Stats;
  V.propagate(In, &Stats);
  PropagationStats FromReg = PropagationStats::fromRegistry();
  EXPECT_EQ(FromReg.PeakEpsSymbols, Stats.PeakEpsSymbols);
  EXPECT_EQ(FromReg.PeakCoeffBytes, Stats.PeakCoeffBytes);
  EXPECT_EQ(FromReg.SymbolsTightened, Stats.SymbolsTightened);
  EXPECT_DOUBLE_EQ(M.counterValue("verify.propagate.calls"), 1.0);
  // Per-layer instrumentation fires once per transformer layer.
  EXPECT_EQ(M.histogramStats("verify.layer.eps_created").Count,
            F.Model.Layers.size());
  EXPECT_EQ(M.histogramStats("verify.layer.peak_eps_symbols").Count,
            F.Model.Layers.size());
  // Non-affine transformers went through appendFreshEps.
  EXPECT_GT(M.counterValue("zono.eps_symbols.created"), 0.0);
  // A budget below the fixture's eps count forces reduction, which the
  // registry must see.
  VerifierConfig Small = fastConfig();
  Small.NoiseReductionBudget = 40;
  DeepTVerifier(F.Model, Small).propagate(In);
  EXPECT_GT(M.counterValue("zono.eps_symbols.reduced"), 0.0);
}

TEST(Verify, StatsSurviveCertifyMarginEntryPoint) {
  // certifyMargin discards propagate's out-param; the registry must still
  // capture the run (the bug this observability layer fixes).
  const Fixture &F = fixture();
  DeepTVerifier V(F.Model, fastConfig());
  const data::Sentence &S = F.Test[0];
  Matrix X = F.Model.embed(S.Tokens);
  size_t Pred = F.Model.forwardEmbeddings(X).argmax();
  Zonotope In = Zonotope::lpBallOnRow(X, 0, 2.0, 0.01);
  support::Metrics &M = support::Metrics::global();
  M.reset();
  V.certifyMargin(In, Pred);
  PropagationStats Stats = PropagationStats::fromRegistry();
  EXPECT_GT(Stats.PeakEpsSymbols, 0u);
  EXPECT_GT(Stats.PeakCoeffBytes, 0u);
  EXPECT_DOUBLE_EQ(M.counterValue("verify.propagate.calls"), 1.0);
  EXPECT_GT(M.counterValue("zono.dot.fast.calls"), 0.0);
}

//===----------------------------------------------------------------------===//
// Threat model T2: synonym boxes vs enumeration
//===----------------------------------------------------------------------===//

TEST(Verify, SynonymBoxContainsAllSubstitutions) {
  const Fixture &F = fixture();
  DeepTVerifier V(F.Model, fastConfig());
  support::Rng Rng(504);
  data::Sentence S = F.Test[5];
  Zonotope Box = V.synonymBox(F.Corpus, S);
  Matrix Lo, Hi;
  Box.bounds(Lo, Hi);
  // Every synonym substitution's embedding matrix lies in the box.
  for (int Trial = 0; Trial < 20; ++Trial) {
    data::Sentence Sub = S;
    F.Corpus.swapSynonyms(Sub, 0.7, Rng);
    EXPECT_TRUE(withinBounds(F.Model.embed(Sub.Tokens), Lo, Hi, 1e-12));
  }
}

TEST(Verify, CertifiedSynonymRobustnessAgreesWithEnumeration) {
  // The central T2 soundness statement: if DeepT certifies a sentence, the
  // complete enumeration must find no adversarial synonym combination.
  const Fixture &F = fixture();
  DeepTVerifier V(F.Model, fastConfig());
  int Certified = 0;
  for (int Case = 0; Case < 8; ++Case) {
    const data::Sentence &S = F.Test[Case];
    if (F.Model.classify(S.Tokens) != S.Label)
      continue;
    bool Cert = V.certifySynonymBox(F.Corpus, S, S.Label);
    if (!Cert)
      continue;
    ++Certified;
    auto Enum = attack::enumerateSynonymAttack(F.Model, F.Corpus, S,
                                               S.Label, 1u << 16);
    EXPECT_TRUE(Enum.Robust)
        << "certified sentence " << Case << " has an adversarial synonym "
        << "combination: soundness violation";
  }
  // The fixture's robust-enough model should certify at least one case;
  // otherwise this test is vacuous.
  EXPECT_GT(Certified, 0);
}

//===----------------------------------------------------------------------===//
// Radius search and the feed-forward verifier
//===----------------------------------------------------------------------===//

TEST(RadiusSearch, FindsMonotoneThreshold) {
  auto Certify = [](double R) { return R <= 0.37; };
  double R = certifiedRadius(Certify);
  EXPECT_NEAR(R, 0.37, 0.01);
  EXPECT_LE(R, 0.37); // never overshoots: the result itself certifies
}

TEST(RadiusSearch, HandlesDegenerateCases) {
  EXPECT_DOUBLE_EQ(certifiedRadius([](double) { return false; }), 0.0);
  RadiusSearchOptions Opts;
  Opts.MaxRadius = 8.0;
  EXPECT_DOUBLE_EQ(certifiedRadius([](double) { return true; }, Opts), 8.0);
}

TEST(RadiusSearch, CountsCallsReasonably) {
  int Calls = 0;
  certifiedRadius([&](double R) {
    ++Calls;
    return R <= 0.2;
  });
  EXPECT_LT(Calls, 40);
}

TEST(FeedForwardVerifier, ExactForLinearNetwork) {
  // Without hidden ReLUs, propagation is exact: the margin bound equals
  // the true minimum margin (center minus dual-norm of the row).
  support::Rng Rng(505);
  nn::FeedForwardNet Net = nn::FeedForwardNet::init({4, 2}, Rng);
  Matrix X = Matrix::randn(1, 4, Rng);
  Zonotope In = Zonotope::lpBall(X, 2.0, 0.1);
  double Bound = feedForwardMargin(Net, In, 0);
  // Concrete minimum: margin(x) = (W col0 - W col1) . x + (b0 - b1); over
  // an l2 ball the minimum is margin(center) - 0.1 * ||w||_2.
  Matrix W = Net.Weights[0];
  Matrix B = Net.Biases[0];
  double Center = B.at(0, 0) - B.at(0, 1);
  double NormSq = 0.0;
  for (size_t I = 0; I < 4; ++I) {
    double D = W.at(I, 0) - W.at(I, 1);
    Center += X.at(0, I) * D;
    NormSq += D * D;
  }
  EXPECT_NEAR(Bound, Center - 0.1 * std::sqrt(NormSq), 1e-9);
}

TEST(FeedForwardVerifier, SoundOnReluNetwork) {
  support::Rng Rng(506);
  nn::FeedForwardNet Net = nn::FeedForwardNet::init({6, 10, 5, 2}, Rng);
  Matrix X = Matrix::randn(1, 6, Rng);
  for (double P : Norms) {
    Zonotope In = Zonotope::lpBall(X, P, 0.15);
    Zonotope Logits = propagateFeedForward(Net, In);
    Matrix Lo, Hi;
    Logits.bounds(Lo, Hi);
    for (int I = 0; I < 40; ++I)
      EXPECT_TRUE(
          withinBounds(Net.forward(In.sample(Rng, I % 2 == 0)), Lo, Hi));
  }
}

INSTANTIATE_TEST_SUITE_P(Norms, VerifyNormTest, ::testing::ValuesIn(Norms),
                         [](const ::testing::TestParamInfo<double> &Info) {
                           if (Info.param == 1.0)
                             return std::string("l1");
                           if (Info.param == 2.0)
                             return std::string("l2");
                           return std::string("linf");
                         });
