//===- tests/certificate_test.cpp - Proof certificate tests ----*- C++ -*-===//
//
// The certificate layer end to end: the producer (verify/Certificate)
// records runs that the independent checker (src/check) accepts; every
// tampered variant of the corrupted-certificate corpus is rejected with
// the right taxonomy code (StoreCorrupt for mangled artifacts,
// UnsoundAbstraction for derivations that do not replay) -- in the style
// of serialize_test.cpp's corrupted-model corpus. Also covers payload
// bit-identity across thread counts, the 1-ULP negative-path oracle, the
// scheduler's cert-dir artifacts, and the cert.write fault drill.
//
//===----------------------------------------------------------------------===//

#include "check/CertCheck.h"
#include "check/Interval.h"
#include "data/SyntheticCorpus.h"
#include "nn/FeedForwardNet.h"
#include "nn/Transformer.h"
#include "support/Error.h"
#include "support/Fault.h"
#include "support/Fp.h"
#include "support/Metrics.h"
#include "support/Parallel.h"
#include "support/Rng.h"
#include "verify/Certificate.h"
#include "verify/DeepT.h"
#include "verify/FeedForwardVerifier.h"
#include "verify/Scheduler.h"
#include "zono/Zonotope.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <string>
#include <sys/stat.h>
#include <vector>

using namespace deept;
using support::ErrorCode;
using support::ThreadPool;
using tensor::Matrix;
using verify::CertificateBuilder;
using verify::CertificateData;

namespace {

/// Restores the pool's thread count on scope exit.
class ScopedThreads {
public:
  explicit ScopedThreads(size_t N)
      : Prev(ThreadPool::global().threadCount()) {
    ThreadPool::global().setThreadCount(N);
  }
  ~ScopedThreads() { ThreadPool::global().setThreadCount(Prev); }

private:
  size_t Prev;
};

struct TinySetup {
  data::SyntheticCorpus Corpus;
  nn::TransformerModel Model;
  data::Sentence Sent;

  TinySetup() : Corpus(data::CorpusConfig::sstLike(16)) {
    nn::TransformerConfig Cfg;
    Cfg.MaxLen = 16;
    Cfg.EmbedDim = 16;
    Cfg.NumHeads = 2;
    Cfg.HiddenDim = 16;
    Cfg.NumLayers = 2;
    support::Rng Rng(0x5eed);
    Model = nn::TransformerModel::init(Cfg, Corpus.embeddings(), Rng);
    support::Rng SentRng(7);
    Sent = Corpus.sampleSentence(SentRng);
    // Certify against the model's own prediction so margins are
    // positive even for this untrained model.
    Sent.Label = Model.classify(Sent.Tokens);
  }
};

/// One recorded DeepT run on the tiny model (small eps, certified).
CertificateData recordedRun(const TinySetup &S, double Eps = 1e-3,
                            support::FpPrecision Precision =
                                support::FpPrecision::F64) {
  CertificateBuilder Cert;
  Cert.Data.Query = "test-q";
  Cert.Data.Norm = "l2";
  Cert.Data.P = 2.0;
  verify::VerifierConfig VC;
  VC.NoiseReductionBudget = 128;
  VC.Precision = Precision;
  VC.Certificate = &Cert;
  verify::DeepTVerifier V(S.Model, VC);
  Matrix X = S.Model.embed(S.Sent.Tokens);
  zono::Zonotope In = zono::Zonotope::lpBallOnRow(X, 0, 2.0, Eps);
  double M = V.certifyMargin(In, S.Sent.Label);
  EXPECT_GT(M, 0.0) << "tiny-model margin should certify at eps " << Eps;
  EXPECT_TRUE(Cert.Data.Margin.Valid);
  return Cert.Data;
}

/// Expects checkCertificate to throw with the given taxonomy code.
void expectReject(const std::string &Line, ErrorCode Want,
                  const char *What) {
  try {
    check::checkCertificate(Line);
    FAIL() << What << ": checker accepted a bad certificate";
  } catch (const support::Error &E) {
    EXPECT_EQ(E.code(), Want) << What << ": " << E.what();
  }
}

} // namespace

//===----------------------------------------------------------------------===//
// Interval core
//===----------------------------------------------------------------------===//

TEST(CertInterval, DirectedOpsEncloseRoundToNearest) {
  // 0.1 + 0.2 is inexact in binary64, so the directed results must
  // strictly bracket the round-to-nearest sum.
  double Rn = 0.1 + 0.2;
  EXPECT_LT(check::addDown(0.1, 0.2), check::addUp(0.1, 0.2));
  EXPECT_LE(check::addDown(0.1, 0.2), Rn);
  EXPECT_GE(check::addUp(0.1, 0.2), Rn);
  EXPECT_LE(check::mulDown(0.1, 0.1), 0.1 * 0.1);
  EXPECT_GE(check::mulUp(0.1, 0.1), 0.1 * 0.1);
  EXPECT_LE(check::sqrtDown(2.0), std::sqrt(2.0));
  EXPECT_GE(check::sqrtUp(2.0), std::sqrt(2.0));
  // Exact operations stay exact in both directions.
  EXPECT_EQ(check::addDown(1.0, 2.0), 3.0);
  EXPECT_EQ(check::addUp(1.0, 2.0), 3.0);
}

TEST(CertInterval, DualNormEnclosesKernelTrack) {
  // The enclosure must contain an ascending round-to-nearest
  // accumulation of the same terms (the producer's kernel order).
  std::vector<double> V;
  support::Rng Rng(42);
  for (int I = 0; I < 1000; ++I)
    V.push_back(Rng.uniform(-1.0, 1.0));
  double Sq = 0.0, Abs = 0.0, Max = 0.0;
  for (double X : V) {
    Sq += X * X;
    Abs += std::fabs(X);
    Max = std::max(Max, std::fabs(X));
  }
  check::Interval L2 = check::dualNormEnclosure(2.0, V);
  EXPECT_TRUE(L2.contains(std::sqrt(Sq)));
  check::Interval L1 = check::dualNormEnclosure(1.0, V);
  EXPECT_TRUE(L1.contains(Abs));
  check::Interval Linf = check::dualNormEnclosure(-1.0, V);
  EXPECT_EQ(Linf.Lo, Max);
  EXPECT_EQ(Linf.Hi, Max);
}

//===----------------------------------------------------------------------===//
// Producer -> checker round trips
//===----------------------------------------------------------------------===//

TEST(Certificate, DeepTRunReplays) {
  TinySetup S;
  CertificateData Data = recordedRun(S);
  check::CertificateSummary Sum =
      check::checkCertificate(Data.toJson());
  EXPECT_EQ(Sum.Query, "test-q");
  EXPECT_EQ(Sum.Kind, "deept");
  EXPECT_EQ(Sum.Precision, "f64");
  EXPECT_TRUE(Sum.Certified);
  EXPECT_GT(Sum.MarginLo, 0.0);
  EXPECT_EQ(Sum.Checkpoints.front().Site, "verify.layer_input");
  EXPECT_EQ(Sum.Checkpoints.back().Site, "verify.logits");
  // The digest is stable under re-checking the same artifact.
  EXPECT_EQ(check::semanticDigest(Sum),
            check::semanticDigest(check::checkCertificate(Data.toJson())));
}

TEST(Certificate, F32RunReplays) {
  TinySetup S;
  CertificateData Data = recordedRun(S, 1e-3, support::FpPrecision::F32);
  check::CertificateSummary Sum =
      check::checkCertificate(Data.toJson());
  // If the f32 run certified without escalation, the certificate records
  // the lifted single-precision norms; an escalated query records its
  // final f64 run instead. Either way the artifact must replay.
  EXPECT_EQ(Sum.Precision, Data.Precision);
  EXPECT_TRUE(Sum.Certified);
}

TEST(Certificate, FeedForwardRunReplays) {
  support::Rng Rng(0xfeed);
  nn::FeedForwardNet Net = nn::FeedForwardNet::init({6, 10, 8, 2}, Rng);
  Matrix X(1, 6);
  for (size_t C = 0; C < 6; ++C)
    X.at(0, C) = 0.1 * static_cast<double>(C + 1);
  size_t Label = Net.classify(X);
  CertificateBuilder Cert;
  Cert.Data.Query = "ffn-q";
  Cert.Data.Norm = "linf";
  Cert.Data.P = Matrix::InfNorm;
  bool Ok = verify::certifyFeedForwardLpBall(Net, X, Matrix::InfNorm, 1e-4,
                                             Label, &Cert);
  ASSERT_TRUE(Ok);
  check::CertificateSummary Sum =
      check::checkCertificate(Cert.Data.toJson());
  EXPECT_EQ(Sum.Kind, "ffn");
  EXPECT_TRUE(Sum.Certified);
  EXPECT_EQ(Sum.Checkpoints.front().Site, "ffn.input");
  EXPECT_EQ(Sum.Checkpoints.back().Site, "ffn.layer_output");
  EXPECT_EQ(Sum.Checkpoints.size(), 4u); // input + 3 layers
}

TEST(Certificate, PayloadBitIdenticalAcrossThreadCounts) {
  TinySetup S;
  std::string P1, P4;
  {
    ScopedThreads T(1);
    P1 = recordedRun(S).payloadJson();
  }
  {
    ScopedThreads T(4);
    P4 = recordedRun(S).payloadJson();
  }
  // Same ISA, different thread counts: the payload (and hence its CRC)
  // must be byte-identical; only the envelope's threads field differs.
  EXPECT_EQ(P1, P4);
}

//===----------------------------------------------------------------------===//
// Corrupted-certificate corpus
//===----------------------------------------------------------------------===//

TEST(CertificateCorpus, TruncationRejected) {
  TinySetup S;
  std::string Line = recordedRun(S).toJson();
  // Every truncation point must be a typed StoreCorrupt, never a crash
  // or an acceptance.
  for (size_t Keep : {size_t(0), size_t(1), size_t(10), Line.size() / 2,
                      Line.size() - 1})
    expectReject(Line.substr(0, Keep), ErrorCode::StoreCorrupt,
                 "truncation");
}

TEST(CertificateCorpus, BitFlipInPayloadRejectedByCrc) {
  TinySetup S;
  std::string Line = recordedRun(S).toJson();
  size_t PayloadStart = Line.find("\"payload\":") + 10;
  ASSERT_LT(PayloadStart, Line.size());
  // Flip one bit in several CRC'd payload positions; whether the flip
  // still parses as JSON or not, the artifact must be StoreCorrupt.
  for (size_t Off : {size_t(5), size_t(100), (Line.size() - PayloadStart) / 2}) {
    std::string Bad = Line;
    Bad[PayloadStart + Off] ^= 0x01;
    expectReject(Bad, ErrorCode::StoreCorrupt, "payload bit flip");
  }
}

TEST(CertificateCorpus, TamperedAlphaNormRejected) {
  TinySetup S;
  CertificateData Data = recordedRun(S);
  // Shrink the recorded ||alpha||_q below the replayed enclosure. The
  // re-serialization recomputes a valid CRC, so only the replay can
  // catch this.
  Data.Margin.AlphaNorm *= 0.5;
  expectReject(Data.toJson(), ErrorCode::UnsoundAbstraction,
               "shrunk alpha norm");
}

TEST(CertificateCorpus, TamperedMarginLoRejected) {
  TinySetup S;
  CertificateData Data = recordedRun(S);
  // A grossly inflated lower bound (the cheat that would fake a larger
  // certified margin) must not replay.
  Data.Margin.Lo = Data.Margin.Lo + 1.0;
  expectReject(Data.toJson(), ErrorCode::UnsoundAbstraction,
               "inflated margin lo");
}

TEST(CertificateCorpus, FlippedVerdictRejected) {
  TinySetup S;
  CertificateData Data = recordedRun(S);
  ASSERT_GT(Data.Margin.Lo, 0.0);
  Data.Margin.Certified = false; // lo > 0 says otherwise
  expectReject(Data.toJson(), ErrorCode::UnsoundAbstraction,
               "flipped verdict");
}

TEST(CertificateCorpus, NonFiniteConcretizationRejected) {
  TinySetup S;
  {
    CertificateData Data = recordedRun(S);
    Data.Checkpoints[0].Center[0] =
        std::numeric_limits<double>::quiet_NaN();
    expectReject(Data.toJson(), ErrorCode::UnsoundAbstraction,
                 "NaN center");
  }
  {
    CertificateData Data = recordedRun(S);
    Data.Margin.Lo = std::numeric_limits<double>::infinity();
    expectReject(Data.toJson(), ErrorCode::UnsoundAbstraction,
                 "infinite margin lo");
  }
}

TEST(CertificateCorpus, BookkeepingMismatchRejected) {
  TinySetup S;
  {
    CertificateData Data = recordedRun(S);
    Data.Margin.Alpha.pop_back(); // fewer coefficients than phi symbols
    expectReject(Data.toJson(), ErrorCode::UnsoundAbstraction,
                 "alpha length");
  }
  {
    CertificateData Data = recordedRun(S);
    Data.Checkpoints[0].Site = "verify.bogus";
    expectReject(Data.toJson(), ErrorCode::UnsoundAbstraction,
                 "unknown site");
  }
  {
    CertificateData Data = recordedRun(S);
    Data.InputLo[0] -= 1.0; // input box escapes the first checkpoint
    expectReject(Data.toJson(), ErrorCode::UnsoundAbstraction,
                 "input enclosure");
  }
}

TEST(CertificateCorpus, OneUlpShrinkBelowEnclosureRejected) {
  TinySetup S;
  CertificateData Data = recordedRun(S);
  // The negative-path oracle: place the margin lower bound exactly one
  // ULP ABOVE the upper end of the directed replay enclosure of
  // c - (na + nb). If the checker's replay were any looser, this would
  // slip through; it must be rejected.
  double UpperEnd = check::subUp(
      Data.Margin.Center,
      check::addDown(Data.Margin.AlphaNorm, Data.Margin.BetaNorm));
  ASSERT_GE(UpperEnd, Data.Margin.Lo); // sanity: honest value encloses
  Data.Margin.Lo = std::nextafter(
      UpperEnd, std::numeric_limits<double>::infinity());
  expectReject(Data.toJson(), ErrorCode::UnsoundAbstraction,
               "1-ULP above enclosure");
  // And the same one ULP below the lower end.
  CertificateData Data2 = recordedRun(S);
  double LowerEnd = check::subDown(
      Data2.Margin.Center,
      check::addUp(Data2.Margin.AlphaNorm, Data2.Margin.BetaNorm));
  ASSERT_LE(LowerEnd, Data2.Margin.Lo);
  Data2.Margin.Lo = std::nextafter(
      LowerEnd, -std::numeric_limits<double>::infinity());
  expectReject(Data2.toJson(), ErrorCode::UnsoundAbstraction,
               "1-ULP below enclosure");
}

//===----------------------------------------------------------------------===//
// Scheduler integration
//===----------------------------------------------------------------------===//

namespace {

/// Minimal mkdir-p for the test's cert dir; removed entry by entry.
struct TempDir {
  std::string Path;
  explicit TempDir(std::string P) : Path(std::move(P)) {
    ::mkdir(Path.c_str(), 0755);
  }
};

std::string readFileBytes(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(In)),
                     std::istreambuf_iterator<char>());
}

verify::JobSpec tinyJob(const TinySetup &S, const char *Id, double Eps) {
  verify::JobSpec J;
  J.Id = Id;
  J.Tokens = S.Sent.Tokens;
  J.TrueClass = S.Sent.Label;
  J.Word = 0;
  J.P = 2.0;
  J.Epsilon = Eps;
  J.Method = verify::JobMethod::Fast;
  J.NoiseReductionBudget = 128;
  return J;
}

} // namespace

TEST(CertificateScheduler, CertDirHoldsReplayableArtifacts) {
  TinySetup S;
  TempDir Dir(::testing::TempDir() + "cert_sched_dir");
  verify::SchedulerOptions SO;
  SO.CertDir = Dir.Path;
  verify::JobQueue Q;
  Q.push(tinyJob(S, "a", 1e-3));
  Q.push(tinyJob(S, "b", 1e-3));
  verify::Scheduler Sched(S.Model, SO);
  std::vector<verify::JobResult> Results = Sched.run(Q);
  ASSERT_EQ(Results.size(), 2u);
  for (const verify::JobResult &R : Results) {
    ASSERT_TRUE(R.Certified) << R.Key;
    std::string Path = Dir.Path + "/cert-" + R.Key + ".json";
    std::string Line = readFileBytes(Path);
    ASSERT_FALSE(Line.empty()) << Path;
    check::CertificateSummary Sum = check::checkCertificate(Line);
    EXPECT_EQ(Sum.Query, R.Key);
    EXPECT_TRUE(Sum.Certified);
    std::remove(Path.c_str());
  }
  ::rmdir(Dir.Path.c_str());
}

#ifdef DEEPT_FAULT_INJECT
TEST(CertificateScheduler, CertWriteFaultKeepsBatchRunning) {
  TinySetup S;
  TempDir Dir(::testing::TempDir() + "cert_fault_dir");
  verify::SchedulerOptions SO;
  SO.CertDir = Dir.Path;
  verify::JobQueue Q;
  Q.push(tinyJob(S, "fault-a", 1e-3));
  Q.push(tinyJob(S, "fault-b", 1e-3));
  double FailuresBefore =
      support::Metrics::global().counterValue("cert.write_failures");
  {
    ScopedThreads T(1); // deterministic: exactly the first write faults
    ASSERT_TRUE(support::fault::arm("cert.write:1:fail"));
    verify::Scheduler Sched(S.Model, SO);
    std::vector<verify::JobResult> Results = Sched.run(Q);
    support::fault::disarm();
    // The drill: the injected write fault must not fail any job.
    ASSERT_EQ(Results.size(), 2u);
    EXPECT_EQ(Results[0].Status, verify::JobStatus::Ok);
    EXPECT_EQ(Results[1].Status, verify::JobStatus::Ok);
    EXPECT_TRUE(Results[0].Certified);
    EXPECT_TRUE(Results[1].Certified);
  }
  EXPECT_EQ(support::Metrics::global().counterValue("cert.write_failures"),
            FailuresBefore + 1.0);
  // The faulted job has no artifact; the other one replays.
  EXPECT_TRUE(readFileBytes(Dir.Path + "/cert-fault-a.json").empty());
  std::string Line = readFileBytes(Dir.Path + "/cert-fault-b.json");
  ASSERT_FALSE(Line.empty());
  EXPECT_TRUE(check::checkCertificate(Line).Certified);
  std::remove((Dir.Path + "/cert-fault-a.json").c_str());
  std::remove((Dir.Path + "/cert-fault-b.json").c_str());
  ::rmdir(Dir.Path.c_str());
}
#endif
