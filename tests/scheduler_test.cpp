//===- tests/scheduler_test.cpp - Batch scheduler tests --------*- C++ -*-===//
//
// Tests of verify::Scheduler: a mixed batch with forced deadline expiry
// and forced failures gets the right ok/degraded/error tags, the JSONL
// result store resumes by skipping completed keys, and per-job margins
// are bit-identical to serial single-job runs at any thread count.
//
//===----------------------------------------------------------------------===//

#include "data/SyntheticCorpus.h"
#include "nn/Transformer.h"
#include "support/Json.h"
#include "support/Metrics.h"
#include "support/Parallel.h"
#include "support/Rng.h"
#include "verify/Scheduler.h"
#include "zono/Zonotope.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

using namespace deept;
using support::ThreadPool;
using tensor::Matrix;
using verify::JobMethod;
using verify::JobQueue;
using verify::JobResult;
using verify::JobSpec;
using verify::JobStatus;
using verify::Scheduler;
using verify::SchedulerOptions;

namespace {

/// Restores the pool's thread count on scope exit (same idiom as
/// parallel_test.cpp).
class ScopedThreads {
public:
  explicit ScopedThreads(size_t N) : Prev(ThreadPool::global().threadCount()) {
    ThreadPool::global().setThreadCount(N);
  }
  ~ScopedThreads() { ThreadPool::global().setThreadCount(Prev); }

private:
  size_t Prev;
};

/// Deletes a temp file on scope exit.
class TempFile {
public:
  explicit TempFile(std::string Path) : Path(std::move(Path)) {
    std::remove(this->Path.c_str());
  }
  ~TempFile() { std::remove(Path.c_str()); }
  const std::string &path() const { return Path; }

private:
  std::string Path;
};

struct TinySetup {
  data::SyntheticCorpus Corpus;
  nn::TransformerModel Model;
  data::Sentence Sent;

  TinySetup() : Corpus(data::CorpusConfig::sstLike(16)) {
    nn::TransformerConfig Cfg;
    Cfg.MaxLen = 16;
    Cfg.EmbedDim = 16;
    Cfg.NumHeads = 2;
    Cfg.HiddenDim = 16;
    Cfg.NumLayers = 2;
    support::Rng Rng(0x5eed);
    Model = nn::TransformerModel::init(Cfg, Corpus.embeddings(), Rng);
    support::Rng SentRng(7);
    Sent = Corpus.sampleSentence(SentRng);
    // Certify against the model's own prediction so margins (and hence
    // searched radii) are positive even for this untrained model.
    Sent.Label = Model.classify(Sent.Tokens);
  }

  JobSpec job(JobMethod M, double Eps = 0.05) const {
    JobSpec J;
    J.Tokens = Sent.Tokens;
    J.TrueClass = Sent.Label;
    J.Word = 0;
    J.P = 2.0;
    J.Epsilon = Eps;
    J.Method = M;
    J.NoiseReductionBudget = 128;
    return J;
  }
};

/// The serial reference for a fixed-eps DeepT job: what a single-query
/// run computes with one thread.
double serialMargin(const TinySetup &S, const JobSpec &J) {
  ScopedThreads T(1);
  verify::VerifierConfig VC;
  VC.NoiseReductionBudget = J.NoiseReductionBudget;
  if (J.Method == JobMethod::Precise)
    VC.Method = zono::DotMethod::Precise;
  if (J.Method == JobMethod::Combined)
    VC.PreciseLastLayerOnly = true;
  verify::DeepTVerifier V(S.Model, VC);
  Matrix X = S.Model.embed(J.Tokens);
  zono::Zonotope In = zono::Zonotope::lpBallOnRow(X, J.Word, J.P, J.Epsilon);
  return V.certifyMargin(In, J.TrueClass);
}

TEST(Scheduler, MixedBatchTagsAndDegradation) {
  TinySetup S;
  TempFile Store("scheduler_test_mixed.jsonl");

  JobQueue Q;
  Q.push(S.job(JobMethod::Fast));                 // 0: ok
  Q.push(S.job(JobMethod::Precise));              // 1: ok
  Q.push(S.job(JobMethod::Combined));             // 2: ok
  JobSpec Search = S.job(JobMethod::Fast);        // 3: ok (radius search)
  Search.SearchRadius = true;
  Search.Search.InitRadius = 0.05;
  Search.Search.BisectSteps = 3;
  Search.Search.MaxRadius = 8.0;
  Q.push(Search);
  // The deadline jobs repeat queries 0-2, and the derived key excludes
  // the deadline by design -- explicit Ids keep their store rows apart.
  JobSpec Expire = S.job(JobMethod::Precise);     // 4: degraded (forced
  Expire.DeadlineMs = 0;                          //    deadline expiry)
  Expire.Id = "expire-precise";
  Q.push(Expire);
  JobSpec ExpireC = S.job(JobMethod::Combined);   // 5: degraded
  ExpireC.DeadlineMs = 0;
  ExpireC.Id = "expire-combined";
  Q.push(ExpireC);
  JobSpec ExpireF = S.job(JobMethod::Fast);       // 6: error (nothing to
  ExpireF.DeadlineMs = 0;                         //    degrade to)
  ExpireF.Id = "expire-fast";
  Q.push(ExpireF);
  JobSpec Bad = S.job(JobMethod::Fast);           // 7: error (forced throw)
  Bad.Word = 99;
  Q.push(Bad);
  Q.push(S.job(JobMethod::CrownBaF));             // 8: ok (baseline)

  SchedulerOptions Opts;
  Opts.JsonlPath = Store.path();
  Scheduler Sched(S.Model, Opts);
  std::vector<JobResult> R = Sched.run(Q);
  ASSERT_EQ(R.size(), 9u);

  EXPECT_EQ(R[0].Status, JobStatus::Ok);
  EXPECT_EQ(R[1].Status, JobStatus::Ok);
  EXPECT_EQ(R[2].Status, JobStatus::Ok);
  EXPECT_EQ(R[3].Status, JobStatus::Ok);
  EXPECT_GT(R[3].Radius, 0.0);
  EXPECT_TRUE(R[3].Certified);

  // Forced deadline expiry on Precise/Combined degrades to Fast and
  // produces exactly the Fast answer.
  for (size_t I : {4u, 5u}) {
    EXPECT_EQ(R[I].Status, JobStatus::Degraded) << "job " << I;
    EXPECT_TRUE(R[I].DeadlineHit) << "job " << I;
    EXPECT_EQ(R[I].MethodUsed, JobMethod::Fast) << "job " << I;
    EXPECT_EQ(R[I].Margin, R[0].Margin) << "job " << I;
    EXPECT_TRUE(R[I].Error.empty()) << "job " << I;
  }

  // Fast has nothing below it: a blown deadline is an error.
  EXPECT_EQ(R[6].Status, JobStatus::Error);
  EXPECT_TRUE(R[6].DeadlineHit);
  EXPECT_NE(R[6].Error.find("deadline"), std::string::npos);

  EXPECT_EQ(R[7].Status, JobStatus::Error);
  EXPECT_NE(R[7].Error.find("out of range"), std::string::npos);

  // Failures carry their taxonomy code, and the store line spells it out
  // as the machine-readable error_code field.
  EXPECT_EQ(R[6].Code, support::ErrorCode::DeadlineExceeded);
  EXPECT_EQ(R[7].Code, support::ErrorCode::JobInvalid);
  EXPECT_EQ(R[0].Code, support::ErrorCode::Ok);
  EXPECT_NE(Scheduler::resultJsonLine(R[6]).find(
                "\"error_code\":\"deadline_exceeded\""),
            std::string::npos);
  EXPECT_NE(Scheduler::resultJsonLine(R[7]).find(
                "\"error_code\":\"job_invalid\""),
            std::string::npos);
  EXPECT_EQ(Scheduler::resultJsonLine(R[0]).find("error_code"),
            std::string::npos);

  EXPECT_EQ(R[8].Status, JobStatus::Ok);
  EXPECT_EQ(R[8].MethodUsed, JobMethod::CrownBaF);

  // Every job (including errors) landed in the store as valid JSON.
  auto Keys = Scheduler::completedKeys(Store.path());
  EXPECT_EQ(Keys.size(), 9u);
  std::ifstream In(Store.path());
  std::string Line;
  size_t Lines = 0;
  while (std::getline(In, Line)) {
    support::JsonValue Doc;
    ASSERT_TRUE(support::parseJson(Line, Doc)) << Line;
    ASSERT_NE(Doc.find("key"), nullptr);
    ASSERT_NE(Doc.find("status"), nullptr);
    ++Lines;
  }
  EXPECT_EQ(Lines, 9u);
}

TEST(Scheduler, ResumeSkipsCompletedJobs) {
  TinySetup S;
  TempFile Store("scheduler_test_resume.jsonl");

  JobQueue Q;
  Q.push(S.job(JobMethod::Fast, 0.02));
  Q.push(S.job(JobMethod::Fast, 0.05));
  Q.push(S.job(JobMethod::Precise, 0.05));

  SchedulerOptions Opts;
  Opts.JsonlPath = Store.path();
  Opts.Resume = true;
  Scheduler Sched(S.Model, Opts);

  // First run: nothing to skip.
  std::vector<JobResult> First = Sched.run(Q);
  for (const JobResult &R : First)
    EXPECT_EQ(R.Status, JobStatus::Ok);

  // Second run with one extra job: the three completed keys are skipped,
  // only the new job executes.
  Q.push(S.job(JobMethod::Combined, 0.05));
  std::vector<JobResult> Second = Sched.run(Q);
  ASSERT_EQ(Second.size(), 4u);
  EXPECT_EQ(Second[0].Status, JobStatus::Skipped);
  EXPECT_EQ(Second[1].Status, JobStatus::Skipped);
  EXPECT_EQ(Second[2].Status, JobStatus::Skipped);
  EXPECT_EQ(Second[3].Status, JobStatus::Ok);
  EXPECT_EQ(Scheduler::completedKeys(Store.path()).size(), 4u);

  // A changed deadline must not change the key (resume under new latency
  // constraints still skips completed work).
  JobSpec A = S.job(JobMethod::Fast, 0.02);
  JobSpec B = A;
  B.DeadlineMs = 1234;
  EXPECT_EQ(Scheduler::jobKey(A), Scheduler::jobKey(B));
  // ...but a different query gets a different key, and an explicit Id
  // wins outright.
  EXPECT_NE(Scheduler::jobKey(A),
            Scheduler::jobKey(S.job(JobMethod::Fast, 0.05)));
  B.Id = "my-job";
  EXPECT_EQ(Scheduler::jobKey(B), "my-job");
}

TEST(Scheduler, MarginsBitIdenticalToSerialAcrossThreadCounts) {
  TinySetup S;

  JobQueue Q;
  Q.push(S.job(JobMethod::Fast));
  Q.push(S.job(JobMethod::Precise));
  Q.push(S.job(JobMethod::Combined));
  Q.push(S.job(JobMethod::Fast, 0.01));

  std::vector<double> Serial;
  for (const JobSpec &J : Q.specs())
    Serial.push_back(serialMargin(S, J));

  Scheduler Sched(S.Model);
  for (size_t Threads : {1u, 2u, 8u}) {
    ScopedThreads T(Threads);
    std::vector<JobResult> R = Sched.run(Q);
    ASSERT_EQ(R.size(), Q.size());
    for (size_t I = 0; I < R.size(); ++I) {
      EXPECT_EQ(R[I].Status, JobStatus::Ok);
      EXPECT_EQ(R[I].Margin, Serial[I])
          << "margin differs from serial at " << Threads << " threads (job "
          << I << ")";
    }
  }
}

TEST(Scheduler, JobQueueFromJson) {
  TinySetup S;
  const char *Doc = R"({"jobs":[
    {"id":"a","seed":7,"word":0,"norm":"l2","eps":0.05,"method":"precise",
     "deadline_ms":500,"budget":128},
    {"tokens":[1,2,3],"label":1,"norm":"linf","search":true,"eps":0.1},
    {"seed":9,"method":"crown-baf"}
  ]})";
  support::JsonValue V;
  ASSERT_TRUE(support::parseJson(Doc, V));
  JobQueue Q;
  std::string Err;
  ASSERT_TRUE(JobQueue::fromJson(V, &S.Corpus, Q, &Err)) << Err;
  ASSERT_EQ(Q.size(), 3u);
  EXPECT_EQ(Q.spec(0).Id, "a");
  EXPECT_EQ(Q.spec(0).Method, JobMethod::Precise);
  EXPECT_EQ(Q.spec(0).DeadlineMs, 500);
  EXPECT_EQ(Q.spec(0).NoiseReductionBudget, 128u);
  EXPECT_FALSE(Q.spec(0).Tokens.empty());
  EXPECT_EQ(Q.spec(1).Tokens.size(), 3u);
  EXPECT_EQ(Q.spec(1).TrueClass, 1u);
  EXPECT_TRUE(Q.spec(1).SearchRadius);
  EXPECT_EQ(Q.spec(1).P, Matrix::InfNorm);
  EXPECT_EQ(Q.spec(2).Method, JobMethod::CrownBaF);

  // Malformed documents are rejected with a located error.
  auto Rejects = [&](const char *Text) {
    support::JsonValue Bad;
    ASSERT_TRUE(support::parseJson(Text, Bad));
    JobQueue Dead;
    std::string E;
    EXPECT_FALSE(JobQueue::fromJson(Bad, &S.Corpus, Dead, &E)) << Text;
    EXPECT_FALSE(E.empty());
  };
  Rejects(R"({"nope":[]})");
  Rejects(R"({"jobs":[{"tokens":[1,2]}]})");            // missing label
  Rejects(R"({"jobs":[{"seed":1,"norm":"l7"}]})");      // bad norm
  Rejects(R"({"jobs":[{"seed":1,"method":"magic"}]})"); // bad method
  Rejects(R"({"jobs":[{"seed":1,"eps":-1}]})");         // bad eps
}

//===----------------------------------------------------------------------===//
// Crash-safe store recovery
//===----------------------------------------------------------------------===//

namespace {

std::string readFileBytes(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(In)),
                     std::istreambuf_iterator<char>());
}

void writeFileBytes(const std::string &Path, const std::string &Bytes) {
  std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
  Out.write(Bytes.data(), static_cast<std::streamsize>(Bytes.size()));
}

} // namespace

TEST(Scheduler, RecoverStoreTruncatesTornTail) {
  TempFile Store("scheduler_test_recover.jsonl");
  const std::string Intact = "{\"key\":\"a\",\"status\":\"ok\"}\n"
                             "not json but terminated: tolerated\n"
                             "{\"key\":\"b\",\"status\":\"ok\"}\n";
  writeFileBytes(Store.path(), Intact + "{\"key\":\"c\",\"stat");
  auto Keys = Scheduler::recoverStore(Store.path());
  EXPECT_EQ(Keys.count("a"), 1u);
  EXPECT_EQ(Keys.count("b"), 1u);
  EXPECT_EQ(Keys.count("c"), 0u);
  // The torn record is physically gone, so a later append starts a clean
  // line; interior junk stays (it is framed, just unparseable).
  EXPECT_EQ(readFileBytes(Store.path()), Intact);
  // Recovery of an already-clean store is a no-op.
  auto Again = Scheduler::recoverStore(Store.path());
  EXPECT_EQ(Again, Keys);
  EXPECT_EQ(readFileBytes(Store.path()), Intact);
}

TEST(Scheduler, RecoverStoreDropsUnparseableFinalLine) {
  TempFile Store("scheduler_test_recover2.jsonl");
  // A final line that is newline-terminated but not JSON is also the
  // footprint of a torn write (the crash landed inside the payload after
  // a buffered newline); it must re-run, not be silently kept.
  writeFileBytes(Store.path(),
                 "{\"key\":\"a\"}\n{\"key\":\"b\",\"trunc\n");
  auto Keys = Scheduler::recoverStore(Store.path());
  EXPECT_EQ(Keys.count("a"), 1u);
  EXPECT_EQ(Keys.size(), 1u);
  EXPECT_EQ(readFileBytes(Store.path()), "{\"key\":\"a\"}\n");
}

TEST(Scheduler, RecoverStoreHandlesMissingFile) {
  EXPECT_TRUE(
      Scheduler::recoverStore("scheduler_test_no_such_store.jsonl").empty());
}

TEST(Scheduler, ResumeReRunsTornTrailingJob) {
  TinySetup S;
  TempFile Store("scheduler_test_torn.jsonl");
  // One thread keeps the store's record order equal to queue order, so
  // the torn tail deterministically belongs to job "c".
  ScopedThreads T(1);

  JobQueue Q;
  JobSpec A = S.job(JobMethod::Fast, 0.02);
  A.Id = "a";
  JobSpec B = S.job(JobMethod::Fast, 0.05);
  B.Id = "b";
  JobSpec C = S.job(JobMethod::Precise, 0.05);
  C.Id = "c";
  Q.push(A);
  Q.push(B);
  Q.push(C);

  SchedulerOptions Opts;
  Opts.JsonlPath = Store.path();
  Opts.Resume = true;
  Scheduler Sched(S.Model, Opts);
  std::vector<JobResult> First = Sched.run(Q);
  for (const JobResult &R : First)
    EXPECT_EQ(R.Status, JobStatus::Ok);

  // Simulate a crash mid-append: chop the final record in half.
  std::string Contents = readFileBytes(Store.path());
  ASSERT_GT(Contents.size(), 10u);
  writeFileBytes(Store.path(), Contents.substr(0, Contents.size() - 10));

  // Resume truncates the torn tail and re-runs only job "c".
  std::vector<JobResult> Second = Sched.run(Q);
  ASSERT_EQ(Second.size(), 3u);
  EXPECT_EQ(Second[0].Status, JobStatus::Skipped);
  EXPECT_EQ(Second[1].Status, JobStatus::Skipped);
  EXPECT_EQ(Second[2].Status, JobStatus::Ok);
  EXPECT_EQ(Second[2].Margin, First[2].Margin);

  // The repaired store is fully parseable again with all three keys.
  auto Keys = Scheduler::completedKeys(Store.path());
  EXPECT_EQ(Keys.size(), 3u);
  EXPECT_EQ(Keys.count("c"), 1u);
  std::ifstream In(Store.path());
  std::string Line;
  while (std::getline(In, Line)) {
    support::JsonValue Doc;
    EXPECT_TRUE(support::parseJson(Line, Doc)) << Line;
  }
}

TEST(Scheduler, WarmStartSeedsLaterBatchesAndKeepsKeysStable) {
  TinySetup S;
  JobSpec Search = S.job(JobMethod::Fast);
  Search.SearchRadius = true;
  Search.Search.InitRadius = 0.05;
  Search.Search.BisectSteps = 3;
  Search.Search.MaxRadius = 8.0;
  JobQueue Q;
  Q.push(Search);

  Scheduler Sched(S.Model);
  EXPECT_TRUE(Sched.warmStartHints().empty());
  std::vector<JobResult> First = Sched.run(Q);
  ASSERT_EQ(First.size(), 1u);
  ASSERT_EQ(First[0].Status, JobStatus::Ok);
  ASSERT_GT(First[0].Radius, 0.0);

  // The certified radius is recorded for (method, norm).
  auto Hints = Sched.warmStartHints();
  auto It = Hints.find({JobMethod::Fast, 2.0});
  ASSERT_NE(It, Hints.end());
  EXPECT_EQ(It->second, First[0].Radius);

  // A warm second batch probes the hint first (fewer probes than cold),
  // still certifies, and derives the exact same store key -- the hint is
  // not part of the digest.
  double ColdProbes =
      support::Metrics::global().counterValue("verify.radius_search.probes");
  std::vector<JobResult> Second = Sched.run(Q);
  ASSERT_EQ(Second.size(), 1u);
  EXPECT_EQ(Second[0].Status, JobStatus::Ok);
  EXPECT_GT(Second[0].Radius, 0.0);
  EXPECT_EQ(Second[0].Key, First[0].Key);
  double WarmProbes =
      support::Metrics::global().counterValue("verify.radius_search.probes") -
      ColdProbes;
  EXPECT_GT(WarmProbes, 0.0);
  EXPECT_GT(
      support::Metrics::global().counterValue("sched.warm_start_hints"), 0.0);
}

TEST(Scheduler, WarmStartedBatchBitIdenticalAcrossThreadCounts) {
  TinySetup S;
  JobQueue Q;
  for (double Init : {0.05, 0.02, 0.08}) {
    JobSpec Search = S.job(JobMethod::Fast);
    Search.SearchRadius = true;
    Search.Search.InitRadius = Init;
    Search.Search.BisectSteps = 3;
    Search.Search.MaxRadius = 8.0;
    Q.push(Search);
  }

  // Warm each scheduler identically, then run the batch again under
  // different thread counts: the hint snapshot is taken at run() start,
  // so the searched radii must agree bit-for-bit.
  std::vector<std::vector<double>> PerThreadRadii;
  for (size_t Threads : {1u, 2u, 8u}) {
    ScopedThreads T(Threads);
    Scheduler Sched(S.Model);
    Sched.run(Q); // cold batch populates the hints
    std::vector<JobResult> R = Sched.run(Q);
    std::vector<double> Radii;
    for (const JobResult &J : R) {
      EXPECT_EQ(J.Status, JobStatus::Ok);
      Radii.push_back(J.Radius);
    }
    PerThreadRadii.push_back(std::move(Radii));
  }
  for (size_t I = 1; I < PerThreadRadii.size(); ++I)
    EXPECT_EQ(PerThreadRadii[0], PerThreadRadii[I]);
}

TEST(Scheduler, FsyncedStoreIsWellFormed) {
  TinySetup S;
  TempFile Store("scheduler_test_fsync.jsonl");
  SchedulerOptions Opts;
  Opts.JsonlPath = Store.path();
  Opts.Fsync = true;
  JobQueue Q;
  Q.push(S.job(JobMethod::Fast));
  std::vector<JobResult> R = Scheduler(S.Model, Opts).run(Q);
  ASSERT_EQ(R.size(), 1u);
  EXPECT_EQ(R[0].Status, JobStatus::Ok);
  EXPECT_EQ(Scheduler::completedKeys(Store.path()).size(), 1u);
}

} // namespace
