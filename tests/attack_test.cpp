//===- tests/attack_test.cpp ----------------------------------*- C++ -*-===//
//
// Tests for the PGD attack and synonym enumeration, including the
// attack-vs-certificate consistency checks (a certificate and a
// counterexample can never coexist).
//
//===----------------------------------------------------------------------===//

#include "attack/Enumeration.h"
#include "attack/Pgd.h"

#include "nn/Train.h"
#include "verify/DeepT.h"
#include "verify/FeedForwardVerifier.h"
#include "verify/RadiusSearch.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace deept;
using namespace deept::attack;
using tensor::Matrix;
using zono::Zonotope;

namespace {

struct FFFixture {
  nn::FeedForwardNet Net;
  std::vector<data::ImageExample> Test;

  FFFixture() {
    support::Rng Rng(600);
    Net = nn::FeedForwardNet::init({64, 10, 50, 10, 2}, Rng);
    support::Rng DataRng(601);
    auto Train = data::makeStrokeImages(256, DataRng);
    Test = data::makeStrokeImages(32, DataRng);
    nn::TrainOptions Opts;
    Opts.Steps = 150;
    Opts.BatchSize = 8;
    nn::trainFeedForward(Net, Train, Opts);
  }
};

const FFFixture &ffFixture() {
  static FFFixture F;
  return F;
}

} // namespace

TEST(ProjectLpBall, RespectsEachNorm) {
  support::Rng Rng(1);
  for (double P : {1.0, 2.0, Matrix::InfNorm}) {
    for (int Trial = 0; Trial < 20; ++Trial) {
      Matrix D = Matrix::randn(1, 8, Rng, 2.0);
      Matrix Orig = D;
      projectLpBall(D, P, 0.5);
      EXPECT_LE(D.lpNorm(P == Matrix::InfNorm ? Matrix::InfNorm : P),
                0.5 + 1e-9);
      // Points already inside are untouched.
      Matrix Small = Orig * (0.4 / std::max(Orig.lpNorm(
                                P == Matrix::InfNorm ? Matrix::InfNorm : P),
                                            1e-9));
      Matrix SmallCopy = Small;
      projectLpBall(Small, P, 0.5);
      EXPECT_TRUE(tensor::allClose(Small, SmallCopy, 1e-12));
    }
  }
}

TEST(ProjectLpBall, L1ProjectionIsClosestPoint) {
  // Spot-check the Duchi projection: projecting (1, 0.5) onto the l1 ball
  // of radius 1 gives (0.75, 0.25).
  Matrix D = Matrix::fromRows({{1.0, 0.5}});
  projectLpBall(D, 1.0, 1.0);
  EXPECT_NEAR(D.at(0, 0), 0.75, 1e-9);
  EXPECT_NEAR(D.at(0, 1), 0.25, 1e-9);
}

TEST(PgdFF, FindsAdversarialAtLargeRadius) {
  const FFFixture &F = ffFixture();
  int Found = 0, Tried = 0;
  for (const auto &Ex : F.Test) {
    if (F.Net.classify(Ex.Pixels) != Ex.Label)
      continue;
    if (++Tried > 5)
      break;
    if (attackFeedForwardLpBall(F.Net, Ex.Pixels, 2.0, 50.0, Ex.Label))
      ++Found;
  }
  EXPECT_GT(Found, 0) << "PGD should break the net at huge radii";
}

TEST(PgdFF, NeverBreaksInsideCertifiedRegion) {
  // The fundamental consistency check between the verifier and the
  // attack: no adversarial example exists within a certified radius.
  const FFFixture &F = ffFixture();
  int Checked = 0;
  for (const auto &Ex : F.Test) {
    if (F.Net.classify(Ex.Pixels) != Ex.Label)
      continue;
    if (++Checked > 4)
      break;
    double Certified = verify::certifiedRadius([&](double R) {
      return verify::certifyFeedForwardLpBall(F.Net, Ex.Pixels, 2.0, R,
                                              Ex.Label);
    });
    if (Certified <= 0)
      continue;
    EXPECT_FALSE(attackFeedForwardLpBall(F.Net, Ex.Pixels, 2.0,
                                         0.95 * Certified, Ex.Label))
        << "adversarial example found inside a certified region";
  }
  EXPECT_GT(Checked, 0);
}

TEST(PgdFF, AttackRadiusUpperBoundsCertifiedRadius) {
  // GeoCert-substitute sanity: the attack radius (upper bound on the
  // exact robustness radius) dominates the certified radius (lower
  // bound); the gap is what Table 10 reports.
  const FFFixture &F = ffFixture();
  int Checked = 0;
  for (const auto &Ex : F.Test) {
    if (F.Net.classify(Ex.Pixels) != Ex.Label)
      continue;
    if (++Checked > 3)
      break;
    double Certified = verify::certifiedRadius([&](double R) {
      return verify::certifyFeedForwardLpBall(F.Net, Ex.Pixels, 2.0, R,
                                              Ex.Label);
    });
    double AttackR =
        minimalAdversarialRadiusFF(F.Net, Ex.Pixels, 2.0, Ex.Label);
    EXPECT_GE(AttackR, Certified - 1e-9);
  }
}

TEST(Enumeration, CountsCombinations) {
  data::SyntheticCorpus Corpus(data::CorpusConfig::sstLike(16));
  data::Sentence S;
  S.Tokens = {0, 1, 2};
  size_t Expected = 1;
  for (size_t T : S.Tokens)
    Expected *= 1 + Corpus.synonymsOf(T).size();
  EXPECT_EQ(countSynonymCombinations(Corpus, S), Expected);
  // The cap saturates rather than overflowing.
  data::Sentence Long;
  for (int I = 0; I < 64; ++I)
    Long.Tokens.push_back(I % Corpus.vocabSize());
  EXPECT_EQ(countSynonymCombinations(Corpus, Long, 1000), 1000u);
}

TEST(Enumeration, FindsPlantedCounterexample) {
  // On an untrained model, some synonym combination almost surely flips
  // the (arbitrary) decision; enumeration must report non-robust when we
  // pick the label the model disagrees with on some combination.
  data::SyntheticCorpus Corpus(data::CorpusConfig::sstLike(16));
  support::Rng Rng(700);
  nn::TransformerConfig C;
  C.MaxLen = 12;
  C.EmbedDim = 16;
  C.NumHeads = 2;
  C.HiddenDim = 16;
  C.NumLayers = 1;
  nn::TransformerModel M =
      nn::TransformerModel::init(C, Corpus.embeddings(), Rng);
  support::Rng DataRng(701);
  data::Sentence S = Corpus.sampleSentence(DataRng);
  size_t Pred = M.classify(S.Tokens);
  auto RobustRes = enumerateSynonymAttack(M, Corpus, S, Pred, 1u << 14);
  auto BrokenRes = enumerateSynonymAttack(M, Corpus, S, 1 - Pred, 1u << 14);
  // Classifying against the model's own prediction fails immediately.
  EXPECT_FALSE(BrokenRes.Robust);
  EXPECT_EQ(BrokenRes.Evaluated, 1u);
  (void)RobustRes; // robustness of the prediction depends on the weights
}

TEST(Enumeration, EvaluatedNeverExceedsCap) {
  data::SyntheticCorpus Corpus(data::CorpusConfig::sstLike(16));
  support::Rng Rng(702);
  nn::TransformerConfig C;
  C.MaxLen = 12;
  C.EmbedDim = 16;
  C.NumHeads = 2;
  C.HiddenDim = 16;
  C.NumLayers = 1;
  nn::TransformerModel M =
      nn::TransformerModel::init(C, Corpus.embeddings(), Rng);
  support::Rng DataRng(703);
  data::Sentence S = Corpus.sampleSentence(DataRng);
  size_t Pred = M.classify(S.Tokens);
  auto Res = enumerateSynonymAttack(M, Corpus, S, Pred, 64);
  EXPECT_LE(Res.Evaluated, 64u);
}
