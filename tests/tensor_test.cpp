//===- tests/tensor_test.cpp ----------------------------------*- C++ -*-===//

#include "tensor/Matrix.h"

#include "support/Rng.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace deept;
using namespace deept::tensor;

TEST(Matrix, ConstructionAndAccess) {
  Matrix M(2, 3, 1.5);
  EXPECT_EQ(M.rows(), 2u);
  EXPECT_EQ(M.cols(), 3u);
  EXPECT_DOUBLE_EQ(M.at(1, 2), 1.5);
  M.at(0, 1) = -2.0;
  EXPECT_DOUBLE_EQ(M.flat(1), -2.0);
}

TEST(Matrix, FromRowsAndIdentity) {
  Matrix M = Matrix::fromRows({{1, 2}, {3, 4}});
  EXPECT_DOUBLE_EQ(M.at(1, 0), 3.0);
  Matrix I = Matrix::identity(3);
  EXPECT_DOUBLE_EQ(I.at(2, 2), 1.0);
  EXPECT_DOUBLE_EQ(I.at(0, 2), 0.0);
}

TEST(Matrix, MatmulMatchesHand) {
  Matrix A = Matrix::fromRows({{1, 2}, {3, 4}});
  Matrix B = Matrix::fromRows({{5, 6}, {7, 8}});
  Matrix C = matmul(A, B);
  EXPECT_DOUBLE_EQ(C.at(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(C.at(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(C.at(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(C.at(1, 1), 50.0);
}

TEST(Matrix, MatmulTransposedVariantsAgree) {
  support::Rng Rng(11);
  Matrix A = Matrix::randn(4, 6, Rng);
  Matrix B = Matrix::randn(5, 6, Rng);
  Matrix C1 = matmulTransposedB(A, B);
  Matrix C2 = matmul(A, B.transposed());
  EXPECT_TRUE(allClose(C1, C2, 1e-12));

  Matrix D = Matrix::randn(6, 4, Rng);
  Matrix E = Matrix::randn(6, 5, Rng);
  Matrix F1 = matmulTransposedA(D, E);
  Matrix F2 = matmul(D.transposed(), E);
  EXPECT_TRUE(allClose(F1, F2, 1e-12));
}

TEST(Matrix, TransposeInvolution) {
  support::Rng Rng(3);
  Matrix A = Matrix::randn(3, 7, Rng);
  EXPECT_TRUE(allClose(A.transposed().transposed(), A, 0.0));
}

TEST(Matrix, SlicesAndBlocks) {
  Matrix M = Matrix::fromRows({{1, 2, 3}, {4, 5, 6}, {7, 8, 9}});
  Matrix R = M.rowSlice(1, 3);
  EXPECT_EQ(R.rows(), 2u);
  EXPECT_DOUBLE_EQ(R.at(0, 0), 4.0);
  Matrix C = M.colSlice(1, 2);
  EXPECT_EQ(C.cols(), 1u);
  EXPECT_DOUBLE_EQ(C.at(2, 0), 8.0);
  Matrix Z(3, 3);
  Z.setBlock(1, 1, Matrix::fromRows({{9, 9}, {9, 9}}));
  EXPECT_DOUBLE_EQ(Z.at(1, 1), 9.0);
  EXPECT_DOUBLE_EQ(Z.at(0, 0), 0.0);
}

TEST(Matrix, AppendRows) {
  Matrix M(0, 0);
  M.appendRows(Matrix::fromRows({{1, 2}}));
  M.appendRows(Matrix::fromRows({{3, 4}, {5, 6}}));
  EXPECT_EQ(M.rows(), 3u);
  EXPECT_DOUBLE_EQ(M.at(2, 1), 6.0);
  M.appendZeroRows(2);
  EXPECT_EQ(M.rows(), 5u);
  EXPECT_DOUBLE_EQ(M.at(4, 0), 0.0);
}

TEST(Matrix, NormsMatchDefinitions) {
  Matrix V = Matrix::rowVector({3, -4});
  EXPECT_DOUBLE_EQ(V.lpNorm(1.0), 7.0);
  EXPECT_DOUBLE_EQ(V.lpNorm(2.0), 5.0);
  EXPECT_DOUBLE_EQ(V.lpNorm(Matrix::InfNorm), 4.0);
}

TEST(Matrix, RowLpNorms) {
  Matrix M = Matrix::fromRows({{3, -4}, {1, 1}});
  Matrix N2 = M.rowLpNorms(2.0);
  EXPECT_DOUBLE_EQ(N2.at(0, 0), 5.0);
  EXPECT_NEAR(N2.at(1, 0), std::sqrt(2.0), 1e-12);
  Matrix NInf = M.rowLpNorms(Matrix::InfNorm);
  EXPECT_DOUBLE_EQ(NInf.at(0, 0), 4.0);
}

TEST(Matrix, RowMeansAndArgmax) {
  Matrix M = Matrix::fromRows({{1, 3}, {-2, 4}});
  Matrix Mu = M.rowMeans();
  EXPECT_DOUBLE_EQ(Mu.at(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(Mu.at(1, 0), 1.0);
  EXPECT_EQ(M.argmax(), 3u);
}

TEST(Matrix, RowSoftmaxIsDistribution) {
  support::Rng Rng(5);
  Matrix M = Matrix::randn(4, 6, Rng, 3.0);
  Matrix S = rowSoftmax(M);
  for (size_t R = 0; R < S.rows(); ++R) {
    double Sum = 0.0;
    for (size_t C = 0; C < S.cols(); ++C) {
      EXPECT_GT(S.at(R, C), 0.0);
      Sum += S.at(R, C);
    }
    EXPECT_NEAR(Sum, 1.0, 1e-12);
  }
}

TEST(Matrix, RowSoftmaxStableForLargeInputs) {
  Matrix M = Matrix::fromRows({{1000.0, 1001.0}});
  Matrix S = rowSoftmax(M);
  EXPECT_NEAR(S.at(0, 0) + S.at(0, 1), 1.0, 1e-12);
  EXPECT_GT(S.at(0, 1), S.at(0, 0));
}

TEST(Matrix, DualExponentPairs) {
  EXPECT_DOUBLE_EQ(dualExponent(2.0), 2.0);
  EXPECT_DOUBLE_EQ(dualExponent(Matrix::InfNorm), 1.0);
  EXPECT_DOUBLE_EQ(dualExponent(1.0), Matrix::InfNorm);
  EXPECT_NEAR(dualExponent(4.0), 4.0 / 3.0, 1e-12);
}

TEST(Matrix, AddRowBroadcast) {
  Matrix M = Matrix::fromRows({{1, 2}, {3, 4}});
  Matrix B = Matrix::rowVector({10, 20});
  Matrix R = addRowBroadcast(M, B);
  EXPECT_DOUBLE_EQ(R.at(0, 0), 11.0);
  EXPECT_DOUBLE_EQ(R.at(1, 1), 24.0);
}

TEST(Matrix, ApplyAndMap) {
  Matrix M = Matrix::fromRows({{-1, 2}});
  Matrix R = M.map([](double X) { return X * X; });
  EXPECT_DOUBLE_EQ(R.at(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(R.at(0, 1), 4.0);
  EXPECT_DOUBLE_EQ(M.at(0, 0), -1.0); // map is non-destructive
}

TEST(Matrix, HadamardAndScaledAdd) {
  Matrix A = Matrix::fromRows({{1, 2}});
  Matrix B = Matrix::fromRows({{3, 4}});
  EXPECT_DOUBLE_EQ(hadamard(A, B).at(0, 1), 8.0);
  Matrix C = A;
  C.addScaled(B, 2.0);
  EXPECT_DOUBLE_EQ(C.at(0, 0), 7.0);
}

TEST(Matrix, ReshapePreservesOrder) {
  Matrix M = Matrix::fromRows({{1, 2, 3, 4}});
  Matrix R = M.reshaped(2, 2);
  EXPECT_DOUBLE_EQ(R.at(1, 0), 3.0);
}
