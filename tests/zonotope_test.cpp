//===- tests/zonotope_test.cpp --------------------------------*- C++ -*-===//
//
// Soundness and precision tests for the Multi-norm Zonotope domain.
//
//===----------------------------------------------------------------------===//

#include "zono/DotProduct.h"
#include "zono/Elementwise.h"
#include "zono/Reduction.h"
#include "zono/Refinement.h"
#include "zono/Softmax.h"
#include "zono/Zonotope.h"

#include "TestHelpers.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>

using namespace deept;
using namespace deept::zono;
using namespace deept::testhelp;
using tensor::Matrix;

namespace {

// The three norms the paper certifies against.
const double Norms[] = {1.0, 2.0, Matrix::InfNorm};

std::string normName(double P) {
  if (P == 1.0)
    return "l1";
  if (P == 2.0)
    return "l2";
  return "linf";
}

class NormParamTest : public ::testing::TestWithParam<double> {};

} // namespace

//===----------------------------------------------------------------------===//
// Construction and bounds (Theorem 1)
//===----------------------------------------------------------------------===//

TEST_P(NormParamTest, LpBallBoundsMatchRadius) {
  double P = GetParam();
  support::Rng Rng(1);
  Matrix Center = Matrix::randn(3, 4, Rng);
  Zonotope Z = Zonotope::lpBallOnRow(Center, 1, P, 0.5);
  Matrix Lo, Hi;
  Z.bounds(Lo, Hi);
  for (size_t C = 0; C < 4; ++C) {
    // Unperturbed rows are exact.
    EXPECT_DOUBLE_EQ(Lo.at(0, C), Center.at(0, C));
    EXPECT_DOUBLE_EQ(Hi.at(2, C), Center.at(2, C));
    // Each coordinate of the perturbed row can move by the full radius
    // (the lp ball touches every axis).
    EXPECT_NEAR(Hi.at(1, C) - Center.at(1, C), 0.5, 1e-12);
    EXPECT_NEAR(Center.at(1, C) - Lo.at(1, C), 0.5, 1e-12);
  }
}

TEST_P(NormParamTest, SampledPointsRespectBounds) {
  double P = GetParam();
  support::Rng Rng(2);
  Zonotope Z = randomZonotope(2, 3, P, 4, 5, Rng);
  Matrix Lo, Hi;
  Z.bounds(Lo, Hi);
  for (int I = 0; I < 200; ++I) {
    Matrix X = Z.sample(Rng, I % 2 == 0);
    EXPECT_TRUE(withinBounds(X, Lo, Hi));
  }
}

TEST(Zonotope, BoundsAreTightForL2) {
  // One variable x = 0 + [1, 1] . phi with ||phi||_2 <= 1 has bounds
  // +- sqrt(2) (dual norm, Lemma 1), not +-2 (which interval analysis on
  // the coefficients would give).
  Zonotope Z = Zonotope::constant(Matrix(1, 1, 0.0), 2.0);
  Matrix Phi(2, 1);
  Phi.at(0, 0) = 1.0;
  Phi.at(1, 0) = 1.0;
  Z.installCoeffs(std::move(Phi), Matrix(0, 1));
  Matrix Lo, Hi;
  Z.bounds(Lo, Hi);
  EXPECT_NEAR(Hi.at(0, 0), std::sqrt(2.0), 1e-12);
  EXPECT_NEAR(Lo.at(0, 0), -std::sqrt(2.0), 1e-12);
}

TEST(Zonotope, BoxConstruction) {
  Matrix Lo0 = Matrix::fromRows({{-1, 2}});
  Matrix Hi0 = Matrix::fromRows({{1, 2}});
  Zonotope Z = Zonotope::box(Lo0, Hi0);
  EXPECT_EQ(Z.numEps(), 1u); // degenerate dimension gets no symbol
  Matrix Lo, Hi;
  Z.bounds(Lo, Hi);
  EXPECT_TRUE(tensor::allClose(Lo, Lo0, 1e-12));
  EXPECT_TRUE(tensor::allClose(Hi, Hi0, 1e-12));
}

//===----------------------------------------------------------------------===//
// Affine transformers (Theorem 2: exactness)
//===----------------------------------------------------------------------===//

TEST_P(NormParamTest, AffineOpsAreExactOnSamples) {
  double P = GetParam();
  support::Rng Rng(3);
  Zonotope Z = randomZonotope(3, 4, P, 3, 6, Rng);
  Matrix W = Matrix::randn(4, 2, Rng);
  Matrix WL = Matrix::randn(5, 3, Rng);
  Matrix Gamma = Matrix::randn(1, 4, Rng);
  Matrix Bias = Matrix::randn(1, 4, Rng);

  Zonotope ZW = Z.matmulRightConst(W);
  Zonotope ZL = Z.matmulLeftConst(WL);
  Zonotope ZM = Z.subRowMean();
  Zonotope ZG = Z.scaleColumns(Gamma).addRowBroadcast(Bias);
  Zonotope ZS = Z.scale(-2.5).addConst(Matrix(3, 4, 1.0));

  for (int I = 0; I < 50; ++I) {
    std::vector<double> Phi, Eps;
    Z.sampleNoise(Rng, I % 2 == 0, Phi, Eps);
    Matrix X = Z.evaluate(Phi, Eps);

    EXPECT_TRUE(
        tensor::allClose(ZW.evaluate(Phi, Eps), tensor::matmul(X, W), 1e-9));
    EXPECT_TRUE(
        tensor::allClose(ZL.evaluate(Phi, Eps), tensor::matmul(WL, X), 1e-9));

    Matrix Mean = X.rowMeans();
    Matrix XM = X;
    for (size_t R = 0; R < 3; ++R)
      for (size_t C = 0; C < 4; ++C)
        XM.at(R, C) -= Mean.at(R, 0);
    EXPECT_TRUE(tensor::allClose(ZM.evaluate(Phi, Eps), XM, 1e-9));

    Matrix XG = X;
    for (size_t R = 0; R < 3; ++R)
      for (size_t C = 0; C < 4; ++C)
        XG.at(R, C) = XG.at(R, C) * Gamma.at(0, C) + Bias.at(0, C);
    EXPECT_TRUE(tensor::allClose(ZG.evaluate(Phi, Eps), XG, 1e-9));

    EXPECT_TRUE(tensor::allClose(ZS.evaluate(Phi, Eps),
                                 X * -2.5 + Matrix(3, 4, 1.0), 1e-9));
  }
}

TEST_P(NormParamTest, AddSubSharedSymbolsCancel) {
  double P = GetParam();
  support::Rng Rng(4);
  Zonotope Z = randomZonotope(2, 2, P, 3, 4, Rng);
  Zonotope Diff = Z.sub(Z);
  Matrix Lo, Hi;
  Diff.bounds(Lo, Hi);
  // x - x must be exactly 0: shared symbols cancel.
  EXPECT_NEAR(Lo.maxAbs(), 0.0, 1e-12);
  EXPECT_NEAR(Hi.maxAbs(), 0.0, 1e-12);
}

TEST(Zonotope, ViewsPermuteCoefficientsConsistently) {
  support::Rng Rng(5);
  Zonotope Z = randomZonotope(3, 4, 2.0, 2, 3, Rng);
  Zonotope T = Z.transposedView();
  Zonotope C = Z.selectColRange(1, 3);
  Zonotope R = Z.selectRow(2);
  for (int I = 0; I < 20; ++I) {
    std::vector<double> Phi, Eps;
    Z.sampleNoise(Rng, false, Phi, Eps);
    Matrix X = Z.evaluate(Phi, Eps);
    EXPECT_TRUE(tensor::allClose(T.evaluate(Phi, Eps), X.transposed(), 1e-9));
    EXPECT_TRUE(tensor::allClose(C.evaluate(Phi, Eps), X.colSlice(1, 3), 1e-9));
    EXPECT_TRUE(tensor::allClose(R.evaluate(Phi, Eps), X.rowSlice(2, 3), 1e-9));
  }
}

TEST(Zonotope, ConcatColsRoundTrips) {
  support::Rng Rng(6);
  Zonotope Z = randomZonotope(3, 6, 2.0, 2, 4, Rng);
  Zonotope A = Z.selectColRange(0, 2);
  Zonotope B = Z.selectColRange(2, 6);
  Zonotope Back = Zonotope::concatCols({A, B});
  for (int I = 0; I < 10; ++I) {
    std::vector<double> Phi, Eps;
    Z.sampleNoise(Rng, false, Phi, Eps);
    EXPECT_TRUE(tensor::allClose(Back.evaluate(Phi, Eps),
                                 Z.evaluate(Phi, Eps), 1e-9));
  }
}

//===----------------------------------------------------------------------===//
// Elementwise transformers (Sections 4.3-4.6): soundness on samples
//===----------------------------------------------------------------------===//

namespace {

void checkElementwiseSoundness(double P,
                               Zonotope (*Apply)(const Zonotope &),
                               double (*Concrete)(double), uint64_t Seed,
                               double CenterShift = 0.0) {
  support::Rng Rng(Seed);
  for (int Trial = 0; Trial < 10; ++Trial) {
    Zonotope Z = randomZonotope(2, 3, P, 3, 4, Rng);
    if (CenterShift != 0.0)
      Z = Z.addConst(Matrix(2, 3, CenterShift));
    Zonotope Out = Apply(Z);
    for (int I = 0; I < 40; ++I) {
      std::vector<double> Phi, Eps;
      Z.sampleNoise(Rng, I % 2 == 0, Phi, Eps);
      Matrix X = Z.evaluate(Phi, Eps);
      Matrix FX = X.map([&](double V) { return Concrete(V); });
      EXPECT_TRUE(coveredAt(Out, Phi, Eps, FX));
    }
  }
}

double concreteRelu(double X) { return X > 0 ? X : 0.0; }
double concreteRecip(double X) { return 1.0 / X; }

} // namespace

TEST_P(NormParamTest, ReluTransformerSound) {
  checkElementwiseSoundness(GetParam(), [](const Zonotope &Z) {
    return applyRelu(Z);
  }, concreteRelu, 100);
}

TEST_P(NormParamTest, TanhTransformerSound) {
  checkElementwiseSoundness(GetParam(), [](const Zonotope &Z) {
    return applyTanh(Z);
  }, [](double X) { return std::tanh(X); }, 101);
}

TEST_P(NormParamTest, ExpTransformerSound) {
  checkElementwiseSoundness(GetParam(), [](const Zonotope &Z) {
    return applyExp(Z);
  }, [](double X) { return std::exp(X); }, 102);
}

TEST_P(NormParamTest, RecipTransformerSound) {
  // Shift centers so inputs are strictly positive (the softmax context).
  checkElementwiseSoundness(GetParam(), [](const Zonotope &Z) {
    return applyRecip(Z);
  }, concreteRecip, 103, /*CenterShift=*/6.0);
}

TEST_P(NormParamTest, SqrtTransformerSound) {
  checkElementwiseSoundness(GetParam(), [](const Zonotope &Z) {
    return applySqrt(Z);
  }, [](double X) { return std::sqrt(X); }, 104, /*CenterShift=*/6.0);
}

TEST(Elementwise, ReluPieceCases) {
  // Stable negative: output identically zero.
  LinearPiece P = reluPiece(-3.0, -1.0);
  EXPECT_DOUBLE_EQ(P.Lambda, 0.0);
  EXPECT_DOUBLE_EQ(P.Mu, 0.0);
  EXPECT_DOUBLE_EQ(P.BetaNew, 0.0);
  // Stable positive: identity.
  P = reluPiece(0.5, 2.0);
  EXPECT_DOUBLE_EQ(P.Lambda, 1.0);
  EXPECT_DOUBLE_EQ(P.BetaNew, 0.0);
  // Crossing: minimal-area coefficients of Eq. 2.
  P = reluPiece(-1.0, 3.0);
  EXPECT_NEAR(P.Lambda, 0.75, 1e-12);
  EXPECT_NEAR(P.Mu, 0.375, 1e-12);
  EXPECT_NEAR(P.BetaNew, 0.375, 1e-12);
}

TEST(Elementwise, ExpLowerSupportStaysPositive) {
  // The t_opt = min(t_crit, l + 1 - eps) choice guarantees a positive
  // lower support line on [l, u] (needed by the reciprocal that follows).
  for (double L : {-4.0, -1.0, 0.0, 2.0}) {
    for (double Width : {0.1, 1.0, 5.0}) {
      LinearPiece P = expPiece(L, L + Width);
      double LowerAtL = P.Lambda * L + P.Mu - P.BetaNew;
      double LowerAtU = P.Lambda * (L + Width) + P.Mu - P.BetaNew;
      EXPECT_GT(LowerAtL, 0.0);
      EXPECT_GT(LowerAtU, 0.0);
    }
  }
}

TEST(Elementwise, PiecesEnvelopeFunctionOnGrid) {
  // Dense pointwise check that each relaxation envelopes its function.
  struct Case {
    LinearPiece (*Piece)(double, double);
    double (*Fn)(double);
    double L, U;
  };
  auto TanhP = [](double L, double U) { return tanhPiece(L, U); };
  auto ExpP = [](double L, double U) { return expPiece(L, U, 0.01); };
  auto RecP = [](double L, double U) { return recipPiece(L, U, 0.01); };
  auto SqrtP = [](double L, double U) { return sqrtPiece(L, U); };
  Case Cases[] = {
      {+TanhP, [](double X) { return std::tanh(X); }, -2.0, 1.5},
      {+ExpP, [](double X) { return std::exp(X); }, -1.0, 2.0},
      {+RecP, [](double X) { return 1.0 / X; }, 0.5, 9.0},
      {+SqrtP, [](double X) { return std::sqrt(X); }, 0.25, 16.0},
  };
  for (const Case &C : Cases) {
    LinearPiece P = C.Piece(C.L, C.U);
    for (int I = 0; I <= 200; ++I) {
      double X = C.L + (C.U - C.L) * I / 200.0;
      double Y = C.Fn(X);
      double Lo = P.Lambda * X + P.Mu - P.BetaNew;
      double Hi = P.Lambda * X + P.Mu + P.BetaNew;
      EXPECT_LE(Lo, Y + 1e-9);
      EXPECT_GE(Hi, Y - 1e-9);
    }
  }
}

TEST(Elementwise, NonFiniteBoundsFallBackSoundly) {
  const double Inf = std::numeric_limits<double>::infinity();
  const double NaN = std::numeric_limits<double>::quiet_NaN();
  // relu and sqrt cannot build a finite relaxation over unbounded or NaN
  // ranges: they must return the huge-interval cover (certification over
  // such a range fails, but no NaN leaks into coefficient matrices).
  for (LinearPiece P : {reluPiece(-Inf, 1.0), reluPiece(-1.0, NaN),
                        sqrtPiece(NaN, Inf), sqrtPiece(0.0, Inf)}) {
    EXPECT_EQ(P.Lambda, 0.0);
    EXPECT_TRUE(std::isfinite(P.Mu));
    EXPECT_GE(P.BetaNew, 1e99);
  }
  // NaN bounds poison exp / recip the same way.
  for (LinearPiece P : {expPiece(NaN, 1.0), recipPiece(1.0, NaN)}) {
    EXPECT_EQ(P.Lambda, 0.0);
    EXPECT_GE(P.BetaNew, 1e99);
  }
  // Stable relu cases stay exact even with an unbounded far endpoint.
  LinearPiece Neg = reluPiece(-Inf, -1.0);
  EXPECT_EQ(Neg.Lambda, 0.0);
  EXPECT_EQ(Neg.BetaNew, 0.0);
  LinearPiece Pos = reluPiece(1.0, Inf);
  EXPECT_EQ(Pos.Lambda, 1.0);
  EXPECT_EQ(Pos.BetaNew, 0.0);
  // tanh is bounded, so even unbounded or NaN inputs admit an exact
  // finite interval inside [-1, 1].
  for (LinearPiece P : {tanhPiece(-Inf, Inf), tanhPiece(NaN, NaN),
                        tanhPiece(-Inf, 0.5), tanhPiece(NaN, 2.0)}) {
    EXPECT_EQ(P.Lambda, 0.0);
    EXPECT_TRUE(std::isfinite(P.Mu));
    EXPECT_TRUE(std::isfinite(P.BetaNew));
    EXPECT_LE(std::fabs(P.Mu) + P.BetaNew, 1.0 + 1e-12);
  }
  // The exp saturation fallback: a range deep in the clamped regime makes
  // the convex construction invert, which must yield the huge interval
  // rather than a negative radius or NaN.
  LinearPiece Sat = expPiece(-Inf, 0.0);
  EXPECT_TRUE(std::isfinite(Sat.Lambda));
  EXPECT_TRUE(std::isfinite(Sat.Mu));
  EXPECT_TRUE(std::isfinite(Sat.BetaNew));
  EXPECT_GE(Sat.BetaNew, 0.0);
}

//===----------------------------------------------------------------------===//
// Zonotope soundness validation
//===----------------------------------------------------------------------===//

TEST(Zonotope, ValidateAcceptsWellFormed) {
  support::Rng Rng(321);
  Zonotope Z = randomZonotope(3, 4, 2.0, 2, 3, Rng);
  std::string Why;
  EXPECT_TRUE(Z.validate(&Why)) << Why;
  // A zonotope fresh off the input constructor validates too.
  Matrix C = Matrix::randn(2, 5, Rng);
  EXPECT_TRUE(Zonotope::lpBallOnRow(C, 0, 2.0, 0.1).validate(&Why)) << Why;
}

TEST(Zonotope, ValidateRejectsNonFiniteEntries) {
  support::Rng Rng(322);
  const double NaN = std::numeric_limits<double>::quiet_NaN();
  const double Inf = std::numeric_limits<double>::infinity();
  {
    Zonotope Z = randomZonotope(3, 4, 2.0, 2, 3, Rng);
    Z.center().at(1, 2) = NaN;
    std::string Why;
    EXPECT_FALSE(Z.validate(&Why));
    EXPECT_NE(Why.find("center"), std::string::npos) << Why;
  }
  {
    Zonotope Z = randomZonotope(3, 4, 2.0, 2, 3, Rng);
    Z.phiCoeffs().at(0, 0) = Inf;
    std::string Why;
    EXPECT_FALSE(Z.validate(&Why));
    EXPECT_NE(Why.find("phi"), std::string::npos) << Why;
  }
  {
    Zonotope Z = randomZonotope(3, 4, 2.0, 2, 3, Rng);
    Z.epsCoeffs().at(0, 0) = NaN;
    std::string Why;
    EXPECT_FALSE(Z.validate(&Why));
    EXPECT_NE(Why.find("eps"), std::string::npos) << Why;
  }
}

TEST(Zonotope, ValidateRejectsShapeMismatch) {
  support::Rng Rng(323);
  Zonotope Z = randomZonotope(3, 4, 2.0, 2, 3, Rng);
  // A coefficient matrix whose column count disagrees with the variable
  // count is exactly the bug class validate() exists to catch.
  Z.phiCoeffs() = Matrix::randn(2, 5, Rng);
  std::string Why;
  EXPECT_FALSE(Z.validate(&Why));
  EXPECT_NE(Why.find("column"), std::string::npos) << Why;
}

//===----------------------------------------------------------------------===//
// Dot product transformers (Section 4.8)
//===----------------------------------------------------------------------===//

namespace {

void checkDotSoundness(double P, DotMethod Method, DualNormOrder Order,
                       uint64_t Seed) {
  support::Rng Rng(Seed);
  DotOptions Opts;
  Opts.Method = Method;
  Opts.Order = Order;
  for (int Trial = 0; Trial < 6; ++Trial) {
    // A and B share the symbol space: derive both from a common parent so
    // correlations between them are genuine.
    Zonotope Parent = randomZonotope(4, 6, P, 3, 5, Rng);
    Zonotope A = Parent.selectColRange(0, 3);
    Zonotope B = Parent.selectColRange(3, 6);
    Zonotope Out = dotRows(A, B, Opts);
    ASSERT_EQ(Out.rows(), 4u);
    ASSERT_EQ(Out.cols(), 4u);
    for (int I = 0; I < 40; ++I) {
      std::vector<double> Phi, Eps;
      Parent.sampleNoise(Rng, I % 2 == 0, Phi, Eps);
      Matrix XA = A.evaluate(Phi, Eps);
      Matrix XB = B.evaluate(Phi, Eps);
      Matrix Concrete = tensor::matmulTransposedB(XA, XB);
      EXPECT_TRUE(coveredAt(Out, Phi, Eps, Concrete));
    }
  }
}

} // namespace

TEST_P(NormParamTest, DotRowsFastSoundInfFirst) {
  checkDotSoundness(GetParam(), DotMethod::Fast, DualNormOrder::InfFirst,
                    200);
}

TEST_P(NormParamTest, DotRowsFastSoundLpFirst) {
  checkDotSoundness(GetParam(), DotMethod::Fast, DualNormOrder::LpFirst, 201);
}

TEST_P(NormParamTest, DotRowsPreciseSound) {
  checkDotSoundness(GetParam(), DotMethod::Precise, DualNormOrder::InfFirst,
                    202);
}

TEST(DotProduct, PreciseNeverWorseThanFastOnEpsOnly) {
  // With only eps symbols (p = inf setting), the Eq. 6 interval analysis
  // dominates the Eq. 5 cascade.
  support::Rng Rng(7);
  for (int Trial = 0; Trial < 10; ++Trial) {
    Zonotope Parent =
        randomZonotope(3, 4, Matrix::InfNorm, 0, 6, Rng);
    Zonotope A = Parent.selectColRange(0, 2);
    Zonotope B = Parent.selectColRange(2, 4);
    Zonotope Fast = dotRows(A, B, {DotMethod::Fast, DualNormOrder::InfFirst});
    Zonotope Precise =
        dotRows(A, B, {DotMethod::Precise, DualNormOrder::InfFirst});
    Matrix LF, HF, LP, HP;
    Fast.bounds(LF, HF);
    Precise.bounds(LP, HP);
    for (size_t V = 0; V < Fast.numVars(); ++V) {
      EXPECT_LE(HP.flat(V), HF.flat(V) + 1e-9);
      EXPECT_GE(LP.flat(V), LF.flat(V) - 1e-9);
    }
  }
}

TEST(DotProduct, ExactForConstantOperand) {
  // If B carries no noise the product is affine, so the transformer must
  // introduce (almost) no overapproximation.
  support::Rng Rng(8);
  Zonotope A = randomZonotope(3, 4, 2.0, 2, 3, Rng);
  Matrix BC = Matrix::randn(5, 4, Rng);
  Zonotope B = Zonotope::constant(BC, 2.0);
  Zonotope Out = dotRows(A, B);
  Zonotope Affine = A.matmulRightConst(BC.transposed());
  Matrix LoO, HiO, LoA, HiA;
  Out.bounds(LoO, HiO);
  Affine.bounds(LoA, HiA);
  EXPECT_TRUE(tensor::allClose(LoO, LoA, 1e-9));
  EXPECT_TRUE(tensor::allClose(HiO, HiA, 1e-9));
}

TEST_P(NormParamTest, MulElementwiseSound) {
  double P = GetParam();
  support::Rng Rng(9);
  for (int Trial = 0; Trial < 6; ++Trial) {
    Zonotope Parent = randomZonotope(2, 6, P, 3, 5, Rng);
    Zonotope A = Parent.selectColRange(0, 3);
    Zonotope B = Parent.selectColRange(3, 6);
    for (DotMethod M : {DotMethod::Fast, DotMethod::Precise}) {
      Zonotope Out = mulElementwise(A, B, {M, DualNormOrder::InfFirst});
      for (int I = 0; I < 30; ++I) {
        std::vector<double> Phi, Eps;
        Parent.sampleNoise(Rng, I % 2 == 0, Phi, Eps);
        Matrix Concrete =
            tensor::hadamard(A.evaluate(Phi, Eps), B.evaluate(Phi, Eps));
        EXPECT_TRUE(coveredAt(Out, Phi, Eps, Concrete));
      }
    }
  }
}

//===----------------------------------------------------------------------===//
// Softmax (Section 5.2) and its sum refinement (Section 5.3)
//===----------------------------------------------------------------------===//

TEST_P(NormParamTest, SoftmaxStableSound) {
  double P = GetParam();
  support::Rng Rng(300);
  for (int Trial = 0; Trial < 5; ++Trial) {
    Zonotope Scores = randomZonotope(3, 4, P, 2, 4, Rng);
    Zonotope Out = applySoftmax(Scores);
    for (int I = 0; I < 30; ++I) {
      std::vector<double> Phi, Eps;
      Scores.sampleNoise(Rng, I % 2 == 0, Phi, Eps);
      Matrix Concrete = tensor::rowSoftmax(Scores.evaluate(Phi, Eps));
      EXPECT_TRUE(coveredAt(Out, Phi, Eps, Concrete, 1e-6));
    }
  }
}

TEST_P(NormParamTest, SoftmaxNaiveSound) {
  double P = GetParam();
  support::Rng Rng(301);
  SoftmaxOptions Opts;
  Opts.StableRewrite = false;
  for (int Trial = 0; Trial < 5; ++Trial) {
    Zonotope Scores = randomZonotope(2, 3, P, 2, 4, Rng);
    Zonotope Out = applySoftmax(Scores, Opts);
    for (int I = 0; I < 30; ++I) {
      std::vector<double> Phi, Eps;
      Scores.sampleNoise(Rng, I % 2 == 0, Phi, Eps);
      Matrix Concrete = tensor::rowSoftmax(Scores.evaluate(Phi, Eps));
      EXPECT_TRUE(coveredAt(Out, Phi, Eps, Concrete, 1e-6));
    }
  }
}

TEST(Softmax, StableRewriteTighterThanNaive) {
  // Section 5.2's motivation: the rewrite cancels shared noise symbols and
  // skips the multiplication transformer, so its output intervals are
  // tighter on average.
  support::Rng Rng(302);
  double StableWidth = 0.0, NaiveWidth = 0.0;
  for (int Trial = 0; Trial < 10; ++Trial) {
    Zonotope Scores = randomZonotope(2, 4, 2.0, 2, 4, Rng);
    SoftmaxOptions Naive;
    Naive.StableRewrite = false;
    Matrix Lo, Hi;
    applySoftmax(Scores).bounds(Lo, Hi);
    StableWidth += (Hi - Lo).sum();
    applySoftmax(Scores, Naive).bounds(Lo, Hi);
    NaiveWidth += (Hi - Lo).sum();
  }
  EXPECT_LT(StableWidth, NaiveWidth);
}

TEST(Softmax, OutputsWithinUnitInterval) {
  // The stable rewrite guarantees softmax outputs in (0, 1] structurally.
  support::Rng Rng(303);
  Zonotope Scores = randomZonotope(3, 3, 2.0, 2, 3, Rng);
  Matrix Lo, Hi;
  applySoftmax(Scores).bounds(Lo, Hi);
  for (size_t V = 0; V < Lo.size(); ++V) {
    EXPECT_GT(Hi.flat(V), 0.0);
    EXPECT_LE(Lo.flat(V), 1.0 + 1e-9);
  }
}

TEST_P(NormParamTest, SoftmaxRefinementSoundAndTighter) {
  double P = GetParam();
  support::Rng Rng(304);
  double Refined = 0.0, Plain = 0.0;
  for (int Trial = 0; Trial < 5; ++Trial) {
    Zonotope Scores = randomZonotope(2, 4, P, 2, 4, Rng);
    Zonotope Out = applySoftmax(Scores);
    Zonotope RefinedOut = Out;
    // A co-live tensor sharing the symbol space (prefix-aligned).
    Zonotope CoLive = Scores;
    CoLive.padEpsTo(RefinedOut.numEps());
    refineSoftmaxSum(RefinedOut, {&CoLive});

    Matrix Lo, Hi;
    Out.bounds(Lo, Hi);
    Plain += (Hi - Lo).sum();
    RefinedOut.bounds(Lo, Hi);
    Refined += (Hi - Lo).sum();

    for (int I = 0; I < 40; ++I) {
      std::vector<double> Phi, Eps;
      Scores.sampleNoise(Rng, I % 2 == 0, Phi, Eps);
      Matrix X = Scores.evaluate(Phi, Eps);
      Matrix Concrete = tensor::rowSoftmax(X);
      // After refinement the shared symbols have been rewritten, so check
      // interval soundness of the refined output and the co-live tensor.
      Matrix RLo, RHi;
      RefinedOut.bounds(RLo, RHi);
      EXPECT_TRUE(withinBounds(Concrete, RLo, RHi, 1e-6));
      Matrix CLo, CHi;
      CoLive.bounds(CLo, CHi);
      EXPECT_TRUE(withinBounds(X, CLo, CHi, 1e-6));
    }
  }
  EXPECT_LE(Refined, Plain + 1e-9);
}

/// The deterministic-selection breakpoint picker must reproduce the
/// sort-based reference it replaced: sort by position, take the first
/// prefix reaching half the total weight, and when the median breakpoint
/// comes from a phi symbol fall back to the best of the nearest non-phi
/// neighbours and t = 0. Weights are powers of two so every cumulative
/// sum is exact in either summation order and the comparison is 0-ULP.
TEST(Refinement, SelectBreakpointMatchesSortReference) {
  using zono::detail::Breakpoint;
  auto ObjectiveAt = [](const std::vector<Breakpoint> &Points, double T) {
    double V = 0.0;
    for (const Breakpoint &B : Points)
      V += B.Weight * std::fabs(T - B.Pos);
    return V;
  };
  auto SortRef = [&](std::vector<Breakpoint> Points) -> double {
    if (Points.empty())
      return 0.0;
    std::sort(Points.begin(), Points.end(),
              [](const Breakpoint &A, const Breakpoint &B) {
                return A.Pos < B.Pos;
              });
    double Total = 0.0;
    for (const Breakpoint &B : Points)
      Total += B.Weight;
    double Cum = 0.0;
    size_t Median = Points.size() - 1;
    for (size_t I = 0; I < Points.size(); ++I) {
      Cum += Points[I].Weight;
      if (Cum >= 0.5 * Total) {
        Median = I;
        break;
      }
    }
    // Any breakpoint sharing the median position counts as a non-phi
    // representative; the selection variant returns that position.
    double W = Points[Median].Pos;
    for (const Breakpoint &B : Points)
      if (!B.FromPhi && B.Pos == W)
        return W;
    double Best = 0.0;
    double BestVal = ObjectiveAt(Points, 0.0);
    for (size_t I = Median;; --I) {
      if (!Points[I].FromPhi) {
        double Val = ObjectiveAt(Points, Points[I].Pos);
        if (Val < BestVal) {
          BestVal = Val;
          Best = Points[I].Pos;
        }
        break;
      }
      if (I == 0)
        break;
    }
    for (size_t I = Median + 1; I < Points.size(); ++I) {
      if (!Points[I].FromPhi) {
        double Val = ObjectiveAt(Points, Points[I].Pos);
        if (Val < BestVal) {
          BestVal = Val;
          Best = Points[I].Pos;
        }
        break;
      }
    }
    return Best;
  };

  support::Rng Rng(0x3E1EC7);
  auto Pow2Weight = [&]() {
    return std::ldexp(1.0, static_cast<int>(Rng.uniform() * 17.0) - 8);
  };
  for (int Trial = 0; Trial < 300; ++Trial) {
    // Sizes straddling the quickselect base case (16) in both directions.
    size_t N = 1 + static_cast<size_t>(Rng.uniform() * 120);
    int Mode = Trial % 3;
    std::vector<Breakpoint> Points(N);
    for (Breakpoint &B : Points) {
      double Pos = Rng.gaussian();
      if (Mode == 1) // duplicate positions exercise the tie handling
        Pos = std::round(Pos * 4.0) / 4.0;
      bool FromPhi = Mode == 2 || (Mode == 0 && Rng.uniform() < 0.5);
      if (Mode == 1)
        FromPhi = false;
      B = {Pos, Pow2Weight(), FromPhi};
    }
    double Want = SortRef(Points);
    std::vector<Breakpoint> Work = Points; // selectBreakpoint permutes
    double Got = zono::detail::selectBreakpoint(Work);
    EXPECT_EQ(Got, Want) << "trial " << Trial << " n=" << N
                         << " mode=" << Mode;
  }
}

//===----------------------------------------------------------------------===//
// Noise symbol reduction (Section 5.1)
//===----------------------------------------------------------------------===//

TEST(Reduction, PreservesPerVariableIntervals) {
  support::Rng Rng(400);
  Zonotope Z = randomZonotope(3, 4, 2.0, 2, 40, Rng);
  Matrix Lo0, Hi0;
  Z.bounds(Lo0, Hi0);
  size_t Dropped = reduceEpsSymbols(Z, 10);
  EXPECT_EQ(Dropped, 30u);
  EXPECT_LE(Z.numEps(), 10u + Z.numVars());
  Matrix Lo1, Hi1;
  Z.bounds(Lo1, Hi1);
  // DecorrelateMin_k folds dropped symbols into per-variable intervals of
  // identical width: concrete bounds are unchanged.
  EXPECT_TRUE(tensor::allClose(Lo0, Lo1, 1e-9));
  EXPECT_TRUE(tensor::allClose(Hi0, Hi1, 1e-9));
}

TEST(Reduction, NoOpBelowBudget) {
  support::Rng Rng(401);
  Zonotope Z = randomZonotope(2, 2, 2.0, 1, 5, Rng);
  EXPECT_EQ(reduceEpsSymbols(Z, 10), 0u);
  EXPECT_EQ(Z.numEps(), 5u);
}

TEST(Reduction, KeepsHighestMassSymbols) {
  // Build a zonotope where symbol 1 clearly dominates; after reduction to
  // one kept symbol, cross-variable correlation through symbol 1 must be
  // preserved (x - y still cancels partially).
  Zonotope Z = Zonotope::constant(Matrix(1, 2, 0.0), Matrix::InfNorm);
  Matrix Eps(3, 2);
  Eps.at(0, 0) = 0.01;
  Eps.at(1, 0) = 1.0;
  Eps.at(1, 1) = 1.0; // dominant, correlates both variables
  Eps.at(2, 1) = 0.02;
  Z.installCoeffs(Matrix(0, 2), std::move(Eps));
  reduceEpsSymbols(Z, 1);
  // x - y: the kept correlated symbol cancels; only the folded intervals
  // (0.01 + 0.02) remain.
  Zonotope D = Z.selectColRange(0, 1).sub(Z.selectColRange(1, 2));
  Matrix Lo, Hi;
  D.bounds(Lo, Hi);
  EXPECT_NEAR(Hi.at(0, 0), 0.03, 1e-12);
}

TEST(Reduction, SamplesStillCovered) {
  support::Rng Rng(402);
  Zonotope Z = randomZonotope(2, 3, 1.0, 3, 30, Rng);
  std::vector<Matrix> Points;
  for (int I = 0; I < 50; ++I)
    Points.push_back(Z.sample(Rng, I % 2 == 0));
  reduceEpsSymbols(Z, 5);
  Matrix Lo, Hi;
  Z.bounds(Lo, Hi);
  for (const Matrix &X : Points)
    EXPECT_TRUE(withinBounds(X, Lo, Hi));
}

INSTANTIATE_TEST_SUITE_P(Norms, NormParamTest, ::testing::ValuesIn(Norms),
                         [](const ::testing::TestParamInfo<double> &Info) {
                           return normName(Info.param);
                         });
