//===- tests/profile_test.cpp - Precision observability tests --*- C++ -*-===//
//
// Tests of the precision-observability subsystem: noise-symbol provenance
// tagging and reduction remapping (zono/Provenance.h), per-query precision
// profiles whose attribution decomposes the margin width exactly
// (verify/Profile.h), the flight-recorder ring buffer
// (support/FlightRecorder.h), and the scheduler's artifact lifecycle
// (recorder dumps on deadline expiry, profile JSONL streaming).
//
//===----------------------------------------------------------------------===//

#include "data/SyntheticCorpus.h"
#include "nn/Transformer.h"
#include "support/FlightRecorder.h"
#include "support/Json.h"
#include "support/Parallel.h"
#include "support/Rng.h"
#include "verify/DeepT.h"
#include "verify/Profile.h"
#include "verify/Scheduler.h"
#include "zono/Provenance.h"
#include "zono/Zonotope.h"

#include <gtest/gtest.h>

#include <sys/stat.h>
#include <unistd.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

using namespace deept;
using support::FlightRecorder;
using support::JsonValue;
using support::ThreadPool;
using tensor::Matrix;
using verify::JobMethod;
using verify::JobQueue;
using verify::JobResult;
using verify::JobSpec;
using verify::JobStatus;
using verify::PrecisionProfile;
using verify::Scheduler;
using verify::SchedulerOptions;
using zono::ProvenanceGroup;
using zono::ProvenanceSession;
using zono::SymbolProvenance;

namespace {

/// Restores the pool's thread count on scope exit (same idiom as
/// parallel_test.cpp).
class ScopedThreads {
public:
  explicit ScopedThreads(size_t N) : Prev(ThreadPool::global().threadCount()) {
    ThreadPool::global().setThreadCount(N);
  }
  ~ScopedThreads() { ThreadPool::global().setThreadCount(Prev); }

private:
  size_t Prev;
};

/// Deletes a temp file on scope exit.
class TempFile {
public:
  explicit TempFile(std::string Path) : Path(std::move(Path)) {
    std::remove(this->Path.c_str());
  }
  ~TempFile() { std::remove(Path.c_str()); }
  const std::string &path() const { return Path; }

private:
  std::string Path;
};

bool fileExists(const std::string &Path) {
  return std::ifstream(Path).good();
}

std::string slurp(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  std::ostringstream Buf;
  Buf << In.rdbuf();
  return Buf.str();
}

struct TinySetup {
  data::SyntheticCorpus Corpus;
  nn::TransformerModel Model;
  data::Sentence Sent;

  TinySetup() : Corpus(data::CorpusConfig::sstLike(16)) {
    nn::TransformerConfig Cfg;
    Cfg.MaxLen = 16;
    Cfg.EmbedDim = 16;
    Cfg.NumHeads = 2;
    Cfg.HiddenDim = 16;
    Cfg.NumLayers = 2;
    support::Rng Rng(0x5eed);
    Model = nn::TransformerModel::init(Cfg, Corpus.embeddings(), Rng);
    support::Rng SentRng(7);
    Sent = Corpus.sampleSentence(SentRng);
    Sent.Label = Model.classify(Sent.Tokens);
  }
};

//===----------------------------------------------------------------------===//
// SymbolProvenance
//===----------------------------------------------------------------------===//

TEST(SymbolProvenance, FreshSymbolsTagWithCurrentGroup) {
  SymbolProvenance P;
  P.noteFresh(0, 3); // default group: "input"
  uint32_t Prev = P.pushGroup("layer0.softmax");
  EXPECT_EQ(Prev, 0u);
  P.noteFresh(3, 2);
  P.restoreGroup(Prev);
  EXPECT_EQ(P.groupOf(0), "input");
  EXPECT_EQ(P.groupOf(2), "input");
  EXPECT_EQ(P.groupOf(3), "layer0.softmax");
  EXPECT_EQ(P.groupOf(4), "layer0.softmax");
  // Never-tagged indices default to "input".
  EXPECT_EQ(P.groupOf(99), "input");
}

TEST(SymbolProvenance, GapPaddingDefaultsToInput) {
  SymbolProvenance P;
  P.pushGroup("pooler");
  // Tagging [2, 3) with a gap below: indices 0-1 pad as "input".
  P.noteFresh(2, 1);
  EXPECT_EQ(P.numTagged(), 3u);
  EXPECT_EQ(P.groupOf(0), "input");
  EXPECT_EQ(P.groupOf(1), "input");
  EXPECT_EQ(P.groupOf(2), "pooler");
}

TEST(SymbolProvenance, InterningReusesGroupIds) {
  SymbolProvenance P;
  uint32_t A1 = P.pushGroup("layer1.ffn");
  uint32_t Cur = P.currentGroup();
  P.restoreGroup(A1);
  P.pushGroup("layer1.ffn");
  EXPECT_EQ(P.currentGroup(), Cur); // same name, same interned id
  EXPECT_EQ(P.groupNames().size(), 2u); // "input" + "layer1.ffn"
}

TEST(SymbolProvenance, NoteReductionRemapsSurvivors) {
  SymbolProvenance P;
  P.noteFresh(0, 1); // 0: input
  P.pushGroup("a");
  P.noteFresh(1, 2); // 1,2: a
  P.pushGroup("b");
  P.noteFresh(3, 2); // 3,4: b
  // Reduction keeps old indices 1 and 4: new 0 <- old 1, new 1 <- old 4.
  P.noteReduction({1, 4});
  EXPECT_EQ(P.numTagged(), 2u);
  EXPECT_EQ(P.groupOf(0), "a");
  EXPECT_EQ(P.groupOf(1), "b");
  // Fold symbols appended after the reduction tag with the current group.
  P.noteFresh(2, 1);
  EXPECT_EQ(P.groupOf(2), "b");
}

TEST(SymbolProvenance, SessionInstallsAndRestoresThreadLocal) {
  EXPECT_EQ(SymbolProvenance::active(), nullptr);
  {
    ProvenanceSession Outer;
    EXPECT_EQ(SymbolProvenance::active(), &Outer.provenance());
    {
      ProvenanceSession Inner;
      EXPECT_EQ(SymbolProvenance::active(), &Inner.provenance());
    }
    EXPECT_EQ(SymbolProvenance::active(), &Outer.provenance());
  }
  EXPECT_EQ(SymbolProvenance::active(), nullptr);
}

TEST(SymbolProvenance, GroupGuardNestsAndIsNoopWithoutSession) {
  {
    // No session: the guard must not crash or install anything.
    ProvenanceGroup G("orphan");
    EXPECT_EQ(SymbolProvenance::active(), nullptr);
  }
  ProvenanceSession S;
  SymbolProvenance &P = S.provenance();
  EXPECT_EQ(P.currentGroup(), 0u);
  {
    ProvenanceGroup G(static_cast<size_t>(2), "softmax");
    P.noteFresh(0, 1);
    EXPECT_EQ(P.groupOf(0), "layer2.softmax");
    {
      ProvenanceGroup Inner("pooler");
      P.noteFresh(1, 1);
      EXPECT_EQ(P.groupOf(1), "pooler");
    }
    P.noteFresh(2, 1);
    EXPECT_EQ(P.groupOf(2), "layer2.softmax"); // restored by inner guard
  }
  EXPECT_EQ(P.currentGroup(), 0u);
}

TEST(SymbolProvenance, AppendFreshEpsHookTags) {
  ProvenanceSession S;
  Matrix C(1, 2);
  C.at(0, 0) = 0.0;
  C.at(0, 1) = 0.0;
  zono::Zonotope Z = zono::Zonotope::constant(C, /*PhiP=*/2.0);
  {
    ProvenanceGroup G("layer0.softmax");
    Z.appendFreshEps({{0, 0.5}});
  }
  Z.appendFreshEps({{1, 0.25}});
  SymbolProvenance &P = S.provenance();
  ASSERT_EQ(P.numTagged(), Z.numEps());
  EXPECT_EQ(P.groupOf(0), "layer0.softmax");
  EXPECT_EQ(P.groupOf(1), "input");
}

//===----------------------------------------------------------------------===//
// PrecisionProfile
//===----------------------------------------------------------------------===//

/// Sum of the attribution group widths; exact decomposition of the margin
/// width up to floating-point reassociation.
double attributionSum(const PrecisionProfile &P) {
  double Sum = 0.0;
  for (const verify::GroupContribution &G : P.Attribution)
    Sum += G.Width;
  return Sum;
}

bool hasGroupWithPrefix(const PrecisionProfile &P, const std::string &Prefix) {
  for (const verify::GroupContribution &G : P.Attribution)
    if (G.Group.rfind(Prefix, 0) == 0)
      return true;
  return false;
}

class ProfileTest : public ::testing::Test {
protected:
  TinySetup S;

  /// Certifies word 0 of the fixture sentence at (P, Eps) with profiling
  /// attached and returns the margin lower bound.
  double certifyProfiled(double P, double Eps, PrecisionProfile &Prof) {
    verify::VerifierConfig VC;
    VC.NoiseReductionBudget = 128;
    VC.Profile = &Prof;
    verify::DeepTVerifier V(S.Model, VC);
    Matrix X = S.Model.embed(S.Sent.Tokens);
    zono::Zonotope In = zono::Zonotope::lpBallOnRow(X, 0, P, Eps);
    return V.certifyMargin(In, S.Sent.Label);
  }
};

TEST_F(ProfileTest, AttributionSumsToMarginWidth) {
  // Both norms, a certifiable eps and a falsifying one: the group widths
  // must reproduce the observed margin width to reassociation error.
  for (double P : {2.0, Matrix::InfNorm}) {
    for (double Eps : {0.05, 5.0}) {
      PrecisionProfile Prof;
      double Lo = certifyProfiled(P, Eps, Prof);
      EXPECT_DOUBLE_EQ(Lo, Prof.MarginLo);
      EXPECT_GT(Prof.MarginHi, Prof.MarginLo);
      EXPECT_NEAR(Prof.MarginWidth, Prof.MarginHi - Prof.MarginLo, 1e-12);
      EXPECT_EQ(Prof.Falsified, !(Lo > 0.0));
      double Sum = attributionSum(Prof);
      EXPECT_NEAR(Sum, Prof.MarginWidth,
                  1e-9 * std::max(1.0, Prof.MarginWidth))
          << "P=" << P << " Eps=" << Eps;
    }
  }
}

TEST_F(ProfileTest, AttributionNamesTheStages) {
  PrecisionProfile Prof;
  certifyProfiled(2.0, 0.05, Prof);
  ASSERT_FALSE(Prof.Attribution.empty());
  // The input-embedding dual-norm term is always present and first.
  EXPECT_EQ(Prof.Attribution.front().Group, "input.phi");
  EXPECT_GT(Prof.Attribution.front().Symbols, 0u);
  // Layer-scoped stages created fresh symbols somewhere in the network.
  EXPECT_TRUE(hasGroupWithPrefix(Prof, "layer"));
  for (const verify::GroupContribution &G : Prof.Attribution) {
    EXPECT_FALSE(G.Group.empty());
    EXPECT_GE(G.Width, 0.0);
  }
}

TEST_F(ProfileTest, CheckpointsCoverThePropagation) {
  PrecisionProfile Prof;
  certifyProfiled(2.0, 0.05, Prof);
  ASSERT_FALSE(Prof.Checkpoints.empty());
  EXPECT_EQ(Prof.Checkpoints.front().Site, "verify.layer_input");
  EXPECT_EQ(Prof.Checkpoints.front().Layer, 0);
  EXPECT_EQ(Prof.Checkpoints.back().Site, "verify.logits");
  EXPECT_EQ(Prof.Checkpoints.back().Layer, -1);
  size_t LayerInputs = 0, ScoreSites = 0;
  for (const verify::CheckpointProfile &C : Prof.Checkpoints) {
    EXPECT_GE(C.MaxWidth, C.MeanWidth);
    EXPECT_GE(C.MeanWidth, 0.0);
    EXPECT_GE(C.SinceMs, 0.0);
    if (C.Site == "verify.layer_input")
      ++LayerInputs;
    if (C.Site == "verify.attention.scores") {
      ++ScoreSites;
      EXPECT_GE(C.Head, 0); // per-head site
    }
  }
  EXPECT_EQ(LayerInputs, 2u);                 // one per transformer layer
  EXPECT_EQ(ScoreSites, 2u * 2u);             // layers x heads
  // The nonlinearities created eps symbols by the time we reach logits
  // (the l2 input itself carries only phi symbols).
  EXPECT_GT(Prof.Checkpoints.back().EpsSyms, 0u);
  EXPECT_GT(Prof.TotalMs, 0.0);
}

TEST_F(ProfileTest, ResetKeepsQueryMetadata) {
  PrecisionProfile Prof;
  Prof.Query = "s0-w0";
  Prof.Method = "fast";
  Prof.Norm = "l2";
  Prof.Eps = 0.05;
  certifyProfiled(2.0, 0.05, Prof);
  ASSERT_FALSE(Prof.Checkpoints.empty());
  Prof.resetMeasurements();
  EXPECT_TRUE(Prof.Checkpoints.empty());
  EXPECT_TRUE(Prof.Attribution.empty());
  EXPECT_EQ(Prof.MarginWidth, 0.0);
  EXPECT_FALSE(Prof.Falsified);
  EXPECT_EQ(Prof.Query, "s0-w0");
  EXPECT_EQ(Prof.Method, "fast");
  EXPECT_EQ(Prof.Norm, "l2");
  EXPECT_EQ(Prof.Eps, 0.05);
}

TEST_F(ProfileTest, JsonLineParsesAndCarriesTheSchema) {
  PrecisionProfile Prof;
  Prof.Query = "q\"quoted\"";
  Prof.Method = "precise";
  Prof.Norm = "linf";
  Prof.Eps = 0.1;
  certifyProfiled(Matrix::InfNorm, 0.1, Prof);
  JsonValue Doc;
  std::string Err;
  ASSERT_TRUE(support::parseJson(Prof.toJsonLine(), Doc, &Err)) << Err;
  const JsonValue *Query = Doc.find("query");
  ASSERT_NE(Query, nullptr);
  EXPECT_EQ(Query->StringVal, "q\"quoted\"");
  ASSERT_NE(Doc.find("margin_width"), nullptr);
  const JsonValue *Checkpoints = Doc.find("checkpoints");
  ASSERT_NE(Checkpoints, nullptr);
  ASSERT_TRUE(Checkpoints->isArray());
  ASSERT_FALSE(Checkpoints->Items.empty());
  EXPECT_NE(Checkpoints->Items[0].find("site"), nullptr);
  EXPECT_NE(Checkpoints->Items[0].find("mean_width"), nullptr);
  const JsonValue *Attr = Doc.find("attribution");
  ASSERT_NE(Attr, nullptr);
  ASSERT_TRUE(Attr->isArray());
  ASSERT_FALSE(Attr->Items.empty());
  EXPECT_NE(Attr->Items[0].find("group"), nullptr);
  EXPECT_NE(Attr->Items[0].find("width"), nullptr);
}

TEST_F(ProfileTest, ProfilingDoesNotChangeTheMargin) {
  // Observability must be read-only: the certified margin with profiling
  // attached is bit-identical to the plain run.
  verify::VerifierConfig VC;
  VC.NoiseReductionBudget = 128;
  verify::DeepTVerifier Plain(S.Model, VC);
  Matrix X = S.Model.embed(S.Sent.Tokens);
  zono::Zonotope In = zono::Zonotope::lpBallOnRow(X, 0, 2.0, 0.05);
  double Ref = Plain.certifyMargin(In, S.Sent.Label);
  PrecisionProfile Prof;
  EXPECT_EQ(certifyProfiled(2.0, 0.05, Prof), Ref);
}

//===----------------------------------------------------------------------===//
// FlightRecorder
//===----------------------------------------------------------------------===//

TEST(FlightRecorderTest, RingDropsOldestAtCapacity) {
  FlightRecorder Rec(4);
  EXPECT_EQ(Rec.capacity(), 4u);
  for (int I = 0; I < 10; ++I)
    Rec.record("e" + std::to_string(I), "detail", I);
  EXPECT_EQ(Rec.size(), 4u);
  EXPECT_EQ(Rec.droppedCount(), 6u);

  JsonValue Doc;
  std::string Err;
  ASSERT_TRUE(support::parseJson(Rec.toJson("job-k"), Doc, &Err)) << Err;
  EXPECT_EQ(Doc.find("job")->StringVal, "job-k");
  EXPECT_EQ(Doc.find("capacity")->NumberVal, 4.0);
  EXPECT_EQ(Doc.find("dropped")->NumberVal, 6.0);
  const JsonValue *Events = Doc.find("events");
  ASSERT_NE(Events, nullptr);
  ASSERT_TRUE(Events->isArray());
  ASSERT_EQ(Events->Items.size(), 4u);
  // Oldest six dropped: the survivors are e6..e9 in order.
  EXPECT_EQ(Events->Items[0].find("kind")->StringVal, "e6");
  EXPECT_EQ(Events->Items[3].find("kind")->StringVal, "e9");
  EXPECT_EQ(Events->Items[0].find("a")->NumberVal, 6.0);
  for (const JsonValue &E : Events->Items) {
    ASSERT_NE(E.find("t_ms"), nullptr);
    EXPECT_GE(E.find("t_ms")->NumberVal, 0.0);
  }
}

TEST(FlightRecorderTest, DumpJsonWritesTheArtifact) {
  TempFile Out("profile_test_recorder.json");
  FlightRecorder Rec(8);
  Rec.record("checkpoint", "verify.layer_input", 34, 3, 4352);
  std::string Err;
  ASSERT_TRUE(Rec.dumpJson(Out.path(), "k1", &Err)) << Err;
  JsonValue Doc;
  ASSERT_TRUE(support::parseJson(slurp(Out.path()), Doc, &Err)) << Err;
  EXPECT_EQ(Doc.find("job")->StringVal, "k1");
  EXPECT_EQ(Doc.find("events")->Items.size(), 1u);
}

TEST(FlightRecorderTest, VerifierRecordsCheckpointEvents) {
  TinySetup S;
  FlightRecorder Rec(256);
  verify::VerifierConfig VC;
  VC.NoiseReductionBudget = 128;
  VC.Recorder = &Rec;
  verify::DeepTVerifier V(S.Model, VC);
  Matrix X = S.Model.embed(S.Sent.Tokens);
  zono::Zonotope In = zono::Zonotope::lpBallOnRow(X, 0, 2.0, 0.05);
  V.certifyMargin(In, S.Sent.Label);
  EXPECT_GT(Rec.size(), 0u);
  JsonValue Doc;
  ASSERT_TRUE(support::parseJson(Rec.toJson("k"), Doc));
  bool SawLogits = false;
  for (const JsonValue &E : Doc.find("events")->Items)
    if (E.find("kind")->StringVal == "checkpoint" &&
        E.find("detail")->StringVal == "verify.logits")
      SawLogits = true;
  EXPECT_TRUE(SawLogits);
}

//===----------------------------------------------------------------------===//
// Scheduler artifact lifecycle
//===----------------------------------------------------------------------===//

TEST(SchedulerObservability, RecorderDumpsOnDeadlineAndProfilesStream) {
  TinySetup S;
  ScopedThreads T(2);
  TempFile Store("profile_test_store.jsonl");
  TempFile Profiles("profile_test_profiles.jsonl");
  const std::string RecDir = "profile_test_recdir";
  const std::string OkDump = RecDir + "/recorder-ok-job.json";
  const std::string DeadDump = RecDir + "/recorder-dead-job.json";
  std::remove(OkDump.c_str());
  std::remove(DeadDump.c_str());
  ::mkdir(RecDir.c_str(), 0755);

  JobQueue Q;
  JobSpec Ok;
  Ok.Id = "ok-job";
  Ok.Tokens = S.Sent.Tokens;
  Ok.TrueClass = S.Sent.Label;
  Ok.Word = 0;
  Ok.P = 2.0;
  Ok.Epsilon = 0.05;
  Ok.Method = JobMethod::Fast;
  Ok.NoiseReductionBudget = 128;
  Q.push(Ok);
  JobSpec Dead = Ok;
  Dead.Id = "dead-job";
  Dead.Method = JobMethod::Precise;
  Dead.DeadlineMs = 0; // forced expiry -> degrade to Fast, recorder dump
  Q.push(Dead);

  SchedulerOptions SO;
  SO.JsonlPath = Store.path();
  SO.ProfileJsonlPath = Profiles.path();
  SO.RecorderDir = RecDir;
  SO.RecorderCapacity = 64;
  Scheduler Sched(S.Model, SO);
  std::vector<JobResult> Results = Sched.run(Q);

  ASSERT_EQ(Results.size(), 2u);
  EXPECT_EQ(Results[0].Status, JobStatus::Ok);
  EXPECT_EQ(Results[1].Status, JobStatus::Degraded);
  EXPECT_TRUE(Results[1].DeadlineHit);

  // A clean job leaves no artifact; the deadline-hit job leaves a valid
  // one that names the job and shows the degradation path.
  EXPECT_FALSE(fileExists(OkDump));
  ASSERT_TRUE(fileExists(DeadDump));
  JsonValue Doc;
  std::string Err;
  ASSERT_TRUE(support::parseJson(slurp(DeadDump), Doc, &Err)) << Err;
  EXPECT_EQ(Doc.find("job")->StringVal, "dead-job");
  const JsonValue *Events = Doc.find("events");
  ASSERT_NE(Events, nullptr);
  ASSERT_TRUE(Events->isArray());
  ASSERT_FALSE(Events->Items.empty());
  bool SawAttempt = false, SawDeadline = false;
  for (const JsonValue &E : Events->Items) {
    ASSERT_NE(E.find("t_ms"), nullptr);
    ASSERT_NE(E.find("kind"), nullptr);
    const std::string &Kind = E.find("kind")->StringVal;
    if (Kind == "attempt_start")
      SawAttempt = true;
    if (Kind == "deadline" || Kind == "degrade")
      SawDeadline = true;
  }
  EXPECT_TRUE(SawAttempt);
  EXPECT_TRUE(SawDeadline);

  // Both executed jobs streamed a profile line; each parses and carries
  // the attribution schema, and the degraded job reports the method that
  // actually answered (fast).
  std::ifstream In(Profiles.path());
  std::string Line;
  size_t Lines = 0;
  bool SawFastDead = false;
  while (std::getline(In, Line)) {
    if (Line.empty())
      continue;
    ++Lines;
    JsonValue P;
    ASSERT_TRUE(support::parseJson(Line, P, &Err)) << Err;
    ASSERT_NE(P.find("query"), nullptr);
    ASSERT_NE(P.find("margin_width"), nullptr);
    ASSERT_NE(P.find("attribution"), nullptr);
    if (P.find("query")->StringVal == "dead-job" &&
        P.find("method")->StringVal == "fast")
      SawFastDead = true;
  }
  EXPECT_EQ(Lines, 2u);
  EXPECT_TRUE(SawFastDead);

  std::remove(DeadDump.c_str());
  ::rmdir(RecDir.c_str());
}

} // namespace
