//===- tests/integration_test.cpp ------------------------------*- C++ -*-===//
//
// Cross-module integration tests: consistency between the verifiers, the
// attack, and the concrete model; determinism; degenerate configurations.
//
//===----------------------------------------------------------------------===//

#include "attack/Pgd.h"
#include "crown/CrownVerifier.h"
#include "nn/Serialize.h"
#include "nn/Train.h"
#include "verify/DeepT.h"
#include "verify/RadiusSearch.h"

#include "TestHelpers.h"

#include <gtest/gtest.h>

#include <cstdio>

using namespace deept;
using namespace deept::testhelp;
using tensor::Matrix;
using zono::Zonotope;

namespace {

struct Fixture {
  data::SyntheticCorpus Corpus;
  nn::TransformerModel Model;
  std::vector<data::Sentence> Test;

  Fixture() : Corpus(data::CorpusConfig::sstLike(16)) {
    support::Rng Rng(1100);
    nn::TransformerConfig C;
    C.MaxLen = 12;
    C.EmbedDim = 16;
    C.NumHeads = 2;
    C.HiddenDim = 16;
    C.NumLayers = 2;
    Model = nn::TransformerModel::init(C, Corpus.embeddings(), Rng);
    support::Rng DataRng(1101);
    auto Train = Corpus.sampleDataset(192, DataRng);
    Test = Corpus.sampleDataset(10, DataRng);
    nn::TrainOptions Opts;
    Opts.Steps = 100;
    Opts.BatchSize = 8;
    nn::trainTransformer(Model, Corpus, Train, Opts);
  }

  data::Sentence correctSentence() const {
    for (const data::Sentence &S : Test)
      if (Model.classify(S.Tokens) == S.Label)
        return S;
    return Test.front();
  }
};

const Fixture &fixture() {
  static Fixture F;
  return F;
}

} // namespace

TEST(Integration, CertificationIsMonotoneInRadius) {
  const Fixture &F = fixture();
  data::Sentence S = F.correctSentence();
  verify::VerifierConfig VC;
  VC.NoiseReductionBudget = 300;
  verify::DeepTVerifier DeepT(F.Model, VC);
  crown::CrownVerifier BaF(F.Model);
  for (double P : {1.0, 2.0, Matrix::InfNorm}) {
    double R = verify::certifiedRadius([&](double Radius) {
      return DeepT.certifyLpBall(S.Tokens, 0, P, Radius, S.Label);
    });
    if (R > 0) {
      EXPECT_TRUE(DeepT.certifyLpBall(S.Tokens, 0, P, R * 0.5, S.Label));
      EXPECT_TRUE(DeepT.certifyLpBall(S.Tokens, 0, P, R * 0.1, S.Label));
    }
    double RB = verify::certifiedRadius([&](double Radius) {
      return BaF.certifyLpBall(S.Tokens, 0, P, Radius, S.Label);
    });
    if (RB > 0)
      EXPECT_TRUE(BaF.certifyLpBall(S.Tokens, 0, P, RB * 0.5, S.Label));
  }
}

TEST(Integration, AttackNeverSucceedsInsideDeepTCertifiedRegion) {
  const Fixture &F = fixture();
  data::Sentence S = F.correctSentence();
  verify::VerifierConfig VC;
  VC.NoiseReductionBudget = 300;
  verify::DeepTVerifier DeepT(F.Model, VC);
  for (double P : {2.0, Matrix::InfNorm}) {
    double R = verify::certifiedRadius([&](double Radius) {
      return DeepT.certifyLpBall(S.Tokens, 0, P, Radius, S.Label);
    });
    if (R <= 0)
      continue;
    attack::AttackOptions AO;
    AO.Steps = 40;
    AO.Restarts = 2;
    EXPECT_FALSE(attack::attackTransformerLpBall(F.Model, S.Tokens, 0, P,
                                                 0.95 * R, S.Label, AO))
        << "PGD found an adversarial example inside a certified region";
  }
}

TEST(Integration, AttackNeverSucceedsInsideCrownCertifiedRegion) {
  const Fixture &F = fixture();
  data::Sentence S = F.correctSentence();
  for (crown::CrownMode Mode :
       {crown::CrownMode::BaF, crown::CrownMode::Backward}) {
    crown::CrownConfig Cfg;
    Cfg.Mode = Mode;
    crown::CrownVerifier V(F.Model, Cfg);
    double R = verify::certifiedRadius([&](double Radius) {
      return V.certifyLpBall(S.Tokens, 0, 2.0, Radius, S.Label);
    });
    if (R <= 0)
      continue;
    attack::AttackOptions AO;
    AO.Steps = 40;
    AO.Restarts = 2;
    EXPECT_FALSE(attack::attackTransformerLpBall(F.Model, S.Tokens, 0, 2.0,
                                                 0.95 * R, S.Label, AO));
  }
}

TEST(Integration, VerifiersAreDeterministic) {
  const Fixture &F = fixture();
  data::Sentence S = F.correctSentence();
  verify::VerifierConfig VC;
  VC.NoiseReductionBudget = 300;
  verify::DeepTVerifier DeepT(F.Model, VC);
  Zonotope In =
      Zonotope::lpBallOnRow(F.Model.embed(S.Tokens), 0, 2.0, 0.02);
  double M1 = DeepT.certifyMargin(In, S.Label);
  double M2 = DeepT.certifyMargin(In, S.Label);
  EXPECT_DOUBLE_EQ(M1, M2);

  crown::CrownVerifier BaF(F.Model);
  double C1 = BaF.certifyMarginLpBall(S.Tokens, 0, 2.0, 0.02, S.Label)
                  .MarginLowerBound;
  double C2 = BaF.certifyMarginLpBall(S.Tokens, 0, 2.0, 0.02, S.Label)
                  .MarginLowerBound;
  EXPECT_DOUBLE_EQ(C1, C2);
}

TEST(Integration, ZeroRadiusMatchesConcreteDecision) {
  const Fixture &F = fixture();
  data::Sentence S = F.correctSentence();
  Matrix Logits = F.Model.forwardEmbeddings(F.Model.embed(S.Tokens));
  double ConcreteMargin =
      Logits.at(0, S.Label) - Logits.at(0, 1 - S.Label);

  // CROWN at radius zero: relaxations degenerate to constants, so the
  // margin bound equals the concrete margin (up to numeric noise).
  crown::CrownConfig Cfg;
  Cfg.Mode = crown::CrownMode::Backward;
  double CrownMargin =
      crown::CrownVerifier(F.Model, Cfg)
          .certifyMarginLpBall(S.Tokens, 0, 2.0, 0.0, S.Label)
          .MarginLowerBound;
  EXPECT_NEAR(CrownMargin, ConcreteMargin, 1e-6);

  // DeepT at a vanishing radius is also near-exact.
  verify::VerifierConfig VC;
  VC.NoiseReductionBudget = 300;
  Zonotope In =
      Zonotope::lpBallOnRow(F.Model.embed(S.Tokens), 0, 2.0, 1e-12);
  double DeepTMargin =
      verify::DeepTVerifier(F.Model, VC).certifyMargin(In, S.Label);
  EXPECT_NEAR(DeepTMargin, ConcreteMargin, 1e-4);
}

TEST(Integration, SynonymFreeSentenceBoxIsAPoint) {
  // A sentence whose words have no synonyms yields a zero-width box; the
  // T2 certificate then reduces to the concrete decision.
  const Fixture &F = fixture();
  data::Sentence S;
  for (size_t W = 0; W < F.Corpus.vocabSize() && S.Tokens.size() < 4; ++W)
    if (F.Corpus.synonymsOf(W).empty())
      S.Tokens.push_back(W);
  if (S.Tokens.size() < 2)
    GTEST_SKIP() << "corpus has too few synonym-free words";
  size_t Pred = F.Model.classify(S.Tokens);
  verify::VerifierConfig VC;
  VC.NoiseReductionBudget = 300;
  verify::DeepTVerifier DeepT(F.Model, VC);
  Zonotope Box = DeepT.synonymBox(F.Corpus, S);
  EXPECT_EQ(Box.numEps(), 0u);
  EXPECT_TRUE(DeepT.certifySynonymBox(F.Corpus, S, Pred));
}

TEST(Integration, NoiseReductionBudgetZeroDisablesReduction) {
  const Fixture &F = fixture();
  data::Sentence S = F.correctSentence();
  verify::VerifierConfig NoRed;
  NoRed.NoiseReductionBudget = 0;
  verify::DeepTVerifier V(F.Model, NoRed);
  Zonotope In =
      Zonotope::lpBallOnRow(F.Model.embed(S.Tokens), 0, 2.0, 0.01);
  verify::PropagationStats Stats;
  V.propagate(In, &Stats);
  // Without reduction the peak symbol count exceeds any per-layer budget
  // we would normally use on this network.
  EXPECT_GT(Stats.PeakEpsSymbols, 500u);
}

TEST(Integration, SerializeRejectsCorruptFiles) {
  std::string Path = ::testing::TempDir() + "/deept_corrupt.dptm";
  FILE *F = std::fopen(Path.c_str(), "wb");
  ASSERT_NE(F, nullptr);
  const char Garbage[] = "this is not a model file at all";
  std::fwrite(Garbage, 1, sizeof(Garbage), F);
  std::fclose(F);
  nn::TransformerModel M;
  EXPECT_FALSE(nn::loadModel(Path, M));
  EXPECT_FALSE(nn::loadModel(Path + ".does_not_exist", M));
  std::remove(Path.c_str());
}

TEST(Integration, DualNormOrdersBothSoundAndClose) {
  const Fixture &F = fixture();
  data::Sentence S = F.correctSentence();
  Matrix X = F.Model.embed(S.Tokens);
  Zonotope In = Zonotope::lpBallOnRow(X, 0, 1.0, 0.05);
  verify::VerifierConfig A;
  A.NoiseReductionBudget = 300;
  A.Order = zono::DualNormOrder::InfFirst;
  verify::VerifierConfig B = A;
  B.Order = zono::DualNormOrder::LpFirst;
  double MA = verify::DeepTVerifier(F.Model, A).certifyMargin(In, S.Label);
  double MB = verify::DeepTVerifier(F.Model, B).certifyMargin(In, S.Label);
  // Both are sound lower bounds of the same concrete minimum, and the
  // orders differ only in the Eq. 5 cascade, so they stay close.
  support::Rng Rng(1102);
  for (int I = 0; I < 20; ++I) {
    Matrix L = F.Model.forwardEmbeddings(In.sample(Rng));
    double Concrete = L.at(0, S.Label) - L.at(0, 1 - S.Label);
    EXPECT_GE(Concrete, MA - 1e-6);
    EXPECT_GE(Concrete, MB - 1e-6);
  }
  EXPECT_LT(std::fabs(MA - MB), 0.5 * (std::fabs(MA) + std::fabs(MB)) + 1e-6);
}
