//===- tests/nn_test.cpp --------------------------------------*- C++ -*-===//
//
// Tests for the Transformer / feed-forward models, training loops, the
// synthetic datasets and model serialization.
//
//===----------------------------------------------------------------------===//

#include "nn/Serialize.h"
#include "nn/Train.h"
#include "nn/Transformer.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <set>

using namespace deept;
using namespace deept::nn;
using tensor::Matrix;

namespace {

TransformerConfig smallConfig(size_t Layers = 2) {
  TransformerConfig C;
  C.MaxLen = 12;
  C.EmbedDim = 16;
  C.NumHeads = 2;
  C.HiddenDim = 16;
  C.NumLayers = Layers;
  return C;
}

} // namespace

//===----------------------------------------------------------------------===//
// Synthetic corpus
//===----------------------------------------------------------------------===//

TEST(SyntheticCorpus, Deterministic) {
  data::CorpusConfig C = data::CorpusConfig::sstLike(16);
  data::SyntheticCorpus A(C), B(C);
  EXPECT_EQ(A.vocabSize(), B.vocabSize());
  EXPECT_TRUE(tensor::allClose(A.embeddings(), B.embeddings(), 0.0));
}

TEST(SyntheticCorpus, SynonymsShareConceptAndAreClose) {
  data::CorpusConfig C = data::CorpusConfig::sstLike(16);
  data::SyntheticCorpus Corpus(C);
  for (size_t W = 0; W < Corpus.vocabSize(); ++W) {
    for (size_t S : Corpus.synonymsOf(W)) {
      EXPECT_EQ(Corpus.conceptOf(S), Corpus.conceptOf(W));
      EXPECT_NE(S, W);
      // Synonym embeddings are within 2 * ClusterRadius in l-infinity.
      for (size_t I = 0; I < C.EmbedDim; ++I)
        EXPECT_LE(std::fabs(Corpus.embeddings().at(S, I) -
                            Corpus.embeddings().at(W, I)),
                  2.0 * C.ClusterRadius + 1e-12);
    }
  }
}

TEST(SyntheticCorpus, SentencesAreLabelledByPolaritySum) {
  data::SyntheticCorpus Corpus(data::CorpusConfig::sstLike(16));
  support::Rng Rng(5);
  for (int I = 0; I < 50; ++I) {
    data::Sentence S = Corpus.sampleSentence(Rng);
    EXPECT_GE(S.Tokens.size(), Corpus.config().MinLen);
    EXPECT_LE(S.Tokens.size(), Corpus.config().MaxLen);
    double Sum = 0.0;
    for (size_t T : S.Tokens)
      Sum += Corpus.polarityOf(T);
    EXPECT_EQ(S.Label, Sum > 0 ? 1u : 0u);
    EXPECT_GE(std::fabs(Sum), Corpus.config().MinMargin);
  }
}

TEST(SyntheticCorpus, SwapSynonymsPreservesConcepts) {
  data::SyntheticCorpus Corpus(data::CorpusConfig::sstLike(16));
  support::Rng Rng(6);
  data::Sentence S = Corpus.sampleSentence(Rng);
  data::Sentence Orig = S;
  Corpus.swapSynonyms(S, 1.0, Rng);
  ASSERT_EQ(S.Tokens.size(), Orig.Tokens.size());
  for (size_t I = 0; I < S.Tokens.size(); ++I)
    EXPECT_EQ(Corpus.conceptOf(S.Tokens[I]), Corpus.conceptOf(Orig.Tokens[I]));
}

TEST(StrokeImages, ShapesAndLabels) {
  support::Rng Rng(7);
  auto Images = data::makeStrokeImages(40, Rng, 8);
  ASSERT_EQ(Images.size(), 40u);
  std::set<size_t> Labels;
  for (const auto &Ex : Images) {
    EXPECT_EQ(Ex.Pixels.size(), 64u);
    for (size_t I = 0; I < 64; ++I) {
      EXPECT_GE(Ex.Pixels.flat(I), 0.0);
      EXPECT_LE(Ex.Pixels.flat(I), 1.0);
    }
    Labels.insert(Ex.Label);
  }
  EXPECT_EQ(Labels.size(), 2u); // both classes occur
}

//===----------------------------------------------------------------------===//
// Transformer model
//===----------------------------------------------------------------------===//

TEST(Transformer, TapeForwardMatchesConcreteForward) {
  // The training path (autograd) and the verification-facing concrete
  // forward must agree exactly.
  support::Rng Rng(10);
  data::SyntheticCorpus Corpus(data::CorpusConfig::sstLike(16));
  for (bool StdDiv : {false, true}) {
    TransformerConfig C = smallConfig();
    C.LayerNormStdDiv = StdDiv;
    TransformerModel M = TransformerModel::init(C, Corpus.embeddings(), Rng);
    data::Sentence S = Corpus.sampleSentence(Rng);
    Matrix X = M.embed(S.Tokens);
    Matrix Concrete = M.forwardEmbeddings(X);

    autograd::Tape T;
    auto Params = M.pushParams(T);
    autograd::ValueId Logits = M.buildForward(T, T.input(X), Params);
    EXPECT_TRUE(tensor::allClose(T.value(Logits), Concrete, 1e-9));
  }
}

TEST(Transformer, TrainingLearnsTheSentimentTask) {
  support::Rng Rng(11);
  data::SyntheticCorpus Corpus(data::CorpusConfig::sstLike(16));
  TransformerModel M =
      TransformerModel::init(smallConfig(), Corpus.embeddings(), Rng);
  support::Rng DataRng(12);
  auto Train = Corpus.sampleDataset(256, DataRng);
  auto Test = Corpus.sampleDataset(128, DataRng);
  double Before = accuracy(M, Test);
  TrainOptions Opts;
  Opts.Steps = 120;
  Opts.BatchSize = 8;
  trainTransformer(M, Corpus, Train, Opts);
  double After = accuracy(M, Test);
  EXPECT_GT(After, 0.8) << "before-training accuracy was " << Before;
}

TEST(Transformer, EmbedAddsPositionalEncoding) {
  support::Rng Rng(13);
  data::SyntheticCorpus Corpus(data::CorpusConfig::sstLike(16));
  TransformerModel M =
      TransformerModel::init(smallConfig(), Corpus.embeddings(), Rng);
  Matrix X = M.embed({3, 3});
  // Same token at two positions differs exactly by the positional delta.
  for (size_t C = 0; C < 16; ++C)
    EXPECT_NEAR(X.at(1, C) - X.at(0, C),
                M.Positional.at(1, C) - M.Positional.at(0, C), 1e-12);
}

TEST(Transformer, SerializeRoundTrip) {
  support::Rng Rng(14);
  data::SyntheticCorpus Corpus(data::CorpusConfig::sstLike(16));
  TransformerConfig C = smallConfig(3);
  C.LayerNormStdDiv = true;
  TransformerModel M = TransformerModel::init(C, Corpus.embeddings(), Rng);
  std::string Path = ::testing::TempDir() + "/deept_roundtrip.dptm";
  ASSERT_TRUE(saveModel(Path, M));
  TransformerModel L;
  ASSERT_TRUE(loadModel(Path, L));
  EXPECT_EQ(L.Config.NumLayers, 3u);
  EXPECT_TRUE(L.Config.LayerNormStdDiv);
  data::Sentence S;
  S.Tokens = {1, 4, 2};
  EXPECT_TRUE(tensor::allClose(M.forwardEmbeddings(M.embed(S.Tokens)),
                               L.forwardEmbeddings(L.embed(S.Tokens)),
                               1e-12));
  std::remove(Path.c_str());
}

TEST(Transformer, CachedTrainingReusesDisk) {
  support::Rng Rng(15);
  data::SyntheticCorpus Corpus(data::CorpusConfig::sstLike(16));
  std::string Dir = ::testing::TempDir() + "/deept_cache_test";
  int Calls = 0;
  auto TrainFn = [&] {
    ++Calls;
    support::Rng R(15);
    return TransformerModel::init(smallConfig(), Corpus.embeddings(), R);
  };
  TransformerModel A = getOrTrainCached(Dir, "m", TrainFn);
  TransformerModel B = getOrTrainCached(Dir, "m", TrainFn);
  EXPECT_EQ(Calls, 1);
  EXPECT_TRUE(tensor::allClose(A.ClsW, B.ClsW, 0.0));
  std::remove((Dir + "/m.dptm").c_str());
}

//===----------------------------------------------------------------------===//
// Feed-forward net and Vision Transformer
//===----------------------------------------------------------------------===//

TEST(FeedForwardNet, TapeForwardMatchesConcrete) {
  support::Rng Rng(16);
  FeedForwardNet N = FeedForwardNet::init({8, 10, 5, 2}, Rng);
  Matrix X = Matrix::randn(1, 8, Rng);
  autograd::Tape T;
  auto Params = N.pushParams(T);
  autograd::ValueId Out = N.buildForward(T, T.input(X), Params);
  EXPECT_TRUE(tensor::allClose(T.value(Out), N.forward(X), 1e-12));
}

TEST(FeedForwardNet, LearnsStrokeImages) {
  support::Rng Rng(17);
  FeedForwardNet N = FeedForwardNet::init({64, 10, 50, 10, 2}, Rng);
  support::Rng DataRng(18);
  auto Train = data::makeStrokeImages(256, DataRng);
  auto Test = data::makeStrokeImages(128, DataRng);
  TrainOptions Opts;
  Opts.Steps = 150;
  Opts.BatchSize = 8;
  trainFeedForward(N, Train, Opts);
  EXPECT_GT(accuracy(N, Test), 0.9);
}

TEST(VisionTransformer, PatchifyLayout) {
  support::Rng Rng(19);
  TransformerConfig C = smallConfig(1);
  VisionTransformer V = VisionTransformer::init(8, 4, C, Rng);
  Matrix Pixels(1, 64);
  for (size_t I = 0; I < 64; ++I)
    Pixels.flat(I) = static_cast<double>(I);
  Matrix P = V.patchify(Pixels);
  ASSERT_EQ(P.rows(), 4u);
  ASSERT_EQ(P.cols(), 16u);
  // Patch 0 is the top-left 4x4 block.
  EXPECT_DOUBLE_EQ(P.at(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(P.at(0, 5), 9.0);  // row 1, col 1 -> pixel 8+1
  // Patch 1 is the top-right block.
  EXPECT_DOUBLE_EQ(P.at(1, 0), 4.0);
  // Patch 2 is the bottom-left block.
  EXPECT_DOUBLE_EQ(P.at(2, 0), 32.0);
}

TEST(VisionTransformer, TapeForwardMatchesConcrete) {
  support::Rng Rng(20);
  TransformerConfig C = smallConfig(1);
  VisionTransformer V = VisionTransformer::init(8, 4, C, Rng);
  support::Rng DataRng(21);
  auto Images = data::makeStrokeImages(2, DataRng);
  autograd::Tape T;
  auto Params = V.pushParams(T);
  autograd::ValueId Out =
      V.buildForward(T, T.input(Images[0].Pixels), Params);
  EXPECT_TRUE(
      tensor::allClose(T.value(Out), V.forwardPixels(Images[0].Pixels), 1e-9));
}

TEST(VisionTransformer, LearnsStrokeImages) {
  support::Rng Rng(22);
  TransformerConfig C = smallConfig(1);
  VisionTransformer V = VisionTransformer::init(8, 4, C, Rng);
  support::Rng DataRng(23);
  auto Train = data::makeStrokeImages(256, DataRng);
  auto Test = data::makeStrokeImages(96, DataRng);
  TrainOptions Opts;
  Opts.Steps = 120;
  Opts.BatchSize = 8;
  trainVisionTransformer(V, Train, Opts);
  EXPECT_GT(accuracy(V, Test), 0.85);
}
