//===- tests/prometheus_test.cpp - Prometheus exporter tests ---*- C++ -*-===//
//
// Tests of support/Prometheus: metric-name sanitization, label escaping,
// non-finite number rendering, the summary rendering of histograms
// (quantile lines, _sum/_count, companion _min/_max gauges), deterministic
// sorted output with every registry instrument appearing exactly once, and
// the offline --stats-json re-export path.
//
//===----------------------------------------------------------------------===//

#include "support/Json.h"
#include "support/Metrics.h"
#include "support/Prometheus.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>

using namespace deept::support;

namespace {

/// Number of (non-overlapping) occurrences of \p Needle in \p Text.
size_t countOccurrences(const std::string &Text, const std::string &Needle) {
  size_t N = 0;
  for (size_t At = Text.find(Needle); At != std::string::npos;
       At = Text.find(Needle, At + Needle.size()))
    ++N;
  return N;
}

TEST(PrometheusName, SanitizesDottedTaxonomy) {
  EXPECT_EQ(prometheusName("zono.dot.fast.calls"),
            "deept_zono_dot_fast_calls");
  EXPECT_EQ(prometheusName("sched.jobs"), "deept_sched_jobs");
  // Legal characters pass through, including colons and underscores.
  EXPECT_EQ(prometheusName("a:b_C9"), "deept_a:b_C9");
  // Everything else maps to '_'.
  EXPECT_EQ(prometheusName("a-b c/d%e"), "deept_a_b_c_d_e");
  // Stable: equal inputs give equal outputs.
  EXPECT_EQ(prometheusName("profile.margin_width"),
            prometheusName("profile.margin_width"));
}

TEST(PrometheusName, EmptyInputIsJustThePrefix) {
  EXPECT_EQ(prometheusName(""), "deept_");
}

TEST(PrometheusEscapeLabel, EscapesBackslashQuoteNewline) {
  EXPECT_EQ(prometheusEscapeLabel("plain"), "plain");
  EXPECT_EQ(prometheusEscapeLabel("a\\b"), "a\\\\b");
  EXPECT_EQ(prometheusEscapeLabel("say \"hi\""), "say \\\"hi\\\"");
  EXPECT_EQ(prometheusEscapeLabel("two\nlines"), "two\\nlines");
}

TEST(PrometheusNumber, RendersNonFiniteValues) {
  EXPECT_EQ(prometheusNumber(std::numeric_limits<double>::quiet_NaN()),
            "NaN");
  EXPECT_EQ(prometheusNumber(std::numeric_limits<double>::infinity()),
            "+Inf");
  EXPECT_EQ(prometheusNumber(-std::numeric_limits<double>::infinity()),
            "-Inf");
  // Finite values round-trip through the %.17g rendering.
  EXPECT_EQ(std::stod(prometheusNumber(0.1)), 0.1);
  EXPECT_EQ(std::stod(prometheusNumber(-3.0)), -3.0);
  EXPECT_EQ(prometheusNumber(0.0), "0");
}

TEST(PrometheusText, CountersAndGauges) {
  Metrics M;
  M.counter("test.calls").add(3);
  M.gauge("test.peak").set(7.5);
  std::string Out = prometheusText(M);
  EXPECT_NE(Out.find("# TYPE deept_test_calls counter\n"
                     "deept_test_calls 3\n"),
            std::string::npos);
  EXPECT_NE(Out.find("# TYPE deept_test_peak gauge\n"
                     "deept_test_peak 7.5\n"),
            std::string::npos);
}

TEST(PrometheusText, HistogramRendersAsSummaryWithMinMaxGauges) {
  Metrics M;
  Histogram &H = M.histogram("test.ms");
  for (int I = 1; I <= 100; ++I)
    H.observe(static_cast<double>(I));
  std::string Out = prometheusText(M);
  EXPECT_NE(Out.find("# TYPE deept_test_ms summary\n"), std::string::npos);
  EXPECT_NE(Out.find("deept_test_ms{quantile=\"0.5\"} "), std::string::npos);
  EXPECT_NE(Out.find("deept_test_ms{quantile=\"0.9\"} "), std::string::npos);
  EXPECT_NE(Out.find("deept_test_ms{quantile=\"0.99\"} "), std::string::npos);
  EXPECT_NE(Out.find("deept_test_ms_sum 5050\n"), std::string::npos);
  EXPECT_NE(Out.find("deept_test_ms_count 100\n"), std::string::npos);
  EXPECT_NE(Out.find("# TYPE deept_test_ms_min gauge\n"
                     "deept_test_ms_min 1\n"),
            std::string::npos);
  EXPECT_NE(Out.find("# TYPE deept_test_ms_max gauge\n"
                     "deept_test_ms_max 100\n"),
            std::string::npos);
}

TEST(PrometheusText, EmptyHistogramEmitsFiniteZeros) {
  Metrics M;
  M.histogram("test.empty");
  std::string Out = prometheusText(M);
  // An empty histogram must never leak NaN into the exposition.
  EXPECT_EQ(Out.find("NaN"), std::string::npos);
  EXPECT_NE(Out.find("deept_test_empty{quantile=\"0.5\"} 0\n"),
            std::string::npos);
  EXPECT_NE(Out.find("deept_test_empty_count 0\n"), std::string::npos);
  EXPECT_NE(Out.find("deept_test_empty_sum 0\n"), std::string::npos);
}

TEST(PrometheusText, DeterministicSortedEachInstrumentOnce) {
  Metrics M;
  // Register out of order; snapshots sort by name.
  M.counter("test.z").add(1);
  M.counter("test.a").add(2);
  M.gauge("test.m").set(3);
  M.histogram("test.h").observe(4);
  std::string Out = prometheusText(M);
  EXPECT_EQ(Out, prometheusText(M)); // reproducible
  EXPECT_LT(Out.find("deept_test_a"), Out.find("deept_test_z"));
  // Exactly one TYPE header per instrument (histograms add _min/_max
  // companion gauges, counted separately).
  EXPECT_EQ(countOccurrences(Out, "# TYPE deept_test_a counter"), 1u);
  EXPECT_EQ(countOccurrences(Out, "# TYPE deept_test_z counter"), 1u);
  EXPECT_EQ(countOccurrences(Out, "# TYPE deept_test_m gauge"), 1u);
  EXPECT_EQ(countOccurrences(Out, "# TYPE deept_test_h summary"), 1u);
  EXPECT_EQ(countOccurrences(Out, "# TYPE deept_test_h_min gauge"), 1u);
  EXPECT_EQ(countOccurrences(Out, "# TYPE deept_test_h_max gauge"), 1u);
}

TEST(PrometheusFromStatsJson, RoundTripsTheRegistryJson) {
  Metrics M;
  M.counter("rt.calls").add(5);
  M.gauge("rt.peak").set(2.25);
  Histogram &H = M.histogram("rt.width");
  H.observe(1.0);
  H.observe(3.0);

  // The bare registry object (what Metrics::toJson emits) is accepted.
  JsonValue Doc;
  std::string Err;
  ASSERT_TRUE(parseJson(M.toJson(), Doc, &Err)) << Err;
  std::string Out;
  ASSERT_TRUE(prometheusFromStatsJson(Doc, Out, &Err)) << Err;
  EXPECT_EQ(Out, prometheusText(M));
}

TEST(PrometheusFromStatsJson, AcceptsFullStatsDocument) {
  Metrics M;
  M.counter("rt.calls").add(1);
  std::string Wrapped = "{\"command\":\"certify\",\"metrics\":" + M.toJson() +
                        "}";
  JsonValue Doc;
  std::string Err;
  ASSERT_TRUE(parseJson(Wrapped, Doc, &Err)) << Err;
  std::string Out;
  ASSERT_TRUE(prometheusFromStatsJson(Doc, Out, &Err)) << Err;
  EXPECT_NE(Out.find("deept_rt_calls 1\n"), std::string::npos);
}

TEST(PrometheusFromStatsJson, RejectsNonStatsDocuments) {
  JsonValue Doc;
  std::string Err;
  ASSERT_TRUE(parseJson("{\"traceEvents\":[]}", Doc, &Err)) << Err;
  std::string Out;
  std::string Why;
  EXPECT_FALSE(prometheusFromStatsJson(Doc, Out, &Why));
  EXPECT_FALSE(Why.empty());
}

} // namespace
