//===- tests/kernels_test.cpp - SIMD kernel equivalence + f32 mode -*- C++ -*-===//
//
// Tests of the SIMD execution layer: each available kernel table must be
// 0-ULP identical to the lane-ordered scalar emulation of its reductions;
// the elementwise kernels must be bit-identical across every ISA; radii
// must be thread-count invariant within each ISA; and the sound f32 mode
// must produce intervals that enclose the f64 intervals -- never
// certifying anything double precision falsifies.
//
//===----------------------------------------------------------------------===//

#include "data/SyntheticCorpus.h"
#include "nn/Serialize.h"
#include "nn/Transformer.h"
#include "support/Fp.h"
#include "support/Metrics.h"
#include "support/Parallel.h"
#include "support/Rng.h"
#include "tensor/Kernels.h"
#include "tensor/Matrix.h"
#include "verify/DeepT.h"
#include "zono/DotProduct.h"
#include "zono/Elementwise.h"
#include "zono/Zonotope.h"

#include <bit>
#include <cstdint>

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <string>
#include <vector>

using namespace deept;
using support::ThreadPool;
using tensor::Isa;
using tensor::Kernels;
using tensor::Matrix;

namespace {

class ScopedThreads {
public:
  explicit ScopedThreads(size_t N) : Prev(ThreadPool::global().threadCount()) {
    ThreadPool::global().setThreadCount(N);
  }
  ~ScopedThreads() { ThreadPool::global().setThreadCount(Prev); }

private:
  size_t Prev;
};

class ScopedIsa {
public:
  explicit ScopedIsa(Isa I) : Prev(tensor::currentIsa()) {
    EXPECT_TRUE(tensor::setIsa(I));
  }
  ~ScopedIsa() { tensor::setIsa(Prev); }

private:
  Isa Prev;
};

std::vector<Isa> availableIsas() {
  std::vector<Isa> Out;
  for (Isa I : {Isa::Scalar, Isa::Avx2, Isa::Avx512})
    if (tensor::isaAvailable(I))
      Out.push_back(I);
  return Out;
}

std::vector<double> randomVec(size_t N, support::Rng &Rng, double ZeroProb = 0.0) {
  std::vector<double> V(N);
  for (double &X : V) {
    X = Rng.gaussian() * std::exp(Rng.gaussian());
    if (ZeroProb > 0.0 && Rng.uniform() < ZeroProb)
      X = 0.0;
  }
  return V;
}

// Sizes straddling every remainder path of the 4- and 8-lane kernels.
const size_t Sizes[] = {0, 1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 31, 33, 64, 100, 257};

TEST(KernelDispatch, ParseIsaStrict) {
  Isa I = Isa::Scalar;
  std::string Err;
  EXPECT_TRUE(tensor::parseIsa("scalar", I, &Err));
  EXPECT_EQ(I, Isa::Scalar);
  EXPECT_TRUE(tensor::parseIsa("avx2", I, &Err));
  EXPECT_EQ(I, Isa::Avx2);
  EXPECT_TRUE(tensor::parseIsa("avx512", I, &Err));
  EXPECT_EQ(I, Isa::Avx512);
  EXPECT_TRUE(tensor::parseIsa("native", I, &Err));
  EXPECT_EQ(I, tensor::bestAvailableIsa());
  for (const char *Bad : {"", "AVX2", "sse", "avx", "scalar ", "2", "auto"}) {
    EXPECT_FALSE(tensor::parseIsa(Bad, I, &Err)) << "'" << Bad << "'";
    EXPECT_NE(Err.find(Bad), std::string::npos)
        << "error should echo the bad token: " << Err;
  }
}

TEST(KernelDispatch, ParseFpPrecisionStrict) {
  support::FpPrecision P = support::FpPrecision::F64;
  std::string Err;
  EXPECT_TRUE(support::parseFpPrecision("f64", P, &Err));
  EXPECT_EQ(P, support::FpPrecision::F64);
  EXPECT_TRUE(support::parseFpPrecision("f32", P, &Err));
  EXPECT_EQ(P, support::FpPrecision::F32);
  for (const char *Bad : {"", "F32", "f16", "double", "32", "f32 "}) {
    EXPECT_FALSE(support::parseFpPrecision(Bad, P, &Err)) << "'" << Bad << "'";
    EXPECT_NE(Err.find(Bad), std::string::npos) << Err;
  }
}

TEST(KernelDispatch, SetIsaRejectsUnavailableAndUpdatesGauge) {
  for (Isa I : {Isa::Avx2, Isa::Avx512})
    if (!tensor::isaAvailable(I)) {
      std::string Err;
      EXPECT_FALSE(tensor::setIsa(I, &Err));
      EXPECT_FALSE(Err.empty());
    }
  for (Isa I : availableIsas()) {
    ScopedIsa S(I);
    EXPECT_EQ(tensor::currentIsa(), I);
    EXPECT_EQ(support::Metrics::global().gauge("kernel.isa").value(),
              static_cast<double>(I));
  }
}

/// Dot and Sum must match the lane-ordered scalar emulation bit-for-bit
/// on every available ISA, for every vector-remainder shape.
TEST(KernelEquivalence, ReductionsMatchLaneOrderedEmulation) {
  support::Rng Rng(0x51D0);
  for (Isa I : availableIsas()) {
    ScopedIsa S(I);
    const Kernels &K = tensor::kernels();
    ASSERT_EQ(K.Tag, I);
    for (size_t N : Sizes) {
      std::vector<double> X = randomVec(N, Rng), Y = randomVec(N, Rng);
      double Dot = K.Dot(X.data(), Y.data(), N);
      double Ref = tensor::detail::dotLanes(X.data(), Y.data(), N, K.Lanes);
      EXPECT_EQ(Dot, Ref) << "Dot isa=" << tensor::isaName(I) << " N=" << N;
      double Sum = K.Sum(X.data(), N);
      double SRef = tensor::detail::sumLanes(X.data(), N, K.Lanes);
      EXPECT_EQ(Sum, SRef) << "Sum isa=" << tensor::isaName(I) << " N=" << N;
    }
  }
}

/// DotTransposedB must equal a per-element dotLanes reference (with the
/// zero-row skip) on every ISA, in both accumulate modes.
TEST(KernelEquivalence, DotTransposedBMatchesEmulation) {
  support::Rng Rng(0xD07B);
  struct Shape {
    size_t N, M, D;
  };
  const Shape Shapes[] = {{1, 1, 1},  {3, 5, 7},   {4, 4, 8},  {5, 9, 16},
                          {7, 13, 17}, {2, 4, 100}, {6, 3, 33}, {8, 8, 1}};
  for (Isa I : availableIsas()) {
    ScopedIsa S(I);
    const Kernels &K = tensor::kernels();
    for (const Shape &Sh : Shapes) {
      // ZeroProb high enough that whole rows of A go zero sometimes,
      // exercising the row-skip path.
      std::vector<double> A = randomVec(Sh.N * Sh.D, Rng, 0.4);
      if (Sh.N > 1) // force at least one all-zero row
        std::fill(A.begin(), A.begin() + Sh.D, 0.0);
      std::vector<double> B = randomVec(Sh.M * Sh.D, Rng);
      std::vector<double> Seed = randomVec(Sh.N * Sh.M, Rng);
      for (bool Accumulate : {false, true}) {
        // When not accumulating, C may start uninitialized -- seed it with
        // garbage to verify the kernel overwrites (or zero-fills) every
        // row, per the contract in tensor/Kernels.h.
        std::vector<double> C =
            Accumulate ? Seed : std::vector<double>(Sh.N * Sh.M, -777.0);
        K.DotTransposedB(A.data(), Sh.N, B.data(), Sh.M, Sh.D, C.data(),
                         Accumulate);
        std::vector<double> Ref = Accumulate
                                      ? Seed
                                      : std::vector<double>(Sh.N * Sh.M, 0.0);
        for (size_t R = 0; R < Sh.N; ++R) {
          const double *ARow = A.data() + R * Sh.D;
          bool AllZero = true;
          for (size_t Kk = 0; Kk < Sh.D && AllZero; ++Kk)
            AllZero = ARow[Kk] == 0.0;
          if (AllZero)
            continue; // untouched when accumulating, zero-filled otherwise
          for (size_t J = 0; J < Sh.M; ++J) {
            double V = tensor::detail::dotLanes(ARow, B.data() + J * Sh.D,
                                                Sh.D, K.Lanes);
            if (Accumulate)
              Ref[R * Sh.M + J] += V;
            else
              Ref[R * Sh.M + J] = V;
          }
        }
        EXPECT_EQ(std::memcmp(C.data(), Ref.data(),
                              C.size() * sizeof(double)),
                  0)
            << "DotTransposedB isa=" << tensor::isaName(I) << " N=" << Sh.N
            << " M=" << Sh.M << " D=" << Sh.D << " acc=" << Accumulate;
      }
    }
  }
}

/// The elementwise kernels carry no reassociation, so their bits must
/// agree with the scalar table on every ISA.
TEST(KernelEquivalence, ElementwiseBitIdenticalAcrossIsas) {
  support::Rng Rng(0xE1E3);
  for (size_t N : Sizes) {
    std::vector<double> X = randomVec(N, Rng), G = randomVec(N, Rng);
    std::vector<double> Y0 = randomVec(N, Rng);
    std::vector<double> V4 = randomVec(4, Rng);
    std::vector<double> C0 = randomVec(N, Rng), C1 = randomVec(N, Rng);
    std::vector<double> C2 = randomVec(N, Rng), C3 = randomVec(N, Rng);
    double A = Rng.gaussian();
    double Mean = Rng.gaussian();

    struct Snapshot {
      std::vector<double> Axpy, A40, A41, A42, A43, Sub, Abs, AccA, AccS,
          AccM;
      std::vector<float> FAbs, FSq, FMax;
    };
    auto Run = [&](const Kernels &K) {
      Snapshot S;
      S.Axpy = Y0;
      K.Axpy(A, X.data(), S.Axpy.data(), N);
      S.A40 = C0;
      S.A41 = C1;
      S.A42 = C2;
      S.A43 = C3;
      K.Axpy4(V4.data(), X.data(), S.A40.data(), S.A41.data(), S.A42.data(),
              S.A43.data(), N);
      S.Sub.resize(N);
      K.SubScale(X.data(), Mean, G.data(), S.Sub.data(), N);
      S.Abs.resize(N);
      K.AbsRow(X.data(), S.Abs.data(), N);
      S.AccA = G;
      K.AccAbs(X.data(), S.AccA.data(), N);
      S.AccS = G;
      K.AccSq(X.data(), S.AccS.data(), N);
      S.AccM.assign(N, 0.0);
      K.AccMaxAbs(X.data(), S.AccM.data(), N);
      S.FAbs.assign(N, 1.5f);
      K.AccAbsF32(X.data(), S.FAbs.data(), N);
      S.FSq.assign(N, 1.5f);
      K.AccSqF32(X.data(), S.FSq.data(), N);
      S.FMax.assign(N, 0.0f);
      K.AccMaxAbsF32(X.data(), S.FMax.data(), N);
      return S;
    };

    Snapshot Want;
    {
      ScopedIsa S(Isa::Scalar);
      Want = Run(tensor::kernels());
    }
    for (Isa I : availableIsas()) {
      if (I == Isa::Scalar)
        continue;
      ScopedIsa S(I);
      Snapshot Got = Run(tensor::kernels());
      auto Same = [&](const auto &GotV, const auto &WantV, const char *What) {
        ASSERT_EQ(GotV.size(), WantV.size());
        EXPECT_EQ(std::memcmp(GotV.data(), WantV.data(),
                              GotV.size() * sizeof(GotV[0])),
                  0)
            << What << " isa=" << tensor::isaName(I) << " N=" << N;
      };
      Same(Got.Axpy, Want.Axpy, "Axpy");
      Same(Got.A40, Want.A40, "Axpy4.C0");
      Same(Got.A41, Want.A41, "Axpy4.C1");
      Same(Got.A42, Want.A42, "Axpy4.C2");
      Same(Got.A43, Want.A43, "Axpy4.C3");
      Same(Got.Sub, Want.Sub, "SubScale");
      Same(Got.Abs, Want.Abs, "AbsRow");
      Same(Got.AccA, Want.AccA, "AccAbs");
      Same(Got.AccS, Want.AccS, "AccSq");
      Same(Got.AccM, Want.AccM, "AccMaxAbs");
      Same(Got.FAbs, Want.FAbs, "AccAbsF32");
      Same(Got.FSq, Want.FSq, "AccSqF32");
      Same(Got.FMax, Want.FMax, "AccMaxAbsF32");
    }
  }
}

/// The fused kernels (RowSums, Axpy4K, CascadeDense) exist to cut
/// indirect-dispatch counts, not to change arithmetic: each must be
/// bit-identical to the composition of the unfused kernels it replaces,
/// on every ISA.
TEST(KernelEquivalence, FusedKernelsMatchUnfusedComposition) {
  support::Rng Rng(0xF05E);
  for (Isa I : availableIsas()) {
    ScopedIsa S(I);
    const Kernels &K = tensor::kernels();

    // RowSums == Sum per row.
    for (size_t R : {1u, 3u, 7u}) {
      for (size_t C : {1u, 5u, 12u, 33u}) {
        std::vector<double> X = randomVec(R * C, Rng);
        std::vector<double> Got(R, -777.0), Want(R);
        K.RowSums(X.data(), R, C, Got.data());
        for (size_t Q = 0; Q < R; ++Q)
          Want[Q] = K.Sum(X.data() + Q * C, C);
        EXPECT_EQ(std::memcmp(Got.data(), Want.data(), R * sizeof(double)),
                  0)
            << "RowSums isa=" << tensor::isaName(I) << " R=" << R
            << " C=" << C;
      }
    }

    // Axpy4K == Axpy4 once per k, ascending.
    {
      size_t KN = 9, M = 13;
      std::vector<double> A0 = randomVec(KN, Rng), A1 = randomVec(KN, Rng);
      std::vector<double> A2 = randomVec(KN, Rng), A3 = randomVec(KN, Rng);
      std::vector<double> B = randomVec(KN * M, Rng);
      std::vector<double> Seed = randomVec(4 * M, Rng);
      std::vector<double> Got = Seed, Want = Seed;
      size_t K0 = 2, K1 = 8;
      K.Axpy4K(A0.data(), A1.data(), A2.data(), A3.data(), K0, K1, B.data(),
               Got.data(), Got.data() + M, Got.data() + 2 * M,
               Got.data() + 3 * M, M);
      for (size_t Kk = K0; Kk < K1; ++Kk) {
        double V[4] = {A0[Kk], A1[Kk], A2[Kk], A3[Kk]};
        K.Axpy4(V, B.data() + Kk * M, Want.data(), Want.data() + M,
                Want.data() + 2 * M, Want.data() + 3 * M, M);
      }
      EXPECT_EQ(std::memcmp(Got.data(), Want.data(), 4 * M * sizeof(double)),
                0)
          << "Axpy4K isa=" << tensor::isaName(I);
    }

    // CascadeDense == AbsRow / zero-skip / 1-row DotTransposedB /
    // accumulate per symbol, for each norm mode.
    for (double Q : {1.0, 2.0, Matrix::InfNorm}) {
      size_t SymN = 5, D = 11, M = 7, Stride = 2 * D;
      std::vector<double> A = randomVec(SymN * Stride, Rng, 0.3);
      std::fill(A.begin() + Stride, A.begin() + Stride + D,
                0.0); // an all-zero slice exercises the skip
      std::vector<double> B = randomVec(M * D, Rng);
      std::vector<double> Seed = randomVec(M, Rng);
      for (double &V : Seed)
        V = std::fabs(V); // the cascade accumulator is nonnegative
      std::vector<double> AbsS(D), T(M);
      std::vector<double> Got = Seed, Want = Seed;
      K.CascadeDense(A.data(), SymN, Stride, B.data(), M, D, Q, AbsS.data(),
                     T.data(), Got.data());
      for (size_t Sym = 0; Sym < SymN; ++Sym) {
        K.AbsRow(A.data() + Sym * Stride, AbsS.data(), D);
        bool AllZero = true;
        for (size_t Kk = 0; Kk < D && AllZero; ++Kk)
          AllZero = AbsS[Kk] == 0.0;
        if (AllZero)
          continue;
        K.DotTransposedB(AbsS.data(), 1, B.data(), M, D, T.data(), false);
        if (Q == 1.0)
          K.Axpy(1.0, T.data(), Want.data(), M);
        else if (Q == 2.0)
          K.AccSq(T.data(), Want.data(), M);
        else
          K.AccMaxAbs(T.data(), Want.data(), M);
      }
      EXPECT_EQ(std::memcmp(Got.data(), Want.data(), M * sizeof(double)), 0)
          << "CascadeDense isa=" << tensor::isaName(I) << " Q=" << Q;
    }
  }
}

/// The whole-plane fused kernel must reproduce the per-plane
/// DotTransposedB calls bit-for-bit: same zero-row fill/skip contract,
/// both accumulate modes, with and without the packing scratch, for the
/// shared-A (phi A-half), shared-B (phi B-half) and fully strided operand
/// layouts, on every ISA.
TEST(KernelEquivalence, DotPlanesFusedMatchesPerPlaneCalls) {
  support::Rng Rng(0xFA57);
  struct Shape {
    size_t N, M, D, S;
  };
  const Shape Shapes[] = {{1, 1, 1, 1},  {3, 5, 7, 4},  {4, 4, 8, 3},
                          {5, 9, 16, 2}, {7, 3, 17, 5}, {2, 4, 33, 6}};
  for (Isa I : availableIsas()) {
    ScopedIsa Sc(I);
    const Kernels &K = tensor::kernels();
    for (const Shape &Sh : Shapes) {
      // Enough zeros that whole rows (and whole planes) go zero sometimes.
      std::vector<double> AShared = randomVec(Sh.N * Sh.D, Rng, 0.4);
      if (Sh.N > 1) // force the zero-flag hoist to see a zero row
        std::fill(AShared.begin(), AShared.begin() + Sh.D, 0.0);
      std::vector<double> APlanes = randomVec(Sh.S * Sh.N * Sh.D, Rng, 0.4);
      std::vector<double> BShared = randomVec(Sh.M * Sh.D, Rng);
      std::vector<double> BPlanes = randomVec(Sh.S * Sh.M * Sh.D, Rng);
      std::vector<double> Seed = randomVec(Sh.S * Sh.N * Sh.M, Rng);
      std::vector<double> Pack(tensor::dotPlanesPackDoubles(Sh.N, Sh.M, Sh.D));
      struct Layout {
        const char *Name;
        const double *A;
        size_t StrideA;
        const double *B;
        size_t StrideB;
      };
      const Layout Layouts[] = {
          {"sharedA", AShared.data(), 0, BPlanes.data(), Sh.M * Sh.D},
          {"sharedB", APlanes.data(), Sh.N * Sh.D, BShared.data(), 0},
          {"strided", APlanes.data(), Sh.N * Sh.D, BPlanes.data(),
           Sh.M * Sh.D},
      };
      for (const Layout &L : Layouts) {
        for (bool Accumulate : {false, true}) {
          for (bool UsePack : {false, true}) {
            std::vector<double> Got =
                Accumulate ? Seed
                           : std::vector<double>(Sh.S * Sh.N * Sh.M, -777.0);
            K.DotPlanesTransposedB(L.A, L.StrideA, Sh.N, L.B, L.StrideB,
                                   Sh.M, Sh.D, Sh.S, Got.data(), Sh.N * Sh.M,
                                   Accumulate,
                                   UsePack ? Pack.data() : nullptr);
            std::vector<double> Want =
                Accumulate ? Seed
                           : std::vector<double>(Sh.S * Sh.N * Sh.M, -777.0);
            for (size_t Sym = 0; Sym < Sh.S; ++Sym)
              K.DotTransposedB(L.A + Sym * L.StrideA, Sh.N,
                               L.B + Sym * L.StrideB, Sh.M, Sh.D,
                               Want.data() + Sym * Sh.N * Sh.M, Accumulate);
            EXPECT_EQ(std::memcmp(Got.data(), Want.data(),
                                  Got.size() * sizeof(double)),
                      0)
                << "DotPlanesTransposedB isa=" << tensor::isaName(I)
                << " layout=" << L.Name << " N=" << Sh.N << " M=" << Sh.M
                << " D=" << Sh.D << " S=" << Sh.S << " acc=" << Accumulate
                << " pack=" << UsePack;
          }
        }
      }
    }
  }
}

/// RowScale is elementwise (one multiply per entry, no reduction), so its
/// bits must match the plain scalar products on every ISA, for strided
/// row batches and every remainder shape.
TEST(KernelEquivalence, RowScaleBitIdenticalAcrossIsas) {
  support::Rng Rng(0x5CA1E);
  for (size_t N : Sizes) {
    size_t Stride = N + 3, R = 3;
    std::vector<double> Lambda = randomVec(N, Rng);
    std::vector<double> Base = randomVec(R * Stride, Rng);
    std::vector<double> Want = Base;
    for (size_t Q = 0; Q < R; ++Q)
      for (size_t J = 0; J < N; ++J)
        Want[Q * Stride + J] = Base[Q * Stride + J] * Lambda[J];
    for (Isa I : availableIsas()) {
      ScopedIsa S(I);
      std::vector<double> Rows = Base;
      tensor::kernels().RowScale(Lambda.data(), Rows.data(), R, Stride, N);
      EXPECT_EQ(std::memcmp(Rows.data(), Want.data(),
                            Rows.size() * sizeof(double)),
                0)
          << "RowScale isa=" << tensor::isaName(I) << " N=" << N;
    }
  }
}

/// Two zonotopes sharing one noise-symbol ancestry whose eps storage mixes
/// Dense, Diag and Zero blocks on both sides -- the realistic dotRows
/// operand shape (attention Q . K^T after elementwise + matmul layers).
void makeDotOperands(double P, zono::Zonotope &A, zono::Zonotope &B) {
  support::Rng Rng(0xD07F);
  Matrix Center = Matrix::randn(4, 6, Rng, 0.5);
  zono::Zonotope Z = zono::Zonotope::lpBall(Center, P, 0.05);
  Z = zono::applyTanh(Z); // Diag block on the shared prefix
  Matrix WA = Matrix::randn(6, 6, Rng, 0.4);
  A = zono::applyTanh(Z.matmulRightConst(WA)); // Dense + fresh Diag
  Matrix WB = Matrix::randn(6, 6, Rng, 0.4);
  B = Z.matmulRightConst(WB); // Dense blocks, missing A's later symbols
}

/// Exact equality of two zonotopes, densified for comparison.
::testing::AssertionResult zonoBitsEqual(const zono::Zonotope &A,
                                         const zono::Zonotope &B) {
  if (A.rows() != B.rows() || A.cols() != B.cols() ||
      A.numPhi() != B.numPhi() || A.numEps() != B.numEps())
    return ::testing::AssertionFailure() << "shape or symbol counts differ";
  auto Cmp = [](const char *What, const Matrix &X,
                const Matrix &Y) -> ::testing::AssertionResult {
    if (X.size() != Y.size())
      return ::testing::AssertionFailure() << What << " sizes differ";
    if (std::memcmp(X.data(), Y.data(), X.size() * sizeof(double)) != 0)
      return ::testing::AssertionFailure() << What << " bits differ";
    return ::testing::AssertionSuccess();
  };
  if (auto R = Cmp("center", A.center(), B.center()); !R)
    return R;
  if (auto R = Cmp("phi", A.phiCoeffs(), B.phiCoeffs()); !R)
    return R;
  return Cmp("eps", A.epsCoeffs(), B.epsCoeffs());
}

/// dotRows through the whole-plane fused path must not depend on the eps
/// block structure (blocks vs force-densified operands) or on the thread
/// count, for either method, on any ISA. Covers the stretch-batched Dense
/// runs, the Diag scatter rows and the Zero passthrough together.
TEST(KernelEquivalence, DotRowsBitIdenticalAcrossBlockMixesAndThreads) {
  for (Isa I : availableIsas()) {
    ScopedIsa Sc(I);
    for (auto Method : {zono::DotMethod::Fast, zono::DotMethod::Precise}) {
      for (double P : {2.0, Matrix::InfNorm}) {
        zono::DotOptions Opts;
        Opts.Method = Method;
        zono::Zonotope A, B;
        makeDotOperands(P, A, B);
        ASSERT_GT(A.epsBlockCount(), 1u);
        zono::Zonotope Ref;
        {
          ScopedThreads T(1);
          Ref = zono::dotRows(A, B, Opts);
        }
        // Densified twins: same abstract value, single Dense block.
        zono::Zonotope AD = A, BD = B;
        AD.epsCoeffs();
        BD.epsCoeffs();
        {
          ScopedThreads T(1);
          EXPECT_TRUE(zonoBitsEqual(Ref, zono::dotRows(AD, BD, Opts)))
              << "blocks vs dense, isa=" << tensor::isaName(I);
        }
        for (size_t Threads : {2u, 8u}) {
          ScopedThreads T(Threads);
          EXPECT_TRUE(zonoBitsEqual(Ref, zono::dotRows(A, B, Opts)))
              << "threads=" << Threads << " isa=" << tensor::isaName(I);
        }
      }
    }
  }
}

/// The FLOP estimate must be block-aware: a Diag/Zero-heavy eps tail does
/// O(N + M) work per symbol, so it must charge far less than the same
/// abstract value pushed through with one dense block.
TEST(KernelEquivalence, DotRowsFlopsEstIsBlockAware) {
  zono::Zonotope A, B;
  makeDotOperands(2.0, A, B);
  zono::Zonotope AD = A, BD = B;
  AD.epsCoeffs();
  BD.epsCoeffs();
  support::Counter &Flops =
      support::Metrics::global().counter("zono.dot.flops_est");
  double Start = Flops.value();
  zono::dotRows(A, B);
  double BlockFlops = Flops.value() - Start;
  Start = Flops.value();
  zono::dotRows(AD, BD);
  double DenseFlops = Flops.value() - Start;
  EXPECT_GT(BlockFlops, 0.0);
  EXPECT_LT(BlockFlops, DenseFlops)
      << "block-aware estimate should be cheaper than the densified run";
}

/// A small zonotope with both phi and eps symbols pushed through linear +
/// ReLU transformers -- the realistic radii workload.
zono::Zonotope makeZonotope(double P, support::Rng &Rng) {
  Matrix Center = Matrix::randn(6, 12, Rng);
  zono::Zonotope Z = zono::Zonotope::lpBallOnRow(Center, 1, P, 0.1);
  Matrix W = Matrix::randn(12, 10, Rng);
  Z = Z.matmulRightConst(W);
  Z = zono::applyRelu(std::move(Z)); // introduces eps symbols
  Matrix W2 = Matrix::randn(10, 8, Rng);
  return Z.matmulRightConst(W2);
}

/// Per-ISA thread-count invariance: radii bits must not depend on the
/// pool size under any kernel table.
TEST(KernelEquivalence, RadiiBitIdenticalAcrossThreadCountsPerIsa) {
  for (Isa I : availableIsas()) {
    ScopedIsa S(I);
    for (double P : {1.0, 2.0, Matrix::InfNorm}) {
      support::Rng Rng(0xAD11);
      zono::Zonotope Z = makeZonotope(P, Rng);
      Matrix R1;
      {
        ScopedThreads T(1);
        R1 = Z.radii();
      }
      for (size_t Threads : {2u, 8u}) {
        ScopedThreads T(Threads);
        Matrix RN = Z.radii();
        ASSERT_EQ(RN.size(), R1.size());
        EXPECT_EQ(std::memcmp(RN.data(), R1.data(),
                              R1.size() * sizeof(double)),
                  0)
            << "radii differ at " << Threads << " threads, isa="
            << tensor::isaName(I) << " p=" << P;
      }
    }
  }
}

/// The f32-mode interval must enclose the f64-mode interval on randomized
/// zonotopes, on every ISA (the lifts cover scalar and SIMD error alike).
TEST(F32Soundness, RandomizedZonotopeBoundsEnclose) {
  for (Isa I : availableIsas()) {
    ScopedIsa S(I);
    for (double P : {1.0, 2.0, Matrix::InfNorm}) {
      for (uint64_t Seed : {1u, 2u, 3u, 4u}) {
        support::Rng Rng(0xF3200 + Seed * 977);
        zono::Zonotope Z = makeZonotope(P, Rng);
        Matrix Lo64, Hi64, Lo32, Hi32;
        Z.bounds(Lo64, Hi64);
        Matrix R64 = Z.radii();
        Matrix R32;
        {
          support::FpScope Fp(support::FpPrecision::F32);
          Z.bounds(Lo32, Hi32);
          R32 = Z.radii();
        }
        for (size_t V = 0; V < Lo64.size(); ++V) {
          EXPECT_LE(Lo32.data()[V], Lo64.data()[V])
              << "lower bound not enclosed, isa=" << tensor::isaName(I)
              << " p=" << P << " seed=" << Seed << " var=" << V;
          EXPECT_GE(Hi32.data()[V], Hi64.data()[V]) << "upper bound";
          EXPECT_GE(R32.data()[V], R64.data()[V]) << "radius";
          // The widening should also stay small: within a few parts in
          // a million of the radius (the lifts are ~2^-23-scale).
          EXPECT_LE(R32.data()[V],
                    R64.data()[V] * (1.0 + 1e-5) + 1e-6)
              << "f32 radius uselessly loose";
        }
      }
    }
  }
}

/// End-to-end escalation contract on a small trained-from-init model:
/// f32 mode never certifies a margin f64 falsifies, escalated falsify
/// verdicts are bit-identical to the f64 margin, and the counters move.
TEST(F32Soundness, VerifierEscalatesAndNeverFlipsVerdict) {
  data::SyntheticCorpus Corpus(data::CorpusConfig::sstLike(16));
  nn::TransformerConfig Cfg;
  Cfg.MaxLen = 16;
  Cfg.EmbedDim = 16;
  Cfg.NumHeads = 2;
  Cfg.HiddenDim = 16;
  Cfg.NumLayers = 2;
  support::Rng Rng(0x5eed);
  nn::TransformerModel Model =
      nn::TransformerModel::init(Cfg, Corpus.embeddings(), Rng);
  // An init-only model misclassifies many sentences outright (margin < 0
  // even at radius 0); sweep for one it gets right so the small radii in
  // the loop below actually certify.
  support::Rng SentRng(7);
  data::Sentence S;
  bool Found = false;
  for (int Guard = 0; Guard < 200 && !Found; ++Guard) {
    S = Corpus.sampleSentence(SentRng);
    Found = Model.classify(S.Tokens) == S.Label;
  }
  ASSERT_TRUE(Found) << "no correctly classified sentence in 200 samples";
  Matrix Emb = Model.embed(S.Tokens);

  verify::VerifierConfig VC64;
  VC64.NoiseReductionBudget = 128;
  verify::VerifierConfig VC32 = VC64;
  VC32.Precision = support::FpPrecision::F32;
  verify::DeepTVerifier V64(Model, VC64);
  verify::DeepTVerifier V32(Model, VC32);

  support::Counter &Jobs = support::Metrics::global().counter("prec.f32_jobs");
  support::Counter &Esc =
      support::Metrics::global().counter("prec.escalations");
  double JobsBefore = Jobs.value();
  double EscBefore = Esc.value();

  bool SawCertified = false, SawFalsified = false;
  // Sweep radii from comfortably-certified to comfortably-falsified.
  for (double R : {1e-4, 1e-3, 0.01, 0.05, 0.2, 0.8, 3.0}) {
    zono::Zonotope In = zono::Zonotope::lpBallOnRow(Emb, 0, 2.0, R);
    double M64 = V64.certifyMargin(In, S.Label);
    double M32 = V32.certifyMargin(In, S.Label);
    if (M64 <= 0.0) {
      // f64 falsifies: f32 must not certify, and since it escalates it
      // must return exactly the f64 margin.
      EXPECT_LE(M32, 0.0) << "f32 certified what f64 falsifies at R=" << R;
      EXPECT_EQ(M32, M64) << "escalated margin not f64-backed at R=" << R;
      SawFalsified = true;
    } else {
      // f64 certifies: f32's margin is computed on a wider interval, so
      // it can only be smaller (or escalate to exactly M64).
      EXPECT_LE(M32, M64) << "f32 margin exceeds f64 at R=" << R;
      SawCertified = true;
    }
  }
  EXPECT_TRUE(SawCertified) << "sweep never certified; widen radii";
  EXPECT_TRUE(SawFalsified) << "sweep never falsified; widen radii";
  EXPECT_GE(Jobs.value(), JobsBefore + 7.0);
  EXPECT_GE(Esc.value(), EscBefore + 1.0);
}

/// The cached SST model oracle from the issue: f32 certification on
/// sst_m12 must never flip a falsified verdict, across a radius sweep.
TEST(F32Soundness, CachedSstNeverCertifiesWhatF64Falsifies) {
  nn::TransformerModel Model;
  const std::string Candidates[] = {
      nn::defaultModelCacheDir() + "/sst_m12.dptm",
      "../bench/deept-model-cache/sst_m12.dptm",
      "../../bench/deept-model-cache/sst_m12.dptm",
  };
  bool Loaded = false;
  for (const std::string &Path : Candidates)
    if (nn::loadModel(Path, Model)) {
      Loaded = true;
      break;
    }
  if (!Loaded)
    GTEST_SKIP() << "cached sst_m12.dptm not found";

  data::SyntheticCorpus Corpus(
      data::CorpusConfig::sstLike(Model.Config.EmbedDim));
  support::Rng Rng(2);
  data::Sentence S = Corpus.sampleSentence(Rng);
  Matrix Emb = Model.embed(S.Tokens);

  verify::VerifierConfig VC64;
  VC64.NoiseReductionBudget = 256;
  verify::VerifierConfig VC32 = VC64;
  VC32.Precision = support::FpPrecision::F32;
  verify::DeepTVerifier V64(Model, VC64);
  verify::DeepTVerifier V32(Model, VC32);

  for (double P : {1.0, 2.0}) {
    for (double R : {0.005, 0.02, 0.1, 0.5, 2.0}) {
      zono::Zonotope In = zono::Zonotope::lpBallOnRow(Emb, 0, P, R);
      double M64 = V64.certifyMargin(In, S.Label);
      double M32 = V32.certifyMargin(In, S.Label);
      if (M64 <= 0.0)
        EXPECT_EQ(M32, M64)
            << "f32 did not escalate to the f64 verdict at p=" << P
            << " R=" << R;
      else
        EXPECT_LE(M32, M64) << "p=" << P << " R=" << R;
      EXPECT_EQ(M32 > 0.0 && M64 <= 0.0, false)
          << "f32 certified a falsified region at p=" << P << " R=" << R;
    }
  }
}

/// End-to-end regression pins for the whole-plane fused rewrite: margins
/// on the cached sst_m12 model must reproduce the pre-fusion release
/// bit-for-bit at the scalar ISA (the one table whose reduction order is
/// shared by every build). Values were captured from the prior release
/// with the deept_cli recipe: seed 2, word 0, eps 0.02, noise budget 600,
/// skipping misclassified sentences. Also asserts 1/2/8-thread identity
/// on the same margins.
TEST(KernelEquivalence, CachedSstMarginsBitIdenticalToPreFusionRelease) {
  nn::TransformerModel Model;
  const std::string Candidates[] = {
      nn::defaultModelCacheDir() + "/sst_m12.dptm",
      "../bench/deept-model-cache/sst_m12.dptm",
      "../../bench/deept-model-cache/sst_m12.dptm",
  };
  bool Loaded = false;
  for (const std::string &Path : Candidates)
    if (nn::loadModel(Path, Model)) {
      Loaded = true;
      break;
    }
  if (!Loaded)
    GTEST_SKIP() << "cached sst_m12.dptm not found";
  if (!tensor::isaAvailable(Isa::Scalar))
    GTEST_SKIP() << "scalar table unavailable";
  ScopedIsa Sc(Isa::Scalar);

  // The deept_cli sentence selection: sample with seed 2, keep the first
  // two sentences the model classifies correctly with word 0 in range.
  data::SyntheticCorpus Corpus(
      data::CorpusConfig::sstLike(Model.Config.EmbedDim));
  support::Rng Rng(2);
  std::vector<data::Sentence> Sentences;
  while (Sentences.size() < 2) {
    data::Sentence S = Corpus.sampleSentence(Rng);
    if (Model.classify(S.Tokens) != S.Label || S.Tokens.empty())
      continue;
    Sentences.push_back(S);
  }

  struct Pin {
    double P;
    zono::DotMethod Method;
    size_t Sentence;       // index into Sentences
    std::uint64_t Margin;  // expected margin bits at eps = 0.02
  };
  const Pin Pins[] = {
      {1.0, zono::DotMethod::Fast, 0, 0x40206eeab69d022aULL},
      {1.0, zono::DotMethod::Fast, 1, 0x40206eeaa9710f63ULL},
      {2.0, zono::DotMethod::Fast, 0, 0x40206eeab69c71a3ULL},
      {2.0, zono::DotMethod::Fast, 1, 0xc01ea8221cad9cf1ULL},
      {Matrix::InfNorm, zono::DotMethod::Fast, 0, 0xc02191d8066a3bb9ULL},
      {Matrix::InfNorm, zono::DotMethod::Fast, 1, 0xc02191d8066a3bb9ULL},
      {1.0, zono::DotMethod::Precise, 0, 0x40206eeab69d0231ULL},
  };
  for (const Pin &Pn : Pins) {
    const data::Sentence &S = Sentences[Pn.Sentence];
    verify::VerifierConfig VC;
    VC.NoiseReductionBudget = 600;
    VC.Method = Pn.Method;
    verify::DeepTVerifier V(Model, VC);
    Matrix Emb = Model.embed(S.Tokens);
    zono::Zonotope In = zono::Zonotope::lpBallOnRow(Emb, 0, Pn.P, 0.02);
    double Want = std::bit_cast<double>(Pn.Margin);
    double Margin1;
    {
      ScopedThreads T(1);
      Margin1 = V.certifyMargin(In, S.Label);
    }
    EXPECT_EQ(std::bit_cast<std::uint64_t>(Margin1), Pn.Margin)
        << "margin drifted from the pre-fusion release: p=" << Pn.P
        << " sentence=" << Pn.Sentence + 1 << " method="
        << (Pn.Method == zono::DotMethod::Fast ? "fast" : "precise")
        << " got=" << Margin1 << " want=" << Want;
    for (size_t Threads : {2u, 8u}) {
      ScopedThreads T(Threads);
      EXPECT_EQ(Margin1, V.certifyMargin(In, S.Label))
          << "margin differs at " << Threads << " threads, p=" << Pn.P;
    }
  }
}

} // namespace
