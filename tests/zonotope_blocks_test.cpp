//===- tests/zonotope_blocks_test.cpp - Block-storage properties -*- C++ -*-===//
//
// Property tests of the structured eps storage: every abstract transformer
// must produce bit-identical centers, coefficients and bounds whether its
// input keeps its Diag/Dense/Zero block structure or is force-densified
// first, at 1, 2 and 8 pool threads. This is the contract that lets the
// verifier skip structural zeros without changing a single certified bit.
//
//===----------------------------------------------------------------------===//

#include "support/Parallel.h"
#include "support/Rng.h"
#include "zono/DotProduct.h"
#include "zono/Elementwise.h"
#include "zono/Reduction.h"
#include "zono/Refinement.h"
#include "zono/Softmax.h"
#include "zono/Zonotope.h"

#include <gtest/gtest.h>

#include <functional>
#include <string>
#include <vector>

using namespace deept;
using support::ThreadPool;
using tensor::Matrix;
using zono::DotOptions;
using zono::Zonotope;

namespace {

/// Restores the pool's thread count on scope exit.
class ScopedThreads {
public:
  explicit ScopedThreads(size_t N) : Prev(ThreadPool::global().threadCount()) {
    ThreadPool::global().setThreadCount(N);
  }
  ~ScopedThreads() { ThreadPool::global().setThreadCount(Prev); }

private:
  size_t Prev;
};

constexpr size_t R = 4, C = 6;

/// A zonotope whose eps storage genuinely mixes block kinds, built through
/// the public transformer pipeline the verifier itself uses: fresh
/// elementwise symbols arrive as Diag blocks, a right-matmul turns earlier
/// blocks Dense, and a second elementwise pass appends another Diag block.
Zonotope blockBacked(double P) {
  support::Rng Rng(0xb10c);
  Matrix Center = Matrix::randn(R, C, Rng, 0.5);
  Zonotope Z = Zonotope::lpBall(Center, P, 0.05);
  Z = applyTanh(Z);
  Matrix W = Matrix::randn(C, C, Rng, 0.4);
  Z = Z.matmulRightConst(W);
  Z = applyTanh(Z);
  return Z;
}

/// The same abstract value with every block folded into the leading dense
/// matrix (epsCoeffs() densifies on access).
Zonotope densified(const Zonotope &Z) {
  Zonotope D = Z;
  D.epsCoeffs();
  return D;
}

::testing::AssertionResult matEq(const char *What, const Matrix &A,
                                 const Matrix &B) {
  if (A.rows() != B.rows() || A.cols() != B.cols())
    return ::testing::AssertionFailure()
           << What << ": shape " << A.rows() << "x" << A.cols() << " vs "
           << B.rows() << "x" << B.cols();
  for (size_t I = 0; I < A.rows() * A.cols(); ++I)
    if (A.flat(I) != B.flat(I)) // exact: bit-identical up to +-0.0
      return ::testing::AssertionFailure()
             << What << ": entry " << I << " differs: " << A.flat(I)
             << " vs " << B.flat(I);
  return ::testing::AssertionSuccess();
}

/// Exact equality of two zonotopes: shapes, centers, both coefficient
/// planes (densified for comparison) and the concrete bounds.
::testing::AssertionResult sameZono(const Zonotope &A, const Zonotope &B) {
  if (A.rows() != B.rows() || A.cols() != B.cols())
    return ::testing::AssertionFailure() << "view shape differs";
  if (A.numPhi() != B.numPhi() || A.numEps() != B.numEps())
    return ::testing::AssertionFailure()
           << "symbol counts differ: phi " << A.numPhi() << "/" << B.numPhi()
           << ", eps " << A.numEps() << "/" << B.numEps();
  if (::testing::AssertionResult Res = matEq("center", A.center(), B.center());
      !Res)
    return Res;
  if (::testing::AssertionResult Res =
          matEq("phi coeffs", A.phiCoeffs(), B.phiCoeffs());
      !Res)
    return Res;
  if (::testing::AssertionResult Res =
          matEq("eps coeffs", A.epsCoeffs(), B.epsCoeffs());
      !Res)
    return Res;
  Matrix ALo, AHi, BLo, BHi;
  A.bounds(ALo, AHi);
  B.bounds(BLo, BHi);
  if (::testing::AssertionResult Res = matEq("lower bounds", ALo, BLo); !Res)
    return Res;
  return matEq("upper bounds", AHi, BHi);
}

/// Runs \p Fn on a block-backed input and on its force-densified twin at
/// 1, 2 and 8 threads; every result must equal the dense serial reference.
void checkTransformer(
    const std::string &Name,
    const std::function<Zonotope(const Zonotope &)> &Fn) {
  for (double P : {2.0, Matrix::InfNorm}) {
    SCOPED_TRACE(Name + (P == 2.0 ? " (l2 input)" : " (linf input)"));
    Zonotope Blocks = blockBacked(P);
    ASSERT_GT(Blocks.epsBlockCount(), 1u)
        << "fixture lost its block structure";
    ASSERT_GT(Blocks.epsStructuredFraction(), 0.0);
    Zonotope Dense = densified(Blocks);
    ASSERT_TRUE(sameZono(Blocks, Dense));

    Zonotope Ref;
    {
      ScopedThreads T(1);
      Ref = Fn(Dense);
    }
    for (size_t Threads : {1, 2, 8}) {
      ScopedThreads T(Threads);
      SCOPED_TRACE("threads=" + std::to_string(Threads));
      EXPECT_TRUE(sameZono(Fn(Blocks), Ref));
      EXPECT_TRUE(sameZono(Fn(Dense), Ref));
    }
  }
}

TEST(ZonotopeBlocks, AffineTransformersMatchDensified) {
  support::Rng Rng(0xaff1);
  Matrix Const = Matrix::randn(R, C, Rng, 1.0);
  Matrix WRight = Matrix::randn(C, 5, Rng, 0.6);
  Matrix WLeft = Matrix::randn(3, R, Rng, 0.6);
  Matrix Gamma = Matrix::randn(1, C, Rng, 0.8);
  Matrix Bias = Matrix::randn(1, C, Rng, 0.8);

  checkTransformer("addConst",
                   [&](const Zonotope &Z) { return Z.addConst(Const); });
  checkTransformer("scale", [](const Zonotope &Z) { return Z.scale(-1.75); });
  checkTransformer("matmulRightConst", [&](const Zonotope &Z) {
    return Z.matmulRightConst(WRight);
  });
  checkTransformer("matmulLeftConst", [&](const Zonotope &Z) {
    return Z.matmulLeftConst(WLeft);
  });
  checkTransformer("subRowMean",
                   [](const Zonotope &Z) { return Z.subRowMean(); });
  checkTransformer("subRowMeanScale", [&](const Zonotope &Z) {
    return Z.subRowMeanScale(Gamma);
  });
  checkTransformer("subRowMeanScale == subRowMean+scaleColumns",
                   [&](const Zonotope &Z) {
                     return Z.subRowMean().scaleColumns(Gamma);
                   });
  checkTransformer("rowMeans", [](const Zonotope &Z) { return Z.rowMeans(); });
  checkTransformer("scaleColumns",
                   [&](const Zonotope &Z) { return Z.scaleColumns(Gamma); });
  checkTransformer("addRowBroadcast", [&](const Zonotope &Z) {
    return Z.addRowBroadcast(Bias);
  });
  checkTransformer("selectRow",
                   [](const Zonotope &Z) { return Z.selectRow(2); });
  checkTransformer("selectColRange",
                   [](const Zonotope &Z) { return Z.selectColRange(1, 4); });
  checkTransformer("transposedView",
                   [](const Zonotope &Z) { return Z.transposedView(); });
  checkTransformer("reshapedView",
                   [](const Zonotope &Z) { return Z.reshapedView(C, R); });
  checkTransformer("broadcastColTo", [](const Zonotope &Z) {
    return Z.rowMeans().broadcastColTo(C);
  });
  checkTransformer("pairwiseDiffExpand",
                   [](const Zonotope &Z) { return Z.pairwiseDiffExpand(); });
  checkTransformer("rowSumsTo", [](const Zonotope &Z) {
    return Z.pairwiseDiffExpand().rowSumsTo(R, C);
  });
  checkTransformer("rowSumBroadcast",
                   [](const Zonotope &Z) { return Z.rowSumBroadcast(); });
}

TEST(ZonotopeBlocks, AddSubConcatMatchDensified) {
  support::Rng Rng(0xadd5);
  Matrix Gamma = Matrix::randn(1, C, Rng, 0.7);
  // The second operand shares the first's noise symbols but has fresh
  // trailing ones of its own (tanh), so add() walks misaligned blocks.
  auto Second = [&](const Zonotope &Z) {
    return applyTanh(Z.scaleColumns(Gamma));
  };
  checkTransformer("add", [&](const Zonotope &Z) { return Z.add(Second(Z)); });
  checkTransformer("sub", [&](const Zonotope &Z) { return Z.sub(Second(Z)); });
  checkTransformer("concatCols", [&](const Zonotope &Z) {
    return Zonotope::concatCols({Z, Second(Z), Z.scaleColumns(Gamma)});
  });
}

TEST(ZonotopeBlocks, ElementwiseTransformersMatchDensified) {
  checkTransformer("relu", [](const Zonotope &Z) { return applyRelu(Z); });
  checkTransformer("tanh", [](const Zonotope &Z) { return applyTanh(Z); });
  checkTransformer("exp", [](const Zonotope &Z) { return applyExp(Z); });
  // Reciprocal and sqrt need strictly positive inputs.
  Matrix Shift(R, C, 4.0);
  checkTransformer("recip", [&](const Zonotope &Z) {
    return applyRecip(Z.addConst(Shift));
  });
  checkTransformer("sqrt", [&](const Zonotope &Z) {
    return applySqrt(Z.addConst(Shift));
  });
}

TEST(ZonotopeBlocks, DotProductAndMultiplicationMatchDensified) {
  support::Rng Rng(0xd07);
  Matrix Gamma = Matrix::randn(1, C, Rng, 0.7);
  DotOptions Fast; // DotMethod::Fast is the default
  checkTransformer("dotRows fast", [&](const Zonotope &Z) {
    return dotRows(Z, applyTanh(Z.scaleColumns(Gamma)), Fast);
  });
  checkTransformer("mulElementwise", [&](const Zonotope &Z) {
    return mulElementwise(Z, applyTanh(Z.scaleColumns(Gamma)), Fast);
  });
}

TEST(ZonotopeBlocks, SoftmaxAndRefinementMatchDensified) {
  checkTransformer("softmax stable", [](const Zonotope &Z) {
    return applySoftmax(Z, zono::SoftmaxOptions());
  });
  checkTransformer("softmax + sum refinement", [](const Zonotope &Z) {
    Zonotope Probs = applySoftmax(Z, zono::SoftmaxOptions());
    Zonotope CoLive = Z.subRowMean();
    zono::refineSoftmaxSum(Probs, {&CoLive});
    // Fold the co-live zonotope in so its rewritten symbols are part of
    // the compared result.
    return Zonotope::concatCols({Probs, CoLive});
  });
}

TEST(ZonotopeBlocks, NoiseReductionMatchesDensified) {
  checkTransformer("reduceEpsSymbols", [](const Zonotope &Z) {
    Zonotope Out = Z;
    zono::reduceEpsSymbols(Out, 4);
    return Out;
  });
}

} // namespace
