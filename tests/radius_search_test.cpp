//===- tests/radius_search_test.cpp - Certified radius search --*- C++ -*-===//
//
// Tests of verify::certifiedRadius: bracketing invariants against
// synthetic monotone predicates (the returned radius is sound -- never
// above the true threshold -- and tight to the bisection resolution),
// the degenerate always-false / always-true cases, and determinism of
// the search over a real verifier at several thread counts.
//
//===----------------------------------------------------------------------===//

#include "data/SyntheticCorpus.h"
#include "nn/Transformer.h"
#include "support/Parallel.h"
#include "support/Rng.h"
#include "verify/DeepT.h"
#include "verify/RadiusSearch.h"
#include "zono/Zonotope.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

using namespace deept;
using support::ThreadPool;
using tensor::Matrix;
using verify::RadiusSearchOptions;
using verify::certifiedRadius;

namespace {

class ScopedThreads {
public:
  explicit ScopedThreads(size_t N) : Prev(ThreadPool::global().threadCount()) {
    ThreadPool::global().setThreadCount(N);
  }
  ~ScopedThreads() { ThreadPool::global().setThreadCount(Prev); }

private:
  size_t Prev;
};

TEST(RadiusSearch, RecoversMonotoneThreshold) {
  // For a monotone predicate "r <= T" the search must return a radius
  // that is certified (<= T) and within the bisection resolution of T.
  RadiusSearchOptions Opts;
  Opts.InitRadius = 0.01;
  Opts.MaxRadius = 64.0;
  Opts.BisectSteps = 20;
  for (double T : {0.004, 0.01, 0.37, 1.0, 1.7, 23.0}) {
    std::vector<double> Probes;
    double R = certifiedRadius(
        [&](double Radius) {
          Probes.push_back(Radius);
          return Radius <= T;
        },
        Opts);
    EXPECT_LE(R, T) << "unsound: returned radius above the threshold";
    EXPECT_NEAR(R, T, T * 1e-3) << "loose bracket for T=" << T;
    // Every probe stays inside the configured range.
    for (double P : Probes) {
      EXPECT_GE(P, Opts.MinRadius * 0.25);
      EXPECT_LE(P, Opts.MaxRadius);
    }
    // The returned radius was actually certified by a probe.
    EXPECT_NE(std::find(Probes.begin(), Probes.end(), R), Probes.end());
  }
}

TEST(RadiusSearch, AlwaysFalseReturnsZero) {
  size_t Calls = 0;
  double R = certifiedRadius([&](double) {
    ++Calls;
    return false;
  });
  EXPECT_EQ(R, 0.0);
  EXPECT_GT(Calls, 0u);
}

TEST(RadiusSearch, AlwaysTrueCapsAtMaxRadius) {
  RadiusSearchOptions Opts;
  Opts.InitRadius = 0.5;
  Opts.MaxRadius = 4.0;
  double R = certifiedRadius([](double) { return true; }, Opts);
  EXPECT_EQ(R, Opts.MaxRadius);
}

TEST(RadiusSearch, InitAtMaxRadiusDegenerateRange) {
  RadiusSearchOptions Opts;
  Opts.InitRadius = 2.0;
  Opts.MaxRadius = 2.0;
  EXPECT_EQ(certifiedRadius([](double) { return true; }, Opts), 2.0);
  EXPECT_EQ(certifiedRadius([](double) { return false; }, Opts), 0.0);
}

TEST(RadiusSearch, ShrinkPhaseFindsSmallThresholds) {
  // Thresholds far below InitRadius exercise the shrink-by-4 phase.
  RadiusSearchOptions Opts;
  Opts.InitRadius = 1.0;
  Opts.BisectSteps = 20;
  double T = 1e-4;
  double R = certifiedRadius([&](double Radius) { return Radius <= T; },
                             Opts);
  EXPECT_LE(R, T);
  EXPECT_GT(R, 0.0);
  EXPECT_NEAR(R, T, T * 1e-2);
}

TEST(RadiusSearch, DeterministicOverRealVerifierAcrossThreadCounts) {
  data::SyntheticCorpus Corpus(data::CorpusConfig::sstLike(16));
  nn::TransformerConfig Cfg;
  Cfg.MaxLen = 16;
  Cfg.EmbedDim = 16;
  Cfg.NumHeads = 2;
  Cfg.HiddenDim = 16;
  Cfg.NumLayers = 2;
  support::Rng Rng(0x5eed);
  nn::TransformerModel Model =
      nn::TransformerModel::init(Cfg, Corpus.embeddings(), Rng);
  support::Rng SentRng(7);
  data::Sentence S = Corpus.sampleSentence(SentRng);
  Matrix Emb = Model.embed(S.Tokens);

  verify::VerifierConfig VC;
  VC.NoiseReductionBudget = 128;
  verify::DeepTVerifier V(Model, VC);
  RadiusSearchOptions Opts;
  Opts.InitRadius = 0.05;
  Opts.BisectSteps = 3;
  Opts.MaxRadius = 8.0;
  auto Certify = [&](double Radius) {
    zono::Zonotope In = zono::Zonotope::lpBallOnRow(Emb, 0, 2.0, Radius);
    return V.certifyMargin(In, S.Label) > 0.0;
  };

  double R1;
  {
    ScopedThreads T(1);
    R1 = certifiedRadius(Certify, Opts);
  }
  for (size_t Threads : {2u, 8u}) {
    ScopedThreads T(Threads);
    EXPECT_EQ(R1, certifiedRadius(Certify, Opts))
        << "certified radius differs at " << Threads << " threads";
  }
}

} // namespace
