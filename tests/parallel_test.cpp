//===- tests/parallel_test.cpp - Thread pool and determinism ---*- C++ -*-===//
//
// Tests of the execution layer: parallelFor index coverage, bit-exact
// equivalence of the tiled GEMM kernels with a scalar reference, and the
// determinism contract -- certified margins must be bit-identical at any
// thread count.
//
//===----------------------------------------------------------------------===//

#include "data/SyntheticCorpus.h"
#include "nn/Serialize.h"
#include "nn/Transformer.h"
#include "support/Metrics.h"
#include "support/Parallel.h"
#include "support/Rng.h"
#include "tensor/Kernels.h"
#include "tensor/Matrix.h"
#include "verify/DeepT.h"
#include "zono/Zonotope.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <vector>

using namespace deept;
using support::ThreadPool;
using tensor::Matrix;

namespace {

/// Restores the pool's thread count on scope exit so a failing test does
/// not leak its setting into the rest of the suite.
class ScopedThreads {
public:
  explicit ScopedThreads(size_t N) : Prev(ThreadPool::global().threadCount()) {
    ThreadPool::global().setThreadCount(N);
  }
  ~ScopedThreads() { ThreadPool::global().setThreadCount(Prev); }

private:
  size_t Prev;
};

/// Pins the SIMD kernel table for a scope (tests comparing against
/// ascending-k scalar references must run the scalar table; wide-ISA
/// reductions are lane-reassociated and only bit-stable within an ISA).
class ScopedIsa {
public:
  explicit ScopedIsa(tensor::Isa I) : Prev(tensor::currentIsa()) {
    EXPECT_TRUE(tensor::setIsa(I));
  }
  ~ScopedIsa() { tensor::setIsa(Prev); }

private:
  tensor::Isa Prev;
};

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  struct Case {
    size_t Begin, End, Grain;
  };
  const Case Cases[] = {{0, 1000, 1},  {0, 1000, 7},   {0, 1000, 1000},
                        {0, 1000, 5000}, {3, 17, 4},   {10, 10, 8},
                        {0, 1, 1},       {5, 1024, 64}, {0, 100000, 1024}};
  for (size_t Threads : {1u, 2u, 8u}) {
    ScopedThreads T(Threads);
    for (const Case &C : Cases) {
      std::vector<std::atomic<int>> Hits(C.End > C.Begin ? C.End : 1);
      for (auto &H : Hits)
        H.store(0);
      support::parallelFor(C.Begin, C.End, C.Grain,
                           [&](size_t I0, size_t I1) {
                             ASSERT_LE(I0, I1);
                             for (size_t I = I0; I < I1; ++I)
                               Hits[I].fetch_add(1);
                           });
      for (size_t I = 0; I < Hits.size(); ++I)
        EXPECT_EQ(Hits[I].load(), I >= C.Begin && I < C.End ? 1 : 0)
            << "index " << I << " begin " << C.Begin << " end " << C.End
            << " grain " << C.Grain << " threads " << Threads;
    }
  }
}

TEST(ParallelFor, NestedCallsStaySerialAndCover) {
  ScopedThreads T(4);
  std::vector<std::atomic<int>> Hits(64 * 64);
  for (auto &H : Hits)
    H.store(0);
  support::parallelFor(0, 64, 4, [&](size_t I0, size_t I1) {
    for (size_t I = I0; I < I1; ++I)
      support::parallelFor(0, 64, 4, [&](size_t J0, size_t J1) {
        for (size_t J = J0; J < J1; ++J)
          Hits[I * 64 + J].fetch_add(1);
      });
  });
  for (auto &H : Hits)
    EXPECT_EQ(H.load(), 1);
}

TEST(ParallelFor, PoolTasksCounterAdvances) {
  ScopedThreads T(2);
  support::Counter &Tasks = support::Metrics::global().counter("pool.tasks");
  double Before = Tasks.value();
  support::parallelFor(0, 1000, 10, [](size_t, size_t) {});
  EXPECT_GE(Tasks.value(), Before + 100.0);
}

/// Naive triple-loop references with ascending-k accumulation: exactly
/// the summation order the tiled kernels must preserve.
Matrix refMatmul(const Matrix &A, const Matrix &B) {
  Matrix C(A.rows(), B.cols(), 0.0);
  for (size_t I = 0; I < A.rows(); ++I)
    for (size_t K = 0; K < A.cols(); ++K)
      for (size_t J = 0; J < B.cols(); ++J)
        C.at(I, J) += A.at(I, K) * B.at(K, J);
  return C;
}

Matrix refMatmulTransposedB(const Matrix &A, const Matrix &B) {
  Matrix C(A.rows(), B.rows(), 0.0);
  for (size_t I = 0; I < A.rows(); ++I)
    for (size_t J = 0; J < B.rows(); ++J)
      for (size_t K = 0; K < A.cols(); ++K)
        C.at(I, J) += A.at(I, K) * B.at(J, K);
  return C;
}

Matrix refMatmulTransposedA(const Matrix &A, const Matrix &B) {
  Matrix C(A.cols(), B.cols(), 0.0);
  for (size_t I = 0; I < A.cols(); ++I)
    for (size_t K = 0; K < A.rows(); ++K)
      for (size_t J = 0; J < B.cols(); ++J)
        C.at(I, J) += A.at(K, I) * B.at(K, J);
  return C;
}

void expectBitIdentical(const Matrix &Got, const Matrix &Want,
                        const char *What, size_t Threads) {
  ASSERT_EQ(Got.rows(), Want.rows());
  ASSERT_EQ(Got.cols(), Want.cols());
  EXPECT_EQ(std::memcmp(Got.data(), Want.data(),
                        Got.size() * sizeof(double)),
            0)
      << What << " differs from scalar reference at " << Threads
      << " threads";
}

TEST(TiledGemm, BitIdenticalToScalarReference) {
  // The naive references accumulate ascending-k in plain double, which is
  // what the scalar table preserves; kernels_test covers the wide ISAs
  // against their lane-ordered emulations.
  ScopedIsa Isa(tensor::Isa::Scalar);
  support::Rng Rng(0xbeef);
  // Odd, non-multiple-of-block sizes exercise every remainder path of the
  // 4-row register blocking and the K tiling.
  Matrix A = Matrix::randn(37, 41, Rng);
  Matrix B = Matrix::randn(41, 23, Rng);
  Matrix Bt = B.transposed();
  Matrix RefAB = refMatmul(A, B);
  Matrix RefABt = refMatmulTransposedB(A, Bt);
  Matrix RefAtB = refMatmulTransposedA(A.transposed(), B);
  for (size_t Threads : {1u, 2u, 8u}) {
    ScopedThreads T(Threads);
    expectBitIdentical(tensor::matmul(A, B), RefAB, "matmul", Threads);
    expectBitIdentical(tensor::matmulTransposedB(A, Bt), RefABt,
                       "matmulTransposedB", Threads);
    expectBitIdentical(tensor::matmulTransposedA(A.transposed(), B), RefAtB,
                       "matmulTransposedA", Threads);
  }
}

TEST(TiledGemm, LargeShapesThreadCountInvariant) {
  support::Rng Rng(0xcafe);
  Matrix A = Matrix::randn(129, 257, Rng);
  Matrix B = Matrix::randn(257, 65, Rng);
  Matrix C1, C2;
  {
    ScopedThreads T(1);
    C1 = tensor::matmul(A, B);
  }
  {
    ScopedThreads T(8);
    C2 = tensor::matmul(A, B);
  }
  expectBitIdentical(C2, C1, "matmul(129x257x65)", 8);
}

/// Certified margins of a small Transformer under both dot-product
/// methods at several thread counts. Determinism is the hard contract of
/// the execution layer: the doubles must be identical, not merely close.
TEST(Determinism, CertifiedMarginsBitIdenticalAcrossThreadCounts) {
  data::SyntheticCorpus Corpus(data::CorpusConfig::sstLike(16));
  nn::TransformerConfig Cfg;
  Cfg.MaxLen = 16;
  Cfg.EmbedDim = 16;
  Cfg.NumHeads = 2;
  Cfg.HiddenDim = 16;
  Cfg.NumLayers = 2;
  support::Rng Rng(0x5eed);
  nn::TransformerModel Model =
      nn::TransformerModel::init(Cfg, Corpus.embeddings(), Rng);

  support::Rng SentRng(7);
  data::Sentence S = Corpus.sampleSentence(SentRng);
  Matrix Emb = Model.embed(S.Tokens);

  for (auto Method : {zono::DotMethod::Fast, zono::DotMethod::Precise}) {
    verify::VerifierConfig VC;
    VC.Method = Method;
    VC.NoiseReductionBudget = 128;
    verify::DeepTVerifier V(Model, VC);
    zono::Zonotope In = zono::Zonotope::lpBallOnRow(Emb, 0, 2.0, 0.05);
    double Margin1;
    {
      ScopedThreads T(1);
      Margin1 = V.certifyMargin(In, S.Label);
    }
    for (size_t Threads : {2u, 8u}) {
      ScopedThreads T(Threads);
      double MarginN = V.certifyMargin(In, S.Label);
      EXPECT_EQ(Margin1, MarginN)
          << "margin differs between 1 and " << Threads << " threads ("
          << (Method == zono::DotMethod::Fast ? "fast" : "precise") << ")";
    }
  }
}

/// Same contract against the cached SST model used by the bench tables,
/// when it is available (the cache lives in bench/deept-model-cache; set
/// DEEPT_MODEL_CACHE to point elsewhere).
TEST(Determinism, CachedSstModelRadiiBitIdentical) {
  nn::TransformerModel Model;
  const std::string Candidates[] = {
      nn::defaultModelCacheDir() + "/sst_m12.dptm",
      "../bench/deept-model-cache/sst_m12.dptm",
      "../../bench/deept-model-cache/sst_m12.dptm",
  };
  bool Loaded = false;
  for (const std::string &Path : Candidates)
    if (nn::loadModel(Path, Model)) {
      Loaded = true;
      break;
    }
  if (!Loaded)
    GTEST_SKIP() << "cached sst_m12.dptm not found";

  data::SyntheticCorpus Corpus(
      data::CorpusConfig::sstLike(Model.Config.EmbedDim));
  support::Rng Rng(2);
  data::Sentence S = Corpus.sampleSentence(Rng);
  Matrix Emb = Model.embed(S.Tokens);

  verify::VerifierConfig VC;
  VC.NoiseReductionBudget = 256;
  verify::DeepTVerifier V(Model, VC);
  zono::Zonotope In = zono::Zonotope::lpBallOnRow(Emb, 0, 2.0, 0.02);
  double Margin1;
  {
    ScopedThreads T(1);
    Margin1 = V.certifyMargin(In, S.Label);
  }
  for (size_t Threads : {2u, 8u}) {
    ScopedThreads T(Threads);
    EXPECT_EQ(Margin1, V.certifyMargin(In, S.Label))
        << "cached-model margin differs at " << Threads << " threads";
  }
}

} // namespace
