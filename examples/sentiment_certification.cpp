//===- examples/sentiment_certification.cpp --------------------*- C++ -*-===//
//
// Threat model T1 end to end: train a Transformer sentiment classifier on
// the synthetic corpus, then for one sentence
//
//  * certify lp robustness radii (p = 1, 2, inf) around one word's
//    embedding with DeepT-Fast,
//  * cross-check against a PGD attack: the smallest adversarial radius
//    the attack finds must exceed every certified radius.
//
//===----------------------------------------------------------------------===//

#include "attack/Pgd.h"
#include "data/SyntheticCorpus.h"
#include "nn/Train.h"
#include "verify/DeepT.h"
#include "verify/RadiusSearch.h"

#include <cstdio>

using namespace deept;
using tensor::Matrix;

int main() {
  std::printf("== sentiment certification (threat model T1) ==\n\n");

  data::SyntheticCorpus Corpus(data::CorpusConfig::sstLike(24));
  support::Rng Rng(21);
  nn::TransformerConfig Cfg;
  Cfg.EmbedDim = 24;
  Cfg.NumHeads = 4;
  Cfg.HiddenDim = 24;
  Cfg.NumLayers = 3;
  Cfg.MaxLen = 12;
  nn::TransformerModel Model =
      nn::TransformerModel::init(Cfg, Corpus.embeddings(), Rng);

  support::Rng DataRng(22);
  auto Train = Corpus.sampleDataset(384, DataRng);
  auto Test = Corpus.sampleDataset(128, DataRng);
  nn::TrainOptions Opts;
  Opts.Steps = 250;
  nn::trainTransformer(Model, Corpus, Train, Opts);
  std::printf("3-layer Transformer trained, accuracy %.1f%%\n\n",
              100.0 * nn::accuracy(Model, Test));

  // Pick a correctly classified sentence.
  data::Sentence S;
  for (const data::Sentence &Cand : Test)
    if (Model.classify(Cand.Tokens) == Cand.Label) {
      S = Cand;
      break;
    }
  std::printf("sentence (%zu words, %s):", S.Tokens.size(),
              S.Label ? "positive" : "negative");
  for (size_t T : S.Tokens)
    std::printf(" %s", Corpus.wordName(T).c_str());
  std::printf("\nperturbed word: position 0 (%s)\n\n",
              Corpus.wordName(S.Tokens[0]).c_str());

  verify::VerifierConfig VC;
  VC.NoiseReductionBudget = 600;
  verify::DeepTVerifier Verifier(Model, VC);

  for (double P : {1.0, 2.0, Matrix::InfNorm}) {
    double Certified = verify::certifiedRadius([&](double R) {
      return Verifier.certifyLpBall(S.Tokens, 0, P, R, S.Label);
    });
    double AttackUpper = attack::minimalAdversarialRadiusTransformer(
        Model, S.Tokens, 0, P, S.Label);
    const char *Name = P == 1.0 ? "l1  " : (P == 2.0 ? "l2  " : "linf");
    std::printf("%s: certified radius %.4f  |  smallest adversarial "
                "radius found by PGD %.4f  (certified < attack: %s)\n",
                Name, Certified, AttackUpper,
                Certified <= AttackUpper ? "yes" : "NO -- bug!");
  }
  std::printf("\nThe certified radius is a *guarantee*: no embedding "
              "perturbation within it can flip the sentiment. The attack "
              "radius shows how much slack the abstraction leaves.\n");
  return 0;
}
