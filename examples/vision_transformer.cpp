//===- examples/vision_transformer.cpp -------------------------*- C++ -*-===//
//
// Beyond NLP (the paper's Appendix A.3): certify a Vision Transformer
// image classifier against lp pixel perturbations. The patch embedding is
// a linear map, so the pixel-space ball enters the zonotope domain
// exactly; the encoder propagation is identical to the NLP case.
//
//===----------------------------------------------------------------------===//

#include "data/StrokeImages.h"
#include "nn/Train.h"
#include "verify/DeepT.h"
#include "verify/RadiusSearch.h"

#include <cstdio>

using namespace deept;
using tensor::Matrix;
using zono::Zonotope;

int main() {
  std::printf("== Vision Transformer certification ==\n\n");

  support::Rng Rng(41);
  nn::TransformerConfig Cfg;
  Cfg.EmbedDim = 24;
  Cfg.NumHeads = 4;
  Cfg.HiddenDim = 48;
  Cfg.NumLayers = 1;
  Cfg.MaxLen = 8;
  nn::VisionTransformer ViT = nn::VisionTransformer::init(8, 4, Cfg, Rng);

  support::Rng DataRng(42);
  auto Train = data::makeStrokeImages(384, DataRng);
  auto Test = data::makeStrokeImages(64, DataRng);
  nn::TrainOptions Opts;
  Opts.Steps = 200;
  nn::trainVisionTransformer(ViT, Train, Opts);
  std::printf("1-layer ViT (8x8 images, 4x4 patches) trained, accuracy "
              "%.1f%%\n\n",
              100.0 * nn::accuracy(ViT, Test));

  verify::VerifierConfig VC;
  VC.NoiseReductionBudget = 600;
  verify::DeepTVerifier Verifier(ViT.Backbone, VC);

  auto EmbedRegion = [&](const Matrix &Pixels, double P, double Radius) {
    Zonotope Ball = Zonotope::lpBall(Pixels, P, Radius);
    Zonotope Patches = Ball.mapLinearPublic(
        ViT.numPatches(), ViT.patchDim(),
        [&](const Matrix &X) { return ViT.patchify(X); });
    Zonotope Emb =
        Patches.matmulRightConst(ViT.PatchW).addRowBroadcast(ViT.PatchB);
    return Emb.addConst(ViT.Backbone.Positional.rowSlice(0, ViT.numPatches()));
  };

  // Certify the first few correctly classified test images.
  size_t Shown = 0;
  for (const auto &Ex : Test) {
    if (ViT.classify(Ex.Pixels) != Ex.Label)
      continue;
    if (++Shown > 4)
      break;
    std::printf("image #%zu (%s stroke):", Shown,
                Ex.Label ? "horizontal" : "vertical");
    for (double P : {1.0, 2.0, Matrix::InfNorm}) {
      double R = verify::certifiedRadius([&](double Radius) {
        return Verifier.certifyMargin(EmbedRegion(Ex.Pixels, P, Radius),
                                      Ex.Label) > 0.0;
      });
      std::printf("  %s=%.4f", P == 1.0 ? "l1" : (P == 2.0 ? "l2" : "linf"),
                  R);
    }
    std::printf("\n");
  }
  std::printf("\nEach radius is a guarantee over *all* pixel perturbations "
              "of that lp magnitude at once.\n");
  return 0;
}
