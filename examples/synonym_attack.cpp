//===- examples/synonym_attack.cpp -----------------------------*- C++ -*-===//
//
// Threat model T2 end to end (the paper's Figure 1): every word of a
// sentence may be replaced by any of its synonyms, simultaneously. DeepT
// certifies the whole combinatorial space with ONE abstract forward pass
// over an l-infinity box covering the synonym embeddings, where
// enumeration would classify each combination separately.
//
//===----------------------------------------------------------------------===//

#include "attack/Enumeration.h"
#include "data/SyntheticCorpus.h"
#include "nn/Train.h"
#include "support/Timer.h"
#include "verify/DeepT.h"

#include <cstdio>

using namespace deept;

int main() {
  std::printf("== synonym attack certification (threat model T2) ==\n\n");

  data::SyntheticCorpus Corpus(data::CorpusConfig::synonymRich(24));

  support::Rng Rng(31);
  nn::TransformerConfig Cfg;
  Cfg.EmbedDim = 24;
  Cfg.NumHeads = 4;
  Cfg.HiddenDim = 24;
  Cfg.NumLayers = 3;
  Cfg.MaxLen = 12;
  nn::TransformerModel Model =
      nn::TransformerModel::init(Cfg, Corpus.embeddings(), Rng);
  support::Rng DataRng(32);
  auto Train = Corpus.sampleDataset(384, DataRng);
  nn::TrainOptions Opts;
  Opts.Steps = 300;
  Opts.SynonymSwapProb = 0.8; // robust training via augmentation
  Opts.EmbedNoise = 0.03;
  nn::trainTransformer(Model, Corpus, Train, Opts);

  verify::VerifierConfig VC;
  VC.NoiseReductionBudget = 600;
  verify::DeepTVerifier Verifier(Model, VC);

  // Certify a batch of sentences; show per-sentence detail for the one
  // with the most combinations.
  support::Rng SampleRng(33);
  size_t Certified = 0, Total = 0;
  data::Sentence Showcase;
  size_t ShowcaseCombos = 0;
  double CertifySeconds = 0;
  while (Total < 20) {
    data::Sentence S = Corpus.sampleSentence(SampleRng);
    if (Model.classify(S.Tokens) != S.Label)
      continue;
    ++Total;
    support::Timer T;
    bool Ok = Verifier.certifySynonymBox(Corpus, S, S.Label);
    CertifySeconds += T.seconds();
    if (!Ok)
      continue;
    ++Certified;
    size_t Combos = attack::countSynonymCombinations(Corpus, S);
    if (Combos > ShowcaseCombos) {
      ShowcaseCombos = Combos;
      Showcase = S;
    }
  }
  std::printf("certified %zu / %zu sentences, %.2f s per sentence\n\n",
              Certified, Total, CertifySeconds / Total);

  if (!Showcase.Tokens.empty()) {
    std::printf("showcase sentence (%zu synonym combinations):\n",
                ShowcaseCombos);
    for (size_t T : Showcase.Tokens) {
      auto Syns = Corpus.synonymsOf(T);
      std::printf("  %-8s", Corpus.wordName(T).c_str());
      if (Syns.empty()) {
        std::printf(" (no synonyms)\n");
        continue;
      }
      std::printf(" can become:");
      for (size_t S : Syns)
        std::printf(" %s", Corpus.wordName(S).c_str());
      std::printf("\n");
    }
    // Sanity check a slice of the space by enumeration.
    support::Timer T;
    auto R = attack::enumerateSynonymAttack(Model, Corpus, Showcase,
                                            Showcase.Label, 4096);
    std::printf("\nenumeration spot check: %zu combinations classified in "
                "%.2f s, all correct: %s\n",
                R.Evaluated, T.seconds(), R.Robust ? "yes" : "NO -- bug!");
    std::printf("extrapolated full enumeration: ~%.1f s vs one certified "
                "pass.\n",
                T.seconds() / R.Evaluated * ShowcaseCombos);
  }
  return 0;
}
