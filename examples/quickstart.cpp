//===- examples/quickstart.cpp ---------------------------------*- C++ -*-===//
//
// Quickstart: the Multi-norm Zonotope domain in five minutes.
//
//  1. abstract an l2 ball around a point,
//  2. push it through affine and nonlinear abstract transformers,
//  3. read back sound concrete bounds,
//  4. certify a small trained ReLU network around a test input.
//
//===----------------------------------------------------------------------===//

#include "data/StrokeImages.h"
#include "nn/FeedForwardNet.h"
#include "nn/Train.h"
#include "support/Rng.h"
#include "verify/FeedForwardVerifier.h"
#include "verify/RadiusSearch.h"
#include "zono/DotProduct.h"
#include "zono/Elementwise.h"

#include <cstdio>

using namespace deept;
using tensor::Matrix;
using zono::Zonotope;

int main() {
  std::printf("== deept-cpp quickstart ==\n\n");

  // -- 1. Abstract an input region. -------------------------------------
  // A 1x3 point with an l2 ball of radius 0.5 around it: the ball is
  // captured exactly by phi noise symbols with ||phi||_2 <= 1.
  Matrix Point = Matrix::fromRows({{1.0, -2.0, 0.5}});
  Zonotope Region = Zonotope::lpBall(Point, /*P=*/2.0, /*Radius=*/0.5);

  // -- 2. Abstract transformers. -----------------------------------------
  // Affine operations are exact (Theorem 2); nonlinearities add one fresh
  // noise symbol per variable (Sections 4.3-4.6).
  Matrix W = Matrix::fromRows({{1.0, 0.0}, {0.5, -1.0}, {0.0, 2.0}});
  Zonotope Hidden = Region.matmulRightConst(W);
  Zonotope Activated = zono::applyRelu(Hidden);
  Zonotope Squashed = zono::applyTanh(Activated);

  // Even products of correlated variables are supported (Section 4.8).
  Zonotope Product = zono::mulElementwise(
      Hidden.selectColRange(0, 1), Hidden.selectColRange(1, 2));

  // -- 3. Concrete bounds. -----------------------------------------------
  Matrix Lo, Hi;
  Squashed.bounds(Lo, Hi);
  std::printf("tanh(relu(x W)) bounds:\n");
  for (size_t C = 0; C < Lo.cols(); ++C)
    std::printf("  y%zu in [%.4f, %.4f]\n", C, Lo.at(0, C), Hi.at(0, C));
  Product.bounds(Lo, Hi);
  std::printf("h0 * h1 in [%.4f, %.4f]\n\n", Lo.at(0, 0), Hi.at(0, 0));

  // -- 4. Certify a trained network. --------------------------------------
  support::Rng Rng(7);
  nn::FeedForwardNet Net = nn::FeedForwardNet::init({64, 16, 16, 2}, Rng);
  support::Rng DataRng(8);
  auto Train = data::makeStrokeImages(256, DataRng);
  auto Test = data::makeStrokeImages(32, DataRng);
  nn::TrainOptions Opts;
  Opts.Steps = 150;
  nn::trainFeedForward(Net, Train, Opts);
  std::printf("trained a 64-16-16-2 ReLU net, accuracy %.1f%%\n",
              100.0 * nn::accuracy(Net, Test));

  const data::ImageExample &Ex = Test.front();
  size_t Pred = Net.classify(Ex.Pixels);
  double Radius = verify::certifiedRadius([&](double R) {
    return verify::certifyFeedForwardLpBall(Net, Ex.Pixels, 2.0, R, Pred);
  });
  std::printf("certified l2 robustness radius around a test image: %.4f\n",
              Radius);
  std::printf("=> every image within that distance classifies identically, "
              "guaranteed.\n");
  return 0;
}
