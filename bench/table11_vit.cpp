//===- bench/table11_vit.cpp -----------------------------------*- C++ -*-===//
//
// Table 11 (Appendix A.3): DeepT-Fast certification of a 1-layer Vision
// Transformer on the image task, lp in {l1, l2, linf} pixel
// perturbations. The patch embedding is an exact affine transformer, so
// the pixel-space ball maps losslessly into the embedding zonotope.
//
//===----------------------------------------------------------------------===//

#include "Common.h"

#include "verify/DeepT.h"
#include "verify/RadiusSearch.h"

using namespace deept;
using namespace deept::bench;
using zono::Zonotope;

int main(int Argc, char **Argv) {
  deept::bench::applyThreadFlags(Argc, Argv);
  printHeader("Table 11: Vision Transformer certification (DeepT-Fast)",
              "PLDI'21 Table 11");

  support::Rng Rng(0xa4);
  nn::TransformerConfig Cfg;
  Cfg.EmbedDim = 24;
  Cfg.NumHeads = 4;
  Cfg.HiddenDim = 48;
  Cfg.NumLayers = 1;
  Cfg.MaxLen = 8;
  nn::VisionTransformer ViT = nn::VisionTransformer::init(8, 4, Cfg, Rng);
  support::Rng DataRng(0xa5);
  auto Train = data::makeStrokeImages(512, DataRng);
  auto Test = data::makeStrokeImages(64, DataRng);
  nn::TrainOptions Opts;
  Opts.Steps = 250;
  Opts.BatchSize = 16;
  nn::trainVisionTransformer(ViT, Train, Opts);
  std::printf("accuracy: %.1f%%\n\n", 100.0 * nn::accuracy(ViT, Test));

  verify::VerifierConfig VC;
  VC.NoiseReductionBudget = 600;
  verify::DeepTVerifier V(ViT.Backbone, VC);

  auto CertifyPixels = [&](const data::ImageExample &Ex, double P,
                           double Radius) {
    // Pixel ball -> patches -> linear patch embedding (+ positional), all
    // exact affine zonotope steps; then the usual encoder propagation.
    Zonotope Pixels = Zonotope::lpBall(Ex.Pixels, P, Radius);
    Zonotope Patches = Pixels.mapLinearPublic(
        ViT.numPatches(), ViT.patchDim(),
        [&](const tensor::Matrix &X) { return ViT.patchify(X); });
    Zonotope Emb = Patches.matmulRightConst(ViT.PatchW)
                       .addRowBroadcast(ViT.PatchB);
    tensor::Matrix Pos =
        ViT.Backbone.Positional.rowSlice(0, ViT.numPatches());
    Emb = Emb.addConst(Pos);
    return V.certifyMargin(Emb, Ex.Label) > 0.0;
  };

  support::Table T({"lp", "Min", "Avg", "t[s]"});
  for (double P : {1.0, 2.0, tensor::Matrix::InfNorm}) {
    double Min = 1e300, Avg = 0, Time = 0;
    size_t Count = 0;
    for (const auto &Ex : Test) {
      if (ViT.classify(Ex.Pixels) != Ex.Label)
        continue;
      if (Count >= 8)
        break;
      ++Count;
      double R;
      {
        support::ScopedAccum A(Time);
        R = verify::certifiedRadius(
            [&](double Radius) { return CertifyPixels(Ex, P, Radius); });
      }
      Min = std::min(Min, R);
      Avg += R;
    }
    Avg /= Count;
    T.addRow({normName(P), support::formatRadius(Min),
              support::formatRadius(Avg),
              support::formatFixed(Time / Count, 2)});
  }
  T.print();
  writeBenchJson("table11_vit", T);
  std::printf("\nPaper shape: l1 radii largest, linf smallest (roughly the "
              "1 : 1/3 : 1/35 spread of Table 11), certification in "
              "seconds per image.\n");
  return 0;
}
