//===- bench/table14_combined.cpp ------------------------------*- C++ -*-===//
//
// Table 14 (Appendix A.6): the combined DeepT verifier -- the Precise dot
// product only in the last Transformer layer (with a smaller last-layer
// noise budget), Fast elsewhere -- vs CROWN-Backward for linf
// perturbations on the 6- and 12-layer downscaled networks.
//
//===----------------------------------------------------------------------===//

#include "Common.h"

#include "crown/CrownVerifier.h"
#include "verify/DeepT.h"

using namespace deept;
using namespace deept::bench;

int main(int Argc, char **Argv) {
  deept::bench::applyThreadFlags(Argc, Argv);
  printHeader("Table 14: combined DeepT (Precise last layer) vs "
              "CROWN-Backward (linf)",
              "PLDI'21 Table 14");

  data::CorpusConfig CC = data::CorpusConfig::sstLike(16);
  CC.MaxLen = 5;
  CC.Seed = 4004; // shares models with Tables 4/5
  data::SyntheticCorpus Corpus(CC);

  const size_t LayerCounts[] = {6, 12};
  std::vector<nn::TransformerModel> Models;
  for (size_t M : LayerCounts)
    Models.push_back(getModel("small_m" + std::to_string(M), Corpus,
                              smallConfig(M)));

  std::vector<const nn::TransformerModel *> ModelPtrs;
  for (const auto &M : Models)
    ModelPtrs.push_back(&M);
  auto Eval = pickEvalSentences(Corpus, ModelPtrs, 2);

  support::Table T({"M", "Verifier", "Min", "Avg", "t[s]"});
  EvalOptions Opts;
  Opts.Search.BisectSteps = 4;
  double P = tensor::Matrix::InfNorm;

  for (size_t MI = 0; MI < Models.size(); ++MI) {
    const nn::TransformerModel &Model = Models[MI];
    verify::VerifierConfig Combined;
    Combined.PreciseLastLayerOnly = true;
    Combined.NoiseReductionBudget = 600;
    Combined.NoiseReductionBudgetLastLayer = 300;
    verify::DeepTVerifier V(Model, Combined);
    crown::CrownConfig BackCfg;
    BackCfg.Mode = crown::CrownMode::Backward;
    crown::CrownVerifier Backward(Model, BackCfg);

    RadiusStats SC = evaluateRadii(
        [&](const data::Sentence &S, size_t W, double Pp, double R) {
          return V.certifyLpBall(S.Tokens, W, Pp, R, S.Label);
        },
        Eval, P, Opts);
    RadiusStats SB = evaluateRadii(
        [&](const data::Sentence &S, size_t W, double Pp, double R) {
          return Backward.certifyLpBall(S.Tokens, W, Pp, R, S.Label);
        },
        Eval, P, Opts);
    T.addRow({std::to_string(LayerCounts[MI]), "Combined DeepT",
              support::formatRadius(SC.Min), support::formatRadius(SC.Avg),
              support::formatFixed(SC.SecondsPerSentence, 1)});
    T.addRow({std::to_string(LayerCounts[MI]), "CROWN-Backward",
              support::formatRadius(SB.Min), support::formatRadius(SB.Avg),
              support::formatFixed(SB.SecondsPerSentence, 1)});
  }
  T.print();
  writeBenchJson("table14_combined", T);
  std::printf("\nPaper shape: the combined verifier matches or beats "
              "CROWN-Backward's average radius while being faster.\n");
  return 0;
}
