//===- bench/table3_wide.cpp -----------------------------------*- C++ -*-===//
//
// Table 3: wider Transformer networks (paper: embedding 256, hidden 512;
// here 2x embedding / 4x hidden of the standard preset). CROWN-BaF runs
// under the same memory budget the paper's GPU imposed and fails ("-")
// on the 12-layer network; DeepT-Fast's noise-symbol reduction keeps its
// footprint bounded.
//
//===----------------------------------------------------------------------===//

#include "Common.h"

#include "crown/CrownVerifier.h"
#include "verify/DeepT.h"

using namespace deept;
using namespace deept::bench;

int main(int Argc, char **Argv) {
  deept::bench::applyThreadFlags(Argc, Argv);
  printHeader("Table 3: wide networks (2x embed, 4x hidden)",
              "PLDI'21 Table 3");

  data::CorpusConfig CC = data::CorpusConfig::sstLike(48);
  // Fixed sentence length keeps the memory-budget comparison across
  // depths clean (coefficient sizes depend on N).
  CC.MinLen = 6;
  CC.MaxLen = 6;
  CC.Seed = 3003;
  data::SyntheticCorpus Corpus(CC);

  const size_t LayerCounts[] = {3, 6, 12};
  std::vector<nn::TransformerModel> Models;
  for (size_t M : LayerCounts)
    Models.push_back(getModel("wide_m" + std::to_string(M), Corpus,
                              wideConfig(M)));

  support::Rng AccRng(44);
  auto Holdout = Corpus.sampleDataset(200, AccRng);
  for (size_t I = 0; I < Models.size(); ++I)
    std::printf("accuracy (M=%zu): %.1f%%\n", LayerCounts[I],
                100.0 * nn::accuracy(Models[I], Holdout));
  std::printf("\n");

  std::vector<const nn::TransformerModel *> ModelPtrs;
  for (const auto &M : Models)
    ModelPtrs.push_back(&M);
  auto Eval = pickEvalSentences(Corpus, ModelPtrs, 2);

  // The byte budget plays the paper's 11 GB GPU: sized so that BaF's
  // cumulative coefficient volume fits for the 3- and 6-layer networks
  // (~250 / ~500 MB at this width) but not for the 12-layer one (~1 GB):
  // the backward window and the number of bound queries both grow with
  // depth.
  const size_t MemoryBudget = 700u * 1024 * 1024;

  support::Table T({"M", "lp", "DeepT Min", "DeepT Avg", "DeepT t[s]",
                    "BaF Min", "BaF Avg", "BaF t[s]", "Ratio"});
  EvalOptions Opts;

  for (size_t MI = 0; MI < Models.size(); ++MI) {
    const nn::TransformerModel &Model = Models[MI];
    verify::VerifierConfig VC;
    VC.NoiseReductionBudget = 600;
    verify::DeepTVerifier DeepT(Model, VC);
    crown::CrownConfig CF;
    CF.Mode = crown::CrownMode::BaF;
    CF.MemoryBudgetBytes = MemoryBudget;
    crown::CrownVerifier BaF(Model, CF);

    for (double P : {1.0, 2.0, tensor::Matrix::InfNorm}) {
      RadiusStats SD = evaluateRadii(
          [&](const data::Sentence &S, size_t W, double Pp, double R) {
            return DeepT.certifyLpBall(S.Tokens, W, Pp, R, S.Label);
          },
          Eval, P, Opts);

      // Probe BaF once for an out-of-memory failure before sweeping.
      crown::CrownOutcome Probe = BaF.certifyMarginLpBall(
          Eval[0].Tokens, 0, P, Opts.Search.InitRadius, Eval[0].Label);
      if (Probe.OutOfMemory) {
        T.addRow({std::to_string(LayerCounts[MI]), normName(P),
                  support::formatRadius(SD.Min),
                  support::formatRadius(SD.Avg),
                  support::formatFixed(SD.SecondsPerSentence, 1), "-", "-",
                  "-", "-"});
        continue;
      }
      RadiusStats SB = evaluateRadii(
          [&](const data::Sentence &S, size_t W, double Pp, double R) {
            return BaF.certifyLpBall(S.Tokens, W, Pp, R, S.Label);
          },
          Eval, P, Opts);
      double Ratio = SB.Avg > 0 ? SD.Avg / SB.Avg : 0.0;
      std::string RatioStr =
          SB.Avg > 1e-12 ? support::formatFixed(Ratio, 2) : ">1e6";
      T.addRow({std::to_string(LayerCounts[MI]), normName(P),
                support::formatRadius(SD.Min), support::formatRadius(SD.Avg),
                support::formatFixed(SD.SecondsPerSentence, 1),
                support::formatRadius(SB.Min), support::formatRadius(SB.Avg),
                support::formatFixed(SB.SecondsPerSentence, 1), RatioStr});
    }
  }
  T.print();
  writeBenchJson("table3_wide", T);
  std::printf("\nPaper shape: CROWN-BaF fails with \"-\" (out of memory) "
              "on the wide 12-layer network; DeepT-Fast still verifies it "
              "thanks to tunable noise-symbol reduction.\n");
  return 0;
}
