//===- bench/table6_dual_norm_order.cpp ------------------------*- C++ -*-===//
//
// Table 6: ablation of the dual-norm application order in DeepT-Fast's
// dot product transformer (Section 6.5): applying the dual norm on the
// l-infinity noise symbols first vs the lp symbols first.
//
//===----------------------------------------------------------------------===//

#include "Common.h"

#include "verify/DeepT.h"

using namespace deept;
using namespace deept::bench;

int main(int Argc, char **Argv) {
  deept::bench::applyThreadFlags(Argc, Argv);
  printHeader("Table 6: dual-norm application order (DeepT-Fast)",
              "PLDI'21 Table 6");

  data::CorpusConfig CC = data::CorpusConfig::sstLike(24);
  CC.MaxLen = 6;
  data::SyntheticCorpus Corpus(CC);

  const size_t LayerCounts[] = {3, 6, 12};
  std::vector<nn::TransformerModel> Models;
  for (size_t M : LayerCounts)
    Models.push_back(getModel("sst_m" + std::to_string(M), Corpus,
                              standardConfig(M)));

  std::vector<const nn::TransformerModel *> ModelPtrs;
  for (const auto &M : Models)
    ModelPtrs.push_back(&M);
  auto Eval = pickEvalSentences(Corpus, ModelPtrs, 3);

  support::Table T({"M", "lp", "linf-first Min", "linf-first Avg",
                    "lp-first Min", "lp-first Avg", "Avg change"});
  EvalOptions Opts;

  for (size_t MI = 0; MI < Models.size(); ++MI) {
    const nn::TransformerModel &Model = Models[MI];
    verify::VerifierConfig InfFirst;
    InfFirst.NoiseReductionBudget = 600;
    InfFirst.Order = zono::DualNormOrder::InfFirst;
    verify::VerifierConfig LpFirst = InfFirst;
    LpFirst.Order = zono::DualNormOrder::LpFirst;
    verify::DeepTVerifier VI(Model, InfFirst);
    verify::DeepTVerifier VL(Model, LpFirst);

    for (double P : {1.0, 2.0}) {
      RadiusStats SI = evaluateRadii(
          [&](const data::Sentence &S, size_t W, double Pp, double R) {
            return VI.certifyLpBall(S.Tokens, W, Pp, R, S.Label);
          },
          Eval, P, Opts);
      RadiusStats SL = evaluateRadii(
          [&](const data::Sentence &S, size_t W, double Pp, double R) {
            return VL.certifyLpBall(S.Tokens, W, Pp, R, S.Label);
          },
          Eval, P, Opts);
      double Change =
          SL.Avg > 0 ? 100.0 * (SI.Avg - SL.Avg) / SL.Avg : 0.0;
      char Buf[32];
      std::snprintf(Buf, sizeof(Buf), "%+.2f %%", Change);
      T.addRow({std::to_string(LayerCounts[MI]), normName(P),
                support::formatRadius(SI.Min), support::formatRadius(SI.Avg),
                support::formatRadius(SL.Min), support::formatRadius(SL.Avg),
                Buf});
    }
  }
  T.print();
  writeBenchJson("table6_dual_norm_order", T);
  std::printf("\nPaper shape: the two orders are close, with a small "
              "average advantage (< ~1.5%%) for linf-first.\n");
  return 0;
}
