//===- bench/table1_sst_fast_vs_baf.cpp ------------------------*- C++ -*-===//
//
// Table 1: certified radius (min and avg) and time of DeepT-Fast vs
// CROWN-BaF on the SST-like corpus, for M in {3, 6, 12} layers and
// lp in {l1, l2, linf}, plus the ratio of the average certified radii.
//
// Runs through the verify::Scheduler batch path: all (sentence, position)
// radius searches of one (model, norm, verifier) cell are independent
// jobs fanned out over the shared pool. Radii are bit-identical to the
// serial per-query loop.
//
//===----------------------------------------------------------------------===//

#include "Common.h"

#include "verify/Scheduler.h"

using namespace deept;
using namespace deept::bench;

int main(int Argc, char **Argv) {
  deept::bench::applyThreadFlags(Argc, Argv);
  printHeader("Table 1: DeepT-Fast vs CROWN-BaF (synth-SST)",
              "PLDI'21 Table 1");

  data::CorpusConfig CC = data::CorpusConfig::sstLike(24);
  CC.MaxLen = 6;
  data::SyntheticCorpus Corpus(CC);

  const size_t LayerCounts[] = {3, 6, 12};
  std::vector<nn::TransformerModel> Models;
  for (size_t M : LayerCounts)
    Models.push_back(getModel("sst_m" + std::to_string(M), Corpus,
                              standardConfig(M)));

  support::Rng AccRng(42);
  auto Holdout = Corpus.sampleDataset(200, AccRng);
  for (size_t I = 0; I < Models.size(); ++I)
    std::printf("accuracy (M=%zu): %.1f%%\n", LayerCounts[I],
                100.0 * nn::accuracy(Models[I], Holdout));
  std::printf("\n");

  std::vector<const nn::TransformerModel *> ModelPtrs;
  for (const auto &M : Models)
    ModelPtrs.push_back(&M);
  auto Eval = pickEvalSentences(Corpus, ModelPtrs, 2);

  support::Table T({"M", "lp", "DeepT Min", "DeepT Avg", "DeepT t[s]",
                    "BaF Min", "BaF Avg", "BaF t[s]", "Ratio"});
  EvalOptions Opts;

  for (size_t MI = 0; MI < Models.size(); ++MI) {
    const nn::TransformerModel &Model = Models[MI];
    for (double P : {1.0, 2.0, tensor::Matrix::InfNorm}) {
      RadiusStats SD = evaluateRadiiScheduled(Model, verify::JobMethod::Fast,
                                              Eval, P, Opts);
      RadiusStats SB = evaluateRadiiScheduled(
          Model, verify::JobMethod::CrownBaF, Eval, P, Opts);
      double Ratio = SB.Avg > 0 ? SD.Avg / SB.Avg : 0.0;
      std::string RatioStr =
          SB.Avg > 1e-12 ? support::formatFixed(Ratio, 2) : ">1e6";
      T.addRow({std::to_string(LayerCounts[MI]), normName(P),
                support::formatRadius(SD.Min), support::formatRadius(SD.Avg),
                support::formatFixed(SD.SecondsPerSentence, 1),
                support::formatRadius(SB.Min), support::formatRadius(SB.Avg),
                support::formatFixed(SB.SecondsPerSentence, 1), RatioStr});
    }
  }
  T.print();
  writeBenchJson("table1_sst_fast_vs_baf", T);
  std::printf("\nPaper shape (radii degrade gently with depth for DeepT, "
              "collapse for CROWN-BaF; paper avg ratio 1.07x -> 28x for "
              "M=3 -> 12): reproduced in direction and depth trend. Our "
              "forward-mode BaF already trails at M=3 where the paper's "
              "tuned implementation is at parity -- see EXPERIMENTS.md, "
              "'Known deviations'.\n");
  return 0;
}
