//===- bench/table8_synonym.cpp --------------------------------*- C++ -*-===//
//
// Table 8: robustness certification against synonym attacks (threat
// model T2) on a 3-layer robustly trained network -- certified sentence
// counts and per-sentence time for DeepT-Fast and CROWN-BaF, compared
// with the cost of exhaustive enumeration (Section 6.7).
//
//===----------------------------------------------------------------------===//

#include "Common.h"

#include "attack/Enumeration.h"
#include "crown/CrownVerifier.h"
#include "verify/DeepT.h"

using namespace deept;
using namespace deept::bench;

namespace {

/// Robustly trained 3-layer model (synonym-swap + embedding-noise
/// augmentation standing in for the paper's certified training; see
/// DESIGN.md).
nn::TransformerModel robustModel(const data::SyntheticCorpus &Corpus) {
  return nn::getOrTrainCached(
      nn::defaultModelCacheDir(), "synonym_robust_m3", [&] {
        support::Rng Rng(0xb0b);
        nn::TransformerConfig Cfg = standardConfig(3);
        nn::TransformerModel M =
            nn::TransformerModel::init(Cfg, Corpus.embeddings(), Rng);
        support::Rng DataRng(0xda7a);
        auto Train = Corpus.sampleDataset(512, DataRng);
        nn::TrainOptions Opts;
        Opts.Steps = 350;
        Opts.BatchSize = 16;
        Opts.SynonymSwapProb = 0.8;
        Opts.EmbedNoise = 0.03;
        nn::trainTransformer(M, Corpus, Train, Opts);
        return M;
      });
}

} // namespace

int main(int Argc, char **Argv) {
  deept::bench::applyThreadFlags(Argc, Argv);
  printHeader("Table 8: certification against synonym attacks (T2)",
              "PLDI'21 Table 8");

  data::SyntheticCorpus Corpus(data::CorpusConfig::synonymRich(24));
  nn::TransformerModel Model = robustModel(Corpus);

  support::Rng AccRng(46);
  auto Holdout = Corpus.sampleDataset(300, AccRng);
  std::printf("accuracy: %.1f%%\n\n", 100.0 * nn::accuracy(Model, Holdout));

  // Evaluation set: correctly classified sentences with a combination
  // count large enough that enumeration is the expensive option (the
  // paper uses >= 32000 combinations).
  const size_t MinCombos = 1024;
  support::Rng Rng(0x5e7);
  std::vector<data::Sentence> Eval;
  while (Eval.size() < 40) {
    data::Sentence S = Corpus.sampleSentence(Rng);
    if (Model.classify(S.Tokens) != S.Label)
      continue;
    if (attack::countSynonymCombinations(Corpus, S) < MinCombos)
      continue;
    Eval.push_back(std::move(S));
  }

  verify::VerifierConfig VC;
  VC.NoiseReductionBudget = 600;
  verify::DeepTVerifier DeepT(Model, VC);
  crown::CrownConfig CF;
  CF.Mode = crown::CrownMode::BaF;
  crown::CrownVerifier BaF(Model, CF);

  size_t DeepTCert = 0, BaFCert = 0;
  double DeepTTime = 0, BaFTime = 0;
  double MeanCombos = 0;
  for (const data::Sentence &S : Eval) {
    MeanCombos += static_cast<double>(
        attack::countSynonymCombinations(Corpus, S, size_t(1) << 32));
    {
      support::ScopedAccum A(DeepTTime);
      DeepTCert += DeepT.certifySynonymBox(Corpus, S, S.Label);
    }
    {
      support::ScopedAccum A(BaFTime);
      BaFCert += BaF.certifySynonymBox(Corpus, S, S.Label);
    }
  }
  MeanCombos /= Eval.size();

  // Enumeration cost on a capped subset extrapolates the full cost.
  support::Timer TE;
  size_t EnumEvaluated = 0;
  for (size_t I = 0; I < 5; ++I) {
    auto R = attack::enumerateSynonymAttack(Model, Corpus, Eval[I],
                                            Eval[I].Label, 2000);
    EnumEvaluated += R.Evaluated;
  }
  double PerCombo = TE.seconds() / static_cast<double>(EnumEvaluated);

  support::Table T({"Verifier", "Certified", "Rate", "t[s]/sentence"});
  auto Row = [&](const char *Name, size_t Cert, double Time) {
    char Rate[16];
    std::snprintf(Rate, sizeof(Rate), "%.0f%%",
                  100.0 * Cert / Eval.size());
    T.addRow({Name, std::to_string(Cert) + "/" +
                        std::to_string(Eval.size()),
              Rate, support::formatFixed(Time / Eval.size(), 3)});
  };
  Row("DeepT-Fast", DeepTCert, DeepTTime);
  Row("CROWN-BaF", BaFCert, BaFTime);
  T.print();
  writeBenchJson("table8_synonym", T);
  std::printf("\nmean combinations per sentence: %.0f\n", MeanCombos);
  std::printf("enumeration cost: %.2e s/combination -> %.1f s/sentence "
              "(%.0fx DeepT-Fast)\n",
              PerCombo, PerCombo * MeanCombos,
              PerCombo * MeanCombos / (DeepTTime / Eval.size()));
  std::printf("\nPaper shape: both verifiers certify the vast majority of "
              "sentences (89%% / 88%%) in ~2.5 s while enumeration needs 2-3 "
              "orders of magnitude more time.\n");
  return 0;
}
