//===- bench/table5_l1_l2.cpp ----------------------------------*- C++ -*-===//
//
// Table 5: l1 and l2 perturbations on the downscaled networks --
// DeepT-Fast vs CROWN-BaF vs CROWN-Backward (Section 6.4).
//
//===----------------------------------------------------------------------===//

#include "Common.h"

#include "crown/CrownVerifier.h"
#include "verify/DeepT.h"

using namespace deept;
using namespace deept::bench;

int main(int Argc, char **Argv) {
  deept::bench::applyThreadFlags(Argc, Argv);
  printHeader("Table 5: l1 / l2 comparison", "PLDI'21 Table 5");

  data::CorpusConfig CC = data::CorpusConfig::sstLike(16);
  CC.MaxLen = 5;
  CC.Seed = 4004; // same corpus/models as Table 4
  data::SyntheticCorpus Corpus(CC);

  const size_t LayerCounts[] = {3, 6, 12};
  std::vector<nn::TransformerModel> Models;
  for (size_t M : LayerCounts)
    Models.push_back(getModel("small_m" + std::to_string(M), Corpus,
                              smallConfig(M)));

  std::vector<const nn::TransformerModel *> ModelPtrs;
  for (const auto &M : Models)
    ModelPtrs.push_back(&M);
  auto Eval = pickEvalSentences(Corpus, ModelPtrs, 2);

  support::Table T({"M", "lp", "Fast Min", "Fast Avg", "Fast t[s]",
                    "BaF Min", "BaF Avg", "BaF t[s]", "Back Min", "Back Avg",
                    "Back t[s]"});
  EvalOptions Opts;
  Opts.Search.BisectSteps = 4;

  for (size_t MI = 0; MI < Models.size(); ++MI) {
    const nn::TransformerModel &Model = Models[MI];
    verify::VerifierConfig FastCfg;
    FastCfg.NoiseReductionBudget = 600;
    verify::DeepTVerifier Fast(Model, FastCfg);
    crown::CrownConfig BaFCfg;
    BaFCfg.Mode = crown::CrownMode::BaF;
    crown::CrownConfig BackCfg;
    BackCfg.Mode = crown::CrownMode::Backward;
    crown::CrownVerifier BaF(Model, BaFCfg);
    crown::CrownVerifier Backward(Model, BackCfg);

    for (double P : {1.0, 2.0}) {
      RadiusStats SF = evaluateRadii(
          [&](const data::Sentence &S, size_t W, double Pp, double R) {
            return Fast.certifyLpBall(S.Tokens, W, Pp, R, S.Label);
          },
          Eval, P, Opts);
      RadiusStats SB = evaluateRadii(
          [&](const data::Sentence &S, size_t W, double Pp, double R) {
            return BaF.certifyLpBall(S.Tokens, W, Pp, R, S.Label);
          },
          Eval, P, Opts);
      RadiusStats SK = evaluateRadii(
          [&](const data::Sentence &S, size_t W, double Pp, double R) {
            return Backward.certifyLpBall(S.Tokens, W, Pp, R, S.Label);
          },
          Eval, P, Opts);
      T.addRow({std::to_string(LayerCounts[MI]), normName(P),
                support::formatRadius(SF.Min), support::formatRadius(SF.Avg),
                support::formatFixed(SF.SecondsPerSentence, 1),
                support::formatRadius(SB.Min), support::formatRadius(SB.Avg),
                support::formatFixed(SB.SecondsPerSentence, 1),
                support::formatRadius(SK.Min), support::formatRadius(SK.Avg),
                support::formatFixed(SK.SecondsPerSentence, 1)});
    }
  }
  T.print();
  writeBenchJson("table5_l1_l2", T);
  std::printf("\nPaper shape: DeepT-Fast within ~10%% of CROWN-Backward's "
              "radii at a fraction of its time; CROWN-BaF clearly behind "
              "at M=12.\n");
  return 0;
}
