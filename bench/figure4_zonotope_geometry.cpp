//===- bench/figure4_zonotope_geometry.cpp ---------------------*- C++ -*-===//
//
// Figure 4: the geometry of a Multi-norm Zonotope. Reconstructs the
// paper's example -- x = 4 + phi1 + phi2 - eps1 + 2 eps2 and
// y = 3 + phi1 + phi2 + eps1 + eps2 with ||phi||_2 <= 1, eps in [-1,1] --
// and emits (a) its exact bounding box from the domain's dual-norm bound
// computation, (b) boundary samples of the multi-norm set, and (c) the
// classical zonotope obtained by removing the phi symbols (the paper's
// dark-green subset). Pipe the point series into any plotter to
// regenerate the figure.
//
//===----------------------------------------------------------------------===//

#include "Common.h"
#include "support/Rng.h"
#include "zono/Zonotope.h"

#include <cstdio>

using namespace deept;
using tensor::Matrix;
using zono::Zonotope;

int main(int Argc, char **Argv) {
  deept::bench::applyThreadFlags(Argc, Argv);
  std::printf("== Figure 4: Multi-norm Zonotope geometry ==\n"
              "(reproduces PLDI'21 Figure 4)\n\n");

  // x = 4 + phi1 + phi2 - eps1 + 2 eps2, y = 3 + phi1 + phi2 + eps1 + eps2.
  Matrix Center = Matrix::fromRows({{4.0, 3.0}});
  Zonotope Z = Zonotope::constant(Center, 2.0);
  Matrix Phi(2, 2), Eps(2, 2);
  Phi.at(0, 0) = 1.0;  // phi1 on x
  Phi.at(0, 1) = 1.0;  // phi1 on y
  Phi.at(1, 0) = 1.0;  // phi2 on x
  Phi.at(1, 1) = 1.0;  // phi2 on y
  Eps.at(0, 0) = -1.0; // eps1 on x
  Eps.at(0, 1) = 1.0;  // eps1 on y
  Eps.at(1, 0) = 2.0;  // eps2 on x
  Eps.at(1, 1) = 1.0;  // eps2 on y
  Z.installCoeffs(std::move(Phi), std::move(Eps));

  Matrix Lo, Hi;
  Z.bounds(Lo, Hi);
  std::printf("bounds via Theorem 1 (phi term uses the l2 dual norm):\n");
  std::printf("  x in [%.4f, %.4f]   (paper: [4 - sqrt(2) - 3, "
              "4 + sqrt(2) + 3])\n",
              Lo.at(0, 0), Hi.at(0, 0));
  std::printf("  y in [%.4f, %.4f]\n\n", Lo.at(0, 1), Hi.at(0, 1));

  // The classical-zonotope subset: drop the phi symbols.
  Zonotope Classical = Z;
  Classical.installCoeffs(Matrix(0, 2), Matrix(Z.epsCoeffs()));

  support::Rng Rng(4);
  std::printf("# multi-norm zonotope boundary samples (x y)\n");
  for (int I = 0; I < 96; ++I) {
    Matrix P = Z.sample(Rng, /*OnBoundary=*/true);
    std::printf("%.4f %.4f\n", P.at(0, 0), P.at(0, 1));
  }
  std::printf("\n# classical zonotope (phi removed) boundary samples (x y)\n");
  for (int I = 0; I < 48; ++I) {
    Matrix P = Classical.sample(Rng, /*OnBoundary=*/true);
    std::printf("%.4f %.4f\n", P.at(0, 0), P.at(0, 1));
  }
  std::printf("\nShape: the multi-norm set is the classical zonotope "
              "Minkowski-summed with a rotated l2 disk segment, matching "
              "the paper's rounded region.\n");
  return 0;
}
