//===- bench/micro_ops.cpp - Kernel micro benchmarks -----------*- C++ -*-===//
//
// google-benchmark micro benchmarks of the kernels the verifiers spend
// their time in: GEMM, zonotope bound computation, the dot-product
// abstract transformers (Fast and Precise), the softmax transformer and
// noise-symbol reduction. Complements the per-table harnesses.
//
//===----------------------------------------------------------------------===//

#include "support/Parallel.h"
#include "tensor/Kernels.h"
#include "support/Rng.h"
#include "support/Trace.h"
#include "tensor/Matrix.h"
#include "zono/DotProduct.h"
#include "zono/Reduction.h"
#include "zono/Refinement.h"
#include "zono/Softmax.h"
#include "zono/Zonotope.h"

#include <benchmark/benchmark.h>

#include <cmath>
#include <utility>
#include <vector>

using namespace deept;
using tensor::Matrix;
using namespace deept::zono;

namespace {

Zonotope makeZonotope(size_t Rows, size_t Cols, size_t Phi, size_t Eps,
                      uint64_t Seed) {
  support::Rng Rng(Seed);
  Zonotope Z = Zonotope::constant(Matrix::randn(Rows, Cols, Rng), 2.0);
  Z.installCoeffs(Matrix::randn(Phi, Rows * Cols, Rng, 0.1),
                  Matrix::randn(Eps, Rows * Cols, Rng, 0.1));
  return Z;
}

void BM_Gemm(benchmark::State &State) {
  size_t N = State.range(0);
  support::Rng Rng(1);
  Matrix A = Matrix::randn(N, N, Rng);
  Matrix B = Matrix::randn(N, N, Rng);
  for (auto _ : State)
    benchmark::DoNotOptimize(tensor::matmul(A, B));
  State.SetComplexityN(N);
}
BENCHMARK(BM_Gemm)->Arg(32)->Arg(64)->Arg(128)->Complexity();

// Tiled GEMM across pool sizes: Args are {N, threads}. On a single-core
// host the >1-thread rows measure oversubscription overhead rather than
// speedup; on a multi-core runner they show the scaling curve.
void BM_GemmPool(benchmark::State &State) {
  size_t N = State.range(0);
  size_t Threads = State.range(1);
  size_t Prev = support::ThreadPool::global().threadCount();
  support::ThreadPool::global().setThreadCount(Threads);
  support::Rng Rng(1);
  Matrix A = Matrix::randn(N, N, Rng);
  Matrix B = Matrix::randn(N, N, Rng);
  for (auto _ : State)
    benchmark::DoNotOptimize(tensor::matmul(A, B));
  support::ThreadPool::global().setThreadCount(Prev);
}
BENCHMARK(BM_GemmPool)
    ->Args({256, 1})
    ->Args({256, 2})
    ->Args({256, 4})
    ->Args({256, 8});

void BM_ZonotopeBounds(benchmark::State &State) {
  size_t Eps = State.range(0);
  Zonotope Z = makeZonotope(8, 24, 24, Eps, 2);
  Matrix Lo, Hi;
  for (auto _ : State) {
    Z.bounds(Lo, Hi);
    benchmark::DoNotOptimize(Lo.data());
  }
}
BENCHMARK(BM_ZonotopeBounds)->Arg(128)->Arg(512)->Arg(2048);

void BM_DotProductFast(benchmark::State &State) {
  size_t Eps = State.range(0);
  Zonotope Parent = makeZonotope(8, 12, 12, Eps, 3);
  Zonotope A = Parent.selectColRange(0, 6);
  Zonotope B = Parent.selectColRange(6, 12);
  DotOptions Opts;
  for (auto _ : State)
    benchmark::DoNotOptimize(dotRows(A, B, Opts).numEps());
}
BENCHMARK(BM_DotProductFast)->Arg(128)->Arg(512)->Arg(2048);

void BM_DotProductPrecise(benchmark::State &State) {
  size_t Eps = State.range(0);
  Zonotope Parent = makeZonotope(8, 12, 12, Eps, 4);
  Zonotope A = Parent.selectColRange(0, 6);
  Zonotope B = Parent.selectColRange(6, 12);
  DotOptions Opts;
  Opts.Method = DotMethod::Precise;
  for (auto _ : State)
    benchmark::DoNotOptimize(dotRows(A, B, Opts).numEps());
}
BENCHMARK(BM_DotProductPrecise)->Arg(128)->Arg(256)->Arg(512);

// Coefficient-row parallelism in the dot-product transformer: Args are
// {eps symbols, threads}. Exercises the Fast cascade end to end with
// large symbol counts, the regime the pool targets.
void BM_DotProductFastPool(benchmark::State &State) {
  size_t Eps = State.range(0);
  size_t Threads = State.range(1);
  size_t Prev = support::ThreadPool::global().threadCount();
  support::ThreadPool::global().setThreadCount(Threads);
  Zonotope Parent = makeZonotope(8, 12, 12, Eps, 3);
  Zonotope A = Parent.selectColRange(0, 6);
  Zonotope B = Parent.selectColRange(6, 12);
  DotOptions Opts;
  for (auto _ : State)
    benchmark::DoNotOptimize(dotRows(A, B, Opts).numEps());
  support::ThreadPool::global().setThreadCount(Prev);
}
BENCHMARK(BM_DotProductFastPool)
    ->Args({2048, 1})
    ->Args({2048, 2})
    ->Args({2048, 4})
    ->Args({2048, 8});

void BM_SoftmaxTransformer(benchmark::State &State) {
  size_t Eps = State.range(0);
  Zonotope Scores = makeZonotope(8, 8, 12, Eps, 5);
  for (auto _ : State)
    benchmark::DoNotOptimize(applySoftmax(Scores).numEps());
}
BENCHMARK(BM_SoftmaxTransformer)->Arg(128)->Arg(512);

void BM_NoiseReduction(benchmark::State &State) {
  size_t Eps = State.range(0);
  for (auto _ : State) {
    State.PauseTiming();
    Zonotope Z = makeZonotope(8, 24, 12, Eps, 6);
    State.ResumeTiming();
    reduceEpsSymbols(Z, Eps / 4);
    benchmark::DoNotOptimize(Z.numEps());
  }
}
BENCHMARK(BM_NoiseReduction)->Arg(512)->Arg(2048);

// A block-backed zonotope: a dense leading block of \p DenseEps symbols
// plus \p DiagBlocks Diag tail blocks of one fresh symbol per variable
// each (the shape the elementwise transformers produce).
Zonotope makeBlockZonotope(size_t Rows, size_t Cols, size_t DenseEps,
                           size_t DiagBlocks, uint64_t Seed) {
  Zonotope Z = makeZonotope(Rows, Cols, 12, DenseEps, Seed);
  support::Rng Rng(Seed ^ 0x9e3779b9);
  for (size_t B = 0; B < DiagBlocks; ++B) {
    std::vector<std::pair<size_t, double>> Entries;
    for (size_t V = 0; V < Rows * Cols; ++V)
      Entries.emplace_back(V, Rng.uniform(0.01, 0.2));
    Z.appendFreshEps(Entries);
  }
  return Z;
}

// Blockwise dual-norm accumulation over a Diag-heavy symbol space: the
// structured storage turns each Diag block's contribution into O(vars)
// work instead of an O(syms * vars) dense scan.
void BM_DualNormsDiag(benchmark::State &State) {
  size_t DiagBlocks = State.range(0);
  Zonotope Z = makeBlockZonotope(8, 24, 128, DiagBlocks, 7);
  for (auto _ : State)
    benchmark::DoNotOptimize(Z.epsColumnDualNorms(1.0).data());
}
BENCHMARK(BM_DualNormsDiag)->Arg(8)->Arg(32)->Arg(128);

// An exact affine transformer (column scaling) on the same Diag-heavy
// zonotope: Diag blocks update one entry per symbol instead of a row.
void BM_AffineDiagBlock(benchmark::State &State) {
  size_t DiagBlocks = State.range(0);
  Zonotope Z = makeBlockZonotope(8, 24, 128, DiagBlocks, 8);
  support::Rng Rng(9);
  Matrix Gamma = Matrix::randn(1, 24, Rng, 0.5);
  for (auto _ : State)
    benchmark::DoNotOptimize(Z.scaleColumns(Gamma).numEps());
}
BENCHMARK(BM_AffineDiagBlock)->Arg(8)->Arg(32)->Arg(128);

// Whole-plane fused coefficient kernel vs the per-plane loop it batches:
// S symbol planes against one shared N x D panel (the dotRows A-half
// shape). Arg is the plane count S.
void BM_DotPlanesFused(benchmark::State &State) {
  size_t S = State.range(0), N = 8, M = 8, D = 24;
  support::Rng Rng(7);
  Matrix A = Matrix::randn(N, D, Rng);
  Matrix B = Matrix::randn(S * M, D, Rng);
  Matrix C = Matrix::uninit(S, N * M);
  std::vector<double> Pack(tensor::dotPlanesPackDoubles(N, M, D));
  const tensor::Kernels &K = tensor::kernels();
  for (auto _ : State) {
    K.DotPlanesTransposedB(A.data(), 0, N, B.data(), M * D, M, D, S,
                           C.data(), N * M, /*Accumulate=*/false,
                           Pack.data());
    benchmark::DoNotOptimize(C.data());
  }
}
BENCHMARK(BM_DotPlanesFused)->Arg(32)->Arg(128)->Arg(512);

// Deterministic weighted-median selection inside the softmax-sum
// refinement (expected O(E) vs the O(E log E) sort it replaced). Arg is
// the breakpoint count.
void BM_WeightedMedian(benchmark::State &State) {
  size_t N = State.range(0);
  support::Rng Rng(11);
  std::vector<zono::detail::Breakpoint> Points(N);
  for (auto &B : Points)
    B = zono::detail::Breakpoint{Rng.gaussian(), std::exp(Rng.gaussian()),
                                 Rng.uniform() < 0.25};
  std::vector<zono::detail::Breakpoint> Work;
  for (auto _ : State) {
    Work = Points; // selectBreakpoint permutes its input
    benchmark::DoNotOptimize(zono::detail::selectBreakpoint(Work));
  }
}
BENCHMARK(BM_WeightedMedian)->Arg(64)->Arg(512)->Arg(4096);

// The cost a permanently-instrumented hot path pays when tracing is off:
// one relaxed atomic load and a branch per span.
void BM_TraceSpanDisabled(benchmark::State &State) {
  support::Trace::setEnabled(false);
  for (auto _ : State) {
    DEEPT_TRACE_SPAN("bench.span");
    benchmark::ClobberMemory();
  }
}
BENCHMARK(BM_TraceSpanDisabled);

void BM_TraceSpanEnabled(benchmark::State &State) {
  support::Trace::setEnabled(true);
  support::Trace::clear();
  for (auto _ : State) {
    DEEPT_TRACE_SPAN("bench.span");
    benchmark::ClobberMemory();
  }
  support::Trace::setEnabled(false);
  support::Trace::clear();
}
BENCHMARK(BM_TraceSpanEnabled);

// Same dot-product kernel as BM_DotProductFast but with tracing compiled
// in *and disabled* spans on the path; comparing the two quantifies the
// instrumentation overhead on a real kernel (<2% is the budget).
void BM_DotProductFastTracingOff(benchmark::State &State) {
  size_t Eps = State.range(0);
  Zonotope Parent = makeZonotope(8, 12, 12, Eps, 3);
  Zonotope A = Parent.selectColRange(0, 6);
  Zonotope B = Parent.selectColRange(6, 12);
  DotOptions Opts;
  support::Trace::setEnabled(false);
  for (auto _ : State)
    benchmark::DoNotOptimize(dotRows(A, B, Opts).numEps());
}
BENCHMARK(BM_DotProductFastTracingOff)->Arg(128)->Arg(512);

} // namespace

// Expanded BENCHMARK_MAIN so the report's context records the kernel ISA
// it ran under -- bench_compare refuses cross-ISA comparisons.
int main(int argc, char **argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv))
    return 1;
  benchmark::AddCustomContext(
      "isa", deept::tensor::isaName(deept::tensor::currentIsa()));
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
