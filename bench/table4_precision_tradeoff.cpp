//===- bench/table4_precision_tradeoff.cpp ---------------------*- C++ -*-===//
//
// Table 4 (full version: Table 12 / Appendix A.4): the precision vs
// performance trade-off under linf perturbations -- DeepT-Fast,
// CROWN-BaF, DeepT-Precise and CROWN-Backward on the downscaled networks
// (the paper uses E=64 because CROWN-Backward exhausts GPU memory on the
// standard ones; see Section 6.3). One random position per sentence.
//
//===----------------------------------------------------------------------===//

#include "Common.h"

#include "crown/CrownVerifier.h"
#include "verify/DeepT.h"

using namespace deept;
using namespace deept::bench;

int main(int Argc, char **Argv) {
  deept::bench::applyThreadFlags(Argc, Argv);
  printHeader(
      "Table 4 / Table 12: precision-performance trade-off (linf)",
      "PLDI'21 Tables 4 and 12");

  data::CorpusConfig CC = data::CorpusConfig::sstLike(16);
  CC.MaxLen = 5;
  CC.Seed = 4004;
  data::SyntheticCorpus Corpus(CC);

  const size_t LayerCounts[] = {3, 6, 12};
  std::vector<nn::TransformerModel> Models;
  for (size_t M : LayerCounts)
    Models.push_back(getModel("small_m" + std::to_string(M), Corpus,
                              smallConfig(M)));

  std::vector<const nn::TransformerModel *> ModelPtrs;
  for (const auto &M : Models)
    ModelPtrs.push_back(&M);
  auto Eval = pickEvalSentences(Corpus, ModelPtrs, 2);

  support::Table T({"M", "Verifier", "Min", "Avg", "t[s]"});
  EvalOptions Opts;
  Opts.Search.BisectSteps = 4;
  double P = tensor::Matrix::InfNorm;

  for (size_t MI = 0; MI < Models.size(); ++MI) {
    const nn::TransformerModel &Model = Models[MI];

    verify::VerifierConfig FastCfg;
    FastCfg.NoiseReductionBudget = 600;
    verify::VerifierConfig PreciseCfg = FastCfg;
    PreciseCfg.Method = zono::DotMethod::Precise;
    PreciseCfg.NoiseReductionBudget = 400; // paper: 10000 vs 14000
    verify::DeepTVerifier Fast(Model, FastCfg);
    verify::DeepTVerifier Precise(Model, PreciseCfg);

    crown::CrownConfig BaFCfg;
    BaFCfg.Mode = crown::CrownMode::BaF;
    crown::CrownConfig BackCfg;
    BackCfg.Mode = crown::CrownMode::Backward;
    crown::CrownVerifier BaF(Model, BaFCfg);
    crown::CrownVerifier Backward(Model, BackCfg);

    struct Entry {
      const char *Name;
      CertifyFn Fn;
    };
    Entry Entries[] = {
        {"DeepT-Fast",
         [&](const data::Sentence &S, size_t W, double Pp, double R) {
           return Fast.certifyLpBall(S.Tokens, W, Pp, R, S.Label);
         }},
        {"CROWN-BaF",
         [&](const data::Sentence &S, size_t W, double Pp, double R) {
           return BaF.certifyLpBall(S.Tokens, W, Pp, R, S.Label);
         }},
        {"DeepT-Precise",
         [&](const data::Sentence &S, size_t W, double Pp, double R) {
           return Precise.certifyLpBall(S.Tokens, W, Pp, R, S.Label);
         }},
        {"CROWN-Backward",
         [&](const data::Sentence &S, size_t W, double Pp, double R) {
           return Backward.certifyLpBall(S.Tokens, W, Pp, R, S.Label);
         }},
    };
    for (const Entry &E : Entries) {
      RadiusStats St = evaluateRadii(E.Fn, Eval, P, Opts);
      T.addRow({std::to_string(LayerCounts[MI]), E.Name,
                support::formatRadius(St.Min), support::formatRadius(St.Avg),
                support::formatFixed(St.SecondsPerSentence, 1)});
    }
  }
  T.print();
  writeBenchJson("table4_precision_tradeoff", T);
  std::printf("\nPaper shape: DeepT-Fast is fastest; DeepT-Precise reaches "
              "the highest average radius but is slowest; CROWN-Backward "
              "sits between them; CROWN-BaF collapses at M=12.\n");
  return 0;
}
