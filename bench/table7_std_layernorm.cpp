//===- bench/table7_std_layernorm.cpp --------------------------*- C++ -*-===//
//
// Table 7: Transformers with *standard* layer normalization (division by
// the standard deviation, Section 6.6). Exercises the sqrt / reciprocal /
// multiplication transformers inside the normalisation; certified radii
// drop sharply for both verifiers, confirming why the paper's default
// omits the division.
//
//===----------------------------------------------------------------------===//

#include "Common.h"

#include "crown/CrownVerifier.h"
#include "verify/DeepT.h"

using namespace deept;
using namespace deept::bench;

int main(int Argc, char **Argv) {
  deept::bench::applyThreadFlags(Argc, Argv);
  printHeader("Table 7: standard layer normalization", "PLDI'21 Table 7");

  data::CorpusConfig CC = data::CorpusConfig::sstLike(24);
  CC.MaxLen = 6;
  data::SyntheticCorpus Corpus(CC);

  const size_t LayerCounts[] = {3, 6, 12};
  std::vector<nn::TransformerModel> Models;
  for (size_t M : LayerCounts) {
    nn::TransformerConfig Cfg = standardConfig(M);
    Cfg.LayerNormStdDiv = true;
    Models.push_back(
        getModel("sstdiv_m" + std::to_string(M), Corpus, Cfg));
  }

  support::Rng AccRng(45);
  auto Holdout = Corpus.sampleDataset(200, AccRng);
  for (size_t I = 0; I < Models.size(); ++I)
    std::printf("accuracy (M=%zu): %.1f%%\n", LayerCounts[I],
                100.0 * nn::accuracy(Models[I], Holdout));
  std::printf("\n");

  std::vector<const nn::TransformerModel *> ModelPtrs;
  for (const auto &M : Models)
    ModelPtrs.push_back(&M);
  auto Eval = pickEvalSentences(Corpus, ModelPtrs, 2);

  support::Table T({"M", "lp", "DeepT Min", "DeepT Avg", "DeepT t[s]",
                    "BaF Min", "BaF Avg", "BaF t[s]", "Ratio"});
  EvalOptions Opts;
  Opts.Search.InitRadius = 0.005; // radii are much smaller here
  Opts.Search.BisectSteps = 5;

  for (size_t MI = 0; MI < Models.size(); ++MI) {
    const nn::TransformerModel &Model = Models[MI];
    verify::VerifierConfig VC;
    VC.NoiseReductionBudget = 600;
    verify::DeepTVerifier DeepT(Model, VC);
    crown::CrownConfig CF;
    CF.Mode = crown::CrownMode::BaF;
    crown::CrownVerifier BaF(Model, CF);

    for (double P : {1.0, 2.0, tensor::Matrix::InfNorm}) {
      RadiusStats SD = evaluateRadii(
          [&](const data::Sentence &S, size_t W, double Pp, double R) {
            return DeepT.certifyLpBall(S.Tokens, W, Pp, R, S.Label);
          },
          Eval, P, Opts);
      RadiusStats SB = evaluateRadii(
          [&](const data::Sentence &S, size_t W, double Pp, double R) {
            return BaF.certifyLpBall(S.Tokens, W, Pp, R, S.Label);
          },
          Eval, P, Opts);
      double Ratio = SB.Avg > 0 ? SD.Avg / SB.Avg : 0.0;
      std::string RatioStr =
          SB.Avg > 1e-12 ? support::formatFixed(Ratio, 2) : ">1e6";
      T.addRow({std::to_string(LayerCounts[MI]), normName(P),
                support::formatRadius(SD.Min), support::formatRadius(SD.Avg),
                support::formatFixed(SD.SecondsPerSentence, 1),
                support::formatRadius(SB.Min), support::formatRadius(SB.Avg),
                support::formatFixed(SB.SecondsPerSentence, 1), RatioStr});
    }
  }
  T.print();
  writeBenchJson("table7_std_layernorm", T);
  std::printf("\nPaper shape: radii are 1-2 orders of magnitude below the "
              "no-division networks of Table 1, and DeepT's advantage over "
              "CROWN-BaF persists and grows with depth.\n");
  return 0;
}
