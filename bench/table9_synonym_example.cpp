//===- bench/table9_synonym_example.cpp ------------------------*- C++ -*-===//
//
// Table 9: a certifiable example sentence with its per-token synonym
// lists and the total combination count, illustrating why enumeration is
// hopeless where DeepT's one-shot certification succeeds.
//
//===----------------------------------------------------------------------===//

#include "Common.h"

#include "attack/Enumeration.h"
#include "verify/DeepT.h"

using namespace deept;
using namespace deept::bench;

int main(int Argc, char **Argv) {
  deept::bench::applyThreadFlags(Argc, Argv);
  printHeader("Table 9: example certifiable sentence with synonyms",
              "PLDI'21 Table 9");

  data::SyntheticCorpus Corpus(data::CorpusConfig::synonymRich(24));
  nn::TransformerModel Model = nn::getOrTrainCached(
      nn::defaultModelCacheDir(), "synonym_robust_m3", [&] {
        support::Rng Rng(0xb0b);
        nn::TransformerModel M = nn::TransformerModel::init(
            standardConfig(3), Corpus.embeddings(), Rng);
        support::Rng DataRng(0xda7a);
        auto Train = Corpus.sampleDataset(512, DataRng);
        nn::TrainOptions Opts;
        Opts.Steps = 350;
        Opts.BatchSize = 16;
        Opts.SynonymSwapProb = 0.8;
        Opts.EmbedNoise = 0.03;
        nn::trainTransformer(M, Corpus, Train, Opts);
        return M;
      });

  verify::VerifierConfig VC;
  VC.NoiseReductionBudget = 600;
  verify::DeepTVerifier DeepT(Model, VC);

  // Find the certifiable sentence with the most synonym combinations.
  support::Rng Rng(0x7ab9);
  data::Sentence Best;
  size_t BestCombos = 0;
  double CertifyTime = 0;
  for (int Trial = 0; Trial < 60; ++Trial) {
    data::Sentence S = Corpus.sampleSentence(Rng);
    if (Model.classify(S.Tokens) != S.Label)
      continue;
    size_t Combos = attack::countSynonymCombinations(Corpus, S);
    if (Combos <= BestCombos)
      continue;
    support::Timer T;
    if (DeepT.certifySynonymBox(Corpus, S, S.Label)) {
      Best = S;
      BestCombos = Combos;
      CertifyTime = T.seconds();
    }
  }
  if (Best.Tokens.empty()) {
    std::printf("no certifiable sentence found (unexpected)\n");
    return 1;
  }

  support::Table T({"Token", "#Synonyms", "Synonyms"});
  for (size_t Token : Best.Tokens) {
    auto Syns = Corpus.synonymsOf(Token);
    std::string List;
    for (size_t I = 0; I < Syns.size(); ++I)
      List += (I ? ", " : "") + Corpus.wordName(Syns[I]);
    if (List.empty())
      List = "(none)";
    T.addRow({Corpus.wordName(Token), std::to_string(Syns.size()), List});
  }
  T.print();
  writeBenchJson("table9_synonym_example", T);
  std::printf("\nlabel: %s, combinations: %zu, certified by DeepT-Fast in "
              "%.2f s\n",
              Best.Label ? "positive" : "negative", BestCombos, CertifyTime);

  // Time a slice of the enumeration to extrapolate its full cost.
  support::Timer TE;
  auto R =
      attack::enumerateSynonymAttack(Model, Corpus, Best, Best.Label, 2000);
  double PerCombo = TE.seconds() / static_cast<double>(R.Evaluated);
  std::printf("enumeration estimate: %.2e s/combination x %zu = %.1f s "
              "(%.0fx the certification time)\n",
              PerCombo, BestCombos, PerCombo * BestCombos,
              PerCombo * BestCombos / std::max(CertifyTime, 1e-9));
  std::printf("\nPaper shape: a sentence with millions of combinations "
              "certifies in seconds; enumeration is 2-3 orders of "
              "magnitude slower.\n");
  return 0;
}
