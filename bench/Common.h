//===- bench/Common.h - Shared benchmark harness utilities -----*- C++ -*-===//
//
// Part of deept-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared setup for the per-table benchmark binaries: corpus / model
/// presets (scaled-down versions of the paper's networks, see DESIGN.md
/// "Scaling"), cached training, sentence selection, and the
/// certified-radius evaluation loop whose Min / Avg / Time columns match
/// the paper's tables.
///
//===----------------------------------------------------------------------===//

#ifndef DEEPT_BENCH_COMMON_H
#define DEEPT_BENCH_COMMON_H

#include "data/SyntheticCorpus.h"
#include "nn/Serialize.h"
#include "nn/Train.h"
#include "nn/Transformer.h"
#include "support/ArgParse.h"
#include "support/Json.h"
#include "support/Metrics.h"
#include "support/Parallel.h"
#include "support/Table.h"
#include "support/Timer.h"
#include "tensor/Kernels.h"
#include "verify/RadiusSearch.h"
#include "verify/Scheduler.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <string>
#include <vector>

namespace deept {
namespace bench {

using tensor::Matrix;

/// Applies the shared execution flags every bench binary accepts:
/// --threads N overrides the pool size (DEEPT_THREADS and the core count
/// remain the defaults) and --isa overrides the SIMD kernel table
/// (DEEPT_ISA and CPU detection remain the defaults); malformed or
/// unavailable values abort with a clear error. Call first thing in main.
inline void applyThreadFlags(int Argc, char **Argv) {
  support::ArgParse Args(Argc, Argv);
  if (Args.has("threads")) {
    size_t Threads = 0;
    std::string Err;
    if (!support::parseThreadCount(Args.get("threads"), Threads, &Err)) {
      std::fprintf(stderr, "error: --threads %s\n", Err.c_str());
      std::exit(2);
    }
    support::ThreadPool::global().setThreadCount(Threads);
  }
  if (Args.has("isa")) {
    tensor::Isa I = tensor::Isa::Scalar;
    std::string Err;
    if (!tensor::parseIsa(Args.get("isa"), I, &Err) ||
        !tensor::setIsa(I, &Err)) {
      std::fprintf(stderr, "error: --isa %s\n", Err.c_str());
      std::exit(2);
    }
  }
}

/// The scaled-down counterpart of the paper's "standard" networks
/// (E=128, 4 heads, H=128): same shape family, CPU-sized.
inline nn::TransformerConfig standardConfig(size_t Layers) {
  nn::TransformerConfig C;
  C.MaxLen = 16;
  C.EmbedDim = 24;
  C.NumHeads = 4;
  C.HiddenDim = 24;
  C.NumLayers = Layers;
  return C;
}

/// The "wide" networks of Table 3 (paper: 2x embedding, 4x hidden).
inline nn::TransformerConfig wideConfig(size_t Layers) {
  nn::TransformerConfig C = standardConfig(Layers);
  C.EmbedDim = 48;
  C.HiddenDim = 96;
  return C;
}

/// The downscaled networks of Tables 4/5/12/14 (paper: E=64, H=64,
/// used because CROWN-Backward exhausts memory on larger ones).
inline nn::TransformerConfig smallConfig(size_t Layers) {
  nn::TransformerConfig C;
  C.MaxLen = 16;
  C.EmbedDim = 16;
  C.NumHeads = 2;
  C.HiddenDim = 16;
  C.NumLayers = Layers;
  return C;
}

/// Trains (or loads from the shared cache) a model for \p Corpus.
inline nn::TransformerModel
getModel(const std::string &Name, const data::SyntheticCorpus &Corpus,
         const nn::TransformerConfig &Config, size_t TrainSteps = 0) {
  // Wider networks need more, gentler steps to train stably.
  bool Wide = Config.EmbedDim >= 48;
  if (TrainSteps == 0)
    TrainSteps = std::max<size_t>(300, (Wide ? 120 : 60) * Config.NumLayers);
  return nn::getOrTrainCached(
      nn::defaultModelCacheDir(), Name, [&] {
        support::Rng Rng(0x5eed0 + Config.NumLayers * 7 +
                         Config.EmbedDim * 131 +
                         (Config.LayerNormStdDiv ? 1 : 0));
        nn::TransformerModel M =
            nn::TransformerModel::init(Config, Corpus.embeddings(), Rng);
        support::Rng DataRng(0xda7a);
        auto Train = Corpus.sampleDataset(512, DataRng);
        nn::TrainOptions Opts;
        Opts.Steps = TrainSteps;
        Opts.BatchSize = 16;
        if (Wide)
          Opts.LearningRate = 1e-3;
        nn::trainTransformer(M, Corpus, Train, Opts);
        return M;
      });
}

/// Picks \p Count evaluation sentences classified correctly by every
/// model (so per-model radii are comparable, as in Section 6.1).
inline std::vector<data::Sentence>
pickEvalSentences(const data::SyntheticCorpus &Corpus,
                  const std::vector<const nn::TransformerModel *> &Models,
                  size_t Count, uint64_t Seed = 0xe7a1) {
  support::Rng Rng(Seed);
  std::vector<data::Sentence> Out;
  for (int Guard = 0; Guard < 4000 && Out.size() < Count; ++Guard) {
    data::Sentence S = Corpus.sampleSentence(Rng);
    bool Ok = true;
    for (const nn::TransformerModel *M : Models)
      Ok = Ok && M->classify(S.Tokens) == S.Label;
    if (Ok)
      Out.push_back(std::move(S));
  }
  return Out;
}

/// Certification callback: should return true when the lp region of the
/// given radius around (sentence, word position) is certified.
using CertifyFn = std::function<bool(const data::Sentence &S, size_t Word,
                                     double P, double Radius)>;

struct RadiusStats {
  double Min = 0.0;
  double Avg = 0.0;
  double SecondsPerSentence = 0.0;
  size_t Count = 0;
};

struct EvalOptions {
  /// Word positions probed per sentence (paper: all positions; here the
  /// first PositionsPerSentence to bound CPU time).
  size_t PositionsPerSentence = 1;
  verify::RadiusSearchOptions Search;

  EvalOptions() {
    Search.InitRadius = 0.05;
    Search.BisectSteps = 5;
    Search.MaxRadius = 8.0;
  }
};

/// Runs the paper's Section 6.1 protocol: binary-search the maximum
/// certified radius per (sentence, position), aggregate min/avg and
/// wall-clock seconds per sentence.
inline RadiusStats evaluateRadii(const CertifyFn &Certify,
                                 const std::vector<data::Sentence> &Eval,
                                 double P,
                                 const EvalOptions &Opts = EvalOptions()) {
  RadiusStats Stats;
  Stats.Min = 1e300;
  support::Timer Timer;
  for (const data::Sentence &S : Eval) {
    size_t Positions = std::min(Opts.PositionsPerSentence, S.Tokens.size());
    for (size_t W = 0; W < Positions; ++W) {
      double R = verify::certifiedRadius(
          [&](double Radius) { return Certify(S, W, P, Radius); },
          Opts.Search);
      Stats.Min = std::min(Stats.Min, R);
      Stats.Avg += R;
      ++Stats.Count;
    }
  }
  if (Stats.Count > 0)
    Stats.Avg /= static_cast<double>(Stats.Count);
  if (Stats.Min == 1e300)
    Stats.Min = 0.0;
  Stats.SecondsPerSentence =
      Eval.empty() ? 0.0 : Timer.seconds() / static_cast<double>(Eval.size());
  return Stats;
}

/// The Section 6.1 protocol through the production path: every
/// (sentence, position) pair becomes a radius-search job on the
/// verify::Scheduler, which fans the batch out over the shared pool
/// (outer-loop parallelism; per-job radii stay bit-identical to the
/// serial evaluateRadii above). Jobs that error surface as radius 0 and
/// a stderr note rather than aborting the table.
inline RadiusStats
evaluateRadiiScheduled(const nn::TransformerModel &Model,
                       verify::JobMethod Method,
                       const std::vector<data::Sentence> &Eval, double P,
                       const EvalOptions &Opts = EvalOptions(),
                       size_t NoiseReductionBudget = 600) {
  verify::JobQueue Queue;
  for (const data::Sentence &S : Eval) {
    size_t Positions = std::min(Opts.PositionsPerSentence, S.Tokens.size());
    for (size_t W = 0; W < Positions; ++W) {
      verify::JobSpec J;
      J.Tokens = S.Tokens;
      J.TrueClass = S.Label;
      J.Word = W;
      J.P = P;
      J.SearchRadius = true;
      J.Search = Opts.Search;
      J.Method = Method;
      J.NoiseReductionBudget = NoiseReductionBudget;
      Queue.push(std::move(J));
    }
  }
  support::Timer Timer;
  verify::Scheduler Sched(Model);
  std::vector<verify::JobResult> Results = Sched.run(Queue);
  RadiusStats Stats;
  Stats.Min = 1e300;
  for (const verify::JobResult &R : Results) {
    if (R.Status == verify::JobStatus::Error)
      std::fprintf(stderr, "warning: job %s failed: %s\n", R.Key.c_str(),
                   R.Error.c_str());
    Stats.Min = std::min(Stats.Min, R.Radius);
    Stats.Avg += R.Radius;
    ++Stats.Count;
  }
  if (Stats.Count > 0)
    Stats.Avg /= static_cast<double>(Stats.Count);
  if (Stats.Min == 1e300)
    Stats.Min = 0.0;
  Stats.SecondsPerSentence =
      Eval.empty() ? 0.0 : Timer.seconds() / static_cast<double>(Eval.size());
  return Stats;
}

inline std::string normName(double P) {
  if (P == 1.0)
    return "l1";
  if (P == 2.0)
    return "l2";
  return "linf";
}

inline void printHeader(const char *Title, const char *PaperRef) {
  std::printf("== %s ==\n(reproduces %s; scaled-down models, see "
              "DESIGN.md/EXPERIMENTS.md)\n\n",
              Title, PaperRef);
}

/// Re-emits a printed table as BENCH_<Id>.json in the working directory,
/// bundling a snapshot of the metrics registry, so bench runs are
/// diffable by machines as well as eyes. Cells that fully parse as
/// numbers become JSON numbers; everything else stays a string.
inline bool writeBenchJson(const std::string &Id, const support::Table &T) {
  std::string Path = "BENCH_" + Id + ".json";
  std::ofstream Out(Path, std::ios::binary);
  if (!Out)
    return false;
  auto Cell = [](const std::string &S) {
    char *End = nullptr;
    double V = std::strtod(S.c_str(), &End);
    if (End != S.c_str() && End && *End == '\0')
      return support::jsonNumber(V);
    return "\"" + support::jsonEscape(S) + "\"";
  };
  const std::vector<std::vector<std::string>> &Rows = T.rows();
  Out << "{\"bench\":\"" << support::jsonEscape(Id) << "\",\"columns\":[";
  if (!Rows.empty())
    for (size_t C = 0; C < Rows[0].size(); ++C)
      Out << (C ? "," : "") << "\"" << support::jsonEscape(Rows[0][C])
          << "\"";
  Out << "],\"rows\":[";
  for (size_t R = 1; R < Rows.size(); ++R) {
    Out << (R > 1 ? "," : "") << "[";
    for (size_t C = 0; C < Rows[R].size(); ++C)
      Out << (C ? "," : "") << Cell(Rows[R][C]);
    Out << "]";
  }
  Out << "],\"threads\":" << support::ThreadPool::global().threadCount()
      << ",\"isa\":\"" << tensor::isaName(tensor::currentIsa())
      << "\",\"metrics\":" << support::Metrics::global().toJson() << "}\n";
  if (!Out)
    return false;
  std::printf("\n[wrote %s]\n", Path.c_str());
  return true;
}

} // namespace bench
} // namespace deept

#endif // DEEPT_BENCH_COMMON_H
