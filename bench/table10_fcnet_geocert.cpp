//===- bench/table10_fcnet_geocert.cpp -------------------------*- C++ -*-===//
//
// Table 10 (Appendix A.2): Multi-norm Zonotope certification of a
// fully-connected ReLU network (hidden sizes 10, 50, 10) on the two-class
// image task against l2 perturbations, compared with the GeoCert
// substitute: a bisected PGD attack whose minimal adversarial radius
// upper-bounds the exact robustness radius GeoCert computes (DESIGN.md,
// "Substitutions").
//
//===----------------------------------------------------------------------===//

#include "Common.h"

#include "attack/Pgd.h"
#include "verify/FeedForwardVerifier.h"

using namespace deept;
using namespace deept::bench;

int main(int Argc, char **Argv) {
  deept::bench::applyThreadFlags(Argc, Argv);
  printHeader("Table 10: Multi-norm Zonotope vs GeoCert-substitute "
              "(FC net, l2)",
              "PLDI'21 Table 10");

  support::Rng Rng(0xa2);
  nn::FeedForwardNet Net = nn::FeedForwardNet::init({64, 10, 50, 10, 2}, Rng);
  support::Rng DataRng(0xa3);
  auto Train = data::makeStrokeImages(512, DataRng);
  auto Test = data::makeStrokeImages(64, DataRng);
  nn::TrainOptions Opts;
  Opts.Steps = 300;
  Opts.BatchSize = 16;
  nn::trainFeedForward(Net, Train, Opts);
  std::printf("accuracy: %.1f%%\n\n", 100.0 * nn::accuracy(Net, Test));

  double CertMin = 1e300, CertAvg = 0;
  double ExactMin = 1e300, ExactAvg = 0;
  double CertTime = 0, ExactTime = 0;
  size_t Count = 0;
  for (const auto &Ex : Test) {
    if (Net.classify(Ex.Pixels) != Ex.Label)
      continue;
    if (Count >= 10)
      break;
    ++Count;
    double Certified;
    {
      support::ScopedAccum A(CertTime);
      Certified = verify::certifiedRadius([&](double R) {
        return verify::certifyFeedForwardLpBall(Net, Ex.Pixels, 2.0, R,
                                                Ex.Label);
      });
    }
    double Exact;
    {
      support::ScopedAccum A(ExactTime);
      Exact =
          attack::minimalAdversarialRadiusFF(Net, Ex.Pixels, 2.0, Ex.Label);
    }
    CertMin = std::min(CertMin, Certified);
    CertAvg += Certified;
    ExactMin = std::min(ExactMin, Exact);
    ExactAvg += Exact;
  }
  CertAvg /= Count;
  ExactAvg /= Count;

  support::Table T({"Method", "Min", "Avg", "t[s]"});
  T.addRow({"GeoCert-substitute (attack upper bound)",
            support::formatRadius(ExactMin), support::formatRadius(ExactAvg),
            support::formatFixed(ExactTime / Count, 2)});
  T.addRow({"DeepT (Multi-norm Zonotope)", support::formatRadius(CertMin),
            support::formatRadius(CertAvg),
            support::formatFixed(CertTime / Count, 2)});
  T.print();
  writeBenchJson("table10_fcnet_geocert", T);
  std::printf("\nPaper shape: the (near-)exact method reports radii several "
              "times larger, while zonotope certification is an order of "
              "magnitude faster.\n");
  return 0;
}
