//===- bench/table13_softmax_refinement.cpp --------------------*- C++ -*-===//
//
// Table 13 (Appendix A.5): ablation of the softmax sum zonotope
// refinement (Section 5.3) in DeepT-Fast, plus an extra ablation of the
// noise-reduction budget k (a design choice DESIGN.md calls out).
//
//===----------------------------------------------------------------------===//

#include "Common.h"

#include "verify/DeepT.h"

using namespace deept;
using namespace deept::bench;

int main(int Argc, char **Argv) {
  deept::bench::applyThreadFlags(Argc, Argv);
  printHeader("Table 13: softmax sum refinement ablation (DeepT-Fast)",
              "PLDI'21 Table 13");

  data::CorpusConfig CC = data::CorpusConfig::sstLike(24);
  CC.MaxLen = 6;
  data::SyntheticCorpus Corpus(CC);

  const size_t LayerCounts[] = {3, 6, 12};
  std::vector<nn::TransformerModel> Models;
  for (size_t M : LayerCounts)
    Models.push_back(getModel("sst_m" + std::to_string(M), Corpus,
                              standardConfig(M)));

  std::vector<const nn::TransformerModel *> ModelPtrs;
  for (const auto &M : Models)
    ModelPtrs.push_back(&M);
  auto Eval = pickEvalSentences(Corpus, ModelPtrs, 3);

  support::Table T({"M", "lp", "With Min", "With Avg", "With t[s]",
                    "Without Min", "Without Avg", "Without t[s]", "Change"});
  EvalOptions Opts;

  for (size_t MI = 0; MI < Models.size(); ++MI) {
    const nn::TransformerModel &Model = Models[MI];
    verify::VerifierConfig On;
    On.NoiseReductionBudget = 600;
    On.SoftmaxSumRefinement = true;
    verify::VerifierConfig Off = On;
    Off.SoftmaxSumRefinement = false;
    verify::DeepTVerifier VOn(Model, On);
    verify::DeepTVerifier VOff(Model, Off);

    for (double P : {1.0, 2.0, tensor::Matrix::InfNorm}) {
      RadiusStats SO = evaluateRadii(
          [&](const data::Sentence &S, size_t W, double Pp, double R) {
            return VOn.certifyLpBall(S.Tokens, W, Pp, R, S.Label);
          },
          Eval, P, Opts);
      RadiusStats SX = evaluateRadii(
          [&](const data::Sentence &S, size_t W, double Pp, double R) {
            return VOff.certifyLpBall(S.Tokens, W, Pp, R, S.Label);
          },
          Eval, P, Opts);
      double Change = SX.Avg > 0 ? 100.0 * (SO.Avg - SX.Avg) / SX.Avg : 0.0;
      char Buf[32];
      std::snprintf(Buf, sizeof(Buf), "%+.2f %%", Change);
      T.addRow({std::to_string(LayerCounts[MI]), normName(P),
                support::formatRadius(SO.Min), support::formatRadius(SO.Avg),
                support::formatFixed(SO.SecondsPerSentence, 1),
                support::formatRadius(SX.Min), support::formatRadius(SX.Avg),
                support::formatFixed(SX.SecondsPerSentence, 1), Buf});
    }
  }
  T.print();
  writeBenchJson("table13_softmax_refinement", T);
  std::printf("\nPaper shape: a small improvement (0.04%%-0.5%% at M=3) "
              "growing with depth (2.6%%-3.2%% at M=12), at a 5-9%% time "
              "cost.\n");

  // Extra ablation (DESIGN.md): the precision/speed trade-off of the
  // noise-reduction budget k on the deepest network.
  std::printf("\n-- extra ablation: noise-reduction budget k (M=12, l2) --\n");
  support::Table TK({"k", "Min", "Avg", "t[s]"});
  const nn::TransformerModel &Deep = Models.back();
  for (size_t K : {100u, 300u, 600u, 1200u}) {
    verify::VerifierConfig VC;
    VC.NoiseReductionBudget = K;
    verify::DeepTVerifier V(Deep, VC);
    RadiusStats St = evaluateRadii(
        [&](const data::Sentence &S, size_t W, double Pp, double R) {
          return V.certifyLpBall(S.Tokens, W, Pp, R, S.Label);
        },
        Eval, 2.0, Opts);
    TK.addRow({std::to_string(K), support::formatRadius(St.Min),
               support::formatRadius(St.Avg),
               support::formatFixed(St.SecondsPerSentence, 1)});
  }
  TK.print();
  writeBenchJson("table13_noise_reduction_k", TK);
  std::printf("expected: radii grow and time grows with k (the Section 5.1 "
              "tunable trade-off).\n");
  return 0;
}
