//===- nn/Transformer.cpp -------------------------------------*- C++ -*-===//

#include "nn/Transformer.h"

#include "support/Rng.h"

#include <cassert>
#include <cmath>

using namespace deept;
using namespace deept::nn;
using autograd::Tape;
using autograd::ValueId;

namespace {

Matrix xavier(size_t Rows, size_t Cols, support::Rng &Rng) {
  return Matrix::randn(Rows, Cols, Rng, std::sqrt(1.0 / Rows));
}

/// Concrete layer norm; the paper's default drops the division by the
/// standard deviation (Section 3.1), which Section 6.6 shows certifies
/// much better while costing almost no accuracy.
Matrix layerNorm(const Matrix &V, const Matrix &Gamma, const Matrix &Beta,
                 bool StdDiv, double Eps) {
  Matrix Centered = V;
  Matrix Means = V.rowMeans();
  for (size_t R = 0; R < V.rows(); ++R)
    for (size_t C = 0; C < V.cols(); ++C)
      Centered.at(R, C) -= Means.at(R, 0);
  if (StdDiv) {
    for (size_t R = 0; R < V.rows(); ++R) {
      double Var = 0.0;
      for (size_t C = 0; C < V.cols(); ++C)
        Var += Centered.at(R, C) * Centered.at(R, C);
      Var /= static_cast<double>(V.cols());
      double InvStd = 1.0 / std::sqrt(Var + Eps);
      for (size_t C = 0; C < V.cols(); ++C)
        Centered.at(R, C) *= InvStd;
    }
  }
  for (size_t R = 0; R < V.rows(); ++R)
    for (size_t C = 0; C < V.cols(); ++C)
      Centered.at(R, C) = Centered.at(R, C) * Gamma.at(0, C) + Beta.at(0, C);
  return Centered;
}

} // namespace

TransformerModel TransformerModel::init(const TransformerConfig &Config,
                                        const Matrix &Embedding,
                                        support::Rng &Rng) {
  assert(Config.EmbedDim % Config.NumHeads == 0 &&
         "embedding dim must be divisible by the head count");
  assert(Embedding.cols() == Config.EmbedDim && "embedding width mismatch");
  TransformerModel M;
  M.Config = Config;
  M.Config.VocabSize = Embedding.rows();
  M.Embedding = Embedding;
  M.Positional = sinusoidalPositional(Config.MaxLen, Config.EmbedDim);
  size_t E = Config.EmbedDim, H = Config.HiddenDim;
  // Residual-branch outputs are scaled down with depth (GPT-2 style) so
  // deep stacks train stably.
  double ResidualScale =
      1.0 / std::sqrt(2.0 * static_cast<double>(Config.NumLayers));
  for (size_t L = 0; L < Config.NumLayers; ++L) {
    TransformerLayer Layer;
    Layer.Wq = xavier(E, E, Rng);
    Layer.Bq = Matrix(1, E);
    Layer.Wk = xavier(E, E, Rng);
    Layer.Bk = Matrix(1, E);
    Layer.Wv = xavier(E, E, Rng);
    Layer.Bv = Matrix(1, E);
    Layer.Wo = xavier(E, E, Rng) * ResidualScale;
    Layer.Bo = Matrix(1, E);
    Layer.Ln1Gamma = Matrix(1, E, 1.0);
    Layer.Ln1Beta = Matrix(1, E);
    Layer.W1 = xavier(E, H, Rng);
    Layer.B1 = Matrix(1, H);
    Layer.W2 = xavier(H, E, Rng) * ResidualScale;
    Layer.B2 = Matrix(1, E);
    Layer.Ln2Gamma = Matrix(1, E, 1.0);
    Layer.Ln2Beta = Matrix(1, E);
    M.Layers.push_back(std::move(Layer));
  }
  M.PoolW = xavier(E, E, Rng);
  M.PoolB = Matrix(1, E);
  M.ClsW = xavier(E, 2, Rng);
  M.ClsB = Matrix(1, 2);
  return M;
}

Matrix TransformerModel::sinusoidalPositional(size_t MaxLen,
                                              size_t EmbedDim) {
  Matrix P(MaxLen, EmbedDim);
  for (size_t Pos = 0; Pos < MaxLen; ++Pos) {
    for (size_t I = 0; I < EmbedDim; ++I) {
      double Freq =
          std::pow(10000.0, -2.0 * static_cast<double>(I / 2) / EmbedDim);
      double Angle = static_cast<double>(Pos) * Freq;
      P.at(Pos, I) = (I % 2 == 0) ? std::sin(Angle) : std::cos(Angle);
    }
  }
  // Scale down so positions do not dominate the word embeddings.
  P *= 0.1;
  return P;
}

Matrix TransformerModel::embed(const std::vector<size_t> &Tokens) const {
  assert(Tokens.size() <= Config.MaxLen && "sequence too long");
  Matrix X(Tokens.size(), Config.EmbedDim);
  for (size_t I = 0; I < Tokens.size(); ++I) {
    assert(Tokens[I] < Embedding.rows() && "token id out of range");
    for (size_t C = 0; C < Config.EmbedDim; ++C)
      X.at(I, C) = Embedding.at(Tokens[I], C) + Positional.at(I, C);
  }
  return X;
}

Matrix TransformerModel::forwardEmbeddings(const Matrix &X0) const {
  size_t E = Config.EmbedDim;
  size_t A = Config.NumHeads;
  size_t Dk = Config.headDim();
  double Scale = 1.0 / std::sqrt(static_cast<double>(Dk));
  Matrix X = X0;
  for (const TransformerLayer &L : Layers) {
    // Multi-head self-attention (Eq. 1).
    Matrix Q = tensor::addRowBroadcast(tensor::matmul(X, L.Wq), L.Bq);
    Matrix K = tensor::addRowBroadcast(tensor::matmul(X, L.Wk), L.Bk);
    Matrix V = tensor::addRowBroadcast(tensor::matmul(X, L.Wv), L.Bv);
    Matrix Heads(X.rows(), E);
    for (size_t H = 0; H < A; ++H) {
      Matrix Qh = Q.colSlice(H * Dk, (H + 1) * Dk);
      Matrix Kh = K.colSlice(H * Dk, (H + 1) * Dk);
      Matrix Vh = V.colSlice(H * Dk, (H + 1) * Dk);
      Matrix Scores = tensor::matmulTransposedB(Qh, Kh) * Scale;
      Matrix Probs = tensor::rowSoftmax(Scores);
      Heads.setBlock(0, H * Dk, tensor::matmul(Probs, Vh));
    }
    Matrix Z = tensor::addRowBroadcast(tensor::matmul(Heads, L.Wo), L.Bo);
    Matrix V1 = X + Z; // residual
    Matrix X1 = layerNorm(V1, L.Ln1Gamma, L.Ln1Beta, Config.LayerNormStdDiv,
                          Config.LnEps);
    // Feed-forward block.
    Matrix Hid = tensor::addRowBroadcast(tensor::matmul(X1, L.W1), L.B1);
    Hid.applyFn([](double X2) { return X2 > 0 ? X2 : 0.0; });
    Matrix F = tensor::addRowBroadcast(tensor::matmul(Hid, L.W2), L.B2);
    Matrix V2 = X1 + F; // residual
    X = layerNorm(V2, L.Ln2Gamma, L.Ln2Beta, Config.LayerNormStdDiv,
                  Config.LnEps);
  }
  // Pooling: first output embedding -> tanh layer -> binary classifier.
  Matrix Pooled = X.rowSlice(0, 1);
  Matrix T = tensor::addRowBroadcast(tensor::matmul(Pooled, PoolW), PoolB);
  T.applyFn([](double V) { return std::tanh(V); });
  return tensor::addRowBroadcast(tensor::matmul(T, ClsW), ClsB);
}

size_t TransformerModel::classify(const std::vector<size_t> &Tokens) const {
  return forwardEmbeddings(embed(Tokens)).argmax();
}

std::vector<Matrix *> TransformerModel::parameters() {
  std::vector<Matrix *> P;
  for (TransformerLayer &L : Layers) {
    for (Matrix *M :
         {&L.Wq, &L.Bq, &L.Wk, &L.Bk, &L.Wv, &L.Bv, &L.Wo, &L.Bo,
          &L.Ln1Gamma, &L.Ln1Beta, &L.W1, &L.B1, &L.W2, &L.B2, &L.Ln2Gamma,
          &L.Ln2Beta})
      P.push_back(M);
  }
  P.push_back(&PoolW);
  P.push_back(&PoolB);
  P.push_back(&ClsW);
  P.push_back(&ClsB);
  return P;
}

std::vector<const Matrix *> TransformerModel::parameters() const {
  auto NonConst = const_cast<TransformerModel *>(this)->parameters();
  return std::vector<const Matrix *>(NonConst.begin(), NonConst.end());
}

std::vector<ValueId> TransformerModel::pushParams(Tape &T) const {
  std::vector<ValueId> Ids;
  for (const Matrix *M : parameters())
    Ids.push_back(T.input(*M));
  return Ids;
}

ValueId TransformerModel::buildForward(
    Tape &T, ValueId X, const std::vector<ValueId> &Params) const {
  size_t E = Config.EmbedDim;
  size_t A = Config.NumHeads;
  size_t Dk = Config.headDim();
  double Scale = 1.0 / std::sqrt(static_cast<double>(Dk));
  size_t PerLayer = 16;
  assert(Params.size() == Layers.size() * PerLayer + 4 &&
         "parameter node list does not match the model");

  auto LayerNormNode = [&](ValueId V, ValueId Gamma, ValueId Beta) {
    ValueId Centered = T.subRowMean(V);
    if (Config.LayerNormStdDiv) {
      ValueId Sq = T.hadamard(Centered, Centered);
      ValueId Var = T.rowMeans(Sq);
      ValueId VarEps =
          T.add(Var, T.input(Matrix(T.value(Var).rows(), 1, Config.LnEps)));
      ValueId InvStd = T.recip(T.sqrtOp(VarEps));
      Centered = T.mulColBroadcast(Centered, InvStd);
    }
    return T.addRowBroadcast(T.mulRowBroadcast(Centered, Gamma), Beta);
  };

  for (size_t L = 0; L < Layers.size(); ++L) {
    const ValueId *P = Params.data() + L * PerLayer;
    ValueId Q = T.addRowBroadcast(T.matmul(X, P[0]), P[1]);
    ValueId K = T.addRowBroadcast(T.matmul(X, P[2]), P[3]);
    ValueId V = T.addRowBroadcast(T.matmul(X, P[4]), P[5]);
    std::vector<ValueId> Heads;
    for (size_t H = 0; H < A; ++H) {
      ValueId Qh = T.colSlice(Q, H * Dk, (H + 1) * Dk);
      ValueId Kh = T.colSlice(K, H * Dk, (H + 1) * Dk);
      ValueId Vh = T.colSlice(V, H * Dk, (H + 1) * Dk);
      ValueId Scores = T.scale(T.matmulTB(Qh, Kh), Scale);
      ValueId Probs = T.rowSoftmax(Scores);
      Heads.push_back(T.matmul(Probs, Vh));
    }
    ValueId HeadsCat = T.concatCols(Heads);
    ValueId Z = T.addRowBroadcast(T.matmul(HeadsCat, P[6]), P[7]);
    ValueId V1 = T.add(X, Z);
    ValueId X1 = LayerNormNode(V1, P[8], P[9]);
    ValueId Hid = T.relu(T.addRowBroadcast(T.matmul(X1, P[10]), P[11]));
    ValueId F = T.addRowBroadcast(T.matmul(Hid, P[12]), P[13]);
    ValueId V2 = T.add(X1, F);
    X = LayerNormNode(V2, P[14], P[15]);
    (void)E;
  }
  size_t Base = Layers.size() * PerLayer;
  ValueId Pooled = T.rowSlice(X, 0, 1);
  ValueId Tn = T.tanhOp(
      T.addRowBroadcast(T.matmul(Pooled, Params[Base]), Params[Base + 1]));
  return T.addRowBroadcast(T.matmul(Tn, Params[Base + 2]), Params[Base + 3]);
}

//===----------------------------------------------------------------------===//
// VisionTransformer
//===----------------------------------------------------------------------===//

VisionTransformer VisionTransformer::init(size_t ImageSide, size_t PatchSide,
                                          const TransformerConfig &Config,
                                          support::Rng &Rng) {
  assert(ImageSide % PatchSide == 0 && "patch must tile the image");
  VisionTransformer V;
  V.ImageSide = ImageSide;
  V.PatchSide = PatchSide;
  size_t PatchDim = PatchSide * PatchSide;
  V.PatchW = xavier(PatchDim, Config.EmbedDim, Rng);
  V.PatchB = Matrix(1, Config.EmbedDim);
  TransformerConfig BC = Config;
  BC.MaxLen = std::max(BC.MaxLen, V.numPatches());
  // The backbone needs an embedding table only structurally.
  V.Backbone = TransformerModel::init(BC, Matrix(1, Config.EmbedDim), Rng);
  return V;
}

Matrix VisionTransformer::patchify(const Matrix &Pixels) const {
  assert(Pixels.size() == ImageSide * ImageSide && "pixel count mismatch");
  size_t PerSide = ImageSide / PatchSide;
  Matrix Out(numPatches(), patchDim());
  for (size_t PR = 0; PR < PerSide; ++PR)
    for (size_t PC = 0; PC < PerSide; ++PC) {
      size_t Patch = PR * PerSide + PC;
      for (size_t R = 0; R < PatchSide; ++R)
        for (size_t C = 0; C < PatchSide; ++C) {
          size_t Pixel = (PR * PatchSide + R) * ImageSide + PC * PatchSide + C;
          Out.at(Patch, R * PatchSide + C) = Pixels.flat(Pixel);
        }
    }
  return Out;
}

Matrix VisionTransformer::embedPixels(const Matrix &Pixels) const {
  Matrix Patches = patchify(Pixels);
  Matrix X = tensor::addRowBroadcast(tensor::matmul(Patches, PatchW), PatchB);
  for (size_t R = 0; R < X.rows(); ++R)
    for (size_t C = 0; C < X.cols(); ++C)
      X.at(R, C) += Backbone.Positional.at(R, C);
  return X;
}

Matrix VisionTransformer::forwardPixels(const Matrix &Pixels) const {
  return Backbone.forwardEmbeddings(embedPixels(Pixels));
}

size_t VisionTransformer::classify(const Matrix &Pixels) const {
  return forwardPixels(Pixels).argmax();
}

std::vector<Matrix *> VisionTransformer::parameters() {
  std::vector<Matrix *> P = {&PatchW, &PatchB};
  for (Matrix *M : Backbone.parameters())
    P.push_back(M);
  return P;
}

std::vector<ValueId> VisionTransformer::pushParams(Tape &T) const {
  std::vector<ValueId> Ids = {T.input(PatchW), T.input(PatchB)};
  for (ValueId Id : Backbone.pushParams(T))
    Ids.push_back(Id);
  return Ids;
}

ValueId VisionTransformer::buildForward(
    Tape &T, ValueId Pixels, const std::vector<ValueId> &Params) const {
  // Patchify is a fixed permutation: express it as a constant matmul
  // Patches = Perm * PixelsCol reshaped. We instead gather via a constant
  // linear map: Patches (NumPatches x PatchDim) = P * diag? Simplest:
  // build a constant permutation matrix applied to the transposed pixels.
  size_t NP = numPatches(), PD = patchDim();
  Matrix Perm(NP * PD, ImageSide * ImageSide);
  size_t PerSide = ImageSide / PatchSide;
  for (size_t PR = 0; PR < PerSide; ++PR)
    for (size_t PC = 0; PC < PerSide; ++PC) {
      size_t Patch = PR * PerSide + PC;
      for (size_t R = 0; R < PatchSide; ++R)
        for (size_t C = 0; C < PatchSide; ++C) {
          size_t Pixel = (PR * PatchSide + R) * ImageSide + PC * PatchSide + C;
          Perm.at(Patch * PD + R * PatchSide + C, Pixel) = 1.0;
        }
    }
  // Pixels is 1 x Side^2; Flat = Pixels * Perm^T is 1 x (NP * PD).
  ValueId PermId = T.input(Perm);
  ValueId Flat = T.matmulTB(Pixels, PermId);
  // Reshape 1 x (NP*PD) to NP x PD with a stack of row slices.
  std::vector<ValueId> Rows;
  for (size_t P = 0; P < NP; ++P)
    Rows.push_back(T.colSlice(Flat, P * PD, (P + 1) * PD));
  // Stack rows: transpose each to PD x 1, concat cols, transpose back.
  std::vector<ValueId> Cols;
  for (ValueId R : Rows)
    Cols.push_back(T.transpose(R));
  ValueId Patches = T.transpose(T.concatCols(Cols));
  ValueId X = T.addRowBroadcast(T.matmul(Patches, Params[0]), Params[1]);
  ValueId Pos = T.input(
      Backbone.Positional.rowSlice(0, NP));
  X = T.add(X, Pos);
  std::vector<ValueId> BackboneParams(Params.begin() + 2, Params.end());
  return Backbone.buildForward(T, X, BackboneParams);
}
