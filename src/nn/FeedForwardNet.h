//===- nn/FeedForwardNet.h - ReLU multi-layer perceptron -------*- C++ -*-===//
//
// Part of deept-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A plain fully-connected ReLU network with a linear classifier head,
/// used by the appendix A.2 experiment (the paper's MNIST 1-vs-7 DNN with
/// hidden sizes 10, 50, 10) and as the simplest target for the verifiers.
///
//===----------------------------------------------------------------------===//

#ifndef DEEPT_NN_FEEDFORWARDNET_H
#define DEEPT_NN_FEEDFORWARDNET_H

#include "autograd/Tape.h"
#include "tensor/Matrix.h"

#include <vector>

namespace deept {
namespace support {
class Rng;
} // namespace support

namespace nn {

using tensor::Matrix;

/// A ReLU MLP: Linear -> ReLU -> ... -> Linear (logits).
struct FeedForwardNet {
  std::vector<Matrix> Weights; // layer i: In_i x Out_i
  std::vector<Matrix> Biases;  // 1 x Out_i

  /// Builds a net with the given layer sizes, e.g. {64, 10, 50, 10, 2}.
  static FeedForwardNet init(const std::vector<size_t> &Sizes,
                             support::Rng &Rng);

  size_t numLayers() const { return Weights.size(); }
  size_t inputDim() const { return Weights.front().rows(); }
  size_t outputDim() const { return Weights.back().cols(); }

  /// Concrete forward: X is 1 x In, returns 1 x Out logits.
  Matrix forward(const Matrix &X) const;
  size_t classify(const Matrix &X) const;

  std::vector<Matrix *> parameters();
  std::vector<autograd::ValueId> pushParams(autograd::Tape &T) const;
  autograd::ValueId
  buildForward(autograd::Tape &T, autograd::ValueId X,
               const std::vector<autograd::ValueId> &Params) const;
};

} // namespace nn
} // namespace deept

#endif // DEEPT_NN_FEEDFORWARDNET_H
