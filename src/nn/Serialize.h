//===- nn/Serialize.h - Model (de)serialization ----------------*- C++ -*-===//
//
// Part of deept-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Binary save/load for TransformerModel plus a tiny disk cache used by
/// the benchmark binaries so a model trained for one table is reused by
/// the others (the paper similarly trains each network once).
///
/// The on-disk format (".dptm", version 2) is hardened against the
/// corruption modes a production model store actually sees:
///
///   magic "DPTM0002" | config header | matrix payload | CRC32 trailer
///
/// The loader verifies the magic and version, bounds-checks every
/// dimension field *before* allocating (a flipped bit in a header must
/// not become a 100-GB allocation), cross-checks each matrix shape
/// against the shape the config implies, detects truncation against the
/// file size, rejects non-finite weights, and verifies a CRC32 over
/// header + payload. Failures are typed support::Error values
/// (model_not_found / model_corrupt / io_error), never crashes or
/// silently wrong models. Saves are atomic (write temp + rename).
///
/// Version-1 files (no trailer) predate the checksum and still load --
/// the tracked bench model caches are v1 -- with every structural check
/// except the CRC.
///
//===----------------------------------------------------------------------===//

#ifndef DEEPT_NN_SERIALIZE_H
#define DEEPT_NN_SERIALIZE_H

#include "nn/Transformer.h"
#include "support/Error.h"

#include <functional>
#include <string>

namespace deept {
namespace nn {

/// Writes \p Model to \p Path atomically. Returns false on I/O failure,
/// filling \p Err (optional) with the typed cause.
bool saveModel(const std::string &Path, const TransformerModel &Model,
               support::Error *Err = nullptr);

/// Reads a model from \p Path. Returns false on failure, filling \p Err
/// (optional) with a typed cause: ModelNotFound when the file does not
/// exist, ModelCorrupt for any format/validation failure, IoError for OS
/// level read errors.
bool loadModel(const std::string &Path, TransformerModel &Model,
               support::Error *Err = nullptr);

/// Validates \p Config in isolation: every dimension within its sane
/// bound, heads dividing the embedding width. Used by the loader before
/// any allocation; exposed for tests.
bool validateConfig(const TransformerConfig &Config, std::string *Why);

/// Loads "CacheDir/Name.dptm" if present and valid, otherwise invokes
/// \p TrainFn and stores the result. A corrupt or stale cache file is
/// reported to stderr and replaced by retraining -- never trusted.
/// CacheDir is created if missing.
TransformerModel
getOrTrainCached(const std::string &CacheDir, const std::string &Name,
                 const std::function<TransformerModel()> &TrainFn);

/// The cache directory the benchmark binaries share (next to the build).
std::string defaultModelCacheDir();

} // namespace nn
} // namespace deept

#endif // DEEPT_NN_SERIALIZE_H
