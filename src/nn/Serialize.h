//===- nn/Serialize.h - Model (de)serialization ----------------*- C++ -*-===//
//
// Part of deept-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Binary save/load for TransformerModel plus a tiny disk cache used by
/// the benchmark binaries so a model trained for one table is reused by
/// the others (the paper similarly trains each network once).
///
//===----------------------------------------------------------------------===//

#ifndef DEEPT_NN_SERIALIZE_H
#define DEEPT_NN_SERIALIZE_H

#include "nn/Transformer.h"

#include <functional>
#include <string>

namespace deept {
namespace nn {

/// Writes \p Model to \p Path. Returns false on I/O failure.
bool saveModel(const std::string &Path, const TransformerModel &Model);

/// Reads a model from \p Path. Returns false on I/O or format failure.
bool loadModel(const std::string &Path, TransformerModel &Model);

/// Loads "CacheDir/Name.dptm" if present, otherwise invokes \p TrainFn and
/// stores the result. CacheDir is created if missing.
TransformerModel
getOrTrainCached(const std::string &CacheDir, const std::string &Name,
                 const std::function<TransformerModel()> &TrainFn);

/// The cache directory the benchmark binaries share (next to the build).
std::string defaultModelCacheDir();

} // namespace nn
} // namespace deept

#endif // DEEPT_NN_SERIALIZE_H
