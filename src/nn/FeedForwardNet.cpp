//===- nn/FeedForwardNet.cpp ----------------------------------*- C++ -*-===//

#include "nn/FeedForwardNet.h"

#include "support/Rng.h"

#include <cassert>
#include <cmath>

using namespace deept;
using namespace deept::nn;

FeedForwardNet FeedForwardNet::init(const std::vector<size_t> &Sizes,
                                    support::Rng &Rng) {
  assert(Sizes.size() >= 2 && "need at least input and output sizes");
  FeedForwardNet N;
  for (size_t L = 0; L + 1 < Sizes.size(); ++L) {
    N.Weights.push_back(Matrix::randn(Sizes[L], Sizes[L + 1], Rng,
                                      std::sqrt(2.0 / Sizes[L])));
    N.Biases.push_back(Matrix(1, Sizes[L + 1]));
  }
  return N;
}

Matrix FeedForwardNet::forward(const Matrix &X) const {
  Matrix H = X;
  for (size_t L = 0; L < Weights.size(); ++L) {
    H = tensor::addRowBroadcast(tensor::matmul(H, Weights[L]), Biases[L]);
    if (L + 1 != Weights.size())
      H.applyFn([](double V) { return V > 0 ? V : 0.0; });
  }
  return H;
}

size_t FeedForwardNet::classify(const Matrix &X) const {
  return forward(X).argmax();
}

std::vector<Matrix *> FeedForwardNet::parameters() {
  std::vector<Matrix *> P;
  for (size_t L = 0; L < Weights.size(); ++L) {
    P.push_back(&Weights[L]);
    P.push_back(&Biases[L]);
  }
  return P;
}

std::vector<autograd::ValueId>
FeedForwardNet::pushParams(autograd::Tape &T) const {
  std::vector<autograd::ValueId> Ids;
  for (size_t L = 0; L < Weights.size(); ++L) {
    Ids.push_back(T.input(Weights[L]));
    Ids.push_back(T.input(Biases[L]));
  }
  return Ids;
}

autograd::ValueId FeedForwardNet::buildForward(
    autograd::Tape &T, autograd::ValueId X,
    const std::vector<autograd::ValueId> &Params) const {
  assert(Params.size() == 2 * Weights.size() && "parameter list mismatch");
  autograd::ValueId H = X;
  for (size_t L = 0; L < Weights.size(); ++L) {
    H = T.addRowBroadcast(T.matmul(H, Params[2 * L]), Params[2 * L + 1]);
    if (L + 1 != Weights.size())
      H = T.relu(H);
  }
  return H;
}
