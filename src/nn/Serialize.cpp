//===- nn/Serialize.cpp ---------------------------------------*- C++ -*-===//

#include "nn/Serialize.h"

#include "support/Crc.h"
#include "support/Fault.h"
#include "support/Io.h"

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sys/stat.h>

using namespace deept;
using namespace deept::nn;
using support::Error;
using support::ErrorCode;
using tensor::Matrix;

namespace {

// Little-endian "DPTM0001" / "DPTM0002".
constexpr uint64_t MagicV1 = 0x4450544d30303031ULL;
constexpr uint64_t MagicV2 = 0x4450544d30303032ULL;

/// Upper bounds a header field must satisfy before anything is allocated.
/// Generous (two orders of magnitude above the largest model the repo
/// trains) but small enough that a corrupt header cannot OOM the process.
constexpr uint64_t MaxVocab = 1u << 22;
constexpr uint64_t MaxLenBound = 1u << 14;
constexpr uint64_t MaxDim = 1u << 14;
constexpr uint64_t MaxLayers = 1u << 10;
constexpr uint64_t MaxMatrixElems = 1u << 27; // 1 GiB of doubles

/// Checksums use the shared support::Crc32 (support/Crc.h).
using support::Crc32;

/// Checksummed reader over an open file, tracking the bytes consumed so
/// truncation can be told apart from other corruption.
class Reader {
public:
  Reader(FILE *F, uint64_t FileBytes) : F(F), FileBytes(FileBytes) {}

  bool read(void *Out, size_t N) {
    DEEPT_FAULT_POINT("serialize.read");
    if (DEEPT_FAULT_IO_FAIL("serialize.read") ||
        std::fread(Out, 1, N, F) != N)
      return false;
    Crc.update(Out, N);
    Consumed += N;
    return true;
  }

  bool readU64(uint64_t &V) { return read(&V, 8); }

  /// Bytes left before the payload would run into the trailer (v2) or
  /// the end of the file (v1).
  uint64_t remaining(uint64_t TrailerBytes) const {
    uint64_t Used = Consumed + TrailerBytes;
    return Used > FileBytes ? 0 : FileBytes - Used;
  }

  uint32_t crc() const { return Crc.value(); }

private:
  FILE *F;
  uint64_t FileBytes;
  uint64_t Consumed = 0;
  Crc32 Crc;
};

/// Matrices of a model in a fixed serialization order, paired with the
/// rows x cols shape the config dictates for each.
struct NamedMatrix {
  Matrix *M;
  size_t Rows, Cols;
};

std::vector<NamedMatrix> allMatrices(TransformerModel &M) {
  const TransformerConfig &C = M.Config;
  size_t E = C.EmbedDim, H = C.HiddenDim;
  std::vector<NamedMatrix> Out = {{&M.Embedding, C.VocabSize, E},
                                  {&M.Positional, C.MaxLen, E}};
  for (TransformerLayer &L : M.Layers) {
    NamedMatrix Block[] = {
        {&L.Wq, E, E},       {&L.Bq, 1, E},       {&L.Wk, E, E},
        {&L.Bk, 1, E},       {&L.Wv, E, E},       {&L.Bv, 1, E},
        {&L.Wo, E, E},       {&L.Bo, 1, E},       {&L.Ln1Gamma, 1, E},
        {&L.Ln1Beta, 1, E},  {&L.W1, E, H},       {&L.B1, 1, H},
        {&L.W2, H, E},       {&L.B2, 1, E},       {&L.Ln2Gamma, 1, E},
        {&L.Ln2Beta, 1, E}};
    Out.insert(Out.end(), std::begin(Block), std::end(Block));
  }
  NamedMatrix Tail[] = {{&M.PoolW, E, E},
                        {&M.PoolB, 1, E},
                        {&M.ClsW, E, 2},
                        {&M.ClsB, 1, 2}};
  Out.insert(Out.end(), std::begin(Tail), std::end(Tail));
  return Out;
}

bool corrupt(Error *Err, const std::string &Site, const std::string &Msg) {
  if (Err)
    *Err = Error(ErrorCode::ModelCorrupt, Site, Msg);
  return false;
}

} // namespace

bool deept::nn::validateConfig(const TransformerConfig &C, std::string *Why) {
  auto Fail = [&](const std::string &Msg) {
    if (Why)
      *Why = Msg;
    return false;
  };
  if (C.VocabSize == 0 || C.VocabSize > MaxVocab)
    return Fail("vocab size " + std::to_string(C.VocabSize) +
                " outside [1, " + std::to_string(MaxVocab) + "]");
  if (C.MaxLen == 0 || C.MaxLen > MaxLenBound)
    return Fail("max length " + std::to_string(C.MaxLen) + " outside [1, " +
                std::to_string(MaxLenBound) + "]");
  if (C.EmbedDim == 0 || C.EmbedDim > MaxDim)
    return Fail("embedding dim " + std::to_string(C.EmbedDim) +
                " outside [1, " + std::to_string(MaxDim) + "]");
  if (C.HiddenDim == 0 || C.HiddenDim > MaxDim)
    return Fail("hidden dim " + std::to_string(C.HiddenDim) +
                " outside [1, " + std::to_string(MaxDim) + "]");
  if (C.NumLayers == 0 || C.NumLayers > MaxLayers)
    return Fail("layer count " + std::to_string(C.NumLayers) +
                " outside [1, " + std::to_string(MaxLayers) + "]");
  if (C.NumHeads == 0 || C.NumHeads > C.EmbedDim ||
      C.EmbedDim % C.NumHeads != 0)
    return Fail("head count " + std::to_string(C.NumHeads) +
                " does not divide embedding dim " +
                std::to_string(C.EmbedDim));
  if (!std::isfinite(C.LnEps) || C.LnEps < 0)
    return Fail("layer-norm epsilon is not a finite non-negative number");
  return true;
}

bool deept::nn::saveModel(const std::string &Path,
                          const TransformerModel &Model,
                          support::Error *Err) {
  // Serialize into memory first; atomicWriteFile makes the file appear
  // all-or-nothing on disk.
  std::string Buf;
  auto Put = [&](const void *Data, size_t N) {
    Buf.append(static_cast<const char *>(Data), N);
  };
  auto PutU64 = [&](uint64_t V) { Put(&V, 8); };

  PutU64(MagicV2);
  const TransformerConfig &C = Model.Config;
  uint64_t Fields[] = {C.VocabSize, C.MaxLen,    C.EmbedDim,
                       C.NumHeads,  C.HiddenDim, C.NumLayers,
                       C.LayerNormStdDiv ? 1u : 0u};
  for (uint64_t V : Fields)
    PutU64(V);
  Put(&C.LnEps, sizeof(double));
  TransformerModel &Mutable = const_cast<TransformerModel &>(Model);
  for (const NamedMatrix &NM : allMatrices(Mutable)) {
    PutU64(NM.M->rows());
    PutU64(NM.M->cols());
    Put(NM.M->data(), NM.M->size() * sizeof(double));
  }
  // The CRC covers everything after the magic.
  Crc32 Crc;
  Crc.update(Buf.data() + 8, Buf.size() - 8);
  uint64_t Trailer = Crc.value();
  Buf.append(reinterpret_cast<const char *>(&Trailer), 8);

  DEEPT_FAULT_POINT("serialize.write");
  if (DEEPT_FAULT_IO_FAIL("serialize.write") ||
      !support::atomicWriteFile(Path, Buf, Err)) {
    if (Err && Err->code() == ErrorCode::Ok)
      *Err = Error(ErrorCode::IoError, "serialize.write",
                   "cannot write '" + Path + "'");
    return false;
  }
  return true;
}

bool deept::nn::loadModel(const std::string &Path, TransformerModel &Model,
                          support::Error *Err) {
  uint64_t FileBytes = 0;
  if (!support::fileSize(Path, FileBytes)) {
    if (Err)
      *Err = Error(ErrorCode::ModelNotFound, "serialize.open",
                   "no model file at '" + Path + "'");
    return false;
  }
  FILE *F = std::fopen(Path.c_str(), "rb");
  if (!F) {
    if (Err)
      *Err = Error(ErrorCode::IoError, "serialize.open",
                   "cannot open '" + Path + "'");
    return false;
  }
  struct Closer {
    FILE *F;
    ~Closer() { std::fclose(F); }
  } AutoClose{F};

  Reader In(F, FileBytes);
  uint64_t M0 = 0;
  if (!In.readU64(M0))
    return corrupt(Err, "serialize.magic",
                   "file shorter than the magic ('" + Path + "')");
  bool Legacy = M0 == MagicV1;
  if (!Legacy && M0 != MagicV2) {
    if (M0 >> 32 == MagicV2 >> 32)
      return corrupt(Err, "serialize.magic",
                     "unsupported .dptm format version");
    return corrupt(Err, "serialize.magic", "not a .dptm model file");
  }
  // The CRC covers everything after the magic, so the body gets a fresh
  // reader whose byte accounting also starts after the magic.
  Reader Body(F, FileBytes - 8);
  const uint64_t TrailerBytes = Legacy ? 0 : 8;

  uint64_t Fields[7];
  for (uint64_t &V : Fields)
    if (!Body.readU64(V))
      return corrupt(Err, "serialize.header",
                     "truncated inside the config header");
  TransformerConfig C;
  C.VocabSize = Fields[0];
  C.MaxLen = Fields[1];
  C.EmbedDim = Fields[2];
  C.NumHeads = Fields[3];
  C.HiddenDim = Fields[4];
  C.NumLayers = Fields[5];
  if (Fields[6] > 1)
    return corrupt(Err, "serialize.header",
                   "layer-norm flag is neither 0 nor 1");
  C.LayerNormStdDiv = Fields[6] != 0;
  if (!Body.read(&C.LnEps, sizeof(double)))
    return corrupt(Err, "serialize.header", "truncated before lnEps");
  std::string Why;
  if (!validateConfig(C, &Why))
    return corrupt(Err, "serialize.header", Why);

  DEEPT_FAULT_POINT("serialize.alloc");
  TransformerModel Fresh;
  Fresh.Config = C;
  Fresh.Layers.resize(C.NumLayers);
  for (const NamedMatrix &NM : allMatrices(Fresh)) {
    uint64_t Rows = 0, Cols = 0;
    if (!Body.readU64(Rows) || !Body.readU64(Cols))
      return corrupt(Err, "serialize.matrix",
                     "truncated inside a matrix header");
    if (Rows != NM.Rows || Cols != NM.Cols)
      return corrupt(Err, "serialize.matrix",
                     "matrix is " + std::to_string(Rows) + "x" +
                         std::to_string(Cols) + " but the config implies " +
                         std::to_string(NM.Rows) + "x" +
                         std::to_string(NM.Cols));
    uint64_t Elems = Rows * Cols;
    if (Elems > MaxMatrixElems)
      return corrupt(Err, "serialize.matrix", "matrix implausibly large");
    // Truncation check *before* the allocation: the declared payload must
    // fit in the bytes the file actually has.
    if (Body.remaining(TrailerBytes) < Elems * sizeof(double))
      return corrupt(Err, "serialize.matrix",
                     "file too short for the declared payload");
    *NM.M = Matrix(Rows, Cols);
    if (!Body.read(NM.M->data(), Elems * sizeof(double)))
      return corrupt(Err, "serialize.matrix", "short read in a payload");
    DEEPT_FAULT_CORRUPT("serialize.payload", NM.M->data(), NM.M->size());
    for (size_t I = 0; I < NM.M->size(); ++I)
      if (!std::isfinite(NM.M->flat(I)))
        return corrupt(Err, "serialize.payload",
                       "non-finite weight in the payload");
  }

  if (!Legacy) {
    uint32_t Expected = Body.crc();
    uint64_t Trailer = 0;
    if (std::fread(&Trailer, 8, 1, F) != 1)
      return corrupt(Err, "serialize.trailer", "truncated before the CRC");
    if (static_cast<uint32_t>(Trailer) != Expected)
      return corrupt(Err, "serialize.trailer", "CRC32 mismatch");
  }
  // Trailing garbage after the trailer means the file is not what the
  // writer produced.
  if (Body.remaining(TrailerBytes) != 0)
    return corrupt(Err, "serialize.trailer",
                   "trailing bytes after the model payload");

  Model = std::move(Fresh);
  return true;
}

std::string deept::nn::defaultModelCacheDir() {
  if (const char *Env = std::getenv("DEEPT_MODEL_CACHE"))
    return Env;
  return "deept-model-cache";
}

TransformerModel deept::nn::getOrTrainCached(
    const std::string &CacheDir, const std::string &Name,
    const std::function<TransformerModel()> &TrainFn) {
  ::mkdir(CacheDir.c_str(), 0755);
  std::string Path = CacheDir + "/" + Name + ".dptm";
  TransformerModel Model;
  Error Err;
  if (loadModel(Path, Model, &Err))
    return Model;
  // A cold cache is normal; a corrupt one is worth a warning before the
  // fallback retraining replaces it.
  if (Err.code() != ErrorCode::ModelNotFound)
    std::fprintf(stderr,
                 "warning: model cache '%s' is unusable (%s); retraining\n",
                 Path.c_str(), Err.what());
  Model = TrainFn();
  if (!saveModel(Path, Model, &Err))
    std::fprintf(stderr, "warning: cannot refresh model cache '%s' (%s)\n",
                 Path.c_str(), Err.what());
  return Model;
}
