//===- nn/Serialize.cpp ---------------------------------------*- C++ -*-===//

#include "nn/Serialize.h"

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <sys/stat.h>

using namespace deept;
using namespace deept::nn;
using tensor::Matrix;

namespace {

constexpr uint64_t Magic = 0x4450544d30303031ULL; // "DPTM0001"

bool writeU64(FILE *F, uint64_t V) { return std::fwrite(&V, 8, 1, F) == 1; }
bool readU64(FILE *F, uint64_t &V) { return std::fread(&V, 8, 1, F) == 1; }

bool writeMatrix(FILE *F, const Matrix &M) {
  if (!writeU64(F, M.rows()) || !writeU64(F, M.cols()))
    return false;
  return std::fwrite(M.data(), sizeof(double), M.size(), F) == M.size();
}

bool readMatrix(FILE *F, Matrix &M) {
  uint64_t Rows, Cols;
  if (!readU64(F, Rows) || !readU64(F, Cols))
    return false;
  if (Rows > (1u << 24) || Cols > (1u << 24))
    return false; // implausible header; refuse
  M = Matrix(Rows, Cols);
  return std::fread(M.data(), sizeof(double), M.size(), F) == M.size();
}

/// Matrices of a model in a fixed serialization order.
std::vector<Matrix *> allMatrices(TransformerModel &M) {
  std::vector<Matrix *> Out = {&M.Embedding, &M.Positional};
  for (Matrix *P : M.parameters())
    Out.push_back(P);
  return Out;
}

} // namespace

bool deept::nn::saveModel(const std::string &Path,
                          const TransformerModel &Model) {
  FILE *F = std::fopen(Path.c_str(), "wb");
  if (!F)
    return false;
  bool Ok = writeU64(F, Magic);
  const TransformerConfig &C = Model.Config;
  uint64_t Fields[] = {C.VocabSize, C.MaxLen,    C.EmbedDim,
                       C.NumHeads,  C.HiddenDim, C.NumLayers,
                       C.LayerNormStdDiv ? 1u : 0u};
  for (uint64_t V : Fields)
    Ok = Ok && writeU64(F, V);
  Ok = Ok && std::fwrite(&C.LnEps, sizeof(double), 1, F) == 1;
  TransformerModel &Mutable = const_cast<TransformerModel &>(Model);
  for (Matrix *M : allMatrices(Mutable))
    Ok = Ok && writeMatrix(F, *M);
  std::fclose(F);
  return Ok;
}

bool deept::nn::loadModel(const std::string &Path, TransformerModel &Model) {
  FILE *F = std::fopen(Path.c_str(), "rb");
  if (!F)
    return false;
  uint64_t M0;
  if (!readU64(F, M0) || M0 != Magic) {
    std::fclose(F);
    return false;
  }
  uint64_t Fields[7];
  bool Ok = true;
  for (uint64_t &V : Fields)
    Ok = Ok && readU64(F, V);
  TransformerConfig C;
  C.VocabSize = Fields[0];
  C.MaxLen = Fields[1];
  C.EmbedDim = Fields[2];
  C.NumHeads = Fields[3];
  C.HiddenDim = Fields[4];
  C.NumLayers = Fields[5];
  C.LayerNormStdDiv = Fields[6] != 0;
  Ok = Ok && std::fread(&C.LnEps, sizeof(double), 1, F) == 1;
  if (!Ok) {
    std::fclose(F);
    return false;
  }
  Model = TransformerModel();
  Model.Config = C;
  Model.Layers.resize(C.NumLayers);
  for (Matrix *M : allMatrices(Model))
    Ok = Ok && readMatrix(F, *M);
  std::fclose(F);
  return Ok;
}

std::string deept::nn::defaultModelCacheDir() {
  if (const char *Env = std::getenv("DEEPT_MODEL_CACHE"))
    return Env;
  return "deept-model-cache";
}

TransformerModel deept::nn::getOrTrainCached(
    const std::string &CacheDir, const std::string &Name,
    const std::function<TransformerModel()> &TrainFn) {
  ::mkdir(CacheDir.c_str(), 0755);
  std::string Path = CacheDir + "/" + Name + ".dptm";
  TransformerModel Model;
  if (loadModel(Path, Model))
    return Model;
  Model = TrainFn();
  saveModel(Path, Model);
  return Model;
}
