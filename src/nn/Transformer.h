//===- nn/Transformer.h - Encoder Transformer for classification -*- C++ -*-===//
//
// Part of deept-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The encoder Transformer network of Section 3.1, specialised to binary
/// sequence classification exactly as the paper evaluates it: token
/// embedding + positional encoding, M layers of multi-head self-attention
/// and a ReLU feed-forward block (each with a residual connection and a
/// layer normalisation *without* division by the standard deviation by
/// default; the standard variant of Section 6.6 is available via
/// TransformerConfig::LayerNormStdDiv), first-token pooling through a tanh
/// layer, and a binary linear classifier.
///
/// The same weights are consumed by three execution engines: the concrete
/// forward pass here, the Multi-norm Zonotope propagation (verify/DeepT),
/// and the linear-bound graph (crown/). A Vision Transformer variant
/// replaces the embedding table with a linear patch embedding
/// (Appendix A.3).
///
//===----------------------------------------------------------------------===//

#ifndef DEEPT_NN_TRANSFORMER_H
#define DEEPT_NN_TRANSFORMER_H

#include "autograd/Tape.h"
#include "tensor/Matrix.h"

#include <vector>

namespace deept {
namespace support {
class Rng;
} // namespace support

namespace nn {

using tensor::Matrix;

struct TransformerConfig {
  size_t VocabSize = 0;
  size_t MaxLen = 16;
  size_t EmbedDim = 32;
  size_t NumHeads = 4;
  size_t HiddenDim = 32;
  size_t NumLayers = 3;
  /// false (paper default): layer norm maps v to gamma*(v - mean(v)) +
  /// beta. true: standard layer norm dividing by the standard deviation.
  bool LayerNormStdDiv = false;
  /// Variance epsilon of the standard layer norm.
  double LnEps = 1e-6;

  size_t headDim() const { return EmbedDim / NumHeads; }
};

/// Weights of one Transformer layer (Figure 3).
struct TransformerLayer {
  Matrix Wq, Bq, Wk, Bk, Wv, Bv; // E x E / 1 x E (all heads fused)
  Matrix Wo, Bo;                 // E x E / 1 x E
  Matrix Ln1Gamma, Ln1Beta;      // 1 x E
  Matrix W1, B1;                 // E x H / 1 x H
  Matrix W2, B2;                 // H x E / 1 x E
  Matrix Ln2Gamma, Ln2Beta;      // 1 x E
};

/// The full classification network (Figure 2).
struct TransformerModel {
  TransformerConfig Config;
  Matrix Embedding;  // Vocab x E; frozen (pretrained-embedding stand-in)
  Matrix Positional; // MaxLen x E; frozen sinusoidal encoding
  std::vector<TransformerLayer> Layers;
  Matrix PoolW, PoolB; // E x E / 1 x E, tanh pooler
  Matrix ClsW, ClsB;   // E x 2 / 1 x 2

  /// Fresh model with Xavier-style random weights. \p Embedding rows are
  /// the frozen token embeddings (typically the corpus' embedding matrix).
  static TransformerModel init(const TransformerConfig &Config,
                               const Matrix &Embedding, support::Rng &Rng);

  /// Sinusoidal positional encoding matrix (MaxLen x E).
  static Matrix sinusoidalPositional(size_t MaxLen, size_t EmbedDim);

  /// Token embedding + positional encoding for a sequence (N x E).
  Matrix embed(const std::vector<size_t> &Tokens) const;

  /// Concrete forward pass from embeddings to logits (1 x 2).
  Matrix forwardEmbeddings(const Matrix &X) const;

  /// Concrete classification of a token sequence.
  size_t classify(const std::vector<size_t> &Tokens) const;

  /// Trainable parameters in a stable order (excludes the frozen
  /// embedding and positional encodings).
  std::vector<Matrix *> parameters();
  std::vector<const Matrix *> parameters() const;

  /// Pushes all trainable parameters onto \p T in parameters() order.
  std::vector<autograd::ValueId> pushParams(autograd::Tape &T) const;

  /// Builds the differentiable forward pass on \p T from embeddings node
  /// \p X (N x E) using parameter nodes \p Params (from pushParams).
  /// Returns the logits node (1 x 2).
  autograd::ValueId
  buildForward(autograd::Tape &T, autograd::ValueId X,
               const std::vector<autograd::ValueId> &Params) const;
};

/// Vision Transformer (Appendix A.3): images are cut into patches, each
/// patch is linearly embedded, then the encoder stack above runs
/// unchanged. The Backbone's embedding table is unused.
struct VisionTransformer {
  size_t ImageSide = 8;
  size_t PatchSide = 4;
  Matrix PatchW, PatchB; // PatchDim x E / 1 x E
  TransformerModel Backbone;

  static VisionTransformer init(size_t ImageSide, size_t PatchSide,
                                const TransformerConfig &Config,
                                support::Rng &Rng);

  size_t numPatches() const {
    size_t PerSide = ImageSide / PatchSide;
    return PerSide * PerSide;
  }
  size_t patchDim() const { return PatchSide * PatchSide; }

  /// Rearranges a flat 1 x Side^2 image into numPatches x patchDim rows.
  Matrix patchify(const Matrix &Pixels) const;

  /// Patch embedding (numPatches x E) including positional encoding.
  Matrix embedPixels(const Matrix &Pixels) const;

  Matrix forwardPixels(const Matrix &Pixels) const;
  size_t classify(const Matrix &Pixels) const;

  std::vector<Matrix *> parameters();
  std::vector<autograd::ValueId> pushParams(autograd::Tape &T) const;
  /// Forward from a pixels node (1 x Side^2) to logits.
  autograd::ValueId
  buildForward(autograd::Tape &T, autograd::ValueId Pixels,
               const std::vector<autograd::ValueId> &Params) const;
};

} // namespace nn
} // namespace deept

#endif // DEEPT_NN_TRANSFORMER_H
