//===- nn/Train.cpp -------------------------------------------*- C++ -*-===//

#include "nn/Train.h"

#include "autograd/Adam.h"
#include "autograd/Tape.h"

#include <cassert>

using namespace deept;
using namespace deept::nn;
using autograd::Adam;
using autograd::AdamOptions;
using autograd::Tape;
using autograd::ValueId;

namespace {

/// Shared mini-batch Adam driver. \p LossFn builds the forward pass for
/// one example on a fresh tape (with parameters already pushed) and
/// returns the scalar loss node.
template <typename Model, typename Example>
void trainGeneric(Model &M, const std::vector<Example> &Train,
                  const TrainOptions &Opts,
                  const std::function<ValueId(Tape &, const Example &,
                                              const std::vector<ValueId> &)>
                      &LossFn) {
  assert(!Train.empty() && "empty training set");
  support::Rng Rng(Opts.Seed);
  AdamOptions AO;
  AO.LearningRate = Opts.LearningRate;
  Adam Optimizer(AO);
  std::vector<tensor::Matrix *> Params = M.parameters();
  for (tensor::Matrix *P : Params)
    Optimizer.registerParam(P);

  for (size_t Step = 0; Step < Opts.Steps; ++Step) {
    std::vector<tensor::Matrix> Grads;
    for (tensor::Matrix *P : Params)
      Grads.emplace_back(P->rows(), P->cols(), 0.0);
    for (size_t B = 0; B < Opts.BatchSize; ++B) {
      const Example &Ex = Train[Rng.uniformInt(Train.size())];
      Tape T;
      std::vector<ValueId> ParamIds = M.pushParams(T);
      ValueId Loss = LossFn(T, Ex, ParamIds);
      T.backward(Loss);
      for (size_t P = 0; P < ParamIds.size(); ++P)
        Grads[P].addScaled(T.grad(ParamIds[P]),
                           1.0 / static_cast<double>(Opts.BatchSize));
    }
    Optimizer.step(Grads);
  }
}

} // namespace

void deept::nn::trainTransformer(TransformerModel &Model,
                                 const data::SyntheticCorpus &Corpus,
                                 const std::vector<data::Sentence> &Train,
                                 const TrainOptions &Opts) {
  support::Rng AugRng(Opts.Seed ^ 0xabcdef);
  trainGeneric<TransformerModel, data::Sentence>(
      Model, Train, Opts,
      [&](Tape &T, const data::Sentence &Ex,
          const std::vector<ValueId> &Params) {
        data::Sentence S = Ex;
        if (Opts.SynonymSwapProb > 0.0)
          Corpus.swapSynonyms(S, Opts.SynonymSwapProb, AugRng);
        tensor::Matrix X = Model.embed(S.Tokens);
        if (Opts.EmbedNoise > 0.0)
          X += tensor::Matrix::randn(X.rows(), X.cols(), AugRng,
                                     Opts.EmbedNoise);
        ValueId XId = T.input(std::move(X));
        ValueId Logits = Model.buildForward(T, XId, Params);
        return T.crossEntropyLogits(Logits, S.Label);
      });
}

double deept::nn::accuracy(const TransformerModel &Model,
                           const std::vector<data::Sentence> &Eval) {
  if (Eval.empty())
    return 0.0;
  size_t Correct = 0;
  for (const data::Sentence &S : Eval)
    Correct += Model.classify(S.Tokens) == S.Label;
  return static_cast<double>(Correct) / Eval.size();
}

void deept::nn::trainVisionTransformer(
    VisionTransformer &Model, const std::vector<data::ImageExample> &Train,
    const TrainOptions &Opts) {
  trainGeneric<VisionTransformer, data::ImageExample>(
      Model, Train, Opts,
      [&](Tape &T, const data::ImageExample &Ex,
          const std::vector<ValueId> &Params) {
        ValueId Pixels = T.input(Ex.Pixels);
        ValueId Logits = Model.buildForward(T, Pixels, Params);
        return T.crossEntropyLogits(Logits, Ex.Label);
      });
}

double deept::nn::accuracy(const VisionTransformer &Model,
                           const std::vector<data::ImageExample> &Eval) {
  if (Eval.empty())
    return 0.0;
  size_t Correct = 0;
  for (const data::ImageExample &Ex : Eval)
    Correct += Model.classify(Ex.Pixels) == Ex.Label;
  return static_cast<double>(Correct) / Eval.size();
}

void deept::nn::trainFeedForward(FeedForwardNet &Model,
                                 const std::vector<data::ImageExample> &Train,
                                 const TrainOptions &Opts) {
  trainGeneric<FeedForwardNet, data::ImageExample>(
      Model, Train, Opts,
      [&](Tape &T, const data::ImageExample &Ex,
          const std::vector<ValueId> &Params) {
        ValueId X = T.input(Ex.Pixels);
        ValueId Logits = Model.buildForward(T, X, Params);
        return T.crossEntropyLogits(Logits, Ex.Label);
      });
}

double deept::nn::accuracy(const FeedForwardNet &Model,
                           const std::vector<data::ImageExample> &Eval) {
  if (Eval.empty())
    return 0.0;
  size_t Correct = 0;
  for (const data::ImageExample &Ex : Eval)
    Correct += Model.classify(Ex.Pixels) == Ex.Label;
  return static_cast<double>(Correct) / Eval.size();
}
