//===- nn/Train.h - Training loops -----------------------------*- C++ -*-===//
//
// Part of deept-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Adam training loops for the Transformer, Vision Transformer and
/// feed-forward models over the synthetic datasets. "Robust" training for
/// the synonym-attack experiment (paper Section 6.7, which uses certified
/// training we substitute per DESIGN.md) is implemented as synonym-swap
/// plus embedding-noise data augmentation.
///
//===----------------------------------------------------------------------===//

#ifndef DEEPT_NN_TRAIN_H
#define DEEPT_NN_TRAIN_H

#include "data/StrokeImages.h"
#include "data/SyntheticCorpus.h"
#include "nn/FeedForwardNet.h"
#include "nn/Transformer.h"

namespace deept {
namespace nn {

struct TrainOptions {
  size_t Steps = 250;
  size_t BatchSize = 16;
  double LearningRate = 2e-3;
  uint64_t Seed = 7;
  /// Stddev of Gaussian noise added to input embeddings (robust training).
  double EmbedNoise = 0.0;
  /// Probability of replacing each token by a random synonym per step
  /// (robust training).
  double SynonymSwapProb = 0.0;
};

/// Trains \p Model in place on \p Train sentences.
void trainTransformer(TransformerModel &Model,
                      const data::SyntheticCorpus &Corpus,
                      const std::vector<data::Sentence> &Train,
                      const TrainOptions &Opts);

/// Fraction of correctly classified sentences.
double accuracy(const TransformerModel &Model,
                const std::vector<data::Sentence> &Eval);

void trainVisionTransformer(VisionTransformer &Model,
                            const std::vector<data::ImageExample> &Train,
                            const TrainOptions &Opts);
double accuracy(const VisionTransformer &Model,
                const std::vector<data::ImageExample> &Eval);

void trainFeedForward(FeedForwardNet &Model,
                      const std::vector<data::ImageExample> &Train,
                      const TrainOptions &Opts);
double accuracy(const FeedForwardNet &Model,
                const std::vector<data::ImageExample> &Eval);

} // namespace nn
} // namespace deept

#endif // DEEPT_NN_TRAIN_H
