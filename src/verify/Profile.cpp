//===- verify/Profile.cpp -------------------------------------*- C++ -*-===//

#include "verify/Profile.h"

#include "support/Json.h"
#include "support/Metrics.h"
#include "zono/Provenance.h"
#include "zono/Zonotope.h"

#include <algorithm>
#include <cmath>
#include <map>

using namespace deept;
using namespace deept::verify;
using support::jsonEscape;
using support::jsonNumber;
using tensor::Matrix;

void PrecisionProfile::resetMeasurements() {
  Checkpoints.clear();
  Attribution.clear();
  MarginLo = MarginHi = MarginWidth = 0.0;
  Falsified = false;
  TotalMs = 0.0;
}

std::string PrecisionProfile::toJsonLine() const {
  std::string Out = "{\"query\":\"" + jsonEscape(Query) + "\",\"method\":\"" +
                    jsonEscape(Method) + "\",\"norm\":\"" + jsonEscape(Norm) +
                    "\",\"eps\":" + jsonNumber(Eps) +
                    ",\"margin_lo\":" + jsonNumber(MarginLo) +
                    ",\"margin_hi\":" + jsonNumber(MarginHi) +
                    ",\"margin_width\":" + jsonNumber(MarginWidth) +
                    ",\"falsified\":" + (Falsified ? "true" : "false") +
                    ",\"total_ms\":" + jsonNumber(TotalMs) +
                    ",\"checkpoints\":[";
  bool First = true;
  for (const CheckpointProfile &C : Checkpoints) {
    if (!First)
      Out += ",";
    First = false;
    Out += "{\"site\":\"" + jsonEscape(C.Site) +
           "\",\"layer\":" + std::to_string(C.Layer) +
           ",\"head\":" + std::to_string(C.Head) +
           ",\"mean_width\":" + jsonNumber(C.MeanWidth) +
           ",\"max_width\":" + jsonNumber(C.MaxWidth) +
           ",\"growth\":" + jsonNumber(C.Growth) +
           ",\"eps_syms\":" + std::to_string(C.EpsSyms) +
           ",\"eps_blocks\":" + std::to_string(C.EpsBlocks) +
           ",\"structured_frac\":" + jsonNumber(C.StructuredFrac) +
           ",\"coeff_bytes\":" + std::to_string(C.CoeffBytes) +
           ",\"since_ms\":" + jsonNumber(C.SinceMs) + "}";
  }
  Out += "],\"attribution\":[";
  First = true;
  for (const GroupContribution &G : Attribution) {
    if (!First)
      Out += ",";
    First = false;
    Out += "{\"group\":\"" + jsonEscape(G.Group) +
           "\",\"symbols\":" + std::to_string(G.Symbols) +
           ",\"width\":" + jsonNumber(G.Width) + "}";
  }
  Out += "]}";
  return Out;
}

void deept::verify::profileCheckpoint(PrecisionProfile &P,
                                      const zono::Zonotope &Z,
                                      const char *Site, int Layer, int Head,
                                      double SinceMs) {
  CheckpointProfile C;
  C.Site = Site;
  C.Layer = Layer;
  C.Head = Head;
  // Width = 2 * noise radius per variable (Theorem 1).
  Matrix R = Z.radii();
  double Sum = 0.0, Max = 0.0;
  for (size_t I = 0; I < R.size(); ++I) {
    double W = 2.0 * R.flat(I);
    Sum += W;
    Max = std::max(Max, W);
  }
  C.MeanWidth = R.size() ? Sum / static_cast<double>(R.size()) : 0.0;
  C.MaxWidth = Max;
  if (!P.Checkpoints.empty() && P.Checkpoints.back().MeanWidth > 0.0)
    C.Growth = C.MeanWidth / P.Checkpoints.back().MeanWidth;
  C.EpsSyms = Z.numEps();
  C.EpsBlocks = Z.epsBlockCount();
  C.StructuredFrac = Z.epsStructuredFraction();
  C.CoeffBytes = Z.coeffBytes();
  C.SinceMs = SinceMs;
  P.Checkpoints.push_back(std::move(C));
}

void deept::verify::profileMargin(PrecisionProfile &P,
                                  const zono::Zonotope &Margin,
                                  const zono::SymbolProvenance &Prov,
                                  double Lo, double Hi) {
  P.MarginLo = Lo;
  P.MarginHi = Hi;
  P.MarginWidth = Hi - Lo;
  P.Falsified = !(Lo > 0.0);
  P.Attribution.clear();

  // Phi (input embedding) contribution: 2*||alpha||_q over the margin's
  // single variable, with q the dual exponent of the phi norm. Mirrors
  // the columnDualNorms kernel, ascending symbol order.
  {
    double Q = tensor::dualExponent(Margin.phiP());
    const Matrix &Phi = Margin.phiCoeffs();
    double Acc = 0.0;
    if (Q == 2.0) {
      for (size_t S = 0; S < Phi.rows(); ++S)
        Acc += Phi.at(S, 0) * Phi.at(S, 0);
      Acc = std::sqrt(Acc);
    } else if (Q == Matrix::InfNorm) {
      for (size_t S = 0; S < Phi.rows(); ++S)
        Acc = std::max(Acc, std::fabs(Phi.at(S, 0)));
    } else {
      for (size_t S = 0; S < Phi.rows(); ++S)
        Acc += std::fabs(Phi.at(S, 0));
    }
    GroupContribution G;
    G.Group = "input.phi";
    G.Symbols = Phi.rows();
    G.Width = 2.0 * Acc;
    P.Attribution.push_back(std::move(G));
  }

  // Eps contributions: the l1 norm splits additively over the provenance
  // partition, so walking the blocks in ascending symbol order and
  // charging each |beta_j| to its group is an exact decomposition of
  // 2*||beta||_1.
  std::map<std::string, GroupContribution> Groups;
  auto Charge = [&](size_t Sym, double Coef) {
    const std::string &Name = Prov.groupOf(Sym);
    GroupContribution &G = Groups[Name];
    G.Group = Name;
    G.Symbols++;
    G.Width += 2.0 * std::fabs(Coef);
  };
  for (const zono::EpsBlockView &V : Margin.epsBlockViews()) {
    switch (V.Kind) {
    case zono::EpsBlockKind::Dense:
      for (size_t I = 0; I < V.Syms; ++I)
        Charge(V.Start + I, V.Dense->at(I, 0));
      break;
    case zono::EpsBlockKind::Diag:
      for (size_t I = 0; I < V.Syms; ++I)
        Charge(V.Start + I, V.Entries[I].second);
      break;
    case zono::EpsBlockKind::Zero:
      break;
    }
  }
  for (auto &[Name, G] : Groups)
    P.Attribution.push_back(std::move(G));

  support::Metrics &MR = support::Metrics::global();
  MR.counter("profile.queries").add(1);
  if (P.Falsified)
    MR.counter("profile.falsified").add(1);
  MR.histogram("profile.margin_width").observe(P.MarginWidth);
  static support::Histogram &Growth =
      MR.histogram("profile.checkpoint_growth");
  for (const CheckpointProfile &C : P.Checkpoints)
    if (C.Growth > 0.0)
      Growth.observe(C.Growth);
}
