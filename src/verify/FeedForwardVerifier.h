//===- verify/FeedForwardVerifier.h - MLP zonotope verifier ----*- C++ -*-===//
//
// Part of deept-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Multi-norm Zonotope certification of plain ReLU networks (the paper's
/// appendix A.2 experiment): the domain is general, so the verifier is a
/// direct composition of the affine and ReLU transformers.
///
//===----------------------------------------------------------------------===//

#ifndef DEEPT_VERIFY_FEEDFORWARDVERIFIER_H
#define DEEPT_VERIFY_FEEDFORWARDVERIFIER_H

#include "nn/FeedForwardNet.h"
#include "zono/Zonotope.h"

namespace deept {
namespace verify {

class CertificateBuilder;

/// Propagates an input zonotope (1 x In) to the logits zonotope. With a
/// certificate builder attached, records an "ffn.input" checkpoint plus
/// one "ffn.layer_output" checkpoint per layer (see verify/Certificate.h).
zono::Zonotope propagateFeedForward(const nn::FeedForwardNet &Net,
                                    const zono::Zonotope &Input,
                                    CertificateBuilder *Cert = nullptr);

/// Lower bound of logits[TrueClass] - logits[1 - TrueClass]. With a
/// certificate builder attached, records the full run (input,
/// checkpoints, margin derivation) for replay by tools/deept_check.
double feedForwardMargin(const nn::FeedForwardNet &Net,
                         const zono::Zonotope &Input, size_t TrueClass,
                         CertificateBuilder *Cert = nullptr);

/// Certifies an lp ball of radius \p Radius around \p X (1 x In).
bool certifyFeedForwardLpBall(const nn::FeedForwardNet &Net,
                              const tensor::Matrix &X, double P,
                              double Radius, size_t TrueClass,
                              CertificateBuilder *Cert = nullptr);

} // namespace verify
} // namespace deept

#endif // DEEPT_VERIFY_FEEDFORWARDVERIFIER_H
