//===- verify/Certificate.h - Proof certificate producer -------*- C++ -*-===//
//
// Part of deept-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The producer half of the proof-certificate layer. A CertificateBuilder
/// attached to VerifierConfig::Certificate records, per margin
/// computation:
///
///  * the concretized input region (per-variable lo/hi of the input
///    zonotope),
///  * at every propagation checkpoint (the PR 6 sites: layer inputs,
///    attention scores/outputs, logits) the symbol bookkeeping plus the
///    Theorem 1 derivation inputs -- center, ||alpha_k||_q, ||beta_k||_1
///    -- and the interval concretization computed from them,
///  * the final margin derivation: the raw alpha/beta coefficient vectors
///    of the 1x1 margin zonotope, their dual norms, and the lo/hi bounds
///    the verdict was taken from.
///
/// The artifact is a single-line JSON envelope whose payload is CRC-32
/// checked:
///
///   {"deept_cert":1,"isa":"...","threads":N,"crc32":C,"payload":{...}}
///
/// The CRC covers exactly the payload object's bytes; isa/threads live
/// outside it because results are bit-identical at any thread count
/// within an ISA (so payloads -- and hence CRCs -- must match across
/// thread counts) but reductions are lane-ordered per ISA (so payloads
/// may differ across ISAs; cross-ISA comparison uses the checker's
/// semantic digest instead).
///
/// Soundness contract with the checker (tools/deept_check): every
/// recorded derived value (checkpoint lo/hi, margin lo/hi) is computed
/// HERE, by this builder, from the recorded inputs in a fixed
/// left-to-right association -- lo = c - (a + b) -- matching what
/// Zonotope::bounds() does. The checker replays the same expressions with
/// directed rounding; by rounding monotonicity the round-to-nearest value
/// always falls inside the directed enclosure, so honest certificates
/// verify and a 1-ULP tampering outside the enclosure is rejected.
///
//===----------------------------------------------------------------------===//

#ifndef DEEPT_VERIFY_CERTIFICATE_H
#define DEEPT_VERIFY_CERTIFICATE_H

#include <cstddef>
#include <string>
#include <vector>

namespace deept {

namespace zono {
class Zonotope;
} // namespace zono

namespace verify {

/// One propagation checkpoint: bookkeeping plus the Theorem 1 inputs and
/// the interval concretization derived from them.
struct CertCheckpoint {
  std::string Site;
  int Layer = -1;
  int Head = -1;
  size_t Rows = 0, Cols = 0;
  size_t PhiSyms = 0, EpsSyms = 0, EpsBlocks = 0;
  /// Per-variable (row-major, Rows*Cols each): center, ||alpha_k||_q,
  /// ||beta_k||_1, and lo/hi = center -/+ (phi_norm + eps_norm) computed
  /// by the builder in exactly that association.
  std::vector<double> Center, PhiNorm, EpsNorm, Lo, Hi;
};

/// The final margin derivation over the 1x1 margin zonotope.
struct CertMargin {
  bool Valid = false;
  size_t TrueClass = 0;
  /// Dual exponent of the phi norm (Matrix::InfNorm conventions: -1 means
  /// q = infinity).
  double Q = 2.0;
  double Center = 0.0;
  /// Raw coefficient vectors in ascending symbol order (Beta includes the
  /// zeros of Zero blocks so indices stay aligned with the symbol space).
  std::vector<double> Alpha, Beta;
  /// Producer dual norms ||Alpha||_q and ||Beta||_1 -- the values
  /// bounds() consumed (f32 mode records the soundly lifted values).
  double AlphaNorm = 0.0, BetaNorm = 0.0;
  /// lo/hi = Center -/+ (AlphaNorm + BetaNorm) as bounds() computed them.
  double Lo = 0.0, Hi = 0.0;
  bool Certified = false;
};

/// Everything one certificate records. Query/Kind/Method/Norm/P are
/// caller metadata (the CLI / scheduler fill them before serializing);
/// the rest is filled by the builder during the margin computation.
struct CertificateData {
  std::string Query;
  /// "deept" (Transformer) or "ffn" (feed-forward verifier).
  std::string Kind = "deept";
  std::string Method = "fast";
  std::string Norm = "l2";
  /// Kernel precision of the run that produced the recorded values.
  std::string Precision = "f64";
  double P = 2.0;
  size_t TrueClass = 0;
  size_t ModelLayers = 0, ModelEmbed = 0, ModelHeads = 0;
  size_t InputRows = 0, InputCols = 0;
  std::vector<double> InputLo, InputHi;
  std::vector<CertCheckpoint> Checkpoints;
  CertMargin Margin;

  /// The compact payload object (no whitespace, fixed member order).
  std::string payloadJson() const;

  /// The full single-line envelope with the payload CRC. No trailing
  /// newline.
  std::string toJson() const;
};

/// The recording hook the verifiers drive. Attach via
/// VerifierConfig::Certificate (DeepT) or the FeedForwardVerifier
/// overloads; one builder serves one margin computation at a time
/// (beginRun resets the measurements, so under f32->f64 escalation the
/// final run wins).
class CertificateBuilder {
public:
  CertificateData Data;

  /// Starts a new recording run: clears input/checkpoints/margin, keeps
  /// the caller metadata (Query/Kind/Method/Norm/P), stamps the active
  /// kernel precision and the model dimensions.
  void beginRun(size_t TrueClass, size_t ModelLayers, size_t ModelEmbed,
                size_t ModelHeads);

  /// Records the concretization of the input region.
  void recordInput(const zono::Zonotope &Z);

  /// Records one propagation checkpoint.
  void recordCheckpoint(const zono::Zonotope &Z, const char *Site,
                        int Layer, int Head);

  /// Records the margin derivation; \p Lo / \p Hi are the bounds() output
  /// the verdict was taken from.
  void recordMargin(const zono::Zonotope &Margin, size_t TrueClass,
                    double Lo, double Hi);
};

} // namespace verify
} // namespace deept

#endif // DEEPT_VERIFY_CERTIFICATE_H
