//===- verify/Coordination.h - Multi-worker batch coordination -*- C++ -*-===//
//
// Part of deept-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The coordination layer: N independent `deept_cli work` processes drain
/// one batch by sharding its jobs into digest ranges (rangeOf: FNV-1a of
/// the job key modulo the range count) and guarding each range with a
/// lease file (support/Lease.h) in a shared directory. Each claimed range
/// runs through the ordinary verify::Scheduler with a per-range shard
/// store (`shard-<i>.jsonl`, Resume on), a background heartbeat thread
/// renewing the lease, and an AbortCheck that stops shard writes the
/// moment the lease is lost. A completed range publishes an atomic done
/// marker before releasing its lease, so the marker -- not the lease --
/// is the authoritative "finished" signal.
///
/// Crash tolerance: a SIGKILLed worker stops heartbeating; any survivor
/// observes the stale lease, reclaims it (single winner by rename
/// atomicity), and re-claims the range. The next claimant's Resume pass
/// repairs the dead worker's shard (recoverStore truncates a torn tail,
/// per-record CRCs drop interior corruption) before its first append, and
/// re-runs only the missing jobs.
///
/// Determinism across workers: job results are bit-identical at any
/// thread count (PR 2), per-range schedulers start from empty warm-start
/// tables exactly like a fresh serial batch, and jobs within a range run
/// as one scheduler batch -- so any record for a key, no matter which
/// worker (or crashed worker's zombie append) produced it, is
/// byte-identical in its semantic fields. mergeShards exploits that:
/// duplicates collapse, and any semantic conflict is a hard
/// store_corrupt error rather than a silent pick.
///
//===----------------------------------------------------------------------===//

#ifndef DEEPT_VERIFY_COORDINATION_H
#define DEEPT_VERIFY_COORDINATION_H

#include "support/Lease.h"
#include "verify/Scheduler.h"

#include <cstddef>
#include <cstdint>
#include <string>

namespace deept {
namespace verify {

struct CoordinationOptions {
  /// Shared lease directory (must exist). Holds `range-<i>.lease`,
  /// `shard-<i>.jsonl`, `range-<i>.done` and the `coordination.json`
  /// manifest that pins the range count and queue digest for the batch.
  std::string LeaseDir;
  /// Number of job-digest ranges the batch shards into. Every worker of
  /// a batch must use the same value (enforced via the manifest).
  size_t Ranges = 8;
  /// Worker identity; must be unique per worker invocation.
  std::string WorkerId;
  /// Lease renewal interval in milliseconds.
  int64_t HeartbeatMs = 1000;
  /// Heartbeat age beyond which a lease counts as stale and may be
  /// reclaimed; 0 derives 5 * HeartbeatMs.
  int64_t StaleAfterMs = 0;
  /// Per-range scheduler configuration (deadline, fsync, retry policy,
  /// artifact dirs). JsonlPath / Resume / AbortCheck are owned by the
  /// worker and overwritten per range.
  SchedulerOptions Sched;
};

/// What one worker did across its run() (its own work only; other
/// workers' ranges are not counted here).
struct WorkerReport {
  size_t RangesCompleted = 0;
  size_t LeasesReclaimed = 0;
  size_t Jobs = 0;
  size_t JobsOk = 0;
  size_t JobsDegraded = 0;
  size_t JobsError = 0;
  size_t JobsSkipped = 0;
  size_t Certified = 0;
};

/// One worker process's driver. run() claims ranges until every range of
/// the batch has a done marker, reclaiming stale leases along the way,
/// then returns. Throws support::Error for coordination-fatal conditions:
/// unwritable lease dir, manifest mismatch (another worker sharded the
/// same directory differently), or this worker's own lease being
/// reclaimed (code LeaseLost -- the worker must stop, its abandoned
/// ranges are re-issued to survivors).
class Worker {
public:
  Worker(const nn::TransformerModel &Model, const JobQueue &Queue,
         CoordinationOptions Opts);

  WorkerReport run();

  /// The digest range of a job key: FNV-1a(Key) % Ranges.
  static size_t rangeOf(const std::string &Key, size_t Ranges);

  /// Deterministic digest of a queue's job keys (manifest field).
  static std::string queueDigest(const JobQueue &Queue);

private:
  /// Runs one claimed range end-to-end: heartbeat thread, scheduler over
  /// the sub-queue, done marker, lease release. \p L is the held lease.
  void runRange(support::Lease &L);
  void checkManifest();

  const nn::TransformerModel &Model;
  const JobQueue &Queue;
  CoordinationOptions Opts;
  WorkerReport Rep;
  std::vector<JobQueue> Sub; // one sub-queue per range, queue order
};

struct MergeReport {
  size_t Shards = 0;
  size_t Records = 0;
  size_t DuplicatesCollapsed = 0;
  size_t DroppedCrc = 0;
  size_t DroppedMalformed = 0;
};

/// Merges every `shard-<i>.jsonl` under \p LeaseDir into one canonical
/// results JSONL at \p OutPath (atomically written, records sorted by
/// key, per-record CRCs preserved). Records failing their CRC or not
/// parsing are dropped (counted); duplicate keys collapse only when all
/// semantic fields (status, method, certified, margin, radius,
/// error_code) are identical -- a conflict is a store_corrupt error.
/// \p Ranges 0 reads the range count from the manifest.
bool mergeShards(const std::string &LeaseDir, size_t Ranges,
                 const std::string &OutPath, MergeReport &Rep,
                 support::Error *Err = nullptr);

} // namespace verify
} // namespace deept

#endif // DEEPT_VERIFY_COORDINATION_H
