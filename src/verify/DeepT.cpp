//===- verify/DeepT.cpp ---------------------------------------*- C++ -*-===//

#include "verify/DeepT.h"

#include "support/Error.h"
#include "support/Fault.h"
#include "support/FlightRecorder.h"
#include "support/Metrics.h"
#include "support/Trace.h"
#include "verify/Certificate.h"
#include "verify/Profile.h"
#include "zono/Elementwise.h"
#include "zono/Provenance.h"
#include "zono/Reduction.h"
#include "zono/Refinement.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cmath>
#include <optional>

using namespace deept;
using namespace deept::verify;
using namespace deept::zono;
using tensor::Matrix;

namespace {

/// The abstract layer normalisation. The paper's default (Section 3.1)
/// subtracts the row mean, scales and shifts -- all exact affine steps.
/// The standard variant (Section 6.6) additionally divides by the
/// standard deviation, which needs the multiplication, sqrt and
/// reciprocal transformers.
Zonotope abstractLayerNorm(const Zonotope &V, const Matrix &Gamma,
                           const Matrix &Beta, bool StdDiv, double LnEps,
                           const DotOptions &Mul, double ElementwiseEps) {
  if (StdDiv) {
    Zonotope Centered = V.subRowMean();
    Zonotope Sq = mulElementwise(Centered, Centered, Mul);
    Zonotope Var = Sq.rowMeans().addConst(Matrix(V.rows(), 1, LnEps));
    Zonotope InvStd = applyRecip(applySqrt(Var), ElementwiseEps);
    Centered = mulElementwise(Centered, InvStd.broadcastColTo(V.cols()), Mul);
    return Centered.scaleColumns(Gamma).addRowBroadcast(Beta);
  }
  // Paper-default path: (x - mean) * gamma fused into one coefficient
  // pass (bit-identical to subRowMean().scaleColumns()).
  return V.subRowMeanScale(Gamma).addRowBroadcast(Beta);
}

} // namespace

PropagationStats PropagationStats::fromRegistry() {
  const support::Metrics &M = support::Metrics::global();
  PropagationStats S;
  S.PeakEpsSymbols = static_cast<size_t>(
      M.gaugeValue("verify.propagate.peak_eps_symbols"));
  S.SymbolsTightened = static_cast<size_t>(
      M.counterValue("verify.propagate.symbols_tightened"));
  S.PeakCoeffBytes = static_cast<size_t>(
      M.gaugeValue("verify.propagate.peak_coeff_bytes"));
  return S;
}

Zonotope DeepTVerifier::propagate(const Zonotope &InputEmb,
                                  PropagationStats *Stats) const {
  support::TraceSpan PropagateSpan("deept.propagate");
  support::Metrics &MR = support::Metrics::global();
  static support::Counter &Calls = MR.counter("verify.propagate.calls");
  Calls.add(1);

  const nn::TransformerConfig &C = Model.Config;
  assert(InputEmb.cols() == C.EmbedDim && "embedding width mismatch");
  size_t A = C.NumHeads;
  size_t Dk = C.headDim();
  double Scale = 1.0 / std::sqrt(static_cast<double>(Dk));

  PropagationStats Local;
  size_t LayerPeakEps = 0;
  // Track doubles as the soundness checkpoint: it sees every major
  // intermediate zonotope, so a corrupted abstraction is caught at the
  // first checkpoint after the corruption and surfaces as a structured
  // UnsoundAbstraction error instead of flowing into a verdict.
  static support::Histogram &EpsBlocks = MR.histogram("zono.eps_blocks");
  static support::Histogram &DiagFrac = MR.histogram("zono.diag_frac");
  static support::Gauge &CoeffBytes = MR.gauge("zono.coeff_bytes");
  // Checkpoint context for the precision profile / flight recorder; the
  // layer and head loops below keep these current.
  int CurLayer = -1;
  int CurHead = -1;
  auto LastCp = std::chrono::steady_clock::now();
  auto Track = [&](const Zonotope &Z, const char *Site) {
    Local.PeakEpsSymbols = std::max(Local.PeakEpsSymbols, Z.numEps());
    Local.PeakCoeffBytes = std::max(Local.PeakCoeffBytes, Z.coeffBytes());
    LayerPeakEps = std::max(LayerPeakEps, Z.numEps());
    // Block-structure telemetry: how fragmented the eps storage is, how
    // much of it stays structured, and the actual coefficient footprint.
    EpsBlocks.observe(static_cast<double>(Z.epsBlockCount()));
    DiagFrac.observe(Z.epsStructuredFraction());
    CoeffBytes.recordMax(static_cast<double>(Z.coeffBytes()));
    if (Config.Recorder)
      Config.Recorder->record("checkpoint", Site,
                              static_cast<double>(Z.numEps()),
                              static_cast<double>(Z.epsBlockCount()),
                              static_cast<double>(Z.coeffBytes()));
    if (Config.Profile) {
      auto Now = std::chrono::steady_clock::now();
      double SinceMs =
          std::chrono::duration<double, std::milli>(Now - LastCp).count();
      LastCp = Now;
      profileCheckpoint(*Config.Profile, Z, Site, CurLayer, CurHead,
                        SinceMs);
    }
    if (Config.Certificate)
      Config.Certificate->recordCheckpoint(Z, Site, CurLayer, CurHead);
    if (Config.ValidateAbstractions) {
      std::string Why;
      if (!Z.validate(&Why))
        throw support::Error(support::ErrorCode::UnsoundAbstraction, Site,
                             Why);
    }
  };

  SoftmaxOptions SoftOpts;
  SoftOpts.ElementwiseEps = Config.ElementwiseEps;
  SoftOpts.StableRewrite = Config.StableSoftmax;

  // One refinement scratch for the whole propagation: the per-head refine
  // calls (layers x heads of them) then reuse the breakpoint and
  // constraint buffers at their high-water capacity.
  RefinementScratch RefineScratch;

  Zonotope X = InputEmb;
  // Fault site for the robustness drills: injects a NaN/Inf into the
  // input center so the soundness guards must turn it into a structured
  // error (never a certificate).
  DEEPT_FAULT_CORRUPT("verify.propagate", X.center().data(),
                      X.center().size());
  for (size_t L = 0; L < Model.Layers.size(); ++L) {
    if (Config.CancelCheck)
      Config.CancelCheck();
    support::TraceSpan LayerSpan("deept.layer", L);
    double EpsCreatedBefore = MR.counterValue("zono.eps_symbols.created");
    LayerPeakEps = 0;
    CurLayer = static_cast<int>(L);
    const nn::TransformerLayer &Layer = Model.Layers[L];
    bool LastLayer = L + 1 == Model.Layers.size();

    DotOptions Dot;
    Dot.Order = Config.Order;
    Dot.Method = Config.Method;
    if (Config.PreciseLastLayerOnly)
      Dot.Method = LastLayer ? DotMethod::Precise : DotMethod::Fast;
    SoftOpts.Mul = Dot;

    // Noise symbol reduction at the layer input (Section 5.1), where a
    // single tensor is live, so re-indexing the eps space is safe.
    {
      DEEPT_TRACE_SPAN("deept.noise_reduction");
      ProvenanceGroup PG(L, "noise_reduction");
      size_t Budget = Config.NoiseReductionBudget;
      if (LastLayer && Config.NoiseReductionBudgetLastLayer > 0)
        Budget = Config.NoiseReductionBudgetLastLayer;
      if (Budget > 0)
        reduceEpsSymbols(X, Budget);
    }
    Track(X, "verify.layer_input");

    // Multi-head self-attention (Eq. 1).
    Zonotope Q, K, V;
    {
      DEEPT_TRACE_SPAN("deept.attention.qkv");
      Q = X.matmulRightConst(Layer.Wq).addRowBroadcast(Layer.Bq);
      K = X.matmulRightConst(Layer.Wk).addRowBroadcast(Layer.Bk);
      V = X.matmulRightConst(Layer.Wv).addRowBroadcast(Layer.Bv);
    }

    std::vector<Zonotope> Heads;
    for (size_t H = 0; H < A; ++H) {
      DEEPT_TRACE_SPAN("deept.attention.head");
      CurHead = static_cast<int>(H);
      Zonotope Qh = Q.selectColRange(H * Dk, (H + 1) * Dk);
      Zonotope Kh = K.selectColRange(H * Dk, (H + 1) * Dk);
      Zonotope Vh = V.selectColRange(H * Dk, (H + 1) * Dk);
      Zonotope Scores;
      {
        DEEPT_TRACE_SPAN("deept.attention.scores");
        ProvenanceGroup PG(L, "attention.scores");
        Scores = dotRows(Qh, Kh, Dot).scale(Scale);
      }
      Track(Scores, "verify.attention.scores");
      Zonotope Probs;
      {
        DEEPT_TRACE_SPAN("deept.attention.softmax");
        ProvenanceGroup PG(L, "softmax");
        Probs = applySoftmax(Scores, SoftOpts);
      }
      if (Config.SoftmaxSumRefinement) {
        DEEPT_TRACE_SPAN("deept.attention.refine");
        ProvenanceGroup PG(L, "softmax");
        // Symbol-range rewrites must reach every tensor still in use --
        // including the already-sliced value tensor Vh that the
        // attention output multiplies Probs with.
        std::vector<Zonotope *> CoLive = {&X, &Q, &K, &V, &Vh};
        for (Zonotope &Prev : Heads)
          CoLive.push_back(&Prev);
        RefinementStats RS = refineSoftmaxSum(Probs, CoLive,
                                              RefinementOptions(),
                                              &RefineScratch);
        Local.SymbolsTightened += RS.SymbolsTightened;
      }
      // Attention output: Probs (N x N) times Vh (N x dk); rows of Probs
      // dotted with columns of Vh, i.e. rows of Vh transposed.
      {
        DEEPT_TRACE_SPAN("deept.attention.output");
        ProvenanceGroup PG(L, "attention.output");
        Heads.push_back(dotRows(Probs, Vh.transposedView(), Dot));
      }
      Track(Heads.back(), "verify.attention.output");
    }
    CurHead = -1;
    Zonotope X1;
    {
      DEEPT_TRACE_SPAN("deept.attention.proj_norm");
      ProvenanceGroup PG(L, "layer_norm");
      Zonotope Concat = Zonotope::concatCols(Heads);
      Zonotope Z =
          Concat.matmulRightConst(Layer.Wo).addRowBroadcast(Layer.Bo);
      Zonotope V1 = X.add(Z); // residual connection
      X1 = abstractLayerNorm(V1, Layer.Ln1Gamma, Layer.Ln1Beta,
                             C.LayerNormStdDiv, C.LnEps, Dot,
                             Config.ElementwiseEps);
    }

    // Feed-forward block with its residual connection.
    {
      DEEPT_TRACE_SPAN("deept.ffn");
      ProvenanceGroup PG(L, "ffn");
      Zonotope Hid = applyRelu(
          X1.matmulRightConst(Layer.W1).addRowBroadcast(Layer.B1));
      Zonotope F = Hid.matmulRightConst(Layer.W2).addRowBroadcast(Layer.B2);
      Zonotope V2 = X1.add(F);
      X = abstractLayerNorm(V2, Layer.Ln2Gamma, Layer.Ln2Beta,
                            C.LayerNormStdDiv, C.LnEps, Dot,
                            Config.ElementwiseEps);
    }
    Track(X, "verify.layer_output");
    MR.histogram("verify.layer.eps_created")
        .observe(MR.counterValue("zono.eps_symbols.created") -
                 EpsCreatedBefore);
    MR.histogram("verify.layer.peak_eps_symbols")
        .observe(static_cast<double>(LayerPeakEps));
  }

  // Pooling (first output embedding), tanh layer, binary classifier.
  CurLayer = -1;
  Zonotope Logits;
  {
    DEEPT_TRACE_SPAN("deept.pooler");
    ProvenanceGroup PG("pooler");
    Zonotope Pooled = X.selectRow(0);
    Zonotope T = applyTanh(
        Pooled.matmulRightConst(Model.PoolW).addRowBroadcast(Model.PoolB));
    Logits = T.matmulRightConst(Model.ClsW).addRowBroadcast(Model.ClsB);
  }
  Track(Logits, "verify.logits");

  // Mirror the per-run stats into the registry so they survive every
  // entry point (certifyMargin and friends discard the out-param).
  MR.gauge("verify.propagate.peak_eps_symbols")
      .recordMax(static_cast<double>(Local.PeakEpsSymbols));
  MR.gauge("verify.propagate.peak_coeff_bytes")
      .recordMax(static_cast<double>(Local.PeakCoeffBytes));
  MR.counter("verify.propagate.symbols_tightened")
      .add(static_cast<double>(Local.SymbolsTightened));
  if (Stats)
    *Stats = Local;
  return Logits;
}

double DeepTVerifier::certifyMargin(const Zonotope &InputEmb,
                                    size_t TrueClass) const {
  if (Config.Precision == support::FpPrecision::F64)
    return certifyMarginImpl(InputEmb, TrueClass);
  // F32 mode: run the propagation with single-precision dual-norm
  // accumulation (soundly widened, so the margin can only shrink). A
  // non-positive margin may be the widening rather than a real
  // falsification, so escalate that query back to full precision -- the
  // returned verdict is then always F64-backed on the falsify side,
  // while certified verdicts carry the f32 upper-bound guarantee.
  auto &MR = support::Metrics::global();
  MR.counter("prec.f32_jobs").add(1.0);
  double M32;
  {
    support::FpScope Scope(support::FpPrecision::F32);
    M32 = certifyMarginImpl(InputEmb, TrueClass);
  }
  if (M32 > 0.0)
    return M32;
  MR.counter("prec.escalations").add(1.0);
  return certifyMarginImpl(InputEmb, TrueClass);
}

double DeepTVerifier::certifyMarginImpl(const Zonotope &InputEmb,
                                        size_t TrueClass) const {
  assert(TrueClass < 2 && "binary classification");
  // With a profile attached, a provenance session tags every fresh eps
  // symbol created during this propagation with its originating
  // layer/op; the session must outlive the margin construction below so
  // the final symbol space can be attributed.
  std::optional<ProvenanceSession> Session;
  auto T0 = std::chrono::steady_clock::now();
  if (Config.Profile) {
    Config.Profile->resetMeasurements();
    Session.emplace();
  }
  if (Config.Certificate) {
    Config.Certificate->beginRun(TrueClass, Model.Layers.size(),
                                 Model.Config.EmbedDim,
                                 Model.Config.NumHeads);
    Config.Certificate->recordInput(InputEmb);
  }
  Zonotope Logits = propagate(InputEmb);
  // The margin is an affine combination of the logit variables; computing
  // it inside the domain keeps the shared-noise cancellation (an interval
  // subtraction would be much looser).
  // Built as a right-multiply by the +/-1 column so the eps blocks stay
  // in scatter form (mapLinear would densify and allocate per symbol
  // row); the ascending-k accumulation performs the same subtraction, so
  // the margin is bit-identical.
  Matrix MarginW(2, 1);
  MarginW.at(TrueClass, 0) = 1.0;
  MarginW.at(1 - TrueClass, 0) = -1.0;
  Zonotope Margin = Logits.matmulRightConst(MarginW);
  Matrix Lo, Hi;
  Margin.bounds(Lo, Hi);
  // Belt-and-braces: even with ValidateAbstractions off, a NaN margin
  // must become a structured error, not a (vacuously false) comparison.
  if (std::isnan(Lo.at(0, 0)))
    throw support::Error(support::ErrorCode::UnsoundAbstraction,
                         "verify.margin", "margin lower bound is NaN");
  if (Config.Certificate)
    Config.Certificate->recordMargin(Margin, TrueClass, Lo.at(0, 0),
                                     Hi.at(0, 0));
  if (Config.Profile) {
    profileMargin(*Config.Profile, Margin, Session->provenance(),
                  Lo.at(0, 0), Hi.at(0, 0));
    Config.Profile->TotalMs = std::chrono::duration<double, std::milli>(
                                  std::chrono::steady_clock::now() - T0)
                                  .count();
  }
  return Lo.at(0, 0);
}

bool DeepTVerifier::certifyLpBall(const std::vector<size_t> &Tokens,
                                  size_t Word, double P, double Radius,
                                  size_t TrueClass) const {
  Matrix X = Model.embed(Tokens);
  Zonotope In = Zonotope::lpBallOnRow(X, Word, P, Radius);
  return certifyMargin(In, TrueClass) > 0.0;
}

Zonotope DeepTVerifier::synonymBox(const data::SyntheticCorpus &Corpus,
                                   const data::Sentence &S) const {
  Matrix X = Model.embed(S.Tokens);
  Matrix Lo = X, Hi = X;
  for (size_t I = 0; I < S.Tokens.size(); ++I) {
    for (size_t Syn : Corpus.synonymsOf(S.Tokens[I])) {
      for (size_t C = 0; C < X.cols(); ++C) {
        double V = Corpus.embeddings().at(Syn, C) + Model.Positional.at(I, C);
        Lo.at(I, C) = std::min(Lo.at(I, C), V);
        Hi.at(I, C) = std::max(Hi.at(I, C), V);
      }
    }
  }
  return Zonotope::box(Lo, Hi);
}

bool DeepTVerifier::certifySynonymBox(const data::SyntheticCorpus &Corpus,
                                      const data::Sentence &S,
                                      size_t TrueClass) const {
  return certifyMargin(synonymBox(Corpus, S), TrueClass) > 0.0;
}
