//===- verify/Certificate.cpp ---------------------------------*- C++ -*-===//

#include "verify/Certificate.h"

#include "support/Crc.h"
#include "support/Fp.h"
#include "support/Json.h"
#include "support/Parallel.h"
#include "tensor/Kernels.h"
#include "tensor/Matrix.h"
#include "zono/Zonotope.h"

#include <utility>

using namespace deept;
using namespace deept::verify;
using support::jsonEscape;
using support::jsonNumber;
using tensor::Matrix;

namespace {

void appendNumberArray(std::string &Out, const std::vector<double> &V) {
  Out += "[";
  for (size_t I = 0; I < V.size(); ++I) {
    if (I)
      Out += ",";
    Out += jsonNumber(V[I]);
  }
  Out += "]";
}

std::vector<double> flatCopy(const Matrix &M) {
  return std::vector<double>(M.data(), M.data() + M.size());
}

} // namespace

void CertificateBuilder::beginRun(size_t TrueClass, size_t ModelLayers,
                                  size_t ModelEmbed, size_t ModelHeads) {
  Data.TrueClass = TrueClass;
  Data.ModelLayers = ModelLayers;
  Data.ModelEmbed = ModelEmbed;
  Data.ModelHeads = ModelHeads;
  Data.Precision = support::fpPrecisionName(support::fpPrecision());
  Data.InputRows = Data.InputCols = 0;
  Data.InputLo.clear();
  Data.InputHi.clear();
  Data.Checkpoints.clear();
  Data.Margin = CertMargin();
}

void CertificateBuilder::recordInput(const zono::Zonotope &Z) {
  Matrix Lo, Hi;
  Z.bounds(Lo, Hi);
  Data.InputRows = Z.rows();
  Data.InputCols = Z.cols();
  Data.InputLo = flatCopy(Lo);
  Data.InputHi = flatCopy(Hi);
}

void CertificateBuilder::recordCheckpoint(const zono::Zonotope &Z,
                                          const char *Site, int Layer,
                                          int Head) {
  CertCheckpoint C;
  C.Site = Site;
  C.Layer = Layer;
  C.Head = Head;
  C.Rows = Z.rows();
  C.Cols = Z.cols();
  C.PhiSyms = Z.numPhi();
  C.EpsSyms = Z.numEps();
  C.EpsBlocks = Z.epsBlockCount();
  Matrix A = Z.phiColumnDualNorms();
  Matrix B = Z.epsColumnDualNorms(1.0);
  C.Center = flatCopy(Z.center());
  C.PhiNorm = flatCopy(A);
  C.EpsNorm = flatCopy(B);
  size_t N = Z.numVars();
  C.Lo.resize(N);
  C.Hi.resize(N);
  // The exact association of radii()/bounds(): r = a + b, then c -/+ r.
  // The checker replays this expression with directed rounding, so the
  // recorded round-to-nearest values must come from this order and no
  // other.
  for (size_t V = 0; V < N; ++V) {
    double R = C.PhiNorm[V] + C.EpsNorm[V];
    C.Lo[V] = C.Center[V] - R;
    C.Hi[V] = C.Center[V] + R;
  }
  Data.Checkpoints.push_back(std::move(C));
}

void CertificateBuilder::recordMargin(const zono::Zonotope &Margin,
                                      size_t TrueClass, double Lo,
                                      double Hi) {
  CertMargin &M = Data.Margin;
  M.Valid = true;
  M.TrueClass = TrueClass;
  M.Q = tensor::dualExponent(Margin.phiP());
  M.Center = Margin.center().at(0, 0);
  // Raw coefficient vectors in ascending symbol order; the checker
  // replays the dual norms from these with directed rounding.
  const Matrix &Phi = Margin.phiCoeffs();
  M.Alpha.resize(Phi.rows());
  for (size_t S = 0; S < Phi.rows(); ++S)
    M.Alpha[S] = Phi.at(S, 0);
  M.Beta.assign(Margin.numEps(), 0.0);
  for (const zono::EpsBlockView &V : Margin.epsBlockViews()) {
    switch (V.Kind) {
    case zono::EpsBlockKind::Dense:
      for (size_t I = 0; I < V.Syms; ++I)
        M.Beta[V.Start + I] = V.Dense->at(I, 0);
      break;
    case zono::EpsBlockKind::Diag:
      for (size_t I = 0; I < V.Syms; ++I)
        M.Beta[V.Start + I] = V.Entries[I].second;
      break;
    case zono::EpsBlockKind::Zero:
      break;
    }
  }
  // The producer norms the verdict consumed: the same kernels radii()
  // runs, so the values are bit-identical to the bounds() inputs (f32
  // mode: the soundly lifted values, which can only exceed the true
  // norms).
  M.AlphaNorm = Margin.phiColumnDualNorms().at(0, 0);
  M.BetaNorm = Margin.epsColumnDualNorms(1.0).at(0, 0);
  M.Lo = Lo;
  M.Hi = Hi;
  M.Certified = Lo > 0.0;
}

std::string CertificateData::payloadJson() const {
  std::string Out = "{\"v\":1,\"query\":\"" + jsonEscape(Query) +
                    "\",\"kind\":\"" + jsonEscape(Kind) + "\",\"method\":\"" +
                    jsonEscape(Method) + "\",\"norm\":\"" + jsonEscape(Norm) +
                    "\",\"precision\":\"" + jsonEscape(Precision) +
                    "\",\"p\":" + jsonNumber(P) +
                    ",\"true_class\":" + std::to_string(TrueClass) +
                    ",\"model\":{\"layers\":" + std::to_string(ModelLayers) +
                    ",\"embed\":" + std::to_string(ModelEmbed) +
                    ",\"heads\":" + std::to_string(ModelHeads) + "}";
  Out += ",\"input\":{\"rows\":" + std::to_string(InputRows) +
         ",\"cols\":" + std::to_string(InputCols) + ",\"lo\":";
  appendNumberArray(Out, InputLo);
  Out += ",\"hi\":";
  appendNumberArray(Out, InputHi);
  Out += "},\"checkpoints\":[";
  for (size_t I = 0; I < Checkpoints.size(); ++I) {
    const CertCheckpoint &C = Checkpoints[I];
    if (I)
      Out += ",";
    Out += "{\"site\":\"" + jsonEscape(C.Site) +
           "\",\"layer\":" + std::to_string(C.Layer) +
           ",\"head\":" + std::to_string(C.Head) +
           ",\"rows\":" + std::to_string(C.Rows) +
           ",\"cols\":" + std::to_string(C.Cols) +
           ",\"phi_syms\":" + std::to_string(C.PhiSyms) +
           ",\"eps_syms\":" + std::to_string(C.EpsSyms) +
           ",\"eps_blocks\":" + std::to_string(C.EpsBlocks) +
           ",\"center\":";
    appendNumberArray(Out, C.Center);
    Out += ",\"phi_norm\":";
    appendNumberArray(Out, C.PhiNorm);
    Out += ",\"eps_norm\":";
    appendNumberArray(Out, C.EpsNorm);
    Out += ",\"lo\":";
    appendNumberArray(Out, C.Lo);
    Out += ",\"hi\":";
    appendNumberArray(Out, C.Hi);
    Out += "}";
  }
  Out += "],\"margin\":{\"true_class\":" + std::to_string(Margin.TrueClass) +
         ",\"q\":" + jsonNumber(Margin.Q) +
         ",\"center\":" + jsonNumber(Margin.Center) + ",\"alpha\":";
  appendNumberArray(Out, Margin.Alpha);
  Out += ",\"beta\":";
  appendNumberArray(Out, Margin.Beta);
  Out += ",\"alpha_norm\":" + jsonNumber(Margin.AlphaNorm) +
         ",\"beta_norm\":" + jsonNumber(Margin.BetaNorm) +
         ",\"lo\":" + jsonNumber(Margin.Lo) +
         ",\"hi\":" + jsonNumber(Margin.Hi) +
         ",\"certified\":" + (Margin.Certified ? "true" : "false") + "}}";
  return Out;
}

std::string CertificateData::toJson() const {
  // Payload last, compact, with nothing after it but the closing brace:
  // the checker CRCs the raw byte range starting at the payload's '{',
  // so the envelope prefix must contain no other "payload" key and the
  // payload must extend to exactly the envelope's final '}'.
  std::string Payload = payloadJson();
  uint32_t Crc = support::crc32(Payload.data(), Payload.size());
  std::string Out = "{\"deept_cert\":1,\"isa\":\"";
  Out += tensor::isaName(tensor::currentIsa());
  Out += "\",\"threads\":";
  Out += std::to_string(support::ThreadPool::global().threadCount());
  Out += ",\"crc32\":";
  Out += std::to_string(Crc);
  Out += ",\"payload\":";
  Out += Payload;
  Out += "}";
  return Out;
}
