//===- verify/DeepT.h - The DeepT Transformer verifier ---------*- C++ -*-===//
//
// Part of deept-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// DeepT: robustness certification of encoder Transformer networks with
/// the Multi-norm Zonotope domain (the paper's main artifact). The
/// verifier propagates an input-embedding zonotope through the whole
/// network (Figure 2) with the abstract transformers of Sections 4-5 and
/// proves robustness when the lower bound of y_true - y_false is positive.
///
/// Configuration covers the paper's verifier family:
///  * DeepT-Fast       -- Method = Fast (Eq. 5 dot products),
///  * DeepT-Precise    -- Method = Precise (Eq. 6 eps-eps blocks),
///  * combined DeepT   -- PreciseLastLayerOnly (Appendix A.6),
/// plus the Section 6.5/6.6/A.5 ablation switches (dual-norm order,
/// softmax sum refinement, noise reduction budget).
///
//===----------------------------------------------------------------------===//

#ifndef DEEPT_VERIFY_DEEPT_H
#define DEEPT_VERIFY_DEEPT_H

#include "data/SyntheticCorpus.h"
#include "nn/Transformer.h"
#include "support/Fp.h"
#include "zono/DotProduct.h"
#include "zono/Softmax.h"
#include "zono/Zonotope.h"

#include <functional>

namespace deept {

namespace support {
class FlightRecorder;
} // namespace support

namespace verify {

struct PrecisionProfile;
class CertificateBuilder;

using zono::Zonotope;

struct VerifierConfig {
  /// Dot-product bound for the eps-eps interaction blocks.
  zono::DotMethod Method = zono::DotMethod::Fast;
  /// Use the Precise dot product only in the last Transformer layer
  /// (the combined verifier of Appendix A.6).
  bool PreciseLastLayerOnly = false;
  /// Which operand the Eq. 5 dual norm is applied to first (Section 6.5).
  zono::DualNormOrder Order = zono::DualNormOrder::InfFirst;
  /// Softmax sum zonotope refinement (Section 5.3) on/off.
  bool SoftmaxSumRefinement = true;
  /// Keep-k eps symbols at every layer input (Section 5.1); 0 disables.
  size_t NoiseReductionBudget = 1500;
  /// Optional smaller budget for the last layer (used by the combined
  /// verifier, Appendix A.6); 0 means "same as NoiseReductionBudget".
  size_t NoiseReductionBudgetLastLayer = 0;
  /// Positivity epsilon of the exp/reciprocal transformers.
  double ElementwiseEps = 0.01;
  /// Use the stable softmax rewrite of Section 5.2 (the naive composition
  /// exists for ablations).
  bool StableSoftmax = true;
  /// Cooperative-cancellation hook, invoked at the top of every layer
  /// during propagate(). May throw to abort the propagation; the batch
  /// scheduler's wall-clock deadlines are enforced through it (see
  /// verify/Scheduler.h). Empty by default (no overhead beyond one
  /// branch per layer).
  std::function<void()> CancelCheck;
  /// Run Zonotope::validate() on the intermediate zonotopes of
  /// propagate() (layer inputs, attention scores and outputs, logits). A
  /// violation -- a non-finite center or coefficient means the abstraction
  /// no longer over-approximates anything -- throws
  /// support::Error(UnsoundAbstraction), so it surfaces as a structured
  /// job error and can never be reported as `certified`.
  bool ValidateAbstractions = true;
  /// Optional per-query precision profile (see verify/Profile.h). When
  /// set, propagate() appends width/shape/timing checkpoints and
  /// certifyMargin() fills the noise-symbol attribution and margin
  /// fields. Null (the default) costs one branch per checkpoint.
  PrecisionProfile *Profile = nullptr;
  /// Optional flight recorder (see support/FlightRecorder.h). When set,
  /// propagate() records cheap per-checkpoint events (eps-symbol and
  /// block counts, coefficient bytes -- no width computation) so a failed
  /// job's artifact shows where the propagation was when it died.
  support::FlightRecorder *Recorder = nullptr;
  /// Optional proof-certificate builder (see verify/Certificate.h). When
  /// set, certifyMargin() records the input concretization, the Theorem 1
  /// derivation inputs at every propagation checkpoint, and the final
  /// margin derivation, for independent replay by tools/deept_check.
  /// Under F32 -> F64 escalation the recording restarts, so the final
  /// (verdict-determining) run wins. Null by default.
  CertificateBuilder *Certificate = nullptr;
  /// Kernel precision for the dual-norm reductions (see support/Fp.h).
  /// F32 accumulates coefficient magnitudes in single precision with a
  /// sound upward lift -- the certified margin can only shrink, never
  /// grow -- and certifyMargin() automatically escalates a query back to
  /// F64 when the widened bound would flip the verdict to "not certified"
  /// (counted by the prec.escalations metric). F64 is the default.
  support::FpPrecision Precision = support::FpPrecision::F64;
};

/// Propagation statistics. The numbers live in the support::Metrics
/// registry (propagate() records them on every call, whichever entry
/// point -- certifyMargin, certifyLpBall, certifySynonymBox -- triggered
/// it); this struct is a thin view kept for API compatibility. Peaks are
/// maxima and SymbolsTightened a sum since the last Metrics reset().
struct PropagationStats {
  size_t PeakEpsSymbols = 0;
  size_t SymbolsTightened = 0;
  size_t PeakCoeffBytes = 0;

  /// Snapshot of the registry's verify.propagate.* instruments.
  static PropagationStats fromRegistry();
};

/// The DeepT verifier over a fixed Transformer model.
class DeepTVerifier {
public:
  explicit DeepTVerifier(const nn::TransformerModel &Model,
                         VerifierConfig Config = VerifierConfig())
      : Model(Model), Config(Config) {}

  const VerifierConfig &config() const { return Config; }
  VerifierConfig &config() { return Config; }

  /// Propagates an embedding-level zonotope (N x E, positional encodings
  /// already added) to the logits zonotope (1 x 2).
  Zonotope propagate(const Zonotope &InputEmb,
                     PropagationStats *Stats = nullptr) const;

  /// Lower bound of logits[TrueClass] - logits[1 - TrueClass] over the
  /// input region; robustness is proven when it is positive.
  double certifyMargin(const Zonotope &InputEmb, size_t TrueClass) const;

  /// Threat model T1: the embedding of \p Word (position index) is
  /// perturbed within an lp ball of radius \p Radius. Returns true when
  /// classification provably stays \p TrueClass.
  bool certifyLpBall(const std::vector<size_t> &Tokens, size_t Word,
                     double P, double Radius, size_t TrueClass) const;

  /// Threat model T2: every word may be replaced by any of its synonyms
  /// independently (an l-infinity box over the synonym embeddings per
  /// position). Returns true when the sentence is provably robust.
  bool certifySynonymBox(const data::SyntheticCorpus &Corpus,
                         const data::Sentence &S, size_t TrueClass) const;

  /// Builds the T2 input box (N x E) for a sentence.
  Zonotope synonymBox(const data::SyntheticCorpus &Corpus,
                      const data::Sentence &S) const;

private:
  /// The margin computation proper; certifyMargin() wraps it in the
  /// configured precision scope and handles the F32 -> F64 escalation.
  double certifyMarginImpl(const Zonotope &InputEmb, size_t TrueClass) const;

  const nn::TransformerModel &Model;
  VerifierConfig Config;
};

} // namespace verify
} // namespace deept

#endif // DEEPT_VERIFY_DEEPT_H
