//===- verify/RadiusSearch.cpp --------------------------------*- C++ -*-===//

#include "verify/RadiusSearch.h"

#include "support/Metrics.h"
#include "support/Trace.h"

#include <algorithm>
#include <cassert>

using namespace deept;
using namespace deept::verify;

double deept::verify::certifiedRadius(
    const std::function<bool(double)> &CertifyFn,
    const RadiusSearchOptions &Opts) {
  assert(Opts.MinRadius > 0 && Opts.InitRadius >= Opts.MinRadius &&
         Opts.MaxRadius >= Opts.InitRadius && "inconsistent search range");
  support::TraceSpan SearchSpan("radius_search");
  static support::Counter &Probes =
      support::Metrics::global().counter("verify.radius_search.probes");
  auto Certify = [&](double R) {
    DEEPT_TRACE_SPAN("radius_search.probe");
    Probes.add(1);
    return CertifyFn(R);
  };
  double Probe = Opts.InitRadius;

  // Shrink until something certifies (or give up at MinRadius).
  while (!Certify(Probe)) {
    Probe *= 0.25;
    if (Probe < Opts.MinRadius)
      return 0.0;
  }
  double Good = Probe;

  // Grow until failure (or the range cap).
  double Bad = 0.0;
  while (Bad == 0.0) {
    double Next = std::min(Good * 2.0, Opts.MaxRadius);
    if (Next <= Good)
      return Good; // already at the cap
    if (Certify(Next)) {
      Good = Next;
      if (Good >= Opts.MaxRadius)
        return Good;
    } else {
      Bad = Next;
    }
  }

  // Bisect the bracket [Good, Bad].
  for (int I = 0; I < Opts.BisectSteps; ++I) {
    double Mid = 0.5 * (Good + Bad);
    if (Certify(Mid))
      Good = Mid;
    else
      Bad = Mid;
  }
  return Good;
}
