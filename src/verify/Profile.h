//===- verify/Profile.h - Per-query precision profiles ---------*- C++ -*-===//
//
// Part of deept-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The per-query half of the precision-observability subsystem: when a
/// PrecisionProfile is attached to the VerifierConfig, propagate() records
/// interval-width statistics, eps-storage shape and stage wall time at
/// every soundness checkpoint, and certifyMargin() decomposes the final
/// margin width into per-layer/op noise-symbol contributions using the
/// zono::SymbolProvenance tags.
///
/// The decomposition is exact by Theorem 1: the margin is a 1x1 zonotope
/// whose width is 2*(||alpha||_q + ||beta||_1), and the l1 norm over the
/// eps axis splits additively over any partition of the symbols. Each
/// attribution group therefore contributes 2*sum_j |beta_j| over its
/// symbols, the phi (input embedding) symbols contribute 2*||alpha||_q as
/// the "input.phi" group, and the group widths sum to the observed margin
/// width up to floating-point reassociation.
///
/// Everything here is opt-in: a null Profile pointer costs one branch per
/// checkpoint, which keeps the default verification path inside the perf
/// gate.
///
//===----------------------------------------------------------------------===//

#ifndef DEEPT_VERIFY_PROFILE_H
#define DEEPT_VERIFY_PROFILE_H

#include <cstddef>
#include <string>
#include <vector>

namespace deept {

namespace zono {
class Zonotope;
class SymbolProvenance;
} // namespace zono

namespace verify {

/// Width/shape statistics of one intermediate zonotope at a soundness
/// checkpoint site ("verify.layer_input", "verify.attention.scores", ...).
struct CheckpointProfile {
  std::string Site;
  int Layer = -1; ///< Transformer layer index; -1 for network-level sites.
  int Head = -1;  ///< Attention head for per-head sites; -1 otherwise.
  double MeanWidth = 0.0;
  double MaxWidth = 0.0;
  /// Mean width relative to the previous checkpoint's mean width (0 for
  /// the first checkpoint or when the previous mean was 0).
  double Growth = 0.0;
  size_t EpsSyms = 0;
  size_t EpsBlocks = 0;
  double StructuredFrac = 0.0;
  size_t CoeffBytes = 0;
  /// Wall time since the previous checkpoint (ms) -- the cost of the
  /// stage that produced this zonotope.
  double SinceMs = 0.0;
};

/// One noise-symbol group's share of the final margin width.
struct GroupContribution {
  std::string Group; ///< "input", "input.phi", "layer2.softmax", ...
  size_t Symbols = 0;
  double Width = 0.0; ///< 2 * sum_j |beta_j| (or 2*||alpha||_q for phi).
};

/// The full per-query profile, emitted as one JSONL line via
/// `deept_cli ... --profile-out`.
struct PrecisionProfile {
  /// Query metadata, set by the caller (CLI / scheduler) and passed
  /// through to the JSON line untouched.
  std::string Query;
  std::string Method;
  std::string Norm;
  double Eps = 0.0;

  std::vector<CheckpointProfile> Checkpoints;
  std::vector<GroupContribution> Attribution;
  double MarginLo = 0.0;
  double MarginHi = 0.0;
  double MarginWidth = 0.0;
  bool Falsified = false;
  double TotalMs = 0.0;

  /// Clears the measured fields (checkpoints, attribution, margin,
  /// timing) while keeping the caller-owned query metadata, so one
  /// profile object can be reused across the probes of a radius search.
  void resetMeasurements();

  /// The profile as one line of JSON (no trailing newline).
  std::string toJsonLine() const;
};

/// Appends a checkpoint record for \p Z to \p P (mean/max width from
/// Zonotope::radii, eps-storage shape, \p SinceMs stage time).
void profileCheckpoint(PrecisionProfile &P, const zono::Zonotope &Z,
                       const char *Site, int Layer, int Head, double SinceMs);

/// Fills \p P's attribution and margin fields from the final 1x1 margin
/// zonotope: per-group eps contributions via \p Prov plus the "input.phi"
/// dual-norm term. Also mirrors summary instruments into the global
/// Metrics registry (profile.queries, profile.falsified,
/// profile.margin_width, profile.checkpoint_growth).
void profileMargin(PrecisionProfile &P, const zono::Zonotope &Margin,
                   const zono::SymbolProvenance &Prov, double Lo, double Hi);

} // namespace verify
} // namespace deept

#endif // DEEPT_VERIFY_PROFILE_H
