//===- verify/Scheduler.h - Batched certification scheduler ----*- C++ -*-===//
//
// Part of deept-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The scheduling layer: a batch driver that runs many independent
/// certification jobs {sentence, position, eps spec, method, deadline}
/// concurrently over the shared support::Parallel pool. Individual
/// queries stay bit-identical to serial single-job runs (jobs execute
/// with the pool's deterministic partitioning; a job running on a worker
/// serialises its inner loops, which preserves chunk boundaries), while
/// batch throughput scales with the thread count.
///
/// Graceful degradation (the DeepT Fast -> Precise ladder, run
/// downwards): when a DeepT-Precise or combined job exceeds its
/// wall-clock deadline or runs out of memory, it is retried once as
/// DeepT-Fast and tagged `degraded` -- the batch prefers a cheaper,
/// sound answer over no answer, so the retry runs to completion without
/// a deadline. A job that still fails (or was DeepT-Fast / CROWN to
/// begin with) is recorded as `error` with the exception text and the
/// batch continues.
///
/// Results stream to a resumable JSONL store: one JSON object per line,
/// appended (and flushed) as each job completes, so a killed batch keeps
/// everything it finished. Re-running with Resume set skips jobs whose
/// key is already present in the store.
///
//===----------------------------------------------------------------------===//

#ifndef DEEPT_VERIFY_SCHEDULER_H
#define DEEPT_VERIFY_SCHEDULER_H

#include "support/Error.h"
#include "verify/DeepT.h"
#include "verify/RadiusSearch.h"

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

namespace deept {
namespace support {
struct JsonValue;
} // namespace support

namespace verify {

struct CertificateData;

/// The verifier family a job runs under. Precise and Combined degrade to
/// Fast; Fast and the CROWN baselines have nothing below them.
enum class JobMethod { Fast, Precise, Combined, CrownBaF, CrownBackward };

const char *jobMethodName(JobMethod M);
/// Parses "fast" / "precise" / "combined" / "crown-baf" /
/// "crown-backward" (the CLI --verifier vocabulary).
bool parseJobMethod(const std::string &Name, JobMethod &Out);

/// One certification query: the lp region of radius Epsilon around word
/// position Word of a token sequence, certified with Method.
struct JobSpec {
  /// Stable result-store key; derived from the job contents when empty
  /// (see Scheduler::jobKey). The deadline is deliberately not part of
  /// the derived key, so a resumed batch with a new deadline still skips
  /// completed jobs.
  std::string Id;
  std::vector<size_t> Tokens;
  size_t TrueClass = 0;
  size_t Word = 0;
  /// lp norm of the perturbation region (tensor::Matrix::InfNorm for
  /// l-infinity).
  double P = 2.0;
  /// Region radius for fixed-eps jobs; ignored for search jobs (the
  /// search spec below drives those).
  double Epsilon = 0.05;
  /// Binary-search the largest certifiable radius (Section 6.1) instead
  /// of certifying one fixed eps.
  bool SearchRadius = false;
  RadiusSearchOptions Search;
  JobMethod Method = JobMethod::Fast;
  /// Per-job wall-clock deadline in milliseconds. -1 inherits the batch
  /// default; 0 expires immediately (forces the degradation path, used
  /// by tests and drills); > 0 is a real deadline.
  int64_t DeadlineMs = -1;
  /// DeepT noise-symbol reduction budget (Section 5.1).
  size_t NoiseReductionBudget = 600;
};

enum class JobStatus { Ok, Degraded, Error, Skipped };

const char *jobStatusName(JobStatus S);

/// Outcome of one job. Margin / Radius are bit-identical to a serial
/// single-job run of the same query at any pool thread count.
struct JobResult {
  std::string Key;
  JobStatus Status = JobStatus::Ok;
  bool Certified = false;
  /// Fixed-eps jobs: certified margin lower bound at Epsilon.
  double Margin = 0.0;
  /// Search jobs: largest certified radius found.
  double Radius = 0.0;
  /// The method that produced the answer (differs from the spec's when
  /// the job degraded).
  JobMethod MethodUsed = JobMethod::Fast;
  bool DeadlineHit = false;
  std::string Error;
  /// Taxonomy code of the failure (support::ErrorCode::Ok on success);
  /// serialized as the JSONL `error_code` field.
  support::ErrorCode Code = support::ErrorCode::Ok;
  /// Wall-clock seconds spent executing (all attempts).
  double Seconds = 0.0;
  /// Milliseconds between batch start and this job starting.
  double QueueMs = 0.0;
  /// Transient-failure retries this job consumed (see
  /// SchedulerOptions::MaxRetries); serialized as `retries` when > 0.
  int Retries = 0;
};

/// Thrown by the cooperative deadline checks (the VerifierConfig
/// CancelCheck hook and the per-probe checks of the scheduler). A
/// support::Error with code DeadlineExceeded, so untyped catch sites and
/// the JSONL store agree on the classification.
class DeadlineExceeded : public support::Error {
public:
  explicit DeadlineExceeded(int64_t Ms)
      : support::Error(support::ErrorCode::DeadlineExceeded,
                       "sched.deadline",
                       "deadline of " + std::to_string(Ms) +
                           " ms exceeded") {}
};

/// An ordered batch of job specs. Thin by design -- the queue is the
/// unit the scheduler partitions over, and the JSON form is what the
/// `deept_cli batch --jobs` file contains.
class JobQueue {
public:
  void push(JobSpec J) { Specs.push_back(std::move(J)); }
  size_t size() const { return Specs.size(); }
  bool empty() const { return Specs.empty(); }
  const JobSpec &spec(size_t I) const { return Specs[I]; }
  const std::vector<JobSpec> &specs() const { return Specs; }

  /// Builds a queue from the batch jobs document:
  ///   {"jobs":[{"id":"j0","seed":7,"word":0,"norm":"l2","eps":0.05,
  ///             "method":"precise","deadline_ms":500,"search":false,
  ///             "budget":600}, ...]}
  /// Each job names its sentence either explicitly ("tokens":[..] plus
  /// "label":0|1) or as a corpus sample ("seed":N, which draws a
  /// labelled sentence from \p Corpus; "label" may override). Returns
  /// false and fills \p Err on malformed documents.
  static bool fromJson(const support::JsonValue &Doc,
                       const data::SyntheticCorpus *Corpus, JobQueue &Out,
                       std::string *Err);

  /// fromJson over the contents of \p Path.
  static bool fromJsonFile(const std::string &Path,
                           const data::SyntheticCorpus *Corpus,
                           JobQueue &Out, std::string *Err);

private:
  std::vector<JobSpec> Specs;
};

struct SchedulerOptions {
  /// Batch-wide deadline applied to jobs whose DeadlineMs is -1;
  /// 0 disables (no deadline).
  int64_t DefaultDeadlineMs = 0;
  /// JSONL result store path; empty disables the store.
  std::string JsonlPath;
  /// Skip jobs whose key already appears in the store.
  bool Resume = false;
  /// fsync the store after every record, making each completed job
  /// durable at the cost of one fsync per job.
  bool Fsync = false;
  /// Per-job precision profiles (verify/Profile.h), one JSONL line per
  /// executed DeepT job, appended here; empty disables profiling (the
  /// default -- profiles cost width computations at every checkpoint).
  /// Search jobs record the profile of their final probe.
  std::string ProfileJsonlPath;
  /// Flight-recorder artifact directory: every executed job records into
  /// a bounded event ring (support/FlightRecorder.h), dumped to
  /// "<RecorderDir>/recorder-<key>.json" when the job ends in error or
  /// hit its deadline, and discarded on clean success. Empty disables.
  std::string RecorderDir;
  /// Event capacity of each job's ring buffer.
  size_t RecorderCapacity = 256;
  /// Proof-certificate directory: every DeepT job whose final probe
  /// certified writes a replayable certificate artifact
  /// (verify/Certificate.h) to "<CertDir>/cert-<key>.json" -- search
  /// jobs keep the certificate of their last certified probe. CROWN
  /// jobs and uncertified / failed jobs write nothing. A failed write
  /// (including an injected "cert.write" fault) never fails the job:
  /// it is counted by cert.write_failures and the batch continues.
  /// Empty disables.
  std::string CertDir;
  /// Bounded retry of transient job failures (support::isTransientError:
  /// io_error, out_of_memory, fault_injected). Each retry waits on a
  /// jitter-free deterministic exponential schedule
  /// (RetryBackoffMs * 2^(attempt-1), capped at RetryBackoffMaxMs).
  /// Permanent failures (job_invalid, model_corrupt, unsound_abstraction)
  /// fail fast on the first attempt; deadline misses keep their own
  /// degradation ladder and are never retried. Retry exhaustion records a
  /// typed `error` result and the batch continues. 0 disables.
  int MaxRetries = 0;
  int64_t RetryBackoffMs = 100;
  int64_t RetryBackoffMaxMs = 5000;
  /// Polled before each job starts; when it returns true the remaining
  /// jobs are abandoned as lease_lost error results and -- crucially --
  /// are NOT appended to the JSONL store. The coordination layer sets
  /// this so a worker whose lease was reclaimed stops writing its shard.
  std::function<bool()> AbortCheck;
};

/// The batch driver. One instance serves one model; run() may be called
/// repeatedly (each call is one batch).
///
/// Warm-started radius search: the scheduler remembers the last certified
/// radius per (method, norm) pair across run() calls and seeds
/// RadiusSearchOptions::InitRadius of later search jobs from it, so a
/// follow-up batch starts probing near the answer instead of at the
/// spec's default. Determinism: the hint table is snapshotted once at the
/// start of each run(), so every job of a batch sees the same hints
/// regardless of thread count or completion order, and the table is
/// updated from the finished batch in queue order. The hint never enters
/// jobKey (the JSONL digest hashes only the spec's own search options),
/// so a warm-started batch skips resumed jobs exactly as a cold one does.
class Scheduler {
public:
  explicit Scheduler(const nn::TransformerModel &Model,
                     SchedulerOptions Opts = SchedulerOptions())
      : Model(Model), Opts(Opts) {}

  const SchedulerOptions &options() const { return Opts; }

  /// Runs every job in \p Queue, concurrently over the shared pool, and
  /// returns results in queue order (including Skipped entries for
  /// resumed jobs). Records sched.* metrics and Trace spans; streams
  /// completed jobs to the JSONL store when configured. Throws only for
  /// batch-level failures (unwritable store); per-job failures become
  /// `error` results.
  std::vector<JobResult> run(const JobQueue &Queue) const;

  /// The result-store key of a job: its Id when set, otherwise a
  /// deterministic digest of the query contents (method, norm, word,
  /// eps spec, tokens, class, budget -- not the deadline).
  static std::string jobKey(const JobSpec &Spec);

  /// One JSONL store line (no trailing newline).
  static std::string resultJsonLine(const JobResult &R);

  /// resultJsonLine plus a trailing per-record `crc32` field (CRC-32 of
  /// the payload bytes), the form run() actually appends to the store so
  /// interior bit-flips are detected at resume time.
  static std::string resultStoreLine(const JobResult &R);

  /// Appends `,"crc32":<crc of Payload>}` to a one-line JSON object.
  static std::string withRecordCrc(const std::string &Payload);

  /// Per-record CRC verdict of a store line. Missing is not an error:
  /// stores written before the CRC field existed stay resumable.
  enum class RecordCrc { Ok, Missing, Mismatch };
  static RecordCrc checkRecordCrc(const std::string &Line);

  /// Keys of the results already present in a JSONL store; empty when
  /// the file does not exist. Malformed lines (e.g. a crash-truncated
  /// tail) and records whose per-record CRC mismatches (an interior
  /// bit-flip) are ignored, so the affected job re-runs.
  static std::set<std::string> completedKeys(const std::string &Path);

  /// Crash recovery for a JSONL store: a torn trailing record (a line
  /// without its newline, or an unparseable final line -- the footprint
  /// of a crash mid-append) is truncated away so its job simply re-runs,
  /// and the remaining completed keys are returned. Interior malformed
  /// lines are tolerated (ignored) as completedKeys does. Resume runs
  /// this instead of completedKeys.
  static std::set<std::string> recoverStore(const std::string &Path,
                                            support::Error *Err = nullptr);

  /// The warm-start hint table: (method, lp norm) -> last certified
  /// radius. Exposed for tests and diagnostics; a copy, not a reference.
  std::map<std::pair<JobMethod, double>, double> warmStartHints() const;

private:
  using WarmMap = std::map<std::pair<JobMethod, double>, double>;

  void executeWithDegradation(const JobSpec &Spec, JobResult &R,
                              const WarmMap &Warm,
                              support::FlightRecorder *Rec,
                              PrecisionProfile *Prof,
                              CertificateData *Cert) const;
  void executeOne(const JobSpec &Spec, JobMethod Method, int64_t DeadlineMs,
                  JobResult &R, const WarmMap &Warm,
                  support::FlightRecorder *Rec, PrecisionProfile *Prof,
                  CertificateData *Cert) const;

  const nn::TransformerModel &Model;
  SchedulerOptions Opts;
  /// Last certified radius per (method, norm); written after each batch,
  /// snapshotted at the start of the next (see the class comment).
  mutable WarmMap WarmRadii;
  mutable std::mutex WarmMu;
};

} // namespace verify
} // namespace deept

#endif // DEEPT_VERIFY_SCHEDULER_H
