//===- verify/Scheduler.cpp -----------------------------------*- C++ -*-===//

#include "verify/Scheduler.h"

#include "crown/CrownVerifier.h"
#include "support/Crc.h"
#include "support/Fault.h"
#include "support/FlightRecorder.h"
#include "support/Io.h"
#include "support/Json.h"
#include "support/Metrics.h"
#include "support/Parallel.h"
#include "support/Timer.h"
#include "support/Trace.h"
#include "verify/Certificate.h"
#include "verify/Profile.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iterator>
#include <mutex>
#include <new>
#include <optional>
#include <sstream>
#include <thread>

using namespace deept;
using namespace deept::verify;
using tensor::Matrix;
using zono::Zonotope;

namespace {

/// Wall-clock deadline of one job attempt. Ms < 0 never expires, Ms == 0
/// expires immediately (the deterministic trigger the tests use), Ms > 0
/// is a real deadline starting at construction.
class Deadline {
public:
  explicit Deadline(int64_t Ms) : Ms(Ms) {}

  bool expired() const {
    return Ms >= 0 && T.seconds() * 1e3 >= static_cast<double>(Ms);
  }

  void check() const {
    if (expired())
      throw DeadlineExceeded(Ms);
  }

private:
  int64_t Ms;
  support::Timer T;
};

/// Precise and Combined degrade to Fast; everything else fails outright.
bool degrade(JobMethod &M) {
  if (M == JobMethod::Precise || M == JobMethod::Combined) {
    M = JobMethod::Fast;
    return true;
  }
  return false;
}

std::string normToken(double P) {
  if (P == 1.0)
    return "l1";
  if (P == 2.0)
    return "l2";
  if (P == Matrix::InfNorm)
    return "linf";
  std::ostringstream S;
  S << "p" << P;
  return S.str();
}

bool parseNormToken(const std::string &Name, double &Out) {
  if (Name == "l1")
    Out = 1.0;
  else if (Name == "l2")
    Out = 2.0;
  else if (Name == "linf")
    Out = Matrix::InfNorm;
  else
    return false;
  return true;
}

/// Job keys become file names for recorder artifacts; anything outside
/// the derived-key alphabet (explicit Ids are free-form) maps to '_'.
std::string fileSafe(const std::string &Key) {
  std::string Out = Key;
  for (char &C : Out) {
    bool Ok = (C >= 'a' && C <= 'z') || (C >= 'A' && C <= 'Z') ||
              (C >= '0' && C <= '9') || C == '-' || C == '_' || C == '.';
    if (!Ok)
      C = '_';
  }
  return Out;
}

} // namespace

const char *deept::verify::jobMethodName(JobMethod M) {
  switch (M) {
  case JobMethod::Fast:
    return "fast";
  case JobMethod::Precise:
    return "precise";
  case JobMethod::Combined:
    return "combined";
  case JobMethod::CrownBaF:
    return "crown-baf";
  case JobMethod::CrownBackward:
    return "crown-backward";
  }
  return "fast";
}

bool deept::verify::parseJobMethod(const std::string &Name, JobMethod &Out) {
  for (JobMethod M :
       {JobMethod::Fast, JobMethod::Precise, JobMethod::Combined,
        JobMethod::CrownBaF, JobMethod::CrownBackward})
    if (Name == jobMethodName(M)) {
      Out = M;
      return true;
    }
  return false;
}

const char *deept::verify::jobStatusName(JobStatus S) {
  switch (S) {
  case JobStatus::Ok:
    return "ok";
  case JobStatus::Degraded:
    return "degraded";
  case JobStatus::Error:
    return "error";
  case JobStatus::Skipped:
    return "skipped";
  }
  return "error";
}

//===----------------------------------------------------------------------===//
// JobQueue JSON parsing
//===----------------------------------------------------------------------===//

bool JobQueue::fromJson(const support::JsonValue &Doc,
                        const data::SyntheticCorpus *Corpus, JobQueue &Out,
                        std::string *Err) {
  auto Fail = [&](const std::string &Msg) {
    if (Err)
      *Err = Msg;
    return false;
  };
  const support::JsonValue *Jobs = Doc.find("jobs");
  if (!Jobs || !Jobs->isArray())
    return Fail("jobs document needs a top-level \"jobs\" array");

  for (size_t I = 0; I < Jobs->Items.size(); ++I) {
    const support::JsonValue &J = Jobs->Items[I];
    std::string Where = "job " + std::to_string(I);
    if (!J.isObject())
      return Fail(Where + ": expected an object");
    JobSpec S;
    if (const support::JsonValue *V = J.find("id")) {
      if (V->K != support::JsonValue::Kind::String)
        return Fail(Where + ": \"id\" must be a string");
      S.Id = V->StringVal;
    }

    // Sentence: explicit tokens, or a corpus sample by seed.
    const support::JsonValue *Tokens = J.find("tokens");
    const support::JsonValue *Seed = J.find("seed");
    if (Tokens) {
      if (!Tokens->isArray() || Tokens->Items.empty())
        return Fail(Where + ": \"tokens\" must be a non-empty array");
      for (const support::JsonValue &T : Tokens->Items) {
        if (T.K != support::JsonValue::Kind::Number || T.NumberVal < 0)
          return Fail(Where + ": tokens must be non-negative numbers");
        S.Tokens.push_back(static_cast<size_t>(T.NumberVal));
      }
      const support::JsonValue *Label = J.find("label");
      if (!Label || Label->K != support::JsonValue::Kind::Number)
        return Fail(Where + ": explicit \"tokens\" need a \"label\"");
      S.TrueClass = static_cast<size_t>(Label->NumberVal);
    } else if (Seed) {
      if (Seed->K != support::JsonValue::Kind::Number)
        return Fail(Where + ": \"seed\" must be a number");
      if (!Corpus)
        return Fail(Where + ": \"seed\" jobs need a corpus");
      support::Rng Rng(static_cast<uint64_t>(Seed->NumberVal));
      data::Sentence Sent = Corpus->sampleSentence(Rng);
      S.Tokens = std::move(Sent.Tokens);
      S.TrueClass = Sent.Label;
      if (const support::JsonValue *Label = J.find("label"))
        S.TrueClass = static_cast<size_t>(Label->NumberVal);
    } else {
      return Fail(Where + ": needs \"tokens\" or \"seed\"");
    }

    if (const support::JsonValue *V = J.find("word"))
      S.Word = static_cast<size_t>(V->NumberVal);
    if (const support::JsonValue *V = J.find("norm")) {
      if (V->K != support::JsonValue::Kind::String ||
          !parseNormToken(V->StringVal, S.P))
        return Fail(Where + ": \"norm\" must be \"l1\", \"l2\" or \"linf\"");
    }
    if (const support::JsonValue *V = J.find("eps")) {
      if (V->K != support::JsonValue::Kind::Number || V->NumberVal <= 0)
        return Fail(Where + ": \"eps\" must be a positive number");
      S.Epsilon = V->NumberVal;
    }
    if (const support::JsonValue *V = J.find("search")) {
      if (V->K != support::JsonValue::Kind::Bool)
        return Fail(Where + ": \"search\" must be a boolean");
      S.SearchRadius = V->BoolVal;
      if (S.SearchRadius)
        S.Search.InitRadius = S.Epsilon;
    }
    if (const support::JsonValue *V = J.find("method")) {
      if (V->K != support::JsonValue::Kind::String ||
          !parseJobMethod(V->StringVal, S.Method))
        return Fail(Where + ": unknown \"method\" (want fast, precise, "
                            "combined, crown-baf or crown-backward)");
    }
    if (const support::JsonValue *V = J.find("deadline_ms")) {
      if (V->K != support::JsonValue::Kind::Number)
        return Fail(Where + ": \"deadline_ms\" must be a number");
      S.DeadlineMs = static_cast<int64_t>(V->NumberVal);
    }
    if (const support::JsonValue *V = J.find("budget")) {
      if (V->K != support::JsonValue::Kind::Number || V->NumberVal < 0)
        return Fail(Where + ": \"budget\" must be a non-negative number");
      S.NoiseReductionBudget = static_cast<size_t>(V->NumberVal);
    }
    Out.push(std::move(S));
  }
  return true;
}

bool JobQueue::fromJsonFile(const std::string &Path,
                            const data::SyntheticCorpus *Corpus,
                            JobQueue &Out, std::string *Err) {
  std::ifstream In(Path, std::ios::binary);
  if (!In) {
    if (Err)
      *Err = "cannot open jobs file '" + Path + "'";
    return false;
  }
  std::ostringstream Buf;
  Buf << In.rdbuf();
  support::JsonValue Doc;
  std::string ParseErr;
  if (!support::parseJson(Buf.str(), Doc, &ParseErr)) {
    if (Err)
      *Err = Path + ": " + ParseErr;
    return false;
  }
  return fromJson(Doc, Corpus, Out, Err);
}

//===----------------------------------------------------------------------===//
// Result store
//===----------------------------------------------------------------------===//

std::string Scheduler::jobKey(const JobSpec &Spec) {
  if (!Spec.Id.empty())
    return Spec.Id;
  // FNV-1a over the query contents (not the deadline: re-running a batch
  // under new latency constraints must still skip completed work). The
  // warm-start InitRadius hint is likewise excluded -- the digest hashes
  // the spec's own search options only, so the key of a job is identical
  // whether the batch runs cold or warm and Resume skips the same set.
  uint64_t H = 1469598103934665603ull;
  auto Mix = [&H](uint64_t V) {
    H ^= V;
    H *= 1099511628211ull;
  };
  auto MixDouble = [&](double D) {
    uint64_t Bits;
    std::memcpy(&Bits, &D, sizeof(Bits));
    Mix(Bits);
  };
  for (size_t T : Spec.Tokens)
    Mix(static_cast<uint64_t>(T) + 1);
  Mix(Spec.TrueClass);
  Mix(Spec.Word);
  MixDouble(Spec.P);
  Mix(Spec.SearchRadius ? 1 : 0);
  if (Spec.SearchRadius) {
    MixDouble(Spec.Search.InitRadius);
    MixDouble(Spec.Search.MaxRadius);
    Mix(static_cast<uint64_t>(Spec.Search.BisectSteps));
  } else {
    MixDouble(Spec.Epsilon);
  }
  Mix(static_cast<uint64_t>(Spec.Method));
  Mix(Spec.NoiseReductionBudget);
  char Buf[96];
  std::snprintf(Buf, sizeof(Buf), "%s-%s-w%zu-%s-%016llx",
                jobMethodName(Spec.Method), normToken(Spec.P).c_str(),
                Spec.Word, Spec.SearchRadius ? "search" : "eps",
                static_cast<unsigned long long>(H));
  return Buf;
}

std::string Scheduler::resultJsonLine(const JobResult &R) {
  std::string S = "{\"key\":\"" + support::jsonEscape(R.Key) +
                  "\",\"status\":\"" + jobStatusName(R.Status) +
                  "\",\"method\":\"" + jobMethodName(R.MethodUsed) +
                  "\",\"certified\":" + (R.Certified ? "true" : "false") +
                  ",\"margin\":" + support::jsonNumber(R.Margin) +
                  ",\"radius\":" + support::jsonNumber(R.Radius) +
                  ",\"deadline_hit\":" + (R.DeadlineHit ? "true" : "false") +
                  ",\"seconds\":" + support::jsonNumber(R.Seconds) +
                  ",\"queue_ms\":" + support::jsonNumber(R.QueueMs);
  if (R.Retries > 0)
    S += ",\"retries\":" + std::to_string(R.Retries);
  if (R.Code != support::ErrorCode::Ok)
    S += std::string(",\"error_code\":\"") + support::errorCodeName(R.Code) +
         "\"";
  if (!R.Error.empty())
    S += ",\"error\":\"" + support::jsonEscape(R.Error) + "\"";
  return S + "}";
}

std::string Scheduler::withRecordCrc(const std::string &Payload) {
  // CRC over the complete payload object, appended as the final field:
  // {...,"queue_ms":0} -> {...,"queue_ms":0,"crc32":123456}
  uint32_t C = support::crc32(Payload.data(), Payload.size());
  std::string Out = Payload;
  Out.pop_back(); // the closing '}'
  Out += ",\"crc32\":" + std::to_string(C) + "}";
  return Out;
}

std::string Scheduler::resultStoreLine(const JobResult &R) {
  return withRecordCrc(resultJsonLine(R));
}

Scheduler::RecordCrc Scheduler::checkRecordCrc(const std::string &Line) {
  // Strip-and-verify textually: the writer appends `,"crc32":<digits>}`
  // as the very last field, so scan the digits back from the closing
  // brace. A digit run preceded by anything else (e.g. a legacy line
  // ending `"queue_ms":12.5}`) is not a CRC field.
  static const std::string Tag = ",\"crc32\":";
  if (Line.size() < 2 || Line.back() != '}')
    return RecordCrc::Missing;
  size_t End = Line.size() - 1; // index of '}'
  size_t P = End;
  while (P > 0 && Line[P - 1] >= '0' && Line[P - 1] <= '9')
    --P;
  if (P == End || P < Tag.size() ||
      Line.compare(P - Tag.size(), Tag.size(), Tag) != 0)
    return RecordCrc::Missing;
  uint32_t Stored =
      static_cast<uint32_t>(std::strtoul(Line.c_str() + P, nullptr, 10));
  std::string Payload = Line.substr(0, P - Tag.size()) + "}";
  return support::crc32(Payload.data(), Payload.size()) == Stored
             ? RecordCrc::Ok
             : RecordCrc::Mismatch;
}

namespace {

/// Shared store-line screening for completedKeys / recoverStore: a record
/// whose per-record CRC mismatches is an interior bit-flip -- warn, count,
/// and pretend the key is absent so only that job re-runs.
bool storeLineKey(const std::string &Line, const std::string &Path,
                  std::string &Key) {
  support::JsonValue Doc;
  if (!support::parseJson(Line, Doc))
    return false;
  const support::JsonValue *K = Doc.find("key");
  if (!K || K->K != support::JsonValue::Kind::String)
    return false;
  if (Scheduler::checkRecordCrc(Line) == Scheduler::RecordCrc::Mismatch) {
    static support::Counter &CrcDropped =
        support::Metrics::global().counter("store.crc_dropped");
    CrcDropped.add(1);
    std::fprintf(stderr,
                 "warning: result store '%s': record '%s' fails its CRC "
                 "(interior corruption); the job will re-run\n",
                 Path.c_str(), K->StringVal.c_str());
    return false;
  }
  Key = K->StringVal;
  return true;
}

} // namespace

std::set<std::string> Scheduler::completedKeys(const std::string &Path) {
  std::set<std::string> Keys;
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return Keys;
  std::string Line;
  while (std::getline(In, Line)) {
    if (Line.empty())
      continue;
    std::string Key;
    if (storeLineKey(Line, Path, Key))
      Keys.insert(Key);
  }
  return Keys;
}

std::set<std::string> Scheduler::recoverStore(const std::string &Path,
                                              support::Error *Err) {
  std::set<std::string> Keys;
  uint64_t Size = 0;
  if (!support::fileSize(Path, Size))
    return Keys; // no store yet: nothing to recover
  std::ifstream In(Path, std::ios::binary);
  if (!In) {
    if (Err)
      *Err = support::Error(support::ErrorCode::StoreCorrupt,
                            "store.recover",
                            "cannot read store '" + Path + "'");
    return Keys;
  }
  std::string Contents((std::istreambuf_iterator<char>(In)),
                       std::istreambuf_iterator<char>());
  In.close();

  // Walk the newline-framed records tracking where each starts, so a torn
  // tail (crash mid-append: missing newline, or a final line that is not
  // valid JSON) can be cut at a byte offset. Interior malformed lines are
  // tolerated exactly as completedKeys tolerates them.
  uint64_t KeepBytes = 0; // end of the last intact record
  size_t Pos = 0;
  while (Pos < Contents.size()) {
    size_t Nl = Contents.find('\n', Pos);
    bool Terminated = Nl != std::string::npos;
    size_t End = Terminated ? Nl : Contents.size();
    std::string Line = Contents.substr(Pos, End - Pos);
    bool Parsed = false;
    if (!Line.empty()) {
      support::JsonValue Doc;
      if (support::parseJson(Line, Doc)) {
        // A record that parses frames the file correctly even when its
        // CRC mismatches -- the file is kept intact and only the
        // affected key is withheld, so just that job re-runs.
        Parsed = true;
        std::string Key;
        if (storeLineKey(Line, Path, Key))
          Keys.insert(Key);
      }
    }
    bool Last = !Terminated || Nl + 1 == Contents.size();
    if (Terminated && (Parsed || !Last || Line.empty()))
      KeepBytes = Nl + 1;
    Pos = End + 1;
  }
  if (KeepBytes < Size) {
    std::fprintf(stderr,
                 "warning: result store '%s' has a torn trailing record; "
                 "discarding %llu bytes (the job will re-run)\n",
                 Path.c_str(),
                 static_cast<unsigned long long>(Size - KeepBytes));
    support::truncateFile(Path, KeepBytes, Err);
  }
  return Keys;
}

//===----------------------------------------------------------------------===//
// Execution
//===----------------------------------------------------------------------===//

std::map<std::pair<JobMethod, double>, double>
Scheduler::warmStartHints() const {
  std::lock_guard<std::mutex> Lock(WarmMu);
  return WarmRadii;
}

void Scheduler::executeOne(const JobSpec &Spec, JobMethod Method,
                           int64_t DeadlineMs, JobResult &R,
                           const WarmMap &Warm,
                           support::FlightRecorder *Rec,
                           PrecisionProfile *Prof,
                           CertificateData *Cert) const {
  using support::Error;
  using support::ErrorCode;
  DEEPT_FAULT_POINT("sched.execute");
  if (Spec.Tokens.empty())
    throw Error(ErrorCode::JobInvalid, "sched.job", "job has no tokens");
  if (Spec.Word >= Spec.Tokens.size())
    throw Error(ErrorCode::JobInvalid, "sched.job",
                "word position " + std::to_string(Spec.Word) +
                    " out of range for a " +
                    std::to_string(Spec.Tokens.size()) + "-token sentence");
  if (Spec.TrueClass >= 2)
    throw Error(ErrorCode::JobInvalid, "sched.job",
                "true class must be 0 or 1");
  for (size_t T : Spec.Tokens)
    if (T >= Model.Config.VocabSize)
      throw Error(ErrorCode::JobInvalid, "sched.job",
                  "token id " + std::to_string(T) +
                      " outside the vocabulary (" +
                      std::to_string(Model.Config.VocabSize) + ")");

  Deadline D(DeadlineMs);
  // One builder per attempt; after every certified probe the recorded
  // run is snapshotted into *Cert, so a search job ends with the
  // certificate of its LAST certified probe (the final probe of a
  // bisection may be uncertified) and an attempt that later fails leaves
  // no certificate at all (the caller only writes Valid+Certified
  // snapshots of successful attempts).
  std::optional<CertificateBuilder> CertBuilder;
  if (Cert && Method != JobMethod::CrownBaF &&
      Method != JobMethod::CrownBackward) {
    CertBuilder.emplace();
    CertBuilder->Data.Query = R.Key;
    CertBuilder->Data.Method = jobMethodName(Method);
    CertBuilder->Data.Norm = normToken(Spec.P);
    CertBuilder->Data.P = Spec.P;
  }
  auto MarginAt = [&](double Radius) -> double {
    D.check(); // per-probe check (covers the CROWN paths too)
    if (Rec)
      Rec->record("probe", jobMethodName(Method), Radius);
    if (Method == JobMethod::CrownBaF ||
        Method == JobMethod::CrownBackward) {
      crown::CrownConfig CC;
      CC.Mode = Method == JobMethod::CrownBaF ? crown::CrownMode::BaF
                                              : crown::CrownMode::Backward;
      crown::CrownOutcome O =
          crown::CrownVerifier(Model, CC)
              .certifyMarginLpBall(Spec.Tokens, Spec.Word, Spec.P, Radius,
                                   Spec.TrueClass);
      // A budgeted out-of-memory outcome is "not certified", matching
      // CrownVerifier::certifyLpBall.
      return O.OutOfMemory ? -HUGE_VAL : O.MarginLowerBound;
    }
    VerifierConfig VC;
    VC.NoiseReductionBudget = Spec.NoiseReductionBudget;
    if (Method == JobMethod::Precise)
      VC.Method = zono::DotMethod::Precise;
    if (Method == JobMethod::Combined)
      VC.PreciseLastLayerOnly = true;
    VC.CancelCheck = [&D] { D.check(); };
    VC.Recorder = Rec;
    VC.Profile = Prof;
    VC.Certificate = CertBuilder ? &*CertBuilder : nullptr;
    DeepTVerifier V(Model, VC);
    Matrix X = Model.embed(Spec.Tokens);
    Zonotope In = Zonotope::lpBallOnRow(X, Spec.Word, Spec.P, Radius);
    double M = V.certifyMargin(In, Spec.TrueClass);
    if (CertBuilder && M > 0.0)
      *Cert = CertBuilder->Data;
    return M;
  };

  R.MethodUsed = Method;
  if (Spec.SearchRadius) {
    static support::Counter &WarmStarts =
        support::Metrics::global().counter("sched.warm_start_hints");
    // Warm start: seed the first probe from the last certified radius of
    // the same (method, norm) family. Only the probe sequence changes;
    // the spec (and hence the job key) is untouched.
    RadiusSearchOptions Search = Spec.Search;
    auto Hint = Warm.find({Method, Spec.P});
    if (Hint != Warm.end() && Hint->second > 0.0) {
      Search.InitRadius =
          std::min(std::max(Hint->second, Search.MinRadius),
                   Search.MaxRadius);
      WarmStarts.add(1);
      if (Rec)
        Rec->record("warm_start", normToken(Spec.P), Search.InitRadius);
    }
    R.Radius = certifiedRadius(
        [&](double Radius) { return MarginAt(Radius) > 0.0; }, Search);
    R.Certified = R.Radius > 0.0;
  } else {
    R.Margin = MarginAt(Spec.Epsilon);
    R.Certified = R.Margin > 0.0;
  }
}

void Scheduler::executeWithDegradation(const JobSpec &Spec, JobResult &R,
                                       const WarmMap &Warm,
                                       support::FlightRecorder *Rec,
                                       PrecisionProfile *Prof,
                                       CertificateData *Cert) const {
  static support::Counter &DeadlineHits =
      support::Metrics::global().counter("sched.deadline_hits");
  static support::Counter &RetryCount =
      support::Metrics::global().counter("sched.retries");
  static support::Histogram &RetryBackoff =
      support::Metrics::global().histogram("sched.retry_backoff_ms");
  int64_t DeadlineMs =
      Spec.DeadlineMs >= 0
          ? Spec.DeadlineMs
          : (Opts.DefaultDeadlineMs > 0 ? Opts.DefaultDeadlineMs : -1);
  JobMethod Method = Spec.Method;
  // Transient failures re-run the current attempt on a jitter-free
  // deterministic schedule: RetryBackoffMs * 2^(attempt-1), capped. The
  // schedule being a pure function of the attempt index keeps drills
  // reproducible (no randomized jitter to smear test timings over).
  auto maybeRetry = [&](support::ErrorCode Code,
                        const char *What) -> bool {
    if (!support::isTransientError(Code) || R.Retries >= Opts.MaxRetries)
      return false;
    ++R.Retries;
    RetryCount.add(1);
    int64_t Delay = Opts.RetryBackoffMs;
    for (int K = 1; K < R.Retries; ++K)
      Delay = std::min(Delay * 2, Opts.RetryBackoffMaxMs);
    Delay = std::min(std::max<int64_t>(Delay, 0), Opts.RetryBackoffMaxMs);
    RetryBackoff.observe(static_cast<double>(Delay));
    if (Rec)
      Rec->record("retry", What, static_cast<double>(Delay),
                  static_cast<double>(R.Retries));
    std::this_thread::sleep_for(std::chrono::milliseconds(Delay));
    return true;
  };
  for (;;) {
    try {
      uint64_t FaultsBefore = support::fault::injectedCount();
      if (Rec)
        Rec->record("attempt_start", jobMethodName(Method),
                    static_cast<double>(DeadlineMs));
      // A degraded retry must not inherit the previous attempt's
      // snapshot (the degraded method's own probes refill it).
      if (Cert)
        *Cert = CertificateData();
      executeOne(Spec, Method, DeadlineMs, R, Warm, Rec, Prof, Cert);
      if (Rec) {
        uint64_t Faults = support::fault::injectedCount() - FaultsBefore;
        if (Faults > 0)
          Rec->record("fault", "injected during attempt",
                      static_cast<double>(Faults));
      }
      R.Status =
          Method == Spec.Method ? JobStatus::Ok : JobStatus::Degraded;
      R.Code = support::ErrorCode::Ok;
      return;
    } catch (const DeadlineExceeded &E) {
      DeadlineHits.add(1);
      R.DeadlineHit = true;
      if (degrade(Method)) {
        // The deadline is already blown; a degraded-but-complete answer
        // beats a second miss, so the retry runs without one.
        if (Rec)
          Rec->record("degrade", E.what(),
                      static_cast<double>(DeadlineMs));
        DeadlineMs = -1;
        continue;
      }
      if (Rec)
        Rec->record("deadline", E.what(), static_cast<double>(DeadlineMs));
      R.Status = JobStatus::Error;
      R.Error = E.what();
      R.Code = support::ErrorCode::DeadlineExceeded;
      return;
    } catch (const std::bad_alloc &) {
      // Degradation before retry: a cheaper sound answer now beats the
      // same expensive attempt failing the same way after a backoff.
      if (degrade(Method)) {
        if (Rec)
          Rec->record("degrade", "out of memory");
        DeadlineMs = -1;
        continue;
      }
      if (maybeRetry(support::ErrorCode::OutOfMemory, "out of memory"))
        continue;
      if (Rec)
        Rec->record("oom", "out of memory");
      R.Status = JobStatus::Error;
      R.Error = "out of memory";
      R.Code = support::ErrorCode::OutOfMemory;
      return;
    } catch (const std::exception &E) {
      // A failed attempt must never leave the partial verdict of an
      // aborted propagation behind (in particular an UnsoundAbstraction
      // error can never coexist with Certified = true).
      R.Certified = false;
      R.Margin = 0.0;
      R.Radius = 0.0;
      support::ErrorCode Code = support::codeOf(E);
      if (maybeRetry(Code, E.what()))
        continue;
      if (Rec)
        Rec->record("error", E.what());
      R.Status = JobStatus::Error;
      R.Error = E.what();
      R.Code = Code;
      return;
    }
  }
}

std::vector<JobResult> Scheduler::run(const JobQueue &Queue) const {
  support::TraceSpan BatchSpan("sched.batch");
  support::Metrics &M = support::Metrics::global();
  static support::Counter &Jobs = M.counter("sched.jobs");
  static support::Counter &Degraded = M.counter("sched.degraded");
  static support::Counter &Errors = M.counter("sched.errors");
  static support::Counter &Skipped = M.counter("sched.skipped");
  static support::Counter &Aborted = M.counter("sched.aborted");
  static support::Histogram &QueueLatencyMs =
      M.histogram("sched.queue_latency_ms");
  static support::Histogram &JobMs = M.histogram("sched.job_ms");

  std::set<std::string> Done;
  if (Opts.Resume && !Opts.JsonlPath.empty()) {
    // Recovery (not just reading): a torn trailing record left by a
    // crash mid-append is truncated away so only that job re-runs.
    Done = recoverStore(Opts.JsonlPath);
  }

  support::AppendFile Store;
  std::mutex StoreMu;
  bool StoreBroken = false;
  if (!Opts.JsonlPath.empty()) {
    support::Error Err;
    if (!Store.open(Opts.JsonlPath, &Err))
      throw Err;
  }
  support::AppendFile ProfileStore;
  std::mutex ProfileMu;
  if (!Opts.ProfileJsonlPath.empty()) {
    support::Error Err;
    if (!ProfileStore.open(Opts.ProfileJsonlPath, &Err))
      throw Err;
  }

  size_t N = Queue.size();
  std::vector<JobResult> Results(N);
  // One snapshot of the warm-start hints for the whole batch: every job
  // sees the same table no matter how the pool interleaves them, keeping
  // search results independent of the thread count.
  WarmMap Warm;
  {
    std::lock_guard<std::mutex> Lock(WarmMu);
    Warm = WarmRadii;
  }
  support::Timer BatchTimer;
  support::parallelFor(0, N, 1, [&](size_t Begin, size_t End) {
    for (size_t I = Begin; I < End; ++I) {
      const JobSpec &Spec = Queue.spec(I);
      JobResult &R = Results[I];
      R.Key = jobKey(Spec);
      R.MethodUsed = Spec.Method;
      if (Done.count(R.Key)) {
        R.Status = JobStatus::Skipped;
        Skipped.add(1);
        continue;
      }
      // A lost lease means another worker now owns this shard's jobs:
      // abandon them with a typed error and, below, keep them out of the
      // store (the reclaimer's re-run writes the canonical records).
      if (Opts.AbortCheck && Opts.AbortCheck()) {
        R.Status = JobStatus::Error;
        R.Code = support::ErrorCode::LeaseLost;
        R.Error = "batch aborted: lease lost before the job started";
        Aborted.add(1);
        continue;
      }
      // The span carries the job key (not the queue index) so trace
      // files join against JSONL rows and recorder artifacts offline.
      support::TraceSpan JobSpan("sched.job", R.Key);
      Jobs.add(1);
      R.QueueMs = BatchTimer.seconds() * 1e3;
      QueueLatencyMs.observe(R.QueueMs);
      std::optional<support::FlightRecorder> Rec;
      if (!Opts.RecorderDir.empty())
        Rec.emplace(Opts.RecorderCapacity);
      std::optional<PrecisionProfile> Prof;
      if (ProfileStore.isOpen()) {
        Prof.emplace();
        Prof->Query = R.Key;
        Prof->Norm = normToken(Spec.P);
        Prof->Eps = Spec.Epsilon;
      }
      std::optional<CertificateData> Cert;
      if (!Opts.CertDir.empty())
        Cert.emplace();
      support::Timer JobTimer;
      executeWithDegradation(Spec, R, Warm, Rec ? &*Rec : nullptr,
                             Prof ? &*Prof : nullptr,
                             Cert ? &*Cert : nullptr);
      R.Seconds = JobTimer.seconds();
      JobMs.observe(R.Seconds * 1e3);
      if (R.Status == JobStatus::Degraded)
        Degraded.add(1);
      else if (R.Status == JobStatus::Error)
        Errors.add(1);
      // Profiles stream for every job the verifier actually profiled
      // (CROWN baselines and failed attempts leave no checkpoints);
      // recorder artifacts persist only for jobs that ended badly --
      // success discards the ring.
      if (Prof && !Prof->Checkpoints.empty()) {
        Prof->Method = jobMethodName(R.MethodUsed);
        std::string Line = Prof->toJsonLine() + "\n";
        std::lock_guard<std::mutex> Lock(ProfileMu);
        support::Error Err;
        ProfileStore.append(Line, Opts.Fsync, &Err);
      }
      // Certificate artifact: only for jobs whose final answer is a
      // DeepT-certified verdict (the snapshot is Valid+Certified exactly
      // then). A failed write -- IO or an injected "cert.write" fault --
      // is counted and warned about, never fatal to the batch.
      if (Cert && Cert->Margin.Valid && Cert->Margin.Certified &&
          R.Certified &&
          (R.Status == JobStatus::Ok || R.Status == JobStatus::Degraded)) {
        static support::Counter &CertEmitted = M.counter("cert.emitted");
        static support::Counter &CertBytes = M.counter("cert.bytes");
        static support::Counter &CertWriteFailures =
            M.counter("cert.write_failures");
        std::string Path =
            Opts.CertDir + "/cert-" + fileSafe(R.Key) + ".json";
        try {
          DEEPT_FAULT_POINT("cert.write");
          std::string Json = Cert->toJson() + "\n";
          support::Error WErr;
          if (!support::atomicWriteFile(Path, Json, &WErr))
            throw WErr;
          CertEmitted.add(1);
          CertBytes.add(static_cast<double>(Json.size()));
          if (Rec)
            Rec->record("certificate", Path.c_str(),
                        static_cast<double>(Json.size()));
        } catch (const std::exception &E) {
          CertWriteFailures.add(1);
          std::fprintf(stderr,
                       "warning: certificate write to '%s' failed: %s\n",
                       Path.c_str(), E.what());
        }
      }
      if (Rec && (R.Status == JobStatus::Error || R.DeadlineHit)) {
        Rec->record("final", jobStatusName(R.Status),
                    R.Certified ? 1.0 : 0.0, R.Seconds * 1e3);
        std::string Path =
            Opts.RecorderDir + "/recorder-" + fileSafe(R.Key) + ".json";
        std::string DumpErr;
        if (!Rec->dumpJson(Path, R.Key, &DumpErr))
          std::fprintf(stderr,
                       "warning: flight-recorder dump to '%s' failed: %s\n",
                       Path.c_str(), DumpErr.c_str());
      }
      if (Store.isOpen()) {
        std::string Line = resultStoreLine(R) + "\n";
        std::lock_guard<std::mutex> Lock(StoreMu);
        support::Error Err;
        if (!StoreBroken && !Store.append(Line, Opts.Fsync, &Err)) {
          // Losing the store must not lose the batch: the results are
          // still returned in memory, so warn once and keep going.
          StoreBroken = true;
          Store.close();
          std::fprintf(stderr,
                       "warning: result store write failed (%s); "
                       "continuing without the store\n",
                       Err.what());
        }
      }
    }
  });
  // Fold the batch's certified radii back into the hint table in queue
  // order (deterministic: later jobs of the queue win ties, independent
  // of which worker finished first).
  {
    std::lock_guard<std::mutex> Lock(WarmMu);
    for (size_t I = 0; I < N; ++I) {
      const JobSpec &Spec = Queue.spec(I);
      const JobResult &R = Results[I];
      if (Spec.SearchRadius && R.Certified && R.Radius > 0.0 &&
          (R.Status == JobStatus::Ok || R.Status == JobStatus::Degraded))
        WarmRadii[{R.MethodUsed, Spec.P}] = R.Radius;
    }
  }
  return Results;
}
