//===- verify/Coordination.cpp --------------------------------*- C++ -*-===//

#include "verify/Coordination.h"

#include "support/Fault.h"
#include "support/Io.h"
#include "support/Json.h"
#include "support/Metrics.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <dirent.h>
#include <map>
#include <thread>
#include <unistd.h>

using namespace deept;
using namespace deept::verify;
using support::Error;
using support::ErrorCode;
using support::Lease;

namespace {

std::string manifestPath(const std::string &Dir) {
  return Dir + "/coordination.json";
}

/// FNV-1a over a string (same constants as Scheduler::jobKey).
uint64_t fnv1a(const std::string &S) {
  uint64_t H = 1469598103934665603ull;
  for (unsigned char C : S) {
    H ^= C;
    H *= 1099511628211ull;
  }
  return H;
}

void sleepMs(int64_t Ms) {
  std::this_thread::sleep_for(std::chrono::milliseconds(Ms));
}

} // namespace

size_t Worker::rangeOf(const std::string &Key, size_t Ranges) {
  return Ranges ? static_cast<size_t>(fnv1a(Key) % Ranges) : 0;
}

std::string Worker::queueDigest(const JobQueue &Queue) {
  uint64_t H = 1469598103934665603ull;
  for (const JobSpec &Spec : Queue.specs()) {
    uint64_t K = fnv1a(Scheduler::jobKey(Spec));
    H ^= K;
    H *= 1099511628211ull;
  }
  char Buf[24];
  std::snprintf(Buf, sizeof(Buf), "%016llx",
                static_cast<unsigned long long>(H));
  return Buf;
}

Worker::Worker(const nn::TransformerModel &Model, const JobQueue &Queue,
               CoordinationOptions Opts)
    : Model(Model), Queue(Queue), Opts(std::move(Opts)) {
  if (this->Opts.LeaseDir.empty())
    throw Error(ErrorCode::BadArgument, "coord.options",
                "a lease directory is required");
  if (this->Opts.Ranges == 0)
    throw Error(ErrorCode::BadArgument, "coord.options",
                "the range count must be positive");
  if (this->Opts.WorkerId.empty())
    this->Opts.WorkerId = "w" + std::to_string(::getpid());
  if (this->Opts.StaleAfterMs <= 0)
    this->Opts.StaleAfterMs = 5 * this->Opts.HeartbeatMs;
  Sub.resize(this->Opts.Ranges);
  for (const JobSpec &Spec : Queue.specs())
    Sub[rangeOf(Scheduler::jobKey(Spec), this->Opts.Ranges)].push(Spec);
}

void Worker::checkManifest() {
  // The manifest pins the shard geometry: every worker of a batch must
  // agree on the range count and on the job set, otherwise two workers
  // would route the same key to different shards.
  std::string Digest = queueDigest(Queue);
  char Buf[256];
  std::snprintf(Buf, sizeof(Buf),
                "{\"deept_coord\":1,\"ranges\":%zu,\"jobs\":%zu,"
                "\"queue_digest\":\"%s\"}\n",
                Opts.Ranges, Queue.size(), Digest.c_str());
  bool Exists = false;
  Error E;
  if (support::createFileExclusive(manifestPath(Opts.LeaseDir), Buf, Exists,
                                   &E))
    return;
  if (!Exists)
    throw E;
  std::string Text;
  if (!support::readFileToString(manifestPath(Opts.LeaseDir), Text, &E))
    throw E;
  support::JsonValue Doc;
  std::string JErr;
  if (!support::parseJson(Text, Doc, &JErr))
    throw Error(ErrorCode::StoreCorrupt, "coord.manifest",
                "malformed coordination manifest: " + JErr);
  const support::JsonValue *Ranges = Doc.find("ranges");
  const support::JsonValue *QD = Doc.find("queue_digest");
  if (!Ranges || Ranges->K != support::JsonValue::Kind::Number || !QD ||
      QD->K != support::JsonValue::Kind::String)
    throw Error(ErrorCode::StoreCorrupt, "coord.manifest",
                "coordination manifest missing required fields");
  if (static_cast<size_t>(Ranges->NumberVal) != Opts.Ranges)
    throw Error(ErrorCode::BadArgument, "coord.manifest",
                "range count mismatch: batch was sharded into " +
                    std::to_string(static_cast<size_t>(Ranges->NumberVal)) +
                    " ranges, this worker wants " +
                    std::to_string(Opts.Ranges));
  if (QD->StringVal != Digest)
    throw Error(ErrorCode::BadArgument, "coord.manifest",
                "job queue mismatch: this worker's jobs digest to " +
                    Digest + " but the batch was started with " +
                    QD->StringVal);
}

void Worker::runRange(Lease &L) {
  size_t Range = L.Range;
  // Heartbeat thread: renews the lease every HeartbeatMs until told to
  // stop. A LeaseLost renewal flips Lost, which the scheduler's
  // AbortCheck polls before each job -- no further shard writes happen
  // for jobs that had not started. Renewals sleep in short slices so the
  // guard's stop is prompt.
  std::atomic<bool> Stop{false};
  std::atomic<bool> Lost{false};
  std::thread Heartbeat([&] {
    for (;;) {
      int64_t Slept = 0;
      while (Slept < Opts.HeartbeatMs && !Stop.load()) {
        int64_t Slice = std::min<int64_t>(10, Opts.HeartbeatMs - Slept);
        sleepMs(Slice);
        Slept += Slice;
      }
      if (Stop.load())
        return;
      Error E;
      if (!support::renewLease(Opts.LeaseDir, L, &E)) {
        if (E.code() == ErrorCode::LeaseLost) {
          Lost.store(true);
          return;
        }
        // Any other renewal failure (transient IO, injected heartbeat
        // fault) is a missed heartbeat: keep trying; if enough renewals
        // miss, the lease goes stale and is reclaimed, which the next
        // successful renewal attempt reports as LeaseLost.
      }
    }
  });
  struct Join {
    std::atomic<bool> &Stop;
    std::thread &T;
    ~Join() {
      Stop.store(true);
      if (T.joinable())
        T.join();
    }
  } Guard{Stop, Heartbeat};

  SchedulerOptions SO = Opts.Sched;
  SO.JsonlPath = support::shardPath(Opts.LeaseDir, Range);
  SO.Resume = true;
  SO.AbortCheck = [&Lost] { return Lost.load(); };
  // A fresh Scheduler per range: its warm-start table starts empty, just
  // like a fresh serial batch's, which is what keeps search results
  // bit-identical at any worker count.
  Scheduler Sched(Model, SO);
  std::vector<JobResult> Results = Sched.run(Sub[Range]);

  if (Lost.load())
    throw Error(ErrorCode::LeaseLost, "coord.range",
                "lease on range " + std::to_string(Range) +
                    " was reclaimed; worker " + Opts.WorkerId +
                    " stopping (completed records remain in the shard)");

  for (const JobResult &R : Results) {
    ++Rep.Jobs;
    switch (R.Status) {
    case JobStatus::Ok:
      ++Rep.JobsOk;
      break;
    case JobStatus::Degraded:
      ++Rep.JobsDegraded;
      break;
    case JobStatus::Error:
      ++Rep.JobsError;
      break;
    case JobStatus::Skipped:
      ++Rep.JobsSkipped;
      break;
    }
    if (R.Certified)
      ++Rep.Certified;
  }

  // Stop renewing before publishing completion: a crash from here on
  // leaves a lease that goes stale (nobody renews it) against a range
  // that is either reclaimable (no marker yet) or finished (marker
  // written), and the release below must not race a mid-flight renewal
  // resurrecting the file.
  Stop.store(true);
  if (Heartbeat.joinable())
    Heartbeat.join();

  // The crash drill's kill point: a worker that dies here holds a lease
  // with a fully-written shard but no done marker, exactly the state a
  // SIGKILL between jobs leaves behind. Reclamation must finish the
  // range (Resume makes the re-run cheap: every job skips).
  DEEPT_FAULT_POINT("worker.crash");

  // Done marker before lease release: the marker is the authoritative
  // completion signal, so a crash between the two steps leaves a stale
  // lease that reclaimers simply clean up against a finished range.
  char Done[256];
  std::snprintf(Done, sizeof(Done),
                "{\"deept_done\":1,\"range\":%zu,\"owner\":\"%s\","
                "\"jobs\":%zu}\n",
                Range, support::jsonEscape(Opts.WorkerId).c_str(),
                Sub[Range].size());
  Error E;
  if (!support::atomicWriteFile(support::donePath(Opts.LeaseDir, Range), Done,
                                &E))
    throw E;
  support::releaseLease(Opts.LeaseDir, L);
  ++Rep.RangesCompleted;
  static support::Counter &RangesDone =
      support::Metrics::global().counter("coord.ranges_completed");
  RangesDone.add(1);
}

WorkerReport Worker::run() {
  checkManifest();
  size_t Ranges = Opts.Ranges;
  for (;;) {
    bool AllDone = true;
    bool Progress = false;
    for (size_t Range = 0; Range < Ranges; ++Range) {
      if (support::fileExists(support::donePath(Opts.LeaseDir, Range))) {
        // Finished range; a leftover lease (crash between marker and
        // release) is cosmetic -- remove it opportunistically.
        if (support::fileExists(support::leasePath(Opts.LeaseDir, Range))) {
          Lease Leftover;
          if (support::readLeaseFile(
                  support::leasePath(Opts.LeaseDir, Range), Leftover) &&
              support::leaseIsStale(Leftover, support::nowEpochMs(),
                                    Opts.StaleAfterMs))
            support::reclaimLease(Opts.LeaseDir, Leftover, Opts.WorkerId);
        }
        continue;
      }
      AllDone = false;
      Lease L;
      L.Range = Range;
      L.Ranges = Ranges;
      L.Owner = Opts.WorkerId;
      L.Pid = static_cast<int64_t>(::getpid());
      Error E;
      support::ClaimOutcome O = support::claimLease(Opts.LeaseDir, L, &E);
      if (O == support::ClaimOutcome::Failed)
        throw E;
      if (O == support::ClaimOutcome::Claimed) {
        runRange(L);
        Progress = true;
        continue;
      }
      // Held by someone else: reclaim if its heartbeat went stale. The
      // reclaim only frees the range; the claim happens on the next scan
      // (possibly by a different worker -- that is fine, any claimant
      // resumes the shard).
      Lease Cur;
      if (!support::readLeaseFile(support::leasePath(Opts.LeaseDir, Range),
                                  Cur))
        continue; // released or reclaimed in the window; rescan
      if (support::leaseIsStale(Cur, support::nowEpochMs(),
                                Opts.StaleAfterMs) &&
          support::reclaimLease(Opts.LeaseDir, Cur, Opts.WorkerId)) {
        std::fprintf(stderr,
                     "worker %s: reclaimed stale lease on range %zu "
                     "(owner '%s' stopped heartbeating)\n",
                     Opts.WorkerId.c_str(), Range, Cur.Owner.c_str());
        ++Rep.LeasesReclaimed;
        Progress = true;
      }
    }
    if (AllDone)
      return Rep;
    if (!Progress) {
      // Every unfinished range is held by a live worker: wait roughly a
      // heartbeat before re-scanning for completions or staleness.
      sleepMs(std::min<int64_t>(std::max<int64_t>(Opts.HeartbeatMs, 10),
                                500));
    }
  }
}

//===----------------------------------------------------------------------===//
// Shard merge
//===----------------------------------------------------------------------===//

namespace {

/// The fields of a store record that determinism fixes. seconds /
/// queue_ms / retries are timing artifacts and legitimately differ
/// between the workers that produced duplicate records.
struct Semantic {
  std::string Status, Method, ErrorCode;
  bool Certified = false;
  double Margin = 0.0, Radius = 0.0;

  bool operator==(const Semantic &O) const {
    return Status == O.Status && Method == O.Method &&
           ErrorCode == O.ErrorCode && Certified == O.Certified &&
           Margin == O.Margin && Radius == O.Radius;
  }
};

bool semanticOf(const support::JsonValue &Doc, Semantic &Out) {
  const support::JsonValue *Status = Doc.find("status");
  const support::JsonValue *Method = Doc.find("method");
  const support::JsonValue *Certified = Doc.find("certified");
  const support::JsonValue *Margin = Doc.find("margin");
  const support::JsonValue *Radius = Doc.find("radius");
  if (!Status || Status->K != support::JsonValue::Kind::String || !Method ||
      Method->K != support::JsonValue::Kind::String || !Certified ||
      Certified->K != support::JsonValue::Kind::Bool || !Margin ||
      !Radius)
    return false;
  Out.Status = Status->StringVal;
  Out.Method = Method->StringVal;
  Out.Certified = Certified->BoolVal;
  Out.Margin = Margin->NumberVal;
  Out.Radius = Radius->NumberVal;
  if (const support::JsonValue *EC = Doc.find("error_code"))
    Out.ErrorCode = EC->StringVal;
  return true;
}

} // namespace

bool deept::verify::mergeShards(const std::string &LeaseDir, size_t Ranges,
                                const std::string &OutPath, MergeReport &Rep,
                                Error *Err) {
  auto Fail = [&](ErrorCode C, const std::string &Msg) {
    if (Err)
      *Err = Error(C, "coord.merge", Msg);
    return false;
  };
  if (Ranges == 0) {
    // Read the shard geometry from the manifest; fall back to scanning
    // the directory for shard files when no manifest exists.
    std::string Text;
    support::JsonValue Doc;
    if (support::readFileToString(manifestPath(LeaseDir), Text) &&
        support::parseJson(Text, Doc)) {
      if (const support::JsonValue *R = Doc.find("ranges"))
        Ranges = static_cast<size_t>(R->NumberVal);
    }
    if (Ranges == 0) {
      DIR *D = ::opendir(LeaseDir.c_str());
      if (!D)
        return Fail(ErrorCode::IoError,
                    "cannot open lease dir '" + LeaseDir + "'");
      while (struct dirent *E = ::readdir(D)) {
        unsigned long I = 0;
        if (std::sscanf(E->d_name, "shard-%lu.jsonl", &I) == 1)
          Ranges = std::max<size_t>(Ranges, static_cast<size_t>(I) + 1);
      }
      ::closedir(D);
    }
    if (Ranges == 0)
      return Fail(ErrorCode::BadArgument,
                  "no manifest and no shard files under '" + LeaseDir +
                      "'");
  }

  std::map<std::string, std::pair<Semantic, std::string>> Records;
  for (size_t Range = 0; Range < Ranges; ++Range) {
    std::string Path = support::shardPath(LeaseDir, Range);
    std::string Contents;
    if (!support::readFileToString(Path, Contents))
      continue; // an empty range never created its shard
    ++Rep.Shards;
    size_t Pos = 0;
    while (Pos < Contents.size()) {
      size_t Nl = Contents.find('\n', Pos);
      size_t End = Nl == std::string::npos ? Contents.size() : Nl;
      std::string Line = Contents.substr(Pos, End - Pos);
      Pos = End + 1;
      if (Line.empty())
        continue;
      if (Scheduler::checkRecordCrc(Line) == Scheduler::RecordCrc::Mismatch) {
        ++Rep.DroppedCrc;
        std::fprintf(stderr,
                     "warning: merge: dropping CRC-mismatched record in "
                     "'%s'\n",
                     Path.c_str());
        continue;
      }
      support::JsonValue Doc;
      Semantic Sem;
      const support::JsonValue *Key = nullptr;
      if (!support::parseJson(Line, Doc) ||
          !(Key = Doc.find("key")) ||
          Key->K != support::JsonValue::Kind::String ||
          !semanticOf(Doc, Sem)) {
        // A torn tail the dead worker never got to repair; the record's
        // job was re-run into another (or the same, post-repair) shard.
        ++Rep.DroppedMalformed;
        continue;
      }
      auto It = Records.find(Key->StringVal);
      if (It == Records.end()) {
        Records.emplace(Key->StringVal, std::make_pair(Sem, Line));
        continue;
      }
      if (!(It->second.first == Sem))
        return Fail(ErrorCode::StoreCorrupt,
                    "conflicting records for key '" + Key->StringVal +
                        "': determinism violation or corrupt shard in '" +
                        Path + "'");
      ++Rep.DuplicatesCollapsed;
    }
  }

  std::string Out;
  for (const auto &KV : Records) {
    Out += KV.second.second;
    Out += '\n';
  }
  Rep.Records = Records.size();
  Error WErr;
  if (!support::atomicWriteFile(OutPath, Out, &WErr)) {
    if (Err)
      *Err = WErr;
    return false;
  }
  return true;
}
