//===- verify/FeedForwardVerifier.cpp -------------------------*- C++ -*-===//

#include "verify/FeedForwardVerifier.h"

#include "zono/Elementwise.h"

#include <cassert>

using namespace deept;
using namespace deept::verify;
using namespace deept::zono;
using tensor::Matrix;

Zonotope deept::verify::propagateFeedForward(const nn::FeedForwardNet &Net,
                                             const Zonotope &Input) {
  assert(Input.cols() == Net.inputDim() && "input width mismatch");
  Zonotope H = Input;
  for (size_t L = 0; L < Net.numLayers(); ++L) {
    H = H.matmulRightConst(Net.Weights[L]).addRowBroadcast(Net.Biases[L]);
    if (L + 1 != Net.numLayers())
      H = applyRelu(H);
  }
  return H;
}

double deept::verify::feedForwardMargin(const nn::FeedForwardNet &Net,
                                        const Zonotope &Input,
                                        size_t TrueClass) {
  Zonotope Logits = propagateFeedForward(Net, Input);
  Zonotope Margin =
      Logits.mapLinearPublic(1, 1, [TrueClass](const Matrix &M) {
        Matrix Out(1, 1);
        Out.at(0, 0) = M.at(0, TrueClass) - M.at(0, 1 - TrueClass);
        return Out;
      });
  Matrix Lo, Hi;
  Margin.bounds(Lo, Hi);
  return Lo.at(0, 0);
}

bool deept::verify::certifyFeedForwardLpBall(const nn::FeedForwardNet &Net,
                                             const Matrix &X, double P,
                                             double Radius,
                                             size_t TrueClass) {
  Zonotope In = Zonotope::lpBall(X, P, Radius);
  return feedForwardMargin(Net, In, TrueClass) > 0.0;
}
