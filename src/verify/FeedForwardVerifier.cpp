//===- verify/FeedForwardVerifier.cpp -------------------------*- C++ -*-===//

#include "verify/FeedForwardVerifier.h"

#include "verify/Certificate.h"
#include "zono/Elementwise.h"

#include <cassert>

using namespace deept;
using namespace deept::verify;
using namespace deept::zono;
using tensor::Matrix;

Zonotope deept::verify::propagateFeedForward(const nn::FeedForwardNet &Net,
                                             const Zonotope &Input,
                                             CertificateBuilder *Cert) {
  assert(Input.cols() == Net.inputDim() && "input width mismatch");
  Zonotope H = Input;
  if (Cert)
    Cert->recordCheckpoint(H, "ffn.input", -1, -1);
  for (size_t L = 0; L < Net.numLayers(); ++L) {
    H = H.matmulRightConst(Net.Weights[L]).addRowBroadcast(Net.Biases[L]);
    if (L + 1 != Net.numLayers())
      H = applyRelu(H);
    if (Cert)
      Cert->recordCheckpoint(H, "ffn.layer_output", static_cast<int>(L), -1);
  }
  return H;
}

double deept::verify::feedForwardMargin(const nn::FeedForwardNet &Net,
                                        const Zonotope &Input,
                                        size_t TrueClass,
                                        CertificateBuilder *Cert) {
  if (Cert) {
    Cert->Data.Kind = "ffn";
    Cert->beginRun(TrueClass, Net.numLayers(), Net.inputDim(), 0);
    Cert->recordInput(Input);
  }
  Zonotope Logits = propagateFeedForward(Net, Input, Cert);
  // Same +/-1 column trick as DeepTVerifier::certifyMarginImpl: keeps the
  // eps blocks in scatter form and is bit-identical to the mapLinear
  // subtraction.
  Matrix MarginW(2, 1);
  MarginW.at(TrueClass, 0) = 1.0;
  MarginW.at(1 - TrueClass, 0) = -1.0;
  Zonotope Margin = Logits.matmulRightConst(MarginW);
  Matrix Lo, Hi;
  Margin.bounds(Lo, Hi);
  if (Cert)
    Cert->recordMargin(Margin, TrueClass, Lo.at(0, 0), Hi.at(0, 0));
  return Lo.at(0, 0);
}

bool deept::verify::certifyFeedForwardLpBall(const nn::FeedForwardNet &Net,
                                             const Matrix &X, double P,
                                             double Radius,
                                             size_t TrueClass,
                                             CertificateBuilder *Cert) {
  Zonotope In = Zonotope::lpBall(X, P, Radius);
  return feedForwardMargin(Net, In, TrueClass, Cert) > 0.0;
}
