//===- verify/FeedForwardVerifier.cpp -------------------------*- C++ -*-===//

#include "verify/FeedForwardVerifier.h"

#include "zono/Elementwise.h"

#include <cassert>

using namespace deept;
using namespace deept::verify;
using namespace deept::zono;
using tensor::Matrix;

Zonotope deept::verify::propagateFeedForward(const nn::FeedForwardNet &Net,
                                             const Zonotope &Input) {
  assert(Input.cols() == Net.inputDim() && "input width mismatch");
  Zonotope H = Input;
  for (size_t L = 0; L < Net.numLayers(); ++L) {
    H = H.matmulRightConst(Net.Weights[L]).addRowBroadcast(Net.Biases[L]);
    if (L + 1 != Net.numLayers())
      H = applyRelu(H);
  }
  return H;
}

double deept::verify::feedForwardMargin(const nn::FeedForwardNet &Net,
                                        const Zonotope &Input,
                                        size_t TrueClass) {
  Zonotope Logits = propagateFeedForward(Net, Input);
  // Same +/-1 column trick as DeepTVerifier::certifyMarginImpl: keeps the
  // eps blocks in scatter form and is bit-identical to the mapLinear
  // subtraction.
  Matrix MarginW(2, 1);
  MarginW.at(TrueClass, 0) = 1.0;
  MarginW.at(1 - TrueClass, 0) = -1.0;
  Zonotope Margin = Logits.matmulRightConst(MarginW);
  Matrix Lo, Hi;
  Margin.bounds(Lo, Hi);
  return Lo.at(0, 0);
}

bool deept::verify::certifyFeedForwardLpBall(const nn::FeedForwardNet &Net,
                                             const Matrix &X, double P,
                                             double Radius,
                                             size_t TrueClass) {
  Zonotope In = Zonotope::lpBall(X, P, Radius);
  return feedForwardMargin(Net, In, TrueClass) > 0.0;
}
