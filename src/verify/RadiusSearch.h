//===- verify/RadiusSearch.h - Certified radius binary search --*- C++ -*-===//
//
// Part of deept-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The binary search used throughout the evaluation: the certified radius
/// is the largest eps such that the region of radius eps around the input
/// can be verified (Section 6.1).
///
//===----------------------------------------------------------------------===//

#ifndef DEEPT_VERIFY_RADIUSSEARCH_H
#define DEEPT_VERIFY_RADIUSSEARCH_H

#include <functional>

namespace deept {
namespace verify {

struct RadiusSearchOptions {
  /// First radius probed.
  double InitRadius = 0.01;
  /// Search range clamps.
  double MinRadius = 1e-9;
  double MaxRadius = 64.0;
  /// Bisection iterations after bracketing.
  int BisectSteps = 10;
};

/// Returns the largest radius (within the options' resolution) for which
/// \p Certify returns true, or 0 when even MinRadius fails. Certify must
/// be monotone (certifiable at r implies certifiable below r), which
/// holds for all verifiers here since regions are nested.
double certifiedRadius(const std::function<bool(double)> &Certify,
                       const RadiusSearchOptions &Opts =
                           RadiusSearchOptions());

} // namespace verify
} // namespace deept

#endif // DEEPT_VERIFY_RADIUSSEARCH_H
