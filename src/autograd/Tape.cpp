//===- autograd/Tape.cpp --------------------------------------*- C++ -*-===//

#include "autograd/Tape.h"

#include <cassert>
#include <cmath>

using namespace deept;
using namespace deept::autograd;

ValueId Tape::push(Matrix Val, std::function<void()> Backward) {
  Node N;
  N.Grad = Matrix(Val.rows(), Val.cols(), 0.0);
  N.Val = std::move(Val);
  N.Backward = std::move(Backward);
  Nodes.push_back(std::move(N));
  return static_cast<ValueId>(Nodes.size()) - 1;
}

ValueId Tape::input(Matrix Val) { return push(std::move(Val), {}); }

ValueId Tape::add(ValueId A, ValueId B) {
  ValueId Out = push(value(A) + value(B), {});
  Nodes[Out].Backward = [this, A, B, Out] {
    gradRef(A) += grad(Out);
    gradRef(B) += grad(Out);
  };
  return Out;
}

ValueId Tape::sub(ValueId A, ValueId B) {
  ValueId Out = push(value(A) - value(B), {});
  Nodes[Out].Backward = [this, A, B, Out] {
    gradRef(A) += grad(Out);
    gradRef(B) -= grad(Out);
  };
  return Out;
}

ValueId Tape::scale(ValueId A, double S) {
  ValueId Out = push(value(A) * S, {});
  Nodes[Out].Backward = [this, A, Out, S] {
    gradRef(A).addScaled(grad(Out), S);
  };
  return Out;
}

ValueId Tape::hadamard(ValueId A, ValueId B) {
  ValueId Out = push(tensor::hadamard(value(A), value(B)), {});
  Nodes[Out].Backward = [this, A, B, Out] {
    gradRef(A) += tensor::hadamard(grad(Out), value(B));
    gradRef(B) += tensor::hadamard(grad(Out), value(A));
  };
  return Out;
}

ValueId Tape::matmul(ValueId A, ValueId B) {
  ValueId Out = push(tensor::matmul(value(A), value(B)), {});
  Nodes[Out].Backward = [this, A, B, Out] {
    gradRef(A) += tensor::matmulTransposedB(grad(Out), value(B));
    gradRef(B) += tensor::matmulTransposedA(value(A), grad(Out));
  };
  return Out;
}

ValueId Tape::matmulTB(ValueId A, ValueId B) {
  ValueId Out = push(tensor::matmulTransposedB(value(A), value(B)), {});
  Nodes[Out].Backward = [this, A, B, Out] {
    gradRef(A) += tensor::matmul(grad(Out), value(B));
    gradRef(B) += tensor::matmulTransposedA(grad(Out), value(A));
  };
  return Out;
}

ValueId Tape::transpose(ValueId A) {
  ValueId Out = push(value(A).transposed(), {});
  Nodes[Out].Backward = [this, A, Out] {
    gradRef(A) += grad(Out).transposed();
  };
  return Out;
}

ValueId Tape::addRowBroadcast(ValueId A, ValueId Bias) {
  ValueId Out = push(tensor::addRowBroadcast(value(A), value(Bias)), {});
  Nodes[Out].Backward = [this, A, Bias, Out] {
    gradRef(A) += grad(Out);
    Matrix &GB = gradRef(Bias);
    const Matrix &GO = grad(Out);
    for (size_t R = 0; R < GO.rows(); ++R)
      for (size_t C = 0; C < GO.cols(); ++C)
        GB.at(0, C) += GO.at(R, C);
  };
  return Out;
}

ValueId Tape::mulRowBroadcast(ValueId A, ValueId Gamma) {
  const Matrix &X = value(A);
  const Matrix &G = value(Gamma);
  assert(G.rows() == 1 && G.cols() == X.cols() && "gamma shape mismatch");
  Matrix Val = X;
  for (size_t R = 0; R < X.rows(); ++R)
    for (size_t C = 0; C < X.cols(); ++C)
      Val.at(R, C) *= G.at(0, C);
  ValueId Out = push(std::move(Val), {});
  Nodes[Out].Backward = [this, A, Gamma, Out] {
    const Matrix &GO = grad(Out);
    const Matrix &XV = value(A);
    const Matrix &GV = value(Gamma);
    Matrix &GA = gradRef(A);
    Matrix &GG = gradRef(Gamma);
    for (size_t R = 0; R < GO.rows(); ++R)
      for (size_t C = 0; C < GO.cols(); ++C) {
        GA.at(R, C) += GO.at(R, C) * GV.at(0, C);
        GG.at(0, C) += GO.at(R, C) * XV.at(R, C);
      }
  };
  return Out;
}

ValueId Tape::mulColBroadcast(ValueId A, ValueId Scale) {
  const Matrix &X = value(A);
  const Matrix &S = value(Scale);
  assert(S.cols() == 1 && S.rows() == X.rows() && "scale shape mismatch");
  Matrix Val = X;
  for (size_t R = 0; R < X.rows(); ++R)
    for (size_t C = 0; C < X.cols(); ++C)
      Val.at(R, C) *= S.at(R, 0);
  ValueId Out = push(std::move(Val), {});
  Nodes[Out].Backward = [this, A, Scale, Out] {
    const Matrix &GO = grad(Out);
    const Matrix &XV = value(A);
    const Matrix &SV = value(Scale);
    Matrix &GA = gradRef(A);
    Matrix &GS = gradRef(Scale);
    for (size_t R = 0; R < GO.rows(); ++R)
      for (size_t C = 0; C < GO.cols(); ++C) {
        GA.at(R, C) += GO.at(R, C) * SV.at(R, 0);
        GS.at(R, 0) += GO.at(R, C) * XV.at(R, C);
      }
  };
  return Out;
}

ValueId Tape::relu(ValueId A) {
  ValueId Out = push(value(A).map([](double X) { return X > 0 ? X : 0.0; }),
                     {});
  Nodes[Out].Backward = [this, A, Out] {
    const Matrix &GO = grad(Out);
    const Matrix &XV = value(A);
    Matrix &GA = gradRef(A);
    for (size_t I = 0; I < GO.size(); ++I)
      if (XV.flat(I) > 0.0)
        GA.flat(I) += GO.flat(I);
  };
  return Out;
}

ValueId Tape::tanhOp(ValueId A) {
  ValueId Out =
      push(value(A).map([](double X) { return std::tanh(X); }), {});
  Nodes[Out].Backward = [this, A, Out] {
    const Matrix &GO = grad(Out);
    const Matrix &Y = value(Out);
    Matrix &GA = gradRef(A);
    for (size_t I = 0; I < GO.size(); ++I)
      GA.flat(I) += GO.flat(I) * (1.0 - Y.flat(I) * Y.flat(I));
  };
  return Out;
}

ValueId Tape::recip(ValueId A) {
  ValueId Out = push(value(A).map([](double X) { return 1.0 / X; }), {});
  Nodes[Out].Backward = [this, A, Out] {
    const Matrix &GO = grad(Out);
    const Matrix &Y = value(Out);
    Matrix &GA = gradRef(A);
    for (size_t I = 0; I < GO.size(); ++I)
      GA.flat(I) -= GO.flat(I) * Y.flat(I) * Y.flat(I);
  };
  return Out;
}

ValueId Tape::sqrtOp(ValueId A) {
  ValueId Out =
      push(value(A).map([](double X) { return std::sqrt(X); }), {});
  Nodes[Out].Backward = [this, A, Out] {
    const Matrix &GO = grad(Out);
    const Matrix &Y = value(Out);
    Matrix &GA = gradRef(A);
    for (size_t I = 0; I < GO.size(); ++I)
      GA.flat(I) += GO.flat(I) * 0.5 / std::max(Y.flat(I), 1e-12);
  };
  return Out;
}

ValueId Tape::rowSoftmax(ValueId A) {
  ValueId Out = push(tensor::rowSoftmax(value(A)), {});
  Nodes[Out].Backward = [this, A, Out] {
    const Matrix &GO = grad(Out);
    const Matrix &Y = value(Out);
    Matrix &GA = gradRef(A);
    for (size_t R = 0; R < GO.rows(); ++R) {
      double Dot = 0.0;
      for (size_t C = 0; C < GO.cols(); ++C)
        Dot += GO.at(R, C) * Y.at(R, C);
      for (size_t C = 0; C < GO.cols(); ++C)
        GA.at(R, C) += Y.at(R, C) * (GO.at(R, C) - Dot);
    }
  };
  return Out;
}

ValueId Tape::subRowMean(ValueId A) {
  const Matrix &X = value(A);
  Matrix Means = X.rowMeans();
  Matrix Val = X;
  for (size_t R = 0; R < X.rows(); ++R)
    for (size_t C = 0; C < X.cols(); ++C)
      Val.at(R, C) -= Means.at(R, 0);
  ValueId Out = push(std::move(Val), {});
  Nodes[Out].Backward = [this, A, Out] {
    const Matrix &GO = grad(Out);
    Matrix GM = GO.rowMeans();
    Matrix &GA = gradRef(A);
    for (size_t R = 0; R < GO.rows(); ++R)
      for (size_t C = 0; C < GO.cols(); ++C)
        GA.at(R, C) += GO.at(R, C) - GM.at(R, 0);
  };
  return Out;
}

ValueId Tape::rowMeans(ValueId A) {
  ValueId Out = push(value(A).rowMeans(), {});
  Nodes[Out].Backward = [this, A, Out] {
    const Matrix &GO = grad(Out);
    Matrix &GA = gradRef(A);
    double InvC = 1.0 / static_cast<double>(GA.cols());
    for (size_t R = 0; R < GA.rows(); ++R)
      for (size_t C = 0; C < GA.cols(); ++C)
        GA.at(R, C) += GO.at(R, 0) * InvC;
  };
  return Out;
}

ValueId Tape::colSlice(ValueId A, size_t C0, size_t C1) {
  ValueId Out = push(value(A).colSlice(C0, C1), {});
  Nodes[Out].Backward = [this, A, Out, C0] {
    const Matrix &GO = grad(Out);
    Matrix &GA = gradRef(A);
    for (size_t R = 0; R < GO.rows(); ++R)
      for (size_t C = 0; C < GO.cols(); ++C)
        GA.at(R, C0 + C) += GO.at(R, C);
  };
  return Out;
}

ValueId Tape::rowSlice(ValueId A, size_t R0, size_t R1) {
  ValueId Out = push(value(A).rowSlice(R0, R1), {});
  Nodes[Out].Backward = [this, A, Out, R0] {
    const Matrix &GO = grad(Out);
    Matrix &GA = gradRef(A);
    for (size_t R = 0; R < GO.rows(); ++R)
      for (size_t C = 0; C < GO.cols(); ++C)
        GA.at(R0 + R, C) += GO.at(R, C);
  };
  return Out;
}

ValueId Tape::concatCols(const std::vector<ValueId> &Parts) {
  assert(!Parts.empty() && "concatCols of nothing");
  size_t Rows = value(Parts[0]).rows();
  size_t Cols = 0;
  for (ValueId P : Parts)
    Cols += value(P).cols();
  Matrix Val(Rows, Cols);
  size_t C0 = 0;
  for (ValueId P : Parts) {
    Val.setBlock(0, C0, value(P));
    C0 += value(P).cols();
  }
  ValueId Out = push(std::move(Val), {});
  std::vector<ValueId> PartsCopy = Parts;
  Nodes[Out].Backward = [this, PartsCopy, Out] {
    const Matrix &GO = grad(Out);
    size_t Off = 0;
    for (ValueId P : PartsCopy) {
      Matrix &GP = gradRef(P);
      for (size_t R = 0; R < GP.rows(); ++R)
        for (size_t C = 0; C < GP.cols(); ++C)
          GP.at(R, C) += GO.at(R, Off + C);
      Off += GP.cols();
    }
  };
  return Out;
}

ValueId Tape::gatherRows(ValueId A, std::vector<size_t> Rows) {
  const Matrix &X = value(A);
  Matrix Val(Rows.size(), X.cols());
  for (size_t I = 0; I < Rows.size(); ++I) {
    assert(Rows[I] < X.rows() && "gather row out of range");
    Val.setBlock(I, 0, X.rowSlice(Rows[I], Rows[I] + 1));
  }
  ValueId Out = push(std::move(Val), {});
  Nodes[Out].Backward = [this, A, Out, Rows = std::move(Rows)] {
    const Matrix &GO = grad(Out);
    Matrix &GA = gradRef(A);
    for (size_t I = 0; I < Rows.size(); ++I)
      for (size_t C = 0; C < GO.cols(); ++C)
        GA.at(Rows[I], C) += GO.at(I, C);
  };
  return Out;
}

ValueId Tape::crossEntropyLogits(ValueId Logits, size_t Label) {
  const Matrix &L = value(Logits);
  assert(L.rows() == 1 && Label < L.cols() && "bad logits/label");
  Matrix P = tensor::rowSoftmax(L);
  Matrix Val(1, 1, -std::log(std::max(P.at(0, Label), 1e-300)));
  ValueId Out = push(std::move(Val), {});
  Nodes[Out].Backward = [this, Logits, Out, Label, P = std::move(P)] {
    double G = grad(Out).at(0, 0);
    Matrix &GL = gradRef(Logits);
    for (size_t C = 0; C < GL.cols(); ++C)
      GL.at(0, C) += G * (P.at(0, C) - (C == Label ? 1.0 : 0.0));
  };
  return Out;
}

void Tape::backward(ValueId Loss) {
  assert(value(Loss).size() == 1 && "backward needs a scalar loss");
  gradRef(Loss).flat(0) = 1.0;
  for (size_t I = Nodes.size(); I-- > 0;)
    if (Nodes[I].Backward)
      Nodes[I].Backward();
}
