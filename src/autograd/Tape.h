//===- autograd/Tape.h - Reverse-mode autodiff tape ------------*- C++ -*-===//
//
// Part of deept-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small tape-based reverse-mode automatic differentiation engine over
/// tensor::Matrix. It provides exactly the operations the Transformer
/// (and the feed-forward baseline) needs for training; the paper's
/// evaluation trains its networks with PyTorch, which this module stands
/// in for.
///
/// Usage: create a Tape per training step, feed parameters and inputs with
/// input(), build the forward computation with the op methods, call
/// backward() on the (scalar) loss, and read grad() of each parameter.
///
//===----------------------------------------------------------------------===//

#ifndef DEEPT_AUTOGRAD_TAPE_H
#define DEEPT_AUTOGRAD_TAPE_H

#include "tensor/Matrix.h"

#include <cstddef>
#include <functional>
#include <vector>

namespace deept {
namespace autograd {

using tensor::Matrix;

/// Index of a value on the tape.
using ValueId = int;

/// Reverse-mode autodiff tape. All op methods record a node whose backward
/// closure scatters the output gradient to its inputs.
class Tape {
public:
  /// Adds a leaf value. Gradients are accumulated for every node; leaves
  /// are simply nodes without a backward closure.
  ValueId input(Matrix Val);

  const Matrix &value(ValueId Id) const { return Nodes[Id].Val; }
  const Matrix &grad(ValueId Id) const { return Nodes[Id].Grad; }

  // Arithmetic.
  ValueId add(ValueId A, ValueId B);
  ValueId sub(ValueId A, ValueId B);
  ValueId scale(ValueId A, double S);
  ValueId hadamard(ValueId A, ValueId B);
  ValueId matmul(ValueId A, ValueId B);
  /// C = A * B^T.
  ValueId matmulTB(ValueId A, ValueId B);
  ValueId transpose(ValueId A);

  // Broadcasting (Bias/Gamma are 1 x C, Scale is N x 1).
  ValueId addRowBroadcast(ValueId A, ValueId Bias);
  ValueId mulRowBroadcast(ValueId A, ValueId Gamma);
  ValueId mulColBroadcast(ValueId A, ValueId Scale);

  // Nonlinearities.
  ValueId relu(ValueId A);
  ValueId tanhOp(ValueId A);
  ValueId recip(ValueId A);
  ValueId sqrtOp(ValueId A);
  ValueId rowSoftmax(ValueId A);

  // Structure.
  ValueId subRowMean(ValueId A);
  ValueId rowMeans(ValueId A);
  ValueId colSlice(ValueId A, size_t C0, size_t C1);
  ValueId rowSlice(ValueId A, size_t R0, size_t R1);
  ValueId concatCols(const std::vector<ValueId> &Parts);
  /// Gathers rows of A by index (embedding lookup); backward scatter-adds.
  ValueId gatherRows(ValueId A, std::vector<size_t> Rows);

  /// Scalar loss: -log softmax(Logits)[Label] for a 1 x K logits row.
  ValueId crossEntropyLogits(ValueId Logits, size_t Label);

  /// Runs the backward sweep from the scalar node \p Loss (seeds its
  /// gradient with 1 and accumulates into all ancestors).
  void backward(ValueId Loss);

  size_t size() const { return Nodes.size(); }

private:
  struct Node {
    Matrix Val;
    Matrix Grad;
    std::function<void()> Backward; // empty for leaves
  };
  std::vector<Node> Nodes;

  ValueId push(Matrix Val, std::function<void()> Backward);
  Matrix &gradRef(ValueId Id) { return Nodes[Id].Grad; }
};

} // namespace autograd
} // namespace deept

#endif // DEEPT_AUTOGRAD_TAPE_H
