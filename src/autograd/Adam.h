//===- autograd/Adam.h - Adam optimizer ------------------------*- C++ -*-===//
//
// Part of deept-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Adam optimizer (Kingma & Ba 2015) over a set of registered
/// parameter matrices; the training substrate for the Transformer and
/// feed-forward models.
///
//===----------------------------------------------------------------------===//

#ifndef DEEPT_AUTOGRAD_ADAM_H
#define DEEPT_AUTOGRAD_ADAM_H

#include "tensor/Matrix.h"

#include <vector>

namespace deept {
namespace autograd {

using tensor::Matrix;

struct AdamOptions {
  double LearningRate = 1e-3;
  double Beta1 = 0.9;
  double Beta2 = 0.999;
  double Epsilon = 1e-8;
  /// Gradients with a larger global l2 norm are rescaled to this value
  /// (0 disables clipping).
  double GradClipNorm = 1.0;
};

/// Adam over externally owned parameter matrices. Parameters are
/// registered once; each step takes the matching list of gradients.
class Adam {
public:
  explicit Adam(AdamOptions Opts = AdamOptions()) : Opts(Opts) {}

  /// Registers a parameter; returns its slot index.
  size_t registerParam(Matrix *Param);

  /// Applies one update. \p Grads must align with registration order.
  void step(const std::vector<Matrix> &Grads);

  size_t numParams() const { return Params.size(); }

private:
  AdamOptions Opts;
  std::vector<Matrix *> Params;
  std::vector<Matrix> FirstMoment;
  std::vector<Matrix> SecondMoment;
  long StepCount = 0;
};

} // namespace autograd
} // namespace deept

#endif // DEEPT_AUTOGRAD_ADAM_H
