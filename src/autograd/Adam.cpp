//===- autograd/Adam.cpp --------------------------------------*- C++ -*-===//

#include "autograd/Adam.h"

#include <cassert>
#include <cmath>

using namespace deept;
using namespace deept::autograd;

size_t Adam::registerParam(Matrix *Param) {
  Params.push_back(Param);
  FirstMoment.emplace_back(Param->rows(), Param->cols(), 0.0);
  SecondMoment.emplace_back(Param->rows(), Param->cols(), 0.0);
  return Params.size() - 1;
}

void Adam::step(const std::vector<Matrix> &Grads) {
  assert(Grads.size() == Params.size() && "gradient list mismatch");
  ++StepCount;

  double ClipScale = 1.0;
  if (Opts.GradClipNorm > 0.0) {
    double SumSq = 0.0;
    for (const Matrix &G : Grads)
      for (size_t I = 0; I < G.size(); ++I)
        SumSq += G.flat(I) * G.flat(I);
    double Norm = std::sqrt(SumSq);
    if (Norm > Opts.GradClipNorm)
      ClipScale = Opts.GradClipNorm / Norm;
  }

  double Bias1 = 1.0 - std::pow(Opts.Beta1, StepCount);
  double Bias2 = 1.0 - std::pow(Opts.Beta2, StepCount);
  for (size_t P = 0; P < Params.size(); ++P) {
    Matrix &W = *Params[P];
    Matrix &M = FirstMoment[P];
    Matrix &V = SecondMoment[P];
    const Matrix &G = Grads[P];
    assert(G.rows() == W.rows() && G.cols() == W.cols() &&
           "gradient shape mismatch");
    for (size_t I = 0; I < W.size(); ++I) {
      double Gi = G.flat(I) * ClipScale;
      M.flat(I) = Opts.Beta1 * M.flat(I) + (1.0 - Opts.Beta1) * Gi;
      V.flat(I) = Opts.Beta2 * V.flat(I) + (1.0 - Opts.Beta2) * Gi * Gi;
      double MHat = M.flat(I) / Bias1;
      double VHat = V.flat(I) / Bias2;
      W.flat(I) -= Opts.LearningRate * MHat / (std::sqrt(VHat) + Opts.Epsilon);
    }
  }
}
