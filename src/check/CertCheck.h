//===- check/CertCheck.h - Independent certificate replay ------*- C++ -*-===//
//
// Part of deept-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The replay half of the proof-certificate layer (the producer lives in
/// verify/Certificate.h; the two deliberately share only the support
/// layer -- JSON, CRC, the error taxonomy -- and not one line of tensor,
/// zonotope or verifier code). checkCertificate() parses one certificate
/// envelope and validates, in order:
///
///  1. envelope shape and payload CRC-32            -> StoreCorrupt,
///  2. payload schema, lengths, finiteness          -> StoreCorrupt
///     (recorded non-finite values -> UnsoundAbstraction),
///  3. symbol bookkeeping and checkpoint site order -> UnsoundAbstraction,
///  4. every recorded interval concretization lo/hi against the
///     directed-rounding replay of c -/+ (a + b)    -> UnsoundAbstraction,
///  5. input box enclosed by the first checkpoint   -> UnsoundAbstraction,
///  6. the margin derivation: dual norms replayed from the raw alpha/beta
///     coefficient vectors, the lo/hi chain, and the verdict
///     certified <=> lo > 0                         -> UnsoundAbstraction.
///
/// What the replay proves: every DERIVATION the producer recorded (norm
/// accumulations, interval concretizations, the final margin bound and
/// verdict) is consistent under directed-rounding interval arithmetic --
/// i.e. the verdict follows from the recorded coefficients. What it does
/// NOT prove: that the recorded coefficients are a sound abstraction of
/// the network (that is the producer's propagation, which the checker by
/// design does not re-run).
///
/// f32 certificates: the producer's single-precision norms are soundly
/// lifted upward, so the replay drops the upper-side norm check (na <=
/// up(||alpha||_q)) for precision "f32" and keeps every lower-side and
/// chain check.
///
//===----------------------------------------------------------------------===//

#ifndef DEEPT_CHECK_CERTCHECK_H
#define DEEPT_CHECK_CERTCHECK_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace deept {
namespace check {

/// What a successfully replayed certificate claimed; also the input of
/// semanticDigest().
struct CertificateSummary {
  std::string Query, Kind, Method, Norm, Precision, Isa;
  double P = 2.0;
  size_t Threads = 0;
  uint32_t PayloadCrc = 0;
  size_t TrueClass = 0;
  size_t ModelLayers = 0, ModelEmbed = 0, ModelHeads = 0;
  size_t InputRows = 0, InputCols = 0;
  struct Checkpoint {
    std::string Site;
    int Layer = -1, Head = -1;
    size_t Rows = 0, Cols = 0, PhiSyms = 0, EpsSyms = 0;
  };
  std::vector<Checkpoint> Checkpoints;
  double MarginLo = 0.0;
  bool Certified = false;
};

/// Replays one certificate line. Returns the summary on success; throws
/// support::Error with code StoreCorrupt (malformed artifact) or
/// UnsoundAbstraction (the recorded derivation does not replay) on any
/// violation.
CertificateSummary checkCertificate(std::string_view Line);

/// An ISA-invariant one-line digest of a replayed certificate: query,
/// configuration, bookkeeping (sites, shapes, symbol counts) and the
/// verdict -- everything except the floating-point payload values and the
/// CRC, which are bit-exact only within one ISA (reductions are
/// lane-ordered). Certificates for the same query produced at different
/// ISAs must digest identically; that is CI's cross-ISA soundness check.
std::string semanticDigest(const CertificateSummary &S);

} // namespace check
} // namespace deept

#endif // DEEPT_CHECK_CERTCHECK_H
