//===- check/Interval.h - Directed-rounding interval core ------*- C++ -*-===//
//
// Part of deept-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The arithmetic core of the independent certificate checker
/// (tools/deept_check). Deliberately tiny and self-contained: directed
/// additions / subtractions / multiplications / square roots plus the two
/// dual-norm reductions the certificates record. It shares NO code with
/// the tensor / zonotope / verify layers -- the whole point of the checker
/// is that a bug in the producer's kernels cannot also hide in the
/// replay.
///
/// Each scalar op returns a value rounded toward -inf (Down) or +inf (Up)
/// relative to the exact result. The implementation uses fesetround()
/// with volatile operands in a TU compiled with -frounding-math; a
/// runtime self-test (directedRoundingHonored) detects platforms where
/// the mode switch is not honored and falls back to a 1-ULP
/// nextafter-widening of the round-to-nearest result, which is sound for
/// every correctly-rounded primitive (+, -, *, sqrt).
///
/// Soundness argument used by the replay: directed per-step accumulation
/// brackets ANY faithful round-to-nearest accumulation of the same terms
/// in the same order, including FMA-contracted ones, by monotonicity of
/// the rounding functions (down(x) <= nearest(x) <= up(x) and all three
/// are monotone). So the producer's recorded values -- computed with
/// round-to-nearest kernels at any ISA -- always fall inside the directed
/// enclosure replayed from the same inputs, while a tampered value one
/// ULP outside it is rejected.
///
//===----------------------------------------------------------------------===//

#ifndef DEEPT_CHECK_INTERVAL_H
#define DEEPT_CHECK_INTERVAL_H

#include <cstddef>
#include <vector>

namespace deept {
namespace check {

/// A closed interval [Lo, Hi].
struct Interval {
  double Lo = 0.0;
  double Hi = 0.0;

  bool contains(double X) const { return Lo <= X && X <= Hi; }
};

/// True when fesetround(FE_DOWNWARD/FE_UPWARD) demonstrably affects
/// double arithmetic in this process (cached self-test). When false the
/// directed ops below widen round-to-nearest results by one ULP instead,
/// which is sound but one ULP looser per operation.
bool directedRoundingHonored();

double addDown(double A, double B);
double addUp(double A, double B);
double subDown(double A, double B);
double subUp(double A, double B);
double mulDown(double A, double B);
double mulUp(double A, double B);
double sqrtDown(double A);
double sqrtUp(double A);

/// The directed enclosure of c - (a + b) -- the lower-bound expression of
/// Theorem 1 in exactly the association the producer uses.
Interval loEnclosure(double C, double A, double B);
/// The directed enclosure of c + (a + b).
Interval hiEnclosure(double C, double A, double B);

/// Directed enclosure of the dual norm ||V||_q accumulated in ascending
/// index order (the producer's kernel order). \p Q uses the repo's
/// exponent convention: 1 (sum of absolutes), 2 (Euclidean), or -1 for
/// q = infinity (max absolute, exact). Other values are not produced by
/// any certificate and are rejected upstream.
Interval dualNormEnclosure(double Q, const std::vector<double> &V);

} // namespace check
} // namespace deept

#endif // DEEPT_CHECK_INTERVAL_H
