//===- check/CertCheck.cpp ------------------------------------*- C++ -*-===//

#include "check/CertCheck.h"

#include "check/Interval.h"
#include "support/Crc.h"
#include "support/Error.h"
#include "support/Json.h"

#include <cmath>
#include <limits>

using namespace deept;
using namespace deept::check;
using support::Error;
using support::ErrorCode;
using support::JsonValue;

namespace {

[[noreturn]] void corrupt(const std::string &Why) {
  throw Error(ErrorCode::StoreCorrupt, "check.certificate", Why);
}

[[noreturn]] void unsound(const std::string &Why) {
  throw Error(ErrorCode::UnsoundAbstraction, "check.replay", Why);
}

const JsonValue &member(const JsonValue &Obj, const char *Key) {
  const JsonValue *V = Obj.find(Key);
  if (!V)
    corrupt(std::string("missing member '") + Key + "'");
  return *V;
}

std::string getString(const JsonValue &Obj, const char *Key) {
  const JsonValue &V = member(Obj, Key);
  if (V.K != JsonValue::Kind::String)
    corrupt(std::string("member '") + Key + "' is not a string");
  return V.StringVal;
}

double getNumber(const JsonValue &Obj, const char *Key) {
  const JsonValue &V = member(Obj, Key);
  // The producer serializes non-finite doubles as null (JSON has no
  // Inf/NaN tokens); a null where a derivation value belongs means the
  // producer recorded a non-finite value, which is a soundness failure,
  // not a malformed artifact.
  if (V.K == JsonValue::Kind::Null)
    unsound(std::string("non-finite recorded value at '") + Key + "'");
  if (V.K != JsonValue::Kind::Number)
    corrupt(std::string("member '") + Key + "' is not a number");
  return V.NumberVal;
}

size_t getCount(const JsonValue &Obj, const char *Key) {
  double D = getNumber(Obj, Key);
  if (D < 0 || D != std::floor(D))
    corrupt(std::string("member '") + Key + "' is not a count");
  return static_cast<size_t>(D);
}

int getInt(const JsonValue &Obj, const char *Key) {
  double D = getNumber(Obj, Key);
  if (D != std::floor(D))
    corrupt(std::string("member '") + Key + "' is not an integer");
  return static_cast<int>(D);
}

std::vector<double> getNumberArray(const JsonValue &Obj, const char *Key,
                                   size_t ExpectLen) {
  const JsonValue &V = member(Obj, Key);
  if (V.K != JsonValue::Kind::Array)
    corrupt(std::string("member '") + Key + "' is not an array");
  if (V.Items.size() != ExpectLen)
    unsound(std::string("array '") + Key + "' has " +
            std::to_string(V.Items.size()) + " entries, bookkeeping says " +
            std::to_string(ExpectLen));
  std::vector<double> Out;
  Out.reserve(V.Items.size());
  for (const JsonValue &E : V.Items) {
    if (E.K == JsonValue::Kind::Null)
      unsound(std::string("non-finite recorded value in array '") + Key +
              "'");
    if (E.K != JsonValue::Kind::Number)
      corrupt(std::string("array '") + Key + "' has a non-number entry");
    Out.push_back(E.NumberVal);
  }
  return Out;
}

/// N ULPs outward; the input-enclosure comparison allows the first
/// checkpoint this much slack (noise reduction re-derives the bounds with
/// the same kernels, so they can only be equal or wider, but we do not
/// want the check to hinge on that being bit-exact forever).
double ulpsDown(double X, int N) {
  for (int I = 0; I < N; ++I)
    X = std::nextafter(X, -std::numeric_limits<double>::infinity());
  return X;
}

double ulpsUp(double X, int N) {
  for (int I = 0; I < N; ++I)
    X = std::nextafter(X, std::numeric_limits<double>::infinity());
  return X;
}

const char *const DeepTSites[] = {"verify.layer_input",
                                  "verify.attention.scores",
                                  "verify.attention.output",
                                  "verify.layer_output", "verify.logits"};
const char *const FfnSites[] = {"ffn.input", "ffn.layer_output"};

bool knownSite(const std::string &Kind, const std::string &Site) {
  if (Kind == "deept") {
    for (const char *S : DeepTSites)
      if (Site == S)
        return true;
    return false;
  }
  for (const char *S : FfnSites)
    if (Site == S)
      return true;
  return false;
}

} // namespace

CertificateSummary check::checkCertificate(std::string_view Line) {
  // Trim trailing newline / whitespace (JSONL readers hand us raw lines).
  while (!Line.empty() &&
         (Line.back() == '\n' || Line.back() == '\r' || Line.back() == ' '))
    Line.remove_suffix(1);
  if (Line.empty())
    corrupt("empty certificate line");

  JsonValue Doc;
  std::string ParseErr;
  if (!support::parseJson(Line, Doc, &ParseErr))
    corrupt("certificate is not valid JSON: " + ParseErr);
  if (!Doc.isObject())
    corrupt("certificate is not a JSON object");

  CertificateSummary S;

  // Envelope.
  if (getNumber(Doc, "deept_cert") != 1.0)
    corrupt("unsupported certificate version");
  S.Isa = getString(Doc, "isa");
  S.Threads = getCount(Doc, "threads");
  double CrcField = getNumber(Doc, "crc32");
  if (CrcField < 0 || CrcField > 4294967295.0 ||
      CrcField != std::floor(CrcField))
    corrupt("crc32 field is not a 32-bit value");
  S.PayloadCrc = static_cast<uint32_t>(CrcField);
  const JsonValue &Payload = member(Doc, "payload");
  if (!Payload.isObject())
    corrupt("payload is not an object");

  // CRC over the raw payload bytes. The producer emits the payload as
  // the envelope's last member with nothing after it but the closing
  // brace, so the byte range runs from the first "payload": marker to
  // the character before the final '}'.
  static const std::string_view Marker = "\"payload\":";
  size_t Pos = Line.find(Marker);
  if (Pos == std::string_view::npos || Line.back() != '}')
    corrupt("payload bytes not locatable for CRC");
  std::string_view Raw = Line.substr(Pos + Marker.size(),
                                     Line.size() - 1 - (Pos + Marker.size()));
  if (Raw.empty() || Raw.front() != '{' || Raw.back() != '}')
    corrupt("payload bytes not locatable for CRC");
  uint32_t Actual = support::crc32(Raw.data(), Raw.size());
  if (Actual != S.PayloadCrc)
    corrupt("payload CRC mismatch (stored " + std::to_string(S.PayloadCrc) +
            ", computed " + std::to_string(Actual) + ")");

  // Payload schema and metadata.
  if (getNumber(Payload, "v") != 1.0)
    corrupt("unsupported payload version");
  S.Query = getString(Payload, "query");
  S.Kind = getString(Payload, "kind");
  if (S.Kind != "deept" && S.Kind != "ffn")
    corrupt("unknown certificate kind '" + S.Kind + "'");
  S.Method = getString(Payload, "method");
  S.Norm = getString(Payload, "norm");
  S.Precision = getString(Payload, "precision");
  if (S.Precision != "f64" && S.Precision != "f32")
    corrupt("unknown precision '" + S.Precision + "'");
  S.P = getNumber(Payload, "p");
  S.TrueClass = getCount(Payload, "true_class");
  if (S.TrueClass > 1)
    corrupt("true_class out of range");
  const JsonValue &Model = member(Payload, "model");
  if (!Model.isObject())
    corrupt("model is not an object");
  S.ModelLayers = getCount(Model, "layers");
  S.ModelEmbed = getCount(Model, "embed");
  S.ModelHeads = getCount(Model, "heads");

  // Input region.
  const JsonValue &Input = member(Payload, "input");
  if (!Input.isObject())
    corrupt("input is not an object");
  S.InputRows = getCount(Input, "rows");
  S.InputCols = getCount(Input, "cols");
  size_t InVars = S.InputRows * S.InputCols;
  if (InVars == 0)
    unsound("empty input region");
  std::vector<double> InLo = getNumberArray(Input, "lo", InVars);
  std::vector<double> InHi = getNumberArray(Input, "hi", InVars);
  for (size_t V = 0; V < InVars; ++V)
    if (InLo[V] > InHi[V])
      unsound("input box has lo > hi");

  // Checkpoints: bookkeeping, site order, and the interval replay.
  const JsonValue &Cps = member(Payload, "checkpoints");
  if (!Cps.isArray())
    corrupt("checkpoints is not an array");
  if (Cps.Items.empty())
    unsound("certificate has no checkpoints");
  std::vector<double> FirstLo, FirstHi;
  for (size_t I = 0; I < Cps.Items.size(); ++I) {
    const JsonValue &C = Cps.Items[I];
    if (!C.isObject())
      corrupt("checkpoint is not an object");
    CertificateSummary::Checkpoint Cp;
    Cp.Site = getString(C, "site");
    if (!knownSite(S.Kind, Cp.Site))
      unsound("unknown checkpoint site '" + Cp.Site + "' for kind '" +
              S.Kind + "'");
    Cp.Layer = getInt(C, "layer");
    Cp.Head = getInt(C, "head");
    Cp.Rows = getCount(C, "rows");
    Cp.Cols = getCount(C, "cols");
    Cp.PhiSyms = getCount(C, "phi_syms");
    Cp.EpsSyms = getCount(C, "eps_syms");
    size_t N = Cp.Rows * Cp.Cols;
    if (N == 0)
      unsound("checkpoint with zero variables");
    std::vector<double> Center = getNumberArray(C, "center", N);
    std::vector<double> A = getNumberArray(C, "phi_norm", N);
    std::vector<double> B = getNumberArray(C, "eps_norm", N);
    std::vector<double> Lo = getNumberArray(C, "lo", N);
    std::vector<double> Hi = getNumberArray(C, "hi", N);
    for (size_t V = 0; V < N; ++V) {
      if (A[V] < 0.0 || B[V] < 0.0)
        unsound("negative dual norm at checkpoint " + Cp.Site);
      if (!loEnclosure(Center[V], A[V], B[V]).contains(Lo[V]))
        unsound("checkpoint " + Cp.Site + " lower bound does not replay: " +
                "var " + std::to_string(V));
      if (!hiEnclosure(Center[V], A[V], B[V]).contains(Hi[V]))
        unsound("checkpoint " + Cp.Site + " upper bound does not replay: " +
                "var " + std::to_string(V));
    }
    if (I == 0) {
      FirstLo = std::move(Lo);
      FirstHi = std::move(Hi);
    }
    S.Checkpoints.push_back(std::move(Cp));
  }
  const char *WantFirst = S.Kind == "deept" ? "verify.layer_input"
                                            : "ffn.input";
  const char *WantLast = S.Kind == "deept" ? "verify.logits"
                                           : "ffn.layer_output";
  if (S.Checkpoints.front().Site != WantFirst)
    unsound("first checkpoint is '" + S.Checkpoints.front().Site +
            "', expected '" + WantFirst + "'");
  if (S.Checkpoints.back().Site != WantLast)
    unsound("last checkpoint is '" + S.Checkpoints.back().Site +
            "', expected '" + WantLast + "'");

  // The input region must be enclosed by the first checkpoint (noise
  // reduction and the identity re-concretization can only widen bounds;
  // allow 4 ULPs of slack so the check does not depend on that being
  // bit-exact).
  const CertificateSummary::Checkpoint &Cp0 = S.Checkpoints.front();
  if (Cp0.Rows != S.InputRows || Cp0.Cols != S.InputCols)
    unsound("first checkpoint shape does not match the input region");
  for (size_t V = 0; V < InVars; ++V) {
    if (InLo[V] < ulpsDown(FirstLo[V], 4) || InHi[V] > ulpsUp(FirstHi[V], 4))
      unsound("input box not enclosed by the first checkpoint at var " +
              std::to_string(V));
  }

  // Margin replay.
  const JsonValue &M = member(Payload, "margin");
  if (!M.isObject())
    corrupt("margin is not an object");
  if (getCount(M, "true_class") != S.TrueClass)
    unsound("margin true_class disagrees with the query true_class");
  double Q = getNumber(M, "q");
  if (Q != 1.0 && Q != 2.0 && Q != -1.0)
    corrupt("unsupported dual exponent q");
  double Center = getNumber(M, "center");
  const CertificateSummary::Checkpoint &Logits = S.Checkpoints.back();
  std::vector<double> Alpha = getNumberArray(M, "alpha", Logits.PhiSyms);
  std::vector<double> Beta = getNumberArray(M, "beta", Logits.EpsSyms);
  double Na = getNumber(M, "alpha_norm");
  double Nb = getNumber(M, "beta_norm");
  double Lo = getNumber(M, "lo");
  double Hi = getNumber(M, "hi");
  const JsonValue &CertV = member(M, "certified");
  if (CertV.K != JsonValue::Kind::Bool)
    corrupt("margin certified is not a boolean");
  if (Na < 0.0 || Nb < 0.0)
    unsound("negative margin dual norm");
  Interval NA = dualNormEnclosure(Q, Alpha);
  Interval NB = dualNormEnclosure(1.0, Beta);
  if (Na < NA.Lo)
    unsound("recorded ||alpha||_q is below the replayed norm");
  if (Nb < NB.Lo)
    unsound("recorded ||beta||_1 is below the replayed norm");
  // f32 runs record the soundly lifted (larger) norms; only f64 pins the
  // upper side to the directed replay of the same accumulation.
  if (S.Precision == "f64") {
    if (Na > NA.Hi)
      unsound("recorded ||alpha||_q is above the replayed norm");
    if (Nb > NB.Hi)
      unsound("recorded ||beta||_1 is above the replayed norm");
  }
  if (!loEnclosure(Center, Na, Nb).contains(Lo))
    unsound("margin lower bound does not replay from the recorded norms");
  if (!hiEnclosure(Center, Na, Nb).contains(Hi))
    unsound("margin upper bound does not replay from the recorded norms");
  if (CertV.BoolVal != (Lo > 0.0))
    unsound("certified verdict disagrees with the margin lower bound");
  S.MarginLo = Lo;
  S.Certified = CertV.BoolVal;
  return S;
}

std::string check::semanticDigest(const CertificateSummary &S) {
  std::string Out = "deept-cert-digest v1";
  Out += " query=" + support::jsonEscape(S.Query);
  Out += " kind=" + S.Kind;
  Out += " method=" + S.Method;
  Out += " norm=" + S.Norm;
  Out += " precision=" + S.Precision;
  Out += " p=" + support::jsonNumber(S.P);
  Out += " true_class=" + std::to_string(S.TrueClass);
  Out += " model=" + std::to_string(S.ModelLayers) + "/" +
         std::to_string(S.ModelEmbed) + "/" + std::to_string(S.ModelHeads);
  Out += " input=" + std::to_string(S.InputRows) + "x" +
         std::to_string(S.InputCols);
  Out += " checkpoints=";
  for (size_t I = 0; I < S.Checkpoints.size(); ++I) {
    const CertificateSummary::Checkpoint &C = S.Checkpoints[I];
    if (I)
      Out += ",";
    Out += C.Site + ":" + std::to_string(C.Layer) + ":" +
           std::to_string(C.Head) + ":" + std::to_string(C.Rows) + "x" +
           std::to_string(C.Cols) + ":" + std::to_string(C.PhiSyms) + "+" +
           std::to_string(C.EpsSyms);
  }
  Out += " certified=";
  Out += S.Certified ? "1" : "0";
  return Out;
}
