//===- check/Interval.cpp -------------------------------------*- C++ -*-===//
//
// This TU is compiled with -frounding-math (see src/CMakeLists.txt) so
// the compiler must not constant-fold or reorder across the fesetround()
// calls; the volatile operands are belt and braces on top of that.
//
//===----------------------------------------------------------------------===//

#include "check/Interval.h"

#include <cfenv>
#include <cmath>
#include <limits>

using namespace deept;
using namespace deept::check;

namespace {

constexpr double Inf = std::numeric_limits<double>::infinity();

/// RAII rounding-mode switch restoring the previous mode.
struct RoundMode {
  int Old;
  explicit RoundMode(int M) : Old(fegetround()) { fesetround(M); }
  ~RoundMode() { fesetround(Old); }
};

/// One ULP toward -inf / +inf; sound fallback widening for any
/// correctly-rounded primitive (the RN result is within one ULP of the
/// exact value, so its ULP-neighbour on the far side brackets it).
double nudgeDown(double X) { return std::nextafter(X, -Inf); }
double nudgeUp(double X) { return std::nextafter(X, Inf); }

} // namespace

bool check::directedRoundingHonored() {
  static const bool Honored = [] {
    volatile double One = 1.0;
    volatile double Tiny = 0x1p-60;
    double Down, Up;
    {
      RoundMode R(FE_DOWNWARD);
      volatile double S = One + Tiny;
      Down = S;
    }
    {
      RoundMode R(FE_UPWARD);
      volatile double S = One + Tiny;
      Up = S;
    }
    return Down == 1.0 && Up > 1.0;
  }();
  return Honored;
}

#define DEEPT_DIRECTED_BINOP(NAME, OP, MODE, NUDGE)                       \
  double check::NAME(double A, double B) {                                \
    if (directedRoundingHonored()) {                                      \
      RoundMode R(MODE);                                                  \
      volatile double X = A, Y = B;                                       \
      volatile double S = X OP Y;                                         \
      return S;                                                           \
    }                                                                     \
    return NUDGE(A OP B);                                                 \
  }

DEEPT_DIRECTED_BINOP(addDown, +, FE_DOWNWARD, nudgeDown)
DEEPT_DIRECTED_BINOP(addUp, +, FE_UPWARD, nudgeUp)
DEEPT_DIRECTED_BINOP(subDown, -, FE_DOWNWARD, nudgeDown)
DEEPT_DIRECTED_BINOP(subUp, -, FE_UPWARD, nudgeUp)
DEEPT_DIRECTED_BINOP(mulDown, *, FE_DOWNWARD, nudgeDown)
DEEPT_DIRECTED_BINOP(mulUp, *, FE_UPWARD, nudgeUp)

#undef DEEPT_DIRECTED_BINOP

double check::sqrtDown(double A) {
  if (directedRoundingHonored()) {
    RoundMode R(FE_DOWNWARD);
    volatile double X = A;
    volatile double S = std::sqrt(X);
    return S;
  }
  return nudgeDown(std::sqrt(A));
}

double check::sqrtUp(double A) {
  if (directedRoundingHonored()) {
    RoundMode R(FE_UPWARD);
    volatile double X = A;
    volatile double S = std::sqrt(X);
    return S;
  }
  return nudgeUp(std::sqrt(A));
}

Interval check::loEnclosure(double C, double A, double B) {
  // c - (a + b): the inner sum down-rounds for the upper bound of the
  // subtraction and up-rounds for the lower bound.
  return {subDown(C, addUp(A, B)), subUp(C, addDown(A, B))};
}

Interval check::hiEnclosure(double C, double A, double B) {
  return {addDown(C, addDown(A, B)), addUp(C, addUp(A, B))};
}

Interval check::dualNormEnclosure(double Q, const std::vector<double> &V) {
  if (Q == -1.0) {
    // q = infinity: max |v|, exact in floating point.
    double M = 0.0;
    for (double X : V)
      M = std::fabs(X) > M ? std::fabs(X) : M;
    return {M, M};
  }
  if (Q == 2.0) {
    double Lo = 0.0, Hi = 0.0;
    for (double X : V) {
      Lo = addDown(Lo, mulDown(X, X));
      Hi = addUp(Hi, mulUp(X, X));
    }
    return {sqrtDown(Lo), sqrtUp(Hi)};
  }
  // q = 1: sum of absolutes (|v| is exact).
  double Lo = 0.0, Hi = 0.0;
  for (double X : V) {
    Lo = addDown(Lo, std::fabs(X));
    Hi = addUp(Hi, std::fabs(X));
  }
  return {Lo, Hi};
}
