//===- crown/CrownVerifier.cpp --------------------------------*- C++ -*-===//

#include "crown/CrownVerifier.h"

#include "support/Metrics.h"
#include "support/Trace.h"

#include <algorithm>
#include <cmath>

using namespace deept;
using namespace deept::crown;
using tensor::Matrix;

CrownOutcome CrownVerifier::run(BuiltGraph &&Built) const {
  support::TraceSpan RunSpan("crown.certify");
  support::Metrics &MR = support::Metrics::global();
  static support::Counter &BackwardCalls =
      MR.counter("crown.backward.calls");
  static support::Counter &BafCalls = MR.counter("crown.baf.calls");
  (Config.Mode == CrownMode::Backward ? BackwardCalls : BafCalls).add(1);

  // Intermediate bounds: full backsubstitution in Backward mode, the
  // one-pass forward linear-bound propagation in BaF mode (Shi et al.'s
  // backward & forward split). The output margin always gets a full
  // backsubstitution; BaF's precision loss on deep networks comes from
  // the increasingly loose forward bounds feeding the relaxations.
  CrownOutcome Outcome;
  size_t Peak = 0, Total = 0;
  {
    DEEPT_TRACE_SPAN("crown.intermediate_bounds");
    if (Config.Mode == CrownMode::Backward) {
      BackwardOptions Opts;
      Opts.MaxLevelsBack = -1;
      Opts.MemoryBudgetBytes = Config.MemoryBudgetBytes;
      if (!computeAllBounds(Built.G, Opts, &Peak, &Total)) {
        Outcome.OutOfMemory = true;
        Outcome.PeakBytes = Peak;
        Outcome.TotalBytes = Total;
        MR.counter("crown.oom.count").add(1);
        return Outcome;
      }
    } else {
      ForwardOptions Opts;
      Opts.MemoryBudgetBytes = Config.MemoryBudgetBytes;
      if (!computeForwardBounds(Built.G, Opts, &Peak, &Total)) {
        Outcome.OutOfMemory = true;
        Outcome.PeakBytes = Peak;
        Outcome.TotalBytes = Total;
        MR.counter("crown.oom.count").add(1);
        return Outcome;
      }
    }
  }
  BackwardResult R;
  {
    DEEPT_TRACE_SPAN("crown.margin_backsub");
    BackwardOptions MarginOpts;
    MarginOpts.MaxLevelsBack = -1;
    MarginOpts.MemoryBudgetBytes = Config.MemoryBudgetBytes;
    R = computeBounds(Built.G, Built.Margin, MarginOpts);
  }
  Outcome.PeakBytes = std::max(Peak, R.PeakBytes);
  Outcome.TotalBytes = Total + R.TotalBytes;
  MR.gauge("crown.peak_bytes")
      .recordMax(static_cast<double>(Outcome.PeakBytes));
  if (R.MemoryExceeded ||
      (Config.MemoryBudgetBytes > 0 &&
       Outcome.TotalBytes > Config.MemoryBudgetBytes)) {
    Outcome.OutOfMemory = true;
    MR.counter("crown.oom.count").add(1);
    return Outcome;
  }
  Outcome.MarginLowerBound = R.Lo.at(0, 0);
  return Outcome;
}

CrownOutcome CrownVerifier::certifyMarginLpBall(
    const std::vector<size_t> &Tokens, size_t Word, double P, double Radius,
    size_t TrueClass) const {
  InputSpec Spec = lpBallSpec(Model, Tokens, Word, P, Radius);
  return run(buildTransformerGraph(Model, Tokens.size(), std::move(Spec),
                                   TrueClass));
}

CrownOutcome CrownVerifier::certifyMarginSynonymBox(
    const data::SyntheticCorpus &Corpus, const data::Sentence &S,
    size_t TrueClass) const {
  Matrix X = Model.embed(S.Tokens);
  Matrix Lo = X, Hi = X;
  for (size_t I = 0; I < S.Tokens.size(); ++I) {
    for (size_t Syn : Corpus.synonymsOf(S.Tokens[I])) {
      for (size_t C = 0; C < X.cols(); ++C) {
        double V = Corpus.embeddings().at(Syn, C) + Model.Positional.at(I, C);
        Lo.at(I, C) = std::min(Lo.at(I, C), V);
        Hi.at(I, C) = std::max(Hi.at(I, C), V);
      }
    }
  }
  return run(buildTransformerGraph(Model, S.Tokens.size(), boxSpec(Lo, Hi),
                                   TrueClass));
}
