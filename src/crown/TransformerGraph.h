//===- crown/TransformerGraph.h - Transformer -> bound graph ---*- C++ -*-===//
//
// Part of deept-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lowers a TransformerModel applied to a concrete sentence into the
/// crown::Graph representation. The whole sequence activation is one node
/// of dimension N*E (row-major); self-attention's bilinear pieces are
/// expressed with broadcast Affine nodes feeding Mul nodes; softmax is the
/// naive exp / sum / reciprocal / multiplication composition the CROWN
/// baselines use (Section 5.4 -- the stable rewrite is DeepT's edge).
///
//===----------------------------------------------------------------------===//

#ifndef DEEPT_CROWN_TRANSFORMERGRAPH_H
#define DEEPT_CROWN_TRANSFORMERGRAPH_H

#include "crown/Graph.h"
#include "nn/Transformer.h"

namespace deept {
namespace crown {

struct BuiltGraph {
  Graph G;
  int Logits = -1; // 1 x 2 node
  int Margin = -1; // 1 x 1 node: logits[True] - logits[1 - True]
};

/// Builds the graph for a sentence whose input embedding is perturbed per
/// \p Spec (center must be the flattened N x E embedding matrix).
BuiltGraph buildTransformerGraph(const nn::TransformerModel &Model,
                                 size_t SeqLen, InputSpec Spec,
                                 size_t TrueClass);

/// T1 input spec: lp ball of radius \p Radius on word \p Word.
InputSpec lpBallSpec(const nn::TransformerModel &Model,
                     const std::vector<size_t> &Tokens, size_t Word,
                     double P, double Radius);

/// T2 input spec: per-dimension box over synonym embeddings.
InputSpec boxSpec(const tensor::Matrix &Lo, const tensor::Matrix &Hi);

} // namespace crown
} // namespace deept

#endif // DEEPT_CROWN_TRANSFORMERGRAPH_H
