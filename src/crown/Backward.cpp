//===- crown/Backward.cpp -------------------------------------*- C++ -*-===//

#include "crown/Backward.h"

#include "crown/Relaxations.h"
#include "tensor/Matrix.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <map>

using namespace deept;
using namespace deept::crown;
using tensor::dualExponent;

namespace {

/// Accumulated linear bounds of the target in terms of one graph node:
///   target >= AL * node^T + (bias terms collected globally), and
///   target <= AU * node^T + ...
struct Accumulator {
  Matrix AL; // TargetDim x NodeDim
  Matrix AU;
};

size_t accumulatorBytes(const Accumulator &A) {
  return (A.AL.size() + A.AU.size()) * sizeof(double);
}

/// Adds Src into Dst (allocating on first touch).
void addInto(Matrix &Dst, const Matrix &Src) {
  if (Dst.empty() && Dst.rows() == 0)
    Dst = Src;
  else
    Dst += Src;
}

/// Concretizes coefficients against per-element interval bounds:
/// lower += sum_j min(A[r][j] * Lo_j, A[r][j] * Hi_j), mirrored above.
void concretizeInterval(const Matrix &AL, const Matrix &AU, const Matrix &Lo,
                        const Matrix &Hi, Matrix &BiasL, Matrix &BiasU) {
  for (size_t R = 0; R < AL.rows(); ++R) {
    double SumL = 0.0, SumU = 0.0;
    for (size_t J = 0; J < AL.cols(); ++J) {
      double L = AL.at(R, J);
      SumL += L > 0 ? L * Lo.flat(J) : L * Hi.flat(J);
      double U = AU.at(R, J);
      SumU += U > 0 ? U * Hi.flat(J) : U * Lo.flat(J);
    }
    BiasL.at(R, 0) += SumL;
    BiasU.at(R, 0) += SumU;
  }
}

/// Concretizes coefficients at the input node with the perturbation's
/// dual norm (Lemma 1): A x = A x0 +- eps ||A_masked||_q per row, or the
/// weighted l1 form for per-dimension boxes.
void concretizeInput(const Matrix &AL, const Matrix &AU,
                     const InputSpec &Spec, Matrix &BiasL, Matrix &BiasU) {
  double Q = dualExponent(Spec.P);
  for (size_t R = 0; R < AL.rows(); ++R) {
    double CenterL = 0.0, CenterU = 0.0;
    for (size_t J = 0; J < AL.cols(); ++J) {
      CenterL += AL.at(R, J) * Spec.Center.flat(J);
      CenterU += AU.at(R, J) * Spec.Center.flat(J);
    }
    auto DualTerm = [&](const Matrix &A) {
      if (Spec.P == Matrix::InfNorm) {
        // Per-dimension box: weighted l1.
        double S = 0.0;
        for (size_t J = 0; J < A.cols(); ++J)
          S += std::fabs(A.at(R, J)) * Spec.Radius.flat(J);
        return S;
      }
      // Uniform radius Eps on masked dims: Eps * ||A_masked||_q. The
      // radius vector holds Eps on masked dims and 0 elsewhere.
      double Eps = 0.0;
      double Acc = 0.0;
      for (size_t J = 0; J < A.cols(); ++J) {
        double Rad = Spec.Radius.flat(J);
        if (Rad == 0.0)
          continue;
        Eps = Rad;
        double V = std::fabs(A.at(R, J));
        if (Q == 1.0)
          Acc += V;
        else if (Q == 2.0)
          Acc += V * V;
        else
          Acc = std::max(Acc, V);
      }
      if (Q == 2.0)
        Acc = std::sqrt(Acc);
      return Eps * Acc;
    };
    BiasL.at(R, 0) += CenterL - DualTerm(AL);
    BiasU.at(R, 0) += CenterU + DualTerm(AU);
  }
}

} // namespace

BackwardResult deept::crown::computeBounds(const Graph &G, int Target,
                                           const BackwardOptions &Opts) {
  const Node &TN = G.node(Target);
  size_t Dim = TN.Dim;
  BackwardResult Result;
  Matrix BiasL(Dim, 1, 0.0), BiasU(Dim, 1, 0.0);

  int StopLevel =
      Opts.MaxLevelsBack < 0 ? -1 : TN.Level - Opts.MaxLevelsBack;

  // Accumulators keyed by node id; processed in decreasing id order
  // (ids are topological).
  std::map<int, Accumulator, std::greater<int>> Acc;
  Accumulator Init;
  Init.AL = Matrix::identity(Dim);
  Init.AU = Matrix::identity(Dim);
  Acc.emplace(Target, std::move(Init));

  size_t LiveBytes = accumulatorBytes(Acc.begin()->second);
  Result.PeakBytes = LiveBytes;
  Result.TotalBytes = LiveBytes;
  auto TrackAlloc = [&](const Accumulator &A) {
    LiveBytes += accumulatorBytes(A);
    Result.TotalBytes += accumulatorBytes(A);
    Result.PeakBytes = std::max(Result.PeakBytes, LiveBytes);
    if (Opts.MemoryBudgetBytes > 0 &&
        std::max(Result.PeakBytes, Result.TotalBytes) >
            Opts.MemoryBudgetBytes)
      Result.MemoryExceeded = true;
  };

  while (!Acc.empty()) {
    int Id = Acc.begin()->first;
    Accumulator A = std::move(Acc.begin()->second);
    Acc.erase(Acc.begin());
    const Node &N = G.node(Id);

    if (Result.MemoryExceeded)
      return Result;

    // Early stopping (CROWN-BaF): concretize with stored intervals. Nodes
    // without materialised bounds (pure plumbing) are substituted through
    // until a bounded ancestor is reached.
    if (Id != Target && StopLevel >= 0 && N.Level <= StopLevel &&
        N.HasBounds) {
      concretizeInterval(A.AL, A.AU, N.Lo, N.Hi, BiasL, BiasU);
      LiveBytes -= accumulatorBytes(A);
      continue;
    }

    switch (N.Kind) {
    case NodeKind::Input:
      concretizeInput(A.AL, A.AU, G.inputSpec(), BiasL, BiasU);
      break;

    case NodeKind::Affine: {
      // y = x W + b: coefficients on x are A W^T (computed sparsely over
      // W's triplets); bias += A b^T.
      Accumulator Next;
      Next.AL = Matrix(Dim, N.InDim);
      Next.AU = Matrix(Dim, N.InDim);
      for (size_t R = 0; R < Dim; ++R) {
        const double *AL = A.AL.rowPtr(R);
        const double *AU = A.AU.rowPtr(R);
        double *NL = Next.AL.rowPtr(R);
        double *NU = Next.AU.rowPtr(R);
        for (const Triplet &T : N.W) {
          NL[T.In] += T.V * AL[T.Out];
          NU[T.In] += T.V * AU[T.Out];
        }
        double BL = 0.0, BU = 0.0;
        for (size_t J = 0; J < N.Dim; ++J) {
          BL += AL[J] * N.B.flat(J);
          BU += AU[J] * N.B.flat(J);
        }
        BiasL.at(R, 0) += BL;
        BiasU.at(R, 0) += BU;
      }
      TrackAlloc(Next);
      Accumulator &Slot = Acc[N.In0];
      addInto(Slot.AL, Next.AL);
      addInto(Slot.AU, Next.AU);
      break;
    }

    case NodeKind::AddTwo: {
      Accumulator &S0 = Acc[N.In0];
      addInto(S0.AL, A.AL);
      addInto(S0.AU, A.AU);
      TrackAlloc(A);
      Accumulator &S1 = Acc[N.In1];
      addInto(S1.AL, A.AL);
      addInto(S1.AU, A.AU);
      TrackAlloc(A);
      break;
    }

    case NodeKind::Unary: {
      const Node &In = G.node(N.In0);
      assert(In.HasBounds && "unary input lacks interval bounds");
      Accumulator Next;
      Next.AL = Matrix(Dim, N.Dim);
      Next.AU = Matrix(Dim, N.Dim);
      for (size_t J = 0; J < N.Dim; ++J) {
        TwoLines T = unaryLines(N.Fn, In.Lo.flat(J), In.Hi.flat(J));
        for (size_t R = 0; R < Dim; ++R) {
          double L = A.AL.at(R, J);
          if (L > 0) {
            Next.AL.at(R, J) += L * T.LowerSlope;
            BiasL.at(R, 0) += L * T.LowerOffset;
          } else if (L < 0) {
            Next.AL.at(R, J) += L * T.UpperSlope;
            BiasL.at(R, 0) += L * T.UpperOffset;
          }
          double U = A.AU.at(R, J);
          if (U > 0) {
            Next.AU.at(R, J) += U * T.UpperSlope;
            BiasU.at(R, 0) += U * T.UpperOffset;
          } else if (U < 0) {
            Next.AU.at(R, J) += U * T.LowerSlope;
            BiasU.at(R, 0) += U * T.LowerOffset;
          }
        }
      }
      TrackAlloc(Next);
      Accumulator &Slot = Acc[N.In0];
      addInto(Slot.AL, Next.AL);
      addInto(Slot.AU, Next.AU);
      break;
    }

    case NodeKind::Mul: {
      const Node &X = G.node(N.In0);
      const Node &Y = G.node(N.In1);
      assert(X.HasBounds && Y.HasBounds && "mul inputs lack bounds");
      Accumulator NX, NY;
      NX.AL = Matrix(Dim, N.Dim);
      NX.AU = Matrix(Dim, N.Dim);
      NY.AL = Matrix(Dim, N.Dim);
      NY.AU = Matrix(Dim, N.Dim);
      for (size_t J = 0; J < N.Dim; ++J) {
        MulLines M = mulLines(X.Lo.flat(J), X.Hi.flat(J), Y.Lo.flat(J),
                              Y.Hi.flat(J));
        for (size_t R = 0; R < Dim; ++R) {
          double L = A.AL.at(R, J);
          if (L > 0) {
            NX.AL.at(R, J) += L * M.ALo;
            NY.AL.at(R, J) += L * M.BLo;
            BiasL.at(R, 0) += L * M.CLo;
          } else if (L < 0) {
            NX.AL.at(R, J) += L * M.AUp;
            NY.AL.at(R, J) += L * M.BUp;
            BiasL.at(R, 0) += L * M.CUp;
          }
          double U = A.AU.at(R, J);
          if (U > 0) {
            NX.AU.at(R, J) += U * M.AUp;
            NY.AU.at(R, J) += U * M.BUp;
            BiasU.at(R, 0) += U * M.CUp;
          } else if (U < 0) {
            NX.AU.at(R, J) += U * M.ALo;
            NY.AU.at(R, J) += U * M.BLo;
            BiasU.at(R, 0) += U * M.CLo;
          }
        }
      }
      TrackAlloc(NX);
      TrackAlloc(NY);
      Accumulator &SX = Acc[N.In0];
      addInto(SX.AL, NX.AL);
      addInto(SX.AU, NX.AU);
      Accumulator &SY = Acc[N.In1];
      addInto(SY.AL, NY.AL);
      addInto(SY.AU, NY.AU);
      break;
    }
    }
    LiveBytes -= accumulatorBytes(A);
  }

  Result.Lo = Matrix(1, Dim);
  Result.Hi = Matrix(1, Dim);
  for (size_t R = 0; R < Dim; ++R) {
    double L = BiasL.at(R, 0);
    double U = BiasU.at(R, 0);
    // With saturated exponentials (hopelessly large perturbation probes
    // during the radius search) the independently accumulated lower and
    // upper bounds can overflow, turn NaN, or cross. Sanitize to a huge
    // sound interval; certification at such radii fails regardless.
    constexpr double Huge = 1e100;
    if (!(L <= U) || std::isnan(L) || std::isnan(U)) {
      L = -Huge;
      U = Huge;
    }
    Result.Lo.flat(R) = std::clamp(L, -Huge, Huge);
    Result.Hi.flat(R) = std::clamp(U, -Huge, Huge);
  }
  return Result;
}

bool deept::crown::computeAllBounds(Graph &G, const BackwardOptions &Opts,
                                    size_t *PeakBytes, size_t *TotalBytes) {
  // Only the inputs of nonlinear nodes need interval bounds: they feed
  // the relaxations, and in BaF mode they double as the concretization
  // frontier (backsubstitution passes through unbounded plumbing nodes
  // until it reaches a bounded one). In BaF mode the inputs of AddTwo
  // nodes are materialised as well: the residual spine would otherwise
  // never offer a frontier and every query would walk back to the input,
  // costing full-backward time.
  std::vector<bool> Needed(G.size(), false);
  bool BaF = Opts.MaxLevelsBack >= 0;
  for (size_t I = 0; I < G.size(); ++I) {
    const Node &N = G.node(static_cast<int>(I));
    if (N.Kind == NodeKind::Unary || N.Kind == NodeKind::Mul ||
        (BaF && N.Kind == NodeKind::AddTwo)) {
      Needed[N.In0] = true;
      if (N.In1 >= 0)
        Needed[N.In1] = true;
    }
  }
  size_t Peak = 0, Total = 0;
  auto Publish = [&] {
    if (PeakBytes)
      *PeakBytes = Peak;
    if (TotalBytes)
      *TotalBytes = Total;
  };
  for (size_t I = 0; I < G.size(); ++I) {
    Node &N = G.node(static_cast<int>(I));
    if (N.HasBounds)
      continue; // input node
    if (!Needed[I])
      continue;
    BackwardResult R = computeBounds(G, static_cast<int>(I), Opts);
    Peak = std::max(Peak, R.PeakBytes);
    Total += R.TotalBytes;
    if (R.MemoryExceeded ||
        (Opts.MemoryBudgetBytes > 0 && Total > Opts.MemoryBudgetBytes)) {
      Publish();
      return false;
    }
    N.Lo = R.Lo;
    N.Hi = R.Hi;
    N.HasBounds = true;
  }
  Publish();
  return true;
}
