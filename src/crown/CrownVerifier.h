//===- crown/CrownVerifier.h - CROWN baseline verifiers --------*- C++ -*-===//
//
// Part of deept-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The two baseline verifiers the paper compares against (Shi et al.
/// 2020): CROWN-Backward (full backsubstitution) and CROWN-BaF
/// (backward-and-forward: backsubstitution stopped after a fixed number
/// of layers, concretized with forward interval bounds).
///
//===----------------------------------------------------------------------===//

#ifndef DEEPT_CROWN_CROWNVERIFIER_H
#define DEEPT_CROWN_CROWNVERIFIER_H

#include "crown/Backward.h"
#include "crown/Forward.h"
#include "crown/TransformerGraph.h"
#include "data/SyntheticCorpus.h"

namespace deept {
namespace crown {

enum class CrownMode { Backward, BaF };

struct CrownConfig {
  CrownMode Mode = CrownMode::BaF;
  /// Retained for the K-level-backward experimental mode exposed by
  /// crown::computeAllBounds; the BaF verifier itself uses the forward
  /// linear-bound pass for intermediates.
  int BaFLevelsBack = 1;
  /// Byte budget for backward coefficient matrices; 0 = unlimited.
  /// Models the paper's GPU memory exhaustion (Table 3).
  size_t MemoryBudgetBytes = 0;
};

struct CrownOutcome {
  double MarginLowerBound = 0.0;
  bool OutOfMemory = false;
  size_t PeakBytes = 0;
  /// Cumulative coefficient allocation volume of the whole verification
  /// (the depth-growing quantity the memory budget is checked against).
  size_t TotalBytes = 0;
};

/// CROWN verification of a Transformer model.
class CrownVerifier {
public:
  CrownVerifier(const nn::TransformerModel &Model,
                CrownConfig Config = CrownConfig())
      : Model(Model), Config(Config) {}

  const CrownConfig &config() const { return Config; }
  CrownConfig &config() { return Config; }

  /// Threat model T1 margin bound.
  CrownOutcome certifyMarginLpBall(const std::vector<size_t> &Tokens,
                                   size_t Word, double P, double Radius,
                                   size_t TrueClass) const;

  bool certifyLpBall(const std::vector<size_t> &Tokens, size_t Word,
                     double P, double Radius, size_t TrueClass) const {
    CrownOutcome O = certifyMarginLpBall(Tokens, Word, P, Radius, TrueClass);
    return !O.OutOfMemory && O.MarginLowerBound > 0.0;
  }

  /// Threat model T2 margin bound (synonym box).
  CrownOutcome certifyMarginSynonymBox(const data::SyntheticCorpus &Corpus,
                                       const data::Sentence &S,
                                       size_t TrueClass) const;

  bool certifySynonymBox(const data::SyntheticCorpus &Corpus,
                         const data::Sentence &S, size_t TrueClass) const {
    CrownOutcome O = certifyMarginSynonymBox(Corpus, S, TrueClass);
    return !O.OutOfMemory && O.MarginLowerBound > 0.0;
  }

private:
  CrownOutcome run(BuiltGraph &&Built) const;

  const nn::TransformerModel &Model;
  CrownConfig Config;
};

} // namespace crown
} // namespace deept

#endif // DEEPT_CROWN_CROWNVERIFIER_H
