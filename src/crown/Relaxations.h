//===- crown/Relaxations.h - CROWN linear relaxations ----------*- C++ -*-===//
//
// Part of deept-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Per-element linear relaxations used by the CROWN backsubstitution:
/// each nonlinearity y = f(x) on [l, u] is bracketed by two lines
///
///   LowerSlope * x + LowerOffset <= f(x) <= UpperSlope * x + UpperOffset,
///
/// with *independent* slopes per side (unlike the zonotope transformers,
/// whose single shared slope is what makes them cheaper but looser --
/// exactly the trade-off between CROWN-Backward and DeepT the paper
/// discusses in Section 5.4). Multiplication uses the McCormick
/// envelopes.
///
//===----------------------------------------------------------------------===//

#ifndef DEEPT_CROWN_RELAXATIONS_H
#define DEEPT_CROWN_RELAXATIONS_H

#include "crown/Graph.h"

namespace deept {
namespace crown {

struct TwoLines {
  double LowerSlope = 0.0, LowerOffset = 0.0;
  double UpperSlope = 0.0, UpperOffset = 0.0;
};

/// Relaxation of a unary function on [L, U].
TwoLines unaryLines(UnaryFn Fn, double L, double U);

/// McCormick relaxation of z = x * y over the box [LX, UX] x [LY, UY]:
///   z >= Alo * x + Blo * y + Clo,   z <= Aup * x + Bup * y + Cup.
/// Of the two valid envelopes per side, the one tighter at the box center
/// is chosen.
struct MulLines {
  double ALo, BLo, CLo;
  double AUp, BUp, CUp;
};
MulLines mulLines(double LX, double UX, double LY, double UY);

} // namespace crown
} // namespace deept

#endif // DEEPT_CROWN_RELAXATIONS_H
