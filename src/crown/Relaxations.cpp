//===- crown/Relaxations.cpp ----------------------------------*- C++ -*-===//

#include "crown/Relaxations.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace deept;
using namespace deept::crown;

namespace {

constexpr double DegenerateWidth = 1e-9;
constexpr double ExpClampExponent = 100.0;

double clampedExp(double X) { return std::exp(std::min(X, ExpClampExponent)); }

TwoLines constantLines(double FLo, double FHi) {
  TwoLines T;
  T.LowerOffset = FLo;
  T.UpperOffset = FHi;
  return T;
}

TwoLines reluLines(double L, double U) {
  TwoLines T;
  if (U <= 0)
    return T; // y = 0 on both sides
  if (L >= 0) {
    T.LowerSlope = T.UpperSlope = 1.0;
    return T;
  }
  // Upper: the chord through (l, 0) and (u, u). Lower: the adaptive CROWN
  // choice y >= x if u >= -l else y >= 0.
  T.UpperSlope = U / (U - L);
  T.UpperOffset = -T.UpperSlope * L;
  T.LowerSlope = (U >= -L) ? 1.0 : 0.0;
  return T;
}

TwoLines tanhLines(double L, double U) {
  if (U - L < DegenerateWidth)
    return constantLines(std::tanh(L), std::tanh(U));
  double TL = std::tanh(L), TU = std::tanh(U);
  double Chord = (TU - TL) / (U - L);
  TwoLines T;
  if (L >= 0) {
    // Concave region: chord below, tangent at the midpoint above.
    T.LowerSlope = Chord;
    T.LowerOffset = TL - Chord * L;
    double M = 0.5 * (L + U), TM = std::tanh(M);
    T.UpperSlope = 1.0 - TM * TM;
    T.UpperOffset = TM - T.UpperSlope * M;
  } else if (U <= 0) {
    // Convex region: tangent below, chord above.
    double M = 0.5 * (L + U), TM = std::tanh(M);
    T.LowerSlope = 1.0 - TM * TM;
    T.LowerOffset = TM - T.LowerSlope * M;
    T.UpperSlope = Chord;
    T.UpperOffset = TL - Chord * L;
  } else {
    // Mixed: endpoint-anchored lines with the smaller endpoint derivative
    // (DeepPoly's S-shape rule).
    double Slope = std::min(1.0 - TL * TL, 1.0 - TU * TU);
    T.LowerSlope = Slope;
    T.LowerOffset = TL - Slope * L;
    T.UpperSlope = Slope;
    T.UpperOffset = TU - Slope * U;
  }
  return T;
}

TwoLines expLines(double L, double U) {
  double EL = clampedExp(L), EU = clampedExp(U);
  if (U - L < DegenerateWidth)
    return constantLines(EL, EU);
  TwoLines T;
  // Convex: tangent below (at the chord-matching point, clamped into the
  // range), chord above.
  double Chord = (EU - EL) / (U - L);
  double D = std::log(std::max(Chord, 1e-300));
  D = std::clamp(D, L, U);
  double ED = clampedExp(D);
  T.LowerSlope = ED;
  T.LowerOffset = ED - ED * D;
  T.UpperSlope = Chord;
  T.UpperOffset = EL - Chord * L;
  return T;
}

TwoLines recipLines(double L, double U) {
  L = std::max(L, 1e-12);
  U = std::max(U, L);
  if (U - L < DegenerateWidth)
    return constantLines(1.0 / U, 1.0 / L);
  TwoLines T;
  // Convex decreasing: tangent below at sqrt(lu), chord above.
  double D = std::sqrt(L * U);
  T.LowerSlope = -1.0 / (D * D);
  T.LowerOffset = 2.0 / D;
  double Chord = (1.0 / U - 1.0 / L) / (U - L);
  T.UpperSlope = Chord;
  T.UpperOffset = 1.0 / L - Chord * L;
  return T;
}

TwoLines sqrtLines(double L, double U) {
  L = std::max(L, 0.0);
  U = std::max(U, L);
  if (U - L < DegenerateWidth)
    return constantLines(std::sqrt(L), std::sqrt(U));
  double SL = std::sqrt(L), SU = std::sqrt(U);
  double Chord = 1.0 / (SL + SU);
  TwoLines T;
  // Concave: chord below, tangent above at the chord-matching point.
  T.LowerSlope = Chord;
  T.LowerOffset = SL - Chord * L;
  double SD = 0.5 * (SL + SU); // sqrt of the tangent point
  T.UpperSlope = Chord;
  T.UpperOffset = SD - Chord * SD * SD;
  return T;
}

} // namespace

TwoLines deept::crown::unaryLines(UnaryFn Fn, double L, double U) {
  if (L > U)
    L = U; // tolerate numerically inverted inputs from saturated regimes
  switch (Fn) {
  case UnaryFn::Relu:
    return reluLines(L, U);
  case UnaryFn::Tanh:
    return tanhLines(L, U);
  case UnaryFn::Exp:
    return expLines(L, U);
  case UnaryFn::Recip:
    return recipLines(L, U);
  case UnaryFn::Sqrt:
    return sqrtLines(L, U);
  }
  return TwoLines();
}

MulLines deept::crown::mulLines(double LX, double UX, double LY, double UY) {
  MulLines M;
  double MX = 0.5 * (LX + UX), MY = 0.5 * (LY + UY);
  // Lower envelopes: z >= ly x + lx y - lx ly and z >= uy x + ux y - ux uy.
  double Lo1 = LY * MX + LX * MY - LX * LY;
  double Lo2 = UY * MX + UX * MY - UX * UY;
  if (Lo1 >= Lo2) {
    M.ALo = LY;
    M.BLo = LX;
    M.CLo = -LX * LY;
  } else {
    M.ALo = UY;
    M.BLo = UX;
    M.CLo = -UX * UY;
  }
  // Upper envelopes: z <= uy x + lx y - lx uy and z <= ly x + ux y - ux ly.
  double Up1 = UY * MX + LX * MY - LX * UY;
  double Up2 = LY * MX + UX * MY - UX * LY;
  if (Up1 <= Up2) {
    M.AUp = UY;
    M.BUp = LX;
    M.CUp = -LX * UY;
  } else {
    M.AUp = LY;
    M.BUp = UX;
    M.CUp = -UX * LY;
  }
  return M;
}
