//===- crown/Graph.cpp ----------------------------------------*- C++ -*-===//

#include "crown/Graph.h"

#include <cassert>
#include <cmath>

using namespace deept;
using namespace deept::crown;

int Graph::addInput(InputSpec Spec, int Level) {
  assert(InputId < 0 && "only one input node is supported");
  Node N;
  N.Kind = NodeKind::Input;
  N.Dim = Spec.Center.cols();
  N.Level = Level;
  // Input bounds are immediate.
  N.Lo = Spec.Center - Spec.Radius;
  N.Hi = Spec.Center + Spec.Radius;
  if (Spec.P != Matrix::InfNorm) {
    // For lp balls the per-dimension range is +- Eps on masked dims (the
    // ball's bounding box), already encoded in Radius.
  }
  N.HasBounds = true;
  Nodes.push_back(std::move(N));
  Input = std::move(Spec);
  InputId = static_cast<int>(Nodes.size()) - 1;
  return InputId;
}

int Graph::addAffine(int In, const Matrix &W, Matrix B, int Level) {
  assert(In >= 0 && static_cast<size_t>(In) < Nodes.size() && "bad input");
  assert(W.rows() == Nodes[In].Dim && B.cols() == W.cols() &&
         B.rows() == 1 && "affine shape mismatch");
  std::vector<Triplet> T;
  for (size_t R = 0; R < W.rows(); ++R)
    for (size_t C = 0; C < W.cols(); ++C)
      if (W.at(R, C) != 0.0)
        T.push_back({R, C, W.at(R, C)});
  return addAffineSparse(In, std::move(T), W.cols(), std::move(B), Level);
}

int Graph::addAffineSparse(int In, std::vector<Triplet> W, size_t OutDim,
                           Matrix B, int Level) {
  assert(In >= 0 && static_cast<size_t>(In) < Nodes.size() && "bad input");
  assert(B.cols() == OutDim && B.rows() == 1 && "affine bias mismatch");
  Node N;
  N.Kind = NodeKind::Affine;
  N.Dim = OutDim;
  N.InDim = Nodes[In].Dim;
  N.In0 = In;
  N.W = std::move(W);
  N.B = std::move(B);
  N.Level = Level;
#ifndef NDEBUG
  for (const Triplet &T : N.W)
    assert(T.In < N.InDim && T.Out < N.Dim && "triplet out of range");
#endif
  Nodes.push_back(std::move(N));
  return static_cast<int>(Nodes.size()) - 1;
}

int Graph::addAddTwo(int A, int B, int Level) {
  assert(Nodes[A].Dim == Nodes[B].Dim && "addTwo dimension mismatch");
  Node N;
  N.Kind = NodeKind::AddTwo;
  N.Dim = Nodes[A].Dim;
  N.In0 = A;
  N.In1 = B;
  N.Level = Level;
  Nodes.push_back(std::move(N));
  return static_cast<int>(Nodes.size()) - 1;
}

int Graph::addUnary(int In, UnaryFn Fn, int Level) {
  Node N;
  N.Kind = NodeKind::Unary;
  N.Dim = Nodes[In].Dim;
  N.In0 = In;
  N.Fn = Fn;
  N.Level = Level;
  Nodes.push_back(std::move(N));
  return static_cast<int>(Nodes.size()) - 1;
}

int Graph::addMul(int A, int B, int Level) {
  assert(Nodes[A].Dim == Nodes[B].Dim && "mul dimension mismatch");
  Node N;
  N.Kind = NodeKind::Mul;
  N.Dim = Nodes[A].Dim;
  N.In0 = A;
  N.In1 = B;
  N.Level = Level;
  Nodes.push_back(std::move(N));
  return static_cast<int>(Nodes.size()) - 1;
}

std::vector<Matrix> Graph::evaluate(const Matrix &InputValue) const {
  assert(InputValue.rows() == 1 &&
         InputValue.cols() == Nodes[InputId].Dim && "input shape mismatch");
  std::vector<Matrix> Vals(Nodes.size());
  for (size_t I = 0; I < Nodes.size(); ++I) {
    const Node &N = Nodes[I];
    switch (N.Kind) {
    case NodeKind::Input:
      Vals[I] = InputValue;
      break;
    case NodeKind::Affine: {
      Matrix Out = N.B;
      const Matrix &X = Vals[N.In0];
      for (const Triplet &T : N.W)
        Out.flat(T.Out) += X.flat(T.In) * T.V;
      Vals[I] = std::move(Out);
      break;
    }
    case NodeKind::AddTwo:
      Vals[I] = Vals[N.In0] + Vals[N.In1];
      break;
    case NodeKind::Unary: {
      Vals[I] = Vals[N.In0];
      switch (N.Fn) {
      case UnaryFn::Relu:
        Vals[I].applyFn([](double X) { return X > 0 ? X : 0.0; });
        break;
      case UnaryFn::Tanh:
        Vals[I].applyFn([](double X) { return std::tanh(X); });
        break;
      case UnaryFn::Exp:
        Vals[I].applyFn([](double X) { return std::exp(X); });
        break;
      case UnaryFn::Recip:
        Vals[I].applyFn([](double X) { return 1.0 / X; });
        break;
      case UnaryFn::Sqrt:
        Vals[I].applyFn([](double X) { return std::sqrt(X); });
        break;
      }
      break;
    }
    case NodeKind::Mul:
      Vals[I] = tensor::hadamard(Vals[N.In0], Vals[N.In1]);
      break;
    }
  }
  return Vals;
}
