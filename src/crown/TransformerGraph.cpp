//===- crown/TransformerGraph.cpp -----------------------------*- C++ -*-===//

#include "crown/TransformerGraph.h"

#include <cassert>
#include <cmath>

using namespace deept;
using namespace deept::crown;
using tensor::Matrix;

namespace {

/// (N*E) -> (N*D) map applying W (E x D) to each row of the N x E view.
Matrix rightMatmulMap(size_t N, size_t E, const Matrix &W) {
  size_t D = W.cols();
  Matrix M(N * E, N * D);
  for (size_t I = 0; I < N; ++I)
    for (size_t R = 0; R < E; ++R)
      for (size_t C = 0; C < D; ++C)
        M.at(I * E + R, I * D + C) = W.at(R, C);
  return M;
}

/// Bias 1 x (N*D) tiling b (1 x D) over the N rows.
Matrix tiledBias(size_t N, const Matrix &B) {
  size_t D = B.cols();
  Matrix Out(1, N * D);
  for (size_t I = 0; I < N; ++I)
    for (size_t C = 0; C < D; ++C)
      Out.at(0, I * D + C) = B.at(0, C);
  return Out;
}

/// (N*E) -> (N*E) map subtracting each row's mean.
Matrix subRowMeanMap(size_t N, size_t E) {
  Matrix M(N * E, N * E);
  double Inv = 1.0 / static_cast<double>(E);
  for (size_t I = 0; I < N; ++I)
    for (size_t R = 0; R < E; ++R)
      for (size_t C = 0; C < E; ++C)
        M.at(I * E + R, I * E + C) = (R == C ? 1.0 : 0.0) - Inv;
  return M;
}

/// Diagonal map scaling column c of each row by Gamma[c].
Matrix scaleColsMap(size_t N, const Matrix &Gamma) {
  size_t E = Gamma.cols();
  Matrix M(N * E, N * E);
  for (size_t I = 0; I < N; ++I)
    for (size_t C = 0; C < E; ++C)
      M.at(I * E + C, I * E + C) = Gamma.at(0, C);
  return M;
}

/// Selection map picking columns [C0, C1) of each row: (N*E) -> (N*(C1-C0)).
Matrix selectColsMap(size_t N, size_t E, size_t C0, size_t C1) {
  size_t D = C1 - C0;
  Matrix M(N * E, N * D);
  for (size_t I = 0; I < N; ++I)
    for (size_t C = 0; C < D; ++C)
      M.at(I * E + C0 + C, I * D + C) = 1.0;
  return M;
}

/// Placement map embedding an (N*D) head output at column offset C0 of an
/// (N*E) tensor.
Matrix placeColsMap(size_t N, size_t D, size_t E, size_t C0) {
  Matrix M(N * D, N * E);
  for (size_t I = 0; I < N; ++I)
    for (size_t C = 0; C < D; ++C)
      M.at(I * D + C, I * E + C0 + C) = 1.0;
  return M;
}

} // namespace

InputSpec deept::crown::lpBallSpec(const nn::TransformerModel &Model,
                                   const std::vector<size_t> &Tokens,
                                   size_t Word, double P, double Radius) {
  Matrix X = Model.embed(Tokens);
  size_t E = X.cols();
  InputSpec Spec;
  Spec.Center = X.reshaped(1, X.size());
  Spec.P = P;
  Spec.Radius = Matrix(1, X.size(), 0.0);
  for (size_t C = 0; C < E; ++C)
    Spec.Radius.at(0, Word * E + C) = Radius;
  return Spec;
}

InputSpec deept::crown::boxSpec(const Matrix &Lo, const Matrix &Hi) {
  InputSpec Spec;
  Matrix Center = (Lo + Hi) * 0.5;
  Matrix Radius = (Hi - Lo) * 0.5;
  Spec.Center = Center.reshaped(1, Center.size());
  Spec.Radius = Radius.reshaped(1, Radius.size());
  Spec.P = Matrix::InfNorm;
  return Spec;
}

BuiltGraph deept::crown::buildTransformerGraph(
    const nn::TransformerModel &Model, size_t SeqLen, InputSpec Spec,
    size_t TrueClass) {
  const nn::TransformerConfig &C = Model.Config;
  size_t N = SeqLen;
  size_t E = C.EmbedDim;
  size_t A = C.NumHeads;
  size_t Dk = C.headDim();
  double Scale = 1.0 / std::sqrt(static_cast<double>(Dk));
  assert(Spec.Center.cols() == N * E && "input spec dimension mismatch");

  BuiltGraph Built;
  Graph &G = Built.G;
  int X = G.addInput(std::move(Spec), /*Level=*/0);

  for (size_t L = 0; L < Model.Layers.size(); ++L) {
    const nn::TransformerLayer &Layer = Model.Layers[L];
    int Lv = static_cast<int>(L) + 1;

    int Q = G.addAffine(X, rightMatmulMap(N, E, Layer.Wq),
                        tiledBias(N, Layer.Bq), Lv);
    int K = G.addAffine(X, rightMatmulMap(N, E, Layer.Wk),
                        tiledBias(N, Layer.Bk), Lv);
    int V = G.addAffine(X, rightMatmulMap(N, E, Layer.Wv),
                        tiledBias(N, Layer.Bv), Lv);

    int HeadsSum = -1;
    for (size_t H = 0; H < A; ++H) {
      int Qh = G.addAffine(Q, selectColsMap(N, E, H * Dk, (H + 1) * Dk),
                           Matrix(1, N * Dk), Lv);
      int Kh = G.addAffine(K, selectColsMap(N, E, H * Dk, (H + 1) * Dk),
                           Matrix(1, N * Dk), Lv);
      int Vh = G.addAffine(V, selectColsMap(N, E, H * Dk, (H + 1) * Dk),
                           Matrix(1, N * Dk), Lv);

      // Scores[i][j] = sum_k Qh[i][k] * Kh[j][k] * Scale. Broadcast Qh and
      // Kh to the (i, j, k) grid, multiply, then sum over k.
      Matrix QB(N * Dk, N * N * Dk); // Qh[(i,k)] -> (i,j,k)
      Matrix KB(N * Dk, N * N * Dk); // Kh[(j,k)] -> (i,j,k)
      for (size_t I = 0; I < N; ++I)
        for (size_t J = 0; J < N; ++J)
          for (size_t Kk = 0; Kk < Dk; ++Kk) {
            size_t Out = (I * N + J) * Dk + Kk;
            QB.at(I * Dk + Kk, Out) = 1.0;
            KB.at(J * Dk + Kk, Out) = 1.0;
          }
      int QBr = G.addAffine(Qh, std::move(QB), Matrix(1, N * N * Dk), Lv);
      int KBr = G.addAffine(Kh, std::move(KB), Matrix(1, N * N * Dk), Lv);
      int QK = G.addMul(QBr, KBr, Lv);
      Matrix SumK(N * N * Dk, N * N);
      for (size_t P = 0; P < N * N; ++P)
        for (size_t Kk = 0; Kk < Dk; ++Kk)
          SumK.at(P * Dk + Kk, P) = Scale;
      int Scores = G.addAffine(QK, std::move(SumK), Matrix(1, N * N), Lv);

      // Naive softmax: exp, row sums, reciprocal, broadcast, multiply.
      int Exped = G.addUnary(Scores, UnaryFn::Exp, Lv);
      Matrix RowSum(N * N, N);
      for (size_t I = 0; I < N; ++I)
        for (size_t J = 0; J < N; ++J)
          RowSum.at(I * N + J, I) = 1.0;
      int Sums = G.addAffine(Exped, std::move(RowSum), Matrix(1, N), Lv);
      int Recip = G.addUnary(Sums, UnaryFn::Recip, Lv);
      Matrix RecipB(N, N * N);
      for (size_t I = 0; I < N; ++I)
        for (size_t J = 0; J < N; ++J)
          RecipB.at(I, I * N + J) = 1.0;
      int RecipBr = G.addAffine(Recip, std::move(RecipB), Matrix(1, N * N),
                                Lv);
      int Probs = G.addMul(Exped, RecipBr, Lv);

      // Out[(i,d)] = sum_j Probs[(i,j)] * Vh[(j,d)].
      Matrix PB(N * N, N * N * Dk);
      Matrix VB(N * Dk, N * N * Dk);
      for (size_t I = 0; I < N; ++I)
        for (size_t J = 0; J < N; ++J)
          for (size_t D = 0; D < Dk; ++D) {
            size_t Out = (I * N + J) * Dk + D;
            PB.at(I * N + J, Out) = 1.0;
            VB.at(J * Dk + D, Out) = 1.0;
          }
      int PBr = G.addAffine(Probs, std::move(PB), Matrix(1, N * N * Dk), Lv);
      int VBr = G.addAffine(Vh, std::move(VB), Matrix(1, N * N * Dk), Lv);
      int PV = G.addMul(PBr, VBr, Lv);
      Matrix SumJ(N * N * Dk, N * Dk);
      for (size_t I = 0; I < N; ++I)
        for (size_t J = 0; J < N; ++J)
          for (size_t D = 0; D < Dk; ++D)
            SumJ.at((I * N + J) * Dk + D, I * Dk + D) = 1.0;
      int HeadOut = G.addAffine(PV, std::move(SumJ), Matrix(1, N * Dk), Lv);

      int Placed = G.addAffine(HeadOut, placeColsMap(N, Dk, E, H * Dk),
                               Matrix(1, N * E), Lv);
      HeadsSum = HeadsSum < 0 ? Placed : G.addAddTwo(HeadsSum, Placed, Lv);
    }

    int Z = G.addAffine(HeadsSum, rightMatmulMap(N, E, Layer.Wo),
                        tiledBias(N, Layer.Bo), Lv);
    int V1 = G.addAddTwo(X, Z, Lv);
    auto LayerNorm = [&](int In, const Matrix &Gamma, const Matrix &Beta) {
      int Centered =
          G.addAffine(In, subRowMeanMap(N, E), Matrix(1, N * E), Lv);
      if (C.LayerNormStdDiv) {
        int Sq = G.addMul(Centered, Centered, Lv);
        Matrix MeanMap(N * E, N);
        for (size_t I = 0; I < N; ++I)
          for (size_t Cc = 0; Cc < E; ++Cc)
            MeanMap.at(I * E + Cc, I) = 1.0 / static_cast<double>(E);
        int Var = G.addAffine(Sq, std::move(MeanMap),
                              Matrix(1, N, C.LnEps), Lv);
        int Std = G.addUnary(Var, UnaryFn::Sqrt, Lv);
        int Inv = G.addUnary(Std, UnaryFn::Recip, Lv);
        Matrix InvB(N, N * E);
        for (size_t I = 0; I < N; ++I)
          for (size_t Cc = 0; Cc < E; ++Cc)
            InvB.at(I, I * E + Cc) = 1.0;
        int InvBr = G.addAffine(Inv, std::move(InvB), Matrix(1, N * E), Lv);
        Centered = G.addMul(Centered, InvBr, Lv);
      }
      return G.addAffine(Centered, scaleColsMap(N, Gamma),
                         tiledBias(N, Beta), Lv);
    };
    int X1 = LayerNorm(V1, Layer.Ln1Gamma, Layer.Ln1Beta);

    int Hid = G.addUnary(
        G.addAffine(X1, rightMatmulMap(N, E, Layer.W1),
                    tiledBias(N, Layer.B1), Lv),
        UnaryFn::Relu, Lv);
    int F = G.addAffine(Hid, rightMatmulMap(N, C.HiddenDim, Layer.W2),
                        tiledBias(N, Layer.B2), Lv);
    int V2 = G.addAddTwo(X1, F, Lv);
    X = LayerNorm(V2, Layer.Ln2Gamma, Layer.Ln2Beta);
  }

  // Pooler and classifier.
  int FinalLv = static_cast<int>(Model.Layers.size()) + 1;
  int Pooled = G.addAffine(X, selectColsMap(1, N * E, 0, E),
                           Matrix(1, E), FinalLv);
  int PoolLin = G.addAffine(Pooled, Matrix(Model.PoolW),
                            Matrix(Model.PoolB), FinalLv);
  int Tn = G.addUnary(PoolLin, UnaryFn::Tanh, FinalLv);
  Built.Logits =
      G.addAffine(Tn, Matrix(Model.ClsW), Matrix(Model.ClsB), FinalLv);
  Matrix MarginW(2, 1);
  MarginW.at(TrueClass, 0) = 1.0;
  MarginW.at(1 - TrueClass, 0) = -1.0;
  Built.Margin =
      G.addAffine(Built.Logits, std::move(MarginW), Matrix(1, 1), FinalLv);
  return Built;
}
