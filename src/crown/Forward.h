//===- crown/Forward.h - Forward linear bound propagation ------*- C++ -*-===//
//
// Part of deept-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The "forward" half of CROWN-BaF (Shi et al. 2020): every node carries
/// two linear functions of the *input*,
///
///   FL [x; 1] <= node <= FU [x; 1],
///
/// propagated forward through the graph in one pass (sign-splitting at
/// relaxations), and concretized against the input perturbation with the
/// dual norm whenever interval bounds are needed. This keeps relational
/// information about the input (much tighter than interval frontiers) at
/// a cost linear in depth; precision still decays with depth because each
/// relaxation compounds, which is exactly the BaF behaviour the paper
/// exploits (Tables 1-2).
///
//===----------------------------------------------------------------------===//

#ifndef DEEPT_CROWN_FORWARD_H
#define DEEPT_CROWN_FORWARD_H

#include "crown/Graph.h"

namespace deept {
namespace crown {

struct ForwardOptions {
  /// Abort when the live forward coefficient matrices (peak) or the
  /// cumulative allocation volume exceed this many bytes (0 = unlimited);
  /// models GPU memory exhaustion.
  size_t MemoryBudgetBytes = 0;
};

/// Fills Node::Lo / Node::Hi for every node with forward-propagated
/// linear bounds. Returns false when the memory budget is exceeded.
bool computeForwardBounds(Graph &G, const ForwardOptions &Opts,
                          size_t *PeakBytes = nullptr,
                          size_t *TotalBytes = nullptr);

} // namespace crown
} // namespace deept

#endif // DEEPT_CROWN_FORWARD_H
