//===- crown/Forward.cpp --------------------------------------*- C++ -*-===//

#include "crown/Forward.h"

#include "crown/Relaxations.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <map>

using namespace deept;
using namespace deept::crown;
using tensor::dualExponent;

namespace {

/// Linear lower/upper bounds of a node in terms of [input; 1]: each is
/// Dim x (InDim + 1), the last column being the constant offset.
struct NodeBounds {
  Matrix FL, FU;
};

size_t nodeBoundsBytes(const NodeBounds &B) {
  return (B.FL.size() + B.FU.size()) * sizeof(double);
}

/// Concretizes one coefficient row against the input perturbation
/// (Lemma 1). Lower when IsLower, upper otherwise.
double concretizeRow(const double *Row, size_t InDim, const InputSpec &Spec,
                     bool IsLower) {
  double Value = Row[InDim]; // constant offset
  for (size_t J = 0; J < InDim; ++J)
    Value += Row[J] * Spec.Center.flat(J);
  double Dual = 0.0;
  if (Spec.P == Matrix::InfNorm) {
    for (size_t J = 0; J < InDim; ++J)
      Dual += std::fabs(Row[J]) * Spec.Radius.flat(J);
  } else {
    double Q = dualExponent(Spec.P);
    double Eps = 0.0, Acc = 0.0;
    for (size_t J = 0; J < InDim; ++J) {
      double Rad = Spec.Radius.flat(J);
      if (Rad == 0.0)
        continue;
      Eps = Rad;
      double V = std::fabs(Row[J]);
      if (Q == 1.0)
        Acc += V;
      else if (Q == 2.0)
        Acc += V * V;
      else
        Acc = std::max(Acc, V);
    }
    if (Q == 2.0)
      Acc = std::sqrt(Acc);
    Dual = Eps * Acc;
  }
  return IsLower ? Value - Dual : Value + Dual;
}

/// Adds Scale * (Scale > 0 ? Src chosen by polarity) into Dst.
/// For a lower-bound row: positive coefficients take the source's lower
/// row, negative ones its upper row (and mirrored for upper bounds).
void accumulateSigned(double *Dst, double Scale, const double *SrcPreferred,
                      const double *SrcOther, size_t Width) {
  const double *Src = Scale >= 0 ? SrcPreferred : SrcOther;
  if (Scale == 0.0)
    return;
  for (size_t J = 0; J < Width; ++J)
    Dst[J] += Scale * Src[J];
}

} // namespace

bool deept::crown::computeForwardBounds(Graph &G, const ForwardOptions &Opts,
                                        size_t *PeakBytes,
                                        size_t *TotalBytes) {
  const InputSpec &Spec = G.inputSpec();
  size_t InDim = Spec.Center.cols();
  size_t Width = InDim + 1;

  // Last consumer of each node, so coefficient matrices are freed as
  // early as possible (forward memory is then depth-independent).
  std::vector<int> LastUse(G.size(), -1);
  for (size_t I = 0; I < G.size(); ++I) {
    const Node &N = G.node(static_cast<int>(I));
    if (N.In0 >= 0)
      LastUse[N.In0] = static_cast<int>(I);
    if (N.In1 >= 0)
      LastUse[N.In1] = static_cast<int>(I);
  }

  std::map<int, NodeBounds> Live;
  size_t LiveBytes = 0, Peak = 0, Total = 0;
  bool Exceeded = false;
  auto Track = [&](const NodeBounds &B) {
    LiveBytes += nodeBoundsBytes(B);
    Total += nodeBoundsBytes(B);
    Peak = std::max(Peak, LiveBytes);
    if (Opts.MemoryBudgetBytes > 0 &&
        std::max(Peak, Total) > Opts.MemoryBudgetBytes)
      Exceeded = true;
  };
  auto Release = [&](int Id) {
    auto It = Live.find(Id);
    if (It == Live.end())
      return;
    LiveBytes -= nodeBoundsBytes(It->second);
    Live.erase(It);
  };

  for (size_t I = 0; I < G.size() && !Exceeded; ++I) {
    Node &N = G.node(static_cast<int>(I));
    NodeBounds B;
    B.FL = Matrix(N.Dim, Width);
    B.FU = Matrix(N.Dim, Width);

    switch (N.Kind) {
    case NodeKind::Input:
      for (size_t J = 0; J < N.Dim; ++J) {
        B.FL.at(J, J) = 1.0;
        B.FU.at(J, J) = 1.0;
      }
      break;

    case NodeKind::Affine: {
      const NodeBounds &In = Live.at(N.In0);
      for (const Triplet &T : N.W) {
        accumulateSigned(B.FL.rowPtr(T.Out), T.V, In.FL.rowPtr(T.In),
                         In.FU.rowPtr(T.In), Width);
        accumulateSigned(B.FU.rowPtr(T.Out), T.V, In.FU.rowPtr(T.In),
                         In.FL.rowPtr(T.In), Width);
      }
      for (size_t J = 0; J < N.Dim; ++J) {
        B.FL.at(J, InDim) += N.B.flat(J);
        B.FU.at(J, InDim) += N.B.flat(J);
      }
      break;
    }

    case NodeKind::AddTwo: {
      const NodeBounds &A = Live.at(N.In0);
      const NodeBounds &C = Live.at(N.In1);
      B.FL = A.FL + C.FL;
      B.FU = A.FU + C.FU;
      break;
    }

    case NodeKind::Unary: {
      const Node &InNode = G.node(N.In0);
      const NodeBounds &In = Live.at(N.In0);
      assert(InNode.HasBounds && "forward order violated");
      for (size_t J = 0; J < N.Dim; ++J) {
        TwoLines T = unaryLines(N.Fn, InNode.Lo.flat(J), InNode.Hi.flat(J));
        accumulateSigned(B.FL.rowPtr(J), T.LowerSlope, In.FL.rowPtr(J),
                         In.FU.rowPtr(J), Width);
        B.FL.at(J, InDim) += T.LowerOffset;
        accumulateSigned(B.FU.rowPtr(J), T.UpperSlope, In.FU.rowPtr(J),
                         In.FL.rowPtr(J), Width);
        B.FU.at(J, InDim) += T.UpperOffset;
      }
      break;
    }

    case NodeKind::Mul: {
      const Node &XN = G.node(N.In0);
      const Node &YN = G.node(N.In1);
      const NodeBounds &X = Live.at(N.In0);
      const NodeBounds &Y = Live.at(N.In1);
      assert(XN.HasBounds && YN.HasBounds && "forward order violated");
      for (size_t J = 0; J < N.Dim; ++J) {
        MulLines M = mulLines(XN.Lo.flat(J), XN.Hi.flat(J), YN.Lo.flat(J),
                              YN.Hi.flat(J));
        accumulateSigned(B.FL.rowPtr(J), M.ALo, X.FL.rowPtr(J),
                         X.FU.rowPtr(J), Width);
        accumulateSigned(B.FL.rowPtr(J), M.BLo, Y.FL.rowPtr(J),
                         Y.FU.rowPtr(J), Width);
        B.FL.at(J, InDim) += M.CLo;
        accumulateSigned(B.FU.rowPtr(J), M.AUp, X.FU.rowPtr(J),
                         X.FL.rowPtr(J), Width);
        accumulateSigned(B.FU.rowPtr(J), M.BUp, Y.FU.rowPtr(J),
                         Y.FL.rowPtr(J), Width);
        B.FU.at(J, InDim) += M.CUp;
      }
      break;
    }
    }

    // Concretize interval bounds (needed by downstream relaxations).
    if (!N.HasBounds) {
      N.Lo = Matrix(1, N.Dim);
      N.Hi = Matrix(1, N.Dim);
      constexpr double HugeBound = 1e100;
      for (size_t J = 0; J < N.Dim; ++J) {
        double L = concretizeRow(B.FL.rowPtr(J), InDim, Spec, true);
        double U = concretizeRow(B.FU.rowPtr(J), InDim, Spec, false);
        if (!(L <= U) || std::isnan(L) || std::isnan(U)) {
          L = -HugeBound;
          U = HugeBound;
        }
        N.Lo.flat(J) = std::clamp(L, -HugeBound, HugeBound);
        N.Hi.flat(J) = std::clamp(U, -HugeBound, HugeBound);
      }
      N.HasBounds = true;
    }

    Track(B);
    Live.emplace(static_cast<int>(I), std::move(B));
    // Free operands whose last consumer this node was.
    if (N.In0 >= 0 && LastUse[N.In0] == static_cast<int>(I))
      Release(N.In0);
    if (N.In1 >= 0 && N.In1 != N.In0 && LastUse[N.In1] == static_cast<int>(I))
      Release(N.In1);
  }
  if (PeakBytes)
    *PeakBytes = Peak;
  if (TotalBytes)
    *TotalBytes = Total;
  return !Exceeded;
}
