//===- crown/Graph.h - Computation graph for linear bounds -----*- C++ -*-===//
//
// Part of deept-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The computation-DAG representation used by the CROWN baseline (our
/// reimplementation of Shi et al. 2020, "Robustness Verification for
/// Transformers"; see DESIGN.md). Values are row vectors; a Transformer
/// forward pass is expressed with five node kinds:
///
///   Input   -- the (partially) perturbed flattened embedding matrix,
///   Affine  -- y = x W + b (all structural reshuffling, matmuls with
///              constants, sums/means, selections and broadcasts),
///   AddTwo  -- y = x1 + x2 (residual connections),
///   Unary   -- elementwise ReLU / tanh / exp / reciprocal / sqrt,
///   Mul     -- elementwise product of two equally sized nodes (the
///              bilinear pieces of self-attention, via McCormick
///              relaxations during backsubstitution).
///
/// Every node carries concrete interval bounds (filled in topological
/// order by crown::computeAllBounds) and the "level" (Transformer layer
/// index) used by CROWN-BaF's early stopping.
///
//===----------------------------------------------------------------------===//

#ifndef DEEPT_CROWN_GRAPH_H
#define DEEPT_CROWN_GRAPH_H

#include "tensor/Matrix.h"

#include <vector>

namespace deept {
namespace crown {

using tensor::Matrix;

enum class NodeKind { Input, Affine, AddTwo, Unary, Mul };

enum class UnaryFn { Relu, Tanh, Exp, Recip, Sqrt };

/// Specification of the input perturbation: center x0 plus either an lp
/// ball (radius Eps on the masked dimensions) or a per-dimension box
/// (P = InfNorm with per-dimension radii).
struct InputSpec {
  Matrix Center;      // 1 x Dim
  double P = tensor::Matrix::InfNorm;
  /// Per-dimension radius. For p in {1, 2} only a uniform radius on the
  /// masked (non-zero) dimensions is supported, as in threat model T1.
  Matrix Radius;      // 1 x Dim
};

/// One entry of a sparse affine map: Out += V * In.
struct Triplet {
  size_t In;
  size_t Out;
  double V;
};

struct Node {
  NodeKind Kind;
  size_t Dim = 0;
  int In0 = -1;
  int In1 = -1;
  /// Affine map y = x W + b stored sparsely; the Transformer lowering's
  /// structural matrices (broadcasts, selections, per-row matmuls,
  /// reductions) are extremely sparse, and the backsubstitution's cost is
  /// proportional to nnz rather than the dense size.
  std::vector<Triplet> W;
  size_t InDim = 0;
  Matrix B; // Affine: 1 x Dim
  UnaryFn Fn = UnaryFn::Relu;
  /// Concrete interval bounds (1 x Dim), filled by computeAllBounds.
  Matrix Lo, Hi;
  bool HasBounds = false;
  /// Transformer layer index for CROWN-BaF early stopping.
  int Level = 0;
};

/// An append-only DAG; node ids are topological by construction.
class Graph {
public:
  int addInput(InputSpec Spec, int Level);
  /// Adds y = x W + b; W is converted to sparse form internally.
  int addAffine(int In, const Matrix &W, Matrix B, int Level);
  /// Sparse-native variant.
  int addAffineSparse(int In, std::vector<Triplet> W, size_t OutDim,
                      Matrix B, int Level);
  int addAddTwo(int A, int B, int Level);
  int addUnary(int In, UnaryFn Fn, int Level);
  int addMul(int A, int B, int Level);

  size_t size() const { return Nodes.size(); }
  Node &node(int Id) { return Nodes[Id]; }
  const Node &node(int Id) const { return Nodes[Id]; }
  const InputSpec &inputSpec() const { return Input; }
  int inputNode() const { return InputId; }

  /// Evaluates the graph concretely at an input assignment (tests /
  /// debugging). Returns the value of every node.
  std::vector<Matrix> evaluate(const Matrix &InputValue) const;

private:
  std::vector<Node> Nodes;
  InputSpec Input;
  int InputId = -1;
};

} // namespace crown
} // namespace deept

#endif // DEEPT_CROWN_GRAPH_H
