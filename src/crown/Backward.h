//===- crown/Backward.h - CROWN backsubstitution ---------------*- C++ -*-===//
//
// Part of deept-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Bound computation by backward substitution of linear bounds through
/// the computation graph:
///
/// * CROWN-Backward substitutes all the way to the input node and
///   concretizes there with the dual norm of the perturbation -- precise
///   but O(depth) per queried node, hence superlinear in network depth
///   overall, with coefficient matrices whose total size is what blew the
///   paper's GPU memory (Table 3); a byte budget reproduces that failure
///   mode.
/// * CROWN-BaF stops after a fixed number of Transformer layers and
///   concretizes the frontier with previously computed interval bounds --
///   linear time, much less precise on deep networks (Tables 1, 2).
///
//===----------------------------------------------------------------------===//

#ifndef DEEPT_CROWN_BACKWARD_H
#define DEEPT_CROWN_BACKWARD_H

#include "crown/Graph.h"

namespace deept {
namespace crown {

struct BackwardOptions {
  /// How many Transformer layers (levels) to substitute back before
  /// concretizing with stored interval bounds; negative = all the way to
  /// the input (CROWN-Backward).
  int MaxLevelsBack = -1;
  /// Abort when the peak live coefficient bytes *or* the cumulative
  /// allocated coefficient bytes exceed this budget (0 = unlimited).
  /// The cumulative volume is what grows superlinearly with depth and
  /// models the paper's GPU OOM failures (their batched backward keeps
  /// per-layer coefficient tensors resident).
  size_t MemoryBudgetBytes = 0;
};

struct BackwardResult {
  Matrix Lo, Hi; // 1 x Dim of the queried node
  bool MemoryExceeded = false;
  size_t PeakBytes = 0;
  size_t TotalBytes = 0; // cumulative allocation volume
};

/// Computes interval bounds of node \p Target by backsubstitution. All
/// nonlinear nodes below Target must already have bounds on their inputs
/// (use computeAllBounds).
BackwardResult computeBounds(const Graph &G, int Target,
                             const BackwardOptions &Opts);

/// Fills Node::Lo / Node::Hi for every node in topological order, using
/// backsubstitution (per \p Opts) for each node. Returns false (and stops)
/// when the memory budget is exceeded. \p PeakBytes reports the largest
/// single-query footprint and \p TotalBytes the cumulative allocation
/// volume across queries.
bool computeAllBounds(Graph &G, const BackwardOptions &Opts,
                      size_t *PeakBytes = nullptr,
                      size_t *TotalBytes = nullptr);

} // namespace crown
} // namespace deept

#endif // DEEPT_CROWN_BACKWARD_H
