//===- tensor/KernelsAvx512.cpp - AVX-512 kernel table ---------*- C++ -*-===//
//
// Compiled with -mavx512f -mavx512dq -mavx512vl -ffp-contract=off. Same
// shape as the AVX2 table with L = 8: elementwise kernels stay mul-then-add
// (bit-identical to scalar), reductions are lane-ordered FMA with the
// 512 -> 256 -> 128 pairwise-halving horizontal sum that detail::dotLanes
// emulates for Lanes == 8.
//
//===----------------------------------------------------------------------===//

#include "tensor/Kernels.h"

#if DEEPT_HAVE_AVX512

#include <algorithm>
#include <cmath>
#include <immintrin.h>

namespace deept {
namespace tensor {
namespace detail {
namespace {

constexpr size_t L = 8; // doubles per __m512d

/// ((l0+l4)+(l2+l6)) + ((l1+l5)+(l3+l7)): halve 512 -> 256, then reuse the
/// 4-lane cascade, matching detail::dotLanes for Lanes == 8.
inline double reduceLanes(__m512d V) {
  __m256d Half = _mm256_add_pd(_mm512_castpd512_pd256(V),
                               _mm512_extractf64x4_pd(V, 1));
  __m128d Lo = _mm256_castpd256_pd128(Half);
  __m128d Hi = _mm256_extractf128_pd(Half, 1);
  __m128d S = _mm_add_pd(Lo, Hi);
  return _mm_cvtsd_f64(S) + _mm_cvtsd_f64(_mm_unpackhi_pd(S, S));
}

bool allZeroRow(const double *P, size_t N) {
  for (size_t I = 0; I < N; ++I)
    if (P[I] != 0.0)
      return false;
  return true;
}

// One non-zero A row of the A * B^T kernel, shared between the per-plane
// and the whole-plane kernels so both produce the same bits.
void avx512DotRowTB(const double *ARow, const double *B, size_t M, size_t D,
                    double *CRow, bool Accumulate) {
  const size_t DV = D - D % L;
  size_t J = 0;
  for (; J + 4 <= M; J += 4) {
    const double *B0 = B + J * D, *B1 = B + (J + 1) * D;
    const double *B2 = B + (J + 2) * D, *B3 = B + (J + 3) * D;
    double S0 = 0.0, S1 = 0.0, S2 = 0.0, S3 = 0.0;
    if (DV) {
      __m512d A0 = _mm512_setzero_pd(), A1 = _mm512_setzero_pd();
      __m512d A2 = _mm512_setzero_pd(), A3 = _mm512_setzero_pd();
      for (size_t K = 0; K < DV; K += L) {
        __m512d AV = _mm512_loadu_pd(ARow + K);
        A0 = _mm512_fmadd_pd(AV, _mm512_loadu_pd(B0 + K), A0);
        A1 = _mm512_fmadd_pd(AV, _mm512_loadu_pd(B1 + K), A1);
        A2 = _mm512_fmadd_pd(AV, _mm512_loadu_pd(B2 + K), A2);
        A3 = _mm512_fmadd_pd(AV, _mm512_loadu_pd(B3 + K), A3);
      }
      S0 = reduceLanes(A0);
      S1 = reduceLanes(A1);
      S2 = reduceLanes(A2);
      S3 = reduceLanes(A3);
    }
    for (size_t K = DV; K < D; ++K) {
      double AV = ARow[K];
      S0 = std::fma(AV, B0[K], S0);
      S1 = std::fma(AV, B1[K], S1);
      S2 = std::fma(AV, B2[K], S2);
      S3 = std::fma(AV, B3[K], S3);
    }
    if (Accumulate) {
      CRow[J] += S0;
      CRow[J + 1] += S1;
      CRow[J + 2] += S2;
      CRow[J + 3] += S3;
    } else {
      CRow[J] = S0;
      CRow[J + 1] = S1;
      CRow[J + 2] = S2;
      CRow[J + 3] = S3;
    }
  }
  for (; J < M; ++J) {
    const double *BRow = B + J * D;
    double S = 0.0;
    if (DV) {
      __m512d Acc = _mm512_setzero_pd();
      for (size_t K = 0; K < DV; K += L)
        Acc = _mm512_fmadd_pd(_mm512_loadu_pd(ARow + K), _mm512_loadu_pd(BRow + K), Acc);
      S = reduceLanes(Acc);
    }
    for (size_t K = DV; K < D; ++K)
      S = std::fma(ARow[K], BRow[K], S);
    if (Accumulate)
      CRow[J] += S;
    else
      CRow[J] = S;
  }
}

// Two non-zero A rows against the same four B columns. Each output element
// keeps its own accumulator with the exact lane-ordered FMA sequence of
// avx512DotRowTB, so the bits match the one-row kernel; sharing the B loads
// across both rows halves the load traffic and makes the loop FMA-bound.
void avx512DotRow2TB(const double *ARow0, const double *ARow1, const double *B,
                     size_t M, size_t D, double *CRow0, double *CRow1,
                     bool Accumulate) {
  const size_t DV = D - D % L;
  size_t J = 0;
  for (; J + 4 <= M; J += 4) {
    const double *B0 = B + J * D, *B1 = B + (J + 1) * D;
    const double *B2 = B + (J + 2) * D, *B3 = B + (J + 3) * D;
    double S00 = 0.0, S01 = 0.0, S02 = 0.0, S03 = 0.0;
    double S10 = 0.0, S11 = 0.0, S12 = 0.0, S13 = 0.0;
    if (DV) {
      __m512d A00 = _mm512_setzero_pd(), A01 = _mm512_setzero_pd();
      __m512d A02 = _mm512_setzero_pd(), A03 = _mm512_setzero_pd();
      __m512d A10 = _mm512_setzero_pd(), A11 = _mm512_setzero_pd();
      __m512d A12 = _mm512_setzero_pd(), A13 = _mm512_setzero_pd();
      for (size_t K = 0; K < DV; K += L) {
        __m512d AV0 = _mm512_loadu_pd(ARow0 + K);
        __m512d AV1 = _mm512_loadu_pd(ARow1 + K);
        __m512d BV0 = _mm512_loadu_pd(B0 + K);
        __m512d BV1 = _mm512_loadu_pd(B1 + K);
        __m512d BV2 = _mm512_loadu_pd(B2 + K);
        __m512d BV3 = _mm512_loadu_pd(B3 + K);
        A00 = _mm512_fmadd_pd(AV0, BV0, A00);
        A01 = _mm512_fmadd_pd(AV0, BV1, A01);
        A02 = _mm512_fmadd_pd(AV0, BV2, A02);
        A03 = _mm512_fmadd_pd(AV0, BV3, A03);
        A10 = _mm512_fmadd_pd(AV1, BV0, A10);
        A11 = _mm512_fmadd_pd(AV1, BV1, A11);
        A12 = _mm512_fmadd_pd(AV1, BV2, A12);
        A13 = _mm512_fmadd_pd(AV1, BV3, A13);
      }
      S00 = reduceLanes(A00);
      S01 = reduceLanes(A01);
      S02 = reduceLanes(A02);
      S03 = reduceLanes(A03);
      S10 = reduceLanes(A10);
      S11 = reduceLanes(A11);
      S12 = reduceLanes(A12);
      S13 = reduceLanes(A13);
    }
    for (size_t K = DV; K < D; ++K) {
      double AV0 = ARow0[K], AV1 = ARow1[K];
      S00 = std::fma(AV0, B0[K], S00);
      S01 = std::fma(AV0, B1[K], S01);
      S02 = std::fma(AV0, B2[K], S02);
      S03 = std::fma(AV0, B3[K], S03);
      S10 = std::fma(AV1, B0[K], S10);
      S11 = std::fma(AV1, B1[K], S11);
      S12 = std::fma(AV1, B2[K], S12);
      S13 = std::fma(AV1, B3[K], S13);
    }
    if (Accumulate) {
      CRow0[J] += S00;
      CRow0[J + 1] += S01;
      CRow0[J + 2] += S02;
      CRow0[J + 3] += S03;
      CRow1[J] += S10;
      CRow1[J + 1] += S11;
      CRow1[J + 2] += S12;
      CRow1[J + 3] += S13;
    } else {
      CRow0[J] = S00;
      CRow0[J + 1] = S01;
      CRow0[J + 2] = S02;
      CRow0[J + 3] = S03;
      CRow1[J] = S10;
      CRow1[J + 1] = S11;
      CRow1[J + 2] = S12;
      CRow1[J + 3] = S13;
    }
  }
  for (; J < M; ++J) {
    const double *BRow = B + J * D;
    double S0 = 0.0, S1 = 0.0;
    if (DV) {
      __m512d Acc0 = _mm512_setzero_pd(), Acc1 = _mm512_setzero_pd();
      for (size_t K = 0; K < DV; K += L) {
        __m512d BV = _mm512_loadu_pd(BRow + K);
        Acc0 = _mm512_fmadd_pd(_mm512_loadu_pd(ARow0 + K), BV, Acc0);
        Acc1 = _mm512_fmadd_pd(_mm512_loadu_pd(ARow1 + K), BV, Acc1);
      }
      S0 = reduceLanes(Acc0);
      S1 = reduceLanes(Acc1);
    }
    for (size_t K = DV; K < D; ++K) {
      S0 = std::fma(ARow0[K], BRow[K], S0);
      S1 = std::fma(ARow1[K], BRow[K], S1);
    }
    if (Accumulate) {
      CRow0[J] += S0;
      CRow1[J] += S1;
    } else {
      CRow0[J] = S0;
      CRow1[J] = S1;
    }
  }
}

void avx512DotTransposedB(const double *A, size_t N, const double *B,
                          size_t M, size_t D, double *C, bool Accumulate) {
  size_t I = 0;
  while (I < N) {
    const double *ARow = A + I * D;
    double *CRow = C + I * M;
    if (allZeroRow(ARow, D)) {
      // Zero row: the output row is exactly zero, so fill it (callers may
      // pass uninitialized C) unless accumulating (+0 is an identity).
      if (!Accumulate)
        std::fill(CRow, CRow + M, 0.0);
      ++I;
      continue;
    }
    // Pair with the next row when it is also non-zero: the two rows share
    // the B loads without changing either row's reduction order.
    if (I + 1 < N && !allZeroRow(ARow + D, D)) {
      avx512DotRow2TB(ARow, ARow + D, B, M, D, CRow, CRow + M, Accumulate);
      I += 2;
      continue;
    }
    avx512DotRowTB(ARow, B, M, D, CRow, Accumulate);
    ++I;
  }
}

double avx512Dot(const double *X, const double *Y, size_t N) {
  const size_t NV = N - N % L;
  double S = 0.0;
  // All-tail shapes (N < L) skip the vector spin-up; reduceLanes of an
  // empty accumulator is exactly +0.0, so the bits are unchanged.
  if (NV) {
    __m512d Acc = _mm512_setzero_pd();
    for (size_t K = 0; K < NV; K += L)
      Acc = _mm512_fmadd_pd(_mm512_loadu_pd(X + K), _mm512_loadu_pd(Y + K), Acc);
    S = reduceLanes(Acc);
  }
  for (size_t K = NV; K < N; ++K)
    S = std::fma(X[K], Y[K], S);
  return S;
}

double avx512Sum(const double *X, size_t N) {
  const size_t NV = N - N % L;
  double S = 0.0;
  if (NV) {
    __m512d Acc = _mm512_setzero_pd();
    for (size_t K = 0; K < NV; K += L)
      Acc = _mm512_add_pd(Acc, _mm512_loadu_pd(X + K));
    S = reduceLanes(Acc);
  }
  for (size_t K = NV; K < N; ++K)
    S += X[K];
  return S;
}

void avx512Axpy(double A, const double *X, double *Y, size_t N) {
  const size_t NV = N - N % L;
  __m512d AV = _mm512_set1_pd(A);
  for (size_t I = 0; I < NV; I += L)
    _mm512_storeu_pd(Y + I,
                     _mm512_add_pd(_mm512_loadu_pd(Y + I),
                                   _mm512_mul_pd(AV, _mm512_loadu_pd(X + I))));
  for (size_t I = NV; I < N; ++I)
    Y[I] += A * X[I];
}

void avx512Axpy4(const double *V, const double *B, double *C0, double *C1,
                 double *C2, double *C3, size_t M) {
  const size_t MV = M - M % L;
  __m512d V0 = _mm512_set1_pd(V[0]), V1 = _mm512_set1_pd(V[1]);
  __m512d V2 = _mm512_set1_pd(V[2]), V3 = _mm512_set1_pd(V[3]);
  for (size_t J = 0; J < MV; J += L) {
    __m512d BV = _mm512_loadu_pd(B + J);
    _mm512_storeu_pd(C0 + J, _mm512_add_pd(_mm512_loadu_pd(C0 + J),
                                           _mm512_mul_pd(V0, BV)));
    _mm512_storeu_pd(C1 + J, _mm512_add_pd(_mm512_loadu_pd(C1 + J),
                                           _mm512_mul_pd(V1, BV)));
    _mm512_storeu_pd(C2 + J, _mm512_add_pd(_mm512_loadu_pd(C2 + J),
                                           _mm512_mul_pd(V2, BV)));
    _mm512_storeu_pd(C3 + J, _mm512_add_pd(_mm512_loadu_pd(C3 + J),
                                           _mm512_mul_pd(V3, BV)));
  }
  for (size_t J = MV; J < M; ++J) {
    double BV = B[J];
    C0[J] += V[0] * BV;
    C1[J] += V[1] * BV;
    C2[J] += V[2] * BV;
    C3[J] += V[3] * BV;
  }
}

void avx512SubScale(const double *X, double Mean, const double *G,
                    double *Out, size_t N) {
  const size_t NV = N - N % L;
  __m512d MV = _mm512_set1_pd(Mean);
  for (size_t I = 0; I < NV; I += L)
    _mm512_storeu_pd(Out + I,
                     _mm512_mul_pd(_mm512_sub_pd(_mm512_loadu_pd(X + I), MV),
                                   _mm512_loadu_pd(G + I)));
  for (size_t I = NV; I < N; ++I)
    Out[I] = (X[I] - Mean) * G[I];
}

void avx512AbsRow(const double *X, double *Out, size_t N) {
  const size_t NV = N - N % L;
  for (size_t I = 0; I < NV; I += L)
    _mm512_storeu_pd(Out + I, _mm512_abs_pd(_mm512_loadu_pd(X + I)));
  for (size_t I = NV; I < N; ++I)
    Out[I] = std::fabs(X[I]);
}

void avx512AccAbs(const double *X, double *Acc, size_t N) {
  const size_t NV = N - N % L;
  for (size_t I = 0; I < NV; I += L)
    _mm512_storeu_pd(Acc + I,
                     _mm512_add_pd(_mm512_loadu_pd(Acc + I),
                                   _mm512_abs_pd(_mm512_loadu_pd(X + I))));
  for (size_t I = NV; I < N; ++I)
    Acc[I] += std::fabs(X[I]);
}

void avx512AccSq(const double *X, double *Acc, size_t N) {
  const size_t NV = N - N % L;
  for (size_t I = 0; I < NV; I += L) {
    __m512d XV = _mm512_loadu_pd(X + I);
    _mm512_storeu_pd(Acc + I, _mm512_add_pd(_mm512_loadu_pd(Acc + I),
                                            _mm512_mul_pd(XV, XV)));
  }
  for (size_t I = NV; I < N; ++I)
    Acc[I] += X[I] * X[I];
}

void avx512AccMaxAbs(const double *X, double *Acc, size_t N) {
  const size_t NV = N - N % L;
  for (size_t I = 0; I < NV; I += L)
    _mm512_storeu_pd(Acc + I,
                     _mm512_max_pd(_mm512_loadu_pd(Acc + I),
                                   _mm512_abs_pd(_mm512_loadu_pd(X + I))));
  for (size_t I = NV; I < N; ++I)
    Acc[I] = std::max(Acc[I], std::fabs(X[I]));
}

void avx512AccAbsF32(const double *X, float *Acc, size_t N) {
  const size_t NV = N - N % L;
  for (size_t I = 0; I < NV; I += L) {
    __m256 XF = _mm512_cvtpd_ps(_mm512_abs_pd(_mm512_loadu_pd(X + I)));
    _mm256_storeu_ps(Acc + I, _mm256_add_ps(_mm256_loadu_ps(Acc + I), XF));
  }
  for (size_t I = NV; I < N; ++I)
    Acc[I] += static_cast<float>(std::fabs(X[I]));
}

void avx512AccSqF32(const double *X, float *Acc, size_t N) {
  const size_t NV = N - N % L;
  for (size_t I = 0; I < NV; I += L) {
    __m256 XF = _mm512_cvtpd_ps(_mm512_loadu_pd(X + I));
    _mm256_storeu_ps(Acc + I, _mm256_add_ps(_mm256_loadu_ps(Acc + I),
                                            _mm256_mul_ps(XF, XF)));
  }
  for (size_t I = NV; I < N; ++I) {
    float V = static_cast<float>(X[I]);
    Acc[I] += V * V;
  }
}

void avx512AccMaxAbsF32(const double *X, float *Acc, size_t N) {
  const size_t NV = N - N % L;
  for (size_t I = 0; I < NV; I += L) {
    __m256 XF = _mm512_cvtpd_ps(_mm512_abs_pd(_mm512_loadu_pd(X + I)));
    _mm256_storeu_ps(Acc + I, _mm256_max_ps(_mm256_loadu_ps(Acc + I), XF));
  }
  for (size_t I = NV; I < N; ++I)
    Acc[I] = std::max(Acc[I], static_cast<float>(std::fabs(X[I])));
}

} // namespace

// extern: const at namespace scope would otherwise get internal linkage,
// and the dispatcher in Kernels.cpp references this table by name.
extern const Kernels Avx512Kernels;
void avx512RowSums(const double *X, size_t R, size_t C, double *O) {
  for (size_t Q = 0; Q < R; ++Q)
    O[Q] = avx512Sum(X + Q * C, C);
}

void avx512Axpy4K(const double *A0, const double *A1, const double *A2,
                  const double *A3, size_t K0, size_t K1, const double *B,
                  double *C0, double *C1, double *C2, double *C3, size_t M) {
  for (size_t Kk = K0; Kk < K1; ++Kk) {
    double V[4] = {A0[Kk], A1[Kk], A2[Kk], A3[Kk]};
    avx512Axpy4(V, B + Kk * M, C0, C1, C2, C3, M);
  }
}

void avx512CascadeDense(const double *A, size_t S, size_t StrideA,
                        const double *B, size_t M, size_t D, double Q,
                        double *AbsS, double *T, double *Acc) {
  for (size_t Sym = 0; Sym < S; ++Sym) {
    avx512AbsRow(A + Sym * StrideA, AbsS, D);
    bool AllZero = true;
    for (size_t K = 0; K < D && AllZero; ++K)
      AllZero = AbsS[K] == 0.0;
    if (AllZero)
      continue;
    avx512DotTransposedB(AbsS, 1, B, M, D, T, /*Accumulate=*/false);
    if (Q == 1.0)
      avx512Axpy(1.0, T, Acc, M);
    else if (Q == 2.0)
      avx512AccSq(T, Acc, M);
    else
      avx512AccMaxAbs(T, Acc, M);
  }
}

void avx512DotPlanesTransposedB(const double *A, size_t StrideA, size_t N,
                                const double *B, size_t StrideB, size_t M,
                                size_t D, size_t S, double *C, size_t StrideC,
                                bool Accumulate, double *Pack) {
  if (!S || !N)
    return;
  // Pack the shared panel once into the aligned scratch (a bit copy, so
  // every dot against the packed rows reproduces the unpacked bits); a
  // shared A panel also hoists the per-row zero-skip flags, scanned once
  // here instead of once per plane.
  const double *Flags = nullptr;
  if (Pack) {
    double *P = detail::alignPack64(Pack);
    if (StrideA == 0) {
      double *F = P;
      double *Panel = P + N;
      std::copy(A, A + N * D, Panel);
      for (size_t I = 0; I < N; ++I)
        F[I] = allZeroRow(A + I * D, D) ? 0.0 : 1.0;
      A = Panel;
      Flags = F;
    } else if (StrideB == 0 && M) {
      std::copy(B, B + M * D, P);
      B = P;
    }
  }
  for (size_t Sym = 0; Sym < S; ++Sym) {
    const double *PA = A + Sym * StrideA;
    const double *PB = B + Sym * StrideB;
    double *PC = C + Sym * StrideC;
    size_t I = 0;
    while (I < N) {
      const double *ARow = PA + I * D;
      double *CRow = PC + I * M;
      if (Flags ? Flags[I] == 0.0 : allZeroRow(ARow, D)) {
        if (!Accumulate)
          std::fill(CRow, CRow + M, 0.0);
        ++I;
        continue;
      }
      // Pair with the next non-zero row so both share the B-panel loads;
      // each row keeps its own accumulators, so the bits are unchanged.
      if (I + 1 < N &&
          (Flags ? Flags[I + 1] != 0.0 : !allZeroRow(ARow + D, D))) {
        avx512DotRow2TB(ARow, ARow + D, PB, M, D, CRow, CRow + M, Accumulate);
        I += 2;
        continue;
      }
      avx512DotRowTB(ARow, PB, M, D, CRow, Accumulate);
      ++I;
    }
  }
}

void avx512RowScale(const double *Lambda, double *Rows, size_t R,
                    size_t Stride, size_t N) {
  const size_t NV = N - N % L;
  for (size_t Q = 0; Q < R; ++Q) {
    double *Row = Rows + Q * Stride;
    for (size_t I = 0; I < NV; I += L)
      _mm512_storeu_pd(Row + I, _mm512_mul_pd(_mm512_loadu_pd(Row + I),
                                              _mm512_loadu_pd(Lambda + I)));
    for (size_t I = NV; I < N; ++I)
      Row[I] *= Lambda[I];
  }
}

const Kernels Avx512Kernels = {
    Isa::Avx512,      /*Lanes=*/L,     avx512DotTransposedB,
    avx512Dot,        avx512Sum,       avx512Axpy,
    avx512Axpy4,      avx512SubScale,  avx512AbsRow,
    avx512AccAbs,     avx512AccSq,     avx512AccMaxAbs,
    avx512AccAbsF32,  avx512AccSqF32,  avx512AccMaxAbsF32,
    avx512RowSums,    avx512Axpy4K,    avx512CascadeDense,
    avx512DotPlanesTransposedB,        avx512RowScale,
};

} // namespace detail
} // namespace tensor
} // namespace deept

#endif // DEEPT_HAVE_AVX512
