//===- tensor/Kernels.cpp - Scalar kernels and ISA dispatch ----*- C++ -*-===//

#include "tensor/Kernels.h"

#include "support/Metrics.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <vector>

using namespace deept;
using namespace deept::tensor;

//===----------------------------------------------------------------------===//
// Scalar kernels (bit-preserve the pre-SIMD open-coded loops)
//===----------------------------------------------------------------------===//

namespace {

bool allZeroRow(const double *P, size_t N) {
  for (size_t I = 0; I < N; ++I)
    if (P[I] != 0.0)
      return false;
  return true;
}

// One non-zero A row of the A * B^T kernel: four B rows share each loaded
// A element, ascending-k accumulation per output element (the historical
// dotKernelTransposedB loop). Shared between the per-plane and the
// whole-plane kernels so both produce the same bits.
void scalarDotRowTB(const double *ARow, const double *B, size_t M, size_t D,
                    double *CRow, bool Accumulate) {
  size_t J = 0;
  for (; J + 4 <= M; J += 4) {
    const double *B0 = B + J * D, *B1 = B + (J + 1) * D;
    const double *B2 = B + (J + 2) * D, *B3 = B + (J + 3) * D;
    double S0 = 0.0, S1 = 0.0, S2 = 0.0, S3 = 0.0;
    for (size_t Kk = 0; Kk < D; ++Kk) {
      double AV = ARow[Kk];
      S0 += AV * B0[Kk];
      S1 += AV * B1[Kk];
      S2 += AV * B2[Kk];
      S3 += AV * B3[Kk];
    }
    if (Accumulate) {
      CRow[J] += S0;
      CRow[J + 1] += S1;
      CRow[J + 2] += S2;
      CRow[J + 3] += S3;
    } else {
      CRow[J] = S0;
      CRow[J + 1] = S1;
      CRow[J + 2] = S2;
      CRow[J + 3] = S3;
    }
  }
  for (; J < M; ++J) {
    const double *BRow = B + J * D;
    double S = 0.0;
    for (size_t Kk = 0; Kk < D; ++Kk)
      S += ARow[Kk] * BRow[Kk];
    if (Accumulate)
      CRow[J] += S;
    else
      CRow[J] = S;
  }
}

void scalarDotTransposedB(const double *A, size_t N, const double *B,
                          size_t M, size_t D, double *C, bool Accumulate) {
  for (size_t I = 0; I < N; ++I) {
    const double *ARow = A + I * D;
    double *CRow = C + I * M;
    if (allZeroRow(ARow, D)) {
      // Zero row: the output row is exactly zero, so fill it (callers may
      // pass uninitialized C) unless accumulating (+0 is an identity).
      if (!Accumulate)
        std::fill(CRow, CRow + M, 0.0);
      continue;
    }
    scalarDotRowTB(ARow, B, M, D, CRow, Accumulate);
  }
}

double scalarDot(const double *X, const double *Y, size_t N) {
  double S = 0.0;
  for (size_t I = 0; I < N; ++I)
    S += X[I] * Y[I];
  return S;
}

double scalarSum(const double *X, size_t N) {
  double S = 0.0;
  for (size_t I = 0; I < N; ++I)
    S += X[I];
  return S;
}

void scalarAxpy(double A, const double *X, double *Y, size_t N) {
  for (size_t I = 0; I < N; ++I)
    Y[I] += A * X[I];
}

void scalarAxpy4(const double *V, const double *B, double *C0, double *C1,
                 double *C2, double *C3, size_t M) {
  double V0 = V[0], V1 = V[1], V2 = V[2], V3 = V[3];
  for (size_t J = 0; J < M; ++J) {
    double BV = B[J];
    C0[J] += V0 * BV;
    C1[J] += V1 * BV;
    C2[J] += V2 * BV;
    C3[J] += V3 * BV;
  }
}

void scalarSubScale(const double *X, double Mean, const double *G,
                    double *Out, size_t N) {
  for (size_t I = 0; I < N; ++I)
    Out[I] = (X[I] - Mean) * G[I];
}

void scalarAbsRow(const double *X, double *Out, size_t N) {
  for (size_t I = 0; I < N; ++I)
    Out[I] = std::fabs(X[I]);
}

void scalarAccAbs(const double *X, double *Acc, size_t N) {
  for (size_t I = 0; I < N; ++I)
    Acc[I] += std::fabs(X[I]);
}

void scalarAccSq(const double *X, double *Acc, size_t N) {
  for (size_t I = 0; I < N; ++I)
    Acc[I] += X[I] * X[I];
}

void scalarAccMaxAbs(const double *X, double *Acc, size_t N) {
  for (size_t I = 0; I < N; ++I)
    Acc[I] = std::max(Acc[I], std::fabs(X[I]));
}

void scalarAccAbsF32(const double *X, float *Acc, size_t N) {
  for (size_t I = 0; I < N; ++I)
    Acc[I] += static_cast<float>(std::fabs(X[I]));
}

void scalarAccSqF32(const double *X, float *Acc, size_t N) {
  for (size_t I = 0; I < N; ++I) {
    float V = static_cast<float>(X[I]);
    Acc[I] += V * V;
  }
}

void scalarAccMaxAbsF32(const double *X, float *Acc, size_t N) {
  for (size_t I = 0; I < N; ++I)
    Acc[I] = std::max(Acc[I], static_cast<float>(std::fabs(X[I])));
}

void scalarRowSums(const double *X, size_t R, size_t C, double *O) {
  for (size_t Q = 0; Q < R; ++Q)
    O[Q] = scalarSum(X + Q * C, C);
}

void scalarAxpy4K(const double *A0, const double *A1, const double *A2,
                  const double *A3, size_t K0, size_t K1, const double *B,
                  double *C0, double *C1, double *C2, double *C3, size_t M) {
  for (size_t Kk = K0; Kk < K1; ++Kk) {
    double V[4] = {A0[Kk], A1[Kk], A2[Kk], A3[Kk]};
    scalarAxpy4(V, B + Kk * M, C0, C1, C2, C3, M);
  }
}

void scalarCascadeDense(const double *A, size_t S, size_t StrideA,
                        const double *B, size_t M, size_t D, double Q,
                        double *AbsS, double *T, double *Acc) {
  for (size_t Sym = 0; Sym < S; ++Sym) {
    scalarAbsRow(A + Sym * StrideA, AbsS, D);
    bool AllZero = true;
    for (size_t K = 0; K < D && AllZero; ++K)
      AllZero = AbsS[K] == 0.0;
    if (AllZero)
      continue;
    scalarDotTransposedB(AbsS, 1, B, M, D, T, /*Accumulate=*/false);
    if (Q == 1.0)
      scalarAxpy(1.0, T, Acc, M);
    else if (Q == 2.0)
      scalarAccSq(T, Acc, M);
    else
      scalarAccMaxAbs(T, Acc, M);
  }
}

void scalarDotPlanesTransposedB(const double *A, size_t StrideA, size_t N,
                                const double *B, size_t StrideB, size_t M,
                                size_t D, size_t S, double *C, size_t StrideC,
                                bool Accumulate, double *Pack) {
  if (!S || !N)
    return;
  // Pack the shared panel once into the aligned scratch (a bit copy, so
  // every dot against the packed rows reproduces the unpacked bits); a
  // shared A panel also hoists the per-row zero-skip flags, scanned once
  // here instead of once per plane.
  const double *Flags = nullptr;
  if (Pack) {
    double *P = detail::alignPack64(Pack);
    if (StrideA == 0) {
      double *F = P;
      double *Panel = P + N;
      std::copy(A, A + N * D, Panel);
      for (size_t I = 0; I < N; ++I)
        F[I] = allZeroRow(A + I * D, D) ? 0.0 : 1.0;
      A = Panel;
      Flags = F;
    } else if (StrideB == 0 && M) {
      std::copy(B, B + M * D, P);
      B = P;
    }
  }
  for (size_t Sym = 0; Sym < S; ++Sym) {
    const double *PA = A + Sym * StrideA;
    const double *PB = B + Sym * StrideB;
    double *PC = C + Sym * StrideC;
    for (size_t I = 0; I < N; ++I) {
      const double *ARow = PA + I * D;
      double *CRow = PC + I * M;
      if (Flags ? Flags[I] == 0.0 : allZeroRow(ARow, D)) {
        if (!Accumulate)
          std::fill(CRow, CRow + M, 0.0);
        continue;
      }
      scalarDotRowTB(ARow, PB, M, D, CRow, Accumulate);
    }
  }
}

void scalarRowScale(const double *Lambda, double *Rows, size_t R,
                    size_t Stride, size_t N) {
  for (size_t Q = 0; Q < R; ++Q) {
    double *Row = Rows + Q * Stride;
    for (size_t I = 0; I < N; ++I)
      Row[I] *= Lambda[I];
  }
}

constexpr Kernels ScalarKernels = {
    Isa::Scalar,      /*Lanes=*/1,    scalarDotTransposedB,
    scalarDot,        scalarSum,      scalarAxpy,
    scalarAxpy4,      scalarSubScale, scalarAbsRow,
    scalarAccAbs,     scalarAccSq,    scalarAccMaxAbs,
    scalarAccAbsF32,  scalarAccSqF32, scalarAccMaxAbsF32,
    scalarRowSums,    scalarAxpy4K,   scalarCascadeDense,
    scalarDotPlanesTransposedB,       scalarRowScale,
};

} // namespace

//===----------------------------------------------------------------------===//
// Lane-order emulation (test reference)
//===----------------------------------------------------------------------===//

double tensor::detail::dotLanes(const double *X, const double *Y, size_t N,
                                size_t Lanes) {
  if (Lanes <= 1)
    return scalarDot(X, Y, N);
  std::vector<double> L(Lanes, 0.0);
  size_t NV = N - N % Lanes;
  for (size_t K = 0; K < NV; ++K)
    L[K % Lanes] = std::fma(X[K], Y[K], L[K % Lanes]);
  for (size_t W = Lanes; W > 1; W /= 2)
    for (size_t I = 0; I < W / 2; ++I)
      L[I] += L[I + W / 2];
  double S = L[0];
  for (size_t K = NV; K < N; ++K)
    S = std::fma(X[K], Y[K], S);
  return S;
}

double tensor::detail::sumLanes(const double *X, size_t N, size_t Lanes) {
  if (Lanes <= 1)
    return scalarSum(X, N);
  std::vector<double> L(Lanes, 0.0);
  size_t NV = N - N % Lanes;
  for (size_t K = 0; K < NV; ++K)
    L[K % Lanes] += X[K];
  for (size_t W = Lanes; W > 1; W /= 2)
    for (size_t I = 0; I < W / 2; ++I)
      L[I] += L[I + W / 2];
  double S = L[0];
  for (size_t K = NV; K < N; ++K)
    S += X[K];
  return S;
}

//===----------------------------------------------------------------------===//
// Dispatch
//===----------------------------------------------------------------------===//

#if DEEPT_HAVE_AVX2
namespace deept {
namespace tensor {
namespace detail {
extern const Kernels Avx2Kernels; // KernelsAvx2.cpp
}
} // namespace tensor
} // namespace deept
#endif
#if DEEPT_HAVE_AVX512
namespace deept {
namespace tensor {
namespace detail {
extern const Kernels Avx512Kernels; // KernelsAvx512.cpp
}
} // namespace tensor
} // namespace deept
#endif

namespace {

bool cpuSupports(Isa I) {
#if defined(__x86_64__) || defined(_M_X64)
  switch (I) {
  case Isa::Scalar:
    return true;
  case Isa::Avx2:
    return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
  case Isa::Avx512:
    return __builtin_cpu_supports("avx512f") &&
           __builtin_cpu_supports("avx512dq") &&
           __builtin_cpu_supports("avx512vl");
  }
  return false;
#else
  return I == Isa::Scalar;
#endif
}

const Kernels *tableFor(Isa I) {
  switch (I) {
  case Isa::Scalar:
    return &ScalarKernels;
  case Isa::Avx2:
#if DEEPT_HAVE_AVX2
    return &tensor::detail::Avx2Kernels;
#else
    return nullptr;
#endif
  case Isa::Avx512:
#if DEEPT_HAVE_AVX512
    return &tensor::detail::Avx512Kernels;
#else
    return nullptr;
#endif
  }
  return nullptr;
}

/// The dispatched table. Readers load relaxed (the tables are immutable
/// constants); writers go through setIsa, which must not race a parallel
/// region.
std::atomic<const Kernels *> Current{nullptr};

void publishIsa(const Kernels *T) {
  Current.store(T, std::memory_order_release);
  support::Metrics::global()
      .gauge("kernel.isa")
      .set(static_cast<double>(static_cast<int>(T->Tag)));
  // Pre-register the per-ISA GEMM tile histogram so it appears in metric
  // snapshots even when every GEMM stays under the parallel threshold.
  support::Metrics::global().histogram(std::string("gemm.tile_ms.") +
                                       isaName(T->Tag));
}

/// Resolves the initial ISA: DEEPT_ISA when set (strict; malformed or
/// unavailable values abort with a clear error, matching DEEPT_THREADS),
/// else the widest available.
const Kernels *resolveInitial() {
  Isa I = bestAvailableIsa();
  if (const char *Env = std::getenv("DEEPT_ISA")) {
    std::string Err;
    if (!parseIsa(Env, I, &Err)) {
      std::fprintf(stderr, "error: DEEPT_ISA %s\n", Err.c_str());
      std::exit(2);
    }
    if (!isaAvailable(I)) {
      std::fprintf(stderr,
                   "error: DEEPT_ISA '%s' is not available on this machine "
                   "(best available: %s)\n",
                   isaName(I), isaName(bestAvailableIsa()));
      std::exit(2);
    }
  }
  return tableFor(I);
}

std::once_flag InitOnce;

} // namespace

const Kernels &tensor::kernels() {
  const Kernels *T = Current.load(std::memory_order_acquire);
  if (T)
    return *T;
  std::call_once(InitOnce, [] { publishIsa(resolveInitial()); });
  return *Current.load(std::memory_order_acquire);
}

Isa tensor::currentIsa() { return kernels().Tag; }

const char *tensor::isaName(Isa I) {
  switch (I) {
  case Isa::Scalar:
    return "scalar";
  case Isa::Avx2:
    return "avx2";
  case Isa::Avx512:
    return "avx512";
  }
  return "scalar";
}

bool tensor::parseIsa(const std::string &Text, Isa &Out, std::string *Err) {
  if (Text == "scalar") {
    Out = Isa::Scalar;
    return true;
  }
  if (Text == "avx2") {
    Out = Isa::Avx2;
    return true;
  }
  if (Text == "avx512") {
    Out = Isa::Avx512;
    return true;
  }
  if (Text == "native") {
    Out = bestAvailableIsa();
    return true;
  }
  if (Err)
    *Err = "expects 'scalar', 'avx2', 'avx512' or 'native', got '" + Text +
           "'";
  return false;
}

bool tensor::isaAvailable(Isa I) {
  return tableFor(I) != nullptr && cpuSupports(I);
}

Isa tensor::bestAvailableIsa() {
  if (isaAvailable(Isa::Avx512))
    return Isa::Avx512;
  if (isaAvailable(Isa::Avx2))
    return Isa::Avx2;
  return Isa::Scalar;
}

bool tensor::setIsa(Isa I, std::string *Err) {
  if (!isaAvailable(I)) {
    if (Err)
      *Err = std::string("isa '") + isaName(I) +
             "' is not available on this machine (best available: " +
             isaName(bestAvailableIsa()) + ")";
    return false;
  }
  // Make sure lazy env resolution has happened exactly once before an
  // explicit override, so a later reset cannot resurrect DEEPT_ISA.
  (void)kernels();
  publishIsa(tableFor(I));
  return true;
}
