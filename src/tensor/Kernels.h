//===- tensor/Kernels.h - Runtime-dispatched SIMD kernels ------*- C++ -*-===//
//
// Part of deept-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The SIMD execution layer: a small vtable of pointer-level kernels with
/// scalar, AVX2+FMA and AVX-512 implementations, selected once at runtime
/// from CPU features (overridable via the DEEPT_ISA environment variable
/// or the --isa flag). The zonotope transformers, the GEMM variants and
/// the dual-norm reductions dispatch through kernels() instead of open-
/// coding their inner loops.
///
/// Determinism contract (per ISA): every kernel is a pure function of its
/// inputs -- no thread-count or scheduling dependence -- so results stay
/// bit-identical at any thread count *within* an ISA. Different ISAs may
/// differ by ulps in the reduction kernels (Dot / Sum / DotTransposedB /
/// DotPlanesTransposedB),
/// which accumulate in L lanes (scalar L=1, AVX2 L=4, AVX-512 L=8):
/// element k feeds lane k % L via FMA, lanes reduce pairwise in the fixed
/// order detail::dotLanes documents, and the tail (k >= N - N % L)
/// FMA-accumulates serially onto the lane total. detail::dotLanes /
/// sumLanes reproduce this order exactly in scalar code, so tests can
/// assert 0-ULP equality against each SIMD implementation. The remaining
/// kernels are elementwise (one fixed rounding sequence per element, no
/// reassociation) and produce identical bits on every ISA.
///
/// The F32 accumulator variants (AccAbsF32 / AccSqF32 / AccMaxAbsF32)
/// back the sound reduced-precision mode: they accumulate into float, and
/// the caller converts back with an upward correction covering every
/// rounding the narrow accumulation could have committed (see DESIGN.md
/// "SIMD execution layer" for the soundness argument).
///
//===----------------------------------------------------------------------===//

#ifndef DEEPT_TENSOR_KERNELS_H
#define DEEPT_TENSOR_KERNELS_H

#include <cstddef>
#include <cstdint>
#include <string>

namespace deept {
namespace tensor {

/// Instruction sets the dispatcher can select. Numeric order is
/// preference order (higher is wider).
enum class Isa : int {
  Scalar = 0, ///< Portable C++; bit-preserves the pre-SIMD kernels.
  Avx2 = 1,   ///< AVX2 + FMA, 4 doubles per vector.
  Avx512 = 2, ///< AVX-512 F/DQ/VL, 8 doubles per vector.
};

/// The kernel vtable. All pointers are always non-null; an unsupported
/// ISA simply cannot be selected.
struct Kernels {
  Isa Tag = Isa::Scalar;
  /// Reduction lane count L of Dot / Sum / DotTransposedB (1, 4 or 8).
  size_t Lanes = 1;

  /// C[i*M + j] (+)= sum_k A[i*D + k] * B[j*D + k]: the pointer-level
  /// A * B^T row kernel. Rows of A that are entirely zero short-circuit:
  /// the output row is zero-filled when not accumulating (so C may start
  /// uninitialized) and left untouched when accumulating. The contraction
  /// is lane-ordered per output element.
  void (*DotTransposedB)(const double *A, size_t N, const double *B,
                         size_t M, size_t D, double *C, bool Accumulate);

  /// Lane-ordered dot product of two length-N rows.
  double (*Dot)(const double *X, const double *Y, size_t N);

  /// Lane-ordered sum of a length-N row (plain adds, no FMA).
  double (*Sum)(const double *X, size_t N);

  /// Y[i] += A * X[i]. Elementwise (mul then add per element, matching
  /// the scalar kernel exactly on every ISA).
  void (*Axpy)(double A, const double *X, double *Y, size_t N);

  /// C{r}[j] += V[r] * B[j] for r in 0..3: the register-blocked GEMM
  /// inner loop (four output rows share each loaded B element).
  void (*Axpy4)(const double *V, const double *B, double *C0, double *C1,
                double *C2, double *C3, size_t M);

  /// Out[i] = (X[i] - Mean) * G[i] (the fused layer-norm row kernel).
  void (*SubScale)(const double *X, double Mean, const double *G,
                   double *Out, size_t N);

  /// Out[i] = |X[i]|.
  void (*AbsRow)(const double *X, double *Out, size_t N);

  /// Acc[i] += |X[i]|  /  Acc[i] += X[i]*X[i]  /
  /// Acc[i] = max(Acc[i], |X[i]|): the dual-norm accumulators.
  void (*AccAbs)(const double *X, double *Acc, size_t N);
  void (*AccSq)(const double *X, double *Acc, size_t N);
  void (*AccMaxAbs)(const double *X, double *Acc, size_t N);

  /// Float-accumulator variants for the sound reduced-precision mode.
  void (*AccAbsF32)(const double *X, float *Acc, size_t N);
  void (*AccSqF32)(const double *X, float *Acc, size_t N);
  void (*AccMaxAbsF32)(const double *X, float *Acc, size_t N);

  /// O[q] = Sum(X + q * C, C) for q in 0..R-1: one dispatch for a whole
  /// block of short rows. Bit-identical to calling Sum per row -- the
  /// fusion only removes per-row indirect-call overhead (the row sums of
  /// softmax denominators are ~sentence-length, where the call costs as
  /// much as the add loop).
  void (*RowSums)(const double *X, size_t R, size_t C, double *O);

  /// C{r}[j] += A{r}[k] * B[k * M + j] for k in [K0, K1) ascending: the
  /// K-fused GEMM inner loop. Bit-identical to calling Axpy4 once per k
  /// (elementwise mul-then-add per element, no reassociation); one
  /// dispatch per register block instead of one per k.
  void (*Axpy4K)(const double *A0, const double *A1, const double *A2,
                 const double *A3, size_t K0, size_t K1, const double *B,
                 double *C0, double *C1, double *C2, double *C3, size_t M);

  /// The fused Eq. 5 cascade over one dense block and one outer row: for
  /// s in 0..S-1, with slice A + s * StrideA (length D),
  ///   AbsS[k] = |slice[k]|;               (AbsRow)
  ///   skip s when AbsS is all zero;
  ///   T[j] = lane-ordered AbsS . B[j];    (1-row DotTransposedB)
  ///   Q == 1: Acc[j] += T[j]  /  Q == 2: Acc[j] += T[j]^2  /
  ///   else:   Acc[j] = max(Acc[j], T[j]).
  /// Bit-identical to the unfused AbsRow / DotTransposedB / AccSq /
  /// AccMaxAbs / Axpy(1.0) sequence per symbol; fusing removes ~4
  /// indirect dispatches per (row, symbol) pair, the dominant call-count
  /// in the fast dot-product bound. AbsS (D) and T (M) are caller scratch.
  void (*CascadeDense)(const double *A, size_t S, size_t StrideA,
                       const double *B, size_t M, size_t D, double Q,
                       double *AbsS, double *T, double *Acc);

  /// Whole-plane fused coefficient kernel (the dotRows symbol loop): for
  /// plane s in 0..S-1,
  ///   C + s * StrideC  (+)=  PA(s) * PB(s)^T
  /// where PA(s) is the N x D matrix at A + s * StrideA and PB(s) the
  /// M x D matrix at B + s * StrideB. A stride of 0 marks that panel as
  /// shared by every plane: the kernel copies it once into \p Pack
  /// (caller scratch of dotPlanesPackDoubles() doubles, 64-byte aligned
  /// internally) and streams all planes through the cache-resident copy;
  /// a shared A panel additionally hoists its per-row zero-skip flags so
  /// they are scanned once instead of once per plane. Packing is a bit
  /// copy and the per-element contraction is exactly DotTransposedB's
  /// lane order, so the result is bit-identical to S individual
  /// DotTransposedB calls (including the zero-row fill/skip contract).
  /// Pack may be null, in which case panels are streamed unpacked (still
  /// bit-identical, just slower).
  void (*DotPlanesTransposedB)(const double *A, size_t StrideA, size_t N,
                               const double *B, size_t StrideB, size_t M,
                               size_t D, size_t S, double *C, size_t StrideC,
                               bool Accumulate, double *Pack);

  /// Row[i] *= Lambda[i] for each of R rows at Rows + r * Stride: the
  /// broadcast row-scale behind Zonotope::scalePerVarInPlace. Elementwise
  /// (one multiply per element), so bit-identical on every ISA.
  void (*RowScale)(const double *Lambda, double *Rows, size_t R,
                   size_t Stride, size_t N);
};

/// Scratch doubles a DotPlanesTransposedB call needs for its packed
/// shared panel: the shared-A case stores N hoisted zero-row flags ahead
/// of the N x D panel, the shared-B case just the M x D panel; both pad 8
/// doubles so the kernel can 64-byte align the buffer. Covers either
/// sharing direction, so one buffer serves both halves of a plane run.
inline size_t dotPlanesPackDoubles(size_t N, size_t M, size_t D) {
  size_t APanel = N * D + N, BPanel = M * D;
  return (APanel > BPanel ? APanel : BPanel) + 8;
}

/// The currently dispatched kernel table. The first call resolves the
/// ISA: DEEPT_ISA when set (malformed or unavailable values abort with a
/// clear error, like DEEPT_THREADS), else the widest ISA this binary was
/// compiled with that the CPU supports.
const Kernels &kernels();

/// The Isa tag of kernels().
Isa currentIsa();

/// Canonical lower-case name ("scalar", "avx2", "avx512").
const char *isaName(Isa I);

/// Strict parse of an ISA name: "scalar", "avx2", "avx512" or "native"
/// (the widest available). Returns false and fills \p Err for anything
/// else -- the --isa flag and DEEPT_ISA go through this so typos fail
/// loudly instead of silently running scalar.
bool parseIsa(const std::string &Text, Isa &Out, std::string *Err = nullptr);

/// True when \p I was compiled into this binary and the CPU supports it.
bool isaAvailable(Isa I);

/// The widest available ISA (what "native" resolves to).
Isa bestAvailableIsa();

/// Switches the dispatched table to \p I. Fails (returning false and
/// filling \p Err) when the ISA is not available; on success updates the
/// kernel.isa gauge. Must not be called from inside a parallel region.
bool setIsa(Isa I, std::string *Err = nullptr);

namespace detail {

/// 64-byte aligns a caller-provided DotPlanesTransposedB pack buffer
/// (dotPlanesPackDoubles reserves the 8-double slack this may consume).
inline double *alignPack64(double *P) {
  return reinterpret_cast<double *>(
      (reinterpret_cast<std::uintptr_t>(P) + 63) & ~std::uintptr_t(63));
}

/// Scalar emulation of the lane-ordered FMA dot product the SIMD kernels
/// implement: element k accumulates into lane k % Lanes via fma; lanes
/// then reduce pairwise (lane i adds lane i + W/2, halving W until one
/// lane remains -- exactly the vector-extract-and-add cascade of the
/// AVX2/AVX-512 horizontal sums); the tail FMA-accumulates serially.
/// Lanes == 1 reproduces the scalar kernel (plain mul + add, no FMA).
double dotLanes(const double *X, const double *Y, size_t N, size_t Lanes);

/// Lane-ordered plain-add sum with the same reduction order.
double sumLanes(const double *X, size_t N, size_t Lanes);

/// Upward-corrected lift of a float accumulator holding the sum of
/// \p Terms nonnegative terms back to double. Every error the narrow
/// accumulation can commit is covered:
///  - each double->float conversion and each float add rounds to nearest
///    with relative error <= 2^-24, so after Terms adds the computed sum
///    is >= true / (1 + Terms * 2^-23); the (Terms + 8) * 2^-23 blowup
///    strictly dominates that (and the +8 covers the lane-reassociation
///    slack of the SIMD accumulators);
///  - a term too small for a float subnormal (< ~7e-46) flushes to zero;
///    the absolute Terms * 1e-38 tail over-covers every such loss;
///  - overflow saturates to +inf, which is trivially an upper bound.
/// The result therefore upper-bounds both the true sum and what the f64
/// kernels would have computed, which is what makes the f32 interval
/// enclose the f64 interval (DESIGN.md "SIMD execution layer").
inline double f32SumUpper(float Acc, size_t Terms) {
  return static_cast<double>(Acc) *
             (1.0 + static_cast<double>(Terms + 8) * 0x1p-23) +
         static_cast<double>(Terms) * 1e-38;
}

/// Upward-corrected lift of a float running max: only the per-element
/// double->float conversion rounds (<= 2^-24 relative), plus the
/// subnormal-flush absolute tail.
inline double f32MaxUpper(float Acc) {
  return static_cast<double>(Acc) * (1.0 + 0x1p-23) + 1e-38;
}

} // namespace detail

} // namespace tensor
} // namespace deept

#endif // DEEPT_TENSOR_KERNELS_H
