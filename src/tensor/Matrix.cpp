//===- tensor/Matrix.cpp --------------------------------------*- C++ -*-===//

#include "tensor/Matrix.h"

#include "support/Metrics.h"
#include "tensor/Kernels.h"
#include "support/Rng.h"
#include "support/Timer.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <vector>

using namespace deept;
using namespace deept::tensor;

Matrix::Matrix(size_t Rows, size_t Cols, double Fill)
    : NumRows(Rows), NumCols(Cols), Data(Rows * Cols, Fill) {}

Matrix Matrix::uninit(size_t Rows, size_t Cols) {
  Matrix M;
  M.NumRows = Rows;
  M.NumCols = Cols;
  // Default-insertion through NoInitAllocator: no zero-fill.
  M.Data.resize(Rows * Cols);
  return M;
}

Matrix Matrix::fromRows(const std::vector<std::vector<double>> &RowData) {
  if (RowData.empty())
    return Matrix();
  Matrix M(RowData.size(), RowData.front().size());
  for (size_t R = 0; R < RowData.size(); ++R) {
    assert(RowData[R].size() == M.NumCols && "ragged row data");
    std::copy(RowData[R].begin(), RowData[R].end(), M.rowPtr(R));
  }
  return M;
}

Matrix Matrix::rowVector(const std::vector<double> &Values) {
  Matrix M(1, Values.size());
  std::copy(Values.begin(), Values.end(), M.data());
  return M;
}

Matrix Matrix::identity(size_t N) {
  Matrix M(N, N);
  for (size_t I = 0; I < N; ++I)
    M.at(I, I) = 1.0;
  return M;
}

Matrix Matrix::randn(size_t Rows, size_t Cols, support::Rng &Rng,
                     double Stddev) {
  Matrix M(Rows, Cols);
  for (size_t I = 0; I < M.size(); ++I)
    M.Data[I] = Rng.gaussian(0.0, Stddev);
  return M;
}

Matrix Matrix::uniform(size_t Rows, size_t Cols, support::Rng &Rng, double Lo,
                       double Hi) {
  Matrix M(Rows, Cols);
  for (size_t I = 0; I < M.size(); ++I)
    M.Data[I] = Rng.uniform(Lo, Hi);
  return M;
}

Matrix Matrix::reshaped(size_t Rows, size_t Cols) const & {
  assert(Rows * Cols == size() && "reshape must preserve element count");
  Matrix M = *this;
  M.NumRows = Rows;
  M.NumCols = Cols;
  return M;
}

Matrix Matrix::reshaped(size_t Rows, size_t Cols) && {
  assert(Rows * Cols == size() && "reshape must preserve element count");
  Matrix M = std::move(*this);
  M.NumRows = Rows;
  M.NumCols = Cols;
  return M;
}

Matrix Matrix::transposed() const {
  Matrix T = Matrix::uninit(NumCols, NumRows);
  for (size_t R = 0; R < NumRows; ++R)
    for (size_t C = 0; C < NumCols; ++C)
      T.at(C, R) = at(R, C);
  return T;
}

Matrix Matrix::rowSlice(size_t R0, size_t R1) const {
  assert(R0 <= R1 && R1 <= NumRows && "row slice out of range");
  Matrix M = Matrix::uninit(R1 - R0, NumCols);
  std::memcpy(M.data(), rowPtr(R0), (R1 - R0) * NumCols * sizeof(double));
  return M;
}

Matrix Matrix::colSlice(size_t C0, size_t C1) const {
  assert(C0 <= C1 && C1 <= NumCols && "col slice out of range");
  Matrix M = Matrix::uninit(NumRows, C1 - C0);
  for (size_t R = 0; R < NumRows; ++R)
    std::memcpy(M.rowPtr(R), rowPtr(R) + C0, (C1 - C0) * sizeof(double));
  return M;
}

void Matrix::setBlock(size_t R0, size_t C0, const Matrix &Src) {
  assert(R0 + Src.NumRows <= NumRows && C0 + Src.NumCols <= NumCols &&
         "block does not fit");
  for (size_t R = 0; R < Src.NumRows; ++R)
    std::memcpy(rowPtr(R0 + R) + C0, Src.rowPtr(R),
                Src.NumCols * sizeof(double));
}

void Matrix::appendRows(const Matrix &Src) {
  if (Src.empty() && Src.NumRows == 0)
    return;
  if (empty() && NumRows == 0 && NumCols == 0)
    NumCols = Src.NumCols;
  assert(Src.NumCols == NumCols && "appendRows column mismatch");
  Data.insert(Data.end(), Src.Data.begin(), Src.Data.end());
  NumRows += Src.NumRows;
}

void Matrix::appendZeroRows(size_t Count) {
  Data.insert(Data.end(), Count * NumCols, 0.0);
  NumRows += Count;
}

Matrix &Matrix::operator+=(const Matrix &O) {
  assert(NumRows == O.NumRows && NumCols == O.NumCols && "shape mismatch");
  double *D = Data.data();
  const double *S = O.Data.data();
  // Elementwise with disjoint chunks: identical bits at any thread count.
  support::parallelFor(0, Data.size(), 32768, [&](size_t I0, size_t I1) {
    for (size_t I = I0; I < I1; ++I)
      D[I] += S[I];
  });
  return *this;
}

Matrix &Matrix::operator-=(const Matrix &O) {
  assert(NumRows == O.NumRows && NumCols == O.NumCols && "shape mismatch");
  double *D = Data.data();
  const double *S = O.Data.data();
  support::parallelFor(0, Data.size(), 32768, [&](size_t I0, size_t I1) {
    for (size_t I = I0; I < I1; ++I)
      D[I] -= S[I];
  });
  return *this;
}

Matrix &Matrix::operator*=(double S) {
  for (double &V : Data)
    V *= S;
  return *this;
}

Matrix &Matrix::hadamardInPlace(const Matrix &O) {
  assert(NumRows == O.NumRows && NumCols == O.NumCols && "shape mismatch");
  for (size_t I = 0; I < Data.size(); ++I)
    Data[I] *= O.Data[I];
  return *this;
}

void Matrix::addScaled(const Matrix &O, double S) {
  assert(NumRows == O.NumRows && NumCols == O.NumCols && "shape mismatch");
  for (size_t I = 0; I < Data.size(); ++I)
    Data[I] += S * O.Data[I];
}

void Matrix::apply(const std::function<double(double)> &Fn) {
  for (double &V : Data)
    V = Fn(V);
}

Matrix Matrix::map(const std::function<double(double)> &Fn) const {
  Matrix M = *this;
  M.apply(Fn);
  return M;
}

double Matrix::sum() const {
  double S = 0.0;
  for (double V : Data)
    S += V;
  return S;
}

double Matrix::maxAbs() const {
  double M = 0.0;
  for (double V : Data)
    M = std::max(M, std::fabs(V));
  return M;
}

double Matrix::lpNorm(double P) const {
  if (P == InfNorm)
    return maxAbs();
  assert(P >= 1.0 && "lp norms need p >= 1");
  if (P == 1.0) {
    double S = 0.0;
    for (double V : Data)
      S += std::fabs(V);
    return S;
  }
  if (P == 2.0) {
    double S = 0.0;
    for (double V : Data)
      S += V * V;
    return std::sqrt(S);
  }
  double S = 0.0;
  for (double V : Data)
    S += std::pow(std::fabs(V), P);
  return std::pow(S, 1.0 / P);
}

Matrix Matrix::rowLpNorms(double P) const {
  Matrix Out(NumRows, 1);
  support::parallelFor(
      0, NumRows, support::grainForWork(NumCols),
      [&](size_t R0, size_t R1) { rowLpNormsRange(P, Out, R0, R1); });
  return Out;
}

void Matrix::rowLpNormsRange(double P, Matrix &Out, size_t R0,
                             size_t R1) const {
  for (size_t R = R0; R < R1; ++R) {
    const double *Row = rowPtr(R);
    double S = 0.0;
    if (P == InfNorm) {
      for (size_t C = 0; C < NumCols; ++C)
        S = std::max(S, std::fabs(Row[C]));
    } else if (P == 1.0) {
      for (size_t C = 0; C < NumCols; ++C)
        S += std::fabs(Row[C]);
    } else if (P == 2.0) {
      for (size_t C = 0; C < NumCols; ++C)
        S += Row[C] * Row[C];
      S = std::sqrt(S);
    } else {
      assert(P >= 1.0 && "lp norms need p >= 1");
      for (size_t C = 0; C < NumCols; ++C)
        S += std::pow(std::fabs(Row[C]), P);
      S = std::pow(S, 1.0 / P);
    }
    Out.at(R, 0) = S;
  }
}

Matrix Matrix::rowMeans() const {
  assert(NumCols > 0 && "rowMeans of empty rows");
  Matrix Out(NumRows, 1);
  support::parallelFor(0, NumRows, support::grainForWork(NumCols),
                       [&](size_t R0, size_t R1) {
                         for (size_t R = R0; R < R1; ++R) {
                           const double *Row = rowPtr(R);
                           double S = 0.0;
                           for (size_t C = 0; C < NumCols; ++C)
                             S += Row[C];
                           Out.at(R, 0) =
                               S / static_cast<double>(NumCols);
                         }
                       });
  return Out;
}

size_t Matrix::argmax() const {
  assert(!empty() && "argmax of empty matrix");
  size_t Best = 0;
  for (size_t I = 1; I < size(); ++I)
    if (Data[I] > Data[Best])
      Best = I;
  return Best;
}

namespace {

/// Cache tile over the contraction axis: a GemmKBlock x Cols panel of B
/// stays resident while every output row in a chunk accumulates against
/// it. Per output element the contraction still runs in ascending-k
/// order (blocks ascend, k ascends within a block), so tiled results are
/// bit-identical to the naive ikj kernel.
constexpr size_t GemmKBlock = 128;

/// Register-blocked output rows of the matmul kernel: four C rows share
/// each loaded B row, and the compiler vectorizes the branch-free inner
/// loop.
constexpr size_t GemmRowBlock = 4;

/// Scalar mul-adds below which a GEMM runs serially; pool dispatch and
/// the gemm.tile_ms observation only pay off above it.
constexpr size_t GemmParallelFlops = 64 * 1024;

bool allZero(const double *P, size_t N) {
  for (size_t I = 0; I < N; ++I)
    if (P[I] != 0.0)
      return false;
  return true;
}

/// Observes one parallel GEMM's wall time into the gemm.tile_ms
/// histogram (serial small GEMMs skip the mutex entirely).
class GemmTimeScope {
public:
  explicit GemmTimeScope(bool Active) : Active(Active) {}
  ~GemmTimeScope() {
    if (Active) {
      // Looked up per observation (not cached in a static) so a setIsa
      // switch lands subsequent observations in the right per-ISA series.
      support::Metrics::global()
          .histogram(std::string("gemm.tile_ms.") + isaName(currentIsa()))
          .observe(T.seconds() * 1e3);
    }
  }

private:
  bool Active;
  support::Timer T;
};

/// Rows [R0, R1) of C = A * B, K-tiled with GemmRowBlock-row register
/// blocking. The inner loops are branch-free on dense data; sparsity is
/// skipped only at block granularity (a whole A row-group slice of zeros,
/// the common shape for fresh-noise-symbol coefficient rows).
void matmulRowRange(const double *AData, size_t K, const Matrix &B, Matrix &C,
                    size_t R0, size_t R1) {
  size_t M = B.cols();
  for (size_t Kb = 0; Kb < K; Kb += GemmKBlock) {
    size_t KEnd = std::min(K, Kb + GemmKBlock);
    for (size_t I0 = R0; I0 < R1; I0 += GemmRowBlock) {
      size_t IEnd = std::min(R1, I0 + GemmRowBlock);
      bool BlockZero = true;
      for (size_t I = I0; I < IEnd && BlockZero; ++I)
        BlockZero = allZero(AData + I * K + Kb, KEnd - Kb);
      if (BlockZero)
        continue;
      const Kernels &KT = kernels();
      if (IEnd - I0 == GemmRowBlock) {
        double *C0 = C.rowPtr(I0), *C1 = C.rowPtr(I0 + 1);
        double *C2 = C.rowPtr(I0 + 2), *C3 = C.rowPtr(I0 + 3);
        const double *A0 = AData + I0 * K, *A1 = A0 + K;
        const double *A2 = A1 + K, *A3 = A2 + K;
        KT.Axpy4K(A0, A1, A2, A3, Kb, KEnd, B.data(), C0, C1, C2, C3, M);
      } else {
        for (size_t I = I0; I < IEnd; ++I) {
          double *CRow = C.rowPtr(I);
          const double *ARow = AData + I * K;
          for (size_t Kk = Kb; Kk < KEnd; ++Kk)
            KT.Axpy(ARow[Kk], B.rowPtr(Kk), CRow, M);
        }
      }
    }
  }
}

} // namespace

Matrix deept::tensor::matmulReshaped(const Matrix &A, size_t ARows,
                                     size_t ACols, const Matrix &B) {
  assert(ARows * ACols == A.size() && "reshape must preserve element count");
  assert(ACols == B.rows() && "matmul shape mismatch");
  Matrix C(ARows, B.cols());
  size_t RowWork = ACols * B.cols();
  bool Parallel = ARows * RowWork >= GemmParallelFlops &&
                  !support::ThreadPool::inParallelRegion();
  GemmTimeScope Scope(Parallel);
  support::parallelFor(0, ARows, support::grainForWork(RowWork),
                       [&](size_t R0, size_t R1) {
                         matmulRowRange(A.data(), ACols, B, C, R0, R1);
                       });
  return C;
}

Matrix deept::tensor::matmul(const Matrix &A, const Matrix &B) {
  return matmulReshaped(A, A.rows(), A.cols(), B);
}

Matrix deept::tensor::matmulTransposedB(const Matrix &A, const Matrix &B) {
  assert(A.cols() == B.cols() && "matmulTransposedB shape mismatch");
  // The kernel writes every output row (zero rows of A are zero-filled
  // when not accumulating), so C can skip its own fill.
  Matrix C = Matrix::uninit(A.rows(), B.rows());
  size_t K = A.cols(), M = B.rows();
  size_t RowWork = K * M;
  bool Parallel = A.rows() * RowWork >= GemmParallelFlops &&
                  !support::ThreadPool::inParallelRegion();
  GemmTimeScope Scope(Parallel);
  // Dot-product form, dispatched through the kernel table: four B rows
  // share each loaded A element with lane-ordered accumulation per output.
  support::parallelFor(
      0, A.rows(), support::grainForWork(RowWork), [&](size_t R0, size_t R1) {
        kernels().DotTransposedB(A.rowPtr(R0), R1 - R0, B.rowPtr(0), M, K,
                                 C.rowPtr(R0), /*Accumulate=*/false);
      });
  return C;
}

void deept::tensor::dotKernelTransposedB(const double *A, size_t N,
                                         const double *B, size_t M, size_t D,
                                         double *C, bool Accumulate) {
  kernels().DotTransposedB(A, N, B, M, D, C, Accumulate);
}

Matrix deept::tensor::matmulTransposedA(const Matrix &A, const Matrix &B) {
  assert(A.rows() == B.rows() && "matmulTransposedA shape mismatch");
  size_t K = A.rows(), N = A.cols(), M = B.cols();
  Matrix C(N, M);
  size_t RowWork = K * M;
  bool Parallel = N * RowWork >= GemmParallelFlops &&
                  !support::ThreadPool::inParallelRegion();
  GemmTimeScope Scope(Parallel);
  // Output-row parallel: C row I accumulates column I of A against every
  // row of B, K-tiled so the B panel is reused across the strided A
  // column reads. Ascending-k order per element keeps results identical
  // at any thread count.
  support::parallelFor(
      0, N, support::grainForWork(RowWork), [&](size_t R0, size_t R1) {
        for (size_t Kb = 0; Kb < K; Kb += GemmKBlock) {
          size_t KEnd = std::min(K, Kb + GemmKBlock);
          for (size_t I = R0; I < R1; ++I) {
            double *CRow = C.rowPtr(I);
            bool ColZero = true;
            for (size_t Kk = Kb; Kk < KEnd && ColZero; ++Kk)
              ColZero = A.at(Kk, I) == 0.0;
            if (ColZero)
              continue;
            for (size_t Kk = Kb; Kk < KEnd; ++Kk) {
              double AV = A.at(Kk, I);
              const double *BRow = B.rowPtr(Kk);
              for (size_t J = 0; J < M; ++J)
                CRow[J] += AV * BRow[J];
            }
          }
        }
      });
  return C;
}

Matrix deept::tensor::operator+(Matrix A, const Matrix &B) {
  A += B;
  return A;
}

Matrix deept::tensor::operator-(Matrix A, const Matrix &B) {
  A -= B;
  return A;
}

Matrix deept::tensor::operator*(Matrix A, double S) {
  A *= S;
  return A;
}

Matrix deept::tensor::operator*(double S, Matrix A) {
  A *= S;
  return A;
}

Matrix deept::tensor::hadamard(Matrix A, const Matrix &B) {
  A.hadamardInPlace(B);
  return A;
}

Matrix deept::tensor::rowSoftmax(const Matrix &A) {
  Matrix Out(A.rows(), A.cols());
  for (size_t R = 0; R < A.rows(); ++R) {
    const double *Row = A.rowPtr(R);
    double *ORow = Out.rowPtr(R);
    double Max = Row[0];
    for (size_t C = 1; C < A.cols(); ++C)
      Max = std::max(Max, Row[C]);
    double Sum = 0.0;
    for (size_t C = 0; C < A.cols(); ++C) {
      ORow[C] = std::exp(Row[C] - Max);
      Sum += ORow[C];
    }
    for (size_t C = 0; C < A.cols(); ++C)
      ORow[C] /= Sum;
  }
  return Out;
}

Matrix deept::tensor::addRowBroadcast(Matrix A, const Matrix &Row) {
  assert(Row.rows() == 1 && Row.cols() == A.cols() && "broadcast mismatch");
  for (size_t R = 0; R < A.rows(); ++R) {
    double *ARow = A.rowPtr(R);
    for (size_t C = 0; C < A.cols(); ++C)
      ARow[C] += Row.at(0, C);
  }
  return A;
}

double deept::tensor::dualExponent(double P) {
  if (P == Matrix::InfNorm)
    return 1.0;
  assert(P >= 1.0 && "invalid norm exponent");
  if (P == 1.0)
    return Matrix::InfNorm;
  return P / (P - 1.0);
}

bool deept::tensor::allClose(const Matrix &A, const Matrix &B, double Tol) {
  if (A.rows() != B.rows() || A.cols() != B.cols())
    return false;
  for (size_t I = 0; I < A.size(); ++I)
    if (std::fabs(A.flat(I) - B.flat(I)) > Tol)
      return false;
  return true;
}
