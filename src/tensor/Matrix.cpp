//===- tensor/Matrix.cpp --------------------------------------*- C++ -*-===//

#include "tensor/Matrix.h"

#include "support/Rng.h"

#include <algorithm>
#include <cmath>
#include <cstring>

using namespace deept;
using namespace deept::tensor;

Matrix::Matrix(size_t Rows, size_t Cols, double Fill)
    : NumRows(Rows), NumCols(Cols), Data(Rows * Cols, Fill) {}

Matrix Matrix::fromRows(const std::vector<std::vector<double>> &RowData) {
  if (RowData.empty())
    return Matrix();
  Matrix M(RowData.size(), RowData.front().size());
  for (size_t R = 0; R < RowData.size(); ++R) {
    assert(RowData[R].size() == M.NumCols && "ragged row data");
    std::copy(RowData[R].begin(), RowData[R].end(), M.rowPtr(R));
  }
  return M;
}

Matrix Matrix::rowVector(const std::vector<double> &Values) {
  Matrix M(1, Values.size());
  std::copy(Values.begin(), Values.end(), M.data());
  return M;
}

Matrix Matrix::identity(size_t N) {
  Matrix M(N, N);
  for (size_t I = 0; I < N; ++I)
    M.at(I, I) = 1.0;
  return M;
}

Matrix Matrix::randn(size_t Rows, size_t Cols, support::Rng &Rng,
                     double Stddev) {
  Matrix M(Rows, Cols);
  for (size_t I = 0; I < M.size(); ++I)
    M.Data[I] = Rng.gaussian(0.0, Stddev);
  return M;
}

Matrix Matrix::uniform(size_t Rows, size_t Cols, support::Rng &Rng, double Lo,
                       double Hi) {
  Matrix M(Rows, Cols);
  for (size_t I = 0; I < M.size(); ++I)
    M.Data[I] = Rng.uniform(Lo, Hi);
  return M;
}

Matrix Matrix::reshaped(size_t Rows, size_t Cols) const {
  assert(Rows * Cols == size() && "reshape must preserve element count");
  Matrix M = *this;
  M.NumRows = Rows;
  M.NumCols = Cols;
  return M;
}

Matrix Matrix::transposed() const {
  Matrix T(NumCols, NumRows);
  for (size_t R = 0; R < NumRows; ++R)
    for (size_t C = 0; C < NumCols; ++C)
      T.at(C, R) = at(R, C);
  return T;
}

Matrix Matrix::rowSlice(size_t R0, size_t R1) const {
  assert(R0 <= R1 && R1 <= NumRows && "row slice out of range");
  Matrix M(R1 - R0, NumCols);
  std::memcpy(M.data(), rowPtr(R0), (R1 - R0) * NumCols * sizeof(double));
  return M;
}

Matrix Matrix::colSlice(size_t C0, size_t C1) const {
  assert(C0 <= C1 && C1 <= NumCols && "col slice out of range");
  Matrix M(NumRows, C1 - C0);
  for (size_t R = 0; R < NumRows; ++R)
    std::memcpy(M.rowPtr(R), rowPtr(R) + C0, (C1 - C0) * sizeof(double));
  return M;
}

void Matrix::setBlock(size_t R0, size_t C0, const Matrix &Src) {
  assert(R0 + Src.NumRows <= NumRows && C0 + Src.NumCols <= NumCols &&
         "block does not fit");
  for (size_t R = 0; R < Src.NumRows; ++R)
    std::memcpy(rowPtr(R0 + R) + C0, Src.rowPtr(R),
                Src.NumCols * sizeof(double));
}

void Matrix::appendRows(const Matrix &Src) {
  if (Src.empty() && Src.NumRows == 0)
    return;
  if (empty() && NumRows == 0 && NumCols == 0)
    NumCols = Src.NumCols;
  assert(Src.NumCols == NumCols && "appendRows column mismatch");
  Data.insert(Data.end(), Src.Data.begin(), Src.Data.end());
  NumRows += Src.NumRows;
}

void Matrix::appendZeroRows(size_t Count) {
  Data.insert(Data.end(), Count * NumCols, 0.0);
  NumRows += Count;
}

Matrix &Matrix::operator+=(const Matrix &O) {
  assert(NumRows == O.NumRows && NumCols == O.NumCols && "shape mismatch");
  for (size_t I = 0; I < Data.size(); ++I)
    Data[I] += O.Data[I];
  return *this;
}

Matrix &Matrix::operator-=(const Matrix &O) {
  assert(NumRows == O.NumRows && NumCols == O.NumCols && "shape mismatch");
  for (size_t I = 0; I < Data.size(); ++I)
    Data[I] -= O.Data[I];
  return *this;
}

Matrix &Matrix::operator*=(double S) {
  for (double &V : Data)
    V *= S;
  return *this;
}

Matrix &Matrix::hadamardInPlace(const Matrix &O) {
  assert(NumRows == O.NumRows && NumCols == O.NumCols && "shape mismatch");
  for (size_t I = 0; I < Data.size(); ++I)
    Data[I] *= O.Data[I];
  return *this;
}

void Matrix::addScaled(const Matrix &O, double S) {
  assert(NumRows == O.NumRows && NumCols == O.NumCols && "shape mismatch");
  for (size_t I = 0; I < Data.size(); ++I)
    Data[I] += S * O.Data[I];
}

void Matrix::apply(const std::function<double(double)> &Fn) {
  for (double &V : Data)
    V = Fn(V);
}

Matrix Matrix::map(const std::function<double(double)> &Fn) const {
  Matrix M = *this;
  M.apply(Fn);
  return M;
}

double Matrix::sum() const {
  double S = 0.0;
  for (double V : Data)
    S += V;
  return S;
}

double Matrix::maxAbs() const {
  double M = 0.0;
  for (double V : Data)
    M = std::max(M, std::fabs(V));
  return M;
}

double Matrix::lpNorm(double P) const {
  if (P == InfNorm)
    return maxAbs();
  assert(P >= 1.0 && "lp norms need p >= 1");
  if (P == 1.0) {
    double S = 0.0;
    for (double V : Data)
      S += std::fabs(V);
    return S;
  }
  if (P == 2.0) {
    double S = 0.0;
    for (double V : Data)
      S += V * V;
    return std::sqrt(S);
  }
  double S = 0.0;
  for (double V : Data)
    S += std::pow(std::fabs(V), P);
  return std::pow(S, 1.0 / P);
}

Matrix Matrix::rowLpNorms(double P) const {
  Matrix Out(NumRows, 1);
  for (size_t R = 0; R < NumRows; ++R) {
    const double *Row = rowPtr(R);
    double S = 0.0;
    if (P == InfNorm) {
      for (size_t C = 0; C < NumCols; ++C)
        S = std::max(S, std::fabs(Row[C]));
    } else if (P == 1.0) {
      for (size_t C = 0; C < NumCols; ++C)
        S += std::fabs(Row[C]);
    } else if (P == 2.0) {
      for (size_t C = 0; C < NumCols; ++C)
        S += Row[C] * Row[C];
      S = std::sqrt(S);
    } else {
      assert(P >= 1.0 && "lp norms need p >= 1");
      for (size_t C = 0; C < NumCols; ++C)
        S += std::pow(std::fabs(Row[C]), P);
      S = std::pow(S, 1.0 / P);
    }
    Out.at(R, 0) = S;
  }
  return Out;
}

Matrix Matrix::rowMeans() const {
  assert(NumCols > 0 && "rowMeans of empty rows");
  Matrix Out(NumRows, 1);
  for (size_t R = 0; R < NumRows; ++R) {
    const double *Row = rowPtr(R);
    double S = 0.0;
    for (size_t C = 0; C < NumCols; ++C)
      S += Row[C];
    Out.at(R, 0) = S / static_cast<double>(NumCols);
  }
  return Out;
}

size_t Matrix::argmax() const {
  assert(!empty() && "argmax of empty matrix");
  size_t Best = 0;
  for (size_t I = 1; I < size(); ++I)
    if (Data[I] > Data[Best])
      Best = I;
  return Best;
}

Matrix deept::tensor::matmul(const Matrix &A, const Matrix &B) {
  assert(A.cols() == B.rows() && "matmul shape mismatch");
  Matrix C(A.rows(), B.cols());
  // ikj order keeps the inner loop streaming over contiguous rows of B.
  for (size_t I = 0; I < A.rows(); ++I) {
    double *CRow = C.rowPtr(I);
    const double *ARow = A.rowPtr(I);
    for (size_t K = 0; K < A.cols(); ++K) {
      double AV = ARow[K];
      if (AV == 0.0)
        continue;
      const double *BRow = B.rowPtr(K);
      for (size_t J = 0; J < B.cols(); ++J)
        CRow[J] += AV * BRow[J];
    }
  }
  return C;
}

Matrix deept::tensor::matmulTransposedB(const Matrix &A, const Matrix &B) {
  assert(A.cols() == B.cols() && "matmulTransposedB shape mismatch");
  Matrix C(A.rows(), B.rows());
  for (size_t I = 0; I < A.rows(); ++I) {
    const double *ARow = A.rowPtr(I);
    double *CRow = C.rowPtr(I);
    for (size_t J = 0; J < B.rows(); ++J) {
      const double *BRow = B.rowPtr(J);
      double S = 0.0;
      for (size_t K = 0; K < A.cols(); ++K)
        S += ARow[K] * BRow[K];
      CRow[J] = S;
    }
  }
  return C;
}

Matrix deept::tensor::matmulTransposedA(const Matrix &A, const Matrix &B) {
  assert(A.rows() == B.rows() && "matmulTransposedA shape mismatch");
  Matrix C(A.cols(), B.cols());
  for (size_t K = 0; K < A.rows(); ++K) {
    const double *ARow = A.rowPtr(K);
    const double *BRow = B.rowPtr(K);
    for (size_t I = 0; I < A.cols(); ++I) {
      double AV = ARow[I];
      if (AV == 0.0)
        continue;
      double *CRow = C.rowPtr(I);
      for (size_t J = 0; J < B.cols(); ++J)
        CRow[J] += AV * BRow[J];
    }
  }
  return C;
}

Matrix deept::tensor::operator+(Matrix A, const Matrix &B) {
  A += B;
  return A;
}

Matrix deept::tensor::operator-(Matrix A, const Matrix &B) {
  A -= B;
  return A;
}

Matrix deept::tensor::operator*(Matrix A, double S) {
  A *= S;
  return A;
}

Matrix deept::tensor::operator*(double S, Matrix A) {
  A *= S;
  return A;
}

Matrix deept::tensor::hadamard(Matrix A, const Matrix &B) {
  A.hadamardInPlace(B);
  return A;
}

Matrix deept::tensor::rowSoftmax(const Matrix &A) {
  Matrix Out(A.rows(), A.cols());
  for (size_t R = 0; R < A.rows(); ++R) {
    const double *Row = A.rowPtr(R);
    double *ORow = Out.rowPtr(R);
    double Max = Row[0];
    for (size_t C = 1; C < A.cols(); ++C)
      Max = std::max(Max, Row[C]);
    double Sum = 0.0;
    for (size_t C = 0; C < A.cols(); ++C) {
      ORow[C] = std::exp(Row[C] - Max);
      Sum += ORow[C];
    }
    for (size_t C = 0; C < A.cols(); ++C)
      ORow[C] /= Sum;
  }
  return Out;
}

Matrix deept::tensor::addRowBroadcast(Matrix A, const Matrix &Row) {
  assert(Row.rows() == 1 && Row.cols() == A.cols() && "broadcast mismatch");
  for (size_t R = 0; R < A.rows(); ++R) {
    double *ARow = A.rowPtr(R);
    for (size_t C = 0; C < A.cols(); ++C)
      ARow[C] += Row.at(0, C);
  }
  return A;
}

double deept::tensor::dualExponent(double P) {
  if (P == Matrix::InfNorm)
    return 1.0;
  assert(P >= 1.0 && "invalid norm exponent");
  if (P == 1.0)
    return Matrix::InfNorm;
  return P / (P - 1.0);
}

bool deept::tensor::allClose(const Matrix &A, const Matrix &B, double Tol) {
  if (A.rows() != B.rows() || A.cols() != B.cols())
    return false;
  for (size_t I = 0; I < A.size(); ++I)
    if (std::fabs(A.flat(I) - B.flat(I)) > Tol)
      return false;
  return true;
}
