//===- tensor/Matrix.h - Dense row-major matrix ----------------*- C++ -*-===//
//
// Part of deept-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A dense, row-major, double-precision matrix with the linear algebra the
/// rest of the library needs: GEMM variants, transposition, row reductions,
/// elementwise maps and lp norms. Vectors are represented as 1xN or Nx1
/// matrices. This is the tensor substrate standing in for the paper's
/// PyTorch backend.
///
//===----------------------------------------------------------------------===//

#ifndef DEEPT_TENSOR_MATRIX_H
#define DEEPT_TENSOR_MATRIX_H

#include "support/Parallel.h"

#include <cassert>
#include <cstddef>
#include <functional>
#include <memory>
#include <new>
#include <vector>

namespace deept {
namespace support {
class Rng;
} // namespace support

namespace tensor {

namespace detail {

/// std::allocator<double>, except that default-insertion (resize with no
/// value) leaves elements uninitialized. Matrix::uninit uses this to skip
/// the zero-fill for outputs whose every element is about to be written
/// -- on coefficient-matrix-sized temporaries the fill is a measurable
/// slice of propagation time. Value-insertion (the fill constructor)
/// takes the normal placement-new fallback and still initializes.
template <typename T> struct NoInitAllocator {
  using value_type = T;
  NoInitAllocator() = default;
  template <typename U> NoInitAllocator(const NoInitAllocator<U> &) noexcept {}
  T *allocate(std::size_t N) { return std::allocator<T>().allocate(N); }
  void deallocate(T *P, std::size_t N) {
    std::allocator<T>().deallocate(P, N);
  }
  template <typename U> void construct(U *P) noexcept {
    ::new (static_cast<void *>(P)) U;
  }
  template <typename U>
  bool operator==(const NoInitAllocator<U> &) const noexcept {
    return true;
  }
  template <typename U>
  bool operator!=(const NoInitAllocator<U> &) const noexcept {
    return false;
  }
};

} // namespace detail

/// Dense row-major matrix of doubles.
class Matrix {
public:
  /// Creates an empty 0x0 matrix.
  Matrix() = default;

  /// Creates a RowsxCols matrix filled with \p Fill.
  Matrix(size_t Rows, size_t Cols, double Fill = 0.0);

  /// Creates a RowsxCols matrix with UNINITIALIZED elements. Only for
  /// outputs whose every element is written before any read (full
  /// overwrites and kernel calls that cover every row).
  static Matrix uninit(size_t Rows, size_t Cols);

  /// Creates a matrix from a nested initializer-style vector. All inner
  /// vectors must have the same length.
  static Matrix fromRows(const std::vector<std::vector<double>> &RowData);

  /// Creates a 1xN row vector.
  static Matrix rowVector(const std::vector<double> &Values);

  /// Creates an NxN identity matrix.
  static Matrix identity(size_t N);

  /// Creates a matrix with i.i.d. Gaussian entries N(0, Stddev^2).
  static Matrix randn(size_t Rows, size_t Cols, support::Rng &Rng,
                      double Stddev = 1.0);

  /// Creates a matrix with i.i.d. uniform entries in [Lo, Hi).
  static Matrix uniform(size_t Rows, size_t Cols, support::Rng &Rng,
                        double Lo, double Hi);

  size_t rows() const { return NumRows; }
  size_t cols() const { return NumCols; }
  size_t size() const { return NumRows * NumCols; }
  bool empty() const { return size() == 0; }

  double &at(size_t R, size_t C) {
    assert(R < NumRows && C < NumCols && "matrix index out of range");
    return Data[R * NumCols + C];
  }
  double at(size_t R, size_t C) const {
    assert(R < NumRows && C < NumCols && "matrix index out of range");
    return Data[R * NumCols + C];
  }

  /// Flat access in row-major order.
  double &flat(size_t I) {
    assert(I < size() && "flat index out of range");
    return Data[I];
  }
  double flat(size_t I) const {
    assert(I < size() && "flat index out of range");
    return Data[I];
  }

  double *data() { return Data.data(); }
  const double *data() const { return Data.data(); }

  double *rowPtr(size_t R) { return Data.data() + R * NumCols; }
  const double *rowPtr(size_t R) const { return Data.data() + R * NumCols; }

  /// Reinterprets the storage with a new shape; element count must match.
  /// The rvalue overload moves the storage instead of copying it, so
  /// chains like matmul(...).reshaped(...) are shape-relabels, not copies.
  Matrix reshaped(size_t Rows, size_t Cols) const &;
  Matrix reshaped(size_t Rows, size_t Cols) &&;

  /// Returns the transpose.
  Matrix transposed() const;

  /// Returns rows [R0, R1) as a new matrix.
  Matrix rowSlice(size_t R0, size_t R1) const;

  /// Returns columns [C0, C1) as a new matrix.
  Matrix colSlice(size_t C0, size_t C1) const;

  /// Copies \p Src into this matrix starting at (R0, C0).
  void setBlock(size_t R0, size_t C0, const Matrix &Src);

  /// Appends the rows of \p Src; column counts must match (or this empty).
  void appendRows(const Matrix &Src);

  /// Appends \p Count zero rows.
  void appendZeroRows(size_t Count);

  // In-place arithmetic.
  Matrix &operator+=(const Matrix &O);
  Matrix &operator-=(const Matrix &O);
  Matrix &operator*=(double S);

  /// In-place elementwise (Hadamard) product.
  Matrix &hadamardInPlace(const Matrix &O);

  /// Adds S * O to this matrix.
  void addScaled(const Matrix &O, double S);

  /// Applies \p Fn to every element in place. The std::function overload
  /// stays for callers that store the function (the autograd tape); hot
  /// paths use the templated applyFn/mapFn below, which inline the functor
  /// and run large matrices through the thread pool.
  void apply(const std::function<double(double)> &Fn);

  /// Returns a copy with \p Fn applied to every element.
  Matrix map(const std::function<double(double)> &Fn) const;

  /// Templated in-place elementwise map: no std::function indirection, and
  /// parallel over the flat range for large matrices. \p Fn must be pure
  /// (it may run concurrently on disjoint elements).
  template <typename FnT> void applyFn(FnT &&Fn) {
    double *D = Data.data();
    support::parallelFor(0, Data.size(), 32768,
                         [&](size_t I0, size_t I1) {
                           for (size_t I = I0; I < I1; ++I)
                             D[I] = Fn(D[I]);
                         });
  }

  /// Templated copy-and-map counterpart of applyFn.
  template <typename FnT> Matrix mapFn(FnT &&Fn) const {
    Matrix M = *this;
    M.applyFn(Fn);
    return M;
  }

  /// Sum of all elements.
  double sum() const;

  /// Maximum absolute element (0 for empty matrices).
  double maxAbs() const;

  /// lp norm of the whole matrix viewed as a flat vector. P must be >= 1 or
  /// the infinity norm via Matrix::InfNorm.
  double lpNorm(double P) const;

  /// Sentinel value selecting the infinity norm in lpNorm / rowLpNorms.
  static constexpr double InfNorm = -1.0;

  /// lp norm of each row; returns an Nx1 column of norms.
  Matrix rowLpNorms(double P) const;

  /// Mean of each row; returns an Nx1 column.
  Matrix rowMeans() const;

  /// Index of the largest element of a vector-shaped matrix.
  size_t argmax() const;

private:
  /// Row range [R0, R1) of rowLpNorms into \p Out (the parallel chunk
  /// body).
  void rowLpNormsRange(double P, Matrix &Out, size_t R0, size_t R1) const;

  size_t NumRows = 0;
  size_t NumCols = 0;
  std::vector<double, detail::NoInitAllocator<double>> Data;
};

/// C = A * B.
Matrix matmul(const Matrix &A, const Matrix &B);

/// C = A * B where A's storage is reinterpreted as ARows x ACols (element
/// count must match A.size()). Bit-identical to
/// matmul(A.reshaped(ARows, ACols), B) without materialising the reshaped
/// copy -- the GEMM only ever reads A through row pointers.
Matrix matmulReshaped(const Matrix &A, size_t ARows, size_t ACols,
                      const Matrix &B);

/// C = A * B^T (B is used transposed without materialising it).
Matrix matmulTransposedB(const Matrix &A, const Matrix &B);

/// Pointer-level row kernel of matmulTransposedB for callers that hold
/// coefficient rows rather than Matrix objects (the zonotope noise-symbol
/// planes): C[i*M + j] (+)= sum_k A[i*D + k] * B[j*D + k], dispatched
/// through tensor::kernels() with the lane-ordered contraction per output
/// element that tensor/Kernels.h documents -- bit-identical to
/// matmulTransposedB within an ISA (different ISAs may differ by ulps in
/// the reduction). Rows of A that are entirely zero are skipped at row
/// granularity (when not accumulating the skipped output row is
/// zero-filled, so C may start uninitialized), and sparse noise-symbol
/// rows cost O(M) instead of O(M * D).
void dotKernelTransposedB(const double *A, size_t N, const double *B,
                          size_t M, size_t D, double *C, bool Accumulate);

/// C = A^T * B.
Matrix matmulTransposedA(const Matrix &A, const Matrix &B);

Matrix operator+(Matrix A, const Matrix &B);
Matrix operator-(Matrix A, const Matrix &B);
Matrix operator*(Matrix A, double S);
Matrix operator*(double S, Matrix A);

/// Elementwise product.
Matrix hadamard(Matrix A, const Matrix &B);

/// Row-wise numerically stable softmax.
Matrix rowSoftmax(const Matrix &A);

/// Broadcast-adds row vector \p Row (1xC) to every row of \p A.
Matrix addRowBroadcast(Matrix A, const Matrix &Row);

/// Returns the dual exponent q of lp: 1/p + 1/q = 1. P may be
/// Matrix::InfNorm (meaning p = infinity, so q = 1); p = 1 yields q = inf.
double dualExponent(double P);

/// True when every element of A and B differs by at most Tol.
bool allClose(const Matrix &A, const Matrix &B, double Tol);

} // namespace tensor
} // namespace deept

#endif // DEEPT_TENSOR_MATRIX_H
