//===- attack/Pgd.h - Projected gradient attacks ---------------*- C++ -*-===//
//
// Part of deept-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Projected gradient descent attacks on the embedding space. Two roles:
///
/// * a soundness oracle for the verifiers (an adversarial example inside a
///   certified region would disprove soundness; tests exploit this), and
/// * the GeoCert stand-in of appendix A.2 (see DESIGN.md): bisection over
///   the attack radius yields an *upper* bound on the exact pointwise
///   robustness radius, the quantity GeoCert computes exactly.
///
//===----------------------------------------------------------------------===//

#ifndef DEEPT_ATTACK_PGD_H
#define DEEPT_ATTACK_PGD_H

#include "nn/FeedForwardNet.h"
#include "nn/Transformer.h"

#include <cstdint>

namespace deept {
namespace attack {

using tensor::Matrix;

struct AttackOptions {
  int Steps = 60;
  int Restarts = 3;
  /// Step size as a fraction of the ball radius.
  double StepScale = 0.25;
  uint64_t Seed = 99;
};

/// Projects \p Delta onto the lp ball of radius \p Radius (in place).
void projectLpBall(Matrix &Delta, double P, double Radius);

/// PGD against a Transformer under threat model T1 (one perturbed word).
/// Returns true when a misclassifying embedding inside the ball is found.
bool attackTransformerLpBall(const nn::TransformerModel &Model,
                             const std::vector<size_t> &Tokens, size_t Word,
                             double P, double Radius, size_t TrueClass,
                             const AttackOptions &Opts = AttackOptions());

/// PGD against a feed-forward network around input \p X (1 x In).
bool attackFeedForwardLpBall(const nn::FeedForwardNet &Net, const Matrix &X,
                             double P, double Radius, size_t TrueClass,
                             const AttackOptions &Opts = AttackOptions());

/// Smallest radius (within bisection resolution) at which the PGD attack
/// succeeds: an upper bound on the exact robustness radius.
double minimalAdversarialRadiusFF(const nn::FeedForwardNet &Net,
                                  const Matrix &X, double P,
                                  size_t TrueClass,
                                  const AttackOptions &Opts = AttackOptions(),
                                  double MaxRadius = 64.0,
                                  int BisectSteps = 10);

/// Transformer analogue of minimalAdversarialRadiusFF.
double
minimalAdversarialRadiusTransformer(const nn::TransformerModel &Model,
                                    const std::vector<size_t> &Tokens,
                                    size_t Word, double P, size_t TrueClass,
                                    const AttackOptions &Opts =
                                        AttackOptions(),
                                    double MaxRadius = 64.0,
                                    int BisectSteps = 8);

} // namespace attack
} // namespace deept

#endif // DEEPT_ATTACK_PGD_H
