//===- attack/Enumeration.h - Exhaustive synonym enumeration ---*- C++ -*-===//
//
// Part of deept-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The enumeration baseline for threat model T2 (Section 6.7): classify
/// every combination of synonym substitutions. Complete but exponential
/// in the number of substitutable words -- the paper's point is that
/// DeepT certifies sentences whose combination counts make enumeration 2
/// to 3 orders of magnitude slower.
///
//===----------------------------------------------------------------------===//

#ifndef DEEPT_ATTACK_ENUMERATION_H
#define DEEPT_ATTACK_ENUMERATION_H

#include "data/SyntheticCorpus.h"
#include "nn/Transformer.h"

namespace deept {
namespace attack {

struct EnumerationResult {
  /// True when every enumerated combination classified correctly.
  bool Robust = false;
  /// Combinations actually classified (enumeration stops early on the
  /// first misclassification or at the cap).
  size_t Evaluated = 0;
  /// Total combination count (saturated at the cap).
  size_t Combinations = 0;
  /// False when the cap stopped the enumeration before completion.
  bool Exhausted = true;
};

/// Total number of synonym combinations of a sentence, saturated at Cap.
size_t countSynonymCombinations(const data::SyntheticCorpus &Corpus,
                                const data::Sentence &S,
                                size_t Cap = size_t(1) << 40);

/// Classifies every synonym combination of \p S (each position may take
/// the original word or any synonym). Stops at the first misclassified
/// combination or after \p MaxCombos evaluations.
EnumerationResult
enumerateSynonymAttack(const nn::TransformerModel &Model,
                       const data::SyntheticCorpus &Corpus,
                       const data::Sentence &S, size_t TrueClass,
                       size_t MaxCombos = size_t(1) << 22);

} // namespace attack
} // namespace deept

#endif // DEEPT_ATTACK_ENUMERATION_H
