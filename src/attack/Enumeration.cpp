//===- attack/Enumeration.cpp ---------------------------------*- C++ -*-===//

#include "attack/Enumeration.h"

using namespace deept;
using namespace deept::attack;

size_t deept::attack::countSynonymCombinations(
    const data::SyntheticCorpus &Corpus, const data::Sentence &S,
    size_t Cap) {
  size_t Count = 1;
  for (size_t Token : S.Tokens) {
    size_t Options = 1 + Corpus.synonymsOf(Token).size();
    if (Count > Cap / Options)
      return Cap;
    Count *= Options;
  }
  return Count;
}

EnumerationResult deept::attack::enumerateSynonymAttack(
    const nn::TransformerModel &Model, const data::SyntheticCorpus &Corpus,
    const data::Sentence &S, size_t TrueClass, size_t MaxCombos) {
  // Option lists per position: the original word plus its synonyms.
  std::vector<std::vector<size_t>> Options;
  for (size_t Token : S.Tokens) {
    std::vector<size_t> Opt = {Token};
    for (size_t Syn : Corpus.synonymsOf(Token))
      Opt.push_back(Syn);
    Options.push_back(std::move(Opt));
  }

  EnumerationResult Result;
  Result.Combinations = countSynonymCombinations(Corpus, S, MaxCombos);

  std::vector<size_t> Odometer(Options.size(), 0);
  std::vector<size_t> Tokens = S.Tokens;
  while (true) {
    for (size_t I = 0; I < Options.size(); ++I)
      Tokens[I] = Options[I][Odometer[I]];
    ++Result.Evaluated;
    if (Model.classify(Tokens) != TrueClass) {
      Result.Robust = false;
      return Result;
    }
    if (Result.Evaluated >= MaxCombos) {
      Result.Exhausted = false;
      Result.Robust = true; // no counterexample among evaluated combos
      return Result;
    }
    // Advance the odometer.
    size_t Pos = 0;
    while (Pos < Odometer.size() && ++Odometer[Pos] == Options[Pos].size()) {
      Odometer[Pos] = 0;
      ++Pos;
    }
    if (Pos == Odometer.size())
      break; // wrapped around: all combinations seen
  }
  Result.Robust = true;
  return Result;
}
