//===- attack/Pgd.cpp -----------------------------------------*- C++ -*-===//

#include "attack/Pgd.h"

#include "autograd/Tape.h"
#include "support/Rng.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

using namespace deept;
using namespace deept::attack;
using autograd::Tape;
using autograd::ValueId;

namespace {

/// Euclidean projection onto the l1 ball (Duchi et al. 2008): soft
/// thresholding with the threshold found by sorting.
void projectL1(Matrix &Delta, double Radius) {
  double Norm = Delta.lpNorm(1.0);
  if (Norm <= Radius)
    return;
  std::vector<double> Abs(Delta.size());
  for (size_t I = 0; I < Delta.size(); ++I)
    Abs[I] = std::fabs(Delta.flat(I));
  std::sort(Abs.begin(), Abs.end(), std::greater<double>());
  double CumSum = 0.0, Theta = 0.0;
  for (size_t K = 0; K < Abs.size(); ++K) {
    CumSum += Abs[K];
    double T = (CumSum - Radius) / static_cast<double>(K + 1);
    if (T < Abs[K])
      Theta = T;
    else
      break;
  }
  for (size_t I = 0; I < Delta.size(); ++I) {
    double V = std::fabs(Delta.flat(I)) - Theta;
    Delta.flat(I) = V > 0 ? std::copysign(V, Delta.flat(I)) : 0.0;
  }
}

/// Steepest-descent direction for the given norm constraint.
Matrix stepDirection(const Matrix &Grad, double P) {
  Matrix Dir = Grad;
  if (P == Matrix::InfNorm) {
    Dir.applyFn([](double G) { return G > 0 ? 1.0 : (G < 0 ? -1.0 : 0.0); });
    return Dir;
  }
  double Norm = Grad.lpNorm(2.0);
  if (Norm > 0)
    Dir *= 1.0 / Norm;
  return Dir;
}

/// Generic PGD minimising the margin of \p MarginAndGrad. The callback
/// evaluates the margin at Base + Delta and fills the gradient w.r.t.
/// Delta. Returns true when a negative margin (misclassification) is
/// found.
bool pgdLoop(size_t Dim, double P, double Radius, const AttackOptions &Opts,
             const std::function<double(const Matrix &Delta, Matrix &Grad)>
                 &MarginAndGrad) {
  support::Rng Rng(Opts.Seed);
  for (int Restart = 0; Restart < Opts.Restarts; ++Restart) {
    Matrix Delta = Restart == 0
                       ? Matrix(1, Dim, 0.0)
                       : Matrix::uniform(1, Dim, Rng, -Radius, Radius);
    projectLpBall(Delta, P, Radius);
    double Step = Opts.StepScale * Radius;
    for (int I = 0; I < Opts.Steps; ++I) {
      Matrix Grad(1, Dim);
      double Margin = MarginAndGrad(Delta, Grad);
      if (Margin < 0)
        return true;
      Matrix Dir = stepDirection(Grad, P);
      Delta.addScaled(Dir, -Step);
      projectLpBall(Delta, P, Radius);
    }
    Matrix Grad(1, Dim);
    if (MarginAndGrad(Delta, Grad) < 0)
      return true;
  }
  return false;
}

/// Bisection for the smallest radius at which \p Attack succeeds.
double bisectAttackRadius(const std::function<bool(double)> &Attack,
                          double MaxRadius, int BisectSteps) {
  double Bad = 0.0; // no adversarial known
  double Good = 0.0;
  double Probe = 1e-3;
  while (Probe <= MaxRadius) {
    if (Attack(Probe)) {
      Good = Probe;
      break;
    }
    Bad = Probe;
    Probe *= 4.0;
  }
  if (Good == 0.0)
    return MaxRadius; // the attack never succeeded; radius exceeds range
  for (int I = 0; I < BisectSteps; ++I) {
    double Mid = 0.5 * (Bad + Good);
    if (Attack(Mid))
      Good = Mid;
    else
      Bad = Mid;
  }
  return Good;
}

} // namespace

void deept::attack::projectLpBall(Matrix &Delta, double P, double Radius) {
  if (P == Matrix::InfNorm) {
    Delta.applyFn([Radius](double V) {
      return std::clamp(V, -Radius, Radius);
    });
    return;
  }
  if (P == 2.0) {
    double Norm = Delta.lpNorm(2.0);
    if (Norm > Radius && Norm > 0)
      Delta *= Radius / Norm;
    return;
  }
  assert(P == 1.0 && "unsupported norm");
  projectL1(Delta, Radius);
}

bool deept::attack::attackTransformerLpBall(
    const nn::TransformerModel &Model, const std::vector<size_t> &Tokens,
    size_t Word, double P, double Radius, size_t TrueClass,
    const AttackOptions &Opts) {
  Matrix Base = Model.embed(Tokens);
  size_t E = Model.Config.EmbedDim;
  auto MarginAndGrad = [&](const Matrix &Delta, Matrix &Grad) {
    Matrix X = Base;
    for (size_t C = 0; C < E; ++C)
      X.at(Word, C) += Delta.at(0, C);
    Tape T;
    auto Params = Model.pushParams(T);
    ValueId XId = T.input(X);
    ValueId Logits = Model.buildForward(T, XId, Params);
    ValueId True = T.colSlice(Logits, TrueClass, TrueClass + 1);
    ValueId False = T.colSlice(Logits, 1 - TrueClass, 2 - TrueClass);
    ValueId Margin = T.sub(True, False);
    T.backward(Margin);
    for (size_t C = 0; C < E; ++C)
      Grad.at(0, C) = T.grad(XId).at(Word, C);
    return T.value(Margin).at(0, 0);
  };
  return pgdLoop(E, P, Radius, Opts, MarginAndGrad);
}

bool deept::attack::attackFeedForwardLpBall(const nn::FeedForwardNet &Net,
                                            const Matrix &X0, double P,
                                            double Radius, size_t TrueClass,
                                            const AttackOptions &Opts) {
  size_t Dim = Net.inputDim();
  auto MarginAndGrad = [&](const Matrix &Delta, Matrix &Grad) {
    Matrix X = X0 + Delta;
    Tape T;
    auto Params = Net.pushParams(T);
    ValueId XId = T.input(X);
    ValueId Logits = Net.buildForward(T, XId, Params);
    ValueId True = T.colSlice(Logits, TrueClass, TrueClass + 1);
    ValueId False = T.colSlice(Logits, 1 - TrueClass, 2 - TrueClass);
    ValueId Margin = T.sub(True, False);
    T.backward(Margin);
    Grad = T.grad(XId);
    return T.value(Margin).at(0, 0);
  };
  return pgdLoop(Dim, P, Radius, Opts, MarginAndGrad);
}

double deept::attack::minimalAdversarialRadiusFF(
    const nn::FeedForwardNet &Net, const Matrix &X, double P,
    size_t TrueClass, const AttackOptions &Opts, double MaxRadius,
    int BisectSteps) {
  return bisectAttackRadius(
      [&](double R) {
        return attackFeedForwardLpBall(Net, X, P, R, TrueClass, Opts);
      },
      MaxRadius, BisectSteps);
}

double deept::attack::minimalAdversarialRadiusTransformer(
    const nn::TransformerModel &Model, const std::vector<size_t> &Tokens,
    size_t Word, double P, size_t TrueClass, const AttackOptions &Opts,
    double MaxRadius, int BisectSteps) {
  return bisectAttackRadius(
      [&](double R) {
        return attackTransformerLpBall(Model, Tokens, Word, P, R, TrueClass,
                                       Opts);
      },
      MaxRadius, BisectSteps);
}
