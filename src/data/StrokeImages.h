//===- data/StrokeImages.h - Synthetic two-class images --------*- C++ -*-===//
//
// Part of deept-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A deterministic synthetic stand-in for the binary MNIST subsets of the
/// paper's appendices (A.2: digits 1 vs 7 for the feed-forward network;
/// A.3: image classification with a Vision Transformer). Images contain a
/// bright vertical stroke (class 0) or horizontal stroke (class 1) at a
/// random position, with background noise -- the same "thin oriented
/// structure" discrimination that distinguishes 1 from 7, at a scale the
/// CPU substrate handles.
///
//===----------------------------------------------------------------------===//

#ifndef DEEPT_DATA_STROKEIMAGES_H
#define DEEPT_DATA_STROKEIMAGES_H

#include "support/Rng.h"
#include "tensor/Matrix.h"

#include <vector>

namespace deept {
namespace data {

using tensor::Matrix;

struct ImageExample {
  Matrix Pixels; // 1 x Side^2, values in [0, 1]
  size_t Label = 0;
};

/// Samples \p N stroke images of size Side x Side.
std::vector<ImageExample> makeStrokeImages(size_t N, support::Rng &Rng,
                                           size_t Side = 8);

} // namespace data
} // namespace deept

#endif // DEEPT_DATA_STROKEIMAGES_H
