//===- data/StrokeImages.cpp ----------------------------------*- C++ -*-===//

#include "data/StrokeImages.h"

#include <algorithm>

using namespace deept;
using namespace deept::data;

std::vector<ImageExample> deept::data::makeStrokeImages(size_t N,
                                                        support::Rng &Rng,
                                                        size_t Side) {
  std::vector<ImageExample> Out;
  Out.reserve(N);
  for (size_t I = 0; I < N; ++I) {
    ImageExample Ex;
    Ex.Label = Rng.uniformInt(2);
    Matrix Img(Side, Side);
    // Background noise.
    for (size_t V = 0; V < Img.size(); ++V)
      Img.flat(V) = Rng.uniform(0.0, 0.15);
    size_t Pos = 1 + Rng.uniformInt(Side - 2);
    double Bright = Rng.uniform(0.75, 1.0);
    for (size_t K = 0; K < Side; ++K) {
      if (Ex.Label == 0)
        Img.at(K, Pos) = std::min(1.0, Bright + Rng.uniform(-0.1, 0.1));
      else
        Img.at(Pos, K) = std::min(1.0, Bright + Rng.uniform(-0.1, 0.1));
    }
    Ex.Pixels = Img.reshaped(1, Side * Side);
    Out.push_back(std::move(Ex));
  }
  return Out;
}
