//===- data/SyntheticCorpus.cpp -------------------------------*- C++ -*-===//

#include "data/SyntheticCorpus.h"

#include <cassert>
#include <cmath>

using namespace deept;
using namespace deept::data;

CorpusConfig CorpusConfig::sstLike(size_t EmbedDim) {
  CorpusConfig C;
  C.EmbedDim = EmbedDim;
  C.NumConcepts = 48;
  C.MinLen = 4;
  C.MaxLen = 10;
  C.Seed = 1001;
  return C;
}

CorpusConfig CorpusConfig::yelpLike(size_t EmbedDim) {
  CorpusConfig C;
  C.EmbedDim = EmbedDim;
  C.NumConcepts = 96;
  C.MinLen = 8;
  C.MaxLen = 14;
  C.Seed = 2002;
  return C;
}

CorpusConfig CorpusConfig::synonymRich(size_t EmbedDim) {
  CorpusConfig C;
  C.EmbedDim = EmbedDim;
  C.NumConcepts = 48;
  C.MinSynonyms = 2;
  C.MaxSynonyms = 5;
  C.ClusterRadius = 0.02;
  C.MinLen = 6;
  C.MaxLen = 10;
  C.Seed = 6006;
  return C;
}

SyntheticCorpus::SyntheticCorpus(const CorpusConfig &Config) : Cfg(Config) {
  support::Rng Rng(Cfg.Seed);
  size_t E = Cfg.EmbedDim;
  // A fixed unit direction carries the sentiment signal; the rest of the
  // embedding is concept-specific content.
  Matrix Direction = Matrix::randn(1, E, Rng);
  Direction *= 1.0 / Direction.lpNorm(2.0);

  std::vector<std::vector<double>> Rows;
  for (size_t C = 0; C < Cfg.NumConcepts; ++C) {
    double Pol = (C % 2 == 0) ? 1.0 : -1.0;
    Polarity.push_back(Pol);
    Matrix Base = Matrix::randn(1, E, Rng, 0.5);
    Base.addScaled(Direction, Pol * Cfg.PolarityStrength);
    assert(Cfg.MinSynonyms >= 1 && Cfg.MaxSynonyms >= Cfg.MinSynonyms &&
           "invalid synonym count range");
    size_t NumSyn =
        Cfg.MinSynonyms + Rng.uniformInt(Cfg.MaxSynonyms - Cfg.MinSynonyms + 1);
    ConceptWords.emplace_back();
    for (size_t S = 0; S < NumSyn; ++S) {
      std::vector<double> Row(E);
      for (size_t I = 0; I < E; ++I)
        Row[I] = Base.at(0, I) + Rng.uniform(-Cfg.ClusterRadius,
                                             Cfg.ClusterRadius);
      ConceptWords.back().push_back(Rows.size());
      Concept.push_back(C);
      Rows.push_back(std::move(Row));
    }
  }
  Embeddings = Matrix::fromRows(Rows);
}

std::vector<size_t> SyntheticCorpus::synonymsOf(size_t Word) const {
  std::vector<size_t> Out;
  for (size_t W : ConceptWords[Concept[Word]])
    if (W != Word)
      Out.push_back(W);
  return Out;
}

std::string SyntheticCorpus::wordName(size_t Word) const {
  size_t C = Concept[Word];
  size_t Index = 0;
  for (size_t W : ConceptWords[C]) {
    if (W == Word)
      break;
    ++Index;
  }
  return "c" + std::to_string(C) + "_s" + std::to_string(Index);
}

Sentence SyntheticCorpus::sampleSentence(support::Rng &Rng) const {
  for (int Attempt = 0; Attempt < 1000; ++Attempt) {
    size_t Len = Cfg.MinLen + Rng.uniformInt(Cfg.MaxLen - Cfg.MinLen + 1);
    Sentence S;
    double Sum = 0.0;
    for (size_t I = 0; I < Len; ++I) {
      size_t C = Rng.uniformInt(Cfg.NumConcepts);
      const auto &Words = ConceptWords[C];
      S.Tokens.push_back(Words[Rng.uniformInt(Words.size())]);
      Sum += Polarity[C];
    }
    if (std::fabs(Sum) < Cfg.MinMargin)
      continue; // ambiguous sentence; resample
    S.Label = Sum > 0 ? 1 : 0;
    return S;
  }
  assert(false && "could not sample an unambiguous sentence");
  return Sentence();
}

std::vector<Sentence> SyntheticCorpus::sampleDataset(size_t N,
                                                     support::Rng &Rng) const {
  std::vector<Sentence> Out;
  Out.reserve(N);
  for (size_t I = 0; I < N; ++I)
    Out.push_back(sampleSentence(Rng));
  return Out;
}

void SyntheticCorpus::swapSynonyms(Sentence &S, double Prob,
                                   support::Rng &Rng) const {
  for (size_t &Token : S.Tokens) {
    if (Rng.uniform() >= Prob)
      continue;
    const auto &Words = ConceptWords[Concept[Token]];
    Token = Words[Rng.uniformInt(Words.size())];
  }
}
