//===- data/SyntheticCorpus.h - Synthetic sentiment corpus -----*- C++ -*-===//
//
// Part of deept-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A deterministic synthetic stand-in for the paper's SST / Yelp sentiment
/// datasets (see DESIGN.md, "Substitutions"). The corpus generates:
///
/// * a vocabulary of "concept" clusters: each concept has a signed
///   sentiment polarity and several synonym words whose frozen embeddings
///   sit within a small ball around the concept embedding (so threat model
///   T2's premise -- synonyms are close in embedding space -- holds by
///   construction, as it would with counter-fitted vectors),
/// * sentences sampled as concept sequences, labelled by the sign of the
///   summed polarities (resampled when the margin is too small to keep the
///   task cleanly learnable).
///
//===----------------------------------------------------------------------===//

#ifndef DEEPT_DATA_SYNTHETICCORPUS_H
#define DEEPT_DATA_SYNTHETICCORPUS_H

#include "support/Rng.h"
#include "tensor/Matrix.h"

#include <string>
#include <vector>

namespace deept {
namespace data {

using tensor::Matrix;

/// A labelled token sequence.
struct Sentence {
  std::vector<size_t> Tokens;
  size_t Label = 0; // 0 = negative, 1 = positive
};

struct CorpusConfig {
  size_t NumConcepts = 48;
  /// Synonyms per concept are uniform in [MinSynonyms, MaxSynonyms]
  /// (counting the word itself; 1 means "no synonyms").
  size_t MinSynonyms = 1;
  size_t MaxSynonyms = 4;
  size_t EmbedDim = 32;
  size_t MinLen = 4;
  size_t MaxLen = 10;
  /// Synonym embeddings lie within this l-infinity radius of the concept.
  double ClusterRadius = 0.06;
  /// Scale of the sentiment-carrying embedding component.
  double PolarityStrength = 0.8;
  /// Minimum |sum of polarities| for a sentence to be kept.
  double MinMargin = 1.0;
  uint64_t Seed = 1234;

  /// The paper's SST-like preset: short sentences.
  static CorpusConfig sstLike(size_t EmbedDim);
  /// The paper's Yelp-like preset: longer sentences, larger vocabulary.
  static CorpusConfig yelpLike(size_t EmbedDim);
  /// The Section 6.7 synonym-attack preset: every word has several
  /// synonyms in a tight cluster, so sentences have large combination
  /// counts yet remain certifiable.
  static CorpusConfig synonymRich(size_t EmbedDim);
};

/// Deterministic synthetic sentiment corpus with synonym structure.
class SyntheticCorpus {
public:
  explicit SyntheticCorpus(const CorpusConfig &Config);

  const CorpusConfig &config() const { return Cfg; }
  size_t vocabSize() const { return Embeddings.rows(); }

  /// Frozen word embedding matrix (Vocab x E).
  const Matrix &embeddings() const { return Embeddings; }

  /// Concept id of a word.
  size_t conceptOf(size_t Word) const { return Concept[Word]; }

  /// Sentiment polarity (+1 / -1) of a word's concept.
  double polarityOf(size_t Word) const { return Polarity[Concept[Word]]; }

  /// The other words of the same concept (the word's synonyms).
  std::vector<size_t> synonymsOf(size_t Word) const;

  /// Printable name, e.g. "c12_s0".
  std::string wordName(size_t Word) const;

  /// Samples one labelled sentence.
  Sentence sampleSentence(support::Rng &Rng) const;

  /// Samples a dataset of \p N sentences.
  std::vector<Sentence> sampleDataset(size_t N, support::Rng &Rng) const;

  /// Replaces each token with a uniformly random synonym with probability
  /// \p Prob (data augmentation for robust training).
  void swapSynonyms(Sentence &S, double Prob, support::Rng &Rng) const;

private:
  CorpusConfig Cfg;
  Matrix Embeddings;             // Vocab x E
  std::vector<size_t> Concept;   // word -> concept
  std::vector<double> Polarity;  // concept -> +-1
  std::vector<std::vector<size_t>> ConceptWords; // concept -> word ids
};

} // namespace data
} // namespace deept

#endif // DEEPT_DATA_SYNTHETICCORPUS_H
