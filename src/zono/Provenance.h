//===- zono/Provenance.h - Noise-symbol origin tracking --------*- C++ -*-===//
//
// Part of deept-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Attribution of eps noise symbols to the transformer stage that created
/// them. Every fresh symbol enters the zonotope through
/// Zonotope::appendFreshEps, so a single hook there suffices: while a
/// ProvenanceSession is installed on the calling thread, each appended
/// symbol index is tagged with the session's current group name
/// ("layer2.softmax", "layer0.attention.scores", "pooler", ...). The
/// verifier scopes groups with ProvenanceGroup RAII guards around each
/// stage; symbols created outside any group -- notably the input box --
/// default to the "input" group.
///
/// Symbol reduction (Section 5.1 of the paper) re-indexes the eps space:
/// reduceEpsSymbols reports which old indices survive via noteReduction
/// before installing the compacted coefficients, and the per-variable fold
/// symbols it appends afterwards are tagged like any other fresh symbols
/// (the verifier wraps the call in a "layerN.noise_reduction" group).
///
/// The map is last-write-wins per symbol index: attention heads build
/// their per-head zonotopes against overlapping symbol index ranges before
/// alignment, so a given index can be tagged more than once. Attribution
/// stays exact regardless -- each final symbol belongs to exactly one
/// group, so the per-group dual-norm contributions always sum to the
/// margin width; overlapping tags only coarsen *which* stage a shared
/// index is charged to.
///
/// All hooks are no-ops (one thread_local load and branch) when no session
/// is active, keeping the default verification path at its usual cost.
///
//===----------------------------------------------------------------------===//

#ifndef DEEPT_ZONO_PROVENANCE_H
#define DEEPT_ZONO_PROVENANCE_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace deept {
namespace zono {

/// Per-session symbol-index -> group-name map. Not thread-safe by itself;
/// it relies on the repo's convention that fresh symbols are appended on
/// the orchestrating thread (parallel transformer bodies collect entries
/// and call appendFreshEps serially).
class SymbolProvenance {
public:
  SymbolProvenance();

  /// The session installed on this thread, or nullptr (hooks must check).
  static SymbolProvenance *active();

  /// Interns \p Name and makes it the group for subsequently appended
  /// symbols. Returns the previous group id (for RAII restore).
  uint32_t pushGroup(const std::string &Name);
  void restoreGroup(uint32_t Id) { CurGroup = Id; }
  uint32_t currentGroup() const { return CurGroup; }

  /// Tags symbols [First, First+Count) with the current group. Indices
  /// between the previous high-water mark and First (alignment padding)
  /// default to "input".
  void noteFresh(size_t First, size_t Count);

  /// Re-indexes the map after symbol reduction: \p KeptOld lists the
  /// surviving old indices in ascending order; old index KeptOld[i]
  /// becomes new index i and everything else is dropped.
  void noteReduction(const std::vector<size_t> &KeptOld);

  /// Group name of \p Sym ("input" when the index was never tagged).
  const std::string &groupOf(size_t Sym) const;

  size_t numTagged() const { return Tags.size(); }
  const std::vector<std::string> &groupNames() const { return Names; }

private:
  friend class ProvenanceSession;
  static thread_local SymbolProvenance *Active;

  std::vector<std::string> Names;          // group id -> name; id 0 = "input"
  std::map<std::string, uint32_t> NameIds; // interning map
  std::vector<uint32_t> Tags;              // symbol index -> group id
  uint32_t CurGroup = 0;
};

/// Installs a SymbolProvenance on the current thread for its scope.
class ProvenanceSession {
public:
  ProvenanceSession()
      : Prev(SymbolProvenance::Active) {
    SymbolProvenance::Active = &P;
  }
  ~ProvenanceSession() { SymbolProvenance::Active = Prev; }
  ProvenanceSession(const ProvenanceSession &) = delete;
  ProvenanceSession &operator=(const ProvenanceSession &) = delete;

  SymbolProvenance &provenance() { return P; }

private:
  SymbolProvenance P;
  SymbolProvenance *Prev;
};

/// Scopes the active session's current group; a cheap no-op (one
/// thread_local load) when no session is installed. The two-part
/// constructor avoids building "layerN.stage" strings on the inactive
/// path.
class ProvenanceGroup {
public:
  explicit ProvenanceGroup(const char *Name) : P(SymbolProvenance::active()) {
    if (P)
      Saved = P->pushGroup(Name);
  }
  /// Names the group "layer<Layer>.<Stage>".
  ProvenanceGroup(size_t Layer, const char *Stage)
      : P(SymbolProvenance::active()) {
    if (P)
      Saved = P->pushGroup("layer" + std::to_string(Layer) + "." + Stage);
  }
  ~ProvenanceGroup() {
    if (P)
      P->restoreGroup(Saved);
  }
  ProvenanceGroup(const ProvenanceGroup &) = delete;
  ProvenanceGroup &operator=(const ProvenanceGroup &) = delete;

private:
  SymbolProvenance *P;
  uint32_t Saved = 0;
};

} // namespace zono
} // namespace deept

#endif // DEEPT_ZONO_PROVENANCE_H
