//===- zono/Elementwise.cpp -----------------------------------*- C++ -*-===//

#include "zono/Elementwise.h"

#include "support/Metrics.h"
#include "support/Trace.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace deept;
using namespace deept::zono;

namespace {

/// exp() saturates at this exponent. Inputs beyond it only occur when the
/// abstraction has already exploded (the certification attempt fails
/// regardless); saturating keeps the arithmetic finite and NaN-free.
constexpr double ExpClampExponent = 100.0;

double clampedExp(double X) { return std::exp(std::min(X, ExpClampExponent)); }

/// Builds the zonotope piece for a convex function from a tangent point T:
/// the lower support line is the tangent at T, the upper support line is
/// the tightest line of the same slope anchored at the worse endpoint.
/// Sound for any T > 0 domain point of the function.
LinearPiece convexPiece(double Lambda, double FT, double T, double FL,
                        double L, double FU, double U) {
  double LowerOffset = FT - Lambda * T;
  double UpperOffset = std::max(FL - Lambda * L, FU - Lambda * U);
  LinearPiece P;
  P.Lambda = Lambda;
  P.Mu = 0.5 * (UpperOffset + LowerOffset);
  P.BetaNew = 0.5 * (UpperOffset - LowerOffset);
  // In the exp-saturated regime (see ExpClampExponent) the clamped
  // function is no longer convex and the construction can invert or
  // overflow; fall back to a huge interval -- certification at such
  // ranges fails regardless.
  if (!(P.BetaNew >= -1e-12) || !std::isfinite(P.BetaNew) ||
      !std::isfinite(P.Mu) || !std::isfinite(P.Lambda)) {
    P.Lambda = 0.0;
    P.Mu = 0.0;
    P.BetaNew = 1e100;
    return P;
  }
  P.BetaNew = std::max(P.BetaNew, 0.0);
  return P;
}

/// Interval (slope-free) relaxation used as a degenerate-range fallback.
LinearPiece intervalPiece(double FLo, double FHi) {
  LinearPiece P;
  P.Lambda = 0.0;
  P.Mu = 0.5 * (FHi + FLo);
  P.BetaNew = 0.5 * (FHi - FLo);
  return P;
}

/// Sound cover for bounds the precise constructions cannot handle (NaN
/// or unbounded ranges): certification over such a range must fail, so a
/// huge symmetric interval is returned instead of letting NaN leak into
/// the coefficient matrices.
LinearPiece unboundedPiece() {
  LinearPiece P;
  P.Lambda = 0.0;
  P.Mu = 0.0;
  P.BetaNew = 1e100;
  return P;
}

constexpr double DegenerateWidth = 1e-9;

} // namespace

LinearPiece deept::zono::reluPiece(double L, double U) {
  assert(!(L > U) && "invalid bounds");
  LinearPiece P;
  if (U <= 0.0)
    return P; // y = 0.
  if (L >= 0.0) {
    P.Lambda = 1.0;
    return P; // y = x.
  }
  // A crossing range with a NaN or infinite endpoint would turn the
  // minimal-area formula into NaN (inf/inf); cover it instead.
  if (!std::isfinite(L) || !std::isfinite(U))
    return unboundedPiece();
  // Minimal-area crossing case (paper Eq. 2).
  double Lambda = U / (U - L);
  double Mu = 0.5 * std::max(-Lambda * L, (1.0 - Lambda) * U);
  P.Lambda = Lambda;
  P.Mu = Mu;
  P.BetaNew = Mu;
  return P;
}

LinearPiece deept::zono::tanhPiece(double L, double U) {
  assert(!(L > U) && "invalid bounds");
  // tanh is bounded, so even NaN / infinite bounds admit an exact finite
  // interval (tanh(+-inf) = +-1; a NaN endpoint widens to the limit).
  if (!std::isfinite(L) || !std::isfinite(U))
    return intervalPiece(std::isnan(L) ? -1.0 : std::tanh(L),
                         std::isnan(U) ? 1.0 : std::tanh(U));
  if (U - L < DegenerateWidth)
    return intervalPiece(std::tanh(L), std::tanh(U));
  double TL = std::tanh(L), TU = std::tanh(U);
  double Lambda = std::min(1.0 - TL * TL, 1.0 - TU * TU);
  LinearPiece P;
  P.Lambda = Lambda;
  P.Mu = 0.5 * (TU + TL - Lambda * (U + L));
  P.BetaNew = 0.5 * (TU - TL - Lambda * (U - L));
  assert(P.BetaNew >= -1e-12 && "tanh piece produced negative radius");
  P.BetaNew = std::max(P.BetaNew, 0.0);
  return P;
}

LinearPiece deept::zono::expPiece(double L, double U, double Eps) {
  assert(!(L > U) && "invalid bounds");
  if (std::isnan(L) || std::isnan(U))
    return unboundedPiece();
  double EL = clampedExp(L), EU = clampedExp(U);
  if (U - L < DegenerateWidth)
    return intervalPiece(EL, EU);
  // t_crit matches the chord slope; t_crit2 keeps the tangent's lower
  // support line strictly positive on [L, U] (paper Section 4.5).
  double ChordSlope = (EU - EL) / (U - L);
  double TCrit = std::log(std::max(ChordSlope, 1e-300));
  double TCrit2 = L + 1.0 - Eps;
  double TOpt = std::min(TCrit, TCrit2);
  double Lambda = clampedExp(TOpt);
  return convexPiece(Lambda, clampedExp(TOpt), TOpt, EL, L, EU, U);
}

LinearPiece deept::zono::recipPiece(double L, double U, double Eps) {
  assert(!(L > U) && "invalid bounds");
  if (std::isnan(L) || std::isnan(U))
    return unboundedPiece();
  // The transformer is only defined for positive inputs (the softmax
  // denominator is >= 1 by construction); clamp defensively.
  L = std::max(L, 1e-12);
  U = std::max(U, L);
  if (U - L < DegenerateWidth)
    return intervalPiece(1.0 / U, 1.0 / L);
  double TCrit = std::sqrt(U * L);
  double TCrit2 = 0.5 * U + Eps;
  // t_crit minimises the area; t_crit2 keeps the tangent's lower support
  // line positive at u (it is (2t - u) / t^2 there). Taking the max keeps
  // the tangent point inside-or-right-of the area-optimal point, which is
  // both sound (any tangent point works with the endpoint-anchored upper
  // line) and positive. Note: the paper's Section 4.6 prints min(., .),
  // but with min the tangent for narrow ranges [l, u] with l > u/2 lands
  // near u/2, far outside the range, and the relaxation degenerates; max
  // matches the construction's stated properties.
  double TOpt = std::max(TCrit, TCrit2);
  double Lambda = -1.0 / (TOpt * TOpt);
  return convexPiece(Lambda, 1.0 / TOpt, TOpt, 1.0 / L, L, 1.0 / U, U);
}

LinearPiece deept::zono::sqrtPiece(double L, double U) {
  assert(!(L > U) && "invalid bounds");
  // sqrt is unbounded above and its tangent construction NaNs on infinite
  // or NaN endpoints; cover them.
  if (!std::isfinite(L) || !std::isfinite(U))
    return unboundedPiece();
  L = std::max(L, 0.0);
  U = std::max(U, L);
  if (U - L < DegenerateWidth)
    return intervalPiece(std::sqrt(L), std::sqrt(U));
  double SL = std::sqrt(L), SU = std::sqrt(U);
  // Concave: chord below, tangent of equal slope above. The chord slope is
  // matched by the tangent at sqrt(t) = (sqrt(l) + sqrt(u)) / 2.
  double Lambda = 1.0 / (SL + SU);
  double ST = 0.5 * (SL + SU);
  double UpperOffset = ST - Lambda * ST * ST;
  double LowerOffset = SL - Lambda * L; // == SU - Lambda * U on the chord.
  LinearPiece P;
  P.Lambda = Lambda;
  P.Mu = 0.5 * (UpperOffset + LowerOffset);
  P.BetaNew = 0.5 * (UpperOffset - LowerOffset);
  assert(P.BetaNew >= -1e-12 && "sqrt piece produced negative radius");
  P.BetaNew = std::max(P.BetaNew, 0.0);
  return P;
}

Zonotope deept::zono::applyElementwise(
    const Zonotope &Z,
    const std::function<LinearPiece(double, double)> &PieceFn) {
  return applyElementwiseFn(Z, PieceFn);
}

namespace {

support::Counter &elementwiseCalls(const char *Fn) {
  return support::Metrics::global().counter(
      std::string("zono.elementwise.") + Fn + ".calls");
}

} // namespace

Zonotope deept::zono::applyRelu(const Zonotope &Z) {
  static support::Counter &Calls = elementwiseCalls("relu");
  Calls.add(1);
  return applyElementwiseFn(Z,
                            [](double L, double U) { return reluPiece(L, U); });
}

Zonotope deept::zono::applyRelu(Zonotope &&Z) {
  static support::Counter &Calls = elementwiseCalls("relu");
  Calls.add(1);
  return applyElementwiseFn(std::move(Z),
                            [](double L, double U) { return reluPiece(L, U); });
}

Zonotope deept::zono::applyTanh(const Zonotope &Z) {
  static support::Counter &Calls = elementwiseCalls("tanh");
  Calls.add(1);
  return applyElementwiseFn(Z,
                            [](double L, double U) { return tanhPiece(L, U); });
}

Zonotope deept::zono::applyTanh(Zonotope &&Z) {
  static support::Counter &Calls = elementwiseCalls("tanh");
  Calls.add(1);
  return applyElementwiseFn(std::move(Z),
                            [](double L, double U) { return tanhPiece(L, U); });
}

Zonotope deept::zono::applyExp(const Zonotope &Z, double Eps) {
  static support::Counter &Calls = elementwiseCalls("exp");
  Calls.add(1);
  return applyElementwiseFn(
      Z, [Eps](double L, double U) { return expPiece(L, U, Eps); });
}

Zonotope deept::zono::applyExp(Zonotope &&Z, double Eps) {
  static support::Counter &Calls = elementwiseCalls("exp");
  Calls.add(1);
  return applyElementwiseFn(
      std::move(Z), [Eps](double L, double U) { return expPiece(L, U, Eps); });
}

Zonotope deept::zono::applyRecip(const Zonotope &Z, double Eps) {
  static support::Counter &Calls = elementwiseCalls("recip");
  Calls.add(1);
  return applyElementwiseFn(
      Z, [Eps](double L, double U) { return recipPiece(L, U, Eps); });
}

Zonotope deept::zono::applyRecip(Zonotope &&Z, double Eps) {
  static support::Counter &Calls = elementwiseCalls("recip");
  Calls.add(1);
  return applyElementwiseFn(
      std::move(Z),
      [Eps](double L, double U) { return recipPiece(L, U, Eps); });
}

Zonotope deept::zono::applySqrt(const Zonotope &Z) {
  static support::Counter &Calls = elementwiseCalls("sqrt");
  Calls.add(1);
  return applyElementwiseFn(Z,
                            [](double L, double U) { return sqrtPiece(L, U); });
}

Zonotope deept::zono::applySqrt(Zonotope &&Z) {
  static support::Counter &Calls = elementwiseCalls("sqrt");
  Calls.add(1);
  return applyElementwiseFn(std::move(Z),
                            [](double L, double U) { return sqrtPiece(L, U); });
}
