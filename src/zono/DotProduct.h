//===- zono/DotProduct.h - Dot product abstract transformers ---*- C++ -*-===//
//
// Part of deept-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The dot product abstract transformers of Section 4.8: the exact affine
/// part of the product of two zonotope vectors plus an interval bound on
/// the quadratic noise-interaction remainder.
///
/// * DeepT-Fast bounds each of the four (phi/eps x phi/eps) interaction
///   blocks with the dual-norm cascade of Eq. 5, costing
///   O(N (E_p + E_inf)) per output variable.
/// * DeepT-Precise refines the eps-eps block with the eps_i * eps_j
///   interval analysis of Eq. 6 (eps^2 in [0,1], eps_i eps_j in [-1,1]),
///   costing O(N E_inf^2).
///
/// The cascade of Eq. 5 is not symmetric in its two operands; DualNormOrder
/// selects which operand's symbols the dual norm is applied to first
/// (Section 6.5 finds "l-infinity terms first" slightly better on average).
///
//===----------------------------------------------------------------------===//

#ifndef DEEPT_ZONO_DOTPRODUCT_H
#define DEEPT_ZONO_DOTPRODUCT_H

#include "zono/Zonotope.h"

namespace deept {
namespace zono {

/// Which bound is used for the eps-eps quadratic block.
enum class DotMethod {
  Fast,    ///< Eq. 5 dual-norm cascade for all four blocks.
  Precise, ///< Eq. 6 interval analysis for the eps-eps block.
};

/// Which operand the Eq. 5 dual norm is applied to first (the "inner"
/// row-norm side).
enum class DualNormOrder {
  InfFirst, ///< apply the dual norm on l-infinity symbols first (default)
  LpFirst,  ///< apply it on the lp symbols first
};

struct DotOptions {
  DotMethod Method = DotMethod::Fast;
  DualNormOrder Order = DualNormOrder::InfFirst;
};

/// Dot products between all row pairs: Z[i][j] = A.row(i) . B.row(j).
/// A is N x D, B is M x D, the result is N x M. A and B must share their
/// noise-symbol spaces (same input ancestry); eps spaces are aligned by
/// padding. Each output variable receives one fresh eps symbol absorbing
/// the quadratic remainder.
Zonotope dotRows(const Zonotope &A, const Zonotope &B,
                 const DotOptions &Opts = DotOptions());

/// Elementwise multiplication z_v = a_v * b_v of two equally shaped
/// zonotopes (the Section 4.9 multiplication transformer).
Zonotope mulElementwise(const Zonotope &A, const Zonotope &B,
                        const DotOptions &Opts = DotOptions());

} // namespace zono
} // namespace deept

#endif // DEEPT_ZONO_DOTPRODUCT_H
