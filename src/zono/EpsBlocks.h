//===- zono/EpsBlocks.h - Typed eps coefficient blocks ---------*- C++ -*-===//
//
// Part of deept-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Typed storage blocks for the eps coefficient matrix of a Multi-norm
/// Zonotope (see DESIGN.md "Coefficient storage"). The eps space is
/// append-only between noise reductions, and almost every appended block is
/// structurally sparse: fresh symbols from the elementwise / softmax /
/// dot-product transformers touch exactly one variable each (a diagonal
/// block), and space alignment appends all-zero rows. Storing those blocks
/// in their natural shape lets the affine transformers and the dual-norm
/// accumulations skip the zeros instead of multiplying them.
///
/// Block taxonomy:
///   - Dense: a Syms x NumVars coefficient matrix (the classical layout).
///   - Diag:  one (Var, Coef) entry per symbol; entry I is the only
///            potential nonzero of symbol Row0+I. Dropped symbols keep a
///            placeholder entry with Coef == 0.0.
///   - Zero:  Syms all-zero rows (eps-space padding).
///
//===----------------------------------------------------------------------===//

#ifndef DEEPT_ZONO_EPSBLOCKS_H
#define DEEPT_ZONO_EPSBLOCKS_H

#include "tensor/Matrix.h"

#include <deque>
#include <utility>
#include <vector>

namespace deept {
namespace zono {

using tensor::Matrix;

enum class EpsBlockKind { Dense, Diag, Zero };

/// One stored block of eps coefficient rows.
struct EpsBlock {
  EpsBlockKind Kind = EpsBlockKind::Zero;
  /// Dense payload (Kind == Dense): Syms x NumVars rows.
  Matrix D;
  /// Diagonal payload (Kind == Diag): exactly one entry per symbol.
  std::vector<std::pair<size_t, double>> Entries;
  /// Symbol count (Kind == Zero).
  size_t ZeroSyms = 0;

  size_t syms() const {
    switch (Kind) {
    case EpsBlockKind::Dense:
      return D.rows();
    case EpsBlockKind::Diag:
      return Entries.size();
    case EpsBlockKind::Zero:
      return ZeroSyms;
    }
    return 0;
  }
};

/// A read-only view of one block in a zonotope's eps storage; symbol
/// indices [Start, Start + Syms) live in this block. For Dense blocks
/// symbol S is row S - Start of *Dense; for Diag blocks it is entry
/// Entries[S - Start].
struct EpsBlockView {
  EpsBlockKind Kind = EpsBlockKind::Zero;
  size_t Start = 0;
  size_t Syms = 0;
  const Matrix *Dense = nullptr;
  const std::pair<size_t, double> *Entries = nullptr;
};

/// A per-symbol handle flattened out of a block-view list; convenient for
/// code that walks two eps spaces in lockstep (add, concatCols, dotRows).
struct EpsSymRef {
  EpsBlockKind Kind = EpsBlockKind::Zero;
  /// Kind == Dense: the symbol's coefficient row.
  const double *Row = nullptr;
  /// Kind == Diag: the symbol's single (Var, Coef) entry.
  std::pair<size_t, double> Entry{0, 0.0};
};

/// Flattens \p Views into one EpsSymRef per symbol. A Diag entry with a
/// zero coefficient degrades to Kind == Zero so callers get maximal
/// skipping for free. \p NumEps symbols are produced; views past the list
/// (aligned-away symbols) are treated as Zero.
inline std::vector<EpsSymRef>
flattenEpsViews(const std::vector<EpsBlockView> &Views, size_t NumEps) {
  std::vector<EpsSymRef> Refs(NumEps);
  for (const EpsBlockView &V : Views) {
    for (size_t I = 0; I < V.Syms; ++I) {
      EpsSymRef &R = Refs[V.Start + I];
      switch (V.Kind) {
      case EpsBlockKind::Dense:
        R.Kind = EpsBlockKind::Dense;
        R.Row = V.Dense->rowPtr(I);
        break;
      case EpsBlockKind::Diag:
        R.Entry = V.Entries[I];
        R.Kind = R.Entry.second == 0.0 ? EpsBlockKind::Zero
                                       : EpsBlockKind::Diag;
        break;
      case EpsBlockKind::Zero:
        break;
      }
    }
  }
  return Refs;
}

/// Builds a block list in ascending symbol order, merging adjacent blocks
/// of the same kind so the list stays short. Dense rows appended one at a
/// time are buffered and flushed as a single block.
class EpsBlockListBuilder {
public:
  explicit EpsBlockListBuilder(size_t NumVars) : NumVars(NumVars) {}

  void zero(size_t Syms) {
    if (Syms == 0)
      return;
    flushExcept(EpsBlockKind::Zero);
    PendingZero += Syms;
  }

  void diag(size_t Var, double Coef) {
    flushExcept(EpsBlockKind::Diag);
    PendingDiag.emplace_back(Var, Coef);
  }

  /// Appends one zero-initialised dense row and returns it for filling.
  double *denseRow() {
    flushExcept(EpsBlockKind::Dense);
    PendingDense.resize(PendingDense.size() + NumVars, 0.0);
    ++PendingDenseRows;
    return PendingDense.data() + (PendingDenseRows - 1) * NumVars;
  }

  /// Appends a whole dense block (Rows x NumVars), adopting the matrix as
  /// a block of its own (no copy). Adjacent dense blocks produced this way
  /// stay separate, which every reader handles.
  void dense(Matrix Rows) {
    if (Rows.rows() == 0)
      return;
    flushAll();
    EpsBlock B;
    B.Kind = EpsBlockKind::Dense;
    B.D = std::move(Rows);
    Blocks.push_back(std::move(B));
  }

  std::deque<EpsBlock> finish() {
    flushAll();
    return std::move(Blocks);
  }

private:
  /// At most one pending kind is nonempty at a time (every append flushes
  /// the others), so two complementary flushes drain everything.
  void flushAll() {
    flushExcept(EpsBlockKind::Zero);
    flushExcept(EpsBlockKind::Diag);
  }

  void flushExcept(EpsBlockKind Keep) {
    if (Keep != EpsBlockKind::Zero && PendingZero > 0) {
      EpsBlock B;
      B.Kind = EpsBlockKind::Zero;
      B.ZeroSyms = PendingZero;
      Blocks.push_back(std::move(B));
      PendingZero = 0;
    }
    if (Keep != EpsBlockKind::Diag && !PendingDiag.empty()) {
      EpsBlock B;
      B.Kind = EpsBlockKind::Diag;
      B.Entries = std::move(PendingDiag);
      Blocks.push_back(std::move(B));
      PendingDiag.clear();
    }
    if (Keep != EpsBlockKind::Dense && PendingDenseRows > 0) {
      EpsBlock B;
      B.Kind = EpsBlockKind::Dense;
      B.D = Matrix(PendingDenseRows, NumVars);
      std::copy(PendingDense.begin(), PendingDense.end(), B.D.data());
      Blocks.push_back(std::move(B));
      PendingDense.clear();
      PendingDenseRows = 0;
    }
  }

  size_t NumVars;
  std::deque<EpsBlock> Blocks;
  size_t PendingZero = 0;
  std::vector<std::pair<size_t, double>> PendingDiag;
  std::vector<double> PendingDense;
  size_t PendingDenseRows = 0;
};

} // namespace zono
} // namespace deept

#endif // DEEPT_ZONO_EPSBLOCKS_H
