//===- zono/Zonotope.h - The Multi-norm Zonotope domain --------*- C++ -*-===//
//
// Part of deept-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Multi-norm Zonotope abstract domain of "Fast and Precise
/// Certification of Transformers" (PLDI 2021), Section 4.
///
/// A Multi-norm Zonotope abstracts a tensor of variables x (viewed with a
/// logical Rows x Cols shape) as
///
///   x = c + A^T phi + B^T eps,   ||phi||_p <= 1,   eps_j in [-1, 1],
///
/// where the phi symbols model an lp-norm bound input perturbation
/// (p in {1, 2}) and the eps symbols are classical (l-infinity) Zonotope
/// noise symbols. Coefficients are stored symbol-major: Phi is
/// (#phi x #vars) and Eps is (#eps x #vars), so each coefficient row is the
/// flattened Rows x Cols coefficient tensor of one noise symbol.
///
/// Noise symbols are shared between zonotopes derived from the same input;
/// all binary operations align the eps spaces by zero-padding the shorter
/// one (symbols are allocated append-only between noise reductions).
///
/// Eps storage is block structured (EpsBlocks.h): a distinguished leading
/// dense block plus an append-only tail of typed blocks (Dense / Diag /
/// Zero). The affine transformers, bounds(), and the dual-norm kernels
/// consume the blocks directly, skipping structural zeros; epsCoeffs()
/// densifies on demand for the transformers that genuinely mix symbols
/// (mapLinear, the Eq. 6 Precise cascade, noise reduction, refinement).
/// Densification mutates the (logically const) cached storage, so it is
/// NOT safe inside a parallel region: hoist `const Matrix &E =
/// Z.epsCoeffs();` before any parallelFor that needs the dense view.
///
//===----------------------------------------------------------------------===//

#ifndef DEEPT_ZONO_ZONOTOPE_H
#define DEEPT_ZONO_ZONOTOPE_H

#include "tensor/Matrix.h"
#include "zono/EpsBlocks.h"

#include <deque>
#include <string>
#include <utility>
#include <vector>

namespace deept {
namespace support {
class Rng;
} // namespace support

namespace zono {

using tensor::Matrix;

/// A Multi-norm Zonotope over Rows x Cols variables.
class Zonotope {
public:
  Zonotope() = default;

  /// An abstraction of the exact constant tensor \p Center (no noise).
  /// \p PhiP fixes the norm of phi symbols added later (Matrix::InfNorm
  /// when the zonotope is classical).
  static Zonotope constant(const Matrix &Center, double PhiP);

  /// The lp ball of radius \p Radius around row \p Row of \p Center
  /// (threat model T1: one perturbed word embedding). For p = infinity the
  /// ball is expressed with classical eps symbols; otherwise with phi
  /// symbols bound by ||phi||_p <= 1.
  static Zonotope lpBallOnRow(const Matrix &Center, size_t Row, double P,
                              double Radius);

  /// The lp ball of radius \p Radius around the whole tensor \p Center.
  static Zonotope lpBall(const Matrix &Center, double P, double Radius);

  /// The box [Lo, Hi] (threat model T2: synonym boxes). Dimensions with
  /// Lo == Hi get no noise symbol.
  static Zonotope box(const Matrix &Lo, const Matrix &Hi);

  size_t rows() const { return NumRows; }
  size_t cols() const { return NumCols; }
  size_t numVars() const { return NumRows * NumCols; }
  size_t numPhi() const { return PhiC.rows(); }
  size_t numEps() const { return EpsDense.rows() + TailSyms; }
  double phiP() const { return PhiP; }

  const Matrix &center() const { return Center; }
  Matrix &center() { return Center; }
  const Matrix &phiCoeffs() const { return PhiC; }
  Matrix &phiCoeffs() { return PhiC; }

  /// The dense numEps() x numVars() eps coefficient matrix. Densifies the
  /// block tail on first access (counted in zono.densify_count); not safe
  /// to call for the first time inside a parallel region -- hoist the
  /// reference before dispatching workers.
  const Matrix &epsCoeffs() const {
    densifyEps();
    return EpsDense;
  }
  Matrix &epsCoeffs() {
    densifyEps();
    return EpsDense;
  }

  /// The eps storage as an ordered list of typed block views (the leading
  /// dense block first when non-empty). Views are invalidated by any
  /// mutation of the zonotope, including epsCoeffs().
  std::vector<EpsBlockView> epsBlockViews() const;

  /// Number of stored eps blocks (leading dense block included).
  size_t epsBlockCount() const {
    return (EpsDense.rows() > 0 ? 1 : 0) + EpsTail.size();
  }

  /// Fraction of eps symbols stored in Diag or Zero (structured) blocks;
  /// 0 when there are no eps symbols.
  double epsStructuredFraction() const;

  /// Per-variable q-norm over the eps symbol axis (1 x numVars), computed
  /// block-wise with zero skipping. Accumulation per variable runs in
  /// ascending symbol order, so the result is bit-identical to the dense
  /// kernel at any thread count. Q follows Matrix::InfNorm conventions.
  Matrix epsColumnDualNorms(double Q) const;

  /// Per-variable dual norm ||alpha_k||_q over the phi symbol axis
  /// (1 x numVars), with q the dual exponent of phiP(). This is exactly
  /// the phi half of radii() -- exported separately so the certificate
  /// producer (verify/Certificate) can record the two dual-norm inputs of
  /// Theorem 1 individually; the values are bit-identical to the ones
  /// radii()/bounds() consume.
  Matrix phiColumnDualNorms() const;

  /// Computes per-variable concrete bounds (Theorem 1): for variable k,
  ///   l_k = c_k - ||alpha_k||_q - ||beta_k||_1,
  ///   u_k = c_k + ||alpha_k||_q + ||beta_k||_1,
  /// with q the dual exponent of p. Outputs are Rows x Cols.
  void bounds(Matrix &Lo, Matrix &Hi) const;

  /// Per-variable noise radius ||alpha_k||_q + ||beta_k||_1 (Rows x Cols).
  Matrix radii() const;

  // --- Exact affine transformers (Theorem 2). ---

  /// this + O (shared noise symbols; eps spaces are aligned).
  Zonotope add(const Zonotope &O) const;

  /// this - O.
  Zonotope sub(const Zonotope &O) const;

  /// this + constant tensor. The rvalue overload reuses this zonotope's
  /// storage instead of deep-copying the coefficient planes.
  Zonotope addConst(const Matrix &C) const &;
  Zonotope addConst(const Matrix &C) &&;

  /// this * scalar (rvalue overload scales in place).
  Zonotope scale(double S) const &;
  Zonotope scale(double S) &&;

  /// View (Rows x Cols) multiplied on the right by constant W (Cols x D).
  Zonotope matmulRightConst(const Matrix &W) const;

  /// Constant W (M x Rows) times the view.
  Zonotope matmulLeftConst(const Matrix &W) const;

  /// Per row i: y[i][j] = x[i][j] - mean_j x[i][j] (the paper's layer
  /// normalization without division by the standard deviation).
  Zonotope subRowMean() const;

  /// Fused subRowMean().scaleColumns(Gamma) -- the layer-norm affine core
  /// in one pass over the coefficient planes, bit-identical to the
  /// two-step composition.
  Zonotope subRowMeanScale(const Matrix &Gamma) const;

  /// Row means as a Rows x 1 zonotope.
  Zonotope rowMeans() const;

  /// y[i][j] = Gamma[j] * x[i][j] (Gamma is 1 x Cols).
  Zonotope scaleColumns(const Matrix &Gamma) const;

  /// y[i][j] = x[i][j] + Bias[j] (Bias is 1 x Cols). The rvalue overload
  /// shifts the center in place (the coefficients are untouched).
  Zonotope addRowBroadcast(const Matrix &Bias) const &;
  Zonotope addRowBroadcast(const Matrix &Bias) &&;

  /// Row \p R as a 1 x Cols zonotope.
  Zonotope selectRow(size_t R) const;

  /// Columns [C0, C1) of the view.
  Zonotope selectColRange(size_t C0, size_t C1) const;

  /// The transposed view (Cols x Rows); coefficients are permuted.
  Zonotope transposedView() const;

  /// Reshape of the view; element count preserved.
  Zonotope reshapedView(size_t Rows, size_t Cols) const;

  /// Broadcast of a Rows x 1 view to Rows x Cols: y[i][j] = x[i][0].
  Zonotope broadcastColTo(size_t Cols) const;

  /// The pairwise-difference expansion used by the stable softmax rewrite:
  /// maps a Rows x Cols view to a (Rows*Cols) x Cols view with
  /// y[(r, j)][j'] = x[r][j'] - x[r][j] (exact, Theorem 2).
  Zonotope pairwiseDiffExpand() const;

  /// Row sums of a (Rows*Cols) x InCols view folded back to Rows x Cols:
  /// y[r][j] = sum_{j'} x[(r, j)][j']. The inverse companion of
  /// pairwiseDiffExpand; preserves Diag blocks.
  Zonotope rowSumsTo(size_t Rows, size_t Cols) const;

  /// Per row i: y[i][j] = sum_j' x[i][j'] (row sums broadcast back to the
  /// row, used by the naive softmax composition).
  Zonotope rowSumBroadcast() const;

  /// Horizontal concatenation of zonotopes with equal row counts.
  static Zonotope concatCols(const std::vector<Zonotope> &Parts);

  /// Applies an arbitrary linear map \p Fn of the view to the center and
  /// to every coefficient row (exact, Theorem 2). Fn must map a Rows x
  /// Cols matrix to a NewRows x NewCols matrix and be linear. Densifies
  /// the eps storage (the map is opaque, so no structure survives).
  Zonotope
  mapLinearPublic(size_t NewRows, size_t NewCols,
                  const std::function<Matrix(const Matrix &)> &Fn) const {
    return mapLinear(NewRows, NewCols, Fn);
  }

  // --- Noise-symbol plumbing. ---

  /// Replaces both coefficient matrices wholesale (column counts must
  /// equal numVars()). Used by transformers that compute coefficients
  /// symbol by symbol.
  void installCoeffs(Matrix Phi, Matrix Eps);

  /// Replaces the phi matrix and installs block-structured eps storage.
  void installCoeffs(Matrix Phi, std::deque<EpsBlock> EpsBlocks);

  /// Pads the eps space with zero coefficient rows up to \p Count symbols.
  void padEpsTo(size_t Count);

  /// Pads the phi space with zero coefficient rows (used when combining
  /// with constants created after the input).
  void padPhiTo(size_t Count);

  /// Aligns the eps spaces of \p A and \p B by zero padding.
  static void alignEps(Zonotope &A, Zonotope &B);

  /// Aligns both phi and eps spaces by zero padding; if one operand has no
  /// phi symbols it adopts the other's norm.
  static void alignSpaces(Zonotope &A, Zonotope &B);

  /// One-sided alignSpaces: pads this zonotope's phi/eps spaces up to
  /// \p O's counts (adopting O's norm when this has no phi symbols).
  /// Callers that know \p O is already at least as wide use this to avoid
  /// copying the wider operand just to run a no-op pad on it.
  void padToMatch(const Zonotope &O);

  /// Appends a block of fresh eps symbols, one per entry; entry (Var, Coef)
  /// gives the coefficient of the new symbol on variable Var. Returns the
  /// index of the first new symbol.
  size_t
  appendFreshEps(const std::vector<std::pair<size_t, double>> &Entries);

  /// Scales variable v's center and all of its noise coefficients by
  /// Lambda[v] (Lambda has the view's shape). Used by the elementwise
  /// transformers, whose output is Lambda * x + Mu + Beta * eps_new.
  void scalePerVarInPlace(const Matrix &Lambda);

  /// Adds Mu (view shaped) to the center in place.
  void shiftCenterInPlace(const Matrix &Mu);

  /// Rewrites eps symbol \p Sym as Mid + Rad * eps_new in place (used after
  /// the softmax sum refinement tightens a symbol's range to
  /// [Mid - Rad, Mid + Rad]). The symbol slot is reused for eps_new.
  void rewriteEpsSymbol(size_t Sym, double Mid, double Rad);

  /// A concrete member of the concretization: noise symbols are sampled
  /// inside their domains. If \p OnBoundary is true the phi vector is
  /// scaled onto the unit lp sphere and eps values are +-1.
  Matrix sample(support::Rng &Rng, bool OnBoundary = false) const;

  /// Samples admissible noise values (||phi||_p <= 1, eps in [-1, 1])
  /// without evaluating; used by tests that track points through
  /// transformers.
  void sampleNoise(support::Rng &Rng, bool OnBoundary,
                   std::vector<double> &PhiVals,
                   std::vector<double> &EpsVals) const;

  /// Evaluates the zonotope at explicit noise values (sizes must match).
  Matrix evaluate(const std::vector<double> &PhiVals,
                  const std::vector<double> &EpsVals) const;

  /// Memory footprint of the coefficient storage in bytes: the phi matrix,
  /// the center, the leading dense eps block, and the actual payload of
  /// every tail block (entries for Diag, rows for Dense, headers for all).
  size_t coeffBytes() const;

  /// Cheap soundness check: the center and every coefficient must be
  /// finite (a NaN or infinity means the abstraction no longer bounds
  /// anything), coefficient matrices must have numVars() columns (or be
  /// empty), and the phi norm must be a valid exponent. Returns false and
  /// fills \p Why (optional) on the first violation. O(number of stored
  /// doubles) with early exit; the verifier runs it after every abstract
  /// transformer when VerifierConfig::ValidateAbstractions is set. Never
  /// densifies.
  bool validate(std::string *Why = nullptr) const;

private:
  size_t NumRows = 0;
  size_t NumCols = 0;
  Matrix Center;                       // NumRows x NumCols
  double PhiP = Matrix::InfNorm;       // p of the phi symbols
  Matrix PhiC;                         // numPhi x numVars
  /// Leading dense eps block; epsCoeffs() folds the tail into it, so its
  /// identity (and reference stability) matches the old monolithic EpsC.
  mutable Matrix EpsDense;
  /// Typed tail blocks in symbol order (std::deque: stable references
  /// under push_back) and their cached total symbol count.
  mutable std::deque<EpsBlock> EpsTail;
  mutable size_t TailSyms = 0;

  /// Folds the tail into EpsDense (no-op when the tail is empty). Bumps
  /// zono.densify_count.
  void densifyEps() const;

  /// Replaces the eps storage with \p Blocks (a leading Dense block is
  /// promoted into EpsDense).
  void installEpsBlocks(std::deque<EpsBlock> Blocks);

  /// Applies a linear map of the flattened variables to center and every
  /// coefficient row: NewVars = Fn(OldVarsViewedRowsxCols). Densifies.
  Zonotope
  mapLinear(size_t NewRows, size_t NewCols,
            const std::function<Matrix(const Matrix &)> &Fn) const;

  /// Shared skeleton of the structure-preserving affine transformers:
  /// BlockFn maps any dense S x numVars coefficient block (and the center,
  /// viewed as 1 x numVars) to its S x NewVars image; DiagFn maps one Diag
  /// entry to the single output entry of the same symbol.
  template <typename BlockFnT, typename DiagFnT>
  Zonotope epsMapDiag(size_t NewRows, size_t NewCols, const BlockFnT &BlockFn,
                      const DiagFnT &DiagFn) const;

  /// Shared skeleton of the scattering affine transformers: like
  /// epsMapDiag, but a Diag entry expands to a sparse set of output
  /// variables, written by ScatterFn(Var, Coef, OutRow) into a
  /// zero-initialised row (Diag blocks become Dense blocks of the same
  /// symbol range, computed in O(nnz) instead of a GEMM).
  template <typename BlockFnT, typename ScatterFnT>
  Zonotope epsMapScatter(size_t NewRows, size_t NewCols,
                         const BlockFnT &BlockFn,
                         const ScatterFnT &ScatterFn) const;
};

} // namespace zono
} // namespace deept

#endif // DEEPT_ZONO_ZONOTOPE_H
