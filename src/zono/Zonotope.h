//===- zono/Zonotope.h - The Multi-norm Zonotope domain --------*- C++ -*-===//
//
// Part of deept-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Multi-norm Zonotope abstract domain of "Fast and Precise
/// Certification of Transformers" (PLDI 2021), Section 4.
///
/// A Multi-norm Zonotope abstracts a tensor of variables x (viewed with a
/// logical Rows x Cols shape) as
///
///   x = c + A^T phi + B^T eps,   ||phi||_p <= 1,   eps_j in [-1, 1],
///
/// where the phi symbols model an lp-norm bound input perturbation
/// (p in {1, 2}) and the eps symbols are classical (l-infinity) Zonotope
/// noise symbols. Coefficients are stored symbol-major: Phi is
/// (#phi x #vars) and Eps is (#eps x #vars), so each coefficient row is the
/// flattened Rows x Cols coefficient tensor of one noise symbol.
///
/// Noise symbols are shared between zonotopes derived from the same input;
/// all binary operations align the eps spaces by zero-padding the shorter
/// one (symbols are allocated append-only between noise reductions).
///
//===----------------------------------------------------------------------===//

#ifndef DEEPT_ZONO_ZONOTOPE_H
#define DEEPT_ZONO_ZONOTOPE_H

#include "tensor/Matrix.h"

#include <string>
#include <utility>
#include <vector>

namespace deept {
namespace support {
class Rng;
} // namespace support

namespace zono {

using tensor::Matrix;

/// A Multi-norm Zonotope over Rows x Cols variables.
class Zonotope {
public:
  Zonotope() = default;

  /// An abstraction of the exact constant tensor \p Center (no noise).
  /// \p PhiP fixes the norm of phi symbols added later (Matrix::InfNorm
  /// when the zonotope is classical).
  static Zonotope constant(const Matrix &Center, double PhiP);

  /// The lp ball of radius \p Radius around row \p Row of \p Center
  /// (threat model T1: one perturbed word embedding). For p = infinity the
  /// ball is expressed with classical eps symbols; otherwise with phi
  /// symbols bound by ||phi||_p <= 1.
  static Zonotope lpBallOnRow(const Matrix &Center, size_t Row, double P,
                              double Radius);

  /// The lp ball of radius \p Radius around the whole tensor \p Center.
  static Zonotope lpBall(const Matrix &Center, double P, double Radius);

  /// The box [Lo, Hi] (threat model T2: synonym boxes). Dimensions with
  /// Lo == Hi get no noise symbol.
  static Zonotope box(const Matrix &Lo, const Matrix &Hi);

  size_t rows() const { return NumRows; }
  size_t cols() const { return NumCols; }
  size_t numVars() const { return NumRows * NumCols; }
  size_t numPhi() const { return PhiC.rows(); }
  size_t numEps() const { return EpsC.rows(); }
  double phiP() const { return PhiP; }

  const Matrix &center() const { return Center; }
  Matrix &center() { return Center; }
  const Matrix &phiCoeffs() const { return PhiC; }
  Matrix &phiCoeffs() { return PhiC; }
  const Matrix &epsCoeffs() const { return EpsC; }
  Matrix &epsCoeffs() { return EpsC; }

  /// Computes per-variable concrete bounds (Theorem 1): for variable k,
  ///   l_k = c_k - ||alpha_k||_q - ||beta_k||_1,
  ///   u_k = c_k + ||alpha_k||_q + ||beta_k||_1,
  /// with q the dual exponent of p. Outputs are Rows x Cols.
  void bounds(Matrix &Lo, Matrix &Hi) const;

  /// Per-variable noise radius ||alpha_k||_q + ||beta_k||_1 (Rows x Cols).
  Matrix radii() const;

  // --- Exact affine transformers (Theorem 2). ---

  /// this + O (shared noise symbols; eps spaces are aligned).
  Zonotope add(const Zonotope &O) const;

  /// this - O.
  Zonotope sub(const Zonotope &O) const;

  /// this + constant tensor.
  Zonotope addConst(const Matrix &C) const;

  /// this * scalar.
  Zonotope scale(double S) const;

  /// View (Rows x Cols) multiplied on the right by constant W (Cols x D).
  Zonotope matmulRightConst(const Matrix &W) const;

  /// Constant W (M x Rows) times the view.
  Zonotope matmulLeftConst(const Matrix &W) const;

  /// Per row i: y[i][j] = x[i][j] - mean_j x[i][j] (the paper's layer
  /// normalization without division by the standard deviation).
  Zonotope subRowMean() const;

  /// Row means as a Rows x 1 zonotope.
  Zonotope rowMeans() const;

  /// y[i][j] = Gamma[j] * x[i][j] (Gamma is 1 x Cols).
  Zonotope scaleColumns(const Matrix &Gamma) const;

  /// y[i][j] = x[i][j] + Bias[j] (Bias is 1 x Cols).
  Zonotope addRowBroadcast(const Matrix &Bias) const;

  /// Row \p R as a 1 x Cols zonotope.
  Zonotope selectRow(size_t R) const;

  /// Columns [C0, C1) of the view.
  Zonotope selectColRange(size_t C0, size_t C1) const;

  /// The transposed view (Cols x Rows); coefficients are permuted.
  Zonotope transposedView() const;

  /// Reshape of the view; element count preserved.
  Zonotope reshapedView(size_t Rows, size_t Cols) const;

  /// Horizontal concatenation of zonotopes with equal row counts.
  static Zonotope concatCols(const std::vector<Zonotope> &Parts);

  /// Applies an arbitrary linear map \p Fn of the view to the center and
  /// to every coefficient row (exact, Theorem 2). Fn must map a Rows x
  /// Cols matrix to a NewRows x NewCols matrix and be linear.
  Zonotope
  mapLinearPublic(size_t NewRows, size_t NewCols,
                  const std::function<Matrix(const Matrix &)> &Fn) const {
    return mapLinear(NewRows, NewCols, Fn);
  }

  // --- Noise-symbol plumbing. ---

  /// Replaces both coefficient matrices wholesale (column counts must
  /// equal numVars()). Used by transformers that compute coefficients
  /// symbol by symbol.
  void installCoeffs(Matrix Phi, Matrix Eps);

  /// Pads the eps space with zero coefficient rows up to \p Count symbols.
  void padEpsTo(size_t Count);

  /// Pads the phi space with zero coefficient rows (used when combining
  /// with constants created after the input).
  void padPhiTo(size_t Count);

  /// Aligns the eps spaces of \p A and \p B by zero padding.
  static void alignEps(Zonotope &A, Zonotope &B);

  /// Aligns both phi and eps spaces by zero padding; if one operand has no
  /// phi symbols it adopts the other's norm.
  static void alignSpaces(Zonotope &A, Zonotope &B);

  /// Appends a block of fresh eps symbols, one per entry; entry (Var, Coef)
  /// gives the coefficient of the new symbol on variable Var. Returns the
  /// index of the first new symbol.
  size_t
  appendFreshEps(const std::vector<std::pair<size_t, double>> &Entries);

  /// Scales variable v's center and all of its noise coefficients by
  /// Lambda[v] (Lambda has the view's shape). Used by the elementwise
  /// transformers, whose output is Lambda * x + Mu + Beta * eps_new.
  void scalePerVarInPlace(const Matrix &Lambda);

  /// Adds Mu (view shaped) to the center in place.
  void shiftCenterInPlace(const Matrix &Mu);

  /// Rewrites eps symbol \p Sym as Mid + Rad * eps_new in place (used after
  /// the softmax sum refinement tightens a symbol's range to
  /// [Mid - Rad, Mid + Rad]). The symbol slot is reused for eps_new.
  void rewriteEpsSymbol(size_t Sym, double Mid, double Rad);

  /// A concrete member of the concretization: noise symbols are sampled
  /// inside their domains. If \p OnBoundary is true the phi vector is
  /// scaled onto the unit lp sphere and eps values are +-1.
  Matrix sample(support::Rng &Rng, bool OnBoundary = false) const;

  /// Samples admissible noise values (||phi||_p <= 1, eps in [-1, 1])
  /// without evaluating; used by tests that track points through
  /// transformers.
  void sampleNoise(support::Rng &Rng, bool OnBoundary,
                   std::vector<double> &PhiVals,
                   std::vector<double> &EpsVals) const;

  /// Evaluates the zonotope at explicit noise values (sizes must match).
  Matrix evaluate(const std::vector<double> &PhiVals,
                  const std::vector<double> &EpsVals) const;

  /// Approximate memory footprint of the coefficient matrices in bytes.
  size_t coeffBytes() const {
    return (PhiC.size() + EpsC.size() + Center.size()) * sizeof(double);
  }

  /// Cheap soundness check: the center and every coefficient must be
  /// finite (a NaN or infinity means the abstraction no longer bounds
  /// anything), coefficient matrices must have numVars() columns (or be
  /// empty), and the phi norm must be a valid exponent. Returns false and
  /// fills \p Why (optional) on the first violation. O(number of stored
  /// doubles) with early exit; the verifier runs it after every abstract
  /// transformer when VerifierConfig::ValidateAbstractions is set.
  bool validate(std::string *Why = nullptr) const;

private:
  size_t NumRows = 0;
  size_t NumCols = 0;
  Matrix Center;                       // NumRows x NumCols
  double PhiP = Matrix::InfNorm;       // p of the phi symbols
  Matrix PhiC;                         // numPhi x numVars
  Matrix EpsC;                         // numEps x numVars

  /// Applies a linear map of the flattened variables to center and every
  /// coefficient row: NewVars = Fn(OldVarsViewedRowsxCols).
  Zonotope
  mapLinear(size_t NewRows, size_t NewCols,
            const std::function<Matrix(const Matrix &)> &Fn) const;
};

} // namespace zono
} // namespace deept

#endif // DEEPT_ZONO_ZONOTOPE_H
