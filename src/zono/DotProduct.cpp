//===- zono/DotProduct.cpp ------------------------------------*- C++ -*-===//

#include "zono/DotProduct.h"

#include "support/Fp.h"
#include "support/Metrics.h"
#include "support/Parallel.h"
#include "support/Trace.h"
#include "tensor/Kernels.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <deque>
#include <optional>
#include <vector>

using namespace deept;
using namespace deept::zono;
using support::grainForWork;
using support::parallelFor;
using tensor::dualExponent;

namespace {

/// Per-variable q-norms over the symbol axis of a coefficient matrix whose
/// rows are flattened M x D views: returns an M x D matrix of norms.
/// Parallel over variable ranges; per variable the symbol axis accumulates
/// in ascending order, so results do not depend on the thread count.
Matrix perVarSymbolNorms(const Matrix &Coeffs, double Q, size_t M, size_t D) {
  Matrix Out(M, D, 0.0);
  double *O = Out.data();
  size_t NumVars = M * D;
  size_t NumS = Coeffs.rows();
  parallelFor(0, NumVars, support::reductionGrain(NumVars),
              [&](size_t V0, size_t V1) {
    const tensor::Kernels &K = tensor::kernels();
    size_t W = V1 - V0;
    if (support::fpPrecision() == support::FpPrecision::F32) {
      // Single-precision accumulation with the sound upward lift; the
      // lifted values upper-bound the f64 results per variable (see
      // tensor::detail::f32SumUpper).
      std::vector<float> FAcc(W, 0.0f);
      for (size_t S = 0; S < NumS; ++S) {
        const double *Row = Coeffs.rowPtr(S) + V0;
        if (Q == 1.0)
          K.AccAbsF32(Row, FAcc.data(), W);
        else if (Q == 2.0)
          K.AccSqF32(Row, FAcc.data(), W);
        else
          K.AccMaxAbsF32(Row, FAcc.data(), W);
      }
      for (size_t V = V0; V < V1; ++V) {
        if (Q == Matrix::InfNorm)
          O[V] = tensor::detail::f32MaxUpper(FAcc[V - V0]);
        else
          O[V] = tensor::detail::f32SumUpper(FAcc[V - V0], NumS);
      }
      if (Q == 2.0)
        for (size_t V = V0; V < V1; ++V)
          O[V] = std::sqrt(O[V]);
      return;
    }
    for (size_t S = 0; S < NumS; ++S) {
      const double *Row = Coeffs.rowPtr(S) + V0;
      if (Q == 1.0)
        K.AccAbs(Row, O + V0, W);
      else if (Q == 2.0)
        K.AccSq(Row, O + V0, W);
      else
        K.AccMaxAbs(Row, O + V0, W);
    }
    if (Q == 2.0)
      for (size_t V = V0; V < V1; ++V)
        O[V] = std::sqrt(O[V]);
  });
  return Out;
}

/// A one-element block-view list over a dense coefficient matrix (used to
/// feed the phi matrix through the block-aware cascade).
std::vector<EpsBlockView> denseViews(const Matrix &Coeffs) {
  std::vector<EpsBlockView> Views;
  if (Coeffs.rows() > 0) {
    EpsBlockView V;
    V.Kind = EpsBlockKind::Dense;
    V.Start = 0;
    V.Syms = Coeffs.rows();
    V.Dense = &Coeffs;
    Views.push_back(V);
  }
  return Views;
}

/// The Eq. 5 cascade: bounds |(V xi1) . (W xi2)| for all (outer row, inner
/// row) pairs. \p Outer holds the xi1 coefficient blocks of an N x D view;
/// \p InnerNorms is the M x D matrix of per-variable dual norms of the xi2
/// coefficients (the inner dual norm is applied first), and \p QOuter the
/// dual exponent accumulated over Outer's symbols. Returns an N x M matrix
/// U with |quad| <= U.
///
/// Parallel over the outer output rows: each row accumulates its symbol
/// cascade independently, walking the blocks in ascending symbol order
/// with ascending-d dots, so the result is bit-identical at any thread
/// count. Zero and off-row Diag symbols contribute an exact +0.0 cascade
/// term, which is an identity on the nonnegative accumulator, so skipping
/// them preserves the dense kernel's bits.
Matrix fastAbsBound(const std::vector<EpsBlockView> &Outer, size_t OuterSyms,
                    double QOuter, size_t N, const Matrix &InnerNorms,
                    size_t M, size_t D) {
  Matrix Acc(N, M, 0.0);
  parallelFor(0, N, grainForWork(OuterSyms * M * D), [&](size_t I0,
                                                         size_t I1) {
    const tensor::Kernels &KT = tensor::kernels();
    std::vector<double> AbsS(D), TRow(M);
    for (size_t I = I0; I < I1; ++I) {
      double *AccRow = Acc.rowPtr(I);
      auto Accumulate = [&]() {
        // TRow is nonnegative, so Axpy(1.0)/AccSq/AccMaxAbs reproduce the
        // former += / += square / max loops bit-for-bit.
        if (QOuter == 1.0)
          KT.Axpy(1.0, TRow.data(), AccRow, M);
        else if (QOuter == 2.0)
          KT.AccSq(TRow.data(), AccRow, M);
        else
          KT.AccMaxAbs(TRow.data(), AccRow, M);
      };
      for (const EpsBlockView &BV : Outer) {
        switch (BV.Kind) {
        case EpsBlockKind::Zero:
          break;
        case EpsBlockKind::Diag:
          for (size_t E = 0; E < BV.Syms; ++E) {
            const auto &En = BV.Entries[E];
            if (En.second == 0.0 || En.first / D != I)
              continue;
            size_t K0 = En.first % D;
            double AbsC = std::fabs(En.second);
            for (size_t J = 0; J < M; ++J)
              TRow[J] = AbsC * InnerNorms.rowPtr(J)[K0];
            Accumulate();
          }
          break;
        case EpsBlockKind::Dense:
          // One dispatch for the whole block: the fused kernel runs the
          // AbsRow / zero-skip / 1-row dot / accumulate sequence per
          // symbol with the helpers inlined (bit-identical to the unfused
          // calls -- see tensor::Kernels::CascadeDense).
          KT.CascadeDense(BV.Dense->rowPtr(0) + I * D, BV.Syms,
                          BV.Dense->cols(), InnerNorms.data(), M, D, QOuter,
                          AbsS.data(), TRow.data(), AccRow);
          break;
        }
      }
      if (QOuter == 2.0)
        for (size_t J = 0; J < M; ++J)
          AccRow[J] = std::sqrt(AccRow[J]);
    }
  });
  return Acc;
}

/// Lists, for each row of an N x D view, the symbols whose coefficient
/// slice on that row is not identically zero. Fresh (diagonal) symbols
/// touch a single variable, so these lists are short in practice.
/// Parallel over rows; each row's list stays in ascending symbol order.
std::vector<std::vector<size_t>> activeSymbolsPerRow(const Matrix &Coeffs,
                                                     size_t N, size_t D) {
  std::vector<std::vector<size_t>> Active(N);
  size_t NumS = Coeffs.rows();
  parallelFor(0, N, grainForWork(NumS * D), [&](size_t I0, size_t I1) {
    for (size_t I = I0; I < I1; ++I) {
      for (size_t S = 0; S < NumS; ++S) {
        const double *Slice = Coeffs.rowPtr(S) + I * D;
        for (size_t K = 0; K < D; ++K) {
          if (Slice[K] != 0.0) {
            Active[I].push_back(S);
            break;
          }
        }
      }
    }
  });
  return Active;
}

/// The Eq. 6 eps-eps interval bound: accumulates, for every output pair,
///   sum_s (v_s . w_s) * [0, 1]  +  sum_{s != t} (v_s . w_t) * [-1, 1]
/// into (Lo, Hi). Parallel over the rows of the N x M output; the
/// per-pair double loop over active symbols keeps its serial order.
void preciseEpsBound(const Matrix &EA, size_t N, const Matrix &EB, size_t M,
                     size_t D, Matrix &Lo, Matrix &Hi) {
  Lo = Matrix(N, M, 0.0);
  Hi = Matrix(N, M, 0.0);
  assert(EA.rows() == EB.rows() && "eps spaces must be aligned");
  auto ActiveA = activeSymbolsPerRow(EA, N, D);
  auto ActiveB = activeSymbolsPerRow(EB, M, D);
  parallelFor(0, N, 1, [&](size_t I0, size_t I1) {
    for (size_t I = I0; I < I1; ++I) {
      for (size_t J = 0; J < M; ++J) {
        double L = 0.0, H = 0.0;
        for (size_t S : ActiveA[I]) {
          const double *AS = EA.rowPtr(S) + I * D;
          for (size_t T : ActiveB[J]) {
            const double *BT = EB.rowPtr(T) + J * D;
            double G = tensor::kernels().Dot(AS, BT, D);
            if (S == T) {
              // eps^2 in [0, 1].
              if (G > 0.0)
                H += G;
              else
                L += G;
            } else {
              // eps_s eps_t in [-1, 1].
              H += std::fabs(G);
              L -= std::fabs(G);
            }
          }
        }
        Lo.at(I, J) = L;
        Hi.at(I, J) = H;
      }
    }
  });
}

/// Accumulates the four quadratic interaction blocks of dotRows into
/// (QLo, QHi) according to \p Opts. The Fast cascades consume the eps
/// blocks directly; only the Precise Eq. 6 path densifies (serially, from
/// this non-parallel context).
void quadraticBounds(const Zonotope &A, const Zonotope &B, size_t N,
                     size_t M, size_t D, const DotOptions &Opts, Matrix &QLo,
                     Matrix &QHi) {
  QLo = Matrix(N, M, 0.0);
  QHi = Matrix(N, M, 0.0);
  double P = A.phiP();
  double QP = dualExponent(P);
  bool InfFirst = Opts.Order == DualNormOrder::InfFirst;

  auto AccumulateSym = [&](const Matrix &U) {
    QLo -= U;
    QHi += U;
  };

  bool HavePhi = A.numPhi() > 0;
  // The operands' eps spaces may have different lengths on the Fast path
  // (dotRows no longer pads): every Fast term below bounds one side's own
  // symbols against the other side's per-column norms, so a missing
  // symbol simply contributes nothing.
  bool HaveEps = A.numEps() > 0 || B.numEps() > 0;
  auto APhi = denseViews(A.phiCoeffs());
  auto BPhi = denseViews(B.phiCoeffs());

  if (HavePhi) {
    // phi-phi block; the order flag picks which operand is inner.
    if (InfFirst)
      AccumulateSym(fastAbsBound(APhi, A.numPhi(), QP, N,
                                 perVarSymbolNorms(B.phiCoeffs(), QP, M, D),
                                 M, D));
    else
      AccumulateSym(fastAbsBound(BPhi, B.numPhi(), QP, M,
                                 perVarSymbolNorms(A.phiCoeffs(), QP, N, D),
                                 N, D)
                        .transposed());
  }
  if (HavePhi && HaveEps) {
    // phi-eps and eps-phi mixed blocks. "InfFirst" makes the eps side the
    // inner one (its dual norm is applied first).
    if (InfFirst) {
      AccumulateSym(fastAbsBound(APhi, A.numPhi(), QP, N,
                                 B.epsColumnDualNorms(1.0).reshaped(M, D),
                                 M, D));
      AccumulateSym(fastAbsBound(BPhi, B.numPhi(), QP, M,
                                 A.epsColumnDualNorms(1.0).reshaped(N, D),
                                 N, D)
                        .transposed());
    } else {
      AccumulateSym(fastAbsBound(B.epsBlockViews(), B.numEps(), 1.0, M,
                                 perVarSymbolNorms(A.phiCoeffs(), QP, N, D),
                                 N, D)
                        .transposed());
      AccumulateSym(fastAbsBound(A.epsBlockViews(), A.numEps(), 1.0, N,
                                 perVarSymbolNorms(B.phiCoeffs(), QP, M, D),
                                 M, D));
    }
  }
  if (HaveEps) {
    if (Opts.Method == DotMethod::Precise) {
      Matrix Lo, Hi;
      preciseEpsBound(A.epsCoeffs(), N, B.epsCoeffs(), M, D, Lo, Hi);
      QLo += Lo;
      QHi += Hi;
    } else if (InfFirst) {
      AccumulateSym(fastAbsBound(A.epsBlockViews(), A.numEps(), 1.0, N,
                                 B.epsColumnDualNorms(1.0).reshaped(M, D),
                                 M, D));
    } else {
      AccumulateSym(fastAbsBound(B.epsBlockViews(), B.numEps(), 1.0, M,
                                 A.epsColumnDualNorms(1.0).reshaped(N, D),
                                 N, D)
                        .transposed());
    }
  }
}

} // namespace

Zonotope deept::zono::dotRows(const Zonotope &AIn, const Zonotope &BIn,
                              const DotOptions &Opts) {
  DEEPT_TRACE_SPAN("zono.dot_rows");
  static support::Counter &FastCalls =
      support::Metrics::global().counter("zono.dot.fast.calls");
  static support::Counter &PreciseCalls =
      support::Metrics::global().counter("zono.dot.precise.calls");
  static support::Counter &FlopsEst =
      support::Metrics::global().counter("zono.dot.flops_est");
  (Opts.Method == DotMethod::Precise ? PreciseCalls : FastCalls).add(1);

  assert(AIn.cols() == BIn.cols() && "dotRows dimension mismatch");
  // The body only reads the operands, so align by copying and padding
  // only the side whose symbol space is actually narrower -- and only for
  // phi mismatches (rare: phi symbols are minted once at the input
  // embedding, so both operands almost always agree). An eps-count
  // mismatch is absorbed for free by flattening the shorter side's block
  // views with trailing Zero symbols, which replaces what used to be a
  // full coefficient-matrix copy per call on the hot attention path
  // (Probs . V^T, where softmax minted fresh symbols only on one side).
  // The Precise method still pads: the Eq. 6 eps-eps bound pairs symbol
  // s against symbol t by index, so it wants genuinely aligned planes.
  std::optional<Zonotope> ACopy, BCopy;
  bool NeedEpsAlign = Opts.Method == DotMethod::Precise;
  // A side also adopts B's norm when both operands are phi-free but
  // disagree on the (then unused) norm tag, matching alignSpaces.
  if (AIn.numPhi() < BIn.numPhi() ||
      (NeedEpsAlign && AIn.numEps() < BIn.numEps()) ||
      (AIn.numPhi() == 0 && AIn.phiP() != BIn.phiP())) {
    ACopy.emplace(AIn);
    ACopy->padToMatch(BIn);
  }
  if (BIn.numPhi() < AIn.numPhi() ||
      (NeedEpsAlign && BIn.numEps() < AIn.numEps()) ||
      (BIn.numPhi() == 0 && AIn.numPhi() > 0 && BIn.phiP() != AIn.phiP())) {
    BCopy.emplace(BIn);
    BCopy->padToMatch(AIn);
  }
  const Zonotope &A = ACopy ? *ACopy : AIn;
  const Zonotope &B = BCopy ? *BCopy : BIn;
  assert(A.numPhi() == B.numPhi() && "operand phi spaces misaligned");
  assert((!NeedEpsAlign || A.numEps() == B.numEps()) &&
         "operand eps spaces misaligned");
  size_t N = A.rows(), M = B.rows(), D = A.cols();

  const Matrix &CA = A.center();
  const Matrix &CB = B.center();

  // Exact affine part.
  Matrix Center = tensor::matmulTransposedB(CA, CB);

  size_t NumVarsA = A.numVars(), NumVarsB = B.numVars();
  // The per-symbol affine coefficients are independent rows of the output
  // coefficient matrices, so the symbol loop parallelises with disjoint
  // writes; inside a worker chunk each Coef = CA * BS^T + AS * CB^T half
  // runs as ONE whole-plane fused call that packs the shared center panel
  // (plus its hoisted zero-row flags on the A side) into cache-resident
  // scratch and streams every plane through it -- bit-identical to the
  // former per-symbol kernel calls (see Kernels::DotPlanesTransposedB).
  size_t SymGrain = grainForWork(4 * N * M * D);
  // Every row is fully covered by the non-accumulating B-side half below
  // (which zero-fills skipped zero rows), so no fill is needed.
  Matrix PhiOut = Matrix::uninit(A.numPhi(), N * M);
  parallelFor(0, A.numPhi(), SymGrain, [&](size_t S0, size_t S1) {
    const tensor::Kernels &K = tensor::kernels();
    // Worker-local scratch kept at high-water capacity: dotRows runs
    // thousands of times per certification, so a fresh allocation per
    // chunk is pure malloc traffic. The kernel overwrites every slot it
    // reads, so stale contents are harmless.
    static thread_local std::vector<double> Pack;
    Pack.resize(tensor::dotPlanesPackDoubles(N, M, D));
    K.DotPlanesTransposedB(CA.data(), 0, N, B.phiCoeffs().rowPtr(S0),
                           NumVarsB, M, D, S1 - S0, PhiOut.rowPtr(S0), N * M,
                           /*Accumulate=*/false, Pack.data());
    K.DotPlanesTransposedB(A.phiCoeffs().rowPtr(S0), NumVarsA, N, CB.data(),
                           0, M, D, S1 - S0, PhiOut.rowPtr(S0), N * M,
                           /*Accumulate=*/true, Pack.data());
  });

  // Eps planes, block-wise: a symbol carried by one Diag entry on either
  // side contributes one scaled center row/column (O(N + M)) instead of
  // two N x D x M GEMMs, and all-zero symbols pass through as Zero blocks.
  // Runs of non-trivial symbols pack into Dense blocks filled in parallel
  // (disjoint rows; B-side contribution first, exactly like the dense
  // Coef = CA.BS^T + AS.CB^T kernel).
  size_t E = std::max(A.numEps(), B.numEps());
  auto RefsA = flattenEpsViews(A.epsBlockViews(), E);
  auto RefsB = flattenEpsViews(B.epsBlockViews(), E);
  // FLOP estimate of the affine part, block-aware on the eps side: a
  // Dense half is a full N x D x M GEMM, a Diag half scales one center
  // row/column (N products, or M multiply-adds on the A side), and Zero
  // halves cost nothing -- so sparse workloads no longer read as two full
  // GEMMs per eps symbol in --stats-json.
  {
    double Dense = 2.0 * static_cast<double>(N * M * D);
    double EpsFlops = 0.0;
    for (size_t Sy = 0; Sy < E; ++Sy) {
      if (RefsB[Sy].Kind == EpsBlockKind::Dense)
        EpsFlops += Dense;
      else if (RefsB[Sy].Kind == EpsBlockKind::Diag)
        EpsFlops += static_cast<double>(N);
      if (RefsA[Sy].Kind == EpsBlockKind::Dense)
        EpsFlops += Dense;
      else if (RefsA[Sy].Kind == EpsBlockKind::Diag)
        EpsFlops += static_cast<double>(2 * M);
    }
    FlopsEst.add(Dense * (1.0 + 2.0 * static_cast<double>(A.numPhi())) +
                 EpsFlops);
  }
  auto BothZero = [&](size_t S) {
    return RefsA[S].Kind == EpsBlockKind::Zero &&
           RefsB[S].Kind == EpsBlockKind::Zero;
  };
  std::deque<EpsBlock> EpsBlocks;
  size_t S = 0;
  while (S < E) {
    size_t S1 = S + 1;
    if (BothZero(S)) {
      while (S1 < E && BothZero(S1))
        ++S1;
      EpsBlock Blk;
      Blk.Kind = EpsBlockKind::Zero;
      Blk.ZeroSyms = S1 - S;
      EpsBlocks.push_back(std::move(Blk));
      S = S1;
      continue;
    }
    size_t DenseSyms =
        (RefsA[S].Kind == EpsBlockKind::Dense ||
         RefsB[S].Kind == EpsBlockKind::Dense)
            ? 1
            : 0;
    while (S1 < E && !BothZero(S1)) {
      if (RefsA[S1].Kind == EpsBlockKind::Dense ||
          RefsB[S1].Kind == EpsBlockKind::Dense)
        ++DenseSyms;
      ++S1;
    }
    size_t Len = S1 - S;
    // Rows whose B-side is Dense are fully written by the non-accumulating
    // kernel call (zero rows of CA zero-fill); only the sparse Diag cases
    // need their row cleared first, which the loop below does per row.
    Matrix Run = Matrix::uninit(Len, N * M);
    size_t RunWork =
        (DenseSyms * 4 * N * M * D + (Len - DenseSyms) * (N + M + 8)) / Len +
        1;
    parallelFor(0, Len, grainForWork(RunWork), [&](size_t R0, size_t R1) {
      const tensor::Kernels &K = tensor::kernels();
      // Worker-local scratch, reused across chunks (see the phi loop).
      static thread_local std::vector<double> Pack;
      Pack.resize(tensor::dotPlanesPackDoubles(N, M, D));
      // Two passes over the chunk, one per half of Coef = CA.BS^T +
      // AS.CB^T. Per row the operation order is unchanged (B-side write,
      // then A-side accumulate) and rows are disjoint, so the bits match
      // the former single interleaved pass. Within each pass, stretches
      // of consecutive Dense symbols whose coefficient rows are
      // contiguous in one block batch into a single whole-plane fused
      // call; Diag and Zero symbols keep the O(N + M) scatter paths.
      size_t R = R0;
      while (R < R1) {
        const EpsSymRef &RB = RefsB[S + R];
        if (RB.Kind == EpsBlockKind::Dense) {
          size_t E1 = R + 1;
          while (E1 < R1 && RefsB[S + E1].Kind == EpsBlockKind::Dense &&
                 RefsB[S + E1].Row == RB.Row + (E1 - R) * NumVarsB)
            ++E1;
          K.DotPlanesTransposedB(CA.data(), 0, N, RB.Row, NumVarsB, M, D,
                                 E1 - R, Run.rowPtr(R), N * M,
                                 /*Accumulate=*/false, Pack.data());
          R = E1;
          continue;
        }
        double *OutRow = Run.rowPtr(R);
        if (RB.Kind == EpsBlockKind::Diag) {
          std::fill(OutRow, OutRow + N * M, 0.0);
          size_t RowB = RB.Entry.first / D, ColB = RB.Entry.first % D;
          for (size_t I = 0; I < N; ++I)
            OutRow[I * M + RowB] = CA.at(I, ColB) * RB.Entry.second;
        } else if (RefsA[S + R].Kind == EpsBlockKind::Diag) {
          std::fill(OutRow, OutRow + N * M, 0.0);
        }
        ++R;
      }
      R = R0;
      while (R < R1) {
        const EpsSymRef &RA = RefsA[S + R];
        if (RA.Kind == EpsBlockKind::Dense) {
          bool Acc = RefsB[S + R].Kind != EpsBlockKind::Zero;
          size_t E1 = R + 1;
          while (E1 < R1 && RefsA[S + E1].Kind == EpsBlockKind::Dense &&
                 RefsA[S + E1].Row == RA.Row + (E1 - R) * NumVarsA &&
                 (RefsB[S + E1].Kind != EpsBlockKind::Zero) == Acc)
            ++E1;
          K.DotPlanesTransposedB(RA.Row, NumVarsA, N, CB.data(), 0, M, D,
                                 E1 - R, Run.rowPtr(R), N * M, Acc,
                                 Pack.data());
          R = E1;
          continue;
        }
        if (RA.Kind == EpsBlockKind::Diag) {
          double *OutRow = Run.rowPtr(R);
          size_t RowA = RA.Entry.first / D, ColA = RA.Entry.first % D;
          double *O = OutRow + RowA * M;
          for (size_t J = 0; J < M; ++J)
            O[J] += RA.Entry.second * CB.at(J, ColA);
        }
        ++R;
      }
    });
    EpsBlock Blk;
    Blk.Kind = EpsBlockKind::Dense;
    Blk.D = std::move(Run);
    EpsBlocks.push_back(std::move(Blk));
    S = S1;
  }

  // Install the affine coefficients, then absorb the quadratic remainder
  // into fresh symbols.
  Zonotope Out = Zonotope::constant(Center, A.phiP());
  Out.installCoeffs(std::move(PhiOut), std::move(EpsBlocks));

  Matrix QLo, QHi;
  {
    // The Fast/Precise split lives here; a separate span makes the Eq. 5
    // vs Eq. 6 cost visible under the dot_rows parent.
    DEEPT_TRACE_SPAN(Opts.Method == DotMethod::Precise
                         ? "zono.dot.quadratic_precise"
                         : "zono.dot.quadratic_fast");
    quadraticBounds(A, B, N, M, D, Opts, QLo, QHi);
  }
  std::vector<std::pair<size_t, double>> Fresh;
  Matrix Shift(N, M, 0.0);
  for (size_t V = 0; V < N * M; ++V) {
    double Mid = 0.5 * (QHi.flat(V) + QLo.flat(V));
    double Rad = 0.5 * (QHi.flat(V) - QLo.flat(V));
    Shift.flat(V) = Mid;
    if (Rad > 0.0)
      Fresh.emplace_back(V, Rad);
  }
  Out.shiftCenterInPlace(Shift);
  Out.appendFreshEps(Fresh);
  return Out;
}

Zonotope deept::zono::mulElementwise(const Zonotope &AIn, const Zonotope &BIn,
                                     const DotOptions &Opts) {
  DEEPT_TRACE_SPAN("zono.mul_elementwise");
  static support::Counter &Calls =
      support::Metrics::global().counter("zono.mul.calls");
  Calls.add(1);
  assert(AIn.rows() == BIn.rows() && AIn.cols() == BIn.cols() &&
         "mulElementwise shape mismatch");
  // Same one-sided copy-elision as dotRows: pad only the narrower side,
  // and only align the eps spaces when the Precise remainder needs its
  // index-paired Eq. 6 scan. The Fast remainder and the block-wise plane
  // fill treat symbols past a side's own count as Zero blocks, so unequal
  // eps counts cost nothing.
  bool NeedEpsAlign = Opts.Method == DotMethod::Precise;
  std::optional<Zonotope> ACopy, BCopy;
  if (AIn.numPhi() < BIn.numPhi() ||
      (NeedEpsAlign && AIn.numEps() < BIn.numEps()) ||
      (AIn.numPhi() == 0 && AIn.phiP() != BIn.phiP())) {
    ACopy.emplace(AIn);
    ACopy->padToMatch(BIn);
  }
  if (BIn.numPhi() < AIn.numPhi() ||
      (NeedEpsAlign && BIn.numEps() < AIn.numEps()) ||
      (BIn.numPhi() == 0 && AIn.numPhi() > 0 && BIn.phiP() != AIn.phiP())) {
    BCopy.emplace(BIn);
    BCopy->padToMatch(AIn);
  }
  const Zonotope &A = ACopy ? *ACopy : AIn;
  const Zonotope &B = BCopy ? *BCopy : BIn;
  size_t NumVars = A.numVars();

  const Matrix &CA = A.center();
  const Matrix &CB = B.center();
  Matrix Center = hadamard(CA, CB);
  Zonotope Out = Zonotope::constant(Center.reshaped(A.rows(), A.cols()),
                                    A.phiP());

  size_t SymGrain = grainForWork(2 * NumVars);
  // Rows fully written by the per-variable loop below.
  Matrix PhiOut = Matrix::uninit(A.numPhi(), NumVars);
  parallelFor(0, A.numPhi(), SymGrain, [&](size_t S0, size_t S1) {
    for (size_t S = S0; S < S1; ++S) {
      const double *AS = A.phiCoeffs().rowPtr(S);
      const double *BS = B.phiCoeffs().rowPtr(S);
      double *O = PhiOut.rowPtr(S);
      for (size_t V = 0; V < NumVars; ++V)
        O[V] = CA.flat(V) * BS[V] + CB.flat(V) * AS[V];
    }
  });

  // Eps planes, block-wise. The output plane of symbol S is
  //   CA * BS + CB * AS  (per variable);
  // a symbol that is Diag on one side and Zero on the other stays Diag
  // (one product), two Diag entries on the same variable stay Diag (two
  // products), and everything else packs into Dense runs filled in
  // parallel with the per-variable kernel above.
  size_t E = std::max(A.numEps(), B.numEps());
  auto RefsA = flattenEpsViews(A.epsBlockViews(), E);
  auto RefsB = flattenEpsViews(B.epsBlockViews(), E);
  enum Cls : unsigned char { ClsZero, ClsDiag, ClsDense };
  auto Classify = [&](size_t S) {
    const EpsSymRef &RA = RefsA[S];
    const EpsSymRef &RB = RefsB[S];
    if (RA.Kind == EpsBlockKind::Dense || RB.Kind == EpsBlockKind::Dense)
      return ClsDense;
    if (RA.Kind == EpsBlockKind::Zero && RB.Kind == EpsBlockKind::Zero)
      return ClsZero;
    if (RA.Kind == EpsBlockKind::Diag && RB.Kind == EpsBlockKind::Diag &&
        RA.Entry.first != RB.Entry.first)
      return ClsDense;
    return ClsDiag;
  };
  std::deque<EpsBlock> EpsBlocks;
  auto PushZero = [&](size_t Syms) {
    if (!EpsBlocks.empty() && EpsBlocks.back().Kind == EpsBlockKind::Zero) {
      EpsBlocks.back().ZeroSyms += Syms;
    } else {
      EpsBlock Blk;
      Blk.Kind = EpsBlockKind::Zero;
      Blk.ZeroSyms = Syms;
      EpsBlocks.push_back(std::move(Blk));
    }
  };
  auto PushDiag = [&](size_t Var, double Coef) {
    if (EpsBlocks.empty() || EpsBlocks.back().Kind != EpsBlockKind::Diag) {
      EpsBlock Blk;
      Blk.Kind = EpsBlockKind::Diag;
      EpsBlocks.push_back(std::move(Blk));
    }
    EpsBlocks.back().Entries.emplace_back(Var, Coef);
  };
  size_t S = 0;
  while (S < E) {
    Cls C = Classify(S);
    size_t S1 = S + 1;
    while (S1 < E && Classify(S1) == C)
      ++S1;
    size_t Len = S1 - S;
    switch (C) {
    case ClsZero:
      PushZero(Len);
      break;
    case ClsDiag:
      for (size_t T = S; T < S1; ++T) {
        const EpsSymRef &RA = RefsA[T];
        const EpsSymRef &RB = RefsB[T];
        if (RA.Kind == EpsBlockKind::Zero) {
          PushDiag(RB.Entry.first,
                   CA.flat(RB.Entry.first) * RB.Entry.second);
        } else if (RB.Kind == EpsBlockKind::Zero) {
          PushDiag(RA.Entry.first,
                   CB.flat(RA.Entry.first) * RA.Entry.second);
        } else {
          size_t V = RA.Entry.first;
          PushDiag(V, CA.flat(V) * RB.Entry.second +
                          CB.flat(V) * RA.Entry.second);
        }
      }
      break;
    case ClsDense: {
      Matrix Run(Len, NumVars, 0.0);
      parallelFor(0, Len, SymGrain, [&](size_t R0, size_t R1) {
        for (size_t R = R0; R < R1; ++R) {
          const EpsSymRef &RA = RefsA[S + R];
          const EpsSymRef &RB = RefsB[S + R];
          double *O = Run.rowPtr(R);
          if (RA.Kind == EpsBlockKind::Dense &&
              RB.Kind == EpsBlockKind::Dense) {
            for (size_t V = 0; V < NumVars; ++V)
              O[V] = CA.flat(V) * RB.Row[V] + CB.flat(V) * RA.Row[V];
          } else if (RB.Kind == EpsBlockKind::Dense) {
            for (size_t V = 0; V < NumVars; ++V)
              O[V] = CA.flat(V) * RB.Row[V];
            if (RA.Kind == EpsBlockKind::Diag)
              O[RA.Entry.first] +=
                  CB.flat(RA.Entry.first) * RA.Entry.second;
          } else if (RA.Kind == EpsBlockKind::Dense) {
            for (size_t V = 0; V < NumVars; ++V)
              O[V] = CB.flat(V) * RA.Row[V];
            if (RB.Kind == EpsBlockKind::Diag)
              O[RB.Entry.first] +=
                  CA.flat(RB.Entry.first) * RB.Entry.second;
          } else {
            // Two Diag entries on different variables.
            O[RB.Entry.first] = CA.flat(RB.Entry.first) * RB.Entry.second;
            O[RA.Entry.first] += CB.flat(RA.Entry.first) * RA.Entry.second;
          }
        }
      });
      EpsBlock Blk;
      Blk.Kind = EpsBlockKind::Dense;
      Blk.D = std::move(Run);
      EpsBlocks.push_back(std::move(Blk));
      break;
    }
    }
    S = S1;
  }
  Out.installCoeffs(std::move(PhiOut), std::move(EpsBlocks));

  // Quadratic remainder per variable: the D = 1 specialisation of the
  // dot-product bounds, where Eq. 5 factorises into a product of column
  // dual norms. The norms are precomputed block-wise (ascending symbol
  // order per variable, bit-identical to the per-variable scan) so the
  // Fast path never touches a dense eps matrix; the Precise Eq. 6 scan is
  // the sanctioned densification site, hoisted before the parallel loop.
  double P = A.phiP();
  double QP = dualExponent(P);
  Matrix PhiNA = perVarSymbolNorms(A.phiCoeffs(), QP, A.rows(), A.cols());
  Matrix PhiNB = perVarSymbolNorms(B.phiCoeffs(), QP, A.rows(), A.cols());
  Matrix EpsNA = A.epsColumnDualNorms(1.0);
  Matrix EpsNB = B.epsColumnDualNorms(1.0);
  const Matrix *EA = nullptr, *EB = nullptr;
  if (Opts.Method == DotMethod::Precise && A.numEps() > 0) {
    EA = &A.epsCoeffs();
    EB = &B.epsCoeffs();
  }

  // Per-variable pass, parallel over variable chunks. Each chunk collects
  // its fresh-symbol candidates separately; merging the chunk vectors in
  // ascending chunk order reproduces the serial ascending-V order exactly.
  Matrix Shift(A.rows(), A.cols(), 0.0);
  size_t VarGrain = grainForWork(4 * (A.numPhi() + A.numEps()) + 8);
  size_t NumChunks = NumVars == 0 ? 0 : (NumVars + VarGrain - 1) / VarGrain;
  std::vector<std::vector<std::pair<size_t, double>>> ChunkFresh(NumChunks);
  parallelFor(0, NumVars, VarGrain, [&](size_t V0, size_t V1) {
    auto &Fresh = ChunkFresh[V0 / VarGrain];
    for (size_t V = V0; V < V1; ++V) {
      double Lo = 0.0, Hi = 0.0;
      double PhiA = PhiNA.flat(V);
      double PhiB = PhiNB.flat(V);
      double EpsA1 = EpsNA.flat(V);
      double EpsB1 = EpsNB.flat(V);
      double Sym = PhiA * PhiB + PhiA * EpsB1 + EpsA1 * PhiB;
      if (EA) {
        for (size_t T = 0; T < EA->rows(); ++T) {
          double AS = EA->at(T, V);
          if (AS == 0.0)
            continue;
          for (size_t U = 0; U < EB->rows(); ++U) {
            double G = AS * EB->at(U, V);
            if (G == 0.0)
              continue;
            if (T == U) {
              if (G > 0.0)
                Hi += G;
              else
                Lo += G;
            } else {
              Hi += std::fabs(G);
              Lo -= std::fabs(G);
            }
          }
        }
      } else {
        Sym += EpsA1 * EpsB1;
      }
      Lo -= Sym;
      Hi += Sym;
      double Mid = 0.5 * (Hi + Lo);
      double Rad = 0.5 * (Hi - Lo);
      Shift.flat(V) = Mid;
      if (Rad > 0.0)
        Fresh.emplace_back(V, Rad);
    }
  });
  std::vector<std::pair<size_t, double>> Fresh;
  for (auto &C : ChunkFresh)
    Fresh.insert(Fresh.end(), C.begin(), C.end());
  Out.shiftCenterInPlace(Shift);
  Out.appendFreshEps(Fresh);
  return Out;
}
