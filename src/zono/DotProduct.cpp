//===- zono/DotProduct.cpp ------------------------------------*- C++ -*-===//

#include "zono/DotProduct.h"

#include "support/Metrics.h"
#include "support/Parallel.h"
#include "support/Trace.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace deept;
using namespace deept::zono;
using support::grainForWork;
using support::parallelFor;
using tensor::dualExponent;

namespace {

/// Per-variable q-norms over the symbol axis of a coefficient matrix whose
/// rows are flattened M x D views: returns an M x D matrix of norms.
/// Parallel over variable ranges; per variable the symbol axis accumulates
/// in ascending order, so results do not depend on the thread count.
Matrix perVarSymbolNorms(const Matrix &Coeffs, double Q, size_t M, size_t D) {
  Matrix Out(M, D, 0.0);
  double *O = Out.data();
  size_t NumVars = M * D;
  size_t NumS = Coeffs.rows();
  parallelFor(0, NumVars, grainForWork(NumS), [&](size_t V0, size_t V1) {
    for (size_t S = 0; S < NumS; ++S) {
      const double *Row = Coeffs.rowPtr(S);
      if (Q == 1.0) {
        for (size_t V = V0; V < V1; ++V)
          O[V] += std::fabs(Row[V]);
      } else if (Q == 2.0) {
        for (size_t V = V0; V < V1; ++V)
          O[V] += Row[V] * Row[V];
      } else {
        for (size_t V = V0; V < V1; ++V)
          O[V] = std::max(O[V], std::fabs(Row[V]));
      }
    }
    if (Q == 2.0)
      for (size_t V = V0; V < V1; ++V)
        O[V] = std::sqrt(O[V]);
  });
  return Out;
}

/// The Eq. 5 cascade: bounds |(V xi1) . (W xi2)| for all (outer row, inner
/// row) pairs. \p Outer holds the xi1 coefficients of an N x D view with
/// norm POuter; \p Inner the xi2 coefficients of an M x D view with norm
/// PInner. The dual norm is applied to the Inner side first (row norms),
/// then the outer q-norm accumulates over Outer's symbols. Returns an
/// N x M matrix U with |quad| <= U.
///
/// Parallel over the outer output rows: each row accumulates its symbol
/// cascade independently, in ascending symbol order with ascending-d
/// dots, so the result is bit-identical at any thread count.
Matrix fastAbsBound(const Matrix &Outer, double POuter, size_t N,
                    const Matrix &Inner, double PInner, size_t M, size_t D) {
  double QInner = dualExponent(PInner);
  double QOuter = dualExponent(POuter);
  Matrix InnerNorms = perVarSymbolNorms(Inner, QInner, M, D);
  Matrix Acc(N, M, 0.0);
  size_t NumS = Outer.rows();
  parallelFor(0, N, grainForWork(NumS * M * D), [&](size_t I0, size_t I1) {
    std::vector<double> AbsS(D), TRow(M);
    for (size_t I = I0; I < I1; ++I) {
      double *AccRow = Acc.rowPtr(I);
      for (size_t S = 0; S < NumS; ++S) {
        const double *Slice = Outer.rowPtr(S) + I * D;
        for (size_t K = 0; K < D; ++K)
          AbsS[K] = std::fabs(Slice[K]);
        for (size_t J = 0; J < M; ++J) {
          const double *IN = InnerNorms.rowPtr(J);
          double T = 0.0;
          for (size_t K = 0; K < D; ++K)
            T += AbsS[K] * IN[K];
          TRow[J] = T;
        }
        if (QOuter == 1.0) {
          for (size_t J = 0; J < M; ++J)
            AccRow[J] += TRow[J];
        } else if (QOuter == 2.0) {
          for (size_t J = 0; J < M; ++J)
            AccRow[J] += TRow[J] * TRow[J];
        } else {
          for (size_t J = 0; J < M; ++J)
            AccRow[J] = std::max(AccRow[J], TRow[J]);
        }
      }
      if (QOuter == 2.0)
        for (size_t J = 0; J < M; ++J)
          AccRow[J] = std::sqrt(AccRow[J]);
    }
  });
  return Acc;
}

/// Lists, for each row of an N x D view, the symbols whose coefficient
/// slice on that row is not identically zero. Fresh (diagonal) symbols
/// touch a single variable, so these lists are short in practice.
/// Parallel over rows; each row's list stays in ascending symbol order.
std::vector<std::vector<size_t>> activeSymbolsPerRow(const Matrix &Coeffs,
                                                     size_t N, size_t D) {
  std::vector<std::vector<size_t>> Active(N);
  size_t NumS = Coeffs.rows();
  parallelFor(0, N, grainForWork(NumS * D), [&](size_t I0, size_t I1) {
    for (size_t I = I0; I < I1; ++I) {
      for (size_t S = 0; S < NumS; ++S) {
        const double *Slice = Coeffs.rowPtr(S) + I * D;
        for (size_t K = 0; K < D; ++K) {
          if (Slice[K] != 0.0) {
            Active[I].push_back(S);
            break;
          }
        }
      }
    }
  });
  return Active;
}

/// The Eq. 6 eps-eps interval bound: accumulates, for every output pair,
///   sum_s (v_s . w_s) * [0, 1]  +  sum_{s != t} (v_s . w_t) * [-1, 1]
/// into (Lo, Hi). Parallel over the rows of the N x M output; the
/// per-pair double loop over active symbols keeps its serial order.
void preciseEpsBound(const Matrix &EA, size_t N, const Matrix &EB, size_t M,
                     size_t D, Matrix &Lo, Matrix &Hi) {
  Lo = Matrix(N, M, 0.0);
  Hi = Matrix(N, M, 0.0);
  assert(EA.rows() == EB.rows() && "eps spaces must be aligned");
  auto ActiveA = activeSymbolsPerRow(EA, N, D);
  auto ActiveB = activeSymbolsPerRow(EB, M, D);
  parallelFor(0, N, 1, [&](size_t I0, size_t I1) {
    for (size_t I = I0; I < I1; ++I) {
      for (size_t J = 0; J < M; ++J) {
        double L = 0.0, H = 0.0;
        for (size_t S : ActiveA[I]) {
          const double *AS = EA.rowPtr(S) + I * D;
          for (size_t T : ActiveB[J]) {
            const double *BT = EB.rowPtr(T) + J * D;
            double G = 0.0;
            for (size_t K = 0; K < D; ++K)
              G += AS[K] * BT[K];
            if (S == T) {
              // eps^2 in [0, 1].
              if (G > 0.0)
                H += G;
              else
                L += G;
            } else {
              // eps_s eps_t in [-1, 1].
              H += std::fabs(G);
              L -= std::fabs(G);
            }
          }
        }
        Lo.at(I, J) = L;
        Hi.at(I, J) = H;
      }
    }
  });
}

/// Accumulates the four quadratic interaction blocks of dotRows into
/// (QLo, QHi) according to \p Opts.
void quadraticBounds(const Zonotope &A, const Zonotope &B, size_t N,
                     size_t M, size_t D, const DotOptions &Opts, Matrix &QLo,
                     Matrix &QHi) {
  QLo = Matrix(N, M, 0.0);
  QHi = Matrix(N, M, 0.0);
  double P = A.phiP();
  bool InfFirst = Opts.Order == DualNormOrder::InfFirst;

  auto AccumulateSym = [&](const Matrix &U) {
    QLo -= U;
    QHi += U;
  };

  bool HavePhi = A.numPhi() > 0;
  bool HaveEps = A.numEps() > 0;

  if (HavePhi) {
    // phi-phi block; the order flag picks which operand is inner.
    if (InfFirst)
      AccumulateSym(fastAbsBound(A.phiCoeffs(), P, N, B.phiCoeffs(), P, M, D));
    else
      AccumulateSym(fastAbsBound(B.phiCoeffs(), P, M, A.phiCoeffs(), P, N, D)
                        .transposed());
  }
  if (HavePhi && HaveEps) {
    // phi-eps and eps-phi mixed blocks. "InfFirst" makes the eps side the
    // inner one (its dual norm is applied first).
    if (InfFirst) {
      AccumulateSym(fastAbsBound(A.phiCoeffs(), P, N, B.epsCoeffs(),
                                 Matrix::InfNorm, M, D));
      AccumulateSym(fastAbsBound(B.phiCoeffs(), P, M, A.epsCoeffs(),
                                 Matrix::InfNorm, N, D)
                        .transposed());
    } else {
      AccumulateSym(fastAbsBound(B.epsCoeffs(), Matrix::InfNorm, M,
                                 A.phiCoeffs(), P, N, D)
                        .transposed());
      AccumulateSym(fastAbsBound(A.epsCoeffs(), Matrix::InfNorm, N,
                                 B.phiCoeffs(), P, M, D));
    }
  }
  if (HaveEps) {
    if (Opts.Method == DotMethod::Precise) {
      Matrix Lo, Hi;
      preciseEpsBound(A.epsCoeffs(), N, B.epsCoeffs(), M, D, Lo, Hi);
      QLo += Lo;
      QHi += Hi;
    } else if (InfFirst) {
      AccumulateSym(fastAbsBound(A.epsCoeffs(), Matrix::InfNorm, N,
                                 B.epsCoeffs(), Matrix::InfNorm, M, D));
    } else {
      AccumulateSym(fastAbsBound(B.epsCoeffs(), Matrix::InfNorm, M,
                                 A.epsCoeffs(), Matrix::InfNorm, N, D)
                        .transposed());
    }
  }
}

} // namespace

Zonotope deept::zono::dotRows(const Zonotope &AIn, const Zonotope &BIn,
                              const DotOptions &Opts) {
  DEEPT_TRACE_SPAN("zono.dot_rows");
  static support::Counter &FastCalls =
      support::Metrics::global().counter("zono.dot.fast.calls");
  static support::Counter &PreciseCalls =
      support::Metrics::global().counter("zono.dot.precise.calls");
  static support::Counter &FlopsEst =
      support::Metrics::global().counter("zono.dot.flops_est");
  (Opts.Method == DotMethod::Precise ? PreciseCalls : FastCalls).add(1);

  assert(AIn.cols() == BIn.cols() && "dotRows dimension mismatch");
  Zonotope A = AIn, B = BIn;
  Zonotope::alignSpaces(A, B);
  size_t N = A.rows(), M = B.rows(), D = A.cols();
  // The affine part multiplies each of the 1 + phi + eps coefficient
  // planes (two GEMMs per noise plane) through an N x D x M contraction.
  FlopsEst.add(2.0 * static_cast<double>(N * M * D) *
               (1.0 + 2.0 * static_cast<double>(A.numPhi() + A.numEps())));

  const Matrix &CA = A.center();
  const Matrix &CB = B.center();

  // Exact affine part.
  Matrix Center = tensor::matmulTransposedB(CA, CB);

  // The per-symbol affine coefficients are independent rows of the output
  // coefficient matrices, so the symbol loop parallelises with disjoint
  // writes; the nested GEMMs turn serial inside a worker chunk.
  size_t SymGrain = grainForWork(4 * N * M * D);
  Matrix PhiOut(A.numPhi(), N * M);
  parallelFor(0, A.numPhi(), SymGrain, [&](size_t S0, size_t S1) {
    for (size_t S = S0; S < S1; ++S) {
      Matrix AS = A.phiCoeffs().rowSlice(S, S + 1).reshaped(N, D);
      Matrix BS = B.phiCoeffs().rowSlice(S, S + 1).reshaped(M, D);
      Matrix Coef = tensor::matmulTransposedB(CA, BS) +
                    tensor::matmulTransposedB(AS, CB);
      std::copy(Coef.data(), Coef.data() + Coef.size(), PhiOut.rowPtr(S));
    }
  });
  Matrix EpsOut(A.numEps(), N * M);
  parallelFor(0, A.numEps(), SymGrain, [&](size_t S0, size_t S1) {
    for (size_t S = S0; S < S1; ++S) {
      Matrix AS = A.epsCoeffs().rowSlice(S, S + 1).reshaped(N, D);
      Matrix BS = B.epsCoeffs().rowSlice(S, S + 1).reshaped(M, D);
      Matrix Coef = tensor::matmulTransposedB(CA, BS) +
                    tensor::matmulTransposedB(AS, CB);
      std::copy(Coef.data(), Coef.data() + Coef.size(), EpsOut.rowPtr(S));
    }
  });

  // Install the affine coefficients, then absorb the quadratic remainder
  // into fresh symbols.
  Zonotope Out = Zonotope::constant(Center, A.phiP());
  Out.installCoeffs(std::move(PhiOut), std::move(EpsOut));

  Matrix QLo, QHi;
  {
    // The Fast/Precise split lives here; a separate span makes the Eq. 5
    // vs Eq. 6 cost visible under the dot_rows parent.
    DEEPT_TRACE_SPAN(Opts.Method == DotMethod::Precise
                         ? "zono.dot.quadratic_precise"
                         : "zono.dot.quadratic_fast");
    quadraticBounds(A, B, N, M, D, Opts, QLo, QHi);
  }
  std::vector<std::pair<size_t, double>> Fresh;
  Matrix Shift(N, M, 0.0);
  for (size_t V = 0; V < N * M; ++V) {
    double Mid = 0.5 * (QHi.flat(V) + QLo.flat(V));
    double Rad = 0.5 * (QHi.flat(V) - QLo.flat(V));
    Shift.flat(V) = Mid;
    if (Rad > 0.0)
      Fresh.emplace_back(V, Rad);
  }
  Out.shiftCenterInPlace(Shift);
  Out.appendFreshEps(Fresh);
  return Out;
}

Zonotope deept::zono::mulElementwise(const Zonotope &AIn, const Zonotope &BIn,
                                     const DotOptions &Opts) {
  DEEPT_TRACE_SPAN("zono.mul_elementwise");
  static support::Counter &Calls =
      support::Metrics::global().counter("zono.mul.calls");
  Calls.add(1);
  assert(AIn.rows() == BIn.rows() && AIn.cols() == BIn.cols() &&
         "mulElementwise shape mismatch");
  Zonotope A = AIn, B = BIn;
  Zonotope::alignSpaces(A, B);
  size_t NumVars = A.numVars();

  Matrix Center = hadamard(A.center(), B.center());
  Zonotope Out = Zonotope::constant(Center.reshaped(A.rows(), A.cols()),
                                    A.phiP());

  size_t SymGrain = grainForWork(2 * NumVars);
  Matrix PhiOut(A.numPhi(), NumVars);
  parallelFor(0, A.numPhi(), SymGrain, [&](size_t S0, size_t S1) {
    for (size_t S = S0; S < S1; ++S) {
      const double *AS = A.phiCoeffs().rowPtr(S);
      const double *BS = B.phiCoeffs().rowPtr(S);
      double *O = PhiOut.rowPtr(S);
      for (size_t V = 0; V < NumVars; ++V)
        O[V] = A.center().flat(V) * BS[V] + B.center().flat(V) * AS[V];
    }
  });
  Matrix EpsOut(A.numEps(), NumVars);
  parallelFor(0, A.numEps(), SymGrain, [&](size_t S0, size_t S1) {
    for (size_t S = S0; S < S1; ++S) {
      const double *AS = A.epsCoeffs().rowPtr(S);
      const double *BS = B.epsCoeffs().rowPtr(S);
      double *O = EpsOut.rowPtr(S);
      for (size_t V = 0; V < NumVars; ++V)
        O[V] = A.center().flat(V) * BS[V] + B.center().flat(V) * AS[V];
    }
  });
  Out.installCoeffs(PhiOut, EpsOut);

  // Quadratic remainder per variable: the D = 1 specialisation of the
  // dot-product bounds, where Eq. 5 factorises into a product of column
  // dual norms.
  double P = A.phiP();
  double QP = dualExponent(P);
  auto ColNorm = [&](const Matrix &Coeffs, double Q, size_t V) {
    double Acc = 0.0;
    for (size_t S = 0; S < Coeffs.rows(); ++S) {
      double X = std::fabs(Coeffs.at(S, V));
      if (Q == 1.0)
        Acc += X;
      else if (Q == 2.0)
        Acc += X * X;
      else
        Acc = std::max(Acc, X);
    }
    return Q == 2.0 ? std::sqrt(Acc) : Acc;
  };

  // Per-variable pass, parallel over variable chunks. Each chunk collects
  // its fresh-symbol candidates separately; merging the chunk vectors in
  // ascending chunk order reproduces the serial ascending-V order exactly.
  Matrix Shift(A.rows(), A.cols(), 0.0);
  size_t VarGrain = grainForWork(4 * (A.numPhi() + A.numEps()) + 8);
  size_t NumChunks = NumVars == 0 ? 0 : (NumVars + VarGrain - 1) / VarGrain;
  std::vector<std::vector<std::pair<size_t, double>>> ChunkFresh(NumChunks);
  parallelFor(0, NumVars, VarGrain, [&](size_t V0, size_t V1) {
    auto &Fresh = ChunkFresh[V0 / VarGrain];
    for (size_t V = V0; V < V1; ++V) {
      double Lo = 0.0, Hi = 0.0;
      double PhiA = ColNorm(A.phiCoeffs(), QP, V);
      double PhiB = ColNorm(B.phiCoeffs(), QP, V);
      double EpsA1 = ColNorm(A.epsCoeffs(), 1.0, V);
      double EpsB1 = ColNorm(B.epsCoeffs(), 1.0, V);
      double Sym = PhiA * PhiB + PhiA * EpsB1 + EpsA1 * PhiB;
      if (Opts.Method == DotMethod::Precise && A.numEps() > 0) {
        for (size_t S = 0; S < A.numEps(); ++S) {
          double AS = A.epsCoeffs().at(S, V);
          if (AS == 0.0)
            continue;
          for (size_t T = 0; T < B.numEps(); ++T) {
            double G = AS * B.epsCoeffs().at(T, V);
            if (G == 0.0)
              continue;
            if (S == T) {
              if (G > 0.0)
                Hi += G;
              else
                Lo += G;
            } else {
              Hi += std::fabs(G);
              Lo -= std::fabs(G);
            }
          }
        }
      } else {
        Sym += EpsA1 * EpsB1;
      }
      Lo -= Sym;
      Hi += Sym;
      double Mid = 0.5 * (Hi + Lo);
      double Rad = 0.5 * (Hi - Lo);
      Shift.flat(V) = Mid;
      if (Rad > 0.0)
        Fresh.emplace_back(V, Rad);
    }
  });
  std::vector<std::pair<size_t, double>> Fresh;
  for (auto &C : ChunkFresh)
    Fresh.insert(Fresh.end(), C.begin(), C.end());
  Out.shiftCenterInPlace(Shift);
  Out.appendFreshEps(Fresh);
  return Out;
}
