//===- zono/Zonotope.cpp --------------------------------------*- C++ -*-===//

#include "zono/Zonotope.h"

#include "support/Metrics.h"
#include "support/Parallel.h"
#include "support/Rng.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace deept;
using namespace deept::zono;
using support::grainForWork;
using support::parallelFor;
using tensor::dualExponent;

namespace {

/// Accumulates, per variable (column), the dual-norm of the coefficient
/// columns of \p Coeffs. Q follows Matrix::InfNorm conventions. Parallel
/// over variable ranges; each variable accumulates its symbol axis in
/// ascending order, so results are thread-count independent.
Matrix columnDualNorms(const Matrix &Coeffs, double Q, size_t NumVars) {
  Matrix Out(1, NumVars, 0.0);
  double *O = Out.data();
  size_t NumS = Coeffs.rows();
  parallelFor(0, NumVars, grainForWork(NumS), [&](size_t V0, size_t V1) {
    if (Q == 1.0) {
      for (size_t S = 0; S < NumS; ++S) {
        const double *Row = Coeffs.rowPtr(S);
        for (size_t V = V0; V < V1; ++V)
          O[V] += std::fabs(Row[V]);
      }
      return;
    }
    if (Q == 2.0) {
      for (size_t S = 0; S < NumS; ++S) {
        const double *Row = Coeffs.rowPtr(S);
        for (size_t V = V0; V < V1; ++V)
          O[V] += Row[V] * Row[V];
      }
      for (size_t V = V0; V < V1; ++V)
        O[V] = std::sqrt(O[V]);
      return;
    }
    assert(Q == Matrix::InfNorm && "unsupported dual exponent");
    for (size_t S = 0; S < NumS; ++S) {
      const double *Row = Coeffs.rowPtr(S);
      for (size_t V = V0; V < V1; ++V)
        O[V] = std::max(O[V], std::fabs(Row[V]));
    }
  });
  return Out;
}

} // namespace

Zonotope Zonotope::constant(const Matrix &Center, double PhiP) {
  Zonotope Z;
  Z.NumRows = Center.rows();
  Z.NumCols = Center.cols();
  Z.Center = Center;
  Z.PhiP = PhiP;
  Z.PhiC = Matrix(0, Z.numVars());
  Z.EpsC = Matrix(0, Z.numVars());
  return Z;
}

Zonotope Zonotope::lpBallOnRow(const Matrix &Center, size_t Row, double P,
                               double Radius) {
  assert(Row < Center.rows() && "perturbed row out of range");
  Zonotope Z = constant(Center, P == Matrix::InfNorm ? Matrix::InfNorm : P);
  size_t E = Center.cols();
  Matrix Coeffs(E, Z.numVars());
  for (size_t I = 0; I < E; ++I)
    Coeffs.at(I, Row * E + I) = Radius;
  if (P == Matrix::InfNorm)
    Z.EpsC = Coeffs;
  else
    Z.PhiC = Coeffs;
  return Z;
}

Zonotope Zonotope::lpBall(const Matrix &Center, double P, double Radius) {
  Zonotope Z = constant(Center, P == Matrix::InfNorm ? Matrix::InfNorm : P);
  size_t N = Z.numVars();
  Matrix Coeffs(N, N);
  for (size_t I = 0; I < N; ++I)
    Coeffs.at(I, I) = Radius;
  if (P == Matrix::InfNorm)
    Z.EpsC = Coeffs;
  else
    Z.PhiC = Coeffs;
  return Z;
}

Zonotope Zonotope::box(const Matrix &Lo, const Matrix &Hi) {
  assert(Lo.rows() == Hi.rows() && Lo.cols() == Hi.cols() &&
         "box corner shape mismatch");
  Matrix Center = (Lo + Hi) * 0.5;
  Zonotope Z = constant(Center, Matrix::InfNorm);
  std::vector<std::pair<size_t, double>> Entries;
  for (size_t V = 0; V < Z.numVars(); ++V) {
    double Rad = 0.5 * (Hi.flat(V) - Lo.flat(V));
    assert(Rad >= 0.0 && "box with Lo > Hi");
    if (Rad > 0.0)
      Entries.emplace_back(V, Rad);
  }
  Z.appendFreshEps(Entries);
  return Z;
}

void Zonotope::bounds(Matrix &Lo, Matrix &Hi) const {
  Matrix Rad = radii();
  Lo = Matrix(NumRows, NumCols);
  Hi = Matrix(NumRows, NumCols);
  for (size_t V = 0; V < numVars(); ++V) {
    Lo.flat(V) = Center.flat(V) - Rad.flat(V);
    Hi.flat(V) = Center.flat(V) + Rad.flat(V);
  }
}

Matrix Zonotope::radii() const {
  double Q = dualExponent(PhiP);
  Matrix PhiNorm = columnDualNorms(PhiC, Q, numVars());
  Matrix EpsNorm = columnDualNorms(EpsC, 1.0, numVars());
  Matrix Rad(NumRows, NumCols);
  for (size_t V = 0; V < numVars(); ++V)
    Rad.flat(V) = PhiNorm.flat(V) + EpsNorm.flat(V);
  return Rad;
}

Zonotope Zonotope::add(const Zonotope &O) const {
  assert(NumRows == O.NumRows && NumCols == O.NumCols && "shape mismatch");
  Zonotope A = *this, B = O;
  alignSpaces(A, B);
  A.Center += B.Center;
  A.PhiC += B.PhiC;
  A.EpsC += B.EpsC;
  return A;
}

Zonotope Zonotope::sub(const Zonotope &O) const {
  return add(O.scale(-1.0));
}

Zonotope Zonotope::addConst(const Matrix &C) const {
  Zonotope Z = *this;
  Z.Center += C;
  return Z;
}

Zonotope Zonotope::scale(double S) const {
  Zonotope Z = *this;
  Z.Center *= S;
  Z.PhiC *= S;
  Z.EpsC *= S;
  return Z;
}

Zonotope Zonotope::mapLinear(
    size_t NewRows, size_t NewCols,
    const std::function<Matrix(const Matrix &)> &Fn) const {
  Zonotope Z;
  Z.NumRows = NewRows;
  Z.NumCols = NewCols;
  Z.PhiP = PhiP;
  Z.Center = Fn(Center);
  assert(Z.Center.rows() == NewRows && Z.Center.cols() == NewCols &&
         "mapLinear shape contract violated");
  // One Fn application per coefficient row, each writing a disjoint output
  // row: parallel over symbols. Fn must be pure (all mapLinear callers pass
  // stateless linear maps).
  size_t SymGrain = grainForWork(2 * numVars());
  Z.PhiC = Matrix(numPhi(), NewRows * NewCols);
  parallelFor(0, numPhi(), SymGrain, [&](size_t S0, size_t S1) {
    for (size_t S = S0; S < S1; ++S) {
      Matrix Mapped = Fn(PhiC.rowSlice(S, S + 1).reshaped(NumRows, NumCols));
      std::copy(Mapped.data(), Mapped.data() + Mapped.size(),
                Z.PhiC.rowPtr(S));
    }
  });
  Z.EpsC = Matrix(numEps(), NewRows * NewCols);
  parallelFor(0, numEps(), SymGrain, [&](size_t S0, size_t S1) {
    for (size_t S = S0; S < S1; ++S) {
      Matrix Mapped = Fn(EpsC.rowSlice(S, S + 1).reshaped(NumRows, NumCols));
      std::copy(Mapped.data(), Mapped.data() + Mapped.size(),
                Z.EpsC.rowPtr(S));
    }
  });
  return Z;
}

Zonotope Zonotope::matmulRightConst(const Matrix &W) const {
  assert(W.rows() == NumCols && "matmulRightConst shape mismatch");
  Zonotope Z = mapLinear(NumRows, W.cols(), [&](const Matrix &X) {
    return tensor::matmul(X, W);
  });
  return Z;
}

Zonotope Zonotope::matmulLeftConst(const Matrix &W) const {
  assert(W.cols() == NumRows && "matmulLeftConst shape mismatch");
  return mapLinear(W.rows(), NumCols, [&](const Matrix &X) {
    return tensor::matmul(W, X);
  });
}

Zonotope Zonotope::subRowMean() const {
  return mapLinear(NumRows, NumCols, [&](const Matrix &X) {
    Matrix Means = X.rowMeans();
    Matrix Out = X;
    for (size_t R = 0; R < X.rows(); ++R)
      for (size_t C = 0; C < X.cols(); ++C)
        Out.at(R, C) -= Means.at(R, 0);
    return Out;
  });
}

Zonotope Zonotope::rowMeans() const {
  return mapLinear(NumRows, 1,
                   [&](const Matrix &X) { return X.rowMeans(); });
}

Zonotope Zonotope::scaleColumns(const Matrix &Gamma) const {
  assert(Gamma.rows() == 1 && Gamma.cols() == NumCols &&
         "scaleColumns wants a 1 x Cols vector");
  return mapLinear(NumRows, NumCols, [&](const Matrix &X) {
    Matrix Out = X;
    for (size_t R = 0; R < X.rows(); ++R)
      for (size_t C = 0; C < X.cols(); ++C)
        Out.at(R, C) *= Gamma.at(0, C);
    return Out;
  });
}

Zonotope Zonotope::addRowBroadcast(const Matrix &Bias) const {
  Zonotope Z = *this;
  Z.Center = tensor::addRowBroadcast(Z.Center, Bias);
  return Z;
}

Zonotope Zonotope::selectRow(size_t R) const {
  assert(R < NumRows && "selectRow out of range");
  return mapLinear(1, NumCols,
                   [&](const Matrix &X) { return X.rowSlice(R, R + 1); });
}

Zonotope Zonotope::selectColRange(size_t C0, size_t C1) const {
  assert(C0 <= C1 && C1 <= NumCols && "selectColRange out of range");
  return mapLinear(NumRows, C1 - C0,
                   [&](const Matrix &X) { return X.colSlice(C0, C1); });
}

Zonotope Zonotope::transposedView() const {
  return mapLinear(NumCols, NumRows,
                   [&](const Matrix &X) { return X.transposed(); });
}

Zonotope Zonotope::reshapedView(size_t Rows, size_t Cols) const {
  assert(Rows * Cols == numVars() && "reshape must preserve element count");
  Zonotope Z = *this;
  Z.NumRows = Rows;
  Z.NumCols = Cols;
  Z.Center = Center.reshaped(Rows, Cols);
  return Z;
}

Zonotope Zonotope::concatCols(const std::vector<Zonotope> &Parts) {
  assert(!Parts.empty() && "concatCols of nothing");
  size_t Rows = Parts.front().NumRows;
  size_t Cols = 0;
  size_t MaxEps = 0;
  for (const Zonotope &P : Parts) {
    assert(P.NumRows == Rows && "concatCols row mismatch");
    assert(P.PhiP == Parts.front().PhiP && P.numPhi() == Parts.front().numPhi() &&
           "concatCols phi mismatch");
    Cols += P.NumCols;
    MaxEps = std::max(MaxEps, P.numEps());
  }
  Zonotope Z;
  Z.NumRows = Rows;
  Z.NumCols = Cols;
  Z.PhiP = Parts.front().PhiP;
  Z.Center = Matrix(Rows, Cols);
  Z.PhiC = Matrix(Parts.front().numPhi(), Rows * Cols);
  Z.EpsC = Matrix(MaxEps, Rows * Cols);
  size_t C0 = 0;
  for (const Zonotope &P : Parts) {
    Z.Center.setBlock(0, C0, P.Center);
    for (size_t S = 0; S < P.numPhi(); ++S) {
      const double *Src = P.PhiC.rowPtr(S);
      double *Dst = Z.PhiC.rowPtr(S);
      for (size_t R = 0; R < Rows; ++R)
        std::copy(Src + R * P.NumCols, Src + (R + 1) * P.NumCols,
                  Dst + R * Cols + C0);
    }
    for (size_t S = 0; S < P.numEps(); ++S) {
      const double *Src = P.EpsC.rowPtr(S);
      double *Dst = Z.EpsC.rowPtr(S);
      for (size_t R = 0; R < Rows; ++R)
        std::copy(Src + R * P.NumCols, Src + (R + 1) * P.NumCols,
                  Dst + R * Cols + C0);
    }
    C0 += P.NumCols;
  }
  return Z;
}

void Zonotope::installCoeffs(Matrix Phi, Matrix Eps) {
  assert(Phi.cols() == numVars() && Eps.cols() == numVars() &&
         "installCoeffs column count mismatch");
  PhiC = std::move(Phi);
  EpsC = std::move(Eps);
}

void Zonotope::padEpsTo(size_t Count) {
  assert(Count >= numEps() && "cannot shrink eps space by padding");
  EpsC.appendZeroRows(Count - numEps());
}

void Zonotope::padPhiTo(size_t Count) {
  assert(Count >= numPhi() && "cannot shrink phi space by padding");
  PhiC.appendZeroRows(Count - numPhi());
}

void Zonotope::alignEps(Zonotope &A, Zonotope &B) {
  size_t Count = std::max(A.numEps(), B.numEps());
  A.padEpsTo(Count);
  B.padEpsTo(Count);
}

void Zonotope::alignSpaces(Zonotope &A, Zonotope &B) {
  if (A.numPhi() == 0)
    A.PhiP = B.PhiP;
  if (B.numPhi() == 0)
    B.PhiP = A.PhiP;
  assert(A.PhiP == B.PhiP && "incompatible phi norms");
  size_t Count = std::max(A.numPhi(), B.numPhi());
  A.padPhiTo(Count);
  B.padPhiTo(Count);
  alignEps(A, B);
}

size_t Zonotope::appendFreshEps(
    const std::vector<std::pair<size_t, double>> &Entries) {
  // Every non-affine transformer introduces its fresh symbols through
  // here, so this one counter is the global eps-creation tally.
  static support::Counter &EpsCreated =
      support::Metrics::global().counter("zono.eps_symbols.created");
  EpsCreated.add(static_cast<double>(Entries.size()));
  size_t First = numEps();
  Matrix Block(Entries.size(), numVars());
  for (size_t I = 0; I < Entries.size(); ++I) {
    assert(Entries[I].first < numVars() && "fresh eps var out of range");
    Block.at(I, Entries[I].first) = Entries[I].second;
  }
  EpsC.appendRows(Block);
  return First;
}

void Zonotope::scalePerVarInPlace(const Matrix &Lambda) {
  assert(Lambda.rows() == NumRows && Lambda.cols() == NumCols &&
         "Lambda must have the view's shape");
  size_t N = numVars();
  for (size_t V = 0; V < N; ++V)
    Center.flat(V) *= Lambda.flat(V);
  size_t SymGrain = grainForWork(N);
  parallelFor(0, numPhi(), SymGrain, [&](size_t S0, size_t S1) {
    for (size_t S = S0; S < S1; ++S) {
      double *Row = PhiC.rowPtr(S);
      for (size_t V = 0; V < N; ++V)
        Row[V] *= Lambda.flat(V);
    }
  });
  parallelFor(0, numEps(), SymGrain, [&](size_t S0, size_t S1) {
    for (size_t S = S0; S < S1; ++S) {
      double *Row = EpsC.rowPtr(S);
      for (size_t V = 0; V < N; ++V)
        Row[V] *= Lambda.flat(V);
    }
  });
}

void Zonotope::shiftCenterInPlace(const Matrix &Mu) {
  Center += Mu;
}

void Zonotope::rewriteEpsSymbol(size_t Sym, double Mid, double Rad) {
  if (Sym >= numEps())
    return; // This tensor predates the symbol; nothing to rewrite.
  double *Row = EpsC.rowPtr(Sym);
  for (size_t V = 0; V < numVars(); ++V) {
    Center.flat(V) += Mid * Row[V];
    Row[V] *= Rad;
  }
}

Matrix Zonotope::sample(support::Rng &Rng, bool OnBoundary) const {
  std::vector<double> PhiVals, EpsVals;
  sampleNoise(Rng, OnBoundary, PhiVals, EpsVals);
  return evaluate(PhiVals, EpsVals);
}

void Zonotope::sampleNoise(support::Rng &Rng, bool OnBoundary,
                           std::vector<double> &PhiVals,
                           std::vector<double> &EpsVals) const {
  PhiVals.assign(numPhi(), 0.0);
  EpsVals.assign(numEps(), 0.0);
  for (double &V : PhiVals)
    V = Rng.uniform(-1.0, 1.0);
  if (!PhiVals.empty()) {
    // Scale into (or onto) the unit lp ball.
    double Norm = 0.0;
    if (PhiP == 1.0) {
      for (double V : PhiVals)
        Norm += std::fabs(V);
    } else if (PhiP == 2.0) {
      for (double V : PhiVals)
        Norm += V * V;
      Norm = std::sqrt(Norm);
    } else {
      for (double V : PhiVals)
        Norm = std::max(Norm, std::fabs(V));
    }
    double Scale = OnBoundary ? (Norm > 0 ? 1.0 / Norm : 0.0)
                              : (Norm > 1.0 ? 1.0 / Norm : 1.0);
    for (double &V : PhiVals)
      V *= Scale;
  }
  for (double &V : EpsVals)
    V = OnBoundary ? Rng.sign() : Rng.uniform(-1.0, 1.0);
}

Matrix Zonotope::evaluate(const std::vector<double> &PhiVals,
                          const std::vector<double> &EpsVals) const {
  assert(PhiVals.size() == numPhi() && EpsVals.size() == numEps() &&
         "noise vector arity mismatch");
  Matrix Out = Center;
  for (size_t S = 0; S < numPhi(); ++S) {
    const double *Row = PhiC.rowPtr(S);
    double V = PhiVals[S];
    if (V == 0.0)
      continue;
    for (size_t I = 0; I < numVars(); ++I)
      Out.flat(I) += V * Row[I];
  }
  for (size_t S = 0; S < numEps(); ++S) {
    const double *Row = EpsC.rowPtr(S);
    double V = EpsVals[S];
    if (V == 0.0)
      continue;
    for (size_t I = 0; I < numVars(); ++I)
      Out.flat(I) += V * Row[I];
  }
  return Out;
}

bool Zonotope::validate(std::string *Why) const {
  auto Fail = [&](const std::string &Msg) {
    if (Why)
      *Why = Msg;
    return false;
  };
  if (Center.rows() != NumRows || Center.cols() != NumCols)
    return Fail("center shape does not match the view");
  if (!PhiC.empty() && PhiC.cols() != numVars())
    return Fail("phi coefficient matrix has " + std::to_string(PhiC.cols()) +
                " columns for " + std::to_string(numVars()) + " variables");
  if (!EpsC.empty() && EpsC.cols() != numVars())
    return Fail("eps coefficient matrix has " + std::to_string(EpsC.cols()) +
                " columns for " + std::to_string(numVars()) + " variables");
  if (numPhi() > 0 && !(PhiP >= 1.0 || PhiP == Matrix::InfNorm))
    return Fail("phi norm exponent " + std::to_string(PhiP) +
                " is not >= 1 or InfNorm");
  auto Finite = [](const Matrix &M) {
    const double *D = M.data();
    for (size_t I = 0, N = M.size(); I < N; ++I)
      if (!std::isfinite(D[I]))
        return false;
    return true;
  };
  if (!Finite(Center))
    return Fail("non-finite center entry");
  if (!Finite(PhiC))
    return Fail("non-finite phi coefficient");
  if (!Finite(EpsC))
    return Fail("non-finite eps coefficient");
  return true;
}
