//===- zono/Zonotope.cpp --------------------------------------*- C++ -*-===//

#include "zono/Zonotope.h"

#include "zono/Provenance.h"

#include "support/Fp.h"
#include "support/Metrics.h"
#include "support/Parallel.h"
#include "support/Rng.h"
#include "tensor/Kernels.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <utility>
#include <vector>

using namespace deept;
using namespace deept::zono;
using support::grainForWork;
using support::parallelFor;
using tensor::dualExponent;

namespace {

/// Accumulates, per variable (column), the dual-norm of the coefficient
/// columns of \p Coeffs into [V0, V1) of \p O in single precision with the
/// sound upward lift (the opt-in f32 mode; see tensor::detail::f32SumUpper).
/// \p O must be zero on entry for sum norms.
void dualNormsF32Range(const Matrix &Coeffs, double Q, double *O, size_t V0,
                       size_t V1) {
  const tensor::Kernels &K = tensor::kernels();
  size_t NumS = Coeffs.rows(), W = V1 - V0;
  std::vector<float> FAcc(W, 0.0f);
  if (Q == 1.0) {
    for (size_t S = 0; S < NumS; ++S)
      K.AccAbsF32(Coeffs.rowPtr(S) + V0, FAcc.data(), W);
    for (size_t V = V0; V < V1; ++V)
      O[V] = tensor::detail::f32SumUpper(FAcc[V - V0], NumS);
    return;
  }
  if (Q == 2.0) {
    for (size_t S = 0; S < NumS; ++S)
      K.AccSqF32(Coeffs.rowPtr(S) + V0, FAcc.data(), W);
    for (size_t V = V0; V < V1; ++V)
      O[V] = std::sqrt(tensor::detail::f32SumUpper(FAcc[V - V0], NumS));
    return;
  }
  assert(Q == Matrix::InfNorm && "unsupported dual exponent");
  for (size_t S = 0; S < NumS; ++S)
    K.AccMaxAbsF32(Coeffs.rowPtr(S) + V0, FAcc.data(), W);
  for (size_t V = V0; V < V1; ++V)
    O[V] = tensor::detail::f32MaxUpper(FAcc[V - V0]);
}

/// Accumulates, per variable (column), the dual-norm of the coefficient
/// columns of \p Coeffs. Q follows Matrix::InfNorm conventions. Parallel
/// over variable ranges; each variable accumulates its symbol axis in
/// ascending order, so results are thread-count independent. In f32 mode
/// (support::fpPrecision()) the accumulation runs in single precision with
/// the sound upward lift.
Matrix columnDualNorms(const Matrix &Coeffs, double Q, size_t NumVars) {
  Matrix Out(1, NumVars, 0.0);
  double *O = Out.data();
  size_t NumS = Coeffs.rows();
  parallelFor(0, NumVars, support::reductionGrain(NumVars),
              [&](size_t V0, size_t V1) {
    if (support::fpPrecision() == support::FpPrecision::F32)
      return dualNormsF32Range(Coeffs, Q, O, V0, V1);
    const tensor::Kernels &K = tensor::kernels();
    if (Q == 1.0) {
      for (size_t S = 0; S < NumS; ++S)
        K.AccAbs(Coeffs.rowPtr(S) + V0, O + V0, V1 - V0);
      return;
    }
    if (Q == 2.0) {
      for (size_t S = 0; S < NumS; ++S)
        K.AccSq(Coeffs.rowPtr(S) + V0, O + V0, V1 - V0);
      for (size_t V = V0; V < V1; ++V)
        O[V] = std::sqrt(O[V]);
      return;
    }
    assert(Q == Matrix::InfNorm && "unsupported dual exponent");
    for (size_t S = 0; S < NumS; ++S)
      K.AccMaxAbs(Coeffs.rowPtr(S) + V0, O + V0, V1 - V0);
  });
  return Out;
}

/// Applies a view-level linear map \p Fn to every row of a symbol-major
/// coefficient block (each row reinterpreted as an R x C view), writing the
/// flattened images into a fresh Syms x NewVars matrix. This is the dense
/// fallback path of the structure-preserving transformers; it reproduces
/// the old per-symbol mapLinear loop exactly (parallel over symbols with
/// disjoint output rows).
template <typename FnT>
Matrix denseRowwise(const Matrix &Blk, size_t R, size_t C, size_t NewVars,
                    const FnT &Fn) {
  // Every row is fully written by the std::copy below, so skip the fill.
  Matrix Out = Matrix::uninit(Blk.rows(), NewVars);
  parallelFor(0, Blk.rows(), grainForWork(2 * R * C),
              [&](size_t S0, size_t S1) {
                for (size_t S = S0; S < S1; ++S) {
                  Matrix Mapped = Fn(Blk.rowSlice(S, S + 1).reshaped(R, C));
                  std::copy(Mapped.data(), Mapped.data() + Mapped.size(),
                            Out.rowPtr(S));
                }
              });
  return Out;
}

/// Pointer-level variant of denseRowwise for the hot affine transformers:
/// \p Fn reads one symbol row (the old flattened view) and writes its
/// image directly, with no per-row Matrix temporaries. With \p ZeroInit
/// (the default) the output starts zero-filled so Fn may write sparsely;
/// transformers whose Fn fully overwrites each output row pass false and
/// skip the fill. \p Work estimates the per-row cost for the parallel
/// grain.
template <typename FnT>
Matrix denseRowwisePtr(const Matrix &Blk, size_t Work, size_t NewVars,
                       const FnT &Fn, bool ZeroInit = true) {
  Matrix Out = ZeroInit ? Matrix(Blk.rows(), NewVars)
                        : Matrix::uninit(Blk.rows(), NewVars);
  parallelFor(0, Blk.rows(), grainForWork(Work), [&](size_t S0, size_t S1) {
    for (size_t S = S0; S < S1; ++S)
      Fn(Blk.rowPtr(S), Out.rowPtr(S));
  });
  return Out;
}

} // namespace

//===----------------------------------------------------------------------===//
// Block storage plumbing
//===----------------------------------------------------------------------===//

void Zonotope::densifyEps() const {
  if (EpsTail.empty())
    return;
  static support::Counter &Densified =
      support::Metrics::global().counter("zono.densify_count");
  Densified.add(1.0);
  size_t N = numVars();
  if (EpsDense.cols() != N) {
    assert(EpsDense.rows() == 0 && "dense block with wrong column count");
    EpsDense = Matrix(0, N);
  }
  size_t S = EpsDense.rows();
  EpsDense.appendZeroRows(TailSyms);
  for (const EpsBlock &B : EpsTail) {
    switch (B.Kind) {
    case EpsBlockKind::Zero:
      S += B.ZeroSyms;
      break;
    case EpsBlockKind::Diag:
      for (const auto &E : B.Entries) {
        if (E.second != 0.0)
          EpsDense.at(S, E.first) = E.second;
        ++S;
      }
      break;
    case EpsBlockKind::Dense:
      for (size_t R = 0; R < B.D.rows(); ++R, ++S)
        std::copy(B.D.rowPtr(R), B.D.rowPtr(R) + N, EpsDense.rowPtr(S));
      break;
    }
  }
  EpsTail.clear();
  TailSyms = 0;
}

void Zonotope::installEpsBlocks(std::deque<EpsBlock> Blocks) {
  EpsTail.clear();
  TailSyms = 0;
  if (!Blocks.empty() && Blocks.front().Kind == EpsBlockKind::Dense) {
    EpsDense = std::move(Blocks.front().D);
    Blocks.pop_front();
  } else {
    EpsDense = Matrix(0, numVars());
  }
  for (const EpsBlock &B : Blocks)
    TailSyms += B.syms();
  EpsTail = std::move(Blocks);
}

std::vector<EpsBlockView> Zonotope::epsBlockViews() const {
  std::vector<EpsBlockView> Views;
  Views.reserve(EpsTail.size() + 1);
  size_t Start = 0;
  if (EpsDense.rows() > 0) {
    EpsBlockView V;
    V.Kind = EpsBlockKind::Dense;
    V.Start = 0;
    V.Syms = EpsDense.rows();
    V.Dense = &EpsDense;
    Views.push_back(V);
    Start = EpsDense.rows();
  }
  for (const EpsBlock &B : EpsTail) {
    EpsBlockView V;
    V.Kind = B.Kind;
    V.Start = Start;
    V.Syms = B.syms();
    if (B.Kind == EpsBlockKind::Dense)
      V.Dense = &B.D;
    else if (B.Kind == EpsBlockKind::Diag)
      V.Entries = B.Entries.data();
    Views.push_back(V);
    Start += V.Syms;
  }
  return Views;
}

double Zonotope::epsStructuredFraction() const {
  size_t Total = numEps();
  if (Total == 0)
    return 0.0;
  size_t Structured = 0;
  for (const EpsBlock &B : EpsTail)
    if (B.Kind != EpsBlockKind::Dense)
      Structured += B.syms();
  return static_cast<double>(Structured) / static_cast<double>(Total);
}

size_t Zonotope::coeffBytes() const {
  size_t Bytes =
      (PhiC.size() + EpsDense.size() + Center.size()) * sizeof(double);
  for (const EpsBlock &B : EpsTail) {
    Bytes += sizeof(EpsBlock);
    switch (B.Kind) {
    case EpsBlockKind::Dense:
      Bytes += B.D.size() * sizeof(double);
      break;
    case EpsBlockKind::Diag:
      Bytes += B.Entries.size() * sizeof(std::pair<size_t, double>);
      break;
    case EpsBlockKind::Zero:
      break;
    }
  }
  return Bytes;
}

//===----------------------------------------------------------------------===//
// Construction
//===----------------------------------------------------------------------===//

Zonotope Zonotope::constant(const Matrix &Center, double PhiP) {
  Zonotope Z;
  Z.NumRows = Center.rows();
  Z.NumCols = Center.cols();
  Z.Center = Center;
  Z.PhiP = PhiP;
  Z.PhiC = Matrix(0, Z.numVars());
  Z.EpsDense = Matrix(0, Z.numVars());
  return Z;
}

Zonotope Zonotope::lpBallOnRow(const Matrix &Center, size_t Row, double P,
                               double Radius) {
  assert(Row < Center.rows() && "perturbed row out of range");
  Zonotope Z = constant(Center, P == Matrix::InfNorm ? Matrix::InfNorm : P);
  size_t E = Center.cols();
  if (P == Matrix::InfNorm) {
    EpsBlock B;
    B.Kind = EpsBlockKind::Diag;
    B.Entries.reserve(E);
    for (size_t I = 0; I < E; ++I)
      B.Entries.emplace_back(Row * E + I, Radius);
    Z.TailSyms = E;
    Z.EpsTail.push_back(std::move(B));
  } else {
    Matrix Coeffs(E, Z.numVars());
    for (size_t I = 0; I < E; ++I)
      Coeffs.at(I, Row * E + I) = Radius;
    Z.PhiC = Coeffs;
  }
  return Z;
}

Zonotope Zonotope::lpBall(const Matrix &Center, double P, double Radius) {
  Zonotope Z = constant(Center, P == Matrix::InfNorm ? Matrix::InfNorm : P);
  size_t N = Z.numVars();
  if (P == Matrix::InfNorm) {
    EpsBlock B;
    B.Kind = EpsBlockKind::Diag;
    B.Entries.reserve(N);
    for (size_t I = 0; I < N; ++I)
      B.Entries.emplace_back(I, Radius);
    Z.TailSyms = N;
    Z.EpsTail.push_back(std::move(B));
  } else {
    Matrix Coeffs(N, N);
    for (size_t I = 0; I < N; ++I)
      Coeffs.at(I, I) = Radius;
    Z.PhiC = Coeffs;
  }
  return Z;
}

Zonotope Zonotope::box(const Matrix &Lo, const Matrix &Hi) {
  assert(Lo.rows() == Hi.rows() && Lo.cols() == Hi.cols() &&
         "box corner shape mismatch");
  Matrix Center = (Lo + Hi) * 0.5;
  Zonotope Z = constant(Center, Matrix::InfNorm);
  std::vector<std::pair<size_t, double>> Entries;
  for (size_t V = 0; V < Z.numVars(); ++V) {
    double Rad = 0.5 * (Hi.flat(V) - Lo.flat(V));
    assert(Rad >= 0.0 && "box with Lo > Hi");
    if (Rad > 0.0)
      Entries.emplace_back(V, Rad);
  }
  Z.appendFreshEps(Entries);
  return Z;
}

//===----------------------------------------------------------------------===//
// Bounds
//===----------------------------------------------------------------------===//

Matrix Zonotope::epsColumnDualNorms(double Q) const {
  size_t N = numVars();
  Matrix Out(1, N, 0.0);
  double *O = Out.data();
  // Block-wise accumulation with zero skipping: blocks are visited in
  // symbol order and dense rows accumulate ascending, so each variable
  // sees exactly the nonzero terms of the dense kernel in the same order
  // (the skipped terms are +0.0 adds / max-with-0, which are identities
  // on the nonnegative accumulator).
  auto DenseAcc = [&](const Matrix &Blk) {
    size_t NumS = Blk.rows();
    if (NumS == 0)
      return;
    parallelFor(0, N, support::reductionGrain(N), [&](size_t V0, size_t V1) {
      const tensor::Kernels &K = tensor::kernels();
      if (support::fpPrecision() == support::FpPrecision::F32) {
        // Per-block f32 accumulation, lifted upward before joining the
        // cross-block double accumulator: each block contributes an upper
        // bound of its f64 contribution, so the total stays an upper
        // bound of the f64 result.
        size_t W = V1 - V0;
        std::vector<float> FAcc(W, 0.0f);
        if (Q == 1.0) {
          for (size_t S = 0; S < NumS; ++S)
            K.AccAbsF32(Blk.rowPtr(S) + V0, FAcc.data(), W);
          for (size_t V = V0; V < V1; ++V)
            O[V] += tensor::detail::f32SumUpper(FAcc[V - V0], NumS);
        } else if (Q == 2.0) {
          for (size_t S = 0; S < NumS; ++S)
            K.AccSqF32(Blk.rowPtr(S) + V0, FAcc.data(), W);
          for (size_t V = V0; V < V1; ++V)
            O[V] += tensor::detail::f32SumUpper(FAcc[V - V0], NumS);
        } else {
          assert(Q == Matrix::InfNorm && "unsupported dual exponent");
          for (size_t S = 0; S < NumS; ++S)
            K.AccMaxAbsF32(Blk.rowPtr(S) + V0, FAcc.data(), W);
          for (size_t V = V0; V < V1; ++V)
            O[V] = std::max(O[V], tensor::detail::f32MaxUpper(FAcc[V - V0]));
        }
        return;
      }
      if (Q == 1.0) {
        for (size_t S = 0; S < NumS; ++S)
          K.AccAbs(Blk.rowPtr(S) + V0, O + V0, V1 - V0);
      } else if (Q == 2.0) {
        for (size_t S = 0; S < NumS; ++S)
          K.AccSq(Blk.rowPtr(S) + V0, O + V0, V1 - V0);
      } else {
        assert(Q == Matrix::InfNorm && "unsupported dual exponent");
        for (size_t S = 0; S < NumS; ++S)
          K.AccMaxAbs(Blk.rowPtr(S) + V0, O + V0, V1 - V0);
      }
    });
  };
  DenseAcc(EpsDense);
  for (const EpsBlock &B : EpsTail) {
    switch (B.Kind) {
    case EpsBlockKind::Zero:
      break;
    case EpsBlockKind::Dense:
      DenseAcc(B.D);
      break;
    case EpsBlockKind::Diag:
      for (const auto &E : B.Entries) {
        if (E.second == 0.0)
          continue;
        if (Q == 1.0)
          O[E.first] += std::fabs(E.second);
        else if (Q == 2.0)
          O[E.first] += E.second * E.second;
        else
          O[E.first] = std::max(O[E.first], std::fabs(E.second));
      }
      break;
    }
  }
  if (Q == 2.0)
    parallelFor(0, N, 16384, [&](size_t V0, size_t V1) {
      for (size_t V = V0; V < V1; ++V)
        O[V] = std::sqrt(O[V]);
    });
  return Out;
}

void Zonotope::bounds(Matrix &Lo, Matrix &Hi) const {
  Matrix Rad = radii();
  Lo = Matrix(NumRows, NumCols);
  Hi = Matrix(NumRows, NumCols);
  for (size_t V = 0; V < numVars(); ++V) {
    Lo.flat(V) = Center.flat(V) - Rad.flat(V);
    Hi.flat(V) = Center.flat(V) + Rad.flat(V);
  }
}

Matrix Zonotope::phiColumnDualNorms() const {
  return columnDualNorms(PhiC, dualExponent(PhiP), numVars());
}

Matrix Zonotope::radii() const {
  double Q = dualExponent(PhiP);
  Matrix PhiNorm = columnDualNorms(PhiC, Q, numVars());
  Matrix EpsNorm = epsColumnDualNorms(1.0);
  Matrix Rad(NumRows, NumCols);
  for (size_t V = 0; V < numVars(); ++V)
    Rad.flat(V) = PhiNorm.flat(V) + EpsNorm.flat(V);
  return Rad;
}

//===----------------------------------------------------------------------===//
// Affine transformers
//===----------------------------------------------------------------------===//

Zonotope Zonotope::add(const Zonotope &O) const {
  assert(NumRows == O.NumRows && NumCols == O.NumCols && "shape mismatch");
  assert(PhiP == O.PhiP && "phi norm mismatch");
  size_t N = numVars();
  Zonotope A = *this;
  A.Center += O.Center;
  // Phi plane: O's missing trailing symbols are zero rows, so only O's
  // actual rows are added (adding a literal zero row is the identity up
  // to the sign of zero).
  A.padPhiTo(std::max(numPhi(), O.numPhi()));
  if (O.numPhi() > 0) {
    const Matrix &BP = O.PhiC;
    parallelFor(0, O.numPhi(), grainForWork(N), [&](size_t S0, size_t S1) {
      // Axpy with multiplier 1.0 is an exact add per element, so this is
      // bit-identical to the former open-coded AR[V] += BR[V] loop.
      for (size_t S = S0; S < S1; ++S)
        tensor::kernels().Axpy(1.0, BP.rowPtr(S), A.PhiC.rowPtr(S), N);
    });
  }
  size_t E = std::max(numEps(), O.numEps());
  A.padEpsTo(E);
  if (E == 0)
    return A;
  if (A.EpsTail.empty() && O.EpsTail.empty() &&
      EpsDense.rows() == O.EpsDense.rows()) {
    A.EpsDense += O.EpsDense;
    return A;
  }
  // Block-wise sum: walk both eps spaces over maximal symbol runs with a
  // constant (kind, kind) pair, using bulk matrix kernels for runs that
  // involve a Dense side. Adding the operands in (this, O) order per
  // element reproduces the dense kernel's A += B exactly; symbols that
  // are zero on one side pass through (again identical up to the sign of
  // zero, which downstream dual norms erase).
  auto RefsA = flattenEpsViews(A.epsBlockViews(), E);
  auto RefsB = flattenEpsViews(O.epsBlockViews(), E);
  auto RunClass = [&](size_t S) -> int {
    EpsBlockKind KA = RefsA[S].Kind, KB = RefsB[S].Kind;
    if (KA == EpsBlockKind::Zero && KB == EpsBlockKind::Zero)
      return 0; // zero
    if (KA == EpsBlockKind::Dense || KB == EpsBlockKind::Dense ||
        (KA == EpsBlockKind::Diag && KB == EpsBlockKind::Diag &&
         RefsA[S].Entry.first != RefsB[S].Entry.first))
      return 2; // needs a dense row
    return 1;   // diagonal result
  };
  EpsBlockListBuilder Bld(N);
  size_t S = 0;
  while (S < E) {
    int Cls = RunClass(S);
    size_t S1 = S + 1;
    while (S1 < E && RunClass(S1) == Cls)
      ++S1;
    size_t Len = S1 - S;
    if (Cls == 0) {
      Bld.zero(Len);
    } else if (Cls == 1) {
      for (size_t I = S; I < S1; ++I) {
        const EpsSymRef &RA = RefsA[I];
        const EpsSymRef &RB = RefsB[I];
        if (RA.Kind == EpsBlockKind::Zero)
          Bld.diag(RB.Entry.first, RB.Entry.second);
        else if (RB.Kind == EpsBlockKind::Zero)
          Bld.diag(RA.Entry.first, RA.Entry.second);
        else
          Bld.diag(RA.Entry.first, RA.Entry.second + RB.Entry.second);
      }
    } else {
      Matrix Run(Len, N, 0.0);
      parallelFor(0, Len, grainForWork(2 * N), [&](size_t R0, size_t R1) {
        for (size_t R = R0; R < R1; ++R) {
          const EpsSymRef &RA = RefsA[S + R];
          const EpsSymRef &RB = RefsB[S + R];
          double *Out = Run.rowPtr(R);
          if (RA.Kind == EpsBlockKind::Dense)
            std::copy(RA.Row, RA.Row + N, Out);
          else if (RA.Kind == EpsBlockKind::Diag)
            Out[RA.Entry.first] = RA.Entry.second;
          if (RB.Kind == EpsBlockKind::Dense) {
            const double *BR = RB.Row;
            for (size_t V = 0; V < N; ++V)
              Out[V] += BR[V];
          } else if (RB.Kind == EpsBlockKind::Diag) {
            Out[RB.Entry.first] += RB.Entry.second;
          }
        }
      });
      Bld.dense(std::move(Run));
    }
    S = S1;
  }
  A.installEpsBlocks(Bld.finish());
  return A;
}

Zonotope Zonotope::sub(const Zonotope &O) const {
  return add(O.scale(-1.0));
}

Zonotope Zonotope::addConst(const Matrix &C) const & {
  Zonotope Z = *this;
  Z.Center += C;
  return Z;
}

Zonotope Zonotope::addConst(const Matrix &C) && {
  Center += C;
  return std::move(*this);
}

Zonotope Zonotope::scale(double S) const & {
  Zonotope Z = *this;
  return std::move(Z).scale(S);
}

Zonotope Zonotope::scale(double S) && {
  Center *= S;
  PhiC *= S;
  EpsDense *= S;
  for (EpsBlock &B : EpsTail) {
    if (B.Kind == EpsBlockKind::Dense)
      B.D *= S;
    else if (B.Kind == EpsBlockKind::Diag)
      for (auto &E : B.Entries)
        E.second *= S;
  }
  return std::move(*this);
}

template <typename BlockFnT, typename DiagFnT>
Zonotope Zonotope::epsMapDiag(size_t NewRows, size_t NewCols,
                              const BlockFnT &BlockFn,
                              const DiagFnT &DiagFn) const {
  Zonotope Z;
  Z.NumRows = NewRows;
  Z.NumCols = NewCols;
  Z.PhiP = PhiP;
  size_t NewVars = NewRows * NewCols;
  Z.Center = BlockFn(Center.reshaped(1, numVars())).reshaped(NewRows, NewCols);
  Z.PhiC = PhiC.rows() > 0 ? BlockFn(PhiC) : Matrix(0, NewVars);
  Z.EpsDense =
      EpsDense.rows() > 0 ? BlockFn(EpsDense) : Matrix(0, NewVars);
  for (const EpsBlock &B : EpsTail) {
    EpsBlock NB;
    NB.Kind = B.Kind;
    switch (B.Kind) {
    case EpsBlockKind::Zero:
      NB.ZeroSyms = B.ZeroSyms;
      break;
    case EpsBlockKind::Diag:
      NB.Entries.reserve(B.Entries.size());
      for (const auto &E : B.Entries)
        NB.Entries.push_back(E.second == 0.0
                                 ? std::pair<size_t, double>(0, 0.0)
                                 : DiagFn(E));
      break;
    case EpsBlockKind::Dense:
      NB.D = BlockFn(B.D);
      break;
    }
    Z.EpsTail.push_back(std::move(NB));
  }
  Z.TailSyms = TailSyms;
  return Z;
}

template <typename BlockFnT, typename ScatterFnT>
Zonotope Zonotope::epsMapScatter(size_t NewRows, size_t NewCols,
                                 const BlockFnT &BlockFn,
                                 const ScatterFnT &ScatterFn) const {
  Zonotope Z;
  Z.NumRows = NewRows;
  Z.NumCols = NewCols;
  Z.PhiP = PhiP;
  size_t NewVars = NewRows * NewCols;
  Z.Center = BlockFn(Center.reshaped(1, numVars())).reshaped(NewRows, NewCols);
  Z.PhiC = PhiC.rows() > 0 ? BlockFn(PhiC) : Matrix(0, NewVars);
  Z.EpsDense =
      EpsDense.rows() > 0 ? BlockFn(EpsDense) : Matrix(0, NewVars);
  for (const EpsBlock &B : EpsTail) {
    EpsBlock NB;
    switch (B.Kind) {
    case EpsBlockKind::Zero:
      NB.Kind = EpsBlockKind::Zero;
      NB.ZeroSyms = B.ZeroSyms;
      break;
    case EpsBlockKind::Diag: {
      // One O(nnz) scaled-row update per symbol instead of a full GEMM;
      // rows are disjoint, so the entry loop parallelises.
      NB.Kind = EpsBlockKind::Dense;
      NB.D = Matrix(B.Entries.size(), NewVars, 0.0);
      parallelFor(0, B.Entries.size(), grainForWork(NewVars),
                  [&](size_t I0, size_t I1) {
                    for (size_t I = I0; I < I1; ++I) {
                      const auto &E = B.Entries[I];
                      if (E.second != 0.0)
                        ScatterFn(E.first, E.second, NB.D.rowPtr(I));
                    }
                  });
      break;
    }
    case EpsBlockKind::Dense:
      NB.Kind = EpsBlockKind::Dense;
      NB.D = BlockFn(B.D);
      break;
    }
    Z.EpsTail.push_back(std::move(NB));
  }
  Z.TailSyms = TailSyms;
  return Z;
}

Zonotope Zonotope::matmulRightConst(const Matrix &W) const {
  assert(W.rows() == NumCols && "matmulRightConst shape mismatch");
  size_t D = W.cols();
  // Dense blocks: one batched GEMM per block. Row-major symbol rows
  // restack as an (S*Rows) x Cols matrix for free, and the GEMM kernel
  // accumulates ascending-k per output element, so the batch is
  // bit-identical to per-symbol multiplications.
  auto BlockFn = [&](const Matrix &Blk) {
    size_t S = Blk.rows();
    return tensor::matmulReshaped(Blk, S * NumRows, NumCols, W)
        .reshaped(S, NumRows * D);
  };
  auto ScatterFn = [&](size_t Var, double Coef, double *Out) {
    size_t R = Var / NumCols, C = Var % NumCols;
    const double *WR = W.rowPtr(C);
    double *O = Out + R * D;
    for (size_t J = 0; J < D; ++J)
      O[J] = Coef * WR[J];
  };
  return epsMapScatter(NumRows, D, BlockFn, ScatterFn);
}

Zonotope Zonotope::matmulLeftConst(const Matrix &W) const {
  assert(W.cols() == NumRows && "matmulLeftConst shape mismatch");
  size_t M = W.rows();
  size_t R = NumRows, C = NumCols;
  auto BlockFn = [&](const Matrix &Blk) {
    // Ascending-k (ikj) accumulation per output element, matching the
    // tensor::matmul kernel bit-for-bit.
    return denseRowwisePtr(Blk, 2 * M * R * C, M * NumCols,
                           [&W, M, R, C](const double *X, double *O) {
                             const tensor::Kernels &KT = tensor::kernels();
                             for (size_t I = 0; I < M; ++I) {
                               const double *WR = W.rowPtr(I);
                               double *OI = O + I * C;
                               for (size_t K = 0; K < R; ++K)
                                 KT.Axpy(WR[K], X + K * C, OI, C);
                             }
                           });
  };
  auto ScatterFn = [&](size_t Var, double Coef, double *Out) {
    size_t R = Var / NumCols, C = Var % NumCols;
    for (size_t I = 0; I < M; ++I)
      Out[I * NumCols + C] = W.at(I, R) * Coef;
  };
  return epsMapScatter(M, NumCols, BlockFn, ScatterFn);
}

Zonotope Zonotope::subRowMean() const {
  size_t R = NumRows, C = NumCols;
  auto BlockFn = [&](const Matrix &Blk) {
    return denseRowwisePtr(Blk, 2 * R * C, numVars(),
                           [R, C](const double *X, double *O) {
                             const tensor::Kernels &KT = tensor::kernels();
                             for (size_t Rr = 0; Rr < R; ++Rr) {
                               const double *XR = X + Rr * C;
                               double *OR = O + Rr * C;
                               double Mean = KT.Sum(XR, C) /
                                             static_cast<double>(C);
                               for (size_t J = 0; J < C; ++J)
                                 OR[J] = XR[J] - Mean;
                             }
                           },
                           /*ZeroInit=*/false);
  };
  auto ScatterFn = [&](size_t Var, double Coef, double *Out) {
    size_t R = Var / NumCols, C = Var % NumCols;
    double Mean = Coef / static_cast<double>(NumCols);
    double *O = Out + R * NumCols;
    for (size_t J = 0; J < NumCols; ++J)
      O[J] = 0.0 - Mean;
    O[C] = Coef - Mean;
  };
  return epsMapScatter(NumRows, NumCols, BlockFn, ScatterFn);
}

Zonotope Zonotope::subRowMeanScale(const Matrix &Gamma) const {
  assert(Gamma.rows() == 1 && Gamma.cols() == NumCols &&
         "subRowMeanScale wants a 1 x Cols vector");
  // Fused subRowMean().scaleColumns(Gamma): one pass over the coefficient
  // planes instead of two, with the same per-element operations
  // ((x - mean) then * gamma), so results are bit-identical to the
  // two-step composition.
  size_t R = NumRows, C = NumCols;
  const double *G = Gamma.data();
  auto BlockFn = [&](const Matrix &Blk) {
    return denseRowwisePtr(Blk, 3 * R * C, numVars(),
                           [R, C, G](const double *X, double *O) {
                             const tensor::Kernels &KT = tensor::kernels();
                             for (size_t Rr = 0; Rr < R; ++Rr) {
                               const double *XR = X + Rr * C;
                               double Mean = KT.Sum(XR, C) /
                                             static_cast<double>(C);
                               KT.SubScale(XR, Mean, G, O + Rr * C, C);
                             }
                           },
                           /*ZeroInit=*/false);
  };
  auto ScatterFn = [&](size_t Var, double Coef, double *Out) {
    size_t R = Var / NumCols, C = Var % NumCols;
    double Mean = Coef / static_cast<double>(NumCols);
    double *O = Out + R * NumCols;
    for (size_t J = 0; J < NumCols; ++J)
      O[J] = (0.0 - Mean) * G[J];
    O[C] = (Coef - Mean) * G[C];
  };
  return epsMapScatter(NumRows, NumCols, BlockFn, ScatterFn);
}

Zonotope Zonotope::rowMeans() const {
  size_t R = NumRows, C = NumCols;
  auto BlockFn = [&](const Matrix &Blk) {
    return denseRowwisePtr(Blk, 2 * R * C, NumRows,
                           [R, C](const double *X, double *O) {
                             tensor::kernels().RowSums(X, R, C, O);
                             for (size_t Rr = 0; Rr < R; ++Rr)
                               O[Rr] /= static_cast<double>(C);
                           },
                           /*ZeroInit=*/false);
  };
  auto DiagFn = [&](const std::pair<size_t, double> &E) {
    return std::pair<size_t, double>(
        E.first / NumCols, E.second / static_cast<double>(NumCols));
  };
  return epsMapDiag(NumRows, 1, BlockFn, DiagFn);
}

Zonotope Zonotope::scaleColumns(const Matrix &Gamma) const {
  assert(Gamma.rows() == 1 && Gamma.cols() == NumCols &&
         "scaleColumns wants a 1 x Cols vector");
  size_t R = NumRows, C = NumCols;
  const double *G = Gamma.data();
  auto BlockFn = [&](const Matrix &Blk) {
    return denseRowwisePtr(Blk, 2 * R * C, numVars(),
                           [R, C, G](const double *X, double *O) {
                             for (size_t Rr = 0; Rr < R; ++Rr)
                               for (size_t J = 0; J < C; ++J)
                                 O[Rr * C + J] = X[Rr * C + J] * G[J];
                           },
                           /*ZeroInit=*/false);
  };
  auto DiagFn = [&](const std::pair<size_t, double> &E) {
    return std::pair<size_t, double>(
        E.first, E.second * Gamma.at(0, E.first % NumCols));
  };
  return epsMapDiag(NumRows, NumCols, BlockFn, DiagFn);
}

Zonotope Zonotope::addRowBroadcast(const Matrix &Bias) const & {
  Zonotope Z = *this;
  Z.Center = tensor::addRowBroadcast(std::move(Z.Center), Bias);
  return Z;
}

Zonotope Zonotope::addRowBroadcast(const Matrix &Bias) && {
  Center = tensor::addRowBroadcast(std::move(Center), Bias);
  return std::move(*this);
}

Zonotope Zonotope::selectRow(size_t R) const {
  assert(R < NumRows && "selectRow out of range");
  size_t C = NumCols;
  auto BlockFn = [&](const Matrix &Blk) {
    return denseRowwisePtr(Blk, 2 * C, NumCols,
                           [R, C](const double *X, double *O) {
                             std::copy(X + R * C, X + (R + 1) * C, O);
                           },
                           /*ZeroInit=*/false);
  };
  auto DiagFn = [&](const std::pair<size_t, double> &E) {
    if (E.first / NumCols != R)
      return std::pair<size_t, double>(0, 0.0);
    return std::pair<size_t, double>(E.first % NumCols, E.second);
  };
  return epsMapDiag(1, NumCols, BlockFn, DiagFn);
}

Zonotope Zonotope::selectColRange(size_t C0, size_t C1) const {
  assert(C0 <= C1 && C1 <= NumCols && "selectColRange out of range");
  size_t W = C1 - C0;
  size_t R = NumRows, C = NumCols;
  auto BlockFn = [&](const Matrix &Blk) {
    return denseRowwisePtr(Blk, 2 * R * W, NumRows * W,
                           [R, C, C0, W](const double *X, double *O) {
                             for (size_t Rr = 0; Rr < R; ++Rr)
                               std::copy(X + Rr * C + C0,
                                         X + Rr * C + C0 + W, O + Rr * W);
                           },
                           /*ZeroInit=*/false);
  };
  auto DiagFn = [&](const std::pair<size_t, double> &E) {
    size_t R = E.first / NumCols, C = E.first % NumCols;
    if (C < C0 || C >= C1)
      return std::pair<size_t, double>(0, 0.0);
    return std::pair<size_t, double>(R * W + (C - C0), E.second);
  };
  return epsMapDiag(NumRows, W, BlockFn, DiagFn);
}

Zonotope Zonotope::transposedView() const {
  size_t R = NumRows, C = NumCols;
  auto BlockFn = [&](const Matrix &Blk) {
    return denseRowwisePtr(Blk, 2 * R * C, numVars(),
                           [R, C](const double *X, double *O) {
                             for (size_t Rr = 0; Rr < R; ++Rr)
                               for (size_t J = 0; J < C; ++J)
                                 O[J * R + Rr] = X[Rr * C + J];
                           },
                           /*ZeroInit=*/false);
  };
  auto DiagFn = [&](const std::pair<size_t, double> &E) {
    size_t R = E.first / NumCols, C = E.first % NumCols;
    return std::pair<size_t, double>(C * NumRows + R, E.second);
  };
  return epsMapDiag(NumCols, NumRows, BlockFn, DiagFn);
}

Zonotope Zonotope::reshapedView(size_t Rows, size_t Cols) const {
  assert(Rows * Cols == numVars() && "reshape must preserve element count");
  Zonotope Z = *this;
  Z.NumRows = Rows;
  Z.NumCols = Cols;
  Z.Center = Center.reshaped(Rows, Cols);
  return Z;
}

Zonotope Zonotope::broadcastColTo(size_t Cols) const {
  assert(NumCols == 1 && "broadcastColTo wants a Rows x 1 view");
  size_t R = NumRows;
  auto BlockFn = [&](const Matrix &Blk) {
    return denseRowwisePtr(Blk, 2 * R * Cols, NumRows * Cols,
                           [R, Cols](const double *X, double *O) {
                             for (size_t Rr = 0; Rr < R; ++Rr)
                               for (size_t J = 0; J < Cols; ++J)
                                 O[Rr * Cols + J] = X[Rr];
                           },
                           /*ZeroInit=*/false);
  };
  auto ScatterFn = [&](size_t Var, double Coef, double *Out) {
    double *O = Out + Var * Cols;
    for (size_t J = 0; J < Cols; ++J)
      O[J] = Coef;
  };
  return epsMapScatter(NumRows, Cols, BlockFn, ScatterFn);
}

Zonotope Zonotope::pairwiseDiffExpand() const {
  size_t R = NumRows, C = NumCols;
  auto BlockFn = [&](const Matrix &Blk) {
    return denseRowwisePtr(Blk, 2 * R * C * C, R * C * C,
                           [R, C](const double *X, double *O) {
                             for (size_t Row = 0; Row < R; ++Row) {
                               const double *XR = X + Row * C;
                               double *OR = O + Row * C * C;
                               for (size_t J = 0; J < C; ++J) {
                                 double Sub = XR[J];
                                 double *OJ = OR + J * C;
                                 for (size_t JP = 0; JP < C; ++JP)
                                   OJ[JP] = XR[JP] - Sub;
                               }
                             }
                           },
                           /*ZeroInit=*/false);
  };
  auto ScatterFn = [R, C](size_t Var, double Coef, double *Out) {
    (void)R;
    size_t Row = Var / C, J0 = Var % C;
    // The entry contributes +Coef wherever it appears as the minuend
    // (j' == J0) and -Coef wherever it appears as the subtrahend
    // (j == J0); the overlap cancels to +0.0 exactly as in the dense map.
    for (size_t J = 0; J < C; ++J) {
      Out[(Row * C + J) * C + J0] += Coef;
      Out[(Row * C + J0) * C + J] -= Coef;
    }
  };
  return epsMapScatter(R * C, C, BlockFn, ScatterFn);
}

Zonotope Zonotope::rowSumsTo(size_t Rows, size_t Cols) const {
  assert(Rows * Cols == NumRows && "rowSumsTo wants one input row per output"
                                   " variable");
  size_t C = NumCols, NOut = Rows * Cols;
  auto BlockFn = [&](const Matrix &Blk) {
    return denseRowwisePtr(Blk, 2 * NOut * C, NOut,
                           [C, NOut](const double *X, double *O) {
                             tensor::kernels().RowSums(X, NOut, C, O);
                           },
                           /*ZeroInit=*/false);
  };
  auto DiagFn = [&](const std::pair<size_t, double> &E) {
    return std::pair<size_t, double>(E.first / NumCols, E.second);
  };
  return epsMapDiag(Rows, Cols, BlockFn, DiagFn);
}

Zonotope Zonotope::rowSumBroadcast() const {
  size_t R = NumRows, C = NumCols;
  auto BlockFn = [&](const Matrix &Blk) {
    return denseRowwisePtr(Blk, 2 * R * C, numVars(),
                           [R, C](const double *X, double *O) {
                             // Row sums land in O[0..R-1]; broadcast each
                             // back-to-front so no sum is overwritten
                             // before it is read (Rr * C >= Rr).
                             tensor::kernels().RowSums(X, R, C, O);
                             for (size_t Rr = R; Rr-- > 0;) {
                               double S = O[Rr];
                               double *OR = O + Rr * C;
                               for (size_t J = 0; J < C; ++J)
                                 OR[J] = S;
                             }
                           },
                           /*ZeroInit=*/false);
  };
  auto ScatterFn = [&](size_t Var, double Coef, double *Out) {
    size_t R = Var / NumCols;
    double *O = Out + R * NumCols;
    for (size_t J = 0; J < NumCols; ++J)
      O[J] = Coef;
  };
  return epsMapScatter(NumRows, NumCols, BlockFn, ScatterFn);
}

Zonotope Zonotope::concatCols(const std::vector<Zonotope> &Parts) {
  assert(!Parts.empty() && "concatCols of nothing");
  size_t Rows = Parts.front().NumRows;
  size_t Cols = 0;
  size_t MaxEps = 0;
  for (const Zonotope &P : Parts) {
    assert(P.NumRows == Rows && "concatCols row mismatch");
    assert(P.PhiP == Parts.front().PhiP && P.numPhi() == Parts.front().numPhi() &&
           "concatCols phi mismatch");
    Cols += P.NumCols;
    MaxEps = std::max(MaxEps, P.numEps());
  }
  Zonotope Z;
  Z.NumRows = Rows;
  Z.NumCols = Cols;
  Z.PhiP = Parts.front().PhiP;
  Z.Center = Matrix(Rows, Cols);
  Z.PhiC = Matrix(Parts.front().numPhi(), Rows * Cols);
  size_t C0 = 0;
  for (const Zonotope &P : Parts) {
    Z.Center.setBlock(0, C0, P.Center);
    for (size_t S = 0; S < P.numPhi(); ++S) {
      const double *Src = P.PhiC.rowPtr(S);
      double *Dst = Z.PhiC.rowPtr(S);
      for (size_t R = 0; R < Rows; ++R)
        std::copy(Src + R * P.NumCols, Src + (R + 1) * P.NumCols,
                  Dst + R * Cols + C0);
    }
    C0 += P.NumCols;
  }
  // Eps: walk all parts per symbol. Symbols where every part is zero stay
  // Zero blocks; a symbol touched by exactly one part through a Diag entry
  // stays Diag (with the variable remapped into the concatenated view);
  // everything else becomes a dense row assembled by strided copies.
  std::vector<std::vector<EpsSymRef>> Refs;
  std::vector<size_t> PCols, Off;
  Refs.reserve(Parts.size());
  size_t Offset = 0;
  for (const Zonotope &P : Parts) {
    Refs.push_back(flattenEpsViews(P.epsBlockViews(), P.numEps()));
    PCols.push_back(P.NumCols);
    Off.push_back(Offset);
    Offset += P.NumCols;
  }
  // Classify each symbol, then process maximal runs of each class so
  // dense runs assemble in parallel as one block (disjoint output rows)
  // instead of through a serial per-symbol builder.
  auto Classify = [&](size_t S) -> int {
    size_t NonZero = 0;
    bool HasDense = false;
    for (size_t P = 0; P < Parts.size(); ++P) {
      if (S >= Refs[P].size())
        continue;
      EpsBlockKind K = Refs[P][S].Kind;
      if (K == EpsBlockKind::Zero)
        continue;
      ++NonZero;
      HasDense |= K == EpsBlockKind::Dense;
    }
    if (NonZero == 0)
      return 0;
    return (NonZero == 1 && !HasDense) ? 1 : 2;
  };
  EpsBlockListBuilder Bld(Rows * Cols);
  size_t S = 0;
  while (S < MaxEps) {
    int Cls = Classify(S);
    size_t S1 = S + 1;
    while (S1 < MaxEps && Classify(S1) == Cls)
      ++S1;
    size_t Len = S1 - S;
    if (Cls == 0) {
      Bld.zero(Len);
      S = S1;
      continue;
    }
    if (Cls == 1) {
      for (size_t I = S; I < S1; ++I) {
        for (size_t P = 0; P < Parts.size(); ++P) {
          if (I >= Refs[P].size() || Refs[P][I].Kind != EpsBlockKind::Diag)
            continue;
          const auto &E = Refs[P][I].Entry;
          size_t R = E.first / PCols[P], C = E.first % PCols[P];
          Bld.diag(R * Cols + Off[P] + C, E.second);
          break;
        }
      }
      S = S1;
      continue;
    }
    Matrix Run(Len, Rows * Cols, 0.0);
    parallelFor(0, Len, grainForWork(2 * Rows * Cols),
                [&](size_t R0, size_t R1) {
                  for (size_t I = R0; I < R1; ++I) {
                    double *Dst = Run.rowPtr(I);
                    for (size_t P = 0; P < Parts.size(); ++P) {
                      if (S + I >= Refs[P].size())
                        continue;
                      const EpsSymRef &Ref = Refs[P][S + I];
                      if (Ref.Kind == EpsBlockKind::Dense) {
                        const double *Src = Ref.Row;
                        for (size_t R = 0; R < Rows; ++R)
                          std::copy(Src + R * PCols[P],
                                    Src + (R + 1) * PCols[P],
                                    Dst + R * Cols + Off[P]);
                      } else if (Ref.Kind == EpsBlockKind::Diag) {
                        size_t R = Ref.Entry.first / PCols[P];
                        size_t C = Ref.Entry.first % PCols[P];
                        Dst[R * Cols + Off[P] + C] = Ref.Entry.second;
                      }
                    }
                  }
                });
    Bld.dense(std::move(Run));
    S = S1;
  }
  Z.installEpsBlocks(Bld.finish());
  return Z;
}

Zonotope Zonotope::mapLinear(
    size_t NewRows, size_t NewCols,
    const std::function<Matrix(const Matrix &)> &Fn) const {
  Zonotope Z;
  Z.NumRows = NewRows;
  Z.NumCols = NewCols;
  Z.PhiP = PhiP;
  Z.Center = Fn(Center);
  assert(Z.Center.rows() == NewRows && Z.Center.cols() == NewCols &&
         "mapLinear shape contract violated");
  // One Fn application per coefficient row, each writing a disjoint output
  // row: parallel over symbols. Fn must be pure (all mapLinear callers pass
  // stateless linear maps). The map is opaque, so the eps storage is
  // densified up front (hoisted before the parallel region).
  const Matrix &Eps = epsCoeffs();
  size_t SymGrain = grainForWork(2 * numVars());
  Z.PhiC = Matrix(numPhi(), NewRows * NewCols);
  parallelFor(0, numPhi(), SymGrain, [&](size_t S0, size_t S1) {
    for (size_t S = S0; S < S1; ++S) {
      Matrix Mapped = Fn(PhiC.rowSlice(S, S + 1).reshaped(NumRows, NumCols));
      std::copy(Mapped.data(), Mapped.data() + Mapped.size(),
                Z.PhiC.rowPtr(S));
    }
  });
  Z.EpsDense = Matrix(numEps(), NewRows * NewCols);
  parallelFor(0, numEps(), SymGrain, [&](size_t S0, size_t S1) {
    for (size_t S = S0; S < S1; ++S) {
      Matrix Mapped = Fn(Eps.rowSlice(S, S + 1).reshaped(NumRows, NumCols));
      std::copy(Mapped.data(), Mapped.data() + Mapped.size(),
                Z.EpsDense.rowPtr(S));
    }
  });
  return Z;
}

//===----------------------------------------------------------------------===//
// Noise-symbol plumbing
//===----------------------------------------------------------------------===//

void Zonotope::installCoeffs(Matrix Phi, Matrix Eps) {
  assert(Phi.cols() == numVars() && Eps.cols() == numVars() &&
         "installCoeffs column count mismatch");
  PhiC = std::move(Phi);
  EpsDense = std::move(Eps);
  EpsTail.clear();
  TailSyms = 0;
}

void Zonotope::installCoeffs(Matrix Phi, std::deque<EpsBlock> EpsBlocks) {
  assert(Phi.cols() == numVars() && "installCoeffs column count mismatch");
  PhiC = std::move(Phi);
  installEpsBlocks(std::move(EpsBlocks));
}

void Zonotope::padEpsTo(size_t Count) {
  assert(Count >= numEps() && "cannot shrink eps space by padding");
  size_t Extra = Count - numEps();
  if (Extra == 0)
    return;
  if (!EpsTail.empty() && EpsTail.back().Kind == EpsBlockKind::Zero) {
    EpsTail.back().ZeroSyms += Extra;
  } else {
    EpsBlock B;
    B.Kind = EpsBlockKind::Zero;
    B.ZeroSyms = Extra;
    EpsTail.push_back(std::move(B));
  }
  TailSyms += Extra;
}

void Zonotope::padPhiTo(size_t Count) {
  assert(Count >= numPhi() && "cannot shrink phi space by padding");
  PhiC.appendZeroRows(Count - numPhi());
}

void Zonotope::alignEps(Zonotope &A, Zonotope &B) {
  size_t Count = std::max(A.numEps(), B.numEps());
  A.padEpsTo(Count);
  B.padEpsTo(Count);
}

void Zonotope::padToMatch(const Zonotope &O) {
  if (numPhi() == 0)
    PhiP = O.PhiP;
  assert(PhiP == O.PhiP && "incompatible phi norms");
  if (numPhi() < O.numPhi())
    padPhiTo(O.numPhi());
  if (numEps() < O.numEps())
    padEpsTo(O.numEps());
}

void Zonotope::alignSpaces(Zonotope &A, Zonotope &B) {
  if (A.numPhi() == 0)
    A.PhiP = B.PhiP;
  if (B.numPhi() == 0)
    B.PhiP = A.PhiP;
  assert(A.PhiP == B.PhiP && "incompatible phi norms");
  size_t Count = std::max(A.numPhi(), B.numPhi());
  A.padPhiTo(Count);
  B.padPhiTo(Count);
  alignEps(A, B);
}

size_t Zonotope::appendFreshEps(
    const std::vector<std::pair<size_t, double>> &Entries) {
  // Every non-affine transformer introduces its fresh symbols through
  // here, so this one counter is the global eps-creation tally.
  static support::Counter &EpsCreated =
      support::Metrics::global().counter("zono.eps_symbols.created");
  EpsCreated.add(static_cast<double>(Entries.size()));
  size_t First = numEps();
  if (Entries.empty())
    return First;
  if (SymbolProvenance *P = SymbolProvenance::active())
    P->noteFresh(First, Entries.size());
#ifndef NDEBUG
  for (const auto &E : Entries)
    assert(E.first < numVars() && "fresh eps var out of range");
#endif
  if (!EpsTail.empty() && EpsTail.back().Kind == EpsBlockKind::Diag) {
    auto &Back = EpsTail.back().Entries;
    Back.insert(Back.end(), Entries.begin(), Entries.end());
  } else {
    EpsBlock B;
    B.Kind = EpsBlockKind::Diag;
    B.Entries = Entries;
    EpsTail.push_back(std::move(B));
  }
  TailSyms += Entries.size();
  return First;
}

void Zonotope::scalePerVarInPlace(const Matrix &Lambda) {
  assert(Lambda.rows() == NumRows && Lambda.cols() == NumCols &&
         "Lambda must have the view's shape");
  size_t N = numVars();
  const tensor::Kernels &K = tensor::kernels();
  K.RowScale(Lambda.data(), Center.data(), 1, N, N);
  size_t SymGrain = grainForWork(N);
  parallelFor(0, numPhi(), SymGrain, [&](size_t S0, size_t S1) {
    tensor::kernels().RowScale(Lambda.data(), PhiC.rowPtr(S0), S1 - S0, N, N);
  });
  auto ScaleDense = [&](Matrix &Blk) {
    parallelFor(0, Blk.rows(), SymGrain, [&](size_t S0, size_t S1) {
      tensor::kernels().RowScale(Lambda.data(), Blk.rowPtr(S0), S1 - S0, N,
                                 N);
    });
  };
  ScaleDense(EpsDense);
  for (EpsBlock &B : EpsTail) {
    if (B.Kind == EpsBlockKind::Dense)
      ScaleDense(B.D);
    else if (B.Kind == EpsBlockKind::Diag)
      for (auto &E : B.Entries)
        E.second *= Lambda.flat(E.first);
  }
}

void Zonotope::shiftCenterInPlace(const Matrix &Mu) {
  Center += Mu;
}

void Zonotope::rewriteEpsSymbol(size_t Sym, double Mid, double Rad) {
  if (Sym >= numEps())
    return; // This tensor predates the symbol; nothing to rewrite.
  if (Sym < EpsDense.rows()) {
    double *Row = EpsDense.rowPtr(Sym);
    for (size_t V = 0; V < numVars(); ++V) {
      Center.flat(V) += Mid * Row[V];
      Row[V] *= Rad;
    }
    return;
  }
  size_t S = Sym - EpsDense.rows();
  for (EpsBlock &B : EpsTail) {
    size_t Syms = B.syms();
    if (S >= Syms) {
      S -= Syms;
      continue;
    }
    switch (B.Kind) {
    case EpsBlockKind::Zero:
      break; // All-zero coefficient row: the rewrite is a no-op.
    case EpsBlockKind::Diag: {
      auto &E = B.Entries[S];
      Center.flat(E.first) += Mid * E.second;
      E.second *= Rad;
      break;
    }
    case EpsBlockKind::Dense: {
      double *Row = B.D.rowPtr(S);
      for (size_t V = 0; V < numVars(); ++V) {
        Center.flat(V) += Mid * Row[V];
        Row[V] *= Rad;
      }
      break;
    }
    }
    return;
  }
}

//===----------------------------------------------------------------------===//
// Sampling, evaluation, validation
//===----------------------------------------------------------------------===//

Matrix Zonotope::sample(support::Rng &Rng, bool OnBoundary) const {
  std::vector<double> PhiVals, EpsVals;
  sampleNoise(Rng, OnBoundary, PhiVals, EpsVals);
  return evaluate(PhiVals, EpsVals);
}

void Zonotope::sampleNoise(support::Rng &Rng, bool OnBoundary,
                           std::vector<double> &PhiVals,
                           std::vector<double> &EpsVals) const {
  PhiVals.assign(numPhi(), 0.0);
  EpsVals.assign(numEps(), 0.0);
  for (double &V : PhiVals)
    V = Rng.uniform(-1.0, 1.0);
  if (!PhiVals.empty()) {
    // Scale into (or onto) the unit lp ball.
    double Norm = 0.0;
    if (PhiP == 1.0) {
      for (double V : PhiVals)
        Norm += std::fabs(V);
    } else if (PhiP == 2.0) {
      for (double V : PhiVals)
        Norm += V * V;
      Norm = std::sqrt(Norm);
    } else {
      for (double V : PhiVals)
        Norm = std::max(Norm, std::fabs(V));
    }
    double Scale = OnBoundary ? (Norm > 0 ? 1.0 / Norm : 0.0)
                              : (Norm > 1.0 ? 1.0 / Norm : 1.0);
    for (double &V : PhiVals)
      V *= Scale;
  }
  for (double &V : EpsVals)
    V = OnBoundary ? Rng.sign() : Rng.uniform(-1.0, 1.0);
}

Matrix Zonotope::evaluate(const std::vector<double> &PhiVals,
                          const std::vector<double> &EpsVals) const {
  assert(PhiVals.size() == numPhi() && EpsVals.size() == numEps() &&
         "noise vector arity mismatch");
  Matrix Out = Center;
  for (size_t S = 0; S < numPhi(); ++S) {
    const double *Row = PhiC.rowPtr(S);
    double V = PhiVals[S];
    if (V == 0.0)
      continue;
    for (size_t I = 0; I < numVars(); ++I)
      Out.flat(I) += V * Row[I];
  }
  for (const EpsBlockView &BV : epsBlockViews()) {
    switch (BV.Kind) {
    case EpsBlockKind::Zero:
      break;
    case EpsBlockKind::Diag:
      for (size_t I = 0; I < BV.Syms; ++I) {
        double V = EpsVals[BV.Start + I];
        if (V == 0.0)
          continue;
        Out.flat(BV.Entries[I].first) += V * BV.Entries[I].second;
      }
      break;
    case EpsBlockKind::Dense:
      for (size_t I = 0; I < BV.Syms; ++I) {
        double V = EpsVals[BV.Start + I];
        if (V == 0.0)
          continue;
        const double *Row = BV.Dense->rowPtr(I);
        for (size_t J = 0; J < numVars(); ++J)
          Out.flat(J) += V * Row[J];
      }
      break;
    }
  }
  return Out;
}

bool Zonotope::validate(std::string *Why) const {
  auto Fail = [&](const std::string &Msg) {
    if (Why)
      *Why = Msg;
    return false;
  };
  if (Center.rows() != NumRows || Center.cols() != NumCols)
    return Fail("center shape does not match the view");
  if (!PhiC.empty() && PhiC.cols() != numVars())
    return Fail("phi coefficient matrix has " + std::to_string(PhiC.cols()) +
                " columns for " + std::to_string(numVars()) + " variables");
  if (!EpsDense.empty() && EpsDense.cols() != numVars())
    return Fail("eps coefficient matrix has " +
                std::to_string(EpsDense.cols()) + " columns for " +
                std::to_string(numVars()) + " variables");
  if (numPhi() > 0 && !(PhiP >= 1.0 || PhiP == Matrix::InfNorm))
    return Fail("phi norm exponent " + std::to_string(PhiP) +
                " is not >= 1 or InfNorm");
  auto Finite = [](const Matrix &M) {
    const double *D = M.data();
    for (size_t I = 0, N = M.size(); I < N; ++I)
      if (!std::isfinite(D[I]))
        return false;
    return true;
  };
  if (!Finite(Center))
    return Fail("non-finite center entry");
  if (!Finite(PhiC))
    return Fail("non-finite phi coefficient");
  if (!Finite(EpsDense))
    return Fail("non-finite eps coefficient");
  size_t Counted = 0;
  for (const EpsBlock &B : EpsTail) {
    Counted += B.syms();
    switch (B.Kind) {
    case EpsBlockKind::Zero:
      break;
    case EpsBlockKind::Diag:
      for (const auto &E : B.Entries) {
        if (!std::isfinite(E.second))
          return Fail("non-finite eps coefficient");
        if (E.second != 0.0 && E.first >= numVars())
          return Fail("eps block entry addresses variable " +
                      std::to_string(E.first) + " of " +
                      std::to_string(numVars()));
      }
      break;
    case EpsBlockKind::Dense:
      if (B.D.cols() != numVars())
        return Fail("eps coefficient matrix has " +
                    std::to_string(B.D.cols()) + " columns for " +
                    std::to_string(numVars()) + " variables");
      if (!Finite(B.D))
        return Fail("non-finite eps coefficient");
      break;
    }
  }
  if (Counted != TailSyms)
    return Fail("eps block symbol count " + std::to_string(Counted) +
                " does not match cached tail size " +
                std::to_string(TailSyms));
  return true;
}
