//===- zono/Elementwise.h - Elementwise abstract transformers --*- C++ -*-===//
//
// Part of deept-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Minimal-area elementwise abstract transformers of the Multi-norm
/// Zonotope domain (paper Sections 4.3-4.6 and Theorem 3). Each maps a
/// zonotope variable x with concrete bounds [l, u] to
///
///   y = Lambda * x + Mu + BetaNew * eps_new,   eps_new in [-1, 1],
///
/// where (Lambda, Mu, BetaNew) depend only on [l, u] and the function.
/// ReLU and tanh follow Singh et al. 2018; exponential and reciprocal
/// follow the minimal-area construction of Mueller et al. 2021 with the
/// positivity-preserving t_opt choice; sqrt (needed for standard layer
/// normalization, Section 6.6) uses the analogous concave construction.
///
//===----------------------------------------------------------------------===//

#ifndef DEEPT_ZONO_ELEMENTWISE_H
#define DEEPT_ZONO_ELEMENTWISE_H

#include "zono/Zonotope.h"

namespace deept {
namespace zono {

/// Coefficients of one variable's linear relaxation y = Lambda x + Mu +
/// BetaNew eps_new. BetaNew is always >= 0.
struct LinearPiece {
  double Lambda = 0.0;
  double Mu = 0.0;
  double BetaNew = 0.0;
};

/// Small positive constant keeping exp/reciprocal outputs strictly
/// positive (the paper's epsilon, Section 4.5/4.6).
inline constexpr double ElementwiseEpsilonDefault = 0.01;

/// Relaxation pieces for a single variable on [L, U].
LinearPiece reluPiece(double L, double U);
LinearPiece tanhPiece(double L, double U);
LinearPiece expPiece(double L, double U,
                     double Eps = ElementwiseEpsilonDefault);
/// Requires L > 0 (callers of reciprocal see softmax denominators >= 1).
LinearPiece recipPiece(double L, double U,
                       double Eps = ElementwiseEpsilonDefault);
/// Requires L > 0.
LinearPiece sqrtPiece(double L, double U);

/// Applies a per-variable relaxation to a whole zonotope. \p PieceFn maps
/// (L, U) of each variable to its LinearPiece; variables with
/// BetaNew != 0 each get one fresh eps symbol.
Zonotope
applyElementwise(const Zonotope &Z,
                 const std::function<LinearPiece(double, double)> &PieceFn);

/// ReLU / tanh abstract transformers (paper 4.3, 4.4).
Zonotope applyRelu(const Zonotope &Z);
Zonotope applyTanh(const Zonotope &Z);

/// Exponential / reciprocal / sqrt abstract transformers (paper 4.5, 4.6).
/// These take the positivity epsilon explicitly.
Zonotope applyExp(const Zonotope &Z,
                  double Eps = ElementwiseEpsilonDefault);
Zonotope applyRecip(const Zonotope &Z,
                    double Eps = ElementwiseEpsilonDefault);
Zonotope applySqrt(const Zonotope &Z);

} // namespace zono
} // namespace deept

#endif // DEEPT_ZONO_ELEMENTWISE_H
