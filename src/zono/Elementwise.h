//===- zono/Elementwise.h - Elementwise abstract transformers --*- C++ -*-===//
//
// Part of deept-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Minimal-area elementwise abstract transformers of the Multi-norm
/// Zonotope domain (paper Sections 4.3-4.6 and Theorem 3). Each maps a
/// zonotope variable x with concrete bounds [l, u] to
///
///   y = Lambda * x + Mu + BetaNew * eps_new,   eps_new in [-1, 1],
///
/// where (Lambda, Mu, BetaNew) depend only on [l, u] and the function.
/// ReLU and tanh follow Singh et al. 2018; exponential and reciprocal
/// follow the minimal-area construction of Mueller et al. 2021 with the
/// positivity-preserving t_opt choice; sqrt (needed for standard layer
/// normalization, Section 6.6) uses the analogous concave construction.
///
//===----------------------------------------------------------------------===//

#ifndef DEEPT_ZONO_ELEMENTWISE_H
#define DEEPT_ZONO_ELEMENTWISE_H

#include "support/Parallel.h"
#include "support/Trace.h"
#include "zono/Zonotope.h"

#include <algorithm>
#include <cmath>
#include <utility>
#include <vector>

namespace deept {
namespace zono {

/// Coefficients of one variable's linear relaxation y = Lambda x + Mu +
/// BetaNew eps_new. BetaNew is always >= 0.
struct LinearPiece {
  double Lambda = 0.0;
  double Mu = 0.0;
  double BetaNew = 0.0;
};

/// Small positive constant keeping exp/reciprocal outputs strictly
/// positive (the paper's epsilon, Section 4.5/4.6).
inline constexpr double ElementwiseEpsilonDefault = 0.01;

/// Relaxation pieces for a single variable on [L, U].
LinearPiece reluPiece(double L, double U);
LinearPiece tanhPiece(double L, double U);
LinearPiece expPiece(double L, double U,
                     double Eps = ElementwiseEpsilonDefault);
/// Requires L > 0 (callers of reciprocal see softmax denominators >= 1).
LinearPiece recipPiece(double L, double U,
                       double Eps = ElementwiseEpsilonDefault);
/// Requires L > 0.
LinearPiece sqrtPiece(double L, double U);

/// Templated core of applyElementwise: \p PieceFn maps (L, U) of each
/// variable to its LinearPiece; variables with BetaNew != 0 each get one
/// fresh eps symbol. The functor is inlined (no std::function) and the
/// per-variable loop runs on the thread pool, so PieceFn must be pure.
/// Fresh symbols are collected per chunk and merged in ascending chunk
/// order, reproducing the serial ascending-variable order exactly.
/// \p Z is a forwarding reference: rvalue inputs donate their coefficient
/// storage to the result instead of being deep-copied.
template <typename ZT, typename PieceFnT>
Zonotope applyElementwiseFn(ZT &&Z, PieceFnT &&PieceFn) {
  DEEPT_TRACE_SPAN("zono.elementwise");
  Matrix Lo, Hi;
  Z.bounds(Lo, Hi);
  Matrix Lambda(Z.rows(), Z.cols());
  Matrix Mu(Z.rows(), Z.cols());
  // When the abstraction has exploded (overflowed coefficients during a
  // hopeless certification probe), bounds can be non-finite or inverted;
  // sanitize them to a huge sound interval so the pieces stay finite.
  constexpr double HugeBound = 1e100;
  size_t NumVars = Z.numVars();
  size_t Grain = support::grainForWork(64);
  size_t NumChunks = NumVars == 0 ? 0 : (NumVars + Grain - 1) / Grain;
  std::vector<std::vector<std::pair<size_t, double>>> ChunkFresh(NumChunks);
  support::parallelFor(0, NumVars, Grain, [&](size_t V0, size_t V1) {
    auto &Fresh = ChunkFresh[V0 / Grain];
    for (size_t V = V0; V < V1; ++V) {
      double L = Lo.flat(V), U = Hi.flat(V);
      if (std::isnan(L) || std::isnan(U) || L > U) {
        L = -HugeBound;
        U = HugeBound;
      }
      L = std::clamp(L, -HugeBound, HugeBound);
      U = std::clamp(U, L, HugeBound);
      LinearPiece P = PieceFn(L, U);
      Lambda.flat(V) = P.Lambda;
      Mu.flat(V) = P.Mu;
      if (P.BetaNew != 0.0)
        Fresh.emplace_back(V, P.BetaNew);
    }
  });
  std::vector<std::pair<size_t, double>> Fresh;
  for (auto &C : ChunkFresh)
    Fresh.insert(Fresh.end(), C.begin(), C.end());
  Zonotope Out = std::forward<ZT>(Z);
  Out.scalePerVarInPlace(Lambda);
  Out.shiftCenterInPlace(Mu);
  Out.appendFreshEps(Fresh);
  return Out;
}

/// std::function entry point kept for callers that store the relaxation
/// (it simply forwards to the template).
Zonotope
applyElementwise(const Zonotope &Z,
                 const std::function<LinearPiece(double, double)> &PieceFn);

/// ReLU / tanh abstract transformers (paper 4.3, 4.4). The rvalue
/// overloads reuse the argument's coefficient storage.
Zonotope applyRelu(const Zonotope &Z);
Zonotope applyRelu(Zonotope &&Z);
Zonotope applyTanh(const Zonotope &Z);
Zonotope applyTanh(Zonotope &&Z);

/// Exponential / reciprocal / sqrt abstract transformers (paper 4.5, 4.6).
/// These take the positivity epsilon explicitly.
Zonotope applyExp(const Zonotope &Z,
                  double Eps = ElementwiseEpsilonDefault);
Zonotope applyExp(Zonotope &&Z, double Eps = ElementwiseEpsilonDefault);
Zonotope applyRecip(const Zonotope &Z,
                    double Eps = ElementwiseEpsilonDefault);
Zonotope applyRecip(Zonotope &&Z, double Eps = ElementwiseEpsilonDefault);
Zonotope applySqrt(const Zonotope &Z);
Zonotope applySqrt(Zonotope &&Z);

} // namespace zono
} // namespace deept

#endif // DEEPT_ZONO_ELEMENTWISE_H
