//===- zono/Refinement.h - Softmax sum zonotope refinement -----*- C++ -*-===//
//
// Part of deept-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The softmax sum zonotope refinement of Section 5.3: softmax outputs
/// form a probability distribution, sum_j y_j = 1, but the abstract
/// softmax output admits instantiations violating it. Using the Zonotope
/// equality-constraint machinery of Ghorbal et al. 2010:
///
///  1. the first variable of each softmax row is refined by adding the
///     optimal multiple of the constraint residual D = 1 - sum_j y_j
///     (the multiple minimises the total coefficient mass, the
///     weighted-median problem of Appendix A.1 solved by deterministic
///     selection in expected O(E), skipping candidates that would
///     eliminate an lp noise symbol),
///  2. the remaining variables are refined by substituting the eps symbol
///     with the largest constraint coefficient,
///  3. the constraint is solved for each eps symbol to tighten its range
///     inside [-1, 1]; tightened symbols are immediately rewritten as
///     mid + rad * eps_new in the refined zonotope *and* in all co-live
///     zonotopes sharing the symbol space (the paper's pre-processing
///     before noise reduction), so the global eps in [-1, 1] invariant is
///     restored.
///
//===----------------------------------------------------------------------===//

#ifndef DEEPT_ZONO_REFINEMENT_H
#define DEEPT_ZONO_REFINEMENT_H

#include "zono/Zonotope.h"

namespace deept {
namespace zono {

struct RefinementOptions {
  /// Coefficients below this threshold are treated as zero.
  double Tol = 1e-9;
  /// Substitution factors larger than this are skipped to avoid blowing
  /// up coefficients when the pivot symbol is nearly absent.
  double MaxFactor = 1e6;
};

struct RefinementStats {
  size_t RowsRefined = 0;
  size_t SymbolsTightened = 0;
};

namespace detail {

/// One breakpoint of the piecewise-linear objective sum_s w_s |t - p_s|.
struct Breakpoint {
  double Pos;
  double Weight;
  bool FromPhi;
};

/// Picks the mass-minimising multiple t for the breakpoint set: the
/// weighted median of the positions, skipping candidates that would
/// eliminate an lp (phi) noise symbol by falling back to the best of the
/// nearest non-phi neighbours and t = 0. Deterministic selection in
/// expected O(n); permutes \p Points. Exposed for tests and micro-benches
/// (the production caller is minimiseCoefficientMass in Refinement.cpp).
double selectBreakpoint(std::vector<Breakpoint> &Points);

/// Reusable buffers for one constraint form D = 1 - sum_j y_j.
struct ConstraintForm {
  double C = 0.0;
  std::vector<double> Alpha; // phi coefficients
  std::vector<double> Beta;  // eps coefficients
};

} // namespace detail

/// Scratch reused across refineSoftmaxSum calls. The refinement loop is
/// allocation-heavy (two constraint forms plus a breakpoint vector sized
/// by the live symbol count, rebuilt per variable), so a driver issuing
/// hundreds of refine calls should own one of these and pass it in; the
/// vectors keep their high-water capacity between calls.
struct RefinementScratch {
  detail::ConstraintForm D, DR;
  std::vector<detail::Breakpoint> Points;
  tensor::Matrix AlphaScratch;
};

/// Refines every row of the softmax output \p P (R x C, each row summing
/// to 1) in place. \p CoLive lists other zonotopes sharing P's eps space;
/// symbol-range rewrites from step 3 are applied to them as well. P itself
/// must not appear in CoLive. \p Scratch, when non-null, supplies the
/// reusable buffers (a local set is used otherwise).
RefinementStats
refineSoftmaxSum(Zonotope &P, const std::vector<Zonotope *> &CoLive,
                 const RefinementOptions &Opts = RefinementOptions(),
                 RefinementScratch *Scratch = nullptr);

} // namespace zono
} // namespace deept

#endif // DEEPT_ZONO_REFINEMENT_H
