//===- zono/Refinement.h - Softmax sum zonotope refinement -----*- C++ -*-===//
//
// Part of deept-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The softmax sum zonotope refinement of Section 5.3: softmax outputs
/// form a probability distribution, sum_j y_j = 1, but the abstract
/// softmax output admits instantiations violating it. Using the Zonotope
/// equality-constraint machinery of Ghorbal et al. 2010:
///
///  1. the first variable of each softmax row is refined by adding the
///     optimal multiple of the constraint residual D = 1 - sum_j y_j
///     (the multiple minimises the total coefficient mass, solved by the
///     O(E log E) weighted-median method of Appendix A.1, skipping
///     candidates that would eliminate an lp noise symbol),
///  2. the remaining variables are refined by substituting the eps symbol
///     with the largest constraint coefficient,
///  3. the constraint is solved for each eps symbol to tighten its range
///     inside [-1, 1]; tightened symbols are immediately rewritten as
///     mid + rad * eps_new in the refined zonotope *and* in all co-live
///     zonotopes sharing the symbol space (the paper's pre-processing
///     before noise reduction), so the global eps in [-1, 1] invariant is
///     restored.
///
//===----------------------------------------------------------------------===//

#ifndef DEEPT_ZONO_REFINEMENT_H
#define DEEPT_ZONO_REFINEMENT_H

#include "zono/Zonotope.h"

namespace deept {
namespace zono {

struct RefinementOptions {
  /// Coefficients below this threshold are treated as zero.
  double Tol = 1e-9;
  /// Substitution factors larger than this are skipped to avoid blowing
  /// up coefficients when the pivot symbol is nearly absent.
  double MaxFactor = 1e6;
};

struct RefinementStats {
  size_t RowsRefined = 0;
  size_t SymbolsTightened = 0;
};

/// Refines every row of the softmax output \p P (R x C, each row summing
/// to 1) in place. \p CoLive lists other zonotopes sharing P's eps space;
/// symbol-range rewrites from step 3 are applied to them as well. P itself
/// must not appear in CoLive.
RefinementStats
refineSoftmaxSum(Zonotope &P, const std::vector<Zonotope *> &CoLive,
                 const RefinementOptions &Opts = RefinementOptions());

} // namespace zono
} // namespace deept

#endif // DEEPT_ZONO_REFINEMENT_H
