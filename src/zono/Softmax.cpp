//===- zono/Softmax.cpp ---------------------------------------*- C++ -*-===//

#include "zono/Softmax.h"

#include "support/Metrics.h"
#include "support/Trace.h"
#include "zono/Elementwise.h"

#include <cassert>

using namespace deept;
using namespace deept::zono;

namespace {

/// Stable rewrite: sigma[r][j] = 1 / sum_{j'} exp(z[r][j'] - z[r][j]).
Zonotope softmaxStable(const Zonotope &Z, const SoftmaxOptions &Opts) {
  size_t R = Z.rows(), C = Z.cols();
  // Differences tensor: var ((r, j), j') = z[r][j'] - z[r][j]. This is a
  // linear map of the score variables, so it is exact (Theorem 2) and the
  // noise symbols shared between z[r][j'] and z[r][j] cancel.
  Zonotope Dif = Z.mapLinearPublic(R * C, C, [R, C](const Matrix &X) {
    Matrix Out(R * C, C);
    for (size_t Row = 0; Row < R; ++Row)
      for (size_t J = 0; J < C; ++J)
        for (size_t JP = 0; JP < C; ++JP)
          Out.at(Row * C + J, JP) = X.at(Row, JP) - X.at(Row, J);
    return Out;
  });
  Zonotope Exped = applyExp(Dif, Opts.ElementwiseEps);
  // Row sums back to an R x C tensor of softmax denominators.
  Zonotope Denom =
      Exped.mapLinearPublic(R, C, [R, C](const Matrix &X) {
        Matrix Out(R, C);
        for (size_t Row = 0; Row < R; ++Row)
          for (size_t J = 0; J < C; ++J) {
            double S = 0.0;
            for (size_t JP = 0; JP < C; ++JP)
              S += X.at(Row * C + J, JP);
            Out.at(Row, J) = S;
          }
        return Out;
      });
  return applyRecip(Denom, Opts.ElementwiseEps);
}

/// Naive composition used by the CROWN baselines (Section 5.4):
/// exp -> row sum -> reciprocal -> multiplication.
Zonotope softmaxNaive(const Zonotope &Z, const SoftmaxOptions &Opts) {
  size_t R = Z.rows(), C = Z.cols();
  Zonotope Exped = applyExp(Z, Opts.ElementwiseEps);
  // Row sums broadcast back to shape R x C.
  Zonotope SumBcast = Exped.mapLinearPublic(R, C, [R, C](const Matrix &X) {
    Matrix Out(R, C);
    for (size_t Row = 0; Row < R; ++Row) {
      double S = 0.0;
      for (size_t J = 0; J < C; ++J)
        S += X.at(Row, J);
      for (size_t J = 0; J < C; ++J)
        Out.at(Row, J) = S;
    }
    return Out;
  });
  Zonotope Recip = applyRecip(SumBcast, Opts.ElementwiseEps);
  return mulElementwise(Exped, Recip, Opts.Mul);
}

} // namespace

Zonotope deept::zono::applySoftmax(const Zonotope &Scores,
                                   const SoftmaxOptions &Opts) {
  DEEPT_TRACE_SPAN("zono.softmax");
  static support::Counter &StableCalls =
      support::Metrics::global().counter("zono.softmax.stable.calls");
  static support::Counter &NaiveCalls =
      support::Metrics::global().counter("zono.softmax.naive.calls");
  (Opts.StableRewrite ? StableCalls : NaiveCalls).add(1);
  assert(Scores.cols() > 0 && "softmax over empty rows");
  return Opts.StableRewrite ? softmaxStable(Scores, Opts)
                            : softmaxNaive(Scores, Opts);
}
