//===- zono/Softmax.cpp ---------------------------------------*- C++ -*-===//

#include "zono/Softmax.h"

#include "support/Metrics.h"
#include "support/Trace.h"
#include "zono/Elementwise.h"

#include <cassert>

using namespace deept;
using namespace deept::zono;

namespace {

/// Stable rewrite: sigma[r][j] = 1 / sum_{j'} exp(z[r][j'] - z[r][j]).
Zonotope softmaxStable(const Zonotope &Z, const SoftmaxOptions &Opts) {
  size_t R = Z.rows(), C = Z.cols();
  // Differences tensor: var ((r, j), j') = z[r][j'] - z[r][j]. This is a
  // linear map of the score variables, so it is exact (Theorem 2) and the
  // noise symbols shared between z[r][j'] and z[r][j] cancel. The
  // structure-preserving transformer keeps Diag eps blocks Diag-free of
  // densification (one entry fans out to O(C) outputs).
  Zonotope Exped = applyExp(Z.pairwiseDiffExpand(), Opts.ElementwiseEps);
  // Row sums back to an R x C tensor of softmax denominators; Diag blocks
  // stay Diag (each input row feeds exactly one output variable).
  return applyRecip(Exped.rowSumsTo(R, C), Opts.ElementwiseEps);
}

/// Naive composition used by the CROWN baselines (Section 5.4):
/// exp -> row sum -> reciprocal -> multiplication.
Zonotope softmaxNaive(const Zonotope &Z, const SoftmaxOptions &Opts) {
  Zonotope Exped = applyExp(Z, Opts.ElementwiseEps);
  // Row sums broadcast back to shape R x C.
  Zonotope Recip = applyRecip(Exped.rowSumBroadcast(), Opts.ElementwiseEps);
  return mulElementwise(Exped, Recip, Opts.Mul);
}

} // namespace

Zonotope deept::zono::applySoftmax(const Zonotope &Scores,
                                   const SoftmaxOptions &Opts) {
  DEEPT_TRACE_SPAN("zono.softmax");
  static support::Counter &StableCalls =
      support::Metrics::global().counter("zono.softmax.stable.calls");
  static support::Counter &NaiveCalls =
      support::Metrics::global().counter("zono.softmax.naive.calls");
  (Opts.StableRewrite ? StableCalls : NaiveCalls).add(1);
  assert(Scores.cols() > 0 && "softmax over empty rows");
  return Opts.StableRewrite ? softmaxStable(Scores, Opts)
                            : softmaxNaive(Scores, Opts);
}
