//===- zono/Provenance.cpp ------------------------------------*- C++ -*-===//

#include "zono/Provenance.h"

#include <cassert>

using namespace deept;
using namespace deept::zono;

thread_local SymbolProvenance *SymbolProvenance::Active = nullptr;

SymbolProvenance::SymbolProvenance() {
  Names.push_back("input");
  NameIds["input"] = 0;
}

SymbolProvenance *SymbolProvenance::active() { return Active; }

uint32_t SymbolProvenance::pushGroup(const std::string &Name) {
  uint32_t Prev = CurGroup;
  auto [It, Inserted] =
      NameIds.emplace(Name, static_cast<uint32_t>(Names.size()));
  if (Inserted)
    Names.push_back(Name);
  CurGroup = It->second;
  return Prev;
}

void SymbolProvenance::noteFresh(size_t First, size_t Count) {
  if (Count == 0)
    return;
  if (Tags.size() < First + Count)
    Tags.resize(First + Count, 0); // gap indices default to "input"
  for (size_t I = First; I < First + Count; ++I)
    Tags[I] = CurGroup;
}

void SymbolProvenance::noteReduction(const std::vector<size_t> &KeptOld) {
  std::vector<uint32_t> NewTags(KeptOld.size(), 0);
  for (size_t I = 0; I < KeptOld.size(); ++I)
    if (KeptOld[I] < Tags.size())
      NewTags[I] = Tags[KeptOld[I]];
  Tags = std::move(NewTags);
}

const std::string &SymbolProvenance::groupOf(size_t Sym) const {
  uint32_t Id = Sym < Tags.size() ? Tags[Sym] : 0;
  assert(Id < Names.size() && "corrupt provenance tag");
  return Names[Id];
}
