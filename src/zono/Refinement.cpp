//===- zono/Refinement.cpp ------------------------------------*- C++ -*-===//

#include "zono/Refinement.h"

#include "support/Metrics.h"
#include "support/Trace.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cmath>

using namespace deept;
using namespace deept::zono;
using zono::detail::Breakpoint;
using zono::detail::ConstraintForm;
using tensor::dualExponent;

namespace {

/// Fills \p D in place (reusing its vectors' capacity -- this runs twice
/// per refined row, so the allocations are worth hoisting).
void buildConstraint(const Zonotope &P, size_t Row, ConstraintForm &D) {
  size_t C = P.cols();
  D.C = 1.0;
  for (size_t J = 0; J < C; ++J)
    D.C -= P.center().at(Row, J);
  D.Alpha.assign(P.numPhi(), 0.0);
  for (size_t S = 0; S < P.numPhi(); ++S) {
    const double *CoefRow = P.phiCoeffs().rowPtr(S);
    for (size_t J = 0; J < C; ++J)
      D.Alpha[S] -= CoefRow[Row * C + J];
  }
  D.Beta.assign(P.numEps(), 0.0);
  for (size_t S = 0; S < P.numEps(); ++S) {
    const double *CoefRow = P.epsCoeffs().rowPtr(S);
    for (size_t J = 0; J < C; ++J)
      D.Beta[S] -= CoefRow[Row * C + J];
  }
}

/// Adds T * D to variable \p Var of \p P (an exact rewrite on the
/// constraint set, since D = 0 there).
void addConstraintMultiple(Zonotope &P, size_t Var, double T,
                           const ConstraintForm &D) {
  if (T == 0.0)
    return;
  P.center().flat(Var) += T * D.C;
  for (size_t S = 0; S < P.numPhi(); ++S)
    P.phiCoeffs().at(S, Var) += T * D.Alpha[S];
  for (size_t S = 0; S < P.numEps(); ++S)
    P.epsCoeffs().at(S, Var) += T * D.Beta[S];
}

double objectiveAt(const std::vector<Breakpoint> &Points, double T) {
  double Acc = 0.0;
  for (const Breakpoint &B : Points)
    Acc += B.Weight * std::fabs(T - B.Pos);
  return Acc;
}

/// Finds the smallest breakpoint position W such that the cumulative
/// weight of positions <= W reaches \p Target, by deterministic
/// quickselect (median-of-3 pivot, three-way partition by position).
/// Expected O(n); permutes [Lo, Hi).
double weightedMedianPos(std::vector<Breakpoint> &Points, size_t Lo,
                         size_t Hi, double Target, double Below) {
  while (Hi - Lo > 16) {
    double A = Points[Lo].Pos;
    double B = Points[Lo + (Hi - Lo) / 2].Pos;
    double C = Points[Hi - 1].Pos;
    double Pivot = std::max(std::min(A, B), std::min(std::max(A, B), C));
    // Dutch-flag partition: [Lo, Lt) < Pivot, [Lt, I) == Pivot,
    // (Gt, Hi) > Pivot.
    size_t Lt = Lo, I = Lo, Gt = Hi;
    double WLess = 0.0, WEq = 0.0;
    while (I < Gt) {
      double P = Points[I].Pos;
      if (P < Pivot) {
        WLess += Points[I].Weight;
        std::swap(Points[Lt++], Points[I++]);
      } else if (P > Pivot) {
        std::swap(Points[I], Points[--Gt]);
      } else {
        WEq += Points[I++].Weight;
      }
    }
    if (Below + WLess >= Target) {
      Hi = Lt;
    } else if (Below + WLess + WEq >= Target) {
      return Pivot;
    } else {
      Below += WLess + WEq;
      Lo = Gt;
    }
  }
  std::sort(Points.begin() + Lo, Points.begin() + Hi,
            [](const Breakpoint &A, const Breakpoint &B) {
              return A.Pos < B.Pos;
            });
  double Cum = Below;
  for (size_t I = Lo; I < Hi; ++I) {
    Cum += Points[I].Weight;
    if (Cum >= Target)
      return Points[I].Pos;
  }
  return Points[Hi - 1].Pos;
}

} // namespace

/// Selects the mass-minimising multiple for a breakpoint set: the
/// weighted median of the positions (the smallest position where the
/// ascending cumulative weight reaches half the total -- the same
/// breakpoint the previous full-sort scan chose), found by selection
/// instead of an O(n log n) sort. Candidates that would eliminate an lp
/// (phi) noise symbol are skipped by moving to the best of the nearest
/// non-phi neighbours on either side and t = 0.
double deept::zono::detail::selectBreakpoint(std::vector<Breakpoint> &Points) {
  if (Points.empty())
    return 0.0;
  double Total = 0.0;
  for (const Breakpoint &B : Points)
    Total += B.Weight;
  double W = weightedMedianPos(Points, 0, Points.size(), 0.5 * Total, 0.0);
  // The median position is a valid answer unless every breakpoint there
  // came from a phi symbol (eliminating one would change the lp space).
  bool PhiOnlyAtW = true;
  bool HaveLower = false, HaveUpper = false;
  double Lower = 0.0, Upper = 0.0;
  for (const Breakpoint &B : Points) {
    if (B.FromPhi) {
      if (B.Pos == W)
        continue;
    } else if (B.Pos == W) {
      PhiOnlyAtW = false;
      break;
    }
    if (B.FromPhi)
      continue;
    if (B.Pos < W) {
      if (!HaveLower || B.Pos > Lower)
        Lower = B.Pos;
      HaveLower = true;
    } else {
      if (!HaveUpper || B.Pos < Upper)
        Upper = B.Pos;
      HaveUpper = true;
    }
  }
  if (!PhiOnlyAtW)
    return W;
  // Skip phi-eliminating candidates: inspect the nearest non-phi
  // breakpoints in either direction and keep the better one.
  double Best = 0.0;
  double BestVal = objectiveAt(Points, 0.0);
  if (HaveLower) {
    double Val = objectiveAt(Points, Lower);
    if (Val < BestVal) {
      BestVal = Val;
      Best = Lower;
    }
  }
  if (HaveUpper) {
    double Val = objectiveAt(Points, Upper);
    if (Val < BestVal) {
      BestVal = Val;
      Best = Upper;
    }
  }
  return Best;
}

namespace {

/// Minimises sum_s |coef_s + t * d_s| over t (Appendix A.1). Terms with
/// d_s = 0 are constant; the rest contribute weight |d_s| at breakpoint
/// -coef_s / d_s, so the optimum is a weighted median attained at a
/// breakpoint, found by selection.
double minimiseCoefficientMass(const Zonotope &P, size_t Var,
                               const ConstraintForm &D,
                               const RefinementOptions &Opts,
                               std::vector<Breakpoint> &Points) {
  Points.clear();
  Points.reserve(D.Alpha.size() + D.Beta.size());
  for (size_t S = 0; S < D.Alpha.size(); ++S) {
    if (std::fabs(D.Alpha[S]) <= Opts.Tol)
      continue;
    Points.push_back({-P.phiCoeffs().at(S, Var) / D.Alpha[S],
                      std::fabs(D.Alpha[S]), /*FromPhi=*/true});
  }
  for (size_t S = 0; S < D.Beta.size(); ++S) {
    if (std::fabs(D.Beta[S]) <= Opts.Tol)
      continue;
    Points.push_back({-P.epsCoeffs().at(S, Var) / D.Beta[S],
                      std::fabs(D.Beta[S]), /*FromPhi=*/false});
  }
  return detail::selectBreakpoint(Points);
}

} // namespace

RefinementStats
deept::zono::refineSoftmaxSum(Zonotope &P,
                              const std::vector<Zonotope *> &CoLive,
                              const RefinementOptions &Opts,
                              RefinementScratch *Scratch) {
  DEEPT_TRACE_SPAN("zono.softmax_refine");
  RefinementStats Stats;
  size_t C = P.cols();
  if (C < 2)
    return Stats;
  double Q = dualExponent(P.phiP());

  // Collected symbol tightenings Sym -> [Lo, Hi], applied after all rows
  // are processed. Each range is derived against the symbol's original
  // [-1, 1] meaning, so ranges from different rows for the same symbol are
  // intersected and the symbol is rewritten exactly once.
  std::vector<std::pair<double, double>> Ranges(P.numEps(),
                                                {-1.0, 1.0});
  std::vector<bool> Tightened(P.numEps(), false);

  // Scratch reused across every row and variable (and, when the caller
  // passes one in, across refine calls): the refinement loop is
  // allocation-heavy enough that per-call vectors show up in profiles.
  RefinementScratch Local;
  RefinementScratch &S = Scratch ? *Scratch : Local;
  ConstraintForm &D = S.D, &DR = S.DR;
  std::vector<Breakpoint> &Points = S.Points;
  Matrix &AlphaScratch = S.AlphaScratch;
  double MedianSeconds = 0.0;

  for (size_t Row = 0; Row < P.rows(); ++Row) {
    buildConstraint(P, Row, D);

    // Steps 1-2: refine every variable of the row with its own
    // mass-minimising multiple of the constraint residual. The paper
    // minimises only for y_1 (step 1) and pivot-substitutes an eps symbol
    // for the others (step 2); since y_j + t * D equals y_j on the
    // constraint set for *any* t, minimising per variable is equally sound
    // and never increases a variable's coefficient mass (t = 0 is always a
    // candidate the optimum dominates).
    for (size_t J = 0; J < C; ++J) {
      size_t Var = Row * C + J;
      auto T0 = std::chrono::steady_clock::now();
      double TStar = minimiseCoefficientMass(P, Var, D, Opts, Points);
      MedianSeconds +=
          std::chrono::duration<double>(std::chrono::steady_clock::now() - T0)
              .count();
      if (std::fabs(TStar) <= Opts.MaxFactor)
        addConstraintMultiple(P, Var, TStar, D);
    }
    Stats.RowsRefined++;

    // Step 3: solve the refined constraint for each eps symbol to tighten
    // its range.
    buildConstraint(P, Row, DR);
    double AlphaNorm = 0.0;
    if (!DR.Alpha.empty()) {
      if (AlphaScratch.cols() != DR.Alpha.size())
        AlphaScratch = Matrix::uninit(1, DR.Alpha.size());
      std::copy(DR.Alpha.begin(), DR.Alpha.end(), AlphaScratch.data());
      AlphaNorm = AlphaScratch.lpNorm(Q);
    }
    double BetaAbsSum = 0.0;
    for (double B : DR.Beta)
      BetaAbsSum += std::fabs(B);
    for (size_t M = 0; M < DR.Beta.size(); ++M) {
      double BM = DR.Beta[M];
      if (std::fabs(BM) <= Opts.Tol)
        continue;
      double Rest = AlphaNorm + (BetaAbsSum - std::fabs(BM));
      // Constraint: DR.C + alpha.phi + sum beta_j eps_j = 0, so
      // eps_m = (-DR.C - alpha.phi - sum_{j != m} beta_j eps_j) / BM.
      double Mid = -DR.C / BM;
      double Rad = Rest / std::fabs(BM);
      if (!std::isfinite(Mid) || !std::isfinite(Rad))
        continue; // overflowed abstraction; no sound tightening available
      double Lo = std::max(Mid - Rad, -1.0);
      double Hi = std::min(Mid + Rad, 1.0);
      if (Lo > Hi)
        continue; // numerically infeasible; leave the symbol alone
      if (Hi - Lo >= 2.0 - 1e-12)
        continue; // no tightening
      if (M >= Ranges.size())
        continue; // symbol introduced mid-refinement; skip
      Ranges[M].first = std::max(Ranges[M].first, Lo);
      Ranges[M].second = std::min(Ranges[M].second, Hi);
      if (Ranges[M].first > Ranges[M].second) {
        // Intersection emptied by floating point slack; collapse to the
        // midpoint rather than producing an inverted range.
        double Mid2 = 0.5 * (Ranges[M].first + Ranges[M].second);
        Ranges[M] = {Mid2, Mid2};
      }
      Tightened[M] = true;
    }
  }

  static support::Counter &RowsRefined =
      support::Metrics::global().counter("zono.refine.rows");
  static support::Counter &Tightenings =
      support::Metrics::global().counter("zono.refine.symbols_tightened");
  static support::Histogram &Shrinkage =
      support::Metrics::global().histogram("zono.refine.shrinkage");
  static support::Histogram &MedianMs =
      support::Metrics::global().histogram("refine.median_ms");
  MedianMs.observe(MedianSeconds * 1e3);
  RowsRefined.add(static_cast<double>(Stats.RowsRefined));
  for (size_t Sym = 0; Sym < Tightened.size(); ++Sym) {
    if (!Tightened[Sym])
      continue;
    double Mid = 0.5 * (Ranges[Sym].first + Ranges[Sym].second);
    double Rad = 0.5 * (Ranges[Sym].second - Ranges[Sym].first);
    // Fraction of the symbol's original [-1, 1] range eliminated (1 =
    // pinned to a point, 0 = untouched).
    Shrinkage.observe(1.0 - Rad);
    P.rewriteEpsSymbol(Sym, Mid, Rad);
    for (Zonotope *Other : CoLive)
      Other->rewriteEpsSymbol(Sym, Mid, Rad);
    Stats.SymbolsTightened++;
  }
  Tightenings.add(static_cast<double>(Stats.SymbolsTightened));
  return Stats;
}
