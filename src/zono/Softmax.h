//===- zono/Softmax.h - Softmax abstract transformer -----------*- C++ -*-===//
//
// Part of deept-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The row-wise softmax abstract transformer of Section 5.2. Instead of
/// composing exp / sum / reciprocal / multiplication on sigma_i =
/// e^{v_i} / sum_j e^{v_j}, DeepT overapproximates the equivalent
///
///   sigma_i = 1 / sum_j e^{v_j - v_i},
///
/// whose differences let shared noise symbols cancel, avoid the
/// multiplication transformer entirely, and keep outputs in (0, 1].
/// The naive composition is also provided for the ablation test that
/// demonstrates why the rewrite matters.
///
//===----------------------------------------------------------------------===//

#ifndef DEEPT_ZONO_SOFTMAX_H
#define DEEPT_ZONO_SOFTMAX_H

#include "zono/DotProduct.h"
#include "zono/Zonotope.h"

namespace deept {
namespace zono {

struct SoftmaxOptions {
  /// Positivity epsilon for the exp / reciprocal transformers.
  double ElementwiseEps = 0.01;
  /// Use the stable 1 / sum(e^{v_j - v_i}) rewrite (Section 5.2) instead
  /// of the naive exp/sum/recip/mul composition.
  bool StableRewrite = true;
  /// Options for the multiplication transformer of the naive composition.
  DotOptions Mul;
};

/// Applies softmax to every row of \p Scores (R x C -> R x C).
Zonotope applySoftmax(const Zonotope &Scores,
                      const SoftmaxOptions &Opts = SoftmaxOptions());

} // namespace zono
} // namespace deept

#endif // DEEPT_ZONO_SOFTMAX_H
