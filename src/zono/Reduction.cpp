//===- zono/Reduction.cpp -------------------------------------*- C++ -*-===//

#include "zono/Reduction.h"

#include "zono/Provenance.h"

#include "support/Metrics.h"
#include "support/Parallel.h"
#include "support/Trace.h"

#include <algorithm>
#include <cmath>
#include <numeric>

using namespace deept;
using namespace deept::zono;

size_t deept::zono::reduceEpsSymbols(Zonotope &Z, size_t Keep) {
  size_t NumEps = Z.numEps();
  if (NumEps <= Keep)
    return 0;
  DEEPT_TRACE_SPAN("zono.reduce");
  static support::Counter &Calls =
      support::Metrics::global().counter("zono.reduce.calls");
  static support::Counter &Dropped =
      support::Metrics::global().counter("zono.eps_symbols.reduced");
  Calls.add(1);
  Dropped.add(static_cast<double>(NumEps - Keep));
  size_t NumVars = Z.numVars();
  const Matrix &Eps = Z.epsCoeffs();

  // Heuristic score m_j = sum_i |B_ij| per symbol. Each symbol's score is
  // an independent reduction over its own row, so the symbol loop
  // parallelises with disjoint writes and fixed per-row order.
  std::vector<double> Score(NumEps, 0.0);
  support::parallelFor(
      0, NumEps, support::grainForWork(NumVars), [&](size_t S0, size_t S1) {
        for (size_t S = S0; S < S1; ++S) {
          const double *Row = Eps.rowPtr(S);
          double Acc = 0.0;
          for (size_t V = 0; V < NumVars; ++V)
            Acc += std::fabs(Row[V]);
          Score[S] = Acc;
        }
      });
  std::vector<size_t> Order(NumEps);
  std::iota(Order.begin(), Order.end(), 0);
  std::nth_element(Order.begin(), Order.begin() + Keep, Order.end(),
                   [&](size_t A, size_t B) { return Score[A] > Score[B]; });
  std::vector<bool> Kept(NumEps, false);
  for (size_t I = 0; I < Keep; ++I)
    Kept[Order[I]] = true;

  // Kept symbols are copied in their original order (their identity within
  // this tensor is all that matters after reduction); dropped symbols fold
  // into a per-variable interval radius. The destination row of each kept
  // symbol is a prefix count, so the copies parallelise over symbols; the
  // fold parallelises over variable chunks with the dropped symbols
  // accumulated in ascending order inside each chunk (the serial order).
  Matrix NewEps(Keep, NumVars);
  std::vector<size_t> OutRow(NumEps, 0);
  for (size_t S = 0, Out = 0; S < NumEps; ++S)
    if (Kept[S])
      OutRow[S] = Out++;
  support::parallelFor(
      0, NumEps, support::grainForWork(NumVars), [&](size_t S0, size_t S1) {
        for (size_t S = S0; S < S1; ++S) {
          if (!Kept[S])
            continue;
          const double *Row = Eps.rowPtr(S);
          std::copy(Row, Row + NumVars, NewEps.rowPtr(OutRow[S]));
        }
      });
  std::vector<double> FoldRadius(NumVars, 0.0);
  support::parallelFor(
      0, NumVars, support::grainForWork(NumEps), [&](size_t V0, size_t V1) {
        for (size_t S = 0; S < NumEps; ++S) {
          if (Kept[S])
            continue;
          const double *Row = Eps.rowPtr(S);
          for (size_t V = V0; V < V1; ++V)
            FoldRadius[V] += std::fabs(Row[V]);
        }
      });

  if (SymbolProvenance *P = SymbolProvenance::active()) {
    std::vector<size_t> KeptOld;
    KeptOld.reserve(Keep);
    for (size_t S = 0; S < NumEps; ++S)
      if (Kept[S])
        KeptOld.push_back(S);
    P->noteReduction(KeptOld);
  }
  Z.installCoeffs(Matrix(Z.phiCoeffs()), std::move(NewEps));
  std::vector<std::pair<size_t, double>> Fresh;
  for (size_t V = 0; V < NumVars; ++V)
    if (FoldRadius[V] > 0.0)
      Fresh.emplace_back(V, FoldRadius[V]);
  Z.appendFreshEps(Fresh);
  return NumEps - Keep;
}
