//===- zono/Reduction.h - Noise symbol reduction ---------------*- C++ -*-===//
//
// Part of deept-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// DecorrelateMin_k noise symbol reduction (Section 5.1, after Mirman et
/// al. 2019): every abstract transformer except the affine ones introduces
/// fresh eps symbols, so their number grows with depth. To bound memory
/// and time independently of depth, the verifier periodically keeps only
/// the k eps symbols with the largest total coefficient mass
/// m_j = sum_i |B_ij| and folds all others into one fresh per-variable
/// interval symbol.
///
/// Reduction re-indexes the eps space, so it must only be applied at
/// points where a single zonotope is live (the DeepT verifier applies it
/// to the input embeddings of each Transformer layer).
///
//===----------------------------------------------------------------------===//

#ifndef DEEPT_ZONO_REDUCTION_H
#define DEEPT_ZONO_REDUCTION_H

#include "zono/Zonotope.h"

namespace deept {
namespace zono {

/// Reduces Z's eps symbols to at most \p Keep kept symbols plus at most
/// one fresh symbol per variable. Returns the number of symbols dropped.
size_t reduceEpsSymbols(Zonotope &Z, size_t Keep);

} // namespace zono
} // namespace deept

#endif // DEEPT_ZONO_REDUCTION_H
