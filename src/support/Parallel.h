//===- support/Parallel.h - Shared thread pool and parallelFor -*- C++ -*-===//
//
// Part of deept-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The execution layer: a lazily started, process-wide thread pool and a
/// deterministic parallelFor on top of it. The tensor kernels and the
/// zonotope abstract transformers dispatch their coefficient-row and
/// output-variable loops through here (see DESIGN.md "Execution layer").
///
/// Determinism contract: parallelFor splits [Begin, End) into chunks of
/// exactly Grain indices (the last chunk may be shorter). Chunk boundaries
/// depend only on (Begin, End, Grain) -- never on the thread count -- and
/// every chunk is executed exactly once. Kernels built on parallelFor
/// either write disjoint outputs with a fixed per-element accumulation
/// order (GEMM rows, coefficient rows) or combine per-chunk partials in
/// ascending chunk order, so results are bit-identical for any thread
/// count, including 1.
///
/// Thread count resolution: DEEPT_THREADS environment variable if set,
/// else std::thread::hardware_concurrency(); overridable at runtime via
/// ThreadPool::setThreadCount (the CLI's --threads flag). Worker threads
/// are spawned on the first parallel dispatch, not at startup, so purely
/// serial runs never pay for them.
///
/// Nested parallelFor calls run serially on the calling worker (no
/// deadlock, no oversubscription): the outermost loop owns the pool.
///
//===----------------------------------------------------------------------===//

#ifndef DEEPT_SUPPORT_PARALLEL_H
#define DEEPT_SUPPORT_PARALLEL_H

#include "support/Fp.h"

#include <algorithm>
#include <cstddef>
#include <string>

namespace deept {
namespace support {

/// Parses a worker-thread count: the whole string must be a decimal
/// integer >= 1. Returns false and fills \p Err ("must be a positive
/// integer, got '...'") for zero, negative, empty, or non-numeric input.
/// Both the --threads flag (CLI, benches) and the DEEPT_THREADS
/// environment variable go through this, so malformed values fail loudly
/// instead of silently falling back to the core count.
bool parseThreadCount(const std::string &Text, size_t &Out,
                      std::string *Err = nullptr);

/// The process-wide worker pool. Users go through parallelFor; the class
/// is exposed for configuration (thread count) and introspection.
class ThreadPool {
public:
  /// The shared pool instance.
  static ThreadPool &global();

  /// Total computing threads a parallel region uses (caller + workers).
  /// Always >= 1.
  size_t threadCount() const;

  /// Reconfigures the pool to \p N total threads (clamped to >= 1).
  /// Joins and respawns workers; must not be called from inside a
  /// parallel region.
  void setThreadCount(size_t N);

  /// True while the calling thread is executing a parallelFor chunk
  /// (nested parallel loops degrade to serial).
  static bool inParallelRegion();

  /// Runs \p Fn(Ctx, Chunk) for every Chunk in [0, NumChunks), distributed
  /// over the pool; the caller participates. Blocks until all chunks have
  /// completed. Prefer parallelFor.
  void run(size_t NumChunks, void (*Fn)(void *Ctx, size_t Chunk), void *Ctx);

  ~ThreadPool();

private:
  ThreadPool();
  struct Impl;
  Impl *I;
};

/// Executes Fn(ChunkBegin, ChunkEnd) over a static, thread-count-
/// independent partition of [Begin, End) into chunks of Grain indices.
/// Fn must be safe to invoke concurrently on disjoint chunks. Runs
/// serially (still chunked, preserving reduction boundaries) when the
/// range is a single chunk, the pool has one thread, or the caller is
/// already inside a parallel region.
template <typename FnT>
void parallelFor(size_t Begin, size_t End, size_t Grain, FnT &&Fn) {
  if (End <= Begin)
    return;
  if (Grain == 0)
    Grain = 1;
  size_t NumChunks = (End - Begin + Grain - 1) / Grain;
  // Thread-local state the submitting thread expects inside Fn must be
  // re-established on the pool workers: capture the caller's precision
  // mode and scope it around every chunk (a no-op store in F64 mode).
  const FpPrecision CallerFp = fpPrecision();
  auto RunChunk = [&](size_t Chunk) {
    FpScope Scope(CallerFp);
    size_t B = Begin + Chunk * Grain;
    size_t E = std::min(End, B + Grain);
    Fn(B, E);
  };
  ThreadPool &Pool = ThreadPool::global();
  if (NumChunks == 1 || Pool.threadCount() == 1 ||
      ThreadPool::inParallelRegion()) {
    for (size_t C = 0; C < NumChunks; ++C)
      RunChunk(C);
    return;
  }
  using ChunkFn = decltype(RunChunk);
  Pool.run(
      NumChunks,
      [](void *Ctx, size_t Chunk) { (*static_cast<ChunkFn *>(Ctx))(Chunk); },
      &RunChunk);
}

/// A grain size giving chunks of roughly \p TargetWork scalar operations
/// when each index costs \p WorkPerIndex (>= 1 index per chunk).
inline size_t grainForWork(size_t WorkPerIndex, size_t TargetWork = 16384) {
  if (WorkPerIndex == 0)
    return TargetWork;
  return std::max<size_t>(1, TargetWork / WorkPerIndex);
}

/// A grain size for column-blocked symbol-axis reductions (columnDualNorms
/// and friends), which call an accumulator kernel once per symbol row per
/// chunk: chunks must be wide enough to amortize those calls -- a
/// work-proportional grain would shrink to single-digit widths on large
/// symbol counts and drown in call overhead -- while still splitting into
/// a few chunks per pool thread for load balance. Chunk boundaries do not
/// affect results (each column accumulates independently), so the
/// thread-count dependence here preserves the determinism contract.
inline size_t reductionGrain(size_t NumVars) {
  size_t Chunks = 4 * ThreadPool::global().threadCount();
  return std::max<size_t>(256, (NumVars + Chunks - 1) / Chunks);
}

} // namespace support
} // namespace deept

#endif // DEEPT_SUPPORT_PARALLEL_H
