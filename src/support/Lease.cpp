//===- support/Lease.cpp --------------------------------------*- C++ -*-===//

#include "support/Lease.h"

#include "support/Fault.h"
#include "support/Io.h"
#include "support/Json.h"
#include "support/Metrics.h"

#include <cctype>
#include <chrono>
#include <cstdio>

using namespace deept;
using namespace deept::support;

std::string Lease::toJson() const {
  char Buf[512];
  std::snprintf(Buf, sizeof(Buf),
                "{\"deept_lease\":1,\"range\":%zu,\"ranges\":%zu,"
                "\"owner\":\"%s\",\"pid\":%lld,\"created_ms\":%lld,"
                "\"heartbeat_ms\":%lld}",
                Range, Ranges, jsonEscape(Owner).c_str(),
                static_cast<long long>(Pid), static_cast<long long>(CreatedMs),
                static_cast<long long>(HeartbeatMs));
  return Buf;
}

bool Lease::fromJson(const std::string &Text, Lease &Out, std::string *Err) {
  JsonValue V;
  if (!parseJson(Text, V, Err))
    return false;
  const JsonValue *Magic = V.find("deept_lease");
  if (!Magic || Magic->K != JsonValue::Kind::Number ||
      Magic->NumberVal != 1.0) {
    if (Err)
      *Err = "not a deept_lease v1 document";
    return false;
  }
  auto Num = [&](const char *Key, double &Dst) {
    const JsonValue *F = V.find(Key);
    if (!F || F->K != JsonValue::Kind::Number)
      return false;
    Dst = F->NumberVal;
    return true;
  };
  double Range = 0, Ranges = 0, Pid = 0, Created = 0, Heartbeat = 0;
  const JsonValue *Owner = V.find("owner");
  if (!Num("range", Range) || !Num("ranges", Ranges) || !Num("pid", Pid) ||
      !Num("created_ms", Created) || !Num("heartbeat_ms", Heartbeat) ||
      !Owner || Owner->K != JsonValue::Kind::String) {
    if (Err)
      *Err = "lease document missing required fields";
    return false;
  }
  Out.Range = static_cast<size_t>(Range);
  Out.Ranges = static_cast<size_t>(Ranges);
  Out.Owner = Owner->StringVal;
  Out.Pid = static_cast<int64_t>(Pid);
  Out.CreatedMs = static_cast<int64_t>(Created);
  Out.HeartbeatMs = static_cast<int64_t>(Heartbeat);
  return true;
}

int64_t deept::support::nowEpochMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

std::string deept::support::leasePath(const std::string &Dir, size_t Range) {
  return Dir + "/range-" + std::to_string(Range) + ".lease";
}

std::string deept::support::shardPath(const std::string &Dir, size_t Range) {
  return Dir + "/shard-" + std::to_string(Range) + ".jsonl";
}

std::string deept::support::donePath(const std::string &Dir, size_t Range) {
  return Dir + "/range-" + std::to_string(Range) + ".done";
}

ClaimOutcome deept::support::claimLease(const std::string &Dir, Lease &L,
                                        Error *Err) {
  L.CreatedMs = L.HeartbeatMs = nowEpochMs();
  bool Exists = false;
  Error E;
  if (createFileExclusive(leasePath(Dir, L.Range), L.toJson() + "\n", Exists,
                          &E)) {
    static Counter &Claimed =
        Metrics::global().counter("coord.leases_claimed");
    Claimed.add(1);
    return ClaimOutcome::Claimed;
  }
  if (Exists)
    return ClaimOutcome::Held;
  if (Err)
    *Err = E;
  return ClaimOutcome::Failed;
}

bool deept::support::readLeaseFile(const std::string &Path, Lease &Out,
                                   Error *Err) {
  std::string Text;
  if (!readFileToString(Path, Text, Err))
    return false;
  std::string JErr;
  if (!Lease::fromJson(Text, Out, &JErr)) {
    if (Err)
      *Err = Error(ErrorCode::StoreCorrupt, "lease.read",
                   "malformed lease '" + Path + "': " + JErr);
    return false;
  }
  return true;
}

bool deept::support::renewLease(const std::string &Dir, Lease &L, Error *Err) {
  try {
    DEEPT_FAULT_POINT("lease.heartbeat");
  } catch (const std::exception &E) {
    if (Err)
      *Err = Error(codeOf(E), "lease.heartbeat", E.what());
    return false;
  }
  std::string Path = leasePath(Dir, L.Range);
  Lease Cur;
  Error E;
  if (!readLeaseFile(Path, Cur, &E)) {
    if (Err)
      *Err = Error(ErrorCode::LeaseLost, "lease.heartbeat",
                   "lease file gone or unreadable (" +
                       std::string(E.what()) + ")");
    return false;
  }
  if (Cur.Owner != L.Owner || Cur.CreatedMs != L.CreatedMs) {
    if (Err)
      *Err = Error(ErrorCode::LeaseLost, "lease.heartbeat",
                   "range " + std::to_string(L.Range) + " now owned by '" +
                       Cur.Owner + "'");
    return false;
  }
  int64_t Prev = L.HeartbeatMs;
  L.HeartbeatMs = nowEpochMs();
  if (!atomicWriteFile(Path, L.toJson() + "\n", Err)) {
    L.HeartbeatMs = Prev;
    return false;
  }
  static Histogram &Latency =
      Metrics::global().histogram("coord.heartbeat_latency_ms");
  Latency.observe(static_cast<double>(L.HeartbeatMs - Prev));
  return true;
}

bool deept::support::leaseIsStale(const Lease &L, int64_t NowMs,
                                  int64_t StaleAfterMs) {
  return NowMs - L.HeartbeatMs > StaleAfterMs;
}

bool deept::support::reclaimLease(const std::string &Dir, const Lease &Stale,
                                  const std::string &Reclaimer, Error *Err) {
  std::string Path = leasePath(Dir, Stale.Range);
  // Re-read: if the holder renewed (or another reclaimer already won and
  // the range was re-claimed) since the caller observed staleness, leave
  // the lease alone.
  Lease Cur;
  if (!readLeaseFile(Path, Cur) || Cur.Owner != Stale.Owner ||
      Cur.CreatedMs != Stale.CreatedMs ||
      Cur.HeartbeatMs != Stale.HeartbeatMs)
    return false;
  std::string Tag;
  for (char C : Reclaimer)
    Tag += (std::isalnum(static_cast<unsigned char>(C)) ? C : '_');
  std::string Claimed = Path + ".reclaim." + Tag;
  // rename is the race arbiter: once one reclaimer moves the file, every
  // other rename fails with ENOENT.
  if (!renameFile(Path, Claimed))
    return false;
  // Tiny ABA window: the holder may have renewed between our re-read and
  // the rename, in which case we just displaced a live lease. Put it back
  // (the holder's next renewal would otherwise see it lost -- which is
  // safe, merely wasteful). If even the put-back fails, fall through to
  // removal; determinism makes any zombie shard appends exact duplicates.
  Lease Moved;
  if (readLeaseFile(Claimed, Moved) &&
      (Moved.Owner != Stale.Owner || Moved.CreatedMs != Stale.CreatedMs ||
       Moved.HeartbeatMs != Stale.HeartbeatMs)) {
    if (renameFile(Claimed, Path))
      return false;
  }
  if (!removeFile(Claimed, Err))
    return false;
  static Counter &Reclaimed =
      Metrics::global().counter("coord.leases_reclaimed");
  Reclaimed.add(1);
  return true;
}

bool deept::support::releaseLease(const std::string &Dir, const Lease &L,
                                  Error *Err) {
  return removeFile(leasePath(Dir, L.Range), Err);
}
