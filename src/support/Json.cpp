//===- support/Json.cpp ---------------------------------------*- C++ -*-===//

#include "support/Json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

using namespace deept;
using namespace deept::support;

const JsonValue *JsonValue::find(std::string_view Key) const {
  if (K != Kind::Object)
    return nullptr;
  for (const auto &[Name, Value] : Members)
    if (Name == Key)
      return &Value;
  return nullptr;
}

namespace {

/// Recursive-descent parser over a string view. Nesting is depth-limited
/// so adversarial input cannot overflow the stack.
class Parser {
public:
  Parser(std::string_view Text, std::string *Err) : Text(Text), Err(Err) {}

  bool parseDocument(JsonValue &Out) {
    skipSpace();
    if (!parseValue(Out, 0))
      return false;
    skipSpace();
    if (Pos != Text.size())
      return fail("trailing characters after JSON value");
    return true;
  }

private:
  static constexpr int MaxDepth = 64;

  bool fail(const char *Message) {
    if (Err) {
      char Buf[128];
      std::snprintf(Buf, sizeof(Buf), "%s (at offset %zu)", Message, Pos);
      *Err = Buf;
    }
    return false;
  }

  void skipSpace() {
    while (Pos < Text.size() &&
           (Text[Pos] == ' ' || Text[Pos] == '\t' || Text[Pos] == '\n' ||
            Text[Pos] == '\r'))
      ++Pos;
  }

  bool literal(const char *Word) {
    size_t Len = std::strlen(Word);
    if (Text.compare(Pos, Len, Word) != 0)
      return fail("invalid literal");
    Pos += Len;
    return true;
  }

  bool parseValue(JsonValue &Out, int Depth) {
    if (Depth > MaxDepth)
      return fail("nesting too deep");
    if (Pos >= Text.size())
      return fail("unexpected end of input");
    switch (Text[Pos]) {
    case '{':
      return parseObject(Out, Depth);
    case '[':
      return parseArray(Out, Depth);
    case '"':
      Out.K = JsonValue::Kind::String;
      return parseString(Out.StringVal);
    case 't':
      Out.K = JsonValue::Kind::Bool;
      Out.BoolVal = true;
      return literal("true");
    case 'f':
      Out.K = JsonValue::Kind::Bool;
      Out.BoolVal = false;
      return literal("false");
    case 'n':
      Out.K = JsonValue::Kind::Null;
      return literal("null");
    default:
      return parseNumber(Out);
    }
  }

  bool parseObject(JsonValue &Out, int Depth) {
    Out.K = JsonValue::Kind::Object;
    ++Pos; // '{'
    skipSpace();
    if (Pos < Text.size() && Text[Pos] == '}') {
      ++Pos;
      return true;
    }
    while (true) {
      skipSpace();
      if (Pos >= Text.size() || Text[Pos] != '"')
        return fail("expected object key");
      std::string Key;
      if (!parseString(Key))
        return false;
      skipSpace();
      if (Pos >= Text.size() || Text[Pos] != ':')
        return fail("expected ':' after object key");
      ++Pos;
      skipSpace();
      JsonValue Member;
      if (!parseValue(Member, Depth + 1))
        return false;
      Out.Members.emplace_back(std::move(Key), std::move(Member));
      skipSpace();
      if (Pos >= Text.size())
        return fail("unterminated object");
      if (Text[Pos] == ',') {
        ++Pos;
        continue;
      }
      if (Text[Pos] == '}') {
        ++Pos;
        return true;
      }
      return fail("expected ',' or '}' in object");
    }
  }

  bool parseArray(JsonValue &Out, int Depth) {
    Out.K = JsonValue::Kind::Array;
    ++Pos; // '['
    skipSpace();
    if (Pos < Text.size() && Text[Pos] == ']') {
      ++Pos;
      return true;
    }
    while (true) {
      skipSpace();
      JsonValue Item;
      if (!parseValue(Item, Depth + 1))
        return false;
      Out.Items.push_back(std::move(Item));
      skipSpace();
      if (Pos >= Text.size())
        return fail("unterminated array");
      if (Text[Pos] == ',') {
        ++Pos;
        continue;
      }
      if (Text[Pos] == ']') {
        ++Pos;
        return true;
      }
      return fail("expected ',' or ']' in array");
    }
  }

  bool parseString(std::string &Out) {
    ++Pos; // opening quote
    Out.clear();
    while (Pos < Text.size()) {
      char C = Text[Pos];
      if (C == '"') {
        ++Pos;
        return true;
      }
      if (static_cast<unsigned char>(C) < 0x20)
        return fail("unescaped control character in string");
      if (C != '\\') {
        Out.push_back(C);
        ++Pos;
        continue;
      }
      if (++Pos >= Text.size())
        return fail("unterminated escape");
      switch (Text[Pos]) {
      case '"':  Out.push_back('"');  break;
      case '\\': Out.push_back('\\'); break;
      case '/':  Out.push_back('/');  break;
      case 'b':  Out.push_back('\b'); break;
      case 'f':  Out.push_back('\f'); break;
      case 'n':  Out.push_back('\n'); break;
      case 'r':  Out.push_back('\r'); break;
      case 't':  Out.push_back('\t'); break;
      case 'u': {
        if (Pos + 4 >= Text.size())
          return fail("truncated \\u escape");
        unsigned Code = 0;
        for (int I = 0; I < 4; ++I) {
          char H = Text[Pos + 1 + I];
          if (!std::isxdigit(static_cast<unsigned char>(H)))
            return fail("invalid \\u escape");
          Code = Code * 16 +
                 (H <= '9' ? H - '0' : (H | 0x20) - 'a' + 10);
        }
        Pos += 4;
        // UTF-8 encode the BMP code point (surrogate pairs are passed
        // through individually; enough for the ASCII-centric output of
        // the exporters).
        if (Code < 0x80) {
          Out.push_back(static_cast<char>(Code));
        } else if (Code < 0x800) {
          Out.push_back(static_cast<char>(0xC0 | (Code >> 6)));
          Out.push_back(static_cast<char>(0x80 | (Code & 0x3F)));
        } else {
          Out.push_back(static_cast<char>(0xE0 | (Code >> 12)));
          Out.push_back(static_cast<char>(0x80 | ((Code >> 6) & 0x3F)));
          Out.push_back(static_cast<char>(0x80 | (Code & 0x3F)));
        }
        break;
      }
      default:
        return fail("invalid escape character");
      }
      ++Pos;
    }
    return fail("unterminated string");
  }

  bool parseNumber(JsonValue &Out) {
    size_t Start = Pos;
    if (Pos < Text.size() && Text[Pos] == '-')
      ++Pos;
    if (Pos >= Text.size() ||
        !std::isdigit(static_cast<unsigned char>(Text[Pos])))
      return fail("invalid number");
    // Leading zero must not be followed by more digits.
    if (Text[Pos] == '0' && Pos + 1 < Text.size() &&
        std::isdigit(static_cast<unsigned char>(Text[Pos + 1])))
      return fail("leading zero in number");
    while (Pos < Text.size() &&
           std::isdigit(static_cast<unsigned char>(Text[Pos])))
      ++Pos;
    if (Pos < Text.size() && Text[Pos] == '.') {
      ++Pos;
      if (Pos >= Text.size() ||
          !std::isdigit(static_cast<unsigned char>(Text[Pos])))
        return fail("digit expected after decimal point");
      while (Pos < Text.size() &&
             std::isdigit(static_cast<unsigned char>(Text[Pos])))
        ++Pos;
    }
    if (Pos < Text.size() && (Text[Pos] == 'e' || Text[Pos] == 'E')) {
      ++Pos;
      if (Pos < Text.size() && (Text[Pos] == '+' || Text[Pos] == '-'))
        ++Pos;
      if (Pos >= Text.size() ||
          !std::isdigit(static_cast<unsigned char>(Text[Pos])))
        return fail("digit expected in exponent");
      while (Pos < Text.size() &&
             std::isdigit(static_cast<unsigned char>(Text[Pos])))
        ++Pos;
    }
    Out.K = JsonValue::Kind::Number;
    Out.NumberVal =
        std::strtod(std::string(Text.substr(Start, Pos - Start)).c_str(),
                    nullptr);
    return true;
  }

  std::string_view Text;
  std::string *Err;
  size_t Pos = 0;
};

} // namespace

bool deept::support::parseJson(std::string_view Text, JsonValue &Out,
                               std::string *Err) {
  Out = JsonValue();
  return Parser(Text, Err).parseDocument(Out);
}

std::string deept::support::jsonEscape(std::string_view S) {
  std::string Out;
  Out.reserve(S.size());
  for (char C : S) {
    switch (C) {
    case '"':  Out += "\\\""; break;
    case '\\': Out += "\\\\"; break;
    case '\b': Out += "\\b";  break;
    case '\f': Out += "\\f";  break;
    case '\n': Out += "\\n";  break;
    case '\r': Out += "\\r";  break;
    case '\t': Out += "\\t";  break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out.push_back(C);
      }
    }
  }
  return Out;
}

std::string deept::support::jsonNumber(double V) {
  if (!std::isfinite(V))
    return "null";
  char Buf[32];
  // Shortest round-trippable representation; %.17g always round-trips a
  // double and strtod reads it back exactly.
  std::snprintf(Buf, sizeof(Buf), "%.17g", V);
  // JSON requires a leading digit; %g never emits one-less forms like
  // ".5", so the token is valid as-is.
  return Buf;
}
