//===- support/Metrics.cpp ------------------------------------*- C++ -*-===//

#include "support/Metrics.h"

#include "support/Json.h"
#include "support/Table.h"

#include <algorithm>

using namespace deept;
using namespace deept::support;

void Histogram::observe(double V) {
  std::lock_guard<std::mutex> Lock(Mu);
  if (S.Count == 0) {
    S.Min = V;
    S.Max = V;
  } else {
    S.Min = std::min(S.Min, V);
    S.Max = std::max(S.Max, V);
  }
  S.Count++;
  S.Sum += V;
}

Histogram::Stats Histogram::stats() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return S;
}

void Histogram::reset() {
  std::lock_guard<std::mutex> Lock(Mu);
  S = Stats();
}

Metrics &Metrics::global() {
  static Metrics M;
  return M;
}

Counter &Metrics::counter(const std::string &Name) {
  std::lock_guard<std::mutex> Lock(Mu);
  std::unique_ptr<Counter> &Slot = Counters[Name];
  if (!Slot)
    Slot = std::make_unique<Counter>();
  return *Slot;
}

Gauge &Metrics::gauge(const std::string &Name) {
  std::lock_guard<std::mutex> Lock(Mu);
  std::unique_ptr<Gauge> &Slot = Gauges[Name];
  if (!Slot)
    Slot = std::make_unique<Gauge>();
  return *Slot;
}

Histogram &Metrics::histogram(const std::string &Name) {
  std::lock_guard<std::mutex> Lock(Mu);
  std::unique_ptr<Histogram> &Slot = Histograms[Name];
  if (!Slot)
    Slot = std::make_unique<Histogram>();
  return *Slot;
}

double Metrics::counterValue(const std::string &Name) const {
  std::lock_guard<std::mutex> Lock(Mu);
  auto It = Counters.find(Name);
  return It == Counters.end() ? 0.0 : It->second->value();
}

double Metrics::gaugeValue(const std::string &Name) const {
  std::lock_guard<std::mutex> Lock(Mu);
  auto It = Gauges.find(Name);
  return It == Gauges.end() ? 0.0 : It->second->value();
}

Histogram::Stats Metrics::histogramStats(const std::string &Name) const {
  std::lock_guard<std::mutex> Lock(Mu);
  auto It = Histograms.find(Name);
  return It == Histograms.end() ? Histogram::Stats() : It->second->stats();
}

void Metrics::reset() {
  std::lock_guard<std::mutex> Lock(Mu);
  for (auto &[Name, C] : Counters)
    C->reset();
  for (auto &[Name, G] : Gauges)
    G->reset();
  for (auto &[Name, H] : Histograms)
    H->reset();
}

std::string Metrics::toJson() const {
  std::lock_guard<std::mutex> Lock(Mu);
  std::string Out = "{\"counters\":{";
  bool First = true;
  for (const auto &[Name, C] : Counters) {
    if (!First)
      Out += ",";
    First = false;
    Out += "\"" + jsonEscape(Name) + "\":" + jsonNumber(C->value());
  }
  Out += "},\"gauges\":{";
  First = true;
  for (const auto &[Name, G] : Gauges) {
    if (!First)
      Out += ",";
    First = false;
    Out += "\"" + jsonEscape(Name) + "\":" + jsonNumber(G->value());
  }
  Out += "},\"histograms\":{";
  First = true;
  for (const auto &[Name, H] : Histograms) {
    if (!First)
      Out += ",";
    First = false;
    Histogram::Stats S = H->stats();
    Out += "\"" + jsonEscape(Name) + "\":{\"count\":" +
           jsonNumber(static_cast<double>(S.Count)) +
           ",\"sum\":" + jsonNumber(S.Sum) + ",\"min\":" + jsonNumber(S.Min) +
           ",\"max\":" + jsonNumber(S.Max) +
           ",\"mean\":" + jsonNumber(S.mean()) + "}";
  }
  Out += "}}";
  return Out;
}

std::string Metrics::summaryTable() const {
  std::lock_guard<std::mutex> Lock(Mu);
  Table T({"metric", "kind", "value / count,mean,max"});
  for (const auto &[Name, C] : Counters)
    T.addRow({Name, "counter", formatFixed(C->value(), 0)});
  for (const auto &[Name, G] : Gauges)
    T.addRow({Name, "gauge", formatFixed(G->value(), 0)});
  for (const auto &[Name, H] : Histograms) {
    Histogram::Stats S = H->stats();
    T.addRow({Name, "histogram",
              std::to_string(S.Count) + "," + formatFixed(S.mean(), 2) + "," +
                  formatFixed(S.Max, 2)});
  }
  return T.render();
}
