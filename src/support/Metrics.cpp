//===- support/Metrics.cpp ------------------------------------*- C++ -*-===//

#include "support/Metrics.h"

#include "support/Json.h"
#include "support/Table.h"

#include <algorithm>
#include <cmath>

using namespace deept;
using namespace deept::support;

void Histogram::observe(double V) {
  std::lock_guard<std::mutex> Lock(Mu);
  if (S.Count == 0) {
    S.Min = V;
    S.Max = V;
  } else {
    S.Min = std::min(S.Min, V);
    S.Max = std::max(S.Max, V);
  }
  // Deterministic decimation: keep every Stride-th observation; at
  // capacity, drop every other retained sample and double the stride.
  if (S.Count % Stride == 0) {
    if (Samples.size() >= SampleCap) {
      size_t Out = 0;
      for (size_t I = 0; I < Samples.size(); I += 2)
        Samples[Out++] = Samples[I];
      Samples.resize(Out);
      Stride *= 2;
    }
    if (S.Count % Stride == 0)
      Samples.push_back(V);
  }
  S.Count++;
  S.Sum += V;
}

double Histogram::quantileSorted(const std::vector<double> &Sorted,
                                 double Q) const {
  // Nearest rank; an empty histogram reports 0 (never NaN) so the JSON
  // emitters always get a finite number.
  if (Sorted.empty())
    return 0.0;
  double Rank = std::ceil(Q * static_cast<double>(Sorted.size())) - 1.0;
  size_t I = Rank <= 0.0 ? 0 : static_cast<size_t>(Rank);
  return Sorted[std::min(I, Sorted.size() - 1)];
}

Histogram::Stats Histogram::stats() const {
  std::lock_guard<std::mutex> Lock(Mu);
  Stats Out = S;
  if (!Samples.empty()) {
    std::vector<double> Sorted = Samples;
    std::sort(Sorted.begin(), Sorted.end());
    Out.P50 = quantileSorted(Sorted, 0.50);
    Out.P90 = quantileSorted(Sorted, 0.90);
    Out.P99 = quantileSorted(Sorted, 0.99);
  }
  return Out;
}

double Histogram::quantile(double Q) const {
  std::lock_guard<std::mutex> Lock(Mu);
  std::vector<double> Sorted = Samples;
  std::sort(Sorted.begin(), Sorted.end());
  return quantileSorted(Sorted, Q);
}

void Histogram::reset() {
  std::lock_guard<std::mutex> Lock(Mu);
  S = Stats();
  Samples.clear();
  Stride = 1;
}

Metrics &Metrics::global() {
  static Metrics M;
  return M;
}

Counter &Metrics::counter(const std::string &Name) {
  std::lock_guard<std::mutex> Lock(Mu);
  std::unique_ptr<Counter> &Slot = Counters[Name];
  if (!Slot)
    Slot = std::make_unique<Counter>();
  return *Slot;
}

Gauge &Metrics::gauge(const std::string &Name) {
  std::lock_guard<std::mutex> Lock(Mu);
  std::unique_ptr<Gauge> &Slot = Gauges[Name];
  if (!Slot)
    Slot = std::make_unique<Gauge>();
  return *Slot;
}

Histogram &Metrics::histogram(const std::string &Name) {
  std::lock_guard<std::mutex> Lock(Mu);
  std::unique_ptr<Histogram> &Slot = Histograms[Name];
  if (!Slot)
    Slot = std::make_unique<Histogram>();
  return *Slot;
}

double Metrics::counterValue(const std::string &Name) const {
  std::lock_guard<std::mutex> Lock(Mu);
  auto It = Counters.find(Name);
  return It == Counters.end() ? 0.0 : It->second->value();
}

double Metrics::gaugeValue(const std::string &Name) const {
  std::lock_guard<std::mutex> Lock(Mu);
  auto It = Gauges.find(Name);
  return It == Gauges.end() ? 0.0 : It->second->value();
}

Histogram::Stats Metrics::histogramStats(const std::string &Name) const {
  std::lock_guard<std::mutex> Lock(Mu);
  auto It = Histograms.find(Name);
  return It == Histograms.end() ? Histogram::Stats() : It->second->stats();
}

void Metrics::reset() {
  std::lock_guard<std::mutex> Lock(Mu);
  for (auto &[Name, C] : Counters)
    C->reset();
  for (auto &[Name, G] : Gauges)
    G->reset();
  for (auto &[Name, H] : Histograms)
    H->reset();
}

std::map<std::string, double> Metrics::counterSnapshot() const {
  std::lock_guard<std::mutex> Lock(Mu);
  std::map<std::string, double> Out;
  for (const auto &[Name, C] : Counters)
    Out[Name] = C->value();
  return Out;
}

std::map<std::string, double> Metrics::gaugeSnapshot() const {
  std::lock_guard<std::mutex> Lock(Mu);
  std::map<std::string, double> Out;
  for (const auto &[Name, G] : Gauges)
    Out[Name] = G->value();
  return Out;
}

std::map<std::string, Histogram::Stats> Metrics::histogramSnapshot() const {
  std::lock_guard<std::mutex> Lock(Mu);
  std::map<std::string, Histogram::Stats> Out;
  for (const auto &[Name, H] : Histograms)
    Out[Name] = H->stats();
  return Out;
}

std::string Metrics::toJson() const {
  std::lock_guard<std::mutex> Lock(Mu);
  std::string Out = "{\"counters\":{";
  bool First = true;
  for (const auto &[Name, C] : Counters) {
    if (!First)
      Out += ",";
    First = false;
    Out += "\"" + jsonEscape(Name) + "\":" + jsonNumber(C->value());
  }
  Out += "},\"gauges\":{";
  First = true;
  for (const auto &[Name, G] : Gauges) {
    if (!First)
      Out += ",";
    First = false;
    Out += "\"" + jsonEscape(Name) + "\":" + jsonNumber(G->value());
  }
  Out += "},\"histograms\":{";
  First = true;
  for (const auto &[Name, H] : Histograms) {
    if (!First)
      Out += ",";
    First = false;
    Histogram::Stats S = H->stats();
    Out += "\"" + jsonEscape(Name) + "\":{\"count\":" +
           jsonNumber(static_cast<double>(S.Count)) +
           ",\"sum\":" + jsonNumber(S.Sum) + ",\"min\":" + jsonNumber(S.Min) +
           ",\"max\":" + jsonNumber(S.Max) +
           ",\"mean\":" + jsonNumber(S.mean()) +
           ",\"p50\":" + jsonNumber(S.P50) + ",\"p90\":" + jsonNumber(S.P90) +
           ",\"p99\":" + jsonNumber(S.P99) + "}";
  }
  Out += "}}";
  return Out;
}

std::string Metrics::summaryTable() const {
  std::lock_guard<std::mutex> Lock(Mu);
  Table T({"metric", "kind", "value / count,mean,max"});
  for (const auto &[Name, C] : Counters)
    T.addRow({Name, "counter", formatFixed(C->value(), 0)});
  for (const auto &[Name, G] : Gauges)
    T.addRow({Name, "gauge", formatFixed(G->value(), 0)});
  for (const auto &[Name, H] : Histograms) {
    Histogram::Stats S = H->stats();
    T.addRow({Name, "histogram",
              std::to_string(S.Count) + "," + formatFixed(S.mean(), 2) + "," +
                  formatFixed(S.Max, 2)});
  }
  return T.render();
}
