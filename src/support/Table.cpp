//===- support/Table.cpp --------------------------------------*- C++ -*-===//

#include "support/Table.h"

#include <cassert>
#include <cmath>
#include <cstdio>

using namespace deept::support;

std::string deept::support::formatRadius(double Value) {
  char Buf[64];
  if (Value == 0.0) {
    std::snprintf(Buf, sizeof(Buf), "0.000");
  } else if (std::fabs(Value) < 1e-2) {
    std::snprintf(Buf, sizeof(Buf), "%.1e", Value);
  } else {
    std::snprintf(Buf, sizeof(Buf), "%.3f", Value);
  }
  return Buf;
}

std::string deept::support::formatFixed(double Value, int Decimals) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.*f", Decimals, Value);
  return Buf;
}

Table::Table(std::vector<std::string> Header) {
  Rows.push_back(std::move(Header));
}

void Table::addRow(std::vector<std::string> Row) {
  assert(Row.size() == Rows.front().size() && "row arity mismatch");
  Rows.push_back(std::move(Row));
}

std::string Table::render() const {
  std::vector<size_t> Widths(Rows.front().size(), 0);
  for (const auto &Row : Rows)
    for (size_t C = 0; C < Row.size(); ++C)
      Widths[C] = std::max(Widths[C], Row[C].size());

  std::string Out;
  for (size_t R = 0; R < Rows.size(); ++R) {
    for (size_t C = 0; C < Rows[R].size(); ++C) {
      const std::string &Cell = Rows[R][C];
      Out += Cell;
      if (C + 1 != Rows[R].size())
        Out += std::string(Widths[C] - Cell.size() + 2, ' ');
    }
    Out += '\n';
    if (R == 0) {
      size_t Total = 0;
      for (size_t C = 0; C < Widths.size(); ++C)
        Total += Widths[C] + (C + 1 != Widths.size() ? 2 : 0);
      Out += std::string(Total, '-');
      Out += '\n';
    }
  }
  return Out;
}

void Table::print() const {
  std::string S = render();
  std::fwrite(S.data(), 1, S.size(), stdout);
  std::fflush(stdout);
}
