//===- support/Json.h - Minimal JSON parsing and emission ------*- C++ -*-===//
//
// Part of deept-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small dependency-free JSON toolkit for the observability layer: the
/// trace / metrics exporters emit JSON with the escape helpers below, and
/// the tests plus the `deept_json_validate` smoke tool parse it back with
/// the recursive-descent parser. Standard JSON (RFC 8259) only -- no
/// comments, no trailing commas.
///
//===----------------------------------------------------------------------===//

#ifndef DEEPT_SUPPORT_JSON_H
#define DEEPT_SUPPORT_JSON_H

#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace deept {
namespace support {

/// A parsed JSON document node.
struct JsonValue {
  enum class Kind { Null, Bool, Number, String, Array, Object };

  Kind K = Kind::Null;
  bool BoolVal = false;
  double NumberVal = 0.0;
  std::string StringVal;
  std::vector<JsonValue> Items; // Kind::Array
  std::vector<std::pair<std::string, JsonValue>> Members; // Kind::Object

  bool isNull() const { return K == Kind::Null; }
  bool isObject() const { return K == Kind::Object; }
  bool isArray() const { return K == Kind::Array; }

  /// Member lookup on objects; nullptr when absent or not an object.
  const JsonValue *find(std::string_view Key) const;
};

/// Parses \p Text into \p Out. Returns false (and fills \p Err with a
/// position-annotated message) on malformed input or trailing garbage.
bool parseJson(std::string_view Text, JsonValue &Out,
               std::string *Err = nullptr);

/// Escapes a string for embedding between double quotes in JSON output.
std::string jsonEscape(std::string_view S);

/// Formats a double as a JSON number token; non-finite values (which JSON
/// cannot represent) become "null".
std::string jsonNumber(double V);

} // namespace support
} // namespace deept

#endif // DEEPT_SUPPORT_JSON_H
