//===- support/Trace.cpp --------------------------------------*- C++ -*-===//

#include "support/Trace.h"

#include "support/Json.h"
#include "support/Table.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <map>
#include <mutex>
#include <vector>

using namespace deept;
using namespace deept::support;

std::atomic<bool> Trace::Enabled{false};

namespace {

/// One completed span.
struct Event {
  std::string Name;
  uint64_t StartNs;
  uint64_t DurNs;
  uint64_t SelfNs; // DurNs minus time covered by child spans
  uint32_t Tid;
  uint32_t Depth;
};

/// A span still on a thread's stack.
struct OpenSpan {
  std::string Name;
  uint64_t StartNs;
  uint64_t ChildNs = 0;
};

std::mutex &logMutex() {
  static std::mutex M;
  return M;
}

std::vector<Event> &eventLog() {
  static std::vector<Event> Log;
  return Log;
}

/// Nanoseconds since the first call in the process; all threads share the
/// epoch so their events land on one timeline.
uint64_t nowNs() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point Epoch = Clock::now();
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                           Epoch)
          .count());
}

/// Small dense per-thread id for the "tid" field.
uint32_t threadId() {
  static std::atomic<uint32_t> Next{1};
  thread_local uint32_t Id = Next.fetch_add(1, std::memory_order_relaxed);
  return Id;
}

/// Per-thread stack of open spans (nesting bookkeeping needs no lock).
std::vector<OpenSpan> &openStack() {
  thread_local std::vector<OpenSpan> Stack;
  return Stack;
}

} // namespace

void TraceSpan::begin(std::string Name) {
  openStack().push_back({std::move(Name), nowNs()});
  Active = true;
}

void TraceSpan::end() {
  std::vector<OpenSpan> &Stack = openStack();
  if (Stack.empty())
    return; // clear()/disable raced with an open span; drop it
  OpenSpan Span = std::move(Stack.back());
  Stack.pop_back();
  uint64_t Dur = nowNs() - Span.StartNs;
  if (!Stack.empty())
    Stack.back().ChildNs += Dur;
  uint64_t Self = Dur >= Span.ChildNs ? Dur - Span.ChildNs : 0;
  Trace::record(std::move(Span.Name), Span.StartNs, Dur, Self,
                static_cast<uint32_t>(Stack.size()));
}

void Trace::record(std::string Name, uint64_t StartNs, uint64_t DurNs,
                   uint64_t SelfNs, uint32_t Depth) {
  std::lock_guard<std::mutex> Lock(logMutex());
  eventLog().push_back(
      {std::move(Name), StartNs, DurNs, SelfNs, threadId(), Depth});
}

void Trace::clear() {
  std::lock_guard<std::mutex> Lock(logMutex());
  eventLog().clear();
}

size_t Trace::eventCount() {
  std::lock_guard<std::mutex> Lock(logMutex());
  return eventLog().size();
}

std::string Trace::toChromeJson() {
  std::lock_guard<std::mutex> Lock(logMutex());
  std::string Out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool First = true;
  char Buf[160];
  for (const Event &E : eventLog()) {
    if (!First)
      Out += ",";
    First = false;
    // Complete ("X") events; ts/dur are microseconds per the trace_event
    // spec. pid is constant: one process, one timeline.
    std::snprintf(Buf, sizeof(Buf),
                  "\"ph\":\"X\",\"cat\":\"deept\",\"ts\":%.3f,"
                  "\"dur\":%.3f,\"pid\":1,\"tid\":%u,"
                  "\"args\":{\"self_us\":%.3f}}",
                  E.StartNs / 1e3, E.DurNs / 1e3, E.Tid, E.SelfNs / 1e3);
    Out += "{\"name\":\"" + jsonEscape(E.Name) + "\",";
    Out += Buf;
  }
  Out += "]}";
  return Out;
}

bool Trace::writeChromeJson(const std::string &Path) {
  std::string Json = toChromeJson();
  std::FILE *F = std::fopen(Path.c_str(), "w");
  if (!F)
    return false;
  size_t Written = std::fwrite(Json.data(), 1, Json.size(), F);
  bool Ok = std::fclose(F) == 0 && Written == Json.size();
  return Ok;
}

std::string Trace::selfTimeSummary() {
  struct Agg {
    size_t Count = 0;
    uint64_t TotalNs = 0;
    uint64_t SelfNs = 0;
  };
  std::map<std::string, Agg> ByName;
  {
    std::lock_guard<std::mutex> Lock(logMutex());
    for (const Event &E : eventLog()) {
      Agg &A = ByName[E.Name];
      A.Count++;
      A.TotalNs += E.DurNs;
      A.SelfNs += E.SelfNs;
    }
  }
  std::vector<std::pair<std::string, Agg>> Sorted(ByName.begin(),
                                                  ByName.end());
  std::sort(Sorted.begin(), Sorted.end(),
            [](const auto &A, const auto &B) {
              return A.second.SelfNs > B.second.SelfNs;
            });
  Table T({"span", "count", "total[ms]", "self[ms]", "avg[us]"});
  for (const auto &[Name, A] : Sorted)
    T.addRow({Name, std::to_string(A.Count),
              formatFixed(A.TotalNs / 1e6, 3), formatFixed(A.SelfNs / 1e6, 3),
              formatFixed(A.TotalNs / 1e3 / static_cast<double>(A.Count), 1)});
  return T.render();
}
