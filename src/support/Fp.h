//===- support/Fp.h - Reduced-precision execution mode ---------*- C++ -*-===//
//
// Part of deept-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The floating-point precision mode of the current thread. In F32 mode
/// the dual-norm reduction kernels (the bounds()/radii() hot spots)
/// accumulate coefficient magnitudes in single precision and convert the
/// result back with an upward correction that over-approximates every
/// rounding the narrower accumulation could have committed, so interval
/// bounds stay sound: the F32-mode interval always encloses the F64-mode
/// interval (see DESIGN.md "SIMD execution layer"). Coefficient storage
/// and centers stay double precision throughout.
///
/// The mode is thread-local; parallelFor captures the submitting thread's
/// mode and re-establishes it inside every chunk, so a propagation that
/// fans out over the pool keeps its precision on the workers.
///
//===----------------------------------------------------------------------===//

#ifndef DEEPT_SUPPORT_FP_H
#define DEEPT_SUPPORT_FP_H

#include <string>

namespace deept {
namespace support {

enum class FpPrecision : unsigned char {
  F64 = 0, ///< Full double-precision kernels (the default).
  F32 = 1, ///< Sound single-precision dual-norm accumulation.
};

namespace detail {
inline thread_local FpPrecision CurrentFp = FpPrecision::F64;
} // namespace detail

/// The calling thread's current precision mode.
inline FpPrecision fpPrecision() { return detail::CurrentFp; }

/// RAII precision scope: sets the calling thread's mode for the lifetime
/// of the object and restores the previous mode on destruction.
class FpScope {
public:
  explicit FpScope(FpPrecision Mode) : Prev(detail::CurrentFp) {
    detail::CurrentFp = Mode;
  }
  ~FpScope() { detail::CurrentFp = Prev; }
  FpScope(const FpScope &) = delete;
  FpScope &operator=(const FpScope &) = delete;

private:
  FpPrecision Prev;
};

/// Strict parse of a precision name: exactly "f64" or "f32". Returns
/// false and fills \p Err for anything else (the --precision flag goes
/// through this, so typos fail loudly instead of silently running f64).
inline bool parseFpPrecision(const std::string &Text, FpPrecision &Out,
                             std::string *Err = nullptr) {
  if (Text == "f64") {
    Out = FpPrecision::F64;
    return true;
  }
  if (Text == "f32") {
    Out = FpPrecision::F32;
    return true;
  }
  if (Err)
    *Err = "expects 'f32' or 'f64', got '" + Text + "'";
  return false;
}

/// Canonical name of a precision mode.
inline const char *fpPrecisionName(FpPrecision P) {
  return P == FpPrecision::F32 ? "f32" : "f64";
}

} // namespace support
} // namespace deept

#endif // DEEPT_SUPPORT_FP_H
