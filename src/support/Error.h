//===- support/Error.h - Structured error taxonomy -------------*- C++ -*-===//
//
// Part of deept-cpp. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The structured error taxonomy of the robustness layer. Failures on the
/// load / verify / scheduler paths carry a machine-readable ErrorCode plus
/// the site (a dotted path like "serialize.header") where they originated,
/// so a batch JSONL record, a CLI exit code and a log line all agree on
/// what went wrong. The codes matter for soundness reporting: an
/// `unsound_abstraction` error must never be folded into a `certified`
/// verdict, and the scheduler guarantees that by construction (the error
/// is thrown before any margin is produced).
///
/// Process exit codes group the taxonomy into classes (usage, load,
/// deadline, internal) so scripts can branch on `$?` without parsing
/// stderr; see exitCodeFor().
///
//===----------------------------------------------------------------------===//

#ifndef DEEPT_SUPPORT_ERROR_H
#define DEEPT_SUPPORT_ERROR_H

#include <stdexcept>
#include <string>

namespace deept {
namespace support {

/// What failed, coarsely. Codes are stable identifiers (they appear in
/// JSONL result stores and test assertions); extend at the end.
enum class ErrorCode {
  Ok = 0,
  /// Malformed command line flags or job documents.
  BadArgument,
  /// A file could not be opened / read / written at the OS level.
  IoError,
  /// The model file does not exist (distinct from corrupt so the cache
  /// loader can retrain silently on a cold cache but warn on a bad one).
  ModelNotFound,
  /// The model file exists but fails validation: bad magic, unsupported
  /// version, implausible dimensions, truncation, CRC mismatch, or
  /// non-finite weights.
  ModelCorrupt,
  /// The JSONL result store could not be opened or recovered.
  StoreCorrupt,
  /// A job spec failed semantic validation (word out of range, unknown
  /// token, bad class).
  JobInvalid,
  /// A cooperative wall-clock deadline expired.
  DeadlineExceeded,
  /// An allocation failed (usually a coefficient matrix).
  OutOfMemory,
  /// A zonotope failed its soundness validation (non-finite center or
  /// coefficients, inconsistent shapes) after an abstract transformer.
  /// Surfaced as a structured job error -- never as `certified`.
  UnsoundAbstraction,
  /// A deliberately injected fault (support/Fault) with kind `fail`.
  FaultInjected,
  /// Anything else.
  Internal,
  /// A coordination lease was lost (another worker reclaimed the range
  /// after missed heartbeats). The holder must stop writing its shard.
  LeaseLost,
};

/// Stable snake_case name of a code ("model_corrupt", ...). These strings
/// are the JSONL `error_code` vocabulary.
const char *errorCodeName(ErrorCode C);

/// Process exit code classes for the CLI:
///   0 success, 2 bad arguments, 3 load/store failure, 4 deadline,
///   5 internal (OOM, unsound abstraction, injected fault, unknown).
int exitCodeFor(ErrorCode C);

/// An exception carrying a code and the site it was raised at. what() is
/// "code at site: message" so untyped catch sites still log usefully.
class Error : public std::runtime_error {
public:
  /// "No error yet" value for out-parameters.
  Error() : std::runtime_error("ok"), C(ErrorCode::Ok) {}

  Error(ErrorCode C, std::string Site, const std::string &Message)
      : std::runtime_error(std::string(errorCodeName(C)) + " at " + Site +
                           ": " + Message),
        C(C), Site(std::move(Site)) {}

  ErrorCode code() const { return C; }
  const std::string &site() const { return Site; }

private:
  ErrorCode C;
  std::string Site;
};

/// Maps an in-flight exception to its taxonomy code: Error reports its own
/// code, std::bad_alloc becomes OutOfMemory, anything else Internal.
ErrorCode codeOf(const std::exception &E);

/// Whether a failure with code \p C may succeed if the same work is simply
/// re-executed (transient: io_error, out_of_memory, fault_injected).
/// Permanent codes (model_corrupt, unsound_abstraction, job_invalid, ...)
/// would fail identically on every attempt and must fail fast; deadline
/// and lease losses have their own dedicated handling paths and are not
/// retried either.
bool isTransientError(ErrorCode C);

} // namespace support
} // namespace deept

#endif // DEEPT_SUPPORT_ERROR_H
